module tdmroute

go 1.22
