package tdmroute

import (
	"context"
	"strings"
	"testing"
)

// deltaFixture solves a base instance with retention and picks out the
// landmarks the validation table needs: a (group, net) membership pair and a
// live net outside that group.
func deltaFixture(t *testing.T, bench string, shift int64) (h *WarmHandle, memberGroup, member, nonMember int) {
	t.Helper()
	in := equivInstance(t, bench, shift)
	base, err := Run(context.Background(), Request{Instance: in, Retain: true})
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}
	h = base.Warm
	if h == nil {
		t.Fatal("Retain returned no warm handle")
	}
	memberGroup, member, nonMember = -1, -1, -1
	for g := range in.Groups {
		if len(in.Groups[g].Nets) > 0 {
			memberGroup, member = g, in.Groups[g].Nets[0]
			break
		}
	}
	if member < 0 {
		t.Fatal("instance has no group members")
	}
	for n := range in.Nets {
		if len(in.Nets[n].Terminals) > 0 && !containsSorted(in.Groups[memberGroup].Nets, n) {
			nonMember = n
			break
		}
	}
	if nonMember < 0 {
		t.Fatal("instance has no net outside the fixture group")
	}
	return h, memberGroup, member, nonMember
}

// TestDeltaValidationRejects drives every validation branch with a malformed
// delta and pins the contract that a rejected delta leaves the warm handle
// healthy and fully usable.
func TestDeltaValidationRejects(t *testing.T) {
	h, mg, member, nonMember := deltaFixture(t, "synopsys01", 15)
	in := h.Instance()
	numNets, numGroups := len(in.Nets), len(in.Groups)
	nv, ne := in.G.NumVertices(), in.G.NumEdges()

	cases := []struct {
		name string
		d    *Delta
		want string
	}{
		{"remove out of range", &Delta{RemoveNets: []int{numNets}}, "out of range"},
		{"remove negative", &Delta{RemoveNets: []int{-1}}, "out of range"},
		{"remove twice", &Delta{RemoveNets: []int{member, member}}, "removed twice"},
		{"added net without terminals", &Delta{AddNets: []Net{{}}}, "no terminals"},
		{"terminal out of range", &Delta{AddNets: []Net{{Terminals: []int{nv}}}}, "terminal"},
		{"duplicate terminal", &Delta{AddNets: []Net{{Terminals: []int{0, 0}}}}, "duplicate terminal"},
		{"added group out of range", &Delta{AddNets: []Net{{Terminals: []int{0, 1}, Groups: []int{numGroups}}}}, "group"},
		{"added groups not increasing", &Delta{AddNets: []Net{{Terminals: []int{0, 1}, Groups: []int{mg, mg}}}}, "strictly increasing"},
		{"group edit bad group", &Delta{GroupRemove: []GroupEdit{{Group: numGroups, Net: member}}}, "out of range"},
		{"group edit bad net", &Delta{GroupAdd: []GroupEdit{{Group: mg, Net: numNets}}}, "pre-existing"},
		{"group remove non-member", &Delta{GroupRemove: []GroupEdit{{Group: mg, Net: nonMember}}}, "not a member"},
		{"group add existing member", &Delta{GroupAdd: []GroupEdit{{Group: mg, Net: member}}}, "already a member"},
		{"duplicate group remove", &Delta{GroupRemove: []GroupEdit{{Group: mg, Net: member}, {Group: mg, Net: member}}}, "duplicate group edit"},
		{"repeated group add", &Delta{GroupAdd: []GroupEdit{{Group: mg, Net: nonMember}, {Group: mg, Net: nonMember}}}, "conflicting group edits"},
		{"group edit on removed net", &Delta{RemoveNets: []int{member}, GroupRemove: []GroupEdit{{Group: mg, Net: member}}}, "is removed"},
		{"edge out of range", &Delta{EdgeBias: []EdgeBiasEdit{{Edge: ne, Delta: 1}}}, "out of range"},
		{"negative cumulative bias", &Delta{EdgeBias: []EdgeBiasEdit{{Edge: 0, Delta: -1}}}, "negative"},
		{"bias above the cap", &Delta{EdgeBias: []EdgeBiasEdit{{Edge: 0, Delta: MaxEdgeBias + 1}}}, "exceeds the maximum"},
		{"bias overflow in two steps", &Delta{EdgeBias: []EdgeBiasEdit{{Edge: 0, Delta: MaxEdgeBias}, {Edge: 0, Delta: 1}}}, "exceeds the maximum"},
	}
	for _, tc := range cases {
		_, err := Run(context.Background(), Request{Mode: ModeDelta, Base: h, Delta: tc.d})
		if err == nil {
			t.Errorf("%s: malformed delta accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if h.Err() != nil {
			t.Fatalf("%s: rejected delta poisoned the handle: %v", tc.name, h.Err())
		}
	}

	// The handle stayed usable through every rejection.
	if _, err := Run(context.Background(), Request{Mode: ModeDelta, Base: h,
		Delta: &Delta{EdgeBias: []EdgeBiasEdit{{Edge: 0, Delta: 1}}}}); err != nil {
		t.Fatalf("valid delta after rejections: %v", err)
	}

	// Cross-delta checks: removing an already-tombstoned net, and withdrawing
	// more bias than the prior deltas deposited.
	if _, err := Run(context.Background(), Request{Mode: ModeDelta, Base: h,
		Delta: &Delta{RemoveNets: []int{member}}}); err != nil {
		t.Fatalf("removal delta: %v", err)
	}
	if _, err := Run(context.Background(), Request{Mode: ModeDelta, Base: h,
		Delta: &Delta{RemoveNets: []int{member}}}); err == nil ||
		!strings.Contains(err.Error(), "already removed") {
		t.Fatalf("re-removing a tombstoned net: got %v", err)
	}
	if _, err := Run(context.Background(), Request{Mode: ModeDelta, Base: h,
		Delta: &Delta{EdgeBias: []EdgeBiasEdit{{Edge: 0, Delta: -2}}}}); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Fatalf("over-withdrawing cumulative bias: got %v", err)
	}
	if h.Err() != nil {
		t.Fatalf("cross-delta rejections poisoned the handle: %v", h.Err())
	}
}

// TestDeltaModeGuards covers the request-shape errors around retention and
// ModeDelta dispatch.
func TestDeltaModeGuards(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Request{Mode: ModeDelta, Delta: &Delta{}}); err == nil ||
		!strings.Contains(err.Error(), "Request.Base") {
		t.Fatalf("ModeDelta without Base: got %v", err)
	}

	in := equivInstance(t, "synopsys02", 16)
	base, err := Run(ctx, Request{Instance: in, Retain: true})
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}
	if _, err := Run(ctx, Request{Mode: ModeDelta, Base: base.Warm}); err == nil ||
		!strings.Contains(err.Error(), "Request.Delta") {
		t.Fatalf("ModeDelta without Delta: got %v", err)
	}
	if _, err := Run(ctx, Request{Instance: in, Mode: ModeAssignOnly, Retain: true}); err == nil ||
		!strings.Contains(err.Error(), "Retain") {
		t.Fatalf("Retain on ModeAssignOnly: got %v", err)
	}

	m, err := ParseMode("delta")
	if err != nil || m != ModeDelta {
		t.Fatalf("ParseMode(delta) = %v, %v", m, err)
	}
	if got := ModeDelta.String(); got != "delta" {
		t.Fatalf("ModeDelta.String() = %q", got)
	}
}

// TestDeltaPoisonsHandleOnFailure pins the failure semantics after state
// mutation: a delta interrupted once its edits have landed leaves the handle
// poisoned, and every later use reports the original failure instead of
// operating on half-patched state.
func TestDeltaPoisonsHandleOnFailure(t *testing.T) {
	h, _, _, _ := deltaFixture(t, "hidden01", 17)

	// Bias a routed edge so the reroute set is non-empty, then cancel before
	// the reroute can start.
	routes := h.Routes()
	d := &Delta{}
	for _, es := range routes {
		if len(es) > 0 {
			d.EdgeBias = []EdgeBiasEdit{{Edge: es[0], Delta: 1}}
			break
		}
	}
	if len(d.EdgeBias) == 0 {
		t.Fatal("instance has no routed edge to bias")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Request{Mode: ModeDelta, Base: h, Delta: d}); err == nil {
		t.Fatal("cancelled delta reported success")
	}
	if h.Err() == nil {
		t.Fatal("failed delta left the handle unpoisoned")
	}
	if _, err := Run(context.Background(), Request{Mode: ModeDelta, Base: h,
		Delta: &Delta{EdgeBias: []EdgeBiasEdit{{Edge: 0, Delta: 1}}}}); err == nil ||
		!strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("poisoned handle accepted a delta: got %v", err)
	}
}
