package tdmroute

import (
	"bytes"
	"context"
	"testing"

	"tdmroute/internal/gen"
	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// solutionBytes serializes a solution in the contest text format; the
// equivalence suite compares these bytes, so "identical" means identical
// down to every routed edge and every TDM ratio digit.
func solutionBytes(t *testing.T, sol *problem.Solution) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := problem.WriteSolution(&buf, sol); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func equivInstance(t *testing.T, name string, seedShift int64) *Instance {
	t.Helper()
	cfg, err := gen.SuiteConfig(name, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed += seedShift
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestSolveIterativeMatchesColdReference is the byte-identity contract of
// the incremental core: across generator seeds, worker counts, and a
// deterministic mid-round cancellation, the session-reusing
// SolveIterativeCtx must reproduce the from-scratch reference
// (solveIterativeCold) exactly — same solution bytes, same round counts,
// same objective.
func TestSolveIterativeMatchesColdReference(t *testing.T) {
	cases := []struct {
		bench string
		shift int64
	}{
		{"synopsys01", 0},
		{"synopsys02", 1},
		{"hidden01", 2},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			for _, cancelRound := range []int{-1, 1} {
				in := equivInstance(t, tc.bench, tc.shift)
				run := func(solve func(context.Context, *Instance, IterateOptions) (*IterateResult, error)) *IterateResult {
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					opt := IterateOptions{
						Rounds: 4,
						Base:   Options{Workers: workers},
					}
					if cancelRound >= 0 {
						opt.onRound = func(round int) {
							if round == cancelRound {
								cancel()
							}
						}
					}
					res, err := solve(ctx, in, opt)
					if err != nil {
						t.Fatalf("%s workers=%d cancel=%d: %v", tc.bench, workers, cancelRound, err)
					}
					return res
				}
				warm := run(SolveIterativeCtx)
				cold := run(solveIterativeCold)

				if warm.Report.GTRMax != cold.Report.GTRMax ||
					warm.InitialGTR != cold.InitialGTR ||
					warm.RoundsRun != cold.RoundsRun ||
					warm.RoundsKept != cold.RoundsKept {
					t.Fatalf("%s workers=%d cancel=%d: session (gtr=%d initial=%d run=%d kept=%d) vs cold (gtr=%d initial=%d run=%d kept=%d)",
						tc.bench, workers, cancelRound,
						warm.Report.GTRMax, warm.InitialGTR, warm.RoundsRun, warm.RoundsKept,
						cold.Report.GTRMax, cold.InitialGTR, cold.RoundsRun, cold.RoundsKept)
				}
				wb := solutionBytes(t, warm.Solution)
				cb := solutionBytes(t, cold.Solution)
				if !bytes.Equal(wb, cb) {
					t.Fatalf("%s workers=%d cancel=%d: solution bytes diverged (%d vs %d bytes)",
						tc.bench, workers, cancelRound, len(wb), len(cb))
				}
				if (warm.Degraded != nil) != (cold.Degraded != nil) {
					t.Fatalf("%s workers=%d cancel=%d: degraded %v vs %v",
						tc.bench, workers, cancelRound, warm.Degraded, cold.Degraded)
				}
			}
		}
	}
}

// TestSolveIterativeBuildsAPSPOnce pins the headline reuse property: one
// iterated solve — base routing plus every feedback reroute — constructs
// the all-pairs LUT exactly once. (The cold reference rebuilds it on every
// round, which is precisely the waste the session removes.)
func TestSolveIterativeBuildsAPSPOnce(t *testing.T) {
	in := equivInstance(t, "synopsys01", 0)
	before := graph.APSPBuilds()
	res, err := SolveIterative(in, IterateOptions{Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsRun < 1 {
		t.Fatalf("no feedback rounds ran (RoundsRun=%d); the test needs at least one reroute", res.RoundsRun)
	}
	if got := graph.APSPBuilds() - before; got != 1 {
		t.Fatalf("SolveIterative built the APSP %d times, want exactly 1", got)
	}
}
