// Benchmark harness: one testing.B target per table/figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Absolute numbers
// depend on the machine and the suite scale; the harness exists to
// regenerate the rows/series and to track performance of each stage.
//
//	go test -bench=. -benchmem
package tdmroute_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"tdmroute"
	"tdmroute/internal/baseline"
	"tdmroute/internal/colgen"
	"tdmroute/internal/exp"
	"tdmroute/internal/gen"
	"tdmroute/internal/graph"
	"tdmroute/internal/partition"
	"tdmroute/internal/pinassign"
	"tdmroute/internal/problem"
	"tdmroute/internal/route"
	"tdmroute/internal/tdm"
)

// benchScale keeps one full-suite iteration around a second on a laptop.
const benchScale = 0.003

// BenchmarkTableI regenerates the benchmark-statistics table (generation +
// stats for all nine suite entries).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableI(exp.Config{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkTableII regenerates the full winner comparison on one benchmark:
// three winner flows, three +TA runs, and our full framework.
func BenchmarkTableII(b *testing.B) {
	cfg := exp.Config{Scale: benchScale, Benchmarks: []string{"synopsys01"}}
	winners := exp.DefaultWinners()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := exp.TableII(cfg, winners)
		if err != nil {
			b.Fatal(err)
		}
		exp.WriteTableII(io.Discard, results)
	}
}

// Per-row benchmarks for Table II: each winner's own flow and ours.
func BenchmarkTableIIRowWinner(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	for _, w := range baseline.Winners() {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Solve(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableIIRowOurs(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	for i := 0; i < b.N; i++ {
		if _, err := tdmroute.Solve(in, tdmroute.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIRowPlusTA measures the "+TA" row: our TDM ratio
// assignment on a fixed (winner) topology.
func BenchmarkTableIIRowPlusTA(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	routes, err := baseline.RouteShortestPath(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tdmroute.AssignTDM(in, routes, tdmroute.TDMOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3a regenerates the runtime breakdown (with real parse/output
// I/O) on a subset of the suite.
func BenchmarkFig3a(b *testing.B) {
	cfg := exp.Config{Scale: benchScale, Benchmarks: []string{"synopsys01", "synopsys02", "hidden01"}}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig3a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Stage benchmarks decompose Fig. 3(a): routing, LR, legalize+refine,
// parse, output.
func BenchmarkStageRouting(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := route.Route(context.Background(), in, route.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageRoutingParallel compares the sequential router against the
// wave-parallel one at the machine's core count (Options.Workers).
func BenchmarkStageRoutingParallel(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := route.Route(context.Background(), in, route.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStageLR(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	routes, _, err := route.Route(context.Background(), in, route.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tdm.RunLR(context.Background(), in, routes, tdm.Options{})
	}
}

func BenchmarkStageLegalizeRefine(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	routes, _, err := route.Route(context.Background(), in, route.Options{})
	if err != nil {
		b.Fatal(err)
	}
	relaxed, _, _, _, _, _ := tdm.RunLR(context.Background(), in, routes, tdm.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tdm.Finish(context.Background(), in, routes, relaxed, tdm.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageParse(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	var buf []byte
	{
		var w byteSliceWriter
		if err := problem.WriteInstance(&w, in); err != nil {
			b.Fatal(err)
		}
		buf = w.data
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problem.ParseInstance("bench", byteReader(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageOutput(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := problem.WriteSolution(io.Discard, res.Solution); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3b regenerates the LR convergence series of synopsys01.
func BenchmarkFig3b(b *testing.B) {
	cfg := exp.Config{Scale: benchScale}
	for i := 0; i < b.N; i++ {
		series, err := exp.Fig3b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkAblationUpdate compares the Sigmoid+SMA rule against the classic
// subgradient at a fixed budget (the DESIGN.md ablation).
func BenchmarkAblationUpdate(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	routes, _, err := route.Route(context.Background(), in, route.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SigmoidSMA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tdm.RunLR(context.Background(), in, routes, tdm.Options{Epsilon: 1e-12, MaxIter: 100})
		}
	})
	b.Run("Subgradient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tdm.RunLR(context.Background(), in, routes, tdm.Options{Epsilon: 1e-12, MaxIter: 100, Update: tdm.UpdateSubgradient})
		}
	})
}

// BenchmarkColgenVsLR cross-validates the LR bound against the column
// generation LP on a tiny instance (Sec. IV-D).
func BenchmarkColgenVsLR(b *testing.B) {
	cfg, err := gen.SuiteConfig("synopsys01", 0.0002)
	if err != nil {
		b.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	routes, _, err := route.Route(context.Background(), in, route.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Colgen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := colgen.Solve(in, routes, colgen.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tdm.RunLR(context.Background(), in, routes, tdm.Options{Epsilon: 1e-6, MaxIter: 5000})
		}
	})
}

// byteSliceWriter avoids importing bytes in this file's hot benchmarks.
type byteSliceWriter struct{ data []byte }

func (w *byteSliceWriter) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

type byteReaderT struct {
	data []byte
	pos  int
}

func byteReader(data []byte) io.Reader { return &byteReaderT{data: data} }

func (r *byteReaderT) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// BenchmarkAblationPow2 regenerates the ratio-domain ablation row for one
// benchmark (even vs power-of-two legalization).
func BenchmarkAblationPow2(b *testing.B) {
	cfg := exp.Config{Scale: benchScale, Benchmarks: []string{"synopsys01"}}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Pow2Ablation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRouter regenerates the router-ingredient ablation row.
func BenchmarkAblationRouter(b *testing.B) {
	cfg := exp.Config{Scale: benchScale, Benchmarks: []string{"synopsys01"}}
	for i := 0; i < b.N; i++ {
		if _, err := exp.RouterAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileFlow measures the full Fig. 2(a) chain: synthesize a
// netlist, FM-partition it onto a 3x3 board, solve routing + TDM.
func BenchmarkCompileFlow(b *testing.B) {
	h, err := partition.GenerateNetlist(partition.NetlistConfig{Cells: 800, Nets: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	board := gridBoard(3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := partition.KWay(h, 9, partition.FMOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		in, err := partition.BuildInstance("bench", h, parts, board)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tdmroute.Solve(in, tdmroute.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDownstream measures the post-solution stages: slot-schedule
// verification, pin assignment, timing analysis.
func BenchmarkDownstream(b *testing.B) {
	in := genInstance(b, "synopsys01", benchScale)
	res, err := tdmroute.Solve(in, tdmroute.Options{TDM: tdmroute.TDMOptions{Legal: tdmroute.LegalPow2}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("VerifySchedules", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := tdmroute.VerifySchedules(in, res.Solution); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PinAssign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pinassign.Assign(in, res.Solution); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Timing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tdmroute.AnalyzeTiming(in, res.Solution, tdmroute.TimingModel{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func gridBoard(rows, cols int) *graph.Graph {
	g := graph.New(rows*cols, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.AddEdge(v, v+1)
			}
			if r+1 < rows {
				g.AddEdge(v, v+cols)
			}
		}
	}
	return g
}
