package tdmroute_test

import (
	"context"
	"fmt"
	"log"

	"tdmroute"
	"tdmroute/internal/graph"
)

// fig1Instance builds the 6-FPGA example system of Fig. 1(a).
func fig1Instance() *tdmroute.Instance {
	g := graph.New(6, 7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 0)
	g.AddEdge(1, 4)
	in := &tdmroute.Instance{
		Name: "fig1",
		G:    g,
		Nets: []tdmroute.Net{
			{Terminals: []int{1, 2}},
			{Terminals: []int{1, 2, 4}},
			{Terminals: []int{0, 2}},
		},
		Groups: []tdmroute.Group{
			{Nets: []int{0, 1}},
			{Nets: []int{2}},
		},
	}
	in.RebuildNetGroups()
	return in
}

// ExampleRun solves the Fig. 1(a) system through the unified request API.
// ModeSingle (the zero value) is the paper's one-pass framework: routing
// followed by TDM ratio assignment.
func ExampleRun() {
	in := fig1Instance()
	res, err := tdmroute.Run(context.Background(), tdmroute.Request{Instance: in})
	if err != nil {
		log.Fatal(err)
	}
	gtr, group := tdmroute.Evaluate(in, res.Solution)
	fmt.Printf("GTR_max = %d (group %d)\n", gtr, group)
	fmt.Printf("degraded: %v\n", res.Degraded != nil)
	// Output:
	// GTR_max = 8 (group 0)
	// degraded: false
}

// ExampleRun_iterative adds feedback rounds: each round rips up and
// reroutes the NetGroup realizing GTR_max, re-assigns ratios warm-started,
// and keeps the result only if it improves.
func ExampleRun_iterative() {
	in := fig1Instance()
	res, err := tdmroute.Run(context.Background(), tdmroute.Request{
		Instance: in,
		Mode:     tdmroute.ModeIterative,
		Rounds:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTR_max = %d (never worse than single-pass %d)\n",
		res.Report.GTRMax, res.InitialGTR)
	// Output:
	// GTR_max = 8 (never worse than single-pass 8)
}

// ExampleRun_assignOnly assigns TDM ratios on a caller-provided topology —
// the paper's "+TA" experiment. Only the TDM stage runs; the routing in
// Request.Routing is taken as fixed.
func ExampleRun_assignOnly() {
	in := fig1Instance()
	routes := tdmroute.Routing{
		{1},    // net 0: F2-F3
		{1, 6}, // net 1: F2-F3 + F2-F5
		{0, 1}, // net 2: F1-F2-F3
	}
	res, err := tdmroute.Run(context.Background(), tdmroute.Request{
		Instance: in,
		Mode:     tdmroute.ModeAssignOnly,
		Routing:  routes,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTR_max = %d, refined from %d\n", res.Report.GTRMax, res.Report.GTRNoRef)
	// Output:
	// GTR_max = 8, refined from 10
}

// ExampleSolve runs the full co-optimization pipeline on the Fig. 1(a)
// system and reports the objective.
func ExampleSolve() {
	in := fig1Instance()
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		log.Fatal(err)
	}
	gtr, group := tdmroute.Evaluate(in, res.Solution)
	fmt.Printf("GTR_max = %d (group %d)\n", gtr, group)
	fmt.Printf("legal: %v\n", tdmroute.ValidateSolution(in, res.Solution) == nil)
	// Output:
	// GTR_max = 8 (group 0)
	// legal: true
}

// ExampleAssignTDM assigns TDM ratios on a caller-provided topology — the
// paper's "+TA" experiment in miniature.
func ExampleAssignTDM() {
	in := fig1Instance()
	// Hand-made topology: each net routed on a fixed tree.
	routes := tdmroute.Routing{
		{1},    // net 0: F2-F3
		{1, 6}, // net 1: F2-F3 + F2-F5
		{0, 1}, // net 2: F1-F2-F3
	}
	if err := tdmroute.ValidateRouting(in, routes); err != nil {
		log.Fatal(err)
	}
	_, rep, err := tdmroute.AssignTDM(in, routes, tdmroute.TDMOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTR_max = %d, refined from %d\n", rep.GTRMax, rep.GTRNoRef)
	// Output:
	// GTR_max = 8, refined from 10
}

// ExampleVerifySchedules materializes the TDM slot tables of a solved
// system, confirming every edge's ratios are realizable in hardware.
func ExampleVerifySchedules() {
	in := fig1Instance()
	res, err := tdmroute.Solve(in, tdmroute.Options{
		TDM: tdmroute.TDMOptions{Legal: tdmroute.LegalPow2},
	})
	if err != nil {
		log.Fatal(err)
	}
	verified, skipped, err := tdmroute.VerifySchedules(in, res.Solution)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified %d edges, skipped %d\n", verified, skipped)
	// Output:
	// verified 5 edges, skipped 0
}

// ExampleComputeStats summarizes an instance with the Table I columns.
func ExampleComputeStats() {
	s := tdmroute.ComputeStats(fig1Instance())
	fmt.Printf("FPGAs=%d Edges=%d Nets=%d NetGroups=%d\n", s.FPGAs, s.Edges, s.Nets, s.NetGroups)
	// Output:
	// FPGAs=6 Edges=7 Nets=3 NetGroups=2
}

// ExampleSolveIterative runs the feedback extension: reroute the group
// that realized GTR_max, re-assign warm-started, keep improvements.
func ExampleSolveIterative() {
	in := fig1Instance()
	res, err := tdmroute.SolveIterative(in, tdmroute.IterateOptions{Rounds: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTR_max = %d (never worse than single-pass %d)\n",
		res.Report.GTRMax, res.InitialGTR)
	// Output:
	// GTR_max = 8 (never worse than single-pass 8)
}
