package tdmroute_test

import (
	"testing"

	"tdmroute"
)

// TestFullScaleSynopsys01 exercises the complete framework at the PUBLISHED
// size of the smallest contest benchmark: 68,500 nets, 40,600 NetGroups on
// the 43-FPGA / 214-edge board. It takes a couple of seconds, so it is
// skipped under -short.
func TestFullScaleSynopsys01(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run skipped in -short mode")
	}
	in := genInstance(t, "synopsys01", 1.0)
	s := tdmroute.ComputeStats(in)
	if s.Nets != 68_500 || s.NetGroups != 40_600 {
		t.Fatalf("stats = %+v", s)
	}
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(in, res.Solution); err != nil {
		t.Fatalf("full-scale solution invalid: %v", err)
	}
	gap := (float64(res.Report.GTRMax) - res.Report.LowerBound) / res.Report.LowerBound
	// The paper's ε is 0.27% on the relaxation; at this ratio magnitude
	// (thousands) legalization adds well under 1%.
	if gap > 0.02 {
		t.Errorf("full-scale optimality gap %.4f exceeds 2%%", gap)
	}
	if res.Report.GTRMax > res.Report.GTRNoRef {
		t.Errorf("refinement worsened: %d > %d", res.Report.GTRMax, res.Report.GTRNoRef)
	}
	t.Logf("full scale: GTR %d (noref %d), LB %.0f, gap %.3f%%, %d iters, route %v, LR %v",
		res.Report.GTRMax, res.Report.GTRNoRef, res.Report.LowerBound,
		100*gap, res.Report.Iterations, res.Times.Route, res.Times.LR)
}

// TestFullScalePlusTA reproduces the "+TA" experiment at published size:
// a baseline topology is improved by the LR assignment to within the
// legalization gap of its own topology bound.
func TestFullScalePlusTA(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run skipped in -short mode")
	}
	in := genInstance(t, "synopsys02", 1.0)
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assign, rep, err := tdmroute.AssignTDM(in, res.Solution.Routes, tdmroute.TDMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sol := &tdmroute.Solution{Routes: res.Solution.Routes, Assign: assign}
	if err := tdmroute.ValidateSolution(in, sol); err != nil {
		t.Fatal(err)
	}
	if rep.GTRMax != res.Report.GTRMax {
		t.Errorf("re-assignment on same topology differs: %d vs %d", rep.GTRMax, res.Report.GTRMax)
	}
}
