// Delta/ECO re-solve: ModeDelta patches the retained warm state of a
// previous solve — the routing session with its APSP LUT, memoized terminal
// MSTs and usage substrate, and the TDM session with its spliced CSR
// incidence and captured multipliers — and re-solves only the nets a change
// actually touches. An engineering change order (ECO) that edits a handful
// of nets therefore costs O(changed) routing work plus a warm-started
// relaxation, instead of the O(instance) cold pipeline, while producing a
// solution byte-identical to cold-solving the patched instance (the
// runDeltaCold reference, pinned by the delta equivalence suite).
package tdmroute

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"tdmroute/internal/par"
	"tdmroute/internal/problem"
	"tdmroute/internal/route"
	"tdmroute/internal/tdm"
)

// Delta describes an ECO edit to a solved instance: nets added or removed,
// group membership changes, and edge capacity pressure. A Delta is validated
// in full against the base instance before anything is mutated, so a
// rejected Delta leaves the warm state untouched and reusable.
//
// Deltas edit membership of existing NetGroups only; the group count of an
// instance is invariant under deltas (the multiplier state is keyed by
// group).
type Delta struct {
	// AddNets are appended to the netlist in order; the new nets receive the
	// next net ids. Each net's Groups lists the existing group ids it joins,
	// strictly increasing.
	AddNets []Net
	// RemoveNets lists existing net ids to delete. Removed nets are
	// tombstoned — their terminals are cleared, they leave their groups, and
	// their routes are ripped — and their ids are never reused.
	RemoveNets []int
	// GroupAdd / GroupRemove edit the membership of existing nets in
	// existing groups.
	GroupAdd    []GroupEdit
	GroupRemove []GroupEdit
	// EdgeBias applies additive phantom congestion to FPGA-graph edges — the
	// ECO model of an edge capacity change. Positive bias steers the reroute
	// away from the edge; a negative delta withdraws bias applied by an
	// earlier Delta. Every net currently routed through a biased edge is
	// rerouted. The cumulative bias of an edge stays within
	// [0, route.MaxEdgeBias].
	EdgeBias []EdgeBiasEdit
}

// GroupEdit adds or removes one net from one NetGroup.
type GroupEdit struct {
	Group int
	Net   int
}

// EdgeBiasEdit adjusts the phantom congestion of one FPGA-graph edge.
type EdgeBiasEdit struct {
	Edge  int
	Delta int
}

// MaxEdgeBias is the cumulative phantom-load cap per edge; see
// Delta.EdgeBias.
const MaxEdgeBias = route.MaxEdgeBias

// validate checks every edit against the current instance state without
// mutating anything. priorBias, when non-nil, reports the cumulative bias an
// edge already carries (from earlier deltas on the same warm state).
func (d *Delta) validate(in *Instance, priorBias func(edge int) int64) error {
	numNets := len(in.Nets)
	removed := make(map[int]bool, len(d.RemoveNets))
	for _, n := range d.RemoveNets {
		if n < 0 || n >= numNets {
			return fmt.Errorf("tdmroute: delta: removed net %d out of range [0, %d)", n, numNets)
		}
		if len(in.Nets[n].Terminals) == 0 {
			return fmt.Errorf("tdmroute: delta: net %d is already removed", n)
		}
		if removed[n] {
			return fmt.Errorf("tdmroute: delta: net %d removed twice", n)
		}
		removed[n] = true
	}

	nv := in.G.NumVertices()
	for i, nn := range d.AddNets {
		if len(nn.Terminals) == 0 {
			return fmt.Errorf("tdmroute: delta: added net %d has no terminals", i)
		}
		seen := make(map[int]bool, len(nn.Terminals))
		for _, t := range nn.Terminals {
			if t < 0 || t >= nv {
				return fmt.Errorf("tdmroute: delta: added net %d: terminal %d out of range [0, %d)", i, t, nv)
			}
			if seen[t] {
				return fmt.Errorf("tdmroute: delta: added net %d: duplicate terminal %d", i, t)
			}
			seen[t] = true
		}
		for k, g := range nn.Groups {
			if g < 0 || g >= len(in.Groups) {
				return fmt.Errorf("tdmroute: delta: added net %d: group %d out of range [0, %d)", i, g, len(in.Groups))
			}
			if k > 0 && nn.Groups[k-1] >= g {
				return fmt.Errorf("tdmroute: delta: added net %d: groups not strictly increasing", i)
			}
		}
	}

	checkEdit := func(kind string, ge GroupEdit) error {
		if ge.Group < 0 || ge.Group >= len(in.Groups) {
			return fmt.Errorf("tdmroute: delta: %s: group %d out of range [0, %d)", kind, ge.Group, len(in.Groups))
		}
		if ge.Net < 0 || ge.Net >= numNets {
			return fmt.Errorf("tdmroute: delta: %s: net %d out of range [0, %d); group edits apply to pre-existing nets (added nets declare their groups inline)", kind, ge.Net, numNets)
		}
		if len(in.Nets[ge.Net].Terminals) == 0 || removed[ge.Net] {
			return fmt.Errorf("tdmroute: delta: %s: net %d is removed", kind, ge.Net)
		}
		return nil
	}
	editSeen := make(map[GroupEdit]string, len(d.GroupAdd)+len(d.GroupRemove))
	for _, ge := range d.GroupRemove {
		if err := checkEdit("group remove", ge); err != nil {
			return err
		}
		if !containsSorted(in.Groups[ge.Group].Nets, ge.Net) {
			return fmt.Errorf("tdmroute: delta: group remove: net %d is not a member of group %d", ge.Net, ge.Group)
		}
		if editSeen[ge] != "" {
			return fmt.Errorf("tdmroute: delta: duplicate group edit (group %d, net %d)", ge.Group, ge.Net)
		}
		editSeen[ge] = "remove"
	}
	for _, ge := range d.GroupAdd {
		if err := checkEdit("group add", ge); err != nil {
			return err
		}
		if containsSorted(in.Groups[ge.Group].Nets, ge.Net) {
			return fmt.Errorf("tdmroute: delta: group add: net %d is already a member of group %d", ge.Net, ge.Group)
		}
		if editSeen[ge] != "" {
			return fmt.Errorf("tdmroute: delta: conflicting group edits (group %d, net %d)", ge.Group, ge.Net)
		}
		editSeen[ge] = "add"
	}

	ne := in.G.NumEdges()
	cum := make(map[int]int64, len(d.EdgeBias))
	for _, eb := range d.EdgeBias {
		if eb.Edge < 0 || eb.Edge >= ne {
			return fmt.Errorf("tdmroute: delta: edge %d out of range [0, %d)", eb.Edge, ne)
		}
		c, ok := cum[eb.Edge]
		if !ok && priorBias != nil {
			c = priorBias(eb.Edge)
		}
		c += int64(eb.Delta)
		if c < 0 {
			return fmt.Errorf("tdmroute: delta: edge %d cumulative bias would become negative (%d)", eb.Edge, c)
		}
		if c > MaxEdgeBias {
			return fmt.Errorf("tdmroute: delta: edge %d cumulative bias %d exceeds the maximum %d", eb.Edge, c, MaxEdgeBias)
		}
		cum[eb.Edge] = c
	}
	return nil
}

// apply mutates in according to d — removals, then membership edits, then
// additions — and returns the net ids assigned to AddNets. It must run after
// a successful validate; apply itself cannot fail.
func (d *Delta) apply(in *Instance) (added []int) {
	for _, n := range d.RemoveNets {
		for _, gi := range in.Nets[n].Groups {
			in.Groups[gi].Nets = removeSorted(in.Groups[gi].Nets, n)
		}
		in.Nets[n] = Net{} // tombstone; the id is never reused
	}
	for _, ge := range d.GroupRemove {
		in.Groups[ge.Group].Nets = removeSorted(in.Groups[ge.Group].Nets, ge.Net)
		in.Nets[ge.Net].Groups = removeSorted(in.Nets[ge.Net].Groups, ge.Group)
	}
	for _, ge := range d.GroupAdd {
		in.Groups[ge.Group].Nets = insertSorted(in.Groups[ge.Group].Nets, ge.Net)
		in.Nets[ge.Net].Groups = insertSorted(in.Nets[ge.Net].Groups, ge.Group)
	}
	for _, nn := range d.AddNets {
		id := len(in.Nets)
		added = append(added, id)
		net := Net{
			Terminals: append([]int(nil), nn.Terminals...),
			Groups:    append([]int(nil), nn.Groups...),
		}
		in.Nets = append(in.Nets, net)
		for _, gi := range net.Groups {
			// id exceeds every existing member, so appending keeps the
			// member list sorted.
			in.Groups[gi].Nets = append(in.Groups[gi].Nets, id)
		}
	}
	return added
}

// Apply validates d against in and applies the net and group edits in place,
// for building a patched instance outside a warm session (for example the
// cold re-solve an ECO is compared against). EdgeBias entries are validated
// but have no instance-level representation — capacity pressure lives in the
// routing state, not the netlist — so they are otherwise ignored here.
func (d *Delta) Apply(in *Instance) error {
	if err := d.validate(in, nil); err != nil {
		return err
	}
	d.apply(in)
	return nil
}

// containsSorted reports whether sorted slice s contains v.
func containsSorted(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// insertSorted inserts v into sorted slice s, keeping it sorted.
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeSorted removes v from sorted slice s, keeping it sorted.
func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// WarmHandle is the retained solver state of one instance: the live
// instance, the routing and TDM sessions, and the multipliers captured by
// the last relaxation. Run returns it in Response.Warm when Request.Retain
// is set, and consumes it through Request.Base in ModeDelta. A handle is
// single-threaded — at most one Run may use it at a time — and never travels
// over the wire (the serve layer pins handles to the node that built them).
type WarmHandle struct {
	in     *Instance
	opt    Options // normalized base options; delta solves reuse them
	rs     *route.Session
	ts     *tdm.Session
	lambda []float64
	// stale lists nets whose TDM-session routes lag the routing session: a
	// rejected or curtailed final feedback round leaves the TDM state
	// patched to the dropped candidate while the routing session holds the
	// accepted topology. The next delta folds stale into its changed set.
	stale []int
	// err poisons the handle: a delta that failed after mutating the state
	// leaves it unusable, and every later use reports the original failure.
	err error
}

// Instance returns the handle's live instance. Deltas mutate it in place;
// clone it first if a frozen copy is needed.
func (h *WarmHandle) Instance() *Instance { return h.in }

// Routes returns a snapshot of the handle's current routing topology.
func (h *WarmHandle) Routes() Routing { return h.rs.Routes() }

// Lambda returns a copy of the multipliers captured by the last relaxation.
func (h *WarmHandle) Lambda() []float64 { return append([]float64(nil), h.lambda...) }

// Err reports why the handle became unusable, or nil while it is healthy.
func (h *WarmHandle) Err() error { return h.err }

// errCurtailed is the fallback Degraded cause when a stage was curtailed but
// neither the stage's interruption record nor the context carries an error.
var errCurtailed = errors.New("tdmroute: run curtailed without a recorded cause")

// degradedCause picks the definite cause of a curtailed stage: the stage's
// own interruption record when present, the context error otherwise, and the
// errCurtailed sentinel when neither is set. A Degraded report never carries
// a nil Cause — the serve layer and the chaos invariant both rely on that.
func degradedCause(rep Report, ctx context.Context) error {
	if rep.Interrupted != nil {
		return rep.Interrupted
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return errCurtailed
}

// runSingleRetained is runSingle executed through retainable sessions: the
// same stages over the same state (the session wrappers compute exactly what
// their cold counterparts compute), with the session and multipliers kept in
// a WarmHandle for later delta solves.
func runSingleRetained(ctx context.Context, req Request) (*Response, error) {
	h := &WarmHandle{
		in:  req.Instance,
		opt: req.Options,
		rs:  route.NewSession(req.Instance, req.Options.Route),
		ts:  tdm.NewSession(req.Instance),
	}
	res, err := solveBaseSession(ctx, req.Instance, req.Options, h.rs, h.ts, &h.lambda)
	if err != nil {
		return nil, err
	}
	resp := res.response(ModeSingle)
	resp.Warm = h
	return resp, nil
}

// runDelta is the ModeDelta arm of Run: validate the delta against the
// handle, patch the instance and both sessions, reroute only the affected
// nets, and re-run the assignment warm-started from the captured
// multipliers. The result is byte-identical to cold-solving the patched
// instance from the same pre-delta routing (runDeltaCold).
//
// Failure semantics: a delta rejected by validation leaves the handle
// untouched and reusable. A failure after the state has been mutated —
// cancellation before the reroute completes, a contained panic, a hard
// assignment error — poisons the handle (WarmHandle.Err); there is no legal
// topology for the patched instance at that point, so later requests must
// fall back to a cold solve.
func runDelta(ctx context.Context, req Request) (*Response, error) {
	h := req.Base
	if h == nil {
		return nil, errors.New("tdmroute: Run: ModeDelta requires Request.Base (a warm handle from a Retain run)")
	}
	if req.Delta == nil {
		return nil, errors.New("tdmroute: Run: ModeDelta requires Request.Delta")
	}
	if h.err != nil {
		return nil, fmt.Errorf("tdmroute: Run: warm handle is poisoned by an earlier failed delta: %w", h.err)
	}
	if err := req.Delta.validate(h.in, h.rs.EdgeBias); err != nil {
		return nil, err
	}

	added := req.Delta.apply(h.in)
	h.rs.Grow()
	if err := h.rs.Remove(req.Delta.RemoveNets); err != nil {
		h.err = err
		return nil, err
	}
	for _, eb := range req.Delta.EdgeBias {
		if err := h.rs.AddEdgeBias(eb.Edge, eb.Delta); err != nil {
			h.err = err
			return nil, err
		}
	}
	affected := deltaAffectedNets(h.rs.RoutesAlias(), added, req.Delta.EdgeBias)

	res := &Response{Mode: ModeDelta}
	t0 := time.Now()
	err := par.Capture(func() error {
		return h.rs.Reroute(ctx, affected)
	})
	res.Times.Route = time.Since(t0)
	if err != nil {
		h.err = err
		return nil, err
	}
	if verr := problem.ValidateRouting(h.in, h.rs.RoutesAlias()); verr != nil {
		h.err = verr
		return nil, fmt.Errorf("tdmroute: delta reroute produced invalid topology: %w", verr)
	}
	res.RouteStats = RouteStats{
		RoutedNets: len(affected),
		RippedNets: len(affected) - len(added) + len(req.Delta.RemoveNets),
	}

	changed := make([]int, 0, len(affected)+len(req.Delta.RemoveNets)+len(h.stale))
	changed = append(changed, affected...)
	changed = append(changed, req.Delta.RemoveNets...)
	changed = append(changed, h.stale...)

	topt := h.opt.TDM
	topt.Trace = req.Options.TDM.Trace // progress wiring comes from this request
	topt.WarmLambda = h.lambda
	var captured []float64
	topt.CaptureLambda = func(l []float64) { captured = l }
	assign, rep, times, stage, err := assignTimedSession(ctx, h.ts, h.in, h.rs.RoutesAlias(), changed, topt)
	res.Times.LR = times.LR
	res.Times.LegalRefine = times.LegalRefine
	if err != nil {
		h.err = err
		return nil, err
	}
	h.stale = nil
	if captured != nil {
		h.lambda = captured
	}
	res.Report = rep
	res.Solution = &Solution{Routes: h.rs.Routes(), Assign: assign}
	if stage != "" {
		res.Degraded = &Degraded{
			Stage:        stage,
			Cause:        degradedCause(rep, ctx),
			LRIterations: rep.Iterations,
			IncumbentGTR: rep.GTRMax,
		}
	}
	res.Warm = h
	return res, nil
}

// deltaAffectedNets returns, in ascending order, the nets a delta must
// reroute: every added net plus every net currently routed through an edge
// whose bias changed. Removed nets are already unrouted by the time this
// runs, so they drop out naturally.
func deltaAffectedNets(routes Routing, added []int, bias []EdgeBiasEdit) []int {
	touched := make(map[int]bool, len(added))
	for _, n := range added {
		touched[n] = true
	}
	if len(bias) > 0 {
		edge := make(map[int]bool, len(bias))
		for _, eb := range bias {
			if eb.Delta != 0 {
				edge[eb.Edge] = true
			}
		}
		for n, es := range routes {
			if touched[n] {
				continue
			}
			for _, e := range es {
				if edge[e] {
					touched[n] = true
					break
				}
			}
		}
	}
	out := make([]int, 0, len(touched))
	for n := range touched {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// runDeltaCold is the from-scratch reference implementation of the delta
// solve, kept for the equivalence suite (the delta analogue of
// solveIterativeCold): apply the delta to a frozen pre-delta instance, seed
// a fresh routing session from the pre-delta topology, replay the cumulative
// edge bias, reroute the affected nets, and run a cold LR build warm-started
// from the same multipliers. priorBias replays bias applied by earlier
// deltas on the same warm state; stale plays the role of WarmHandle.stale
// (it only widens the changed set, which the cold build ignores anyway). The
// returned routing and multipliers chain into the next cold step.
func runDeltaCold(ctx context.Context, in *Instance, base Routing, priorBias []EdgeBiasEdit, lambda []float64, d *Delta, opt Options) (*Response, Routing, []float64, error) {
	opt, optErr := opt.normalized()
	if optErr != nil {
		return nil, nil, nil, optErr
	}
	if err := d.validate(in, cumulativeBias(priorBias)); err != nil {
		return nil, nil, nil, err
	}
	added := d.apply(in)
	routes := base.Clone()
	for range added {
		routes = append(routes, nil)
	}
	rs, err := route.NewSessionFromRouting(in, routes, opt.Route)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, eb := range priorBias {
		if err := rs.AddEdgeBias(eb.Edge, eb.Delta); err != nil {
			return nil, nil, nil, err
		}
	}
	if err := rs.Remove(d.RemoveNets); err != nil {
		return nil, nil, nil, err
	}
	for _, eb := range d.EdgeBias {
		if err := rs.AddEdgeBias(eb.Edge, eb.Delta); err != nil {
			return nil, nil, nil, err
		}
	}
	affected := deltaAffectedNets(rs.RoutesAlias(), added, d.EdgeBias)

	res := &Response{Mode: ModeDelta}
	t0 := time.Now()
	err = par.Capture(func() error {
		return rs.Reroute(ctx, affected)
	})
	res.Times.Route = time.Since(t0)
	if err != nil {
		return nil, nil, nil, err
	}
	if verr := problem.ValidateRouting(in, rs.RoutesAlias()); verr != nil {
		return nil, nil, nil, fmt.Errorf("tdmroute: delta reroute produced invalid topology: %w", verr)
	}
	res.RouteStats = RouteStats{
		RoutedNets: len(affected),
		RippedNets: len(affected) - len(added) + len(d.RemoveNets),
	}

	topt := opt.TDM
	topt.WarmLambda = lambda
	var captured []float64
	topt.CaptureLambda = func(l []float64) { captured = l }
	assign, rep, times, stage, err := assignTimed(ctx, in, rs.RoutesAlias(), topt)
	res.Times.LR = times.LR
	res.Times.LegalRefine = times.LegalRefine
	if err != nil {
		return nil, nil, nil, err
	}
	res.Report = rep
	res.Solution = &Solution{Routes: rs.Routes(), Assign: assign}
	if stage != "" {
		res.Degraded = &Degraded{
			Stage:        stage,
			Cause:        degradedCause(rep, ctx),
			LRIterations: rep.Iterations,
			IncumbentGTR: rep.GTRMax,
		}
	}
	return res, rs.Routes(), captured, nil
}

// cumulativeBias folds a replayed bias-edit list into a per-edge lookup.
func cumulativeBias(edits []EdgeBiasEdit) func(edge int) int64 {
	if len(edits) == 0 {
		return nil
	}
	cum := make(map[int]int64, len(edits))
	for _, eb := range edits {
		cum[eb.Edge] += int64(eb.Delta)
	}
	return func(edge int) int64 { return cum[edge] }
}
