// Convergence: emits the Fig. 3(b) series — the fractional maximum group
// TDM ratio z and the Lagrangian lower bound LB per LR iteration — as CSV
// on stdout, for the synopsys01-like benchmark.
//
//	go run ./examples/convergence [-scale 0.01] > convergence.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tdmroute/internal/exp"
)

func main() {
	scale := flag.Float64("scale", 0.01, "benchmark scale")
	bench := flag.String("bench", "synopsys01", "suite benchmark name")
	flag.Parse()

	series, err := exp.Fig3b(exp.Config{Scale: *scale, Benchmarks: []string{*bench}})
	if err != nil {
		log.Fatal(err)
	}
	exp.WriteFig3b(os.Stdout, series)
	last := series[len(series)-1]
	fmt.Fprintf(os.Stderr, "%d iterations, final z %.4f, final LB %.4f, gap %.4f%%\n",
		len(series), last.Z, last.LB, 100*(last.Z-last.LB)/last.LB)
}
