// Compile: the full multi-FPGA compilation flow of Fig. 2(a) of the paper
// on a synthetic design — netlist partitioning (FM recursive bisection)
// onto a board, then the paper's inter-FPGA routing + TDM ratio
// assignment co-optimization, and finally a hardware-level check that every
// edge's ratios build a legal TDM slot schedule.
//
//	go run ./examples/compile [-cells 3000] [-nets 7000] [-rows 4 -cols 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"tdmroute"
	"tdmroute/internal/graph"
	"tdmroute/internal/partition"
	"tdmroute/internal/pinassign"
	"tdmroute/internal/sim"
)

func main() {
	cells := flag.Int("cells", 3000, "netlist cells")
	nets := flag.Int("nets", 7000, "netlist logical nets")
	rows := flag.Int("rows", 4, "board rows")
	cols := flag.Int("cols", 4, "board cols")
	seed := flag.Int64("seed", 1, "seed")
	pow2 := flag.Bool("pow2", true, "restrict ratios to powers of two (short TDM frames, slightly worse GTR)")
	flag.Parse()

	// 1. Synthesize a gate-level netlist.
	h, err := partition.GenerateNetlist(partition.NetlistConfig{
		Cells: *cells, Nets: *nets, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist: %d cells, %d logical nets, total area %d\n",
		h.NumCells(), len(h.Nets), h.TotalWeight())

	// 2. Board: rows x cols grid of FPGAs.
	k := *rows * *cols
	board := graph.New(k, 2*k)
	for r := 0; r < *rows; r++ {
		for c := 0; c < *cols; c++ {
			v := r**cols + c
			if c+1 < *cols {
				board.AddEdge(v, v+1)
			}
			if r+1 < *rows {
				board.AddEdge(v, v+*cols)
			}
		}
	}

	// 3. Partition the netlist onto the FPGAs.
	parts, err := partition.KWay(h, k, partition.FMOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	cut := partition.CutSize(h, parts)
	fmt.Printf("partitioned onto %d FPGAs: cut = %d inter-FPGA nets (%.1f%% of nets)\n",
		k, cut, 100*float64(cut)/float64(len(h.Nets)))

	// 4. Bridge to a routing instance and run the paper's framework.
	in, err := partition.BuildInstance("compiled", h, parts, board)
	if err != nil {
		log.Fatal(err)
	}
	if err := tdmroute.ValidateInstance(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %v\n", tdmroute.ComputeStats(in))

	opt := tdmroute.Options{}
	if *pow2 {
		opt.TDM.Legal = tdmroute.LegalPow2
	}
	res, err := tdmroute.Solve(in, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(in, res.Solution); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved: GTR_max %d (LB %.0f, %d LR iterations)\n",
		res.Report.GTRMax, res.Report.LowerBound, res.Report.Iterations)
	fmt.Printf("stage times: route %.3fs, LR %.3fs, legalize+refine %.3fs\n",
		res.Times.Route.Seconds(), res.Times.LR.Seconds(), res.Times.LegalRefine.Seconds())

	// 5. Hardware-level sanity: the ratios on every edge form a legal TDM
	// slot schedule.
	verified, skipped, err := tdmroute.VerifySchedules(in, res.Solution)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TDM schedules verified on %d edges (%d skipped: frame too long)\n", verified, skipped)

	// 6. Downstream stages: pin assignment onto physical wires, analytic
	// timing, and (in pow2 mode) a discrete-event simulation of the slot
	// schedules to measure real end-to-end latencies.
	pins, err := pinassign.Assign(in, res.Solution)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pin assignment: %d wires total (lower bound %d), widest connection %d wires\n",
		pins.TotalWires, pins.TotalLowerBound, pins.MaxWires)

	trep, err := tdmroute.AnalyzeTiming(in, res.Solution, tdmroute.TimingModel{})
	if err != nil {
		log.Fatal(err)
	}
	if trep.WorstGroup >= 0 {
		fmt.Printf("analytic timing: worst group %d at %.1f ns\n",
			trep.WorstGroup, trep.Groups[trep.WorstGroup].DelayNS)
	}

	if *pow2 {
		simRes, err := sim.Run(in, res.Solution, sim.Options{WordsPerNet: 4})
		if err != nil {
			log.Fatal(err)
		}
		var worstLat int64
		worstNet := -1
		for n, st := range simRes.Nets {
			if st.Simulated && st.MaxLatency > worstLat {
				worstLat, worstNet = st.MaxLatency, n
			}
		}
		fmt.Printf("simulation: %d TDM ticks; worst measured word latency %d ticks (net %d)\n",
			simRes.Ticks, worstLat, worstNet)
	}
}
