// Schedule: solves the Fig. 1(a) system and then renders, for the busiest
// edge, the concrete TDM slot table of Fig. 1(b)(c) — the hardware meaning
// of the assigned ratios — plus a short simulation of delivered words.
//
//	go run ./examples/schedule
package main

import (
	"fmt"
	"log"

	"tdmroute"
	"tdmroute/internal/graph"
	"tdmroute/internal/mux"
	"tdmroute/internal/problem"
)

func main() {
	g := graph.New(6, 7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 0)
	g.AddEdge(1, 4)
	in := &tdmroute.Instance{
		Name: "fig1",
		G:    g,
		Nets: []tdmroute.Net{
			{Terminals: []int{1, 2}},
			{Terminals: []int{1, 2, 4}},
			{Terminals: []int{0, 2}},
			{Terminals: []int{5, 3}},
			{Terminals: []int{0, 4}},
		},
		Groups: []tdmroute.Group{
			{Nets: []int{0, 1}},
			{Nets: []int{2}},
			{Nets: []int{3, 4}},
		},
	}
	in.RebuildNetGroups()

	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Find the edge carrying the most signals.
	loads := problem.EdgeLoads(in.G.NumEdges(), res.Solution.Routes)
	busiest, max := -1, 0
	for e, ls := range loads {
		if len(ls) > max {
			busiest, max = e, len(ls)
		}
	}
	if busiest < 0 {
		log.Fatal("no routed edges")
	}
	ed := in.G.Edge(busiest)
	fmt.Printf("busiest edge: F%d-F%d with %d multiplexed signals\n", ed.U+1, ed.V+1, max)

	var ratios []int64
	var owners []int
	for _, l := range loads[busiest] {
		ratios = append(ratios, res.Solution.Assign.Ratios[l.Net][l.Pos])
		owners = append(owners, l.Net)
	}
	for i, n := range owners {
		fmt.Printf("  slot owner %d = net %d, TDM ratio %d\n", i, n, ratios[i])
	}

	sched, err := mux.Build(ratios)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframe length %d TDM ticks, utilization %.0f%%\n",
		sched.FrameLen, 100*sched.Utilization())
	fmt.Printf("slot table: %v\n", sched)
	gaps := sched.Gaps()
	for i := range ratios {
		fmt.Printf("  signal %d: worst wait %d ticks (ratio %d)\n", i, gaps[i], ratios[i])
	}

	const frames = 4
	fmt.Printf("\nsimulating %d system-clock frames:\n", frames)
	for i, st := range sched.Simulate(frames) {
		fmt.Printf("  signal %d delivered %d words (max wait %d)\n", i, st.Words, st.MaxWait)
	}
}
