// Scaling: sweeps the benchmark scale factor and reports how runtime and
// solution quality grow with netlist size — the practical sizing guide for
// "runtimes are acceptable for practical use of large-scale multi-FPGA
// systems" (Sec. V).
//
//	go run ./examples/scaling [-bench synopsys01] [-scales 0.002,0.005,0.01,0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"tdmroute"
	"tdmroute/internal/gen"
)

func main() {
	bench := flag.String("bench", "synopsys01", "suite benchmark name")
	scalesArg := flag.String("scales", "0.002,0.005,0.01,0.02", "comma-separated scale factors")
	flag.Parse()

	var scales []float64
	for _, s := range strings.Split(*scalesArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			log.Fatalf("bad scale %q: %v", s, err)
		}
		scales = append(scales, v)
	}

	fmt.Printf("%-8s %10s %10s %12s %12s %10s %8s\n",
		"scale", "#nets", "#groups", "GTR_max", "LB", "time", "iters")
	for _, scale := range scales {
		cfg, err := gen.SuiteConfig(*bench, scale)
		if err != nil {
			log.Fatal(err)
		}
		in, err := gen.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		res, err := tdmroute.Solve(in, tdmroute.Options{})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		fmt.Printf("%-8g %10d %10d %12d %12.0f %9.3fs %8d\n",
			scale, len(in.Nets), len(in.Groups),
			res.Report.GTRMax, res.Report.LowerBound, elapsed.Seconds(), res.Report.Iterations)
	}
}
