// Quickstart: build the Fig. 1(a)-style multi-FPGA system in code, solve
// routing + TDM ratio assignment with the public API, and inspect the
// result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"tdmroute"
	"tdmroute/internal/graph"
)

func main() {
	// A 6-FPGA board with 7 physical connections, as in Fig. 1(a).
	g := graph.New(6, 7)
	g.AddEdge(0, 1) // F1-F2
	g.AddEdge(1, 2) // F2-F3
	g.AddEdge(2, 3) // F3-F4
	g.AddEdge(3, 4) // F4-F5
	g.AddEdge(4, 5) // F5-F6
	g.AddEdge(5, 0) // F6-F1
	g.AddEdge(1, 4) // F2-F5 cross link

	in := &tdmroute.Instance{
		Name: "fig1",
		G:    g,
		Nets: []tdmroute.Net{
			{Terminals: []int{1, 2}},    // signal 1: F2 -> F3
			{Terminals: []int{1, 2, 4}}, // signal 2: F2 -> F3, F5
			{Terminals: []int{0, 2}},    // signal 3: F1 -> F3
			{Terminals: []int{5, 3}},    // background traffic
			{Terminals: []int{0, 4}},
		},
		Groups: []tdmroute.Group{
			{Nets: []int{0, 1}}, // timing-critical path
			{Nets: []int{2}},
			{Nets: []int{3, 4}},
		},
	}
	in.RebuildNetGroups()
	if err := tdmroute.ValidateInstance(in); err != nil {
		log.Fatal(err)
	}

	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(in, res.Solution); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instance: %v\n\n", tdmroute.ComputeStats(in))
	for n, edges := range res.Solution.Routes {
		fmt.Printf("net %d routed over %d edge(s):", n, len(edges))
		for k, e := range edges {
			ed := in.G.Edge(e)
			fmt.Printf("  F%d-F%d@%d", ed.U+1, ed.V+1, res.Solution.Assign.Ratios[n][k])
		}
		fmt.Println()
	}
	fmt.Println()
	for gi, gtr := range tdmroute.GroupTDMs(in, res.Solution) {
		fmt.Printf("group %d TDM ratio: %d\n", gi, gtr)
	}
	gtr, arg := tdmroute.Evaluate(in, res.Solution)
	fmt.Printf("\nGTR_max = %d (group %d), lower bound %.2f, %d LR iterations\n",
		gtr, arg, res.Report.LowerBound, res.Report.Iterations)

	// Solutions round-trip through the text format used by cmd/eval.
	if err := tdmroute.WriteSolution(os.Stdout, res.Solution); err != nil {
		log.Fatal(err)
	}
}
