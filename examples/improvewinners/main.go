// Improve-winners: reproduces the paper's headline experiment (Table II,
// "+TA" rows) on one synthetic benchmark — take each emulated contest
// winner's routing topology, replace its TDM ratio assignment with the
// paper's LR + legalization + refinement, and watch the maximum group TDM
// ratio drop close to the full framework's result.
//
//	go run ./examples/improvewinners [-scale 0.01] [-bench synopsys01]
package main

import (
	"flag"
	"fmt"
	"log"

	"tdmroute"
	"tdmroute/internal/baseline"
	"tdmroute/internal/gen"
)

func main() {
	scale := flag.Float64("scale", 0.01, "benchmark scale")
	bench := flag.String("bench", "synopsys01", "suite benchmark name")
	flag.Parse()

	cfg, err := gen.SuiteConfig(*bench, *scale)
	if err != nil {
		log.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s\n\n", tdmroute.ComputeStats(in))

	topt := tdmroute.TDMOptions{} // paper defaults

	for _, w := range baseline.Winners() {
		routes, err := w.Route(in)
		if err != nil {
			log.Fatal(err)
		}
		own := &tdmroute.Solution{Routes: routes, Assign: w.Assign(in, routes)}
		ownGTR, _ := tdmroute.Evaluate(in, own)

		assign, rep, err := tdmroute.AssignTDM(in, routes, topt)
		if err != nil {
			log.Fatal(err)
		}
		improved := &tdmroute.Solution{Routes: routes, Assign: assign}
		if err := tdmroute.ValidateSolution(in, improved); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: own GTR_max %d  ->  +TA GTR_max %d (LB %.0f, %d iters, %.2f%% improvement)\n",
			w.Name, ownGTR, rep.GTRMax, rep.LowerBound, rep.Iterations,
			100*(1-float64(rep.GTRMax)/float64(ownGTR)))
	}

	res, err := tdmroute.Solve(in, tdmroute.Options{TDM: topt})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nours (full framework): GTR_max %d (LB %.0f, %d iters)\n",
		res.Report.GTRMax, res.Report.LowerBound, res.Report.Iterations)
}
