package tdmroute_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"tdmroute"
	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
)

// Tests of the anytime contract: cancellation and deadlines return the best
// legal incumbent with a Degraded report, deterministically.

func anytimeInstance(t *testing.T) *tdmroute.Instance {
	t.Helper()
	in, err := gen.Generate(gen.Config{
		Name: "anytime", Seed: 3,
		FPGAs: 10, Edges: 18, Nets: 36, Groups: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// cancelAtIter returns options whose LR trace cancels at iteration k.
func cancelAtIter(opt tdmroute.Options, cancel context.CancelFunc, k int) tdmroute.Options {
	opt.TDM.Trace = func(iter int, z, lb float64) {
		if iter >= k {
			cancel()
		}
	}
	return opt
}

func TestSolveCtxCancelMidLR(t *testing.T) {
	in := anytimeInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := cancelAtIter(tdmroute.Options{TDM: tdmroute.TDMOptions{Epsilon: 1e-9, MaxIter: 500}}, cancel, 5)
	res, err := tdmroute.SolveCtx(ctx, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == nil {
		t.Fatal("cancel at LR iteration 5 did not mark the result degraded")
	}
	d := res.Degraded
	if d.Stage != tdmroute.StageLR {
		t.Errorf("stage = %q, want %q", d.Stage, tdmroute.StageLR)
	}
	if !errors.Is(d.Cause, context.Canceled) {
		t.Errorf("cause = %v, want context.Canceled", d.Cause)
	}
	if d.IncumbentGTR != res.Report.GTRMax {
		t.Errorf("IncumbentGTR = %d, Report.GTRMax = %d", d.IncumbentGTR, res.Report.GTRMax)
	}
	if err := problem.ValidateSolution(in, res.Solution); err != nil {
		t.Fatalf("degraded incumbent is not legal: %v", err)
	}
}

// The TDM incumbent under a fixed cancellation point must not depend on
// the worker count: on a topology small enough that the LR inner loops run
// inline (n below Workers x par.MinChunk), Workers=1 and Workers=8 must
// produce byte-identical assignments. (The routing stage's wave partition
// legitimately varies with the worker count, so the invariant is stated on
// a fixed topology.)
func TestAssignTDMCtxCancelWorkerInvariant(t *testing.T) {
	in := anytimeInstance(t)
	base, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	topo := base.Solution.Routes
	assign := func(workers int) []byte {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		topt := tdmroute.TDMOptions{Epsilon: 1e-9, MaxIter: 400, Workers: workers}
		topt.Trace = func(iter int, z, lb float64) {
			if iter >= 7 {
				cancel()
			}
		}
		a, rep, err := tdmroute.AssignTDMCtx(ctx, in, topo, topt)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Interrupted == nil {
			t.Fatal("expected an interrupted assignment")
		}
		sol := &tdmroute.Solution{Routes: topo, Assign: a}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Fatalf("interrupted assignment is not legal: %v", err)
		}
		var buf bytes.Buffer
		if err := problem.WriteSolution(&buf, sol); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := assign(1)
	many := assign(8)
	if !bytes.Equal(one, many) {
		t.Error("incumbent differs between Workers=1 and Workers=8 under the same cancellation point")
	}
}

// Repeating the identical cancellation must reproduce the identical
// incumbent — the determinism clause of the anytime contract.
func TestSolveCtxCancelDeterministic(t *testing.T) {
	in := anytimeInstance(t)
	run := func() []byte {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opt := cancelAtIter(tdmroute.Options{TDM: tdmroute.TDMOptions{Epsilon: 1e-9, MaxIter: 400}}, cancel, 3)
		res, err := tdmroute.SolveCtx(ctx, in, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := problem.WriteSolution(&buf, res.Solution); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("identical cancellation points produced different incumbents")
	}
}

func TestSolveCtxPreCancelledIsError(t *testing.T) {
	in := anytimeInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := tdmroute.SolveCtx(ctx, in, tdmroute.Options{})
	if err == nil {
		t.Fatalf("pre-cancelled solve returned a result (degraded=%v); no legal incumbent can exist", res.Degraded)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
}

func TestSolveCtxExpiredDeadline(t *testing.T) {
	in := anytimeInstance(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, err := tdmroute.SolveCtx(ctx, in, tdmroute.Options{})
	if err == nil {
		t.Fatal("expired deadline before routing returned a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
}

func TestSolveIterativeCtxCancelBetweenRounds(t *testing.T) {
	in := anytimeInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel deep into LR so the base solve completes its budget but the
	// feedback rounds find the context dead.
	fired := 0
	opt := tdmroute.IterateOptions{
		Rounds: 3,
		Base:   tdmroute.Options{TDM: tdmroute.TDMOptions{Epsilon: 1e-9, MaxIter: 30}},
	}
	opt.Base.TDM.Trace = func(iter int, z, lb float64) {
		fired++
		if fired > 40 {
			cancel()
		}
	}
	res, err := tdmroute.SolveIterativeCtx(ctx, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateSolution(in, res.Solution); err != nil {
		t.Fatalf("incumbent is not legal: %v", err)
	}
	if res.Degraded != nil && res.Degraded.Cause == nil {
		t.Error("Degraded set without a cause")
	}
}

func TestSolveIterativeTimesSurviveCancel(t *testing.T) {
	in := anytimeInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	opt := tdmroute.IterateOptions{
		Rounds: 3,
		Base:   tdmroute.Options{TDM: tdmroute.TDMOptions{Epsilon: 1e-9, MaxIter: 50}},
	}
	opt.Base.TDM.Trace = func(iter int, z, lb float64) {
		fired++
		if fired > 60 {
			cancel()
		}
	}
	res, err := tdmroute.SolveIterativeCtx(ctx, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The route and LR stages ran regardless of where the cancellation
	// hit; their time must not be dropped on the early-return paths.
	if res.Times.Route <= 0 {
		t.Error("Times.Route lost on the cancellation path")
	}
	if res.Times.LR <= 0 {
		t.Error("Times.LR lost on the cancellation path")
	}
}
