package tdmroute

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"tdmroute/internal/problem"
)

// TestQueueEngineEquivalence is the byte-identity contract of the bucket
// queue: across generator seeds, worker counts, and a deterministic
// mid-round cancellation, routing with Queue "bucket" must reproduce the
// binary-heap engine exactly — same solution bytes, same objective. The
// canonical equal-cost tie-break (smallest edge id wins the predecessor)
// makes every shortest path a pure function of the graph and costs,
// independent of queue pop order; this suite is that argument's executable
// form at pipeline scale.
func TestQueueEngineEquivalence(t *testing.T) {
	cases := []struct {
		bench string
		shift int64
	}{
		{"synopsys01", 0},
		{"synopsys03", 3},
		{"hidden02", 5},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			for _, cancelRound := range []int{-1, 1} {
				in := equivInstance(t, tc.bench, tc.shift)
				run := func(queue string) *Response {
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					req := Request{
						Instance: in,
						Mode:     ModeIterative,
						Rounds:   3,
						Options:  Options{Workers: workers, Queue: queue},
					}
					if cancelRound >= 0 {
						req.onRound = func(round int) {
							if round == cancelRound {
								cancel()
							}
						}
					}
					resp, err := Run(ctx, req)
					if err != nil {
						t.Fatalf("%s workers=%d cancel=%d queue=%s: %v",
							tc.bench, workers, cancelRound, queue, err)
					}
					return resp
				}
				heap := run("heap")
				bucket := run("bucket")
				if heap.Report.GTRMax != bucket.Report.GTRMax ||
					heap.RoundsRun != bucket.RoundsRun ||
					heap.RoundsKept != bucket.RoundsKept {
					t.Fatalf("%s workers=%d cancel=%d: heap (gtr=%d run=%d kept=%d) vs bucket (gtr=%d run=%d kept=%d)",
						tc.bench, workers, cancelRound,
						heap.Report.GTRMax, heap.RoundsRun, heap.RoundsKept,
						bucket.Report.GTRMax, bucket.RoundsRun, bucket.RoundsKept)
				}
				hb := solutionBytes(t, heap.Solution)
				bb := solutionBytes(t, bucket.Solution)
				if !bytes.Equal(hb, bb) {
					t.Fatalf("%s workers=%d cancel=%d: heap and bucket solutions diverged (%d vs %d bytes)",
						tc.bench, workers, cancelRound, len(hb), len(bb))
				}
			}
		}
	}
}

// TestPartitionedRoutingWorkerInvariance pins the determinism contract of
// partitioned initial routing: for a fixed Partitions count the result is a
// pure function of the instance and the options minus Workers — unlike the
// wave path, whose schedule feeds congestion back into the result. Every
// solution must also survive the independent validator.
func TestPartitionedRoutingWorkerInvariance(t *testing.T) {
	cases := []struct {
		bench string
		shift int64
	}{
		{"synopsys01", 0},
		{"synopsys04", 4},
	}
	for _, tc := range cases {
		in := equivInstance(t, tc.bench, tc.shift)
		var ref []byte
		var refGTR int64
		for _, workers := range []int{1, 4} {
			resp, err := Run(context.Background(), Request{
				Instance: in,
				Options:  Options{Workers: workers, Partitions: 3},
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.bench, workers, err)
			}
			if err := problem.ValidateSolution(in, resp.Solution); err != nil {
				t.Fatalf("%s workers=%d: partitioned solution invalid: %v", tc.bench, workers, err)
			}
			b := solutionBytes(t, resp.Solution)
			if ref == nil {
				ref, refGTR = b, resp.Report.GTRMax
				continue
			}
			if resp.Report.GTRMax != refGTR || !bytes.Equal(b, ref) {
				t.Fatalf("%s: partitioned solve depends on Workers (gtr %d vs %d, %d vs %d bytes)",
					tc.bench, resp.Report.GTRMax, refGTR, len(b), len(ref))
			}
		}
	}
}

// TestOptionValidation pins the typed validation of the new Request knobs:
// a bad queue name or a negative partition count fails with an *OptionError
// naming the field, before any solving starts.
func TestOptionValidation(t *testing.T) {
	in := equivInstance(t, "synopsys01", 0)
	cases := []struct {
		name  string
		opt   Options
		field string
	}{
		{"bad queue", Options{Queue: "fibonacci"}, "queue"},
		{"negative partitions", Options{Partitions: -2}, "partitions"},
	}
	for _, tc := range cases {
		_, err := Run(context.Background(), Request{Instance: in, Options: tc.opt})
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: Run returned %v, want *OptionError", tc.name, err)
		}
		if oe.Field != tc.field {
			t.Errorf("%s: OptionError.Field = %q, want %q", tc.name, oe.Field, tc.field)
		}
	}
	// The accepted names round-trip through ParseQueue.
	for _, q := range []string{"", "auto", "heap", "bucket"} {
		if _, err := ParseQueue(q); err != nil {
			t.Errorf("ParseQueue(%q) = %v, want nil", q, err)
		}
	}
}
