// Command compare diffs two solutions of the same instance: overall
// GTR_max, per-group movements, and routing congestion — the view a
// physical-design engineer wants when judging whether a new flow actually
// helped.
//
// Usage:
//
//	compare -in bench.txt -a old.txt -b new.txt [-top 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tdmroute"
	"tdmroute/internal/eval"
)

func main() {
	var (
		inPath = flag.String("in", "", "instance file (required)")
		aPath  = flag.String("a", "", "baseline solution file (required)")
		bPath  = flag.String("b", "", "candidate solution file (required)")
		top    = flag.Int("top", 5, "number of biggest group movements to print")
	)
	flag.Parse()
	if *inPath == "" || *aPath == "" || *bPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *inPath, *aPath, *bPath, *top); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
}

func run(w *os.File, inPath, aPath, bPath string, top int) error {
	in, err := tdmroute.LoadInstance(inPath)
	if err != nil {
		return err
	}
	if err := tdmroute.ValidateInstance(in); err != nil {
		return fmt.Errorf("invalid instance: %w", err)
	}
	load := func(path string) (*tdmroute.Solution, error) {
		sol, err := tdmroute.LoadSolution(path, in.G.NumEdges())
		if err != nil {
			return nil, err
		}
		if err := tdmroute.ValidateSolution(in, sol); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return sol, nil
	}
	a, err := load(aPath)
	if err != nil {
		return err
	}
	b, err := load(bPath)
	if err != nil {
		return err
	}

	gtrA, argA := tdmroute.Evaluate(in, a)
	gtrB, argB := tdmroute.Evaluate(in, b)
	fmt.Fprintf(w, "GTR_max: %d (group %d)  ->  %d (group %d)", gtrA, argA, gtrB, argB)
	switch {
	case gtrB < gtrA:
		fmt.Fprintf(w, "  improved %.2f%%\n", 100*(1-float64(gtrB)/float64(gtrA)))
	case gtrB > gtrA:
		fmt.Fprintf(w, "  WORSE by %.2f%%\n", 100*(float64(gtrB)/float64(gtrA)-1))
	default:
		fmt.Fprintln(w, "  unchanged")
	}

	ca := eval.Congestion(in.G.NumEdges(), a.Routes)
	cb := eval.Congestion(in.G.NumEdges(), b.Routes)
	fmt.Fprintf(w, "wirelength: %d -> %d; max edge load: %d -> %d; used edges: %d -> %d\n",
		ca.Wirelength, cb.Wirelength, ca.MaxLoad, cb.MaxLoad, ca.UsedEdges, cb.UsedEdges)

	// Biggest per-group movements.
	ga := tdmroute.GroupTDMs(in, a)
	gb := tdmroute.GroupTDMs(in, b)
	type move struct {
		gi    int
		delta int64
	}
	moves := make([]move, 0, len(ga))
	for gi := range ga {
		if d := gb[gi] - ga[gi]; d != 0 {
			moves = append(moves, move{gi, d})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return abs64(moves[i].delta) > abs64(moves[j].delta) })
	if top > len(moves) {
		top = len(moves)
	}
	if top > 0 {
		fmt.Fprintf(w, "largest group TDM movements:\n")
		for _, m := range moves[:top] {
			fmt.Fprintf(w, "  group %6d: %8d -> %8d (%+d)\n", m.gi, ga[m.gi], gb[m.gi], m.delta)
		}
	}
	return nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
