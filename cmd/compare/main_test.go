package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdmroute"
	"tdmroute/internal/baseline"
	"tdmroute/internal/gen"
)

func fixtures(t *testing.T) (inPath, aPath, bPath string) {
	t.Helper()
	cfg, err := gen.SuiteConfig("synopsys01", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline = worst winner flow; candidate = our framework.
	w := baseline.Winners()[0]
	a, err := w.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	inPath = filepath.Join(dir, "in.txt")
	aPath = filepath.Join(dir, "a.txt")
	bPath = filepath.Join(dir, "b.txt")
	if err := tdmroute.SaveInstance(inPath, in); err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.SaveSolution(aPath, a); err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.SaveSolution(bPath, res.Solution); err != nil {
		t.Fatal(err)
	}
	return inPath, aPath, bPath
}

func TestCompareRuns(t *testing.T) {
	inPath, aPath, bPath := fixtures(t)
	// Write output to a temp file to keep test logs clean.
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(out, inPath, aPath, bPath, 3); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"GTR_max", "wirelength", "improved"} {
		if !contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCompareSameFileUnchanged(t *testing.T) {
	inPath, aPath, _ := fixtures(t)
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(out, inPath, aPath, aPath, 3); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out.Name())
	if !contains(string(data), "unchanged") {
		t.Errorf("identical solutions not reported unchanged:\n%s", data)
	}
}

func TestCompareErrors(t *testing.T) {
	inPath, aPath, _ := fixtures(t)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := run(devnull, "/nonexistent", aPath, aPath, 1); err == nil {
		t.Error("missing instance accepted")
	}
	if err := run(devnull, inPath, "/nonexistent", aPath, 1); err == nil {
		t.Error("missing baseline accepted")
	}
	if err := run(devnull, inPath, aPath, "/nonexistent", 1); err == nil {
		t.Error("missing candidate accepted")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
