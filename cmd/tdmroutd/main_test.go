package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"tdmroute"
	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
	"tdmroute/internal/serve"
)

func testInstance(t *testing.T) *tdmroute.Instance {
	t.Helper()
	cfg, err := gen.SuiteConfig("synopsys01", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Name = "synopsys01"
	return in
}

// TestServerMainSIGTERMDrain runs the daemon in-process, puts a job mid-LR,
// and SIGTERMs the process: the daemon must finish the job with its
// best-so-far incumbent, reject nothing silently, and exit 0.
func TestServerMainSIGTERMDrain(t *testing.T) {
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- serverMain([]string{"-addr", "127.0.0.1:0", "-pool", "1", "-quiet"},
			io.Discard, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("serverMain exited with %d before becoming ready", code)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	in := testInstance(t)
	c := &serve.Client{BaseURL: "http://" + addr}
	ctx := context.Background()
	if ok, err := c.Healthy(ctx); err != nil || !ok {
		t.Fatalf("Healthy = %v, %v; want true", ok, err)
	}

	// A job that stays in LR until interrupted.
	st, err := c.Submit(ctx, serve.SubmitRequest{Instance: in, Epsilon: 1e-12, MaxIter: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Follow the SSE stream; SIGTERM the process at the first LR event.
	// The stream must then end with a "done" event carrying the terminal
	// state — the drain finishing the job, not dropping it.
	var last serve.Event
	sigSent := false
	streamErr := c.Stream(ctx, st.ID, func(e serve.Event) error {
		last = e
		if e.Type == "lr" && !sigSent {
			sigSent = true
			if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
				return fmt.Errorf("kill: %v", err)
			}
		}
		return nil
	})
	if streamErr != nil {
		t.Fatalf("stream: %v (last event %+v)", streamErr, last)
	}
	if !sigSent {
		t.Fatal("job finished before any LR event; nothing was drained")
	}
	if last.Type != "done" || last.State != serve.StateDone {
		t.Fatalf("final event = %+v, want a done event with state done", last)
	}

	// The job drained with a best-so-far incumbent; fetch it through the
	// still-open HTTP server (connections drain after jobs do) and check
	// it is legal. The window between job drain and socket close is
	// narrow, so tolerate a connection error but not a bad solution.
	if final, err := c.Status(ctx, st.ID); err == nil {
		if final.Response == nil || final.Response.Degraded == nil {
			t.Errorf("drained job reports no Degraded: %+v", final.Response)
		}
		if sol, err := c.Solution(ctx, st.ID, serve.FormatText); err == nil {
			if verr := problem.ValidateSolution(in, sol); verr != nil {
				t.Errorf("drained incumbent invalid: %v", verr)
			}
		}
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d after SIGTERM drain, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serverMain did not exit after SIGTERM")
	}
}

// TestServerMainBadFlags pins the usage exit code.
func TestServerMainBadFlags(t *testing.T) {
	var buf strings.Builder
	if code := serverMain([]string{"-definitely-not-a-flag"}, &buf, nil); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(buf.String(), "tdmroutd") {
		t.Errorf("usage output missing program name: %q", buf.String())
	}
}

// TestServerMainListenError covers a busy port.
func TestServerMainListenError(t *testing.T) {
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- serverMain([]string{"-addr", "127.0.0.1:0", "-quiet"},
			io.Discard, func(addr string) { ready <- addr })
	}()
	addr := <-ready
	var buf strings.Builder
	if code := serverMain([]string{"-addr", addr, "-quiet"}, &buf, nil); code != 1 {
		t.Fatalf("exit code = %d for a busy port, want 1", code)
	}
	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	if code := <-exit; code != 0 {
		t.Fatalf("first server exited %d, want 0", code)
	}
}
