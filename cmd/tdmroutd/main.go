// Command tdmroutd serves the co-optimization solver over HTTP: a bounded
// job queue, a fixed pool of solve workers, per-job deadlines, SSE progress
// streaming, and a graceful SIGTERM drain in which in-flight jobs finish
// with their best-so-far incumbents and queued jobs are rejected with
// Retry-After.
//
// Usage:
//
//	tdmroutd [-addr :8080] [-pool 2] [-queue 16] [-workers N]
//	         [-deadline 0] [-max-deadline 0] [-drain-timeout 30s]
//	         [-epsilon 0] [-maxiter 0] [-ripup 0] [-warm 4] [-quiet]
//
// -warm bounds the node-resident warm sessions kept for delta re-solves
// (submissions with retain=1); the least recently used idle session is
// evicted over the cap, and -warm -1 disables retention.
//
// Endpoints are documented in the serve package. Exit status: 0 after a
// clean drain, 1 on a serve or drain error, 2 on usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tdmroute"
	"tdmroute/internal/serve"
)

func main() {
	os.Exit(serverMain(os.Args[1:], os.Stderr, nil))
}

// serverMain runs the server until a termination signal and returns the
// exit code. ready, when non-nil, receives the bound address once the
// listener is accepting — the in-process tests use it to find the port.
func serverMain(args []string, logw io.Writer, ready func(addr string)) int {
	fs := flag.NewFlagSet("tdmroutd", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		pool         = fs.Int("pool", 2, "solve worker pool size (concurrent jobs)")
		queue        = fs.Int("queue", 16, "queued-job bound; submissions beyond it get 503 + Retry-After")
		workers      = fs.Int("workers", 0, "per-solve worker goroutines (0 = sequential)")
		deadline     = fs.Duration("deadline", 0, "default per-job deadline (0 = none)")
		maxDeadline  = fs.Duration("max-deadline", 0, "per-job deadline cap (0 = unlimited)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before giving up")
		epsilon      = fs.Float64("epsilon", 0, "default LR convergence criterion (0 = paper default)")
		maxIter      = fs.Int("maxiter", 0, "default LR iteration limit (0 = default 500)")
		ripup        = fs.Int("ripup", 0, "default rip-up rounds (0 = default, -1 = disable)")
		warm         = fs.Int("warm", 0, "retained warm session cap for delta re-solves (0 = default 4, -1 = disable)")
		quiet        = fs.Bool("quiet", false, "suppress per-job log lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(logw, "tdmroutd: "+format+"\n", a...)
	}
	cfg := serve.Config{
		Workers:         *pool,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxWarmSessions: *warm,
		SolveOptions: tdmroute.Options{
			Route:   tdmroute.RouteOptions{RipUpRounds: *ripup},
			TDM:     tdmroute.TDMOptions{Epsilon: *epsilon, MaxIter: *maxIter},
			Workers: *workers,
		},
	}
	if !*quiet {
		cfg.Logf = logf
	}
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The signal handler is installed before the listener is announced so
	// a SIGTERM can never race the serving loop's setup.
	//lint:ignore rawgo daemon signal relay, not solver parallelism: os/signal requires a buffered channel
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	//lint:ignore rawgo HTTP serve loop result channel, not solver parallelism: single buffered handoff from the serving goroutine
	errc := make(chan error, 1)
	//lint:ignore rawgo HTTP serving goroutine, not solver parallelism: http.Server.Serve blocks for the daemon's lifetime
	go func() { errc <- hs.Serve(ln) }()

	logf("listening on %s (pool %d, queue %d)", ln.Addr(), *pool, *queue)
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case sig := <-sigc:
		logf("%v: draining (in-flight jobs finish with best-so-far incumbents)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Jobs first, connections second: SSE streams end once every job
		// is terminal, so the HTTP shutdown that follows can complete.
		if err := srv.Shutdown(ctx); err != nil {
			logf("drain failed: %v", err)
			return 1
		}
		if err := hs.Shutdown(ctx); err != nil {
			logf("http shutdown: %v", err)
			return 1
		}
		logf("drained cleanly")
		return 0
	case err := <-errc:
		logf("serve: %v", err)
		return 1
	}
}
