// Command bench regenerates the paper's tables and figures on the synthetic
// suite (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	bench -table 1                       # Table I benchmark statistics
//	bench -table 2 -scale 0.01          # Table II winner comparison
//	bench -table ablation               # update-rule ablation
//	bench -fig 3a                       # runtime breakdown
//	bench -fig 3b > convergence.csv     # LR convergence series
//	bench -all -scale 0.01              # everything
//
// -benchmarks selects a comma-separated subset (default: all nine).
//
// -benchjson runs the iterated-solve performance measurement (see
// DESIGN.md "Performance engineering") and writes per-stage wall times,
// GTR, and work counters as JSON; -cpuprofile and -memprofile capture
// pprof profiles of whichever experiment runs.
//
// -delta measures the ECO re-solve: each benchmark is base-solved with
// retention, a two-net edit is re-solved through the warm ModeDelta path,
// and the same patched instance is solved cold; the table reports both
// walls and the speedup (see DESIGN.md §4.5).
//
// Experiments are anytime: -timeout bounds the wall clock and the first ^C
// cancels the run at the next benchmark boundary; either way the rows
// completed so far are still rendered. Exit status: 0 on a complete run,
// 1 on error, 2 on usage, 3 when the run was interrupted and only partial
// results were written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tdmroute/internal/exp"
	"tdmroute/internal/viz"
)

func main() {
	os.Exit(benchMain())
}

// benchMain is the real entry point; it returns the process exit code so
// deferred cleanup (profile flushing, context cancellation) always runs.
func benchMain() int {
	var (
		table     = flag.String("table", "", "table to regenerate: 1, 2, 'ablation', 'pow2', or 'router'")
		fig       = flag.String("fig", "", "figure to regenerate: 3a or 3b")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		scale     = flag.Float64("scale", 0.01, "suite scale factor")
		subset    = flag.String("benchmarks", "", "comma-separated benchmark subset")
		budget    = flag.Int("budget", 300, "iteration budget for the ablation")
		csv       = flag.Bool("csv", false, "emit Table II as CSV instead of the text layout")
		scaling   = flag.String("scaling", "", "run the size sweep on this benchmark (uses -scales)")
		scales    = flag.String("scales", "0.002,0.01,0.05", "comma-separated scale factors for -scaling")
		ascii     = flag.Bool("ascii", false, "render figures as ASCII charts (3a bars, 3b curves)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget; partial results are still written on expiry (0 = unlimited)")
		workers   = flag.Int("workers", 1, "worker goroutines per solve (1 = sequential; try runtime.NumCPU())")
		queue     = flag.String("queue", "auto", "routing Dijkstra engine: auto, heap, or bucket")
		parts     = flag.Int("partitions", 0, "spatial regions for partitioned initial routing (0 = auto, 1 = off)")
		verbose   = flag.Bool("v", false, "print per-benchmark progress to stderr")
		benchjson = flag.String("benchjson", "", "write the iterated-solve perf measurement to this file as JSON")
		deltaPerf = flag.Bool("delta", false, "measure the ECO delta re-solve against the cold pipeline")
		rounds    = flag.Int("rounds", 6, "feedback rounds for -benchjson")
		reps      = flag.Int("reps", 3, "solves per benchmark for -benchjson (fastest wins)")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	)
	flag.Parse()

	ctx, cancel := runContext(*timeout)
	defer cancel()
	stopProf, err := startProfiles(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	defer stopProf()
	cfg := exp.Config{Scale: *scale, Workers: *workers, Queue: *queue, Partitions: *parts, Ctx: ctx}
	if *subset != "" {
		cfg.Benchmarks = strings.Split(*subset, ",")
	}
	if *verbose {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	if *benchjson != "" {
		if err := runBenchJSON(*benchjson, cfg, *rounds, *reps); err != nil {
			if errors.Is(err, exp.ErrInterrupted) {
				return exitInterrupted(err)
			}
			return fail(err)
		}
		return 0
	}
	if *deltaPerf {
		rows, err := exp.DeltaPerf(cfg, *reps)
		if err = emit(os.Stdout, rows, err, exp.WriteDeltaPerf); err != nil {
			if errors.Is(err, exp.ErrInterrupted) {
				return exitInterrupted(err)
			}
			return fail(err)
		}
		return 0
	}
	if *csv && *table == "2" {
		results, err := exp.TableII(cfg, exp.DefaultWinners())
		if err != nil && !errors.Is(err, exp.ErrInterrupted) {
			return fail(err)
		}
		exp.WriteTableIICSV(os.Stdout, results)
		if err != nil {
			return exitInterrupted(err)
		}
		return 0
	}
	if *scaling != "" {
		if err := runScaling(*scaling, *scales, os.Stdout); err != nil {
			return fail(err)
		}
		return 0
	}
	if *ascii {
		if err := runASCII(*fig, cfg, os.Stdout); err != nil {
			return fail(err)
		}
		return 0
	}
	ran, err := runBench(*table, *fig, *all, cfg, *budget, os.Stdout)
	if err != nil {
		if errors.Is(err, exp.ErrInterrupted) {
			return exitInterrupted(err)
		}
		return fail(err)
	}
	if !ran {
		flag.Usage()
		return 2
	}
	return 0
}

// startProfiles begins CPU profiling and arranges for the heap profile,
// returning a stop function that flushes whatever was requested. The heap
// profile is written after a final GC so it reflects live retained memory,
// not transient garbage.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			}
			f.Close()
		}
	}
	return stop, nil
}

// runBenchJSON measures the iterated solve on the configured suite and
// writes the report to path ("-" for stdout). Partial rows are still
// written when the run is interrupted.
func runBenchJSON(path string, cfg exp.Config, rounds, reps int) error {
	rep, err := exp.Perf(cfg, rounds, reps)
	if err != nil && !errors.Is(err, exp.ErrInterrupted) {
		return err
	}
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, cerr := os.Create(path)
		if cerr != nil {
			return cerr
		}
		defer f.Close()
		w = f
	}
	if werr := exp.WritePerfJSON(w, rep); werr != nil {
		return werr
	}
	return err
}

// runContext derives the experiment context: bounded by -timeout when set,
// and cancelled by the first SIGINT so ^C still renders the rows completed
// so far. A second ^C falls through to the default handler and kills the
// process.
func runContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	//lint:ignore rawgo CLI signal relay, not solver parallelism: os/signal requires a buffered channel
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	//lint:ignore rawgo CLI signal relay, not solver parallelism: blocks on the signal channel for the life of the process
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "bench: interrupt: rendering partial results (^C again to kill)")
		cancel()
		signal.Stop(sigc)
	}()
	return ctx, cancel
}

// exitInterrupted reports an interrupted run after its partial results have
// been written, returning the distinct degraded exit status.
func exitInterrupted(err error) int {
	fmt.Fprintln(os.Stderr, "bench:", err)
	fmt.Fprintln(os.Stderr, "bench: partial results written (exit 3)")
	return 3
}

// runScaling parses the comma-separated scale list and renders the size
// sweep on one benchmark.
func runScaling(bench, scalesCSV string, w io.Writer) error {
	var vals []float64
	for _, s := range strings.Split(scalesCSV, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad scale %q: %w", s, err)
		}
		vals = append(vals, v)
	}
	rows, err := exp.Scaling(bench, vals)
	if err != nil {
		return err
	}
	exp.WriteScaling(w, bench, rows)
	return nil
}

// runASCII renders a figure as an ASCII chart.
func runASCII(fig string, cfg exp.Config, w io.Writer) error {
	switch fig {
	case "3b":
		series, err := exp.Fig3b(cfg)
		if err != nil {
			return err
		}
		z := make([]float64, len(series))
		lb := make([]float64, len(series))
		for i, p := range series {
			z[i] = p.Z
			lb[i] = p.LB
		}
		fmt.Fprintf(w, "Fig. 3(b): LR convergence (%d iterations)\n", len(series))
		fmt.Fprint(w, viz.Curves([][]float64{z, lb}, []string{"z", "LB"}, 12, 60))
		return nil
	case "3a":
		b, err := exp.Fig3a(cfg)
		if err != nil {
			return err
		}
		lr, route, parse, output, legal := b.Percent()
		fmt.Fprintln(w, "Fig. 3(a): runtime share per stage (%)")
		fmt.Fprint(w, viz.Bars(
			[]string{"Lagrangian Relaxation", "Inter-FPGA Routing", "Input File Parsing", "Output File Writing", "Legalization & Refinement"},
			[]float64{lr, route, parse, output, legal}, 40))
		return nil
	}
	return fmt.Errorf("-ascii requires -fig 3a or 3b")
}

// emit renders an experiment's rows, complete or partial. A hard error is
// returned unrendered; an interruption renders the partial rows first and
// then surfaces so the caller can report the distinct exit status.
func emit[T any](w io.Writer, rows T, err error, render func(io.Writer, T)) error {
	if err != nil && !errors.Is(err, exp.ErrInterrupted) {
		return err
	}
	render(w, rows)
	fmt.Fprintln(w)
	return err
}

// runBench executes the selected experiments, writing the rendered tables
// and series to w. It reports whether any experiment was selected.
func runBench(table, fig string, all bool, cfg exp.Config, budget int, w io.Writer) (bool, error) {
	if all {
		table, fig = "", ""
	}
	ran := false

	if all || table == "1" {
		rows, err := exp.TableI(cfg)
		if err = emit(w, rows, err, exp.WriteTableI); err != nil {
			return true, err
		}
		ran = true
	}
	if all || table == "2" {
		results, err := exp.TableII(cfg, exp.DefaultWinners())
		if err = emit(w, results, err, exp.WriteTableII); err != nil {
			return true, err
		}
		ran = true
	}
	if all || table == "ablation" {
		rows, err := exp.Ablation(cfg, budget)
		if err = emit(w, rows, err, exp.WriteAblation); err != nil {
			return true, err
		}
		ran = true
	}
	if all || table == "pow2" {
		rows, err := exp.Pow2Ablation(cfg)
		if err = emit(w, rows, err, exp.WritePow2Ablation); err != nil {
			return true, err
		}
		ran = true
	}
	if all || table == "router" {
		rows, err := exp.RouterAblation(cfg)
		if err = emit(w, rows, err, exp.WriteRouterAblation); err != nil {
			return true, err
		}
		ran = true
	}
	if all || fig == "3a" {
		b, err := exp.Fig3a(cfg)
		if err = emit(w, b, err, exp.WriteFig3a); err != nil {
			return true, err
		}
		ran = true
	}
	if all || fig == "3b" {
		series, err := exp.Fig3b(cfg)
		if err = emit(w, series, err, exp.WriteFig3b); err != nil {
			return true, err
		}
		ran = true
	}
	return ran, nil
}
