package main

import (
	"bytes"
	"strings"
	"testing"

	"tdmroute/internal/exp"
)

func tinyCfg() exp.Config {
	return exp.Config{Scale: 0.002, Benchmarks: []string{"synopsys01"}}
}

func TestRunBenchTable1(t *testing.T) {
	var buf bytes.Buffer
	ran, err := runBench("1", "", false, tinyCfg(), 50, &buf)
	if err != nil || !ran {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
	if !strings.Contains(buf.String(), "synopsys01") {
		t.Error("Table I output missing benchmark")
	}
}

func TestRunBenchTable2(t *testing.T) {
	var buf bytes.Buffer
	ran, err := runBench("2", "", false, tinyCfg(), 50, &buf)
	if err != nil || !ran {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
	out := buf.String()
	for _, label := range []string{"1st GTRmax", "Ours GTRmax", "Ours LB"} {
		if !strings.Contains(out, label) {
			t.Errorf("missing %q", label)
		}
	}
}

func TestRunBenchFigures(t *testing.T) {
	var buf bytes.Buffer
	ran, err := runBench("", "3a", false, tinyCfg(), 50, &buf)
	if err != nil || !ran {
		t.Fatalf("3a: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(buf.String(), "Lagrangian Relaxation") {
		t.Error("3a output missing label")
	}
	buf.Reset()
	ran, err = runBench("", "3b", false, tinyCfg(), 50, &buf)
	if err != nil || !ran {
		t.Fatalf("3b: ran=%v err=%v", ran, err)
	}
	if !strings.HasPrefix(buf.String(), "iter,z,lb") {
		t.Error("3b output missing CSV header")
	}
}

func TestRunBenchAblationAndAll(t *testing.T) {
	var buf bytes.Buffer
	ran, err := runBench("ablation", "", false, tinyCfg(), 30, &buf)
	if err != nil || !ran {
		t.Fatalf("ablation: ran=%v err=%v", ran, err)
	}
	buf.Reset()
	ran, err = runBench("", "", true, tinyCfg(), 30, &buf)
	if err != nil || !ran {
		t.Fatalf("all: ran=%v err=%v", ran, err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Fig. 3(a)") {
		t.Error("-all output incomplete")
	}
}

func TestRunBenchNothingSelected(t *testing.T) {
	var buf bytes.Buffer
	ran, err := runBench("", "", false, tinyCfg(), 50, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("reported ran with nothing selected")
	}
}

func TestRunBenchUnknownBenchmark(t *testing.T) {
	var buf bytes.Buffer
	cfg := exp.Config{Scale: 0.01, Benchmarks: []string{"nope"}}
	if _, err := runBench("1", "", false, cfg, 50, &buf); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := runASCII("3b", tinyCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LB") {
		t.Errorf("3b ascii missing legend:\n%s", buf.String())
	}
	buf.Reset()
	if err := runASCII("3a", tinyCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Lagrangian") {
		t.Errorf("3a ascii missing labels:\n%s", buf.String())
	}
	if err := runASCII("", tinyCfg(), &buf); err == nil {
		t.Error("ascii without figure accepted")
	}
}

func TestRunScaling(t *testing.T) {
	var buf bytes.Buffer
	if err := runScaling("synopsys01", "0.001, 0.002", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GTR_max") {
		t.Errorf("output missing header:\n%s", buf.String())
	}
	if err := runScaling("synopsys01", "0.001,zzz", &buf); err == nil {
		t.Error("bad scale accepted")
	}
	if err := runScaling("bogus", "0.01", &buf); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
