package main

import (
	"os"
	"path/filepath"
	"testing"

	"tdmroute"
	"tdmroute/internal/gen"
)

func fixtures(t *testing.T) (inPath, solPath string, inst *tdmroute.Instance, sol *tdmroute.Solution) {
	t.Helper()
	cfg, err := gen.SuiteConfig("synopsys02", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	inst, err = gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tdmroute.Solve(inst, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	inPath = filepath.Join(dir, "in.txt")
	solPath = filepath.Join(dir, "sol.txt")
	if err := tdmroute.SaveInstance(inPath, inst); err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.SaveSolution(solPath, res.Solution); err != nil {
		t.Fatal(err)
	}
	return inPath, solPath, inst, res.Solution
}

func TestRunValidSolution(t *testing.T) {
	inPath, solPath, _, _ := fixtures(t)
	if err := run(inPath, solPath, true, true, 500); err != nil {
		t.Fatal(err)
	}
}

func TestRunDetectsIllegalSolution(t *testing.T) {
	inPath, solPath, inst, sol := fixtures(t)
	// Corrupt a ratio to an odd number.
	for n := range sol.Assign.Ratios {
		if len(sol.Assign.Ratios[n]) > 0 {
			sol.Assign.Ratios[n][0] = 3
			break
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := tdmroute.SaveSolution(bad, sol); err != nil {
		t.Fatal(err)
	}
	if err := run(inPath, bad, false, false, 0); err == nil {
		t.Error("odd ratio accepted")
	}
	_ = inst
	_ = solPath
}

func TestRunMissingFiles(t *testing.T) {
	inPath, solPath, _, _ := fixtures(t)
	if err := run("/nonexistent", solPath, false, false, 0); err == nil {
		t.Error("missing instance accepted")
	}
	if err := run(inPath, "/nonexistent", false, false, 0); err == nil {
		t.Error("missing solution accepted")
	}
	garbage := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(garbage, []byte("x y z"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(inPath, garbage, false, false, 0); err == nil {
		t.Error("garbage solution accepted")
	}
}
