// Command eval is the independent solution checker and scorer: it validates
// a solution file against an instance (routing trees connect every net's
// terminals; every TDM ratio is a positive even integer; per-edge reciprocal
// sums stay within 1) and reports the maximum group TDM ratio.
//
// Usage:
//
//	eval -in bench.txt -sol sol.txt [-schedules] [-timing] [-required 500]
//
// -schedules additionally materializes the TDM slot table of every edge and
// checks each signal's slot share; -timing estimates per-group delays under
// the hop + multiplexing-wait model (budget set by -required, in ns).
package main

import (
	"flag"
	"fmt"
	"os"

	"tdmroute"
)

func main() {
	var (
		inPath    = flag.String("in", "", "instance file (required)")
		solPath   = flag.String("sol", "", "solution file (required)")
		schedules = flag.Bool("schedules", false, "also verify per-edge TDM slot schedules")
		timing    = flag.Bool("timing", false, "also run delay analysis")
		required  = flag.Float64("required", 0, "timing budget in ns for slack/violation reporting")
	)
	flag.Parse()
	if *inPath == "" || *solPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *solPath, *schedules, *timing, *required); err != nil {
		fmt.Fprintln(os.Stderr, "eval:", err)
		os.Exit(1)
	}
}

func run(inPath, solPath string, schedules, timingOn bool, required float64) error {
	in, err := tdmroute.LoadInstance(inPath)
	if err != nil {
		return err
	}
	if err := tdmroute.ValidateInstance(in); err != nil {
		return fmt.Errorf("invalid instance: %w", err)
	}
	sol, err := tdmroute.LoadSolution(solPath, in.G.NumEdges())
	if err != nil {
		return err
	}
	if err := tdmroute.ValidateSolution(in, sol); err != nil {
		// Produce the full audit so the user sees every category at once.
		audit := tdmroute.AuditSolution(in, sol, 10)
		fmt.Printf("solution INVALID: %s\n", audit.Summary())
		for _, v := range audit.Violations {
			fmt.Printf("  [%s] net %d edge %d: %s\n", v.Kind, v.Net, v.Edge, v.Detail)
		}
		return fmt.Errorf("INVALID solution: %w", err)
	}
	gtr, arg := tdmroute.Evaluate(in, sol)
	fmt.Printf("solution VALID\n")
	fmt.Printf("GTR_max %d (group %d)\n", gtr, arg)
	cong := tdmroute.Congestion(in.G.NumEdges(), sol.Routes)
	fmt.Printf("congestion: wirelength %d, max edge load %d (edge %d), avg %.2f over %d used edges\n",
		cong.Wirelength, cong.MaxLoad, cong.MaxLoadEdge, cong.AvgLoad, cong.UsedEdges)

	if schedules {
		verified, skipped, err := tdmroute.VerifySchedules(in, sol)
		if err != nil {
			return fmt.Errorf("slot schedules: %w", err)
		}
		fmt.Printf("slot schedules OK on %d edges (%d skipped: frame too long)\n", verified, skipped)
	}
	if timingOn {
		rep, err := tdmroute.AnalyzeTiming(in, sol, tdmroute.TimingModel{RequiredNS: required})
		if err != nil {
			return err
		}
		if rep.WorstNet >= 0 {
			fmt.Printf("worst net %d: %.2f ns over %d hops\n",
				rep.WorstNet, rep.Nets[rep.WorstNet].DelayNS, rep.Nets[rep.WorstNet].Hops)
		}
		if rep.WorstGroup >= 0 {
			fmt.Printf("worst group %d: %.2f ns\n", rep.WorstGroup, rep.Groups[rep.WorstGroup].DelayNS)
		}
		if required > 0 {
			fmt.Printf("timing violations: %d groups past %.1f ns\n", rep.Violations, required)
		}
	}
	return nil
}
