package main

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"tdmroute"
	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
	"tdmroute/internal/serve"
)

func testInstance(t *testing.T) *tdmroute.Instance {
	t.Helper()
	cfg, err := gen.SuiteConfig("synopsys01", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Name = "synopsys01"
	return in
}

// startBackends brings up n in-process tdmroutd servers and returns their
// base URLs.
func startBackends(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			ts.Close()
		})
		urls[i] = ts.URL
	}
	return urls
}

// TestCoordMainSIGTERMDrain runs the coordinator daemon in-process over two
// real backends, puts a job mid-LR, and SIGTERMs the process: the drain must
// finish the job (the backend hands back its best-so-far incumbent), the
// client's stream must end with a done event, and the daemon must exit 0.
func TestCoordMainSIGTERMDrain(t *testing.T) {
	urls := startBackends(t, 2)
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- coordMain([]string{
			"-addr", "127.0.0.1:0",
			"-backend", urls[0],
			"-backend", urls[1],
			"-quiet",
		}, io.Discard, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("coordMain exited with %d before becoming ready", code)
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never became ready")
	}

	in := testInstance(t)
	c := &serve.Client{BaseURL: "http://" + addr}
	ctx := context.Background()
	if ok, err := c.Healthy(ctx); err != nil || !ok {
		t.Fatalf("Healthy = %v, %v; want true", ok, err)
	}

	// A job that stays in LR until interrupted.
	st, err := c.Submit(ctx, serve.SubmitRequest{Instance: in, Epsilon: 1e-12, MaxIter: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.ID, "c") {
		t.Fatalf("job id %q is not coordinator-prefixed", st.ID)
	}
	// Follow the proxied SSE stream; SIGTERM the process at the first LR
	// event. The drain cancels the job on its backend, which finishes it
	// with a best-so-far incumbent the coordinator then relays — the stream
	// must end with a done event, not an error.
	var last serve.Event
	sigSent := false
	streamErr := c.Stream(ctx, st.ID, func(e serve.Event) error {
		last = e
		if e.Type == "lr" && !sigSent {
			sigSent = true
			if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
				return fmt.Errorf("kill: %v", err)
			}
		}
		return nil
	})
	if streamErr != nil {
		t.Fatalf("stream: %v (last event %+v)", streamErr, last)
	}
	if !sigSent {
		t.Fatal("job finished before any LR event; nothing was drained")
	}
	if last.Type != "done" || last.State != serve.StateDone {
		t.Fatalf("final event = %+v, want a done event with state done", last)
	}

	// The drained incumbent must be legal. The window between the job
	// draining and the listener closing is narrow, so tolerate a connection
	// error but never a bad solution.
	if final, err := c.Status(ctx, st.ID); err == nil {
		if final.Response == nil || final.Response.Degraded == nil {
			t.Errorf("drained job reports no Degraded: %+v", final.Response)
		}
		if sol, err := c.Solution(ctx, st.ID, serve.FormatText); err == nil {
			if verr := problem.ValidateSolution(in, sol); verr != nil {
				t.Errorf("drained incumbent invalid: %v", verr)
			}
		}
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d after SIGTERM drain, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordMain did not exit after SIGTERM")
	}
}

// TestCoordMainEndToEnd runs a plain job through the daemon and pins the
// coordinator-only surface: backend attribution in status, /v1/backends, and
// a cache hit on resubmission.
func TestCoordMainEndToEnd(t *testing.T) {
	urls := startBackends(t, 2)
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- coordMain([]string{
			"-addr", "127.0.0.1:0",
			"-backend", urls[0],
			"-backend", urls[1],
			"-quiet",
		}, io.Discard, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("coordMain exited with %d before becoming ready", code)
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never became ready")
	}
	defer func() {
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
		if code := <-exit; code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	}()

	in := testInstance(t)
	c := &serve.Client{BaseURL: "http://" + addr}
	ctx := context.Background()
	sub := serve.SubmitRequest{Instance: in}
	st, err := c.Submit(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("state = %s, want done (error %q)", final.State, final.Error)
	}
	if final.Backend == "" || final.Backend == "cache" {
		t.Fatalf("backend attribution = %q, want a real backend", final.Backend)
	}
	sol, err := c.Solution(ctx, st.ID, serve.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if verr := problem.ValidateSolution(in, sol); verr != nil {
		t.Fatalf("solution invalid: %v", verr)
	}

	// The identical submission must replay from the result cache.
	st2, err := c.Submit(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.Backend != "cache" {
		t.Fatalf("resubmission backend = %q, want cache", final2.Backend)
	}
}

// TestCoordMainBadFlags pins the usage exit codes.
func TestCoordMainBadFlags(t *testing.T) {
	var buf strings.Builder
	if code := coordMain([]string{"-definitely-not-a-flag"}, &buf, nil); code != 2 {
		t.Fatalf("exit code = %d for an unknown flag, want 2", code)
	}
	buf.Reset()
	if code := coordMain([]string{"-addr", "127.0.0.1:0"}, &buf, nil); code != 2 {
		t.Fatalf("exit code = %d with no backends, want 2", code)
	}
	if !strings.Contains(buf.String(), "-backend") {
		t.Errorf("no-backend error does not name the flag: %q", buf.String())
	}
}
