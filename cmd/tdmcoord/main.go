// Command tdmcoord fronts a fleet of tdmroutd backends with the
// fault-tolerant coordinator tier: consistent rendezvous placement, a
// content-addressed result cache, health-checked backends behind circuit
// breakers, replay-safe re-dispatch when a backend dies mid-job, and the
// same HTTP+SSE surface as a single node, so any tdmroutd client works
// against it unchanged.
//
// Usage:
//
//	tdmcoord -backend http://host1:8080 -backend http://host2:8080 ...
//	         [-addr :8090] [-cache 256] [-attempts 3] [-breaker 3]
//	         [-probe 2s] [-probe-cap 30s] [-request-timeout 30s]
//	         [-stall 2m] [-retry-after 1s] [-drain-timeout 30s] [-quiet]
//
// At least one -backend is required. SIGTERM drains like tdmroutd: new
// submissions are rejected with Retry-After, in-flight jobs are cancelled
// on their backends and finish with best-so-far incumbents.
//
// Endpoints match the serve package, plus GET /v1/backends (per-backend
// breaker state) and an aggregated /metrics whose backend series carry an
// injected backend label. Exit status: 0 after a clean drain, 1 on a serve
// or drain error, 2 on usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tdmroute/internal/coord"
)

func main() {
	os.Exit(coordMain(os.Args[1:], os.Stderr, nil))
}

// stringsFlag collects repeated -backend flags.
type stringsFlag []string

func (s *stringsFlag) String() string { return fmt.Sprint(*s) }
func (s *stringsFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// coordMain runs the coordinator until a termination signal and returns
// the exit code. ready, when non-nil, receives the bound address once the
// listener is accepting — the in-process tests use it to find the port.
func coordMain(args []string, logw io.Writer, ready func(addr string)) int {
	fs := flag.NewFlagSet("tdmcoord", flag.ContinueOnError)
	fs.SetOutput(logw)
	var backends stringsFlag
	fs.Var(&backends, "backend", "tdmroutd base URL (repeat once per backend; required)")
	var (
		addr           = fs.String("addr", ":8090", "listen address")
		cacheEntries   = fs.Int("cache", 0, "content-addressed result cache entries (0 = default 256, -1 = disable)")
		attempts       = fs.Int("attempts", 0, "dispatch attempts per job across backend losses (0 = default 3)")
		breaker        = fs.Int("breaker", 0, "consecutive failures that open a backend's breaker (0 = default 3)")
		probe          = fs.Duration("probe", 0, "health probe interval (0 = default 2s)")
		probeCap       = fs.Duration("probe-cap", 0, "probe backoff cap while a breaker is open (0 = default 30s)")
		requestTimeout = fs.Duration("request-timeout", 0, "per-call backend budget (0 = default 30s)")
		stall          = fs.Duration("stall", 0, "silent-stream budget before a backend is declared partitioned (0 = default 2m)")
		retryAfter     = fs.Duration("retry-after", 0, "Retry-After hint on 503 rejections (0 = default 1s)")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before giving up")
		quiet          = fs.Bool("quiet", false, "suppress per-job log lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(logw, "tdmcoord: "+format+"\n", a...)
	}
	if len(backends) == 0 {
		logf("at least one -backend is required")
		fs.Usage()
		return 2
	}

	cfg := coord.Config{
		Backends:         backends,
		CacheEntries:     *cacheEntries,
		MaxAttempts:      *attempts,
		BreakerThreshold: *breaker,
		ProbeInterval:    *probe,
		ProbeBackoffCap:  *probeCap,
		RequestTimeout:   *requestTimeout,
		StallTimeout:     *stall,
		RetryAfter:       *retryAfter,
	}
	if !*quiet {
		cfg.Logf = logf
	}
	co, err := coord.New(cfg)
	if err != nil {
		logf("%v", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		return 1
	}
	hs := &http.Server{Handler: co.Handler()}

	// The signal handler is installed before the listener is announced so
	// a SIGTERM can never race the serving loop's setup.
	//lint:ignore rawgo daemon signal relay, not solver parallelism: os/signal requires a buffered channel
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	//lint:ignore rawgo HTTP serve loop result channel, not solver parallelism: single buffered handoff from the serving goroutine
	errc := make(chan error, 1)
	//lint:ignore rawgo HTTP serving goroutine, not solver parallelism: http.Server.Serve blocks for the daemon's lifetime
	go func() { errc <- hs.Serve(ln) }()

	logf("listening on %s (%d backends)", ln.Addr(), len(backends))
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case sig := <-sigc:
		logf("%v: draining (in-flight jobs are cancelled on their backends)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Jobs first, connections second: SSE streams end once every job
		// is terminal, so the HTTP shutdown that follows can complete.
		if err := co.Shutdown(ctx); err != nil {
			logf("drain failed: %v", err)
			return 1
		}
		if err := hs.Shutdown(ctx); err != nil {
			logf("http shutdown: %v", err)
			return 1
		}
		logf("drained cleanly")
		return 0
	case err := <-errc:
		logf("serve: %v", err)
		return 1
	}
}
