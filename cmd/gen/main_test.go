package main

import (
	"path/filepath"
	"testing"

	"tdmroute/internal/problem"
)

func TestRunSuiteBenchmark(t *testing.T) {
	out := filepath.Join(t.TempDir(), "b.txt")
	if err := run("synopsys01", 0.002, out, 1, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	in, err := problem.LoadInstance(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateInstance(in); err != nil {
		t.Fatal(err)
	}
	s := problem.ComputeStats(in)
	if s.FPGAs != 43 || s.Nets != 137 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRunCustomInstance(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.txt")
	if err := run("", 0, out, 7, 15, 30, 100, 60); err != nil {
		t.Fatal(err)
	}
	in, err := problem.LoadInstance(out)
	if err != nil {
		t.Fatal(err)
	}
	s := problem.ComputeStats(in)
	if s.FPGAs != 15 || s.Edges != 30 || s.Nets != 100 || s.NetGroups != 60 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, "", 1, 0, 0, 0, 0); err == nil {
		t.Error("no selector accepted")
	}
	if err := run("bogus", 0.01, "", 1, 0, 0, 0, 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run("", 0, "", 1, 5, 1, 10, 5); err == nil {
		t.Error("impossible edge count accepted")
	}
	if err := run("synopsys01", 0.002, "/nonexistent/dir/x.txt", 1, 0, 0, 0, 0); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestRunSuiteWritesAllBenchmarks(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "suite")
	if err := runSuite(dir, 0.001); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"synopsys01", "hidden03"} {
		in, err := problem.LoadInstance(filepath.Join(dir, name+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := problem.ValidateInstance(in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
