// Command gen emits synthetic benchmark instances mirroring the ICCAD 2019
// CAD Contest suite statistics (Table I of the paper).
//
// Usage:
//
//	gen -name synopsys01 -scale 0.01 -o bench.txt      # suite benchmark
//	gen -fpgas 50 -edges 120 -nets 5000 -groups 4000 -o custom.txt
//	gen -list                                           # print Table I names
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
)

func main() {
	var (
		name   = flag.String("name", "", "suite benchmark name (see -list)")
		scale  = flag.Float64("scale", 0.01, "net/group count scale for suite benchmarks")
		suite  = flag.String("suite", "", "write the entire nine-benchmark suite into this directory")
		list   = flag.Bool("list", false, "list suite benchmark names and exit")
		out    = flag.String("o", "", "output file (default stdout)")
		seed   = flag.Int64("seed", 1, "PRNG seed for custom instances")
		fpgas  = flag.Int("fpgas", 0, "custom instance: FPGA count")
		edges  = flag.Int("edges", 0, "custom instance: edge count")
		nets   = flag.Int("nets", 0, "custom instance: net count")
		groups = flag.Int("groups", 0, "custom instance: NetGroup count")
	)
	flag.Parse()

	if *list {
		for _, n := range gen.SuiteNames() {
			fmt.Println(n)
		}
		return
	}
	if *suite != "" {
		if err := runSuite(*suite, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "gen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*name, *scale, *out, *seed, *fpgas, *edges, *nets, *groups); err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
}

// runSuite writes all nine benchmarks at the given scale into dir.
func runSuite(dir string, scale float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range gen.SuiteNames() {
		cfg, err := gen.SuiteConfig(name, scale)
		if err != nil {
			return err
		}
		in, err := gen.Generate(cfg)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".txt")
		if err := problem.SaveInstance(path, in); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s -> %v\n", path, problem.ComputeStats(in))
	}
	return nil
}

func run(name string, scale float64, out string, seed int64, fpgas, edges, nets, groups int) error {
	var cfg gen.Config
	switch {
	case name != "":
		c, err := gen.SuiteConfig(name, scale)
		if err != nil {
			return err
		}
		cfg = c
	case fpgas > 0:
		cfg = gen.Config{
			Name: fmt.Sprintf("custom-%d", seed), Seed: seed,
			FPGAs: fpgas, Edges: edges, Nets: nets, Groups: groups,
		}
	default:
		return fmt.Errorf("pass -name for a suite benchmark or -fpgas/-edges/-nets/-groups for a custom one")
	}

	in, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	if err := problem.ValidateInstance(in); err != nil {
		return fmt.Errorf("internal error: generated invalid instance: %w", err)
	}
	fmt.Fprintln(os.Stderr, problem.ComputeStats(in))

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return problem.WriteInstance(w, in)
}
