// Command tdmlint runs the repository's static-analysis suite: four
// stdlib-only analyzers enforcing the solver's determinism and overflow
// invariants (see internal/lint).
//
// Usage:
//
//	tdmlint [-tests] [-only floatcast,maporder] [pattern ...]
//
// Patterns are module-relative package directories ("internal/tdm") or
// subtrees ("./..."); no patterns means the whole module. Each finding
// prints as "file:line: analyzer: message". Exit status is 0 for a clean
// tree, 1 when there are findings, and 2 on load or usage errors.
//
// A "//lint:ignore <analyzer> <reason>" comment on the flagged line, or on
// the line directly above it, suppresses a finding; unused or malformed
// directives are reported as findings themselves.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tdmroute/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("tdmlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	tests := fs.Bool("tests", false, "also analyze _test.go files and external test packages")
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("C", "", "directory inside the target module (default: current directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := lint.Config{
		Dir:          *dir,
		Patterns:     fs.Args(),
		IncludeTests: *tests,
	}
	if *only != "" {
		cfg.Analyzers = strings.Split(*only, ",")
	}

	findings, err := lint.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdmlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tdmlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
