// Command tdmlint runs the repository's static-analysis suite: eight
// stdlib-only analyzers enforcing the solver's determinism, overflow,
// concurrency, and cancellation invariants (see internal/lint).
//
// Usage:
//
//	tdmlint [-tests] [-only ctxflow,satarith] [-json] [-sarif file] [-fix] [pattern ...]
//
// Patterns are module-relative package directories ("internal/tdm") or
// subtrees ("./..."); no patterns means the whole module. Each finding
// prints as "file:line: analyzer: message"; -json switches stdout to a JSON
// array, and -sarif additionally writes a SARIF 2.1.0 report (use "-" for
// stdout) for CI code-scanning annotation. -fix applies the mechanical
// rewrites some analyzers attach (satarith saturating-helper rewrites,
// stale-directive removal) and reports what remains. Exit status is 0 for a
// clean tree, 1 when there are findings, and 2 on load or usage errors.
//
// A "//lint:ignore <analyzer> <reason>" comment on the flagged line, or on
// the line directly above it, suppresses a finding; unused or malformed
// directives are reported as findings themselves.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tdmroute/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("tdmlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	tests := fs.Bool("tests", false, "also analyze _test.go files and external test packages")
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("C", "", "directory inside the target module (default: current directory)")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array instead of text")
	sarifOut := fs.String("sarif", "", "also write a SARIF 2.1.0 report to this file (\"-\" for stdout)")
	fix := fs.Bool("fix", false, "apply mechanical fixes, then report the remaining findings")
	workers := fs.Int("workers", 0, "loader parallelism (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := lint.Config{
		Dir:          *dir,
		Patterns:     fs.Args(),
		IncludeTests: *tests,
		Workers:      *workers,
	}
	if *only != "" {
		cfg.Analyzers = strings.Split(*only, ",")
	}

	findings, err := lint.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdmlint:", err)
		return 2
	}

	if *fix {
		changed, err := lint.ApplyFixes(findings)
		for _, f := range changed {
			fmt.Fprintf(os.Stderr, "tdmlint: fixed %s\n", f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdmlint:", err)
			return 2
		}
		if len(changed) > 0 {
			// Re-run so the report reflects the rewritten tree.
			findings, err = lint.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tdmlint:", err)
				return 2
			}
		}
	}

	if *sarifOut != "" {
		w := out
		if *sarifOut != "-" {
			f, err := os.Create(*sarifOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tdmlint:", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		if err := lint.WriteSARIF(w, findings); err != nil {
			fmt.Fprintln(os.Stderr, "tdmlint:", err)
			return 2
		}
	}

	switch {
	case *jsonOut:
		if err := lint.WriteJSON(out, findings); err != nil {
			fmt.Fprintln(os.Stderr, "tdmlint:", err)
			return 2
		}
	case *sarifOut == "-":
		// SARIF already went to stdout; skip the text listing.
	default:
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tdmlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
