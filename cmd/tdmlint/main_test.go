package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir points at the lint package's seeded fixture module; running the
// CLI there exercises loading, analysis, and exit codes end to end.
const fixtureDir = "../../internal/lint/testdata/src"

func TestRunReportsFindings(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-C", fixtureDir, "floatcast"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "floatcast/floatcast.go:13: floatcast:") {
		t.Errorf("missing expected finding in output:\n%s", got)
	}
}

func TestRunCleanSubsetExitsZero(t *testing.T) {
	var out strings.Builder
	// The floatcast fixture package has no floateq findings.
	code := run([]string{"-C", fixtureDir, "-only", "floateq", "floatcast"}, &out)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-only", "nosuch", "-C", fixtureDir}, &out); code != 2 {
		t.Errorf("unknown analyzer: exit code = %d, want 2", code)
	}
	if code := run([]string{"-nosuchflag"}, &out); code != 2 {
		t.Errorf("bad flag: exit code = %d, want 2", code)
	}
	if code := run([]string{"-C", "/nonexistent-dir-xyz"}, &out); code != 2 {
		t.Errorf("bad dir: exit code = %d, want 2", code)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-C", fixtureDir, "-json", "floatcast"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out.String())
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, out.String())
	}
	if len(decoded) != 1 || decoded[0]["analyzer"] != "floatcast" {
		t.Errorf("unexpected JSON findings: %v", decoded)
	}
}

func TestRunSARIFToStdout(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-C", fixtureDir, "-sarif", "-", "floatcast"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var log map[string]any
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("-sarif - did not produce pure SARIF on stdout: %v\n%s", err, out.String())
	}
	if log["version"] != "2.1.0" {
		t.Errorf("SARIF version = %v, want 2.1.0", log["version"])
	}
}

func TestRunSARIFToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.sarif")
	var out strings.Builder
	code := run([]string{"-C", fixtureDir, "-sarif", path, "floatcast"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	// Text listing still goes to stdout alongside the file report.
	if !strings.Contains(out.String(), "floatcast/floatcast.go:13") {
		t.Errorf("text listing missing when -sarif writes to a file:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("SARIF file not written: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF file does not decode: %v", err)
	}
}

func TestRunFixRepairsModule(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixme\n\ngo 1.22\n")
	write("pkg/pkg.go", `package pkg

func scale(n int) int {
	//lint:ignore floatcast stale directive the fixer should remove
	return n * 2
}
`)
	var out strings.Builder
	code := run([]string{"-C", dir, "-fix", "./..."}, &out)
	if code != 0 {
		t.Fatalf("exit code after -fix = %d, want 0; output:\n%s", code, out.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "pkg/pkg.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "lint:ignore") {
		t.Errorf("-fix left the stale directive in place:\n%s", src)
	}
}
