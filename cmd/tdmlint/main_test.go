package main

import (
	"strings"
	"testing"
)

// fixtureDir points at the lint package's seeded fixture module; running the
// CLI there exercises loading, analysis, and exit codes end to end.
const fixtureDir = "../../internal/lint/testdata/src"

func TestRunReportsFindings(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-C", fixtureDir, "floatcast"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "floatcast/floatcast.go:13: floatcast:") {
		t.Errorf("missing expected finding in output:\n%s", got)
	}
}

func TestRunCleanSubsetExitsZero(t *testing.T) {
	var out strings.Builder
	// The floatcast fixture package has no floateq findings.
	code := run([]string{"-C", fixtureDir, "-only", "floateq", "floatcast"}, &out)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-only", "nosuch", "-C", fixtureDir}, &out); code != 2 {
		t.Errorf("unknown analyzer: exit code = %d, want 2", code)
	}
	if code := run([]string{"-nosuchflag"}, &out); code != 2 {
		t.Errorf("bad flag: exit code = %d, want 2", code)
	}
	if code := run([]string{"-C", "/nonexistent-dir-xyz"}, &out); code != 2 {
		t.Errorf("bad dir: exit code = %d, want 2", code)
	}
}
