// Command tdmroute runs the full co-optimization flow of the paper on an
// instance file: NetGroup-aware inter-FPGA routing followed by Lagrangian
// TDM ratio assignment with legalization and refinement.
//
// Usage:
//
//	tdmroute -in bench.txt [-out sol.txt] [-topology routes.txt]
//	         [-epsilon 0.0027] [-maxiter 500] [-ripup 5] [-workers N]
//	         [-queue auto|heap|bucket] [-partitions N]
//	         [-timeout 30s] [-trace] [-cpuprofile cpu.out]
//
// With -topology, the routing stage is skipped and the TDM ratio assignment
// runs on the supplied topology (the "+TA" experiment of Table II).
//
// The solve is anytime: -timeout bounds the wall clock, and the first ^C
// (SIGINT) cancels the run at the next deterministic boundary. In both
// cases the best legal solution found so far is still reported and written.
// Exit status: 0 on a complete solve, 1 on error, 2 on usage, 3 when the
// run was curtailed and a degraded (best-so-far) solution was produced.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"tdmroute"
)

func main() {
	var (
		inPath   = flag.String("in", "", "instance file (required)")
		outPath  = flag.String("out", "", "solution output file (optional)")
		topoPath = flag.String("topology", "", "fixed routing topology: skip routing, assign TDM ratios only")
		epsilon  = flag.Float64("epsilon", 0, "LR convergence criterion (0 = paper default 0.0027)")
		maxIter  = flag.Int("maxiter", 0, "LR iteration limit (0 = default 500)")
		ripup    = flag.Int("ripup", 0, "rip-up and reroute rounds (0 = default, -1 = disable)")
		trace    = flag.Bool("trace", false, "print per-iteration z and LB (Fig. 3(b) series)")
		jsonIO   = flag.Bool("json", false, "read the instance and write the solution as JSON")
		pow2     = flag.Bool("pow2", false, "restrict TDM ratios to powers of two (refs [2][3] domain)")
		iterate  = flag.Int("iterate", 0, "feedback rounds of iterated co-optimization (0 = single pass)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget; on expiry the best-so-far solution is still written (0 = unlimited)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for routing and TDM assignment (1 = sequential)")
		queue    = flag.String("queue", "auto", "routing Dijkstra engine: auto, heap, or bucket (identical results, different speed)")
		parts    = flag.Int("partitions", 0, "spatial regions for partitioned initial routing (0 = auto, 1 = off)")
		cpuprof  = flag.String("cpuprofile", "", "write a pprof CPU profile of the solve to this file")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopProf := func() {}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdmroute:", err)
			os.Exit(1)
		}
		stopProf = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	ctx, cancel := solveContext(*timeout)
	defer cancel()
	degraded, err := run(ctx, *inPath, *outPath, *topoPath, *epsilon, *maxIter, *ripup, *workers, *queue, *parts, *trace, *jsonIO, *pow2, *iterate)
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdmroute:", err)
		os.Exit(1)
	}
	if degraded {
		fmt.Fprintln(os.Stderr, "tdmroute: solve curtailed; wrote best-so-far solution (exit 3)")
		os.Exit(3)
	}
}

// solveContext derives the solve's context: bounded by -timeout when set,
// and cancelled by the first SIGINT so an interactive ^C still yields the
// best-so-far solution. A second ^C falls through to the runtime's default
// handling and kills the process.
func solveContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	//lint:ignore rawgo CLI signal relay, not solver parallelism: os/signal requires a buffered channel
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	//lint:ignore rawgo CLI signal relay, not solver parallelism: blocks on the signal channel for the life of the process
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "tdmroute: interrupt: finishing with best-so-far solution (^C again to kill)")
		cancel()
		signal.Stop(sigc)
	}()
	return ctx, cancel
}

func run(ctx context.Context, inPath, outPath, topoPath string, epsilon float64, maxIter, ripup, workers int, queue string, partitions int, trace, jsonIO, pow2 bool, iterate int) (degraded bool, err error) {
	t0 := time.Now()
	in, err := loadInstance(inPath, jsonIO)
	if err != nil {
		return false, err
	}
	parseTime := time.Since(t0)
	if err := tdmroute.ValidateInstance(in); err != nil {
		return false, fmt.Errorf("invalid instance: %w", err)
	}
	stats := tdmroute.ComputeStats(in)
	fmt.Println(stats)

	topt := tdmroute.TDMOptions{Epsilon: epsilon, MaxIter: maxIter, Workers: workers}
	if pow2 {
		topt.Legal = tdmroute.LegalPow2
	}
	if trace {
		topt.Trace = func(iter int, z, lb float64) {
			fmt.Printf("iter %4d  z %.6g  LB %.6g\n", iter, z, lb)
		}
	}

	req := tdmroute.Request{
		Instance: in,
		Options: tdmroute.Options{
			Route:      tdmroute.RouteOptions{RipUpRounds: ripup},
			TDM:        topt,
			Workers:    workers,
			Queue:      queue,
			Partitions: partitions,
		},
	}
	switch {
	case topoPath != "":
		f, err := os.Open(topoPath)
		if err != nil {
			return false, err
		}
		routes, err := tdmroute.ParseRouting(f, in.G.NumEdges())
		f.Close()
		if err != nil {
			return false, err
		}
		if err := tdmroute.ValidateRouting(in, routes); err != nil {
			return false, fmt.Errorf("invalid topology: %w", err)
		}
		req.Mode = tdmroute.ModeAssignOnly
		req.Routing = routes
	case iterate > 0:
		req.Mode = tdmroute.ModeIterative
		req.Rounds = iterate
	}

	res, err := tdmroute.Run(ctx, req)
	if err != nil {
		return false, err
	}
	sol := res.Solution
	rep := res.Report
	routeTime := res.Times.Route
	taTime := res.Times.LR + res.Times.LegalRefine
	if req.Mode == tdmroute.ModeIterative {
		fmt.Printf("Iterated: initial GTR %d, %d/%d feedback rounds kept\n",
			res.InitialGTR, res.RoundsKept, res.RoundsRun)
	}
	if res.Degraded != nil {
		degraded = true
		fmt.Fprintln(os.Stderr, "tdmroute:", res.Degraded)
	}

	if err := tdmroute.ValidateSolution(in, sol); err != nil {
		return false, fmt.Errorf("internal error: produced invalid solution: %w", err)
	}

	fmt.Printf("GTR_noref   %d\n", rep.GTRNoRef)
	fmt.Printf("GTR_max     %d\n", rep.GTRMax)
	fmt.Printf("LB          %.1f\n", rep.LowerBound)
	fmt.Printf("Iterations  %d (converged=%v)\n", rep.Iterations, rep.Converged)
	fmt.Printf("Time: parse %.3fs  route %.3fs  TA %.3fs\n",
		parseTime.Seconds(), routeTime.Seconds(), taTime.Seconds())

	if outPath != "" {
		t2 := time.Now()
		if err := saveSolution(outPath, sol, jsonIO); err != nil {
			return degraded, err
		}
		fmt.Printf("wrote %s in %.3fs\n", outPath, time.Since(t2).Seconds())
	}
	return degraded, nil
}

func loadInstance(path string, jsonIO bool) (*tdmroute.Instance, error) {
	if !jsonIO {
		return tdmroute.LoadInstance(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tdmroute.ParseInstanceJSON(f)
}

func saveSolution(path string, sol *tdmroute.Solution, jsonIO bool) error {
	if !jsonIO {
		return tdmroute.SaveSolution(path, sol)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tdmroute.WriteSolutionJSON(f, sol); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
