package main

import (
	"os"
	"path/filepath"
	"testing"

	"tdmroute"
	"tdmroute/internal/gen"
)

func writeBench(t *testing.T) string {
	t.Helper()
	cfg, err := gen.SuiteConfig("synopsys01", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := tdmroute.SaveInstance(path, in); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFullFlow(t *testing.T) {
	in := writeBench(t)
	out := filepath.Join(t.TempDir(), "sol.txt")
	if err := run(in, out, "", 0, 0, 0, 2, false, false, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("solution file not written: %v", err)
	}
	// The produced solution must satisfy the independent checker path.
	inst, err := tdmroute.LoadInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := tdmroute.LoadSolution(out, inst.G.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(inst, sol); err != nil {
		t.Fatal(err)
	}
}

func TestRunTopologyOnly(t *testing.T) {
	in := writeBench(t)
	solPath := filepath.Join(t.TempDir(), "sol.txt")
	if err := run(in, solPath, "", 0, 0, 0, 1, false, false, false, 0); err != nil {
		t.Fatal(err)
	}
	// Use the solution file as a topology input (ratios ignored).
	out2 := filepath.Join(t.TempDir(), "sol2.txt")
	if err := run(in, out2, solPath, 0.01, 100, 0, 2, true, false, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out2); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent/x.txt", "", "", 0, 0, 0, 0, false, false, false, 0); err == nil {
		t.Error("missing input accepted")
	}
	in := writeBench(t)
	if err := run(in, "", "/nonexistent/topo.txt", 0, 0, 0, 0, false, false, false, 0); err == nil {
		t.Error("missing topology accepted")
	}
	// Corrupt instance file.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("not numbers"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "", "", 0, 0, 0, 0, false, false, false, 0); err == nil {
		t.Error("corrupt instance accepted")
	}
}

func TestRunJSONIO(t *testing.T) {
	// Produce a JSON instance, solve with -json, verify the JSON solution.
	cfg, err := gen.SuiteConfig("synopsys01", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.json")
	f, err := os.Create(inPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.WriteInstanceJSON(f, inst); err != nil {
		t.Fatal(err)
	}
	f.Close()
	outPath := filepath.Join(dir, "sol.json")
	if err := run(inPath, outPath, "", 0, 0, 0, 0, false, true, false, 0); err != nil {
		t.Fatal(err)
	}
	sf, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	sol, err := tdmroute.ParseSolutionJSON(sf, inst.G.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(inst, sol); err != nil {
		t.Fatal(err)
	}
}

func TestRunIterateAndPow2(t *testing.T) {
	in := writeBench(t)
	out := filepath.Join(t.TempDir(), "sol.txt")
	if err := run(in, out, "", 0, 0, 0, 2, false, false, true, 2); err != nil {
		t.Fatal(err)
	}
	inst, err := tdmroute.LoadInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := tdmroute.LoadSolution(out, inst.G.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(inst, sol); err != nil {
		t.Fatal(err)
	}
	// pow2 domain: every ratio a power of two.
	for n := range sol.Assign.Ratios {
		for _, r := range sol.Assign.Ratios[n] {
			if r&(r-1) != 0 {
				t.Fatalf("non-power-of-two ratio %d with -pow2", r)
			}
		}
	}
}
