package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tdmroute"
	"tdmroute/internal/gen"
)

func writeBench(t *testing.T) string {
	t.Helper()
	cfg, err := gen.SuiteConfig("synopsys01", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := tdmroute.SaveInstance(path, in); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFullFlow(t *testing.T) {
	in := writeBench(t)
	out := filepath.Join(t.TempDir(), "sol.txt")
	if _, err := run(context.Background(), in, out, "", 0, 0, 0, 2, "auto", 0, false, false, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("solution file not written: %v", err)
	}
	// The produced solution must satisfy the independent checker path.
	inst, err := tdmroute.LoadInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := tdmroute.LoadSolution(out, inst.G.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(inst, sol); err != nil {
		t.Fatal(err)
	}
}

func TestRunTopologyOnly(t *testing.T) {
	in := writeBench(t)
	solPath := filepath.Join(t.TempDir(), "sol.txt")
	if _, err := run(context.Background(), in, solPath, "", 0, 0, 0, 1, "auto", 0, false, false, false, 0); err != nil {
		t.Fatal(err)
	}
	// Use the solution file as a topology input (ratios ignored).
	out2 := filepath.Join(t.TempDir(), "sol2.txt")
	if _, err := run(context.Background(), in, out2, solPath, 0.01, 100, 0, 2, "auto", 0, true, false, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out2); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run(context.Background(), "/nonexistent/x.txt", "", "", 0, 0, 0, 0, "auto", 0, false, false, false, 0); err == nil {
		t.Error("missing input accepted")
	}
	in := writeBench(t)
	if _, err := run(context.Background(), in, "", "/nonexistent/topo.txt", 0, 0, 0, 0, "auto", 0, false, false, false, 0); err == nil {
		t.Error("missing topology accepted")
	}
	// Corrupt instance file.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("not numbers"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(context.Background(), bad, "", "", 0, 0, 0, 0, "auto", 0, false, false, false, 0); err == nil {
		t.Error("corrupt instance accepted")
	}
}

func TestRunJSONIO(t *testing.T) {
	// Produce a JSON instance, solve with -json, verify the JSON solution.
	cfg, err := gen.SuiteConfig("synopsys01", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.json")
	f, err := os.Create(inPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.WriteInstanceJSON(f, inst); err != nil {
		t.Fatal(err)
	}
	f.Close()
	outPath := filepath.Join(dir, "sol.json")
	if _, err := run(context.Background(), inPath, outPath, "", 0, 0, 0, 0, "auto", 0, false, true, false, 0); err != nil {
		t.Fatal(err)
	}
	sf, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	sol, err := tdmroute.ParseSolutionJSON(sf, inst.G.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(inst, sol); err != nil {
		t.Fatal(err)
	}
}

func TestRunIterateAndPow2(t *testing.T) {
	in := writeBench(t)
	out := filepath.Join(t.TempDir(), "sol.txt")
	if _, err := run(context.Background(), in, out, "", 0, 0, 0, 2, "auto", 0, false, false, true, 2); err != nil {
		t.Fatal(err)
	}
	inst, err := tdmroute.LoadInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := tdmroute.LoadSolution(out, inst.G.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(inst, sol); err != nil {
		t.Fatal(err)
	}
	// pow2 domain: every ratio a power of two.
	for n := range sol.Assign.Ratios {
		for _, r := range sol.Assign.Ratios[n] {
			if r&(r-1) != 0 {
				t.Fatalf("non-power-of-two ratio %d with -pow2", r)
			}
		}
	}
}

// A bounded run must end in exactly one of the anytime contract's states:
// a context error (cancelled before any legal incumbent existed) or a
// written, valid solution — degraded or not. Which one depends on timing;
// anything else is a bug.
func TestRunTimeoutAnytime(t *testing.T) {
	in := writeBench(t)
	out := filepath.Join(t.TempDir(), "sol.txt")
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	degraded, err := run(ctx, in, out, "", 1e-9, 5000, 0, 1, "auto", 0, false, false, false, 0)
	if err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("timeout produced a non-context error: %v", err)
		}
		return
	}
	_ = degraded // either outcome is legitimate; the solution must be valid
	inst, err := tdmroute.LoadInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := tdmroute.LoadSolution(out, inst.G.NumEdges())
	if err != nil {
		t.Fatalf("best-so-far solution not written: %v", err)
	}
	if err := tdmroute.ValidateSolution(inst, sol); err != nil {
		t.Fatal(err)
	}
}
