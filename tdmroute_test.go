package tdmroute_test

import (
	"bytes"
	"strings"
	"testing"

	"tdmroute"
	"tdmroute/internal/gen"
)

func genInstance(t testing.TB, name string, scale float64) *tdmroute.Instance {
	t.Helper()
	cfg, err := gen.SuiteConfig(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveEndToEnd(t *testing.T) {
	in := genInstance(t, "synopsys01", 0.005)
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(in, res.Solution); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	gtr, _ := tdmroute.Evaluate(in, res.Solution)
	if gtr != res.Report.GTRMax {
		t.Errorf("reported GTRMax %d != evaluated %d", res.Report.GTRMax, gtr)
	}
	if res.Report.GTRMax > res.Report.GTRNoRef {
		t.Errorf("refinement worsened: %d > %d", res.Report.GTRMax, res.Report.GTRNoRef)
	}
	if float64(res.Report.GTRMax) < res.Report.LowerBound {
		t.Errorf("GTR %d below lower bound %g", res.Report.GTRMax, res.Report.LowerBound)
	}
	if res.Times.Route <= 0 || res.Times.LR <= 0 {
		t.Errorf("stage times not recorded: %+v", res.Times)
	}
	if res.Times.Total() != res.Times.Route+res.Times.LR+res.Times.LegalRefine {
		t.Error("Total() mismatch")
	}
}

func TestAssignTDMOnExternalTopology(t *testing.T) {
	in := genInstance(t, "synopsys02", 0.005)
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the topology through the text format, as the "+TA"
	// experiment does with the winners' output files.
	var buf bytes.Buffer
	if err := tdmroute.WriteRouting(&buf, res.Solution.Routes); err != nil {
		t.Fatal(err)
	}
	routes, err := tdmroute.ParseRouting(&buf, in.G.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateRouting(in, routes); err != nil {
		t.Fatal(err)
	}
	assign, rep, err := tdmroute.AssignTDM(in, routes, tdmroute.TDMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sol := &tdmroute.Solution{Routes: routes, Assign: assign}
	if err := tdmroute.ValidateSolution(in, sol); err != nil {
		t.Fatal(err)
	}
	// Same topology, same algorithm: the result must match Solve's.
	if rep.GTRMax != res.Report.GTRMax {
		t.Errorf("AssignTDM GTRMax %d != Solve's %d on identical topology", rep.GTRMax, res.Report.GTRMax)
	}
}

func TestInstanceTextRoundTripThroughFacade(t *testing.T) {
	in := genInstance(t, "hidden01", 0.002)
	var buf bytes.Buffer
	if err := tdmroute.WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := tdmroute.ParseInstance("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateInstance(back); err != nil {
		t.Fatal(err)
	}
	a, b := tdmroute.ComputeStats(in), tdmroute.ComputeStats(back)
	a.Name, b.Name = "", ""
	if a != b {
		t.Errorf("stats changed across round trip:\n  %+v\n  %+v", a, b)
	}
}

func TestSolveDeterministic(t *testing.T) {
	in := genInstance(t, "synopsys01", 0.003)
	r1, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Report.GTRMax != r2.Report.GTRMax || r1.Report.Iterations != r2.Report.Iterations {
		t.Errorf("nondeterministic: %+v vs %+v", r1.Report, r2.Report)
	}
}

func TestSolveTraceOption(t *testing.T) {
	in := genInstance(t, "synopsys01", 0.002)
	count := 0
	_, err := tdmroute.Solve(in, tdmroute.Options{
		TDM: tdmroute.TDMOptions{Trace: func(iter int, z, lb float64) {
			count++
			if lb > z*(1+1e-9) {
				t.Errorf("iter %d: lb %g above z %g", iter, lb, z)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("trace never fired")
	}
}

func TestSolutionFileRoundTrip(t *testing.T) {
	in := genInstance(t, "synopsys01", 0.002)
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tdmroute.WriteSolution(&buf, res.Solution); err != nil {
		t.Fatal(err)
	}
	if !strings.ContainsAny(buf.String(), "0123456789") {
		t.Fatal("empty solution file")
	}
	back, err := tdmroute.ParseSolution(&buf, in.G.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	if err := tdmroute.ValidateSolution(in, back); err != nil {
		t.Fatal(err)
	}
	gtrA, _ := tdmroute.Evaluate(in, res.Solution)
	gtrB, _ := tdmroute.Evaluate(in, back)
	if gtrA != gtrB {
		t.Errorf("GTR changed across file round trip: %d vs %d", gtrA, gtrB)
	}
}

func TestVerifySchedulesOnSolvedInstance(t *testing.T) {
	in := genInstance(t, "synopsys01", 0.003)
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	verified, skipped, err := tdmroute.VerifySchedules(in, res.Solution)
	if err != nil {
		t.Fatalf("schedule verification failed: %v", err)
	}
	if verified == 0 {
		t.Fatal("no edges verified")
	}
	t.Logf("schedules verified on %d edges (%d skipped for frame length)", verified, skipped)
}

func TestVerifySchedulesDetectsOverload(t *testing.T) {
	in := genInstance(t, "synopsys01", 0.002)
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: drop every large ratio to 2 regardless of the edge's load,
	// overloading the slot budget somewhere.
	sol := res.Solution
	broken := false
	for n := range sol.Assign.Ratios {
		for k := range sol.Assign.Ratios[n] {
			if sol.Assign.Ratios[n][k] > 4 {
				sol.Assign.Ratios[n][k] = 2
				broken = true
			}
		}
	}
	if !broken {
		t.Skip("instance too small to create an overload")
	}
	if _, _, err := tdmroute.VerifySchedules(in, sol); err == nil {
		// Possible if no edge actually overflowed; force-check with the
		// validator instead.
		if verr := tdmroute.ValidateSolution(in, sol); verr == nil {
			t.Skip("corruption did not overload any edge")
		}
	}
}

// TestGoldenDeterminism pins the exact objective of a fixed-seed benchmark;
// any change to routing order, LR arithmetic, or refinement shows up here
// as a diff rather than silently shifting results.
func TestGoldenDeterminism(t *testing.T) {
	in := genInstance(t, "synopsys01", 0.005)
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.GTRMax != r1.Report.GTRMax || res.Report.GTRNoRef != r1.Report.GTRNoRef ||
		res.Report.Iterations != r1.Report.Iterations {
		t.Fatalf("nondeterministic pipeline: %+v vs %+v", res.Report, r1.Report)
	}
	// Golden values for this seed/scale. If an intentional algorithm
	// change shifts them, update the constants alongside the change.
	// Last rotation: the canonical equal-cost tie-break in the Dijkstra
	// engines (smallest edge id wins) re-selected some shortest paths.
	const (
		goldenGTR   = 58
		goldenNoRef = 62
	)
	if res.Report.GTRMax != goldenGTR || res.Report.GTRNoRef != goldenNoRef {
		t.Errorf("golden drift: GTRMax=%d (want %d) GTRNoRef=%d (want %d)",
			res.Report.GTRMax, goldenGTR, res.Report.GTRNoRef, goldenNoRef)
	}
}
