package tdmroute

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
)

func requestInstance(t *testing.T) *Instance {
	t.Helper()
	cfg, err := gen.SuiteConfig("synopsys01", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestRunMatchesDeprecatedWrappers pins the redesign contract: Run with each
// mode produces byte-identical solutions to the entry points it subsumes.
func TestRunMatchesDeprecatedWrappers(t *testing.T) {
	in := requestInstance(t)

	single, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(solutionBytes(t, single.Solution), solutionBytes(t, got.Solution)) {
		t.Fatal("ModeSingle: Run and Solve diverged")
	}
	if got.Mode != ModeSingle {
		t.Fatalf("Mode = %v, want ModeSingle", got.Mode)
	}

	iter, err := SolveIterative(in, IterateOptions{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	goti, err := Run(context.Background(), Request{Instance: in, Mode: ModeIterative, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(solutionBytes(t, iter.Solution), solutionBytes(t, goti.Solution)) {
		t.Fatal("ModeIterative: Run and SolveIterative diverged")
	}
	if goti.RoundsRun != iter.RoundsRun || goti.RoundsKept != iter.RoundsKept ||
		goti.InitialGTR != iter.InitialGTR {
		t.Fatalf("ModeIterative round accounting: Run (%d/%d initial %d) vs wrapper (%d/%d initial %d)",
			goti.RoundsRun, goti.RoundsKept, goti.InitialGTR,
			iter.RoundsRun, iter.RoundsKept, iter.InitialGTR)
	}

	assign, rep, err := AssignTDM(in, single.Solution.Routes, TDMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gota, err := Run(context.Background(), Request{
		Instance: in,
		Mode:     ModeAssignOnly,
		Routing:  single.Solution.Routes,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := &Solution{Routes: single.Solution.Routes, Assign: assign}
	if !bytes.Equal(solutionBytes(t, want), solutionBytes(t, gota.Solution)) {
		t.Fatal("ModeAssignOnly: Run and AssignTDM diverged")
	}
	if gota.Report.GTRMax != rep.GTRMax || gota.Report.Iterations != rep.Iterations {
		t.Fatalf("ModeAssignOnly report: Run (%d, %d iters) vs wrapper (%d, %d iters)",
			gota.Report.GTRMax, gota.Report.Iterations, rep.GTRMax, rep.Iterations)
	}
}

// TestRunNormalizesWorkers is the regression for the historical withWorkers
// inconsistency: worker counts are normalized exactly once at the Run
// boundary, so zero and negative counts behave as sequential in every mode
// — including ModeAssignOnly, whose old entry point bypassed the pipeline
// normalization entirely.
func TestRunNormalizesWorkers(t *testing.T) {
	in := requestInstance(t)
	base, err := Run(context.Background(), Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	routes := base.Solution.Routes

	for _, mode := range []Mode{ModeSingle, ModeIterative, ModeAssignOnly} {
		var ref []byte
		for _, workers := range []int{1, 0, -7} {
			req := Request{
				Instance: in,
				Mode:     mode,
				Options: Options{
					Workers: workers,
					Route:   RouteOptions{Workers: workers},
					TDM:     TDMOptions{Workers: workers},
				},
			}
			if mode == ModeIterative {
				req.Rounds = 1
			}
			if mode == ModeAssignOnly {
				req.Routing = routes
			}
			resp, err := Run(context.Background(), req)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", mode, workers, err)
			}
			b := solutionBytes(t, resp.Solution)
			if ref == nil {
				ref = b
			} else if !bytes.Equal(ref, b) {
				t.Fatalf("%v: workers=%d diverged from workers=1", mode, workers)
			}
		}
	}
}

// TestRunRequestValidation covers the malformed-request errors.
func TestRunRequestValidation(t *testing.T) {
	in := requestInstance(t)
	if _, err := Run(context.Background(), Request{}); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := Run(context.Background(), Request{Instance: in, Mode: Mode(42)}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Run(context.Background(), Request{Instance: in, Mode: ModeAssignOnly}); err == nil {
		t.Error("ModeAssignOnly without routing accepted")
	}
	if _, err := Run(context.Background(), Request{
		Instance: in, Mode: ModeAssignOnly, Routing: Routing{{0}},
	}); err == nil {
		t.Error("ModeAssignOnly with short routing accepted")
	}
}

// TestRunProgressEvents checks the OnProgress stream: LR iterations arrive
// in order, round events precede the rounds' LR work, and the user's own
// TDM trace still fires alongside.
func TestRunProgressEvents(t *testing.T) {
	in := requestInstance(t)
	var events []Progress
	traced := 0
	_, err := Run(context.Background(), Request{
		Instance: in,
		Mode:     ModeIterative,
		Rounds:   2,
		Options: Options{
			TDM: TDMOptions{Trace: func(iter int, z, lb float64) { traced++ }},
		},
		OnProgress: func(p Progress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var lr, rounds int
	maxRound := 0
	for _, e := range events {
		switch e.Kind {
		case ProgressLR:
			lr++
			if e.Round < maxRound {
				t.Fatalf("LR event round went backwards: %d after %d", e.Round, maxRound)
			}
		case ProgressRound:
			rounds++
			maxRound = e.Round + 1
		default:
			t.Fatalf("unknown progress kind %q", e.Kind)
		}
	}
	if lr == 0 {
		t.Error("no LR progress events")
	}
	if rounds == 0 {
		t.Error("no round progress events")
	}
	if traced != lr {
		t.Errorf("user trace fired %d times, OnProgress saw %d LR events", traced, lr)
	}
}

// TestResponseMarshalJSONGolden pins the wire schema of a Response: one
// JSON shape for every mode, snake_case keys, milliseconds for walls, the
// Degraded cause flattened to its message, and the solution summarized.
func TestResponseMarshalJSONGolden(t *testing.T) {
	resp := &Response{
		Mode: ModeIterative,
		Solution: &Solution{
			Routes: Routing{{0, 1}, {2}},
			Assign: Assignment{Ratios: [][]int64{{2, 4}, {6}}},
		},
		Report: Report{
			Iterations:  41,
			Converged:   true,
			LowerBound:  11.5,
			RelaxedZ:    12.25,
			GTRNoRef:    16,
			GTRMax:      14,
			Interrupted: context.Canceled,
		},
		RouteStats: RouteStats{RoutedNets: 2, RipUpRounds: 3, RevertedRound: 1, RippedNets: 5},
		Times: StageTimes{
			Route:       1500 * time.Microsecond,
			LR:          2250 * time.Microsecond,
			LegalRefine: 250 * time.Microsecond,
		},
		Degraded: &Degraded{
			Stage:          StageFeedback,
			Cause:          context.Canceled,
			LRIterations:   41,
			FeedbackRounds: 2,
			IncumbentGTR:   14,
		},
		RoundsRun:  2,
		RoundsKept: 1,
		InitialGTR: 16,
		Perf: Perf{
			RouteSec: 0.0015, LRSec: 0.00225, LegalRefineSec: 0.00025, TotalSec: 0.004,
			PeakRSSBytes: 1048576, Allocs: 12345,
			RippedNets: 5, RevertedRounds: 1, LRIterations: 41,
		},
	}
	got, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"schema_version":2,"mode":"iterative",` +
		`"report":{"iterations":41,"converged":true,"lower_bound":11.5,"relaxed_z":12.25,"gtr_noref":16,"gtr_max":14,"interrupted":"context canceled"},` +
		`"route_stats":{"routed_nets":2,"ripup_rounds":3,"reverted_rounds":1,"ripped_nets":5},` +
		`"times":{"route_ms":1.5,"lr_ms":2.25,"legal_refine_ms":0.25,"total_ms":4},` +
		`"perf":{"route_sec":0.0015,"lr_sec":0.00225,"legal_refine_sec":0.00025,"total_sec":0.004,"peak_rss_bytes":1048576,"allocs":12345,"ripped_nets":5,"reverted_rounds":1,"lr_iterations":41},` +
		`"degraded":{"stage":"feedback","cause":"context canceled","lr_iterations":41,"feedback_rounds":2,"incumbent_gtr":14},` +
		`"rounds_run":2,"rounds_kept":1,"initial_gtr":16,` +
		`"solution":{"nets":2,"routed_edges":3}}`
	if string(got) != want {
		t.Errorf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}

	// A clean single-mode response: null degraded, zero iterate fields —
	// the same schema, not a different one.
	clean := &Response{Mode: ModeSingle}
	got, err = json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	const wantClean = `{"schema_version":2,"mode":"single",` +
		`"report":{"iterations":0,"converged":false,"lower_bound":0,"relaxed_z":0,"gtr_noref":0,"gtr_max":0},` +
		`"route_stats":{"routed_nets":0,"ripup_rounds":0,"reverted_rounds":0,"ripped_nets":0},` +
		`"times":{"route_ms":0,"lr_ms":0,"legal_refine_ms":0,"total_ms":0},` +
		`"perf":{"route_sec":0,"lr_sec":0,"legal_refine_sec":0,"total_sec":0,"peak_rss_bytes":0,"allocs":0,"ripped_nets":0,"reverted_rounds":0,"lr_iterations":0},` +
		`"degraded":null,"rounds_run":0,"rounds_kept":0,"initial_gtr":0,"solution":null}`
	if string(got) != wantClean {
		t.Errorf("clean golden mismatch:\n got: %s\nwant: %s", got, wantClean)
	}

	// A degraded delta response whose stage was curtailed without a recorded
	// cause: degradedCause substitutes a definite sentinel, so the wire
	// schema never carries an empty cause alongside a non-null degraded
	// (regression: runAssignOnly used to build Degraded with a nil Cause).
	curtailed := &Response{
		Mode: ModeDelta,
		Degraded: &Degraded{
			Stage:        StageLR,
			Cause:        degradedCause(Report{}, context.Background()),
			LRIterations: 7,
			IncumbentGTR: 20,
		},
	}
	got, err = json.Marshal(curtailed)
	if err != nil {
		t.Fatal(err)
	}
	const wantCurtailed = `{"schema_version":2,"mode":"delta",` +
		`"report":{"iterations":0,"converged":false,"lower_bound":0,"relaxed_z":0,"gtr_noref":0,"gtr_max":0},` +
		`"route_stats":{"routed_nets":0,"ripup_rounds":0,"reverted_rounds":0,"ripped_nets":0},` +
		`"times":{"route_ms":0,"lr_ms":0,"legal_refine_ms":0,"total_ms":0},` +
		`"perf":{"route_sec":0,"lr_sec":0,"legal_refine_sec":0,"total_sec":0,"peak_rss_bytes":0,"allocs":0,"ripped_nets":0,"reverted_rounds":0,"lr_iterations":0},` +
		`"degraded":{"stage":"lr","cause":"tdmroute: run curtailed without a recorded cause","lr_iterations":7,"feedback_rounds":0,"incumbent_gtr":20},` +
		`"rounds_run":0,"rounds_kept":0,"initial_gtr":0,"solution":null}`
	if string(got) != wantCurtailed {
		t.Errorf("curtailed golden mismatch:\n got: %s\nwant: %s", got, wantCurtailed)
	}
}

// TestDegradedCauseNeverNil pins the satellite fix for the nil-Cause
// Degraded: whichever combination of interruption record and context state a
// curtailed stage ends in, the attributed cause is definite.
func TestDegradedCauseNeverNil(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	boom := errors.New("boom")
	cases := []struct {
		name string
		rep  Report
		ctx  context.Context
		want error
	}{
		{"interrupted wins", Report{Interrupted: boom}, cancelled, boom},
		{"context next", Report{}, cancelled, context.Canceled},
		{"sentinel fallback", Report{}, context.Background(), errCurtailed},
	}
	for _, tc := range cases {
		got := degradedCause(tc.rep, tc.ctx)
		if got == nil {
			t.Fatalf("%s: degradedCause returned nil", tc.name)
		}
		if !errors.Is(got, tc.want) {
			t.Errorf("%s: degradedCause = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestResponseJSONRoundTrip checks UnmarshalJSON against MarshalJSON: a
// decoded Response re-encodes to the identical wire bytes (the solution
// summary, which decoding drops, excepted), so the tdmroutd client sees
// exactly what the server reported.
func TestResponseJSONRoundTrip(t *testing.T) {
	resp := &Response{
		Mode: ModeIterative,
		Report: Report{
			Iterations: 41, Converged: true, LowerBound: 11.5, RelaxedZ: 12.25,
			GTRNoRef: 16, GTRMax: 14, Interrupted: context.Canceled,
		},
		RouteStats: RouteStats{RoutedNets: 2, RipUpRounds: 3, RevertedRound: 1, RippedNets: 5},
		Times: StageTimes{
			Route:       1500 * time.Microsecond,
			LR:          2250 * time.Microsecond,
			LegalRefine: 250 * time.Microsecond,
		},
		Degraded: &Degraded{
			Stage: StageFeedback, Cause: context.Canceled,
			LRIterations: 41, FeedbackRounds: 2, IncumbentGTR: 14,
		},
		RoundsRun: 2, RoundsKept: 1, InitialGTR: 16,
		Perf: Perf{
			RouteSec: 0.0015, LRSec: 0.00225, LegalRefineSec: 0.00025, TotalSec: 0.004,
			PeakRSSBytes: 2097152, Allocs: 999, RippedNets: 5, RevertedRounds: 1, LRIterations: 41,
		},
	}
	wire, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var back Response
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != string(again) {
		t.Errorf("round trip diverged:\n out: %s\nback: %s", wire, again)
	}
	if back.Times.LR != resp.Times.LR {
		t.Errorf("Times.LR = %v, want %v", back.Times.LR, resp.Times.LR)
	}
	if back.Degraded == nil || back.Degraded.Cause == nil ||
		back.Degraded.Cause.Error() != context.Canceled.Error() {
		t.Errorf("Degraded did not survive the round trip: %+v", back.Degraded)
	}
	if back.Perf != resp.Perf {
		t.Errorf("Perf did not survive the round trip: %+v vs %+v", back.Perf, resp.Perf)
	}
}

// TestResponseUnmarshalV1 pins backward compatibility of the decoder: a
// schema-1 payload (no schema_version key, no perf block) from an older
// server still decodes, with a zero Perf. A payload from a newer schema
// generation is rejected rather than silently truncated.
func TestResponseUnmarshalV1(t *testing.T) {
	const v1 = `{"mode":"single",` +
		`"report":{"iterations":12,"converged":true,"lower_bound":3,"relaxed_z":3.5,"gtr_noref":8,"gtr_max":6},` +
		`"route_stats":{"routed_nets":4,"ripup_rounds":2,"reverted_rounds":0,"ripped_nets":1},` +
		`"times":{"route_ms":1,"lr_ms":2,"legal_refine_ms":3,"total_ms":6},` +
		`"degraded":null,"rounds_run":0,"rounds_kept":0,"initial_gtr":0,"solution":null}`
	var r Response
	if err := json.Unmarshal([]byte(v1), &r); err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	if r.Report.GTRMax != 6 || r.RouteStats.RoutedNets != 4 {
		t.Errorf("v1 payload decoded wrong: %+v", r)
	}
	if r.Perf != (Perf{}) {
		t.Errorf("v1 payload produced a non-zero Perf: %+v", r.Perf)
	}

	if err := json.Unmarshal([]byte(`{"schema_version":99,"mode":"single"}`), &r); err == nil {
		t.Error("schema_version 99 was accepted")
	}
}

// TestRunDegradedDeadline checks the anytime contract through Run: a
// deadline that expires mid-solve still yields a legal solution with
// Degraded populated.
func TestRunDegradedDeadline(t *testing.T) {
	in := requestInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	iters := 0
	resp, err := Run(ctx, Request{
		Instance: in,
		Options: Options{TDM: TDMOptions{Trace: func(int, float64, float64) {
			iters++
			if iters == 3 {
				cancel()
			}
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded == nil {
		t.Fatal("mid-LR cancellation did not set Degraded")
	}
	if !errors.Is(resp.Degraded.Cause, context.Canceled) {
		t.Fatalf("Degraded.Cause = %v, want context.Canceled", resp.Degraded.Cause)
	}
	if err := problem.ValidateSolution(in, resp.Solution); err != nil {
		t.Fatalf("degraded solution invalid: %v", err)
	}
}
