package tdmroute_test

import (
	"testing"
	"time"

	"tdmroute"
)

func TestSolveIterativeNeverWorse(t *testing.T) {
	for _, bench := range []string{"synopsys01", "synopsys02", "hidden01"} {
		in := genInstance(t, bench, 0.005)
		res, err := tdmroute.SolveIterative(in, tdmroute.IterateOptions{Rounds: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := tdmroute.ValidateSolution(in, res.Solution); err != nil {
			t.Fatalf("%s: invalid: %v", bench, err)
		}
		if res.Report.GTRMax > res.InitialGTR {
			t.Errorf("%s: iteration worsened GTR: %d -> %d", bench, res.InitialGTR, res.Report.GTRMax)
		}
		gtr, _ := tdmroute.Evaluate(in, res.Solution)
		if gtr != res.Report.GTRMax {
			t.Errorf("%s: report %d != evaluated %d", bench, res.Report.GTRMax, gtr)
		}
		if res.RoundsRun < 1 {
			t.Errorf("%s: no rounds ran", bench)
		}
		t.Logf("%s: initial %d -> iterated %d (%d/%d rounds kept)",
			bench, res.InitialGTR, res.Report.GTRMax, res.RoundsKept, res.RoundsRun)
	}
}

func TestSolveIterativeImprovesSomewhere(t *testing.T) {
	// Across several benchmarks/seeds, at least one feedback round should
	// land an improvement; otherwise the extension is dead code.
	improved := false
	for _, bench := range []string{"synopsys01", "synopsys02", "synopsys03", "hidden01"} {
		in := genInstance(t, bench, 0.004)
		res, err := tdmroute.SolveIterative(in, tdmroute.IterateOptions{Rounds: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.RoundsKept > 0 && res.Report.GTRMax < res.InitialGTR {
			improved = true
		}
	}
	if !improved {
		t.Log("no benchmark improved under iteration at this scale (acceptable but worth watching)")
	}
}

func TestSolveIterativeDeterministic(t *testing.T) {
	in := genInstance(t, "synopsys01", 0.003)
	a, err := tdmroute.SolveIterative(in, tdmroute.IterateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tdmroute.SolveIterative(in, tdmroute.IterateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.GTRMax != b.Report.GTRMax || a.RoundsKept != b.RoundsKept {
		t.Errorf("nondeterministic: %+v vs %+v", a.Report, b.Report)
	}
}

func TestIterativeStageTimesAccounted(t *testing.T) {
	// Regression test for two timing bugs: feedbackRound charged the whole
	// tdm.Assign (LR + legalize + refine) to Times.LR, and the λ-recapture
	// run was not timed at all. Every stage must show work, and the
	// per-stage sum must stay within the wall clock of the entire solve.
	in := genInstance(t, "synopsys01", 0.005)
	start := time.Now()
	res, err := tdmroute.SolveIterative(in, tdmroute.IterateOptions{Rounds: 4})
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Times.Route <= 0 {
		t.Errorf("Times.Route not accounted: %v", res.Times.Route)
	}
	if res.Times.LR <= 0 {
		t.Errorf("Times.LR not accounted: %v", res.Times.LR)
	}
	if res.Times.LegalRefine <= 0 {
		t.Errorf("Times.LegalRefine not accounted: %v", res.Times.LegalRefine)
	}
	if total := res.Times.Total(); total > wall {
		t.Errorf("stage times over-account: total %v > wall %v", total, wall)
	}
	t.Logf("wall=%v route=%v lr=%v legal+refine=%v",
		wall, res.Times.Route, res.Times.LR, res.Times.LegalRefine)
}

func TestWarmStartConvergesFaster(t *testing.T) {
	// Re-running the assignment on the same topology warm-started from
	// the converged multipliers must converge (almost) immediately.
	in := genInstance(t, "synopsys02", 0.01)
	res, err := tdmroute.Solve(in, tdmroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var lambda []float64
	topt := tdmroute.TDMOptions{CaptureLambda: func(l []float64) { lambda = l }}
	_, cold, err := tdmroute.AssignTDM(in, res.Solution.Routes, topt)
	if err != nil {
		t.Fatal(err)
	}
	if lambda == nil {
		t.Fatal("CaptureLambda not called")
	}
	warm := tdmroute.TDMOptions{WarmLambda: lambda}
	_, rewarm, err := tdmroute.AssignTDM(in, res.Solution.Routes, warm)
	if err != nil {
		t.Fatal(err)
	}
	if rewarm.Iterations > cold.Iterations {
		t.Errorf("warm start took more iterations: %d vs cold %d", rewarm.Iterations, cold.Iterations)
	}
	t.Logf("iterations: cold=%d warm=%d", cold.Iterations, rewarm.Iterations)
}
