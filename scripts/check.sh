#!/bin/sh
# Full verification pass: build, vet, formatting, tests (with race detector
# where requested), and a benchmark smoke run.
#
#   scripts/check.sh          # quick: build + vet + short tests
#   scripts/check.sh full     # adds full tests, race detector, bench smoke
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
  echo "needs gofmt:"; echo "$fmt"; exit 1
fi

echo "== build"
go build ./...

echo "== vet"
go vet ./...

echo "== tdmlint"
go run ./cmd/tdmlint ./...

if [ "${1:-}" = "full" ]; then
  echo "== tests (full)"
  go test ./...
  echo "== race (tdm)"
  go test -race ./internal/tdm/
  echo "== bench smoke"
  go test -bench=. -benchtime=1x -run '^$' .
else
  echo "== tests (short)"
  go test -short ./...
fi
echo "OK"
