#!/bin/sh
# Smoke-test the tdmroutd job server end to end: build it, boot it on a
# local port, drive one job through submit -> poll -> solution over HTTP
# with retain=1, re-solve an ECO edit through the delta endpoint against
# the retained warm session, reconcile /metrics, then drain with SIGTERM
# and require exit status 0.
#
#   scripts/serve_smoke.sh           # default port 18080
#   SERVE_SMOKE_ADDR=127.0.0.1:9999 scripts/serve_smoke.sh
set -eu
cd "$(dirname "$0")/.."

addr=${SERVE_SMOKE_ADDR:-127.0.0.1:18080}
base="http://$addr"
work=$(mktemp -d)
pid=""
cleanup() {
  [ -z "$pid" ] || kill "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/tdmroutd" ./cmd/tdmroutd
go run ./cmd/gen -name synopsys01 -scale 0.003 -o "$work/instance.txt"

echo "== start tdmroutd on $addr"
"$work/tdmroutd" -addr "$addr" -pool 2 &
pid=$!

i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "FAIL: server never became healthy"
    exit 1
  fi
  sleep 0.1
done

echo "== submit"
accepted=$(curl -fsS -X POST -H 'Content-Type: text/plain' \
  --data-binary "@$work/instance.txt" "$base/v1/jobs?name=smoke&retain=1")
id=$(printf '%s' "$accepted" | grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)
if [ -z "$id" ]; then
  echo "FAIL: no job id in submit response: $accepted"
  exit 1
fi
echo "accepted job $id"

wait_done() {
  _wid=$1
  i=0
  state=""
  while :; do
    state=$(curl -fsS "$base/v1/jobs/$_wid" |
      grep -o '"state":"[a-z]*"' | head -n 1 | cut -d'"' -f4)
    case "$state" in
    done) return 0 ;;
    failed | canceled | rejected)
      echo "FAIL: job $_wid ended in state $state"
      exit 1
      ;;
    esac
    i=$((i + 1))
    if [ "$i" -ge 600 ]; then
      echo "FAIL: job $_wid stuck in state ${state:-unknown}"
      exit 1
    fi
    sleep 0.1
  done
}

echo "== wait for completion"
wait_done "$id"

echo "== solution"
curl -fsS "$base/v1/jobs/$id/solution?format=text" -o "$work/solution.txt"
if ! [ -s "$work/solution.txt" ]; then
  echo "FAIL: empty solution body"
  exit 1
fi
wc -l <"$work/solution.txt" | xargs echo "solution lines:"

echo "== delta re-solve against the warm session"
accepted=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  --data '{"edge_bias":[{"edge":0,"delta":1}]}' "$base/v1/jobs/$id/delta")
did=$(printf '%s' "$accepted" | grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)
if [ -z "$did" ] || [ "$did" = "$id" ]; then
  echo "FAIL: no delta job id in response: $accepted"
  exit 1
fi
echo "accepted delta job $did (base $id)"
wait_done "$did"
curl -fsS "$base/v1/jobs/$did/solution?format=text" -o "$work/delta.txt"
if ! [ -s "$work/delta.txt" ]; then
  echo "FAIL: empty delta solution body"
  exit 1
fi
wc -l <"$work/delta.txt" | xargs echo "delta solution lines:"

echo "== metrics"
curl -fsS "$base/metrics" >"$work/metrics.txt"
for want in \
  'tdmroutd_up 1' \
  'tdmroutd_draining 0' \
  'tdmroutd_jobs_accepted_total 2' \
  'tdmroutd_submit_rejected_total 0' \
  'tdmroutd_jobs_total{outcome="done"} 2' \
  'tdmroutd_jobs_running 0' \
  'tdmroutd_queue_depth 0' \
  'tdmroutd_warm_sessions 1' \
  'tdmroutd_warm_retained_total 1' \
  'tdmroutd_warm_evicted_total 0' \
  'tdmroutd_warm_dropped_total 0' \
  'tdmroutd_warm_conflict_total 0'; do
  if ! grep -Fqx "$want" "$work/metrics.txt"; then
    echo "FAIL: metrics missing line: $want"
    cat "$work/metrics.txt"
    exit 1
  fi
done

echo "== SIGTERM drain"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: drain exited with status $rc"
  exit 1
fi

echo "serve smoke OK"
