#!/bin/sh
# Smoke-test the serving tier end to end, in two phases.
#
# Phase 1, tdmroutd: build it, boot it on a local port, drive one job
# through submit -> poll -> solution over HTTP with retain=1, re-solve an
# ECO edit through the delta endpoint against the retained warm session,
# reconcile /metrics, then drain with SIGTERM and require exit status 0.
#
# Phase 2, tdmcoord: boot a 3-backend fleet behind the coordinator, solve
# a reference job on a bare backend, then run the identical job through
# the coordinator and kill -9 the backend it landed on mid-LR. The
# coordinator must re-dispatch and deliver a solution byte-identical to
# the uninterrupted reference (the replay guarantee), a resubmission must
# replay from the result cache without touching a backend, and the
# coordinator must drain cleanly on SIGTERM.
#
#   scripts/serve_smoke.sh           # default ports 18080, 18090-18093
#   SERVE_SMOKE_ADDR=127.0.0.1:9999 scripts/serve_smoke.sh
set -eu
cd "$(dirname "$0")/.."

addr=${SERVE_SMOKE_ADDR:-127.0.0.1:18080}
coord_addr=${SERVE_SMOKE_COORD_ADDR:-127.0.0.1:18090}
backend_port_base=${SERVE_SMOKE_BACKEND_PORT_BASE:-18091}
base="http://$addr"
work=$(mktemp -d)
pid=""
fleet_pids=""
cleanup() {
  [ -z "$pid" ] || kill "$pid" 2>/dev/null || true
  for p in $fleet_pids; do kill "$p" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/tdmroutd" ./cmd/tdmroutd
go run ./cmd/gen -name synopsys01 -scale 0.003 -o "$work/instance.txt"

echo "== start tdmroutd on $addr"
"$work/tdmroutd" -addr "$addr" -pool 2 &
pid=$!

i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "FAIL: server never became healthy"
    exit 1
  fi
  sleep 0.1
done

echo "== submit"
accepted=$(curl -fsS -X POST -H 'Content-Type: text/plain' \
  --data-binary "@$work/instance.txt" "$base/v1/jobs?name=smoke&retain=1")
id=$(printf '%s' "$accepted" | grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)
if [ -z "$id" ]; then
  echo "FAIL: no job id in submit response: $accepted"
  exit 1
fi
echo "accepted job $id"

wait_done() {
  _wbase=$1
  _wid=$2
  i=0
  state=""
  while :; do
    state=$(curl -fsS "$_wbase/v1/jobs/$_wid" |
      grep -o '"state":"[a-z]*"' | head -n 1 | cut -d'"' -f4)
    case "$state" in
    done) return 0 ;;
    failed | canceled | rejected)
      echo "FAIL: job $_wid ended in state $state"
      exit 1
      ;;
    esac
    i=$((i + 1))
    if [ "$i" -ge 600 ]; then
      echo "FAIL: job $_wid stuck in state ${state:-unknown}"
      exit 1
    fi
    sleep 0.1
  done
}

echo "== wait for completion"
wait_done "$base" "$id"

echo "== solution"
curl -fsS "$base/v1/jobs/$id/solution?format=text" -o "$work/solution.txt"
if ! [ -s "$work/solution.txt" ]; then
  echo "FAIL: empty solution body"
  exit 1
fi
wc -l <"$work/solution.txt" | xargs echo "solution lines:"

echo "== delta re-solve against the warm session"
accepted=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  --data '{"edge_bias":[{"edge":0,"delta":1}]}' "$base/v1/jobs/$id/delta")
did=$(printf '%s' "$accepted" | grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)
if [ -z "$did" ] || [ "$did" = "$id" ]; then
  echo "FAIL: no delta job id in response: $accepted"
  exit 1
fi
echo "accepted delta job $did (base $id)"
wait_done "$base" "$did"
curl -fsS "$base/v1/jobs/$did/solution?format=text" -o "$work/delta.txt"
if ! [ -s "$work/delta.txt" ]; then
  echo "FAIL: empty delta solution body"
  exit 1
fi
wc -l <"$work/delta.txt" | xargs echo "delta solution lines:"

echo "== metrics"
curl -fsS "$base/metrics" >"$work/metrics.txt"
for want in \
  'tdmroutd_up 1' \
  'tdmroutd_draining 0' \
  'tdmroutd_jobs_accepted_total 2' \
  'tdmroutd_submit_rejected_total 0' \
  'tdmroutd_jobs_total{outcome="done"} 2' \
  'tdmroutd_jobs_running 0' \
  'tdmroutd_queue_depth 0' \
  'tdmroutd_warm_sessions 1' \
  'tdmroutd_warm_retained_total 1' \
  'tdmroutd_warm_evicted_total 0' \
  'tdmroutd_warm_dropped_total 0' \
  'tdmroutd_warm_conflict_total 0'; do
  if ! grep -Fqx "$want" "$work/metrics.txt"; then
    echo "FAIL: metrics missing line: $want"
    cat "$work/metrics.txt"
    exit 1
  fi
done

echo "== SIGTERM drain"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: drain exited with status $rc"
  exit 1
fi

# ---------------------------------------------------------------------------
# Phase 2: coordinator chaos — kill a backend mid-job, require replay.
# ---------------------------------------------------------------------------

echo "== coordinator: build + 3-backend fleet"
go build -o "$work/tdmcoord" ./cmd/tdmcoord
host=${coord_addr%:*}
backend_flags=""
fleet=""
i=0
while [ "$i" -lt 3 ]; do
  baddr="$host:$((backend_port_base + i))"
  "$work/tdmroutd" -addr "$baddr" -pool 2 -quiet &
  bpid=$!
  fleet_pids="$fleet_pids $bpid"
  fleet="$fleet $baddr=$bpid"
  backend_flags="$backend_flags -backend http://$baddr"
  i=$((i + 1))
done
# shellcheck disable=SC2086
"$work/tdmcoord" -addr "$coord_addr" $backend_flags &
pid=$!
cbase="http://$coord_addr"

i=0
until curl -fsS "$cbase/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "FAIL: coordinator never became healthy"
    exit 1
  fi
  sleep 0.1
done

# A job slow enough (a few seconds of LR) to kill its backend mid-run.
# The solver is deterministic, so the uninterrupted reference below and
# the replayed chaos run must produce byte-identical solutions.
opts="epsilon=1e-9&maxiter=300000"

echo "== coordinator: uninterrupted reference on a bare backend"
refaddr="$host:$backend_port_base"
accepted=$(curl -fsS -X POST -H 'Content-Type: text/plain' \
  --data-binary "@$work/instance.txt" "http://$refaddr/v1/jobs?name=ref&$opts")
rid=$(printf '%s' "$accepted" | grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)
wait_done "http://$refaddr" "$rid"
curl -fsS "http://$refaddr/v1/jobs/$rid/solution?format=text" -o "$work/ref.txt"

echo "== coordinator: same job through the coordinator, kill its backend mid-LR"
accepted=$(curl -fsS -X POST -H 'Content-Type: text/plain' \
  --data-binary "@$work/instance.txt" "$cbase/v1/jobs?name=chaos&$opts")
cid=$(printf '%s' "$accepted" | grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)
case "$cid" in
c*) ;;
*)
  echo "FAIL: coordinator job id $cid is not c-prefixed: $accepted"
  exit 1
  ;;
esac

victim=""
i=0
while [ -z "$victim" ]; do
  victim=$(curl -fsS "$cbase/v1/jobs/$cid" |
    grep -o '"backend":"[^"]*"' | head -n 1 | cut -d'"' -f4)
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "FAIL: job $cid never reported a backend"
    exit 1
  fi
  [ -n "$victim" ] || sleep 0.1
done
sleep 1 # let the job get a second of LR progress on the victim
vpid=""
for entry in $fleet; do
  if [ "${entry%=*}" = "$victim" ]; then vpid=${entry#*=}; fi
done
if [ -z "$vpid" ]; then
  echo "FAIL: placed backend $victim is not in the fleet: $fleet"
  exit 1
fi
echo "killing backend $victim (pid $vpid) with SIGKILL"
kill -9 "$vpid"

wait_done "$cbase" "$cid"
curl -fsS "$cbase/v1/jobs/$cid/solution?format=text" -o "$work/chaos.txt"
if ! cmp -s "$work/ref.txt" "$work/chaos.txt"; then
  echo "FAIL: replayed solution differs from the uninterrupted reference"
  exit 1
fi
echo "replayed solution is byte-identical to the reference"

echo "== coordinator: identical resubmission replays from the cache"
accepted=$(curl -fsS -X POST -H 'Content-Type: text/plain' \
  --data-binary "@$work/instance.txt" "$cbase/v1/jobs?name=cached&$opts")
hid=$(printf '%s' "$accepted" | grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)
wait_done "$cbase" "$hid"
hbackend=$(curl -fsS "$cbase/v1/jobs/$hid" |
  grep -o '"backend":"[^"]*"' | head -n 1 | cut -d'"' -f4)
if [ "$hbackend" != "cache" ]; then
  echo "FAIL: resubmission ran on $hbackend instead of the result cache"
  exit 1
fi
curl -fsS "$cbase/v1/jobs/$hid/solution?format=text" -o "$work/cached.txt"
if ! cmp -s "$work/ref.txt" "$work/cached.txt"; then
  echo "FAIL: cached solution differs from the reference"
  exit 1
fi

echo "== coordinator: metrics"
# The dead backend's breaker opens via probe failures; give it time.
i=0
while :; do
  curl -fsS "$cbase/metrics" >"$work/coord_metrics.txt"
  grep -Fqx 'tdmcoord_backends_live 2' "$work/coord_metrics.txt" && break
  i=$((i + 1))
  if [ "$i" -ge 120 ]; then
    echo "FAIL: breaker never opened for the killed backend"
    cat "$work/coord_metrics.txt"
    exit 1
  fi
  sleep 0.25
done
for want in \
  'tdmcoord_up 1' \
  'tdmcoord_backends 3' \
  'tdmcoord_backends_live 2' \
  'tdmcoord_cache_hits_total 1' \
  'tdmcoord_jobs_total{outcome="done"} 2'; do
  if ! grep -Fqx "$want" "$work/coord_metrics.txt"; then
    echo "FAIL: coordinator metrics missing line: $want"
    cat "$work/coord_metrics.txt"
    exit 1
  fi
done
retries=$(grep -o '^tdmcoord_retries_total [0-9]*' "$work/coord_metrics.txt" | cut -d' ' -f2)
if [ -z "$retries" ] || [ "$retries" -lt 1 ]; then
  echo "FAIL: tdmcoord_retries_total = ${retries:-missing}, want >= 1"
  exit 1
fi

echo "== coordinator: SIGTERM drain"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: coordinator drain exited with status $rc"
  exit 1
fi
for entry in $fleet; do
  p=${entry#*=}
  [ "$p" = "$vpid" ] && continue
  kill -TERM "$p" 2>/dev/null || true
done

echo "serve smoke OK"
