#!/bin/sh
# Regenerate every table and figure of EXPERIMENTS.md into ./results/.
# Usage: scripts/experiments.sh [scale]   (default 0.01)
set -eu
cd "$(dirname "$0")/.."
scale="${1:-0.01}"
mkdir -p results

echo "== Table I"
go run ./cmd/bench -table 1 -scale "$scale" | tee results/table1.txt
echo "== Table II (this is the long one)"
go run ./cmd/bench -table 2 -scale "$scale" | tee results/table2.txt
echo "== update-rule ablation"
go run ./cmd/bench -table ablation -scale "$scale" | tee results/ablation.txt
echo "== pow2 ablation"
go run ./cmd/bench -table pow2 -scale "$scale" | tee results/pow2.txt
echo "== router ablation"
go run ./cmd/bench -table router -scale "$scale" | tee results/router.txt
echo "== Fig 3a"
go run ./cmd/bench -fig 3a -scale "$scale" | tee results/fig3a.txt
echo "== Fig 3b"
go run ./cmd/bench -fig 3b -scale "$scale" > results/fig3b.csv
go run ./cmd/bench -fig 3b -ascii -scale "$scale" | tee results/fig3b.txt
echo "== scaling sweep"
go run ./cmd/bench -scaling synopsys01 -scales 0.002,0.01,0.05,0.2,1.0 | tee results/scaling.txt
echo "done: see ./results/"
