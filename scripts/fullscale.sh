#!/bin/sh
# Scale-1.0 performance smoke: runs the iterated solve at the PUBLISHED
# benchmark sizes with both Dijkstra engines and asserts that the bucket
# queue reproduces the binary heap byte-for-byte (solution digests) while
# reporting the wall times. This is the CI-optional "fullscale" job
# (workflow_dispatch + nightly cron); the tier-1 jobs never run at this
# scale.
#
#   scripts/fullscale.sh
#
# Tunables (environment):
#   FULLSCALE_BENCHES   comma-separated benchmark subset (default keeps the
#                       job time-boxed to the two smallest boards)
#   FULLSCALE_ROUNDS    feedback-round budget (default 1)
#   FULLSCALE_SCALE     suite scale factor (default 1.0; lower it to smoke
#                       the script itself)
#   FULLSCALE_OUT       scratch/output directory (default /tmp/fullscale)
set -eu
cd "$(dirname "$0")/.."

BENCHES="${FULLSCALE_BENCHES:-synopsys01,synopsys02}"
ROUNDS="${FULLSCALE_ROUNDS:-1}"
SCALE="${FULLSCALE_SCALE:-1.0}"
OUT="${FULLSCALE_OUT:-/tmp/fullscale}"
mkdir -p "$OUT"

echo "== build"
go build -o "$OUT/bench" ./cmd/bench

echo "== scale $SCALE, heap queue, workers=1"
"$OUT/bench" -benchjson "$OUT/heap.json" -scale "$SCALE" -benchmarks "$BENCHES" \
  -rounds "$ROUNDS" -reps 1 -workers 1 -queue heap -v

echo "== scale $SCALE, bucket queue, workers=1"
"$OUT/bench" -benchjson "$OUT/bucket.json" -scale "$SCALE" -benchmarks "$BENCHES" \
  -rounds "$ROUNDS" -reps 1 -workers 1 -queue bucket -v

# Byte-identity: at a fixed worker count the two engines must produce
# identical solutions, so their contest-format digests must match row for
# row. A divergence here means the canonical tie-break contract broke.
heap_digests=$(grep -o '"solution_sha256": "[a-f0-9]*"' "$OUT/heap.json")
bucket_digests=$(grep -o '"solution_sha256": "[a-f0-9]*"' "$OUT/bucket.json")
if [ "$heap_digests" != "$bucket_digests" ]; then
  echo "FAIL: heap and bucket solution digests diverged at scale $SCALE"
  echo "-- heap:";   echo "$heap_digests"
  echo "-- bucket:"; echo "$bucket_digests"
  exit 1
fi
echo "solution digests identical across queue engines"

echo "== wall times (ms, heap then bucket)"
grep -o '"wall_ms": [0-9.]*' "$OUT/heap.json"
grep -o '"wall_ms": [0-9.]*' "$OUT/bucket.json"
echo "OK"
