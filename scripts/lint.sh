#!/bin/sh
# Static-analysis entry point, matching the CI gates exactly: gofmt
# cleanliness, go vet, and the repo's own tdmlint suite — all eight
# analyzers (floatcast, maporder, rawgo, floateq, ctxflow, mutexhold,
# satarith, detsource — see internal/lint) over the whole tree, including
# internal/lint and cmd/tdmlint themselves (the linter must pass its own
# rules). Set SARIF_OUT to also emit a SARIF 2.1.0 report for CI
# code-scanning upload.
#
#   scripts/lint.sh                          # gate: exit 1 on any finding
#   SARIF_OUT=report.sarif scripts/lint.sh   # also write the SARIF report
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
  echo "needs gofmt:"; echo "$fmt"; exit 1
fi

echo "== vet"
go vet ./...

echo "== tdmlint (8 analyzers, whole tree incl. internal/lint)"
if [ -n "${SARIF_OUT:-}" ]; then
  go run ./cmd/tdmlint -sarif "$SARIF_OUT" ./...
else
  go run ./cmd/tdmlint ./...
fi

echo "OK"
