#!/bin/sh
# Static-analysis entry point, matching the CI gates exactly: gofmt
# cleanliness plus the repo's own tdmlint analyzers (floatcast, maporder,
# rawgo, floateq — see internal/lint). Run before pushing:
#
#   scripts/lint.sh
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
  echo "needs gofmt:"; echo "$fmt"; exit 1
fi

echo "== vet"
go vet ./...

echo "== tdmlint"
go run ./cmd/tdmlint ./...

echo "OK"
