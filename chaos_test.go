package tdmroute_test

import (
	"testing"

	"tdmroute"
	"tdmroute/internal/chaos"
	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
)

// The chaos sweep: a few hundred seeded injections across every fault mode
// and two instance shapes, asserting the anytime invariant on each — the
// run ends in a typed error or a validated solution, never an escaped panic
// or a silently corrupt result. Seeds are fixed, so a failure here
// reproduces from the reported (mode, seed) pair.

func chaosInstances(t *testing.T) []*problem.Instance {
	t.Helper()
	cfgs := []gen.Config{
		{Name: "chaos-grid", Seed: 1, FPGAs: 12, Edges: 22, Nets: 40, Groups: 12},
		{Name: "chaos-dense", Seed: 2, FPGAs: 8, Edges: 20, Nets: 24, Groups: 8, MeanGroupSize: 3},
	}
	ins := make([]*problem.Instance, 0, len(cfgs))
	for _, cfg := range cfgs {
		in, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, in)
	}
	return ins
}

func TestChaosSweep(t *testing.T) {
	ins := chaosInstances(t)
	modes := []chaos.Mode{chaos.ModeCancel, chaos.ModePanic, chaos.ModeCorrupt, chaos.ModeDelta}
	const seedsPerCell = 36 // 2 instances x 4 modes x 36 = 288 injections
	opt := tdmroute.Options{
		TDM:     tdmroute.TDMOptions{Epsilon: 1e-4, MaxIter: 50},
		Workers: 4,
	}
	injections := 0
	for ii, in := range ins {
		for _, mode := range modes {
			for s := 0; s < seedsPerCell; s++ {
				seed := int64(ii*10_000 + s)
				o := chaos.Run(in, mode, seed, opt)
				if err := chaos.Check(o); err != nil {
					t.Fatal(err)
				}
				injections++
			}
		}
	}
	if injections < 200 {
		t.Fatalf("sweep ran only %d injections, want >= 200", injections)
	}
}
