package tdmroute

import (
	"context"
	"crypto/sha256"
	"testing"

	"tdmroute/internal/problem"
)

// solutionSHA is the digest the equivalence suite compares: the SHA-256 of
// the contest text serialization, so "identical" means identical down to
// every routed edge and every TDM ratio digit.
func solutionSHA(t *testing.T, sol *problem.Solution) [32]byte {
	t.Helper()
	return sha256.Sum256(solutionBytes(t, sol))
}

// buildTestDelta assembles a deterministic delta exercising every edit kind:
// one net removed, two nets added (one joining the removed net's groups),
// one group membership moved, and congestion bias on a routed edge.
func buildTestDelta(t *testing.T, in *Instance, routes Routing) *Delta {
	t.Helper()
	d := &Delta{}
	rm := -1
	for n := range in.Nets {
		if len(in.Nets[n].Terminals) >= 2 && len(in.Nets[n].Groups) > 0 {
			rm = n
			break
		}
	}
	if rm < 0 {
		t.Fatal("instance has no removable net")
	}
	d.RemoveNets = []int{rm}
	terms := in.Nets[rm].Terminals
	d.AddNets = []Net{
		{Terminals: []int{terms[0], terms[1]}, Groups: append([]int(nil), in.Nets[rm].Groups...)},
		{Terminals: []int{terms[len(terms)-1], terms[0]}},
	}
	var ga, gr *GroupEdit
	for g := 0; g < len(in.Groups) && (ga == nil || gr == nil); g++ {
		mem := in.Groups[g].Nets
		if gr == nil {
			for _, n := range mem {
				if n != rm {
					gr = &GroupEdit{Group: g, Net: n}
					break
				}
			}
		}
		if ga == nil {
			for n := 0; n < len(in.Nets); n++ {
				if n == rm || len(in.Nets[n].Terminals) == 0 || containsSorted(mem, n) {
					continue
				}
				ge := GroupEdit{Group: g, Net: n}
				if gr == nil || *gr != ge {
					ga = &ge
					break
				}
			}
		}
	}
	if ga == nil || gr == nil {
		t.Fatal("instance offers no group membership edits")
	}
	d.GroupAdd = []GroupEdit{*ga}
	d.GroupRemove = []GroupEdit{*gr}
	for _, es := range routes {
		if len(es) > 0 {
			d.EdgeBias = []EdgeBiasEdit{{Edge: es[0], Delta: 2}}
			break
		}
	}
	if len(d.EdgeBias) == 0 {
		t.Fatal("instance has no routed edge to bias")
	}
	return d
}

// buildChainDelta assembles the second delta of a chain: it removes the net
// added by the first delta, withdraws part of its bias, and pressures a new
// edge.
func buildChainDelta(t *testing.T, in *Instance, routes Routing, first *Delta) *Delta {
	t.Helper()
	d := &Delta{RemoveNets: []int{len(in.Nets) - 1}}
	biased := first.EdgeBias[0].Edge
	d.EdgeBias = []EdgeBiasEdit{{Edge: biased, Delta: -1}}
	for n := len(routes) - 1; n >= 0; n-- {
		es := routes[n]
		if len(es) > 0 && es[len(es)-1] != biased {
			d.EdgeBias = append(d.EdgeBias, EdgeBiasEdit{Edge: es[len(es)-1], Delta: 3})
			break
		}
	}
	if len(d.EdgeBias) < 2 {
		t.Fatal("instance has no second edge to bias")
	}
	return d
}

// TestDeltaMatchesColdReference is the byte-identity contract of the ECO
// path: across generator seeds, worker counts, and a deterministic mid-LR
// cancellation, a ModeDelta solve on retained warm state must reproduce the
// from-scratch reference (runDeltaCold) on the patched instance exactly —
// same solution digest, same objective, same degradation. A second, chained
// delta (consuming the handle the first one returned) is held to the same
// standard, pinning multiplier capture, bias accumulation, and tombstone
// handling across deltas.
func TestDeltaMatchesColdReference(t *testing.T) {
	cases := []struct {
		bench string
		shift int64
	}{
		{"synopsys01", 10},
		{"synopsys02", 11},
		{"hidden01", 12},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			for _, cancelIter := range []int{-1, 1} {
				in1 := equivInstance(t, tc.bench, tc.shift)
				in2 := in1.Clone() // frozen pre-delta copy for the cold reference
				opt := Options{Workers: workers}

				base, err := Run(context.Background(), Request{Instance: in1, Options: opt, Retain: true})
				if err != nil {
					t.Fatalf("%s workers=%d: base solve: %v", tc.bench, workers, err)
				}
				h := base.Warm
				if h == nil {
					t.Fatalf("%s workers=%d: Retain returned no warm handle", tc.bench, workers)
				}
				baseRouting := h.Routes()
				baseLambda := h.Lambda()

				trace := func(cancel context.CancelFunc) func(int, float64, float64) {
					if cancelIter < 0 {
						return nil
					}
					return func(iter int, _, _ float64) {
						if iter == cancelIter {
							cancel()
						}
					}
				}

				d1 := buildTestDelta(t, in1, baseRouting)

				wctx, wcancel := context.WithCancel(context.Background())
				wopt := Options{}
				wopt.TDM.Trace = trace(wcancel)
				respW, err := Run(wctx, Request{Mode: ModeDelta, Base: h, Delta: d1, Options: wopt})
				wcancel()
				if err != nil {
					t.Fatalf("%s workers=%d cancel=%d: warm delta: %v", tc.bench, workers, cancelIter, err)
				}
				if respW.Warm != h {
					t.Fatalf("%s workers=%d cancel=%d: delta response did not return the handle", tc.bench, workers, cancelIter)
				}

				cctx, ccancel := context.WithCancel(context.Background())
				copt := opt
				copt.TDM.Trace = trace(ccancel)
				respC, routingC, lambdaC, err := runDeltaCold(cctx, in2, baseRouting, nil, baseLambda, d1, copt)
				ccancel()
				if err != nil {
					t.Fatalf("%s workers=%d cancel=%d: cold delta: %v", tc.bench, workers, cancelIter, err)
				}

				compare := func(step string, w, c *Response, patched *Instance) {
					t.Helper()
					if w.Report.GTRMax != c.Report.GTRMax {
						t.Fatalf("%s workers=%d cancel=%d %s: GTR %d vs %d",
							tc.bench, workers, cancelIter, step, w.Report.GTRMax, c.Report.GTRMax)
					}
					if (w.Degraded != nil) != (c.Degraded != nil) {
						t.Fatalf("%s workers=%d cancel=%d %s: degraded %v vs %v",
							tc.bench, workers, cancelIter, step, w.Degraded, c.Degraded)
					}
					if solutionSHA(t, w.Solution) != solutionSHA(t, c.Solution) {
						t.Fatalf("%s workers=%d cancel=%d %s: solution digests diverged",
							tc.bench, workers, cancelIter, step)
					}
					if err := problem.ValidateSolution(patched, w.Solution); err != nil {
						t.Fatalf("%s workers=%d cancel=%d %s: delta solution invalid on patched instance: %v",
							tc.bench, workers, cancelIter, step, err)
					}
				}
				compare("delta1", respW, respC, in2)

				// Chain a second delta through the same handle; the cold
				// reference replays the first delta's bias on a fresh session.
				d2 := buildChainDelta(t, h.Instance(), respW.Solution.Routes, d1)
				respW2, err := Run(context.Background(), Request{Mode: ModeDelta, Base: respW.Warm, Delta: d2})
				if err != nil {
					t.Fatalf("%s workers=%d cancel=%d: warm delta2: %v", tc.bench, workers, cancelIter, err)
				}
				respC2, _, _, err := runDeltaCold(context.Background(), in2, routingC, d1.EdgeBias, lambdaC, d2, opt)
				if err != nil {
					t.Fatalf("%s workers=%d cancel=%d: cold delta2: %v", tc.bench, workers, cancelIter, err)
				}
				compare("delta2", respW2, respC2, in2)
			}
		}
	}
}

// TestDeltaAfterIterativeRetain covers the ModeIterative retention path: the
// warm handle of an iterated solve — whose TDM session typically lags the
// routing session by the final rejected feedback round (the stale set) —
// must still produce a delta solve byte-identical to the cold reference.
func TestDeltaAfterIterativeRetain(t *testing.T) {
	in1 := equivInstance(t, "synopsys01", 13)
	in2 := in1.Clone()
	opt := Options{}

	base, err := Run(context.Background(), Request{Instance: in1, Mode: ModeIterative, Rounds: 3, Options: opt, Retain: true})
	if err != nil {
		t.Fatalf("base iterative solve: %v", err)
	}
	h := base.Warm
	if h == nil {
		t.Fatal("Retain returned no warm handle")
	}
	baseRouting := h.Routes()
	baseLambda := h.Lambda()

	d := buildTestDelta(t, in1, baseRouting)
	respW, err := Run(context.Background(), Request{Mode: ModeDelta, Base: h, Delta: d})
	if err != nil {
		t.Fatalf("warm delta: %v", err)
	}
	respC, _, _, err := runDeltaCold(context.Background(), in2, baseRouting, nil, baseLambda, d, opt)
	if err != nil {
		t.Fatalf("cold delta: %v", err)
	}
	if respW.Report.GTRMax != respC.Report.GTRMax {
		t.Fatalf("GTR diverged: %d vs %d", respW.Report.GTRMax, respC.Report.GTRMax)
	}
	if solutionSHA(t, respW.Solution) != solutionSHA(t, respC.Solution) {
		t.Fatal("solution digests diverged after iterative retention")
	}
	if err := problem.ValidateSolution(in2, respW.Solution); err != nil {
		t.Fatalf("delta solution invalid on patched instance: %v", err)
	}
}

// TestRetainMatchesThrowaway pins that retention does not change results:
// a Retain run returns byte-identical solutions to the plain run it shadows,
// for both ModeSingle and ModeIterative.
func TestRetainMatchesThrowaway(t *testing.T) {
	for _, mode := range []Mode{ModeSingle, ModeIterative} {
		in := equivInstance(t, "synopsys02", 14)
		plain, err := Run(context.Background(), Request{Instance: in, Mode: mode})
		if err != nil {
			t.Fatalf("%v plain: %v", mode, err)
		}
		retained, err := Run(context.Background(), Request{Instance: in, Mode: mode, Retain: true})
		if err != nil {
			t.Fatalf("%v retained: %v", mode, err)
		}
		if retained.Warm == nil {
			t.Fatalf("%v: no warm handle", mode)
		}
		if solutionSHA(t, plain.Solution) != solutionSHA(t, retained.Solution) {
			t.Fatalf("%v: retained run diverged from the throwaway run", mode)
		}
		if plain.Report.GTRMax != retained.Report.GTRMax {
			t.Fatalf("%v: GTR diverged: %d vs %d", mode, plain.Report.GTRMax, retained.Report.GTRMax)
		}
	}
}
