package eval

import (
	"math"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

func tiny() (*problem.Instance, *problem.Solution) {
	g := graph.New(4, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	in := &problem.Instance{
		Name: "t",
		G:    g,
		Nets: []problem.Net{
			{Terminals: []int{0, 2}},
			{Terminals: []int{1, 3}},
			{Terminals: []int{0}}, // intra-FPGA
		},
		Groups: []problem.Group{
			{Nets: []int{0}},
			{Nets: []int{0, 1}},
			{Nets: []int{2}},
		},
	}
	in.RebuildNetGroups()
	sol := &problem.Solution{
		Routes: problem.Routing{{0, 1}, {1, 2}, {}},
		Assign: problem.Assignment{Ratios: [][]int64{{2, 4}, {4, 2}, {}}},
	}
	return in, sol
}

func TestNetTDMs(t *testing.T) {
	_, sol := tiny()
	nets := NetTDMs(sol)
	want := []int64{6, 6, 0}
	for i := range want {
		if nets[i] != want[i] {
			t.Errorf("net %d TDM = %d, want %d", i, nets[i], want[i])
		}
	}
}

func TestGroupTDMsAndMax(t *testing.T) {
	in, sol := tiny()
	gtrs := GroupTDMs(in, sol)
	want := []int64{6, 12, 0}
	for gi := range want {
		if gtrs[gi] != want[gi] {
			t.Errorf("group %d TDM = %d, want %d", gi, gtrs[gi], want[gi])
		}
	}
	maxv, arg := MaxGroupTDM(in, sol)
	if maxv != 12 || arg != 1 {
		t.Errorf("MaxGroupTDM = %d@%d", maxv, arg)
	}
}

func TestMaxGroupTDMNoGroups(t *testing.T) {
	in, sol := tiny()
	in.Groups = nil
	v, arg := MaxGroupTDM(in, sol)
	if v != 0 || arg != -1 {
		t.Errorf("no groups: %d@%d", v, arg)
	}
}

func TestMaxGroupTDMTieSmallestIndex(t *testing.T) {
	in, sol := tiny()
	// Make groups 0 and 1 equal by shrinking group 1 to just net 0.
	in.Groups[1].Nets = []int{0}
	in.RebuildNetGroups()
	_, arg := MaxGroupTDM(in, sol)
	if arg != 0 {
		t.Errorf("tie should pick smallest index, got %d", arg)
	}
}

func TestFracVariantsMatchIntegers(t *testing.T) {
	in, sol := tiny()
	frac := [][]float64{{2, 4}, {4, 2}, {}}
	nets := FracNetTDMs(sol.Routes, frac)
	for i, v := range NetTDMs(sol) {
		if math.Abs(nets[i]-float64(v)) > 1e-12 {
			t.Errorf("frac net %d = %g, want %d", i, nets[i], v)
		}
	}
	gtrs := FracGroupTDMs(in, sol.Routes, frac)
	for gi, v := range GroupTDMs(in, sol) {
		if math.Abs(gtrs[gi]-float64(v)) > 1e-12 {
			t.Errorf("frac group %d = %g, want %d", gi, gtrs[gi], v)
		}
	}
	z, arg := FracMaxGroupTDM(in, sol.Routes, frac)
	if math.Abs(z-12) > 1e-12 || arg != 1 {
		t.Errorf("frac max = %g@%d", z, arg)
	}
}

func TestFracMaxNoGroups(t *testing.T) {
	in, sol := tiny()
	in.Groups = nil
	z, arg := FracMaxGroupTDM(in, sol.Routes, [][]float64{{1, 1}, {1, 1}, {}})
	if z != 0 || arg != -1 {
		t.Errorf("no groups frac: %g@%d", z, arg)
	}
}

func TestCongestion(t *testing.T) {
	routes := problem.Routing{{0, 1}, {1}, {}}
	st := Congestion(4, routes)
	if st.Wirelength != 3 || st.UsedEdges != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxLoad != 2 || st.MaxLoadEdge != 1 {
		t.Errorf("max load = %d@%d", st.MaxLoad, st.MaxLoadEdge)
	}
	if st.AvgLoad != 1.5 {
		t.Errorf("avg = %g", st.AvgLoad)
	}
	empty := Congestion(4, problem.Routing{{}})
	if empty.MaxLoadEdge != -1 || empty.UsedEdges != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}
