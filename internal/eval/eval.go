// Package eval scores solutions of the routing + TDM assignment problem:
// per-net and per-group TDM ratios, the maximum group TDM ratio GTR_max that
// Table II of the paper reports, and fractional variants used while the LR
// stage still works on relaxed (real-valued) ratios.
package eval

import "tdmroute/internal/problem"

// NetTDMs returns the TDM ratio of every net: the sum of the ratios assigned
// to the net on all its routed edges.
func NetTDMs(sol *problem.Solution) []int64 {
	out := make([]int64, len(sol.Routes))
	for n := range sol.Routes {
		var sum int64
		for _, r := range sol.Assign.Ratios[n] {
			sum += r
		}
		out[n] = sum
	}
	return out
}

// GroupTDMs returns the TDM ratio of every NetGroup: the sum of the TDM
// ratios of its member nets.
func GroupTDMs(in *problem.Instance, sol *problem.Solution) []int64 {
	nets := NetTDMs(sol)
	out := make([]int64, len(in.Groups))
	for gi := range in.Groups {
		var sum int64
		for _, n := range in.Groups[gi].Nets {
			sum += nets[n]
		}
		out[gi] = sum
	}
	return out
}

// MaxGroupTDM returns GTR_max and the index of a group achieving it
// (smallest index on ties). For an instance with no groups it returns (0, -1).
func MaxGroupTDM(in *problem.Instance, sol *problem.Solution) (int64, int) {
	gtrs := GroupTDMs(in, sol)
	best, arg := int64(0), -1
	for gi, v := range gtrs {
		if arg == -1 || v > best {
			best, arg = v, gi
		}
	}
	return best, arg
}

// CongestionStats summarizes routing pressure on the FPGA graph.
type CongestionStats struct {
	// Wirelength is the total number of (net, edge) pairs.
	Wirelength int
	// UsedEdges counts edges carrying at least one net.
	UsedEdges int
	// MaxLoad and AvgLoad describe |N_e| over used edges.
	MaxLoad int
	AvgLoad float64
	// MaxLoadEdge is an edge attaining MaxLoad (-1 when nothing routed).
	MaxLoadEdge int
}

// Congestion computes CongestionStats for a routing over numEdges edges.
func Congestion(numEdges int, routes problem.Routing) CongestionStats {
	loads := make([]int, numEdges)
	st := CongestionStats{MaxLoadEdge: -1}
	for _, edges := range routes {
		for _, e := range edges {
			loads[e]++
			st.Wirelength++
		}
	}
	for e, l := range loads {
		if l == 0 {
			continue
		}
		st.UsedEdges++
		if l > st.MaxLoad {
			st.MaxLoad = l
			st.MaxLoadEdge = e
		}
	}
	if st.UsedEdges > 0 {
		st.AvgLoad = float64(st.Wirelength) / float64(st.UsedEdges)
	}
	return st
}

// FracNetTDMs is NetTDMs for relaxed real-valued ratios, laid out per net in
// route order (parallel to sol routes).
func FracNetTDMs(routes problem.Routing, ratios [][]float64) []float64 {
	out := make([]float64, len(routes))
	for n := range routes {
		var sum float64
		for _, r := range ratios[n] {
			sum += r
		}
		out[n] = sum
	}
	return out
}

// FracGroupTDMs is GroupTDMs for relaxed real-valued ratios.
func FracGroupTDMs(in *problem.Instance, routes problem.Routing, ratios [][]float64) []float64 {
	nets := FracNetTDMs(routes, ratios)
	out := make([]float64, len(in.Groups))
	for gi := range in.Groups {
		var sum float64
		for _, n := range in.Groups[gi].Nets {
			sum += nets[n]
		}
		out[gi] = sum
	}
	return out
}

// FracMaxGroupTDM returns the fractional GTR_max (z of Algorithm 1) and its
// argmax group, or (0, -1) with no groups.
func FracMaxGroupTDM(in *problem.Instance, routes problem.Routing, ratios [][]float64) (float64, int) {
	gtrs := FracGroupTDMs(in, routes, ratios)
	best, arg := 0.0, -1
	for gi, v := range gtrs {
		if arg == -1 || v > best {
			best, arg = v, gi
		}
	}
	return best, arg
}
