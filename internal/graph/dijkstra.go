package graph

// Cost is the lexicographic path cost used by the congestion-aware searches
// of Sec. III: Primary accumulates the caller-defined edge cost (typically a
// usage count such as |N_e|), and Hops counts edges. Comparison is
// lexicographic, so among equally congested paths the shortest one wins —
// this realizes the paper's "edge cost = number of nets already routed"
// while keeping path selection deterministic when many edges are unused.
type Cost struct {
	Primary uint64
	Hops    uint32
}

// Less reports whether c is strictly cheaper than d.
func (c Cost) Less(d Cost) bool {
	if c.Primary != d.Primary {
		return c.Primary < d.Primary
	}
	return c.Hops < d.Hops
}

// Add returns the cost of extending a path of cost c by one edge of the
// given primary cost.
func (c Cost) Add(edgePrimary uint64) Cost {
	return Cost{Primary: c.Primary + edgePrimary, Hops: c.Hops + 1}
}

// InfCost is larger than any reachable path cost.
var InfCost = Cost{Primary: ^uint64(0), Hops: ^uint32(0)}

type dijkstraItem struct {
	vertex int
	cost   Cost
}

// dijkstraHeap is a hand-rolled typed binary min-heap. container/heap would
// box every dijkstraItem into an interface{}, and that allocation dominates
// a router issuing hundreds of thousands of searches.
type dijkstraHeap []dijkstraItem

func (h *dijkstraHeap) push(it dijkstraItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].cost.Less(s[parent].cost) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *dijkstraHeap) pop() dijkstraItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, rgt := 2*i+1, 2*i+2
		smallest := i
		if l < last && s[l].cost.Less(s[smallest].cost) {
			smallest = l
		}
		if rgt < last && s[rgt].cost.Less(s[smallest].cost) {
			smallest = rgt
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// init re-establishes the heap property over arbitrary contents.
func (h dijkstraHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h dijkstraHeap) siftDown(i int) {
	n := len(h)
	for {
		l, rgt := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].cost.Less(h[smallest].cost) {
			smallest = l
		}
		if rgt < n && h[rgt].cost.Less(h[smallest].cost) {
			smallest = rgt
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Dijkstra runs single-source shortest-path searches on one graph with
// caller-supplied per-edge primary costs. It owns reusable buffers so that a
// router issuing millions of searches does not re-allocate per call.
//
// Not safe for concurrent use; create one instance per goroutine.
type Dijkstra struct {
	g        *Graph
	dist     []Cost
	prevEdge []int32 // edge used to reach vertex, -1 at source/unreached
	touched  []int   // vertices whose dist/prevEdge entries are dirty
	heap     dijkstraHeap
	done     []bool
}

// Clone returns an independent search engine bound to the same graph, for
// spawning one solver per worker goroutine.
func (d *Dijkstra) Clone() *Dijkstra { return NewDijkstra(d.g) }

// NewDijkstra returns a search engine bound to g.
func NewDijkstra(g *Graph) *Dijkstra {
	n := g.NumVertices()
	d := &Dijkstra{
		g:        g,
		dist:     make([]Cost, n),
		prevEdge: make([]int32, n),
		done:     make([]bool, n),
	}
	for i := 0; i < n; i++ {
		d.dist[i] = InfCost
		d.prevEdge[i] = -1
	}
	return d
}

// EdgeCostFunc returns the primary cost of traversing edge id.
type EdgeCostFunc func(edge int) uint64

// ShortestPath finds a minimum-cost path from src to dst under costFn and
// appends its edge identifiers, in src→dst order, to pathBuf. It returns the
// extended slice, the path cost, and whether dst was reachable. A src==dst
// query returns an empty path with zero cost.
func (d *Dijkstra) ShortestPath(src, dst int, costFn EdgeCostFunc, pathBuf []int) ([]int, Cost, bool) {
	if src == dst {
		return pathBuf, Cost{}, true
	}
	d.reset()
	d.visit(src, Cost{}, -1)
	d.heap = d.heap[:0]
	d.heap = append(d.heap, dijkstraItem{vertex: src})

	found := false
	for len(d.heap) > 0 {
		it := d.heap.pop()
		u := it.vertex
		if d.done[u] {
			continue
		}
		d.done[u] = true
		if u == dst {
			found = true
			break
		}
		du := d.dist[u]
		// Target-pruned relaxation. Once dst has been reached, any settled
		// node whose cost is not below dist[dst] cannot begin a cheaper
		// path to dst (Cost.Add strictly increases, so every extension
		// costs more than du >= dist[dst]), and — because the heap pops in
		// non-decreasing order while dst is still enqueued at dist[dst] —
		// such a node ties dst exactly, meaning dist[dst] is already final.
		// Skipping its adjacency scan is byte-identical to relaxing it: the
		// skipped relaxations could only have written dist/prevEdge of
		// vertices costlier than dst, none of which appear on the
		// reconstructed path or survive reset. Note that pruning *pushes*
		// of costlier candidates during ordinary relaxations would NOT be
		// safe: removing items from the binary heap perturbs its layout and
		// with it the pop order among equal-cost items, silently changing
		// which of two tied paths wins (see DESIGN.md, "Performance
		// engineering").
		if bound := d.dist[dst]; bound != InfCost && !du.Less(bound) {
			continue
		}
		for _, arc := range d.g.Adj(u) {
			if d.done[arc.To] {
				continue
			}
			nc := du.Add(costFn(arc.Edge))
			if nc.Less(d.dist[arc.To]) {
				d.visit(arc.To, nc, int32(arc.Edge))
				d.heap.push(dijkstraItem{vertex: arc.To, cost: nc})
			}
		}
	}
	if !found {
		return pathBuf, InfCost, false
	}

	total := d.dist[dst]
	// Reconstruct backwards, then reverse in place.
	start := len(pathBuf)
	for v := dst; v != src; {
		eid := d.prevEdge[v]
		pathBuf = append(pathBuf, int(eid))
		v = d.g.Edge(int(eid)).Other(v)
	}
	for i, j := start, len(pathBuf)-1; i < j; i, j = i+1, j-1 {
		pathBuf[i], pathBuf[j] = pathBuf[j], pathBuf[i]
	}
	return pathBuf, total, true
}

func (d *Dijkstra) visit(v int, c Cost, via int32) {
	if d.dist[v] == InfCost && !d.done[v] {
		d.touched = append(d.touched, v)
	}
	d.dist[v] = c
	d.prevEdge[v] = via
}

func (d *Dijkstra) reset() {
	for _, v := range d.touched {
		d.dist[v] = InfCost
		d.prevEdge[v] = -1
		d.done[v] = false
	}
	d.touched = d.touched[:0]
}
