package graph

// Cost is the lexicographic path cost used by the congestion-aware searches
// of Sec. III: Primary accumulates the caller-defined edge cost (typically a
// usage count such as |N_e|), and Hops counts edges. Comparison is
// lexicographic, so among equally congested paths the shortest one wins —
// this realizes the paper's "edge cost = number of nets already routed"
// while keeping path selection deterministic when many edges are unused.
type Cost struct {
	Primary uint64
	Hops    uint32
}

// Less reports whether c is strictly cheaper than d.
func (c Cost) Less(d Cost) bool {
	if c.Primary != d.Primary {
		return c.Primary < d.Primary
	}
	return c.Hops < d.Hops
}

// Add returns the cost of extending a path of cost c by one edge of the
// given primary cost.
func (c Cost) Add(edgePrimary uint64) Cost {
	return Cost{Primary: c.Primary + edgePrimary, Hops: c.Hops + 1}
}

// InfCost is larger than any reachable path cost.
var InfCost = Cost{Primary: ^uint64(0), Hops: ^uint32(0)}

// QueueKind selects the priority-queue engine behind ShortestPath.
//
// Every engine pops settled vertices in non-decreasing (Primary, Hops)
// order, and the relaxation step resolves equal-cost path ties canonically
// (smallest edge id wins, see ShortestPath), so all engines produce
// byte-identical paths. The choice is purely a performance trade:
// QueueRadix avoids the binary heap's sift traffic on the integer-cost
// searches a router issues by the million.
type QueueKind uint8

const (
	// QueueHeap is the hand-rolled binary min-heap.
	QueueHeap QueueKind = iota
	// QueueRadix is a monotone radix (bucket) queue specialized for
	// integer costs: keys are (Primary, Hops) packed into one machine
	// word and items live in 65 buckets indexed by the position of the
	// highest bit in which the key differs from the last deleted minimum.
	// Pops are amortized O(word size); no comparisons sift through a heap.
	QueueRadix
)

type dijkstraItem struct {
	vertex int
	cost   Cost
}

// dijkstraHeap is a hand-rolled typed binary min-heap. container/heap would
// box every dijkstraItem into an interface{}, and that allocation dominates
// a router issuing hundreds of thousands of searches.
type dijkstraHeap []dijkstraItem

func (h *dijkstraHeap) push(it dijkstraItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].cost.Less(s[parent].cost) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *dijkstraHeap) pop() dijkstraItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, rgt := 2*i+1, 2*i+2
		smallest := i
		if l < last && s[l].cost.Less(s[smallest].cost) {
			smallest = l
		}
		if rgt < last && s[rgt].cost.Less(s[smallest].cost) {
			smallest = rgt
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// init re-establishes the heap property over arbitrary contents.
func (h dijkstraHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h dijkstraHeap) siftDown(i int) {
	n := len(h)
	for {
		l, rgt := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].cost.Less(h[smallest].cost) {
			smallest = l
		}
		if rgt < n && h[rgt].cost.Less(h[smallest].cost) {
			smallest = rgt
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Dijkstra runs single-source shortest-path searches on one graph with
// caller-supplied per-edge primary costs. It owns reusable buffers so that a
// router issuing millions of searches does not re-allocate per call.
//
// Not safe for concurrent use; create one instance per goroutine.
type Dijkstra struct {
	g        *Graph
	dist     []Cost
	prevEdge []int32 // edge used to reach vertex, -1 at source/unreached
	touched  []int   // vertices whose dist/prevEdge entries are dirty
	heap     dijkstraHeap
	radix    *radixQueue
	queue    QueueKind
	done     []bool
}

// Clone returns an independent search engine bound to the same graph and
// queue engine, for spawning one solver per worker goroutine.
func (d *Dijkstra) Clone() *Dijkstra { return NewDijkstraQueue(d.g, d.queue) }

// NewDijkstra returns a search engine bound to g using the binary heap.
func NewDijkstra(g *Graph) *Dijkstra { return NewDijkstraQueue(g, QueueHeap) }

// NewDijkstraQueue returns a search engine bound to g using the given
// priority-queue engine. All engines produce byte-identical paths; see
// QueueKind.
func NewDijkstraQueue(g *Graph, queue QueueKind) *Dijkstra {
	n := g.NumVertices()
	d := &Dijkstra{
		g:        g,
		dist:     make([]Cost, n),
		prevEdge: make([]int32, n),
		queue:    queue,
		done:     make([]bool, n),
	}
	if queue == QueueRadix {
		d.radix = newRadixQueue(n)
	}
	for i := 0; i < n; i++ {
		d.dist[i] = InfCost
		d.prevEdge[i] = -1
	}
	return d
}

// Queue returns the engine this searcher was built with.
func (d *Dijkstra) Queue() QueueKind { return d.queue }

// EdgeCostFunc returns the primary cost of traversing edge id.
type EdgeCostFunc func(edge int) uint64

// ShortestPath finds a minimum-cost path from src to dst under costFn and
// appends its edge identifiers, in src→dst order, to pathBuf. It returns the
// extended slice, the path cost, and whether dst was reachable. A src==dst
// query returns an empty path with zero cost.
//
// Equal-cost path ties resolve canonically: when a relaxation reaches a
// vertex at exactly its current best cost, the incoming edge with the
// smaller id wins. The predecessor of every vertex on the returned path is
// therefore the minimum-id edge over all optimal predecessors — a pure
// function of (graph, costFn, src, dst) — rather than an accident of which
// tied queue item happened to pop first. That is what licenses swapping the
// queue engine (QueueKind) and the target pruning below without changing a
// single output byte; see DESIGN.md, "Scale-1.0 performance".
func (d *Dijkstra) ShortestPath(src, dst int, costFn EdgeCostFunc, pathBuf []int) ([]int, Cost, bool) {
	if src == dst {
		return pathBuf, Cost{}, true
	}
	d.reset()
	d.visit(src, Cost{}, -1)

	var found bool
	if d.queue == QueueRadix {
		found = d.runRadix(src, dst, costFn)
	} else {
		found = d.runHeap(src, dst, costFn)
	}
	if !found {
		return pathBuf, InfCost, false
	}

	total := d.dist[dst]
	// Reconstruct backwards, then reverse in place.
	start := len(pathBuf)
	for v := dst; v != src; {
		eid := d.prevEdge[v]
		pathBuf = append(pathBuf, int(eid))
		v = d.g.Edge(int(eid)).Other(v)
	}
	for i, j := start, len(pathBuf)-1; i < j; i, j = i+1, j-1 {
		pathBuf[i], pathBuf[j] = pathBuf[j], pathBuf[i]
	}
	return pathBuf, total, true
}

// runHeap is the binary-heap search loop. The relaxation body must stay in
// lockstep with runRadix: both implement the same canonical tie-breaking and
// pruning contract, and the equivalence tests hold them to identical output.
func (d *Dijkstra) runHeap(src, dst int, costFn EdgeCostFunc) bool {
	d.heap = d.heap[:0]
	d.heap = append(d.heap, dijkstraItem{vertex: src})
	for len(d.heap) > 0 {
		it := d.heap.pop()
		u := it.vertex
		if d.done[u] {
			continue
		}
		d.done[u] = true
		if u == dst {
			return true
		}
		du := d.dist[u]
		bound := d.dist[dst]
		// Target pruning. Once dst has been reached, a settled vertex whose
		// cost is not below dist[dst] cannot begin a cheaper path to dst
		// (Cost.Add strictly increases), so its adjacency scan is skipped;
		// likewise an individual candidate at or above the bound is neither
		// recorded nor pushed. Pruned vertices all cost at least dist[dst],
		// and no such vertex can appear on the reconstructed path or supply
		// an equal-cost predecessor to one that does, so pruning is
		// byte-identical to exhaustive relaxation — the canonical tie rule
		// carries the argument, where pop order among equals could not.
		if bound != InfCost && !du.Less(bound) {
			continue
		}
		for _, arc := range d.g.Adj(u) {
			to := arc.To
			if d.done[to] {
				continue
			}
			nc := du.Add(costFn(arc.Edge))
			if nc.Less(d.dist[to]) {
				if to != dst && bound != InfCost && !nc.Less(bound) {
					continue
				}
				d.visit(to, nc, int32(arc.Edge))
				d.heap.push(dijkstraItem{vertex: to, cost: nc})
			} else if nc == d.dist[to] && d.prevEdge[to] >= 0 && int32(arc.Edge) < d.prevEdge[to] {
				d.prevEdge[to] = int32(arc.Edge)
			}
		}
	}
	return false
}

// runRadix is the monotone radix-queue search loop; see runHeap.
func (d *Dijkstra) runRadix(src, dst int, costFn EdgeCostFunc) bool {
	q := d.radix
	q.reset()
	q.push(q.pack(Cost{}), int32(src))
	for q.len > 0 {
		it := q.pop()
		u := int(it.vertex)
		if d.done[u] {
			continue
		}
		d.done[u] = true
		if u == dst {
			return true
		}
		du := d.dist[u]
		bound := d.dist[dst]
		if bound != InfCost && !du.Less(bound) {
			continue
		}
		for _, arc := range d.g.Adj(u) {
			to := arc.To
			if d.done[to] {
				continue
			}
			nc := du.Add(costFn(arc.Edge))
			if nc.Less(d.dist[to]) {
				if to != dst && bound != InfCost && !nc.Less(bound) {
					continue
				}
				d.visit(to, nc, int32(arc.Edge))
				q.push(q.pack(nc), int32(to))
			} else if nc == d.dist[to] && d.prevEdge[to] >= 0 && int32(arc.Edge) < d.prevEdge[to] {
				d.prevEdge[to] = int32(arc.Edge)
			}
		}
	}
	return false
}

func (d *Dijkstra) visit(v int, c Cost, via int32) {
	if d.dist[v] == InfCost && !d.done[v] {
		d.touched = append(d.touched, v)
	}
	d.dist[v] = c
	d.prevEdge[v] = via
}

func (d *Dijkstra) reset() {
	for _, v := range d.touched {
		d.dist[v] = InfCost
		d.prevEdge[v] = -1
		d.done[v] = false
	}
	d.touched = d.touched[:0]
}
