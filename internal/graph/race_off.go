//go:build !race

package graph

// raceEnabled reports whether the race detector is compiled in. Allocation
// guards skip under -race: the detector instruments allocations and breaks
// AllocsPerRun's exact counts.
const raceEnabled = false
