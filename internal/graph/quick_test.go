package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests on the graph substrate, driven by testing/quick over
// PRNG seeds so every counterexample is reproducible from the logged seed.

func TestQuickDSUEquivalenceRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		d := NewDSU(n)
		for op := 0; op < 50; op++ {
			d.Union(rng.Intn(n), rng.Intn(n))
		}
		// Reflexive, symmetric, transitive on random triples.
		for i := 0; i < 30; i++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if !d.Same(a, a) {
				return false
			}
			if d.Same(a, b) != d.Same(b, a) {
				return false
			}
			if d.Same(a, b) && d.Same(b, c) && !d.Same(a, c) {
				return false
			}
		}
		// Set sizes partition the universe.
		total := 0
		seen := map[int]bool{}
		for v := 0; v < n; v++ {
			r := d.Find(v)
			if !seen[r] {
				seen[r] = true
				total += d.SetSize(r)
			}
		}
		return total == n && len(seen) == d.Sets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickKruskalPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		var edges []WeightedEdge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, WeightedEdge{U: i, V: j, Weight: int64(rng.Intn(1000))})
			}
		}
		cost := MSTCost(Kruskal(n, edges))
		shuffled := append([]WeightedEdge(nil), edges...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		return MSTCost(Kruskal(n, shuffled)) == cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickAPSPMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(2+rng.Intn(25), rng.Intn(25), rng)
		a := NewAPSP(g)
		n := g.NumVertices()
		for i := 0; i < 40; i++ {
			u, v, w := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if a.Dist(u, u) != 0 {
				return false
			}
			if a.Dist(u, v) != a.Dist(v, u) {
				return false
			}
			if a.Dist(u, v) > a.Dist(u, w)+a.Dist(w, v) {
				return false
			}
			// Adjacent vertices are at distance exactly 1 (or 0 loops).
			if u != v && a.Dist(u, v) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickDijkstraNeverBeatenByRandomWalk(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(2+rng.Intn(20), rng.Intn(20), rng)
		usage := make([]uint64, g.NumEdges())
		for i := range usage {
			usage[i] = uint64(rng.Intn(6))
		}
		costFn := func(e int) uint64 { return usage[e] }
		d := NewDijkstra(g)
		n := g.NumVertices()
		src := rng.Intn(n)
		// Random walk from src: its accumulated cost must never drop
		// below the shortest-path cost to the current vertex.
		cur := src
		var walked uint64
		for step := 0; step < 50; step++ {
			adj := g.Adj(cur)
			if len(adj) == 0 {
				break
			}
			arc := adj[rng.Intn(len(adj))]
			walked += usage[arc.Edge]
			cur = arc.To
			_, cost, ok := d.ShortestPath(src, cur, costFn, nil)
			if !ok || cost.Primary > walked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSteinerTreeEdgeCountBound(t *testing.T) {
	// A Steiner tree over k terminals in a connected graph has at most
	// n-1 edges and at least k-1 edges... at least enough to connect:
	// >= (k-1) only when terminals distinct; tree edges <= n-1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(3+rng.Intn(20), rng.Intn(25), rng)
		n := g.NumVertices()
		k := 2 + rng.Intn(minInt(5, n-1))
		terms := rng.Perm(n)[:k]
		m := NewMehlhornSolver(g)
		tree, ok := m.SteinerTree(terms, unitCost)
		if !ok {
			return false
		}
		return len(tree) >= k-1 && len(tree) <= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
