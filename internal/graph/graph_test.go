package graph

import (
	"math/rand"
	"testing"
)

// line returns a path graph 0-1-2-...-(n-1).
func line(n int) *Graph {
	g := New(n, n-1)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// grid returns an r x c grid graph with vertex (i,j) = i*c+j.
func grid(r, c int) *Graph {
	g := New(r*c, 2*r*c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := i*c + j
			if j+1 < c {
				g.AddEdge(v, v+1)
			}
			if i+1 < r {
				g.AddEdge(v, v+c)
			}
		}
	}
	return g
}

// randomConnected returns a connected random graph: a random spanning tree
// plus extra random edges.
func randomConnected(n, extra int, rng *rand.Rand) *Graph {
	g := New(n, n-1+extra)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for k := 0; k < extra; k++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Errorf("Other: got %d,%d", e.Other(3), e.Other(7))
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestAddEdgeAndAdjacency(t *testing.T) {
	g := New(4, 4)
	e0 := g.AddEdge(0, 1)
	e1 := g.AddEdge(1, 2)
	e2 := g.AddEdge(2, 0)
	if e0 != 0 || e1 != 1 || e2 != 2 {
		t.Fatalf("edge ids = %d,%d,%d", e0, e1, e2)
	}
	if g.NumEdges() != 3 || g.NumVertices() != 4 {
		t.Fatalf("counts = %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees: deg(1)=%d deg(3)=%d", g.Degree(1), g.Degree(3))
	}
	found := false
	for _, a := range g.Adj(2) {
		if a.To == 0 && a.Edge == e2 {
			found = true
		}
	}
	if !found {
		t.Error("adjacency of 2 missing edge to 0")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	g := New(2, 1)
	for _, pair := range [][2]int{{-1, 0}, {0, 2}, {5, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d) did not panic", pair[0], pair[1])
				}
			}()
			g.AddEdge(pair[0], pair[1])
		}()
	}
}

func TestConnected(t *testing.T) {
	if !New(0, 0).Connected() {
		t.Error("empty graph should be connected")
	}
	if !New(1, 0).Connected() {
		t.Error("single vertex should be connected")
	}
	if New(2, 0).Connected() {
		t.Error("two isolated vertices should not be connected")
	}
	if !line(5).Connected() {
		t.Error("path graph should be connected")
	}
	g := line(3)
	g2 := New(4, 2)
	g2.AddEdge(0, 1)
	g2.AddEdge(2, 3)
	if g2.Connected() {
		t.Error("two components should not be connected")
	}
	_ = g
}

func TestClone(t *testing.T) {
	g := grid(3, 3)
	c := g.Clone()
	if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	c.AddEdge(0, 8)
	if g.NumEdges() == c.NumEdges() {
		t.Error("clone shares edge storage with original")
	}
}

func TestSelfLoopTolerated(t *testing.T) {
	g := New(2, 2)
	id := g.AddEdge(1, 1)
	if g.Edge(id).Other(1) != 1 {
		t.Error("self loop Other")
	}
	if g.Degree(1) != 1 {
		t.Errorf("self loop degree = %d, want 1 adjacency entry", g.Degree(1))
	}
}

func TestDSUBasics(t *testing.T) {
	d := NewDSU(5)
	if d.Sets() != 5 {
		t.Fatalf("initial sets = %d", d.Sets())
	}
	if !d.Union(0, 1) {
		t.Error("first union returned false")
	}
	if d.Union(1, 0) {
		t.Error("repeated union returned true")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if d.Sets() != 2 {
		t.Errorf("sets = %d, want 2", d.Sets())
	}
	if !d.Same(1, 2) {
		t.Error("1 and 2 should be joined")
	}
	if d.Same(4, 0) {
		t.Error("4 should be alone")
	}
	if d.SetSize(3) != 4 {
		t.Errorf("SetSize(3) = %d, want 4", d.SetSize(3))
	}
}

func TestDSURandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 60
	d := NewDSU(n)
	label := make([]int, n) // naive: component labels
	for i := range label {
		label[i] = i
	}
	relabel := func(from, to int) {
		for i := range label {
			if label[i] == from {
				label[i] = to
			}
		}
	}
	for op := 0; op < 500; op++ {
		x, y := rng.Intn(n), rng.Intn(n)
		wantSame := label[x] == label[y]
		if d.Same(x, y) != wantSame {
			t.Fatalf("op %d: Same(%d,%d) mismatch", op, x, y)
		}
		if rng.Intn(2) == 0 {
			merged := d.Union(x, y)
			if merged == wantSame {
				t.Fatalf("op %d: Union(%d,%d) returned %v", op, x, y, merged)
			}
			if !wantSame {
				relabel(label[y], label[x])
			}
		}
	}
}

func TestKruskalSpanningTree(t *testing.T) {
	// Square with diagonal: 0-1 (1), 1-2 (2), 2-3 (1), 3-0 (2), 0-2 (3)
	edges := []WeightedEdge{
		{U: 0, V: 1, Weight: 1},
		{U: 1, V: 2, Weight: 2},
		{U: 2, V: 3, Weight: 1},
		{U: 3, V: 0, Weight: 2},
		{U: 0, V: 2, Weight: 3},
	}
	tree := Kruskal(4, edges)
	if len(tree) != 3 {
		t.Fatalf("tree size = %d, want 3", len(tree))
	}
	if got := MSTCost(tree); got != 4 {
		t.Errorf("MST cost = %d, want 4", got)
	}
}

func TestKruskalForestOnDisconnected(t *testing.T) {
	edges := []WeightedEdge{{U: 0, V: 1, Weight: 5}, {U: 2, V: 3, Weight: 7}}
	tree := Kruskal(4, edges)
	if len(tree) != 2 {
		t.Fatalf("forest size = %d, want 2", len(tree))
	}
	if MSTCost(tree) != 12 {
		t.Errorf("forest cost = %d", MSTCost(tree))
	}
}

func TestKruskalDeterministicTieBreak(t *testing.T) {
	edges := []WeightedEdge{
		{U: 0, V: 1, Weight: 1, Payload: 10},
		{U: 0, V: 1, Weight: 1, Payload: 20}, // parallel, same weight
		{U: 1, V: 2, Weight: 1, Payload: 30},
	}
	for trial := 0; trial < 5; trial++ {
		tree := Kruskal(3, edges)
		if len(tree) != 2 || tree[0].Payload != 10 || tree[1].Payload != 30 {
			t.Fatalf("trial %d: tree = %+v", trial, tree)
		}
	}
}

func TestKruskalMatchesPrimCostRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		var edges []WeightedEdge
		// complete graph with random weights
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, WeightedEdge{U: i, V: j, Weight: int64(rng.Intn(100))})
			}
		}
		tree := Kruskal(n, edges)
		if len(tree) != n-1 {
			t.Fatalf("trial %d: tree size %d want %d", trial, len(tree), n-1)
		}
		if got, want := MSTCost(tree), primCost(n, edges); got != want {
			t.Fatalf("trial %d: kruskal cost %d, prim cost %d", trial, got, want)
		}
	}
}

// primCost is an O(n^2) Prim reference for MST cost on a dense graph.
func primCost(n int, edges []WeightedEdge) int64 {
	const inf = int64(1) << 60
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
		for j := range w[i] {
			w[i][j] = inf
		}
	}
	for _, e := range edges {
		if e.Weight < w[e.U][e.V] {
			w[e.U][e.V], w[e.V][e.U] = e.Weight, e.Weight
		}
	}
	in := make([]bool, n)
	best := make([]int64, n)
	for i := range best {
		best[i] = inf
	}
	best[0] = 0
	var total int64
	for k := 0; k < n; k++ {
		u, bu := -1, inf
		for i := 0; i < n; i++ {
			if !in[i] && best[i] < bu {
				u, bu = i, best[i]
			}
		}
		in[u] = true
		total += bu
		for v := 0; v < n; v++ {
			if !in[v] && w[u][v] < best[v] {
				best[v] = w[u][v]
			}
		}
	}
	return total
}
