package graph

import (
	"math/rand"
	"testing"
)

// referenceShortestPath is an exhaustive (prune-free) search loop kept as an
// executable specification of the canonical tie contract: every relaxation
// that reaches a vertex at exactly its best-known cost lowers the recorded
// predecessor edge to the smaller id. The paths it reconstructs are a pure
// function of (graph, costs, src, dst) — independent of queue discipline —
// so both production engines (binary heap and radix queue), with all their
// pruning, must reproduce it byte for byte. Routing results (and therefore
// solution files) depend on which of two equal-cost paths wins, which makes
// this the byte-identity contract of the whole routing stage.
func referenceShortestPath(d *Dijkstra, src, dst int, costFn EdgeCostFunc, pathBuf []int) ([]int, Cost, bool) {
	if src == dst {
		return pathBuf, Cost{}, true
	}
	d.reset()
	d.visit(src, Cost{}, -1)
	d.heap = d.heap[:0]
	d.heap = append(d.heap, dijkstraItem{vertex: src})

	found := false
	for len(d.heap) > 0 {
		it := d.heap.pop()
		u := it.vertex
		if d.done[u] {
			continue
		}
		d.done[u] = true
		if u == dst {
			found = true
			break
		}
		du := d.dist[u]
		for _, arc := range d.g.Adj(u) {
			if d.done[arc.To] {
				continue
			}
			nc := du.Add(costFn(arc.Edge))
			if nc.Less(d.dist[arc.To]) {
				d.visit(arc.To, nc, int32(arc.Edge))
				d.heap.push(dijkstraItem{vertex: arc.To, cost: nc})
			} else if nc == d.dist[arc.To] && d.prevEdge[arc.To] >= 0 && int32(arc.Edge) < d.prevEdge[arc.To] {
				d.prevEdge[arc.To] = int32(arc.Edge)
			}
		}
	}
	if !found {
		return pathBuf, InfCost, false
	}

	total := d.dist[dst]
	start := len(pathBuf)
	for v := dst; v != src; {
		eid := d.prevEdge[v]
		pathBuf = append(pathBuf, int(eid))
		v = d.g.Edge(int(eid)).Other(v)
	}
	for i, j := start, len(pathBuf)-1; i < j; i, j = i+1, j-1 {
		pathBuf[i], pathBuf[j] = pathBuf[j], pathBuf[i]
	}
	return pathBuf, total, true
}

// checkAgainstReference drives one production engine and the reference loop
// over the same query and demands identical paths — not merely equal costs.
func checkAgainstReference(t *testing.T, label string, eng, ref *Dijkstra, src, dst int, costFn EdgeCostFunc) {
	t.Helper()
	gotPath, gotCost, gotOK := eng.ShortestPath(src, dst, costFn, nil)
	wantPath, wantCost, wantOK := referenceShortestPath(ref, src, dst, costFn, nil)
	if gotOK != wantOK || gotCost != wantCost {
		t.Fatalf("%s %d->%d: (cost=%+v ok=%v), want (cost=%+v ok=%v)",
			label, src, dst, gotCost, gotOK, wantCost, wantOK)
	}
	if len(gotPath) != len(wantPath) {
		t.Fatalf("%s %d->%d: path %v, want %v", label, src, dst, gotPath, wantPath)
	}
	for i := range gotPath {
		if gotPath[i] != wantPath[i] {
			t.Fatalf("%s %d->%d: path %v, want %v (tie broken differently)",
				label, src, dst, gotPath, wantPath)
		}
	}
}

// TestDijkstraPruneMatchesReference drives both pruned engines and the
// reference loop over the same random graphs with tiny cost ranges (so
// equal-cost ties are everywhere) and demands identical paths.
func TestDijkstraPruneMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		g := randomConnected(n, rng.Intn(3*n), rng)
		usage := make([]uint64, g.NumEdges())
		for i := range usage {
			usage[i] = uint64(rng.Intn(3)) // small range: force ties
		}
		costFn := func(e int) uint64 { return usage[e] }
		heap := NewDijkstra(g)
		radix := NewDijkstraQueue(g, QueueRadix)
		ref := NewDijkstra(g)
		for q := 0; q < 60; q++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			checkAgainstReference(t, "heap", heap, ref, src, dst, costFn)
			checkAgainstReference(t, "radix", radix, ref, src, dst, costFn)
		}
	}
}

// TestDijkstraGridPruneMatchesReference repeats the equivalence check on a
// grid, the topology with the densest equal-cost tie structure.
func TestDijkstraGridPruneMatchesReference(t *testing.T) {
	g := grid(12, 12)
	usage := make([]uint64, g.NumEdges())
	costFn := func(e int) uint64 { return usage[e] }
	heap := NewDijkstra(g)
	radix := NewDijkstraQueue(g, QueueRadix)
	ref := NewDijkstra(g)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(34))
	for q := 0; q < 200; q++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		checkAgainstReference(t, "heap", heap, ref, src, dst, costFn)
		checkAgainstReference(t, "radix", radix, ref, src, dst, costFn)
	}
}

// TestDijkstraSearchZeroAlloc pins the steady state of the search loop at
// zero allocations per query, for both queue engines: the engine's buffers
// are grown once and then reused for the life of the session.
func TestDijkstraSearchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	g := grid(20, 20)
	usage := make([]uint64, g.NumEdges())
	costFn := func(e int) uint64 { return usage[e] }
	for _, tc := range []struct {
		name  string
		queue QueueKind
	}{{"heap", QueueHeap}, {"radix", QueueRadix}} {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDijkstraQueue(g, tc.queue)
			buf := make([]int, 0, 256)
			dst := g.NumVertices() - 1
			// Warm-up queries grow the queue and touched list to steady state.
			for i := 0; i < 4; i++ {
				buf, _, _ = d.ShortestPath(0, dst, costFn, buf[:0])
			}
			allocs := testing.AllocsPerRun(50, func() {
				buf, _, _ = d.ShortestPath(0, dst, costFn, buf[:0])
			})
			if allocs != 0 {
				t.Fatalf("ShortestPath steady state allocates %v objects per run, want 0", allocs)
			}
		})
	}
}
