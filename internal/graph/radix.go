package graph

import "math/bits"

// radixQueue is a monotone priority queue (radix heap) over packed
// (Primary, Hops) keys. It relies on the Dijkstra usage pattern: every
// pushed key is >= the key of the last popped minimum, which lets items be
// filed into buckets by the position of the highest bit in which their key
// differs from that minimum. An item only ever migrates to lower buckets, so
// the total work is O(pushes × word size) in the worst case and close to
// O(pushes) on the small spreads of congestion costs.
//
// Pop returns an item with the minimum key; the order among equal keys is
// unspecified, which is sound because the relaxation step resolves
// equal-cost ties canonically (see ShortestPath).
type radixQueue struct {
	hopBits uint   // low bits of the packed key holding Cost.Hops
	maxPri  uint64 // largest Primary representable in the remaining bits
	last    uint64 // key of the last popped minimum
	len     int
	mask    [2]uint64 // occupancy bitmap over buckets 0..64
	buckets [65][]radixItem
}

type radixItem struct {
	key    uint64
	vertex int32
}

// newRadixQueue sizes the key packing for a graph of n vertices: stored path
// costs always describe simple paths (a relaxation that revisits a vertex
// cannot beat the cost already recorded there, because every edge costs at
// least (0,1)), so Hops <= n and fits in bits.Len(n) bits.
func newRadixQueue(n int) *radixQueue {
	hb := uint(bits.Len(uint(n)))
	if hb == 0 {
		hb = 1
	}
	return &radixQueue{hopBits: hb, maxPri: ^uint64(0) >> hb}
}

// pack folds c into a single key preserving the lexicographic (Primary,
// Hops) order. Costs beyond the representable range cannot occur in the
// router (Primary is bounded by nets × path length ≪ 2^(64-hopBits)); a
// caller feeding adversarial costs is a programming error, not a silent
// reordering.
func (q *radixQueue) pack(c Cost) uint64 {
	if c.Primary > q.maxPri {
		panic("graph: radix queue primary cost overflows packed key; use QueueHeap for costs this large")
	}
	return c.Primary<<q.hopBits | uint64(c.Hops)
}

func (q *radixQueue) reset() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.last = 0
	q.len = 0
	q.mask[0], q.mask[1] = 0, 0
}

// bucketFor files a key relative to the current minimum: equal keys land in
// bucket 0, others in 1 + the index of the highest differing bit.
func (q *radixQueue) bucketFor(key uint64) int {
	return bits.Len64(key ^ q.last)
}

func (q *radixQueue) push(key uint64, v int32) {
	b := q.bucketFor(key)
	q.buckets[b] = append(q.buckets[b], radixItem{key: key, vertex: v})
	q.mask[b>>6] |= 1 << (uint(b) & 63)
	q.len++
}

// pop removes and returns an item with the minimum key.
func (q *radixQueue) pop() radixItem {
	var b int
	if lo := q.mask[0]; lo != 0 {
		b = bits.TrailingZeros64(lo)
	} else {
		b = 64
	}
	items := q.buckets[b]
	if b == 0 {
		// Bucket 0 holds only keys equal to the last minimum: any order.
		it := items[len(items)-1]
		items = items[:len(items)-1]
		q.buckets[0] = items
		if len(items) == 0 {
			q.mask[0] &^= 1
		}
		q.len--
		return it
	}
	// Find the new minimum, adopt it as the reference, and redistribute the
	// remaining items; each lands in a strictly lower bucket because it
	// shares all bits above b with the new minimum.
	mi := 0
	for i := 1; i < len(items); i++ {
		if items[i].key < items[mi].key {
			mi = i
		}
	}
	min := items[mi]
	q.last = min.key
	for i, it := range items {
		if i == mi {
			continue
		}
		nb := q.bucketFor(it.key)
		q.buckets[nb] = append(q.buckets[nb], it)
		q.mask[nb>>6] |= 1 << (uint(nb) & 63)
	}
	q.buckets[b] = items[:0]
	q.mask[b>>6] &^= 1 << (uint(b) & 63)
	q.len--
	return min
}
