package graph

import (
	"math"
	"sort"
)

// WeightedEdge is an edge of an abstract weighted graph handed to Kruskal.
// Payload carries caller-defined context (e.g. which net-terminal pair the
// edge connects) through the MST computation.
type WeightedEdge struct {
	U, V    int
	Weight  int64
	Payload int
}

// Kruskal computes a minimum spanning forest of the abstract graph on
// vertices [0, n) with the given edges, returning the selected edges in the
// order they were adopted. Ties are broken by input order after a stable
// sort, so the result is deterministic.
//
// When the input graph is connected the result is a spanning tree with
// exactly n-1 edges (for n >= 1).
func Kruskal(n int, edges []WeightedEdge) []WeightedEdge {
	sorted := make([]WeightedEdge, len(edges))
	copy(sorted, edges)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Weight < sorted[j].Weight })

	dsu := NewDSU(n)
	tree := make([]WeightedEdge, 0, max(0, n-1))
	for _, e := range sorted {
		if dsu.Union(e.U, e.V) {
			tree = append(tree, e)
			if len(tree) == n-1 {
				break
			}
		}
	}
	return tree
}

// KruskalScratch owns the reusable state of repeated Kruskal runs: the DSU
// and the sort buffer. A router computing one terminal MST per net reuses one
// scratch per worker instead of allocating per net.
type KruskalScratch struct {
	dsu    DSU
	sorted []WeightedEdge
}

// MSTAppend computes the same minimum spanning forest as Kruskal — identical
// selection and order, including the stable tie-breaking — and appends the
// selected edges to dst. The input edges slice is not modified.
func (s *KruskalScratch) MSTAppend(dst []WeightedEdge, n int, edges []WeightedEdge) []WeightedEdge {
	s.sorted = append(s.sorted[:0], edges...)
	sorted := s.sorted
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Weight < sorted[j].Weight })

	s.dsu.Reset(n)
	want := len(dst) + max(0, n-1)
	for _, e := range sorted {
		if s.dsu.Union(e.U, e.V) {
			dst = append(dst, e)
			if len(dst) == want {
				break
			}
		}
	}
	return dst
}

// MSTCost returns the sum of the weights of the given edges. For a spanning
// tree produced by Kruskal it is the tree cost used by the net-ordering score
// θ(n) in Eq. (1) of the paper.
func MSTCost(tree []WeightedEdge) int64 {
	var total int64
	for _, e := range tree {
		total = satAdd(total, e.Weight)
	}
	return total
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// satAdd adds two edge weights, clamping at the int64 extremes instead of
// wrapping. It mirrors problem.SatAdd64, which this package cannot import
// (problem depends on graph): foldCost caps a single weight at 2^62-1, so a
// tree holding a few near-saturated corridor weights would otherwise wrap
// MSTCost negative and invert the net-ordering score.
func satAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}
