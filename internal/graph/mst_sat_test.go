package graph

import (
	"math"
	"testing"
)

// TestMSTCostSaturates pins the clamp: foldCost caps a single bridge weight
// at 2^62-1, so a degenerate tree of three such edges must saturate rather
// than wrap negative (a negative theta would invert the net ordering).
func TestMSTCostSaturates(t *testing.T) {
	const capped = 1<<62 - 1
	tree := []WeightedEdge{
		{U: 0, V: 1, Weight: capped},
		{U: 1, V: 2, Weight: capped},
		{U: 2, V: 3, Weight: capped},
	}
	if got := MSTCost(tree); got != math.MaxInt64 {
		t.Fatalf("MSTCost(three capped weights) = %d, want MaxInt64", got)
	}
	if got := MSTCost([]WeightedEdge{{Weight: 3}, {Weight: 4}}); got != 7 {
		t.Fatalf("MSTCost(3,4) = %d, want 7", got)
	}
	if got := satAdd(math.MinInt64, -1); got != math.MinInt64 {
		t.Fatalf("satAdd(MinInt64, -1) = %d, want MinInt64", got)
	}
}
