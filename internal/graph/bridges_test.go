package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func sortedBridges(g *Graph) []int {
	b := Bridges(g)
	sort.Ints(b)
	return b
}

func TestBridgesLine(t *testing.T) {
	g := line(5) // every edge of a path is a bridge
	b := sortedBridges(g)
	if len(b) != 4 {
		t.Fatalf("bridges = %v, want all 4", b)
	}
	for i, e := range b {
		if e != i {
			t.Fatalf("bridges = %v", b)
		}
	}
}

func TestBridgesCycleHasNone(t *testing.T) {
	g := New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
	}
	if b := Bridges(g); len(b) != 0 {
		t.Errorf("cycle has bridges: %v", b)
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by one edge: only the joint is a bridge.
	g := New(6, 7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	joint := g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	b := Bridges(g)
	if len(b) != 1 || b[0] != joint {
		t.Errorf("bridges = %v, want [%d]", b, joint)
	}
}

func TestBridgesParallelEdgesNotBridges(t *testing.T) {
	g := New(2, 2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // parallel
	if b := Bridges(g); len(b) != 0 {
		t.Errorf("parallel pair reported as bridge: %v", b)
	}
	g2 := New(2, 1)
	g2.AddEdge(0, 1)
	if b := Bridges(g2); len(b) != 1 {
		t.Errorf("single edge not a bridge: %v", b)
	}
}

func TestBridgesDisconnected(t *testing.T) {
	g := New(4, 2)
	e0 := g.AddEdge(0, 1)
	e1 := g.AddEdge(2, 3)
	b := sortedBridges(g)
	if len(b) != 2 || b[0] != e0 || b[1] != e1 {
		t.Errorf("bridges = %v", b)
	}
}

// bridgesNaive removes each edge and checks component counts.
func bridgesNaive(g *Graph) []int {
	var out []int
	base := componentCount(g, -1)
	for e := 0; e < g.NumEdges(); e++ {
		if componentCount(g, e) > base {
			out = append(out, e)
		}
	}
	return out
}

func componentCount(g *Graph, skipEdge int) int {
	n := g.NumVertices()
	seen := make([]bool, n)
	count := 0
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		count++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.Adj(u) {
				if a.Edge == skipEdge || seen[a.To] {
					continue
				}
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return count
}

func TestBridgesMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		g := randomConnected(2+rng.Intn(25), rng.Intn(20), rng)
		got := sortedBridges(g)
		want := bridgesNaive(g)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func BenchmarkBridges(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(500, 700, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bridges(g)
	}
}
