package graph

import (
	"math/rand"
	"testing"
)

// checkSteinerTree verifies that tree edges connect all terminals, form a
// forest with exactly one component touching the terminals, and have no
// non-terminal leaves.
func checkSteinerTree(t *testing.T, g *Graph, tree []int, terminals []int) {
	t.Helper()
	if len(terminals) <= 1 {
		if len(tree) != 0 {
			t.Fatalf("tree for <=1 terminals should be empty, got %v", tree)
		}
		return
	}
	deg := map[int]int{}
	dsu := NewDSU(g.NumVertices())
	seen := map[int]bool{}
	for _, e := range tree {
		if seen[e] {
			t.Fatalf("duplicate edge %d in tree", e)
		}
		seen[e] = true
		ed := g.Edge(e)
		if !dsu.Union(ed.U, ed.V) {
			t.Fatalf("tree contains a cycle at edge %d", e)
		}
		deg[ed.U]++
		deg[ed.V]++
	}
	for _, term := range terminals[1:] {
		if !dsu.Same(terminals[0], term) {
			t.Fatalf("terminal %d not connected", term)
		}
	}
	isTerm := map[int]bool{}
	for _, term := range terminals {
		isTerm[term] = true
	}
	for v, d := range deg {
		if d == 1 && !isTerm[v] {
			t.Fatalf("non-terminal leaf %d", v)
		}
	}
}

func TestSteinerCleanSimplePath(t *testing.T) {
	g := line(5)
	sc := NewSteinerCleaner(g)
	tree, ok := sc.Clean([]int{0, 1, 2, 3}, []int{0, 4})
	if !ok || len(tree) != 4 {
		t.Fatalf("tree=%v ok=%v", tree, ok)
	}
	checkSteinerTree(t, g, tree, []int{0, 4})
}

func TestSteinerCleanTrimsDangling(t *testing.T) {
	// Path 0-1-2 plus a dangling branch 1-3; terminals {0,2}.
	g := New(4, 3)
	e01 := g.AddEdge(0, 1)
	e12 := g.AddEdge(1, 2)
	e13 := g.AddEdge(1, 3)
	sc := NewSteinerCleaner(g)
	tree, ok := sc.Clean([]int{e01, e12, e13}, []int{0, 2})
	if !ok {
		t.Fatal("not ok")
	}
	if len(tree) != 2 {
		t.Fatalf("tree = %v, want the 2 path edges", tree)
	}
	for _, e := range tree {
		if e == e13 {
			t.Error("dangling edge kept")
		}
	}
	checkSteinerTree(t, g, tree, []int{0, 2})
}

func TestSteinerCleanBreaksCycle(t *testing.T) {
	// Triangle 0-1-2 with all edges included; terminals {0,1,2}.
	g := New(3, 3)
	edges := []int{g.AddEdge(0, 1), g.AddEdge(1, 2), g.AddEdge(2, 0)}
	sc := NewSteinerCleaner(g)
	tree, ok := sc.Clean(edges, []int{0, 1, 2})
	if !ok || len(tree) != 2 {
		t.Fatalf("tree=%v ok=%v, want 2 edges", tree, ok)
	}
	checkSteinerTree(t, g, tree, []int{0, 1, 2})
}

func TestSteinerCleanDisconnectedTerminals(t *testing.T) {
	g := New(4, 2)
	e01 := g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	sc := NewSteinerCleaner(g)
	if _, ok := sc.Clean([]int{e01}, []int{0, 3}); ok {
		t.Error("expected ok=false for disconnected terminals")
	}
}

func TestSteinerCleanSingleTerminal(t *testing.T) {
	g := line(3)
	sc := NewSteinerCleaner(g)
	tree, ok := sc.Clean([]int{0, 1}, []int{1})
	if !ok || len(tree) != 0 {
		t.Errorf("single terminal: tree=%v ok=%v", tree, ok)
	}
	tree, ok = sc.Clean(nil, nil)
	if !ok || len(tree) != 0 {
		t.Errorf("no terminals: tree=%v ok=%v", tree, ok)
	}
}

func TestSteinerCleanDuplicateEdgesTolerated(t *testing.T) {
	g := line(4)
	sc := NewSteinerCleaner(g)
	tree, ok := sc.Clean([]int{0, 0, 1, 1, 2, 2}, []int{0, 3})
	if !ok || len(tree) != 3 {
		t.Fatalf("tree=%v ok=%v", tree, ok)
	}
	checkSteinerTree(t, g, tree, []int{0, 3})
}

func TestSteinerCleanReuseAcrossEpochs(t *testing.T) {
	g := grid(4, 4)
	sc := NewSteinerCleaner(g)
	rng := rand.New(rand.NewSource(3))
	all := make([]int, g.NumEdges())
	for i := range all {
		all[i] = i
	}
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(5)
		terms := rng.Perm(g.NumVertices())[:k]
		tree, ok := sc.Clean(all, terms)
		if !ok {
			t.Fatalf("trial %d: grid should connect all terminals", trial)
		}
		checkSteinerTree(t, g, tree, terms)
	}
}

func TestSteinerCleanRandomUnionsOfPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		g := randomConnected(3+rng.Intn(30), rng.Intn(40), rng)
		sc := NewSteinerCleaner(g)
		d := NewDijkstra(g)
		n := g.NumVertices()
		k := 2 + rng.Intn(minInt(5, n-1))
		terms := rng.Perm(n)[:k]
		// Union of shortest paths between consecutive terminals, as the
		// KMB router produces.
		var union []int
		for i := 1; i < k; i++ {
			union, _, _ = d.ShortestPath(terms[0], terms[i], unitCost, union)
		}
		tree, ok := sc.Clean(union, terms)
		if !ok {
			t.Fatalf("trial %d: union of paths must connect terminals", trial)
		}
		checkSteinerTree(t, g, tree, terms)
		if len(tree) > len(union) {
			t.Fatalf("trial %d: cleanup grew the edge set", trial)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkSteinerClean(b *testing.B) {
	g := grid(15, 15)
	sc := NewSteinerCleaner(g)
	all := make([]int, g.NumEdges())
	for i := range all {
		all[i] = i
	}
	terms := []int{0, 14, 210, 224, 112}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sc.Clean(all, terms); !ok {
			b.Fatal("clean failed")
		}
	}
}
