package graph

// MehlhornSolver implements Mehlhorn's 2-approximation for the Steiner tree
// problem (Inf. Proc. Letters 1988) — the algorithm the paper's Sec. III-B
// cites for rerouting. Instead of KMB's k single-source searches it runs
// one multi-source search growing Voronoi regions around the terminals,
// bridges adjacent regions, and takes an MST of the bridged terminal graph.
//
// Like Dijkstra/SteinerCleaner it keeps reusable buffers and is not safe
// for concurrent use.
type MehlhornSolver struct {
	g       *Graph
	cleaner *SteinerCleaner

	dist     []Cost
	src      []int32 // terminal index owning the vertex's Voronoi region
	prevEdge []int32
	touched  []int
	heap     dijkstraHeap
	done     []bool
}

// Clone returns an independent solver bound to the same graph, for
// spawning one solver per worker goroutine.
func (m *MehlhornSolver) Clone() *MehlhornSolver { return NewMehlhornSolver(m.g) }

// NewMehlhornSolver returns a solver bound to g.
func NewMehlhornSolver(g *Graph) *MehlhornSolver {
	n := g.NumVertices()
	m := &MehlhornSolver{
		g:        g,
		cleaner:  NewSteinerCleaner(g),
		dist:     make([]Cost, n),
		src:      make([]int32, n),
		prevEdge: make([]int32, n),
		done:     make([]bool, n),
	}
	for i := 0; i < n; i++ {
		m.dist[i] = InfCost
		m.src[i] = -1
		m.prevEdge[i] = -1
	}
	return m
}

// SteinerTree returns the edges of a Steiner tree connecting terminals
// under costFn, or ok=false if the terminals are not all reachable from one
// another. Terminals must be distinct. The result is cycle-free with no
// non-terminal leaves.
func (m *MehlhornSolver) SteinerTree(terminals []int, costFn EdgeCostFunc) (tree []int, ok bool) {
	if len(terminals) <= 1 {
		return nil, true
	}
	m.reset()

	// Multi-source search: every terminal seeds its own region.
	m.heap = m.heap[:0]
	for ti, v := range terminals {
		m.visit(v, Cost{}, -1, int32(ti))
		m.heap = append(m.heap, dijkstraItem{vertex: v})
	}
	m.heap.init()
	for len(m.heap) > 0 {
		it := m.heap.pop()
		u := it.vertex
		if m.done[u] {
			continue
		}
		m.done[u] = true
		du := m.dist[u]
		for _, arc := range m.g.Adj(u) {
			if m.done[arc.To] {
				continue
			}
			nc := du.Add(costFn(arc.Edge))
			if nc.Less(m.dist[arc.To]) {
				m.visit(arc.To, nc, int32(arc.Edge), m.src[u])
				m.heap.push(dijkstraItem{vertex: arc.To, cost: nc})
			}
		}
	}

	// Bridge adjacent Voronoi regions: for every graph edge joining two
	// regions, a terminal-graph edge with the combined corridor cost.
	// Kruskal needs comparable scalar weights; fold the lexicographic
	// cost into a single int64 (primary dominates, hops break ties).
	bridges := make([]WeightedEdge, 0, m.g.NumEdges())
	for e, ed := range m.g.Edges() {
		su, sv := m.src[ed.U], m.src[ed.V]
		if su < 0 || sv < 0 || su == sv {
			continue
		}
		w := m.dist[ed.U].Add(costFn(e))
		w.Primary += m.dist[ed.V].Primary
		w.Hops += m.dist[ed.V].Hops
		bridges = append(bridges, WeightedEdge{
			U: int(su), V: int(sv), Weight: foldCost(w), Payload: e,
		})
	}
	mst := Kruskal(len(terminals), bridges)
	if len(mst) != len(terminals)-1 {
		return nil, false // regions not all connected
	}

	// Expand every bridge back to a corridor of graph edges: the bridging
	// edge plus the search-tree paths from both endpoints to their
	// terminals.
	var union []int
	for _, b := range mst {
		e := b.Payload
		union = append(union, e)
		ed := m.g.Edge(e)
		union = m.appendCorridor(union, ed.U)
		union = m.appendCorridor(union, ed.V)
	}
	return m.cleaner.Clean(union, terminals)
}

// appendCorridor walks prevEdge pointers from v to its region's terminal.
func (m *MehlhornSolver) appendCorridor(union []int, v int) []int {
	for {
		e := m.prevEdge[v]
		if e < 0 {
			return union
		}
		union = append(union, int(e))
		v = m.g.Edge(int(e)).Other(v)
	}
}

func (m *MehlhornSolver) visit(v int, c Cost, via, srcTerm int32) {
	if m.dist[v] == InfCost && !m.done[v] {
		m.touched = append(m.touched, v)
	}
	m.dist[v] = c
	m.prevEdge[v] = via
	m.src[v] = srcTerm
}

func (m *MehlhornSolver) reset() {
	for _, v := range m.touched {
		m.dist[v] = InfCost
		m.prevEdge[v] = -1
		m.src[v] = -1
		m.done[v] = false
	}
	m.touched = m.touched[:0]
}

// foldCost packs a lexicographic Cost into an int64 for Kruskal: the
// primary component dominates and hop counts break ties. Saturates rather
// than overflowing for pathological costs.
func foldCost(c Cost) int64 {
	const hopBits = 20 // supports corridors of up to ~1M hops
	if c.Primary >= 1<<42 {
		return 1<<62 - 1
	}
	return int64(c.Primary)<<hopBits | int64(c.Hops&(1<<hopBits-1))
}
