package graph

import "sync/atomic"

// Unreachable is the distance reported by APSP for vertex pairs with no
// connecting path.
const Unreachable int32 = -1

// apspBuilds counts NewAPSP invocations process-wide. The table is the most
// expensive graph-derived structure (one BFS per vertex); sessions are
// expected to build it exactly once per static graph, and regression tests
// pin that down via APSPBuilds deltas.
var apspBuilds atomic.Int64

// APSPBuilds returns the number of APSP tables constructed by this process
// so far. Tests diff it around a solve to assert look-up-table reuse.
func APSPBuilds() int64 { return apspBuilds.Load() }

// APSP is the all-pairs shortest-path look-up table of Sec. III-A: hop
// distances on the (unweighted) FPGA graph, computed once with one BFS per
// vertex and stored densely.
type APSP struct {
	n    int
	dist []int32 // row-major n*n
}

// NewAPSP computes the table for g. Memory is n*n*4 bytes; the largest
// ICCAD 2019 benchmark (487 FPGAs) needs under 1 MB.
func NewAPSP(g *Graph) *APSP {
	apspBuilds.Add(1)
	n := g.NumVertices()
	a := &APSP{n: n, dist: make([]int32, n*n)}
	for i := range a.dist {
		a.dist[i] = Unreachable
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		row := a.dist[s*n : (s+1)*n]
		row[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := row[u]
			for _, arc := range g.Adj(u) {
				if row[arc.To] == Unreachable {
					row[arc.To] = du + 1
					queue = append(queue, arc.To)
				}
			}
		}
	}
	return a
}

// Dist returns the hop distance from u to v, or Unreachable.
func (a *APSP) Dist(u, v int) int32 { return a.dist[u*a.n+v] }

// NumVertices returns the vertex count the table was built for.
func (a *APSP) NumVertices() int { return a.n }

// BFSDistances computes single-source hop distances from src on g, reusing
// dist (which must have length g.NumVertices()) as the output buffer.
// Unreached vertices get Unreachable.
func BFSDistances(g *Graph, src int, dist []int32) {
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, g.NumVertices())
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, arc := range g.Adj(u) {
			if dist[arc.To] == Unreachable {
				dist[arc.To] = dist[u] + 1
				queue = append(queue, arc.To)
			}
		}
	}
}
