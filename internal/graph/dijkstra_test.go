package graph

import (
	"math/rand"
	"testing"
)

func unitCost(int) uint64 { return 1 }

func TestDijkstraTrivial(t *testing.T) {
	g := line(4)
	d := NewDijkstra(g)
	path, cost, ok := d.ShortestPath(2, 2, unitCost, nil)
	if !ok || len(path) != 0 || cost != (Cost{}) {
		t.Errorf("self path: %v %v %v", path, cost, ok)
	}
}

func TestDijkstraLine(t *testing.T) {
	g := line(5)
	d := NewDijkstra(g)
	path, cost, ok := d.ShortestPath(0, 4, unitCost, nil)
	if !ok {
		t.Fatal("unreachable")
	}
	if cost.Primary != 4 || cost.Hops != 4 {
		t.Errorf("cost = %+v", cost)
	}
	want := []int{0, 1, 2, 3}
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3, 1)
	g.AddEdge(0, 1)
	d := NewDijkstra(g)
	_, _, ok := d.ShortestPath(0, 2, unitCost, nil)
	if ok {
		t.Error("expected unreachable")
	}
	// Engine must remain usable after an unreachable query.
	path, _, ok := d.ShortestPath(0, 1, unitCost, nil)
	if !ok || len(path) != 1 {
		t.Errorf("after unreachable query: path=%v ok=%v", path, ok)
	}
}

func TestDijkstraAvoidsCongestedEdge(t *testing.T) {
	// Two parallel routes 0->3: direct edge (congested) vs 0-1-2-3 (free).
	g := New(4, 4)
	direct := g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	usage := map[int]uint64{direct: 10}
	costFn := func(e int) uint64 { return usage[e] }
	d := NewDijkstra(g)
	path, cost, ok := d.ShortestPath(0, 3, costFn, nil)
	if !ok {
		t.Fatal("unreachable")
	}
	if cost.Primary != 0 || cost.Hops != 3 {
		t.Errorf("cost = %+v, want free 3-hop path", cost)
	}
	for _, e := range path {
		if e == direct {
			t.Error("path used congested direct edge")
		}
	}
}

func TestDijkstraLexicographicPrefersFewerHops(t *testing.T) {
	// Both routes have primary cost 0; the 1-hop direct edge must win.
	g := New(4, 4)
	direct := g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	d := NewDijkstra(g)
	path, cost, ok := d.ShortestPath(0, 3, func(int) uint64 { return 0 }, nil)
	if !ok || len(path) != 1 || path[0] != direct {
		t.Errorf("path = %v, want direct edge %d", path, direct)
	}
	if cost.Hops != 1 {
		t.Errorf("hops = %d", cost.Hops)
	}
}

func TestDijkstraPathIsValidWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnected(50, 80, rng)
	d := NewDijkstra(g)
	usage := make([]uint64, g.NumEdges())
	for i := range usage {
		usage[i] = uint64(rng.Intn(5))
	}
	costFn := func(e int) uint64 { return usage[e] }
	for trial := 0; trial < 200; trial++ {
		src, dst := rng.Intn(50), rng.Intn(50)
		path, cost, ok := d.ShortestPath(src, dst, costFn, nil)
		if !ok {
			t.Fatal("connected graph reported unreachable")
		}
		// Walk the path and check contiguity and cost accounting.
		cur := src
		var prim uint64
		for _, e := range path {
			prim += usage[e]
			cur = g.Edge(e).Other(cur) // panics if not incident
		}
		if cur != dst {
			t.Fatalf("path does not end at dst: %v", path)
		}
		if prim != cost.Primary || int(cost.Hops) != len(path) {
			t.Fatalf("cost mismatch: reported %+v, walked prim=%d hops=%d", cost, prim, len(path))
		}
	}
}

func TestDijkstraMatchesBellmanFordRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(25)
		g := randomConnected(n, rng.Intn(40), rng)
		usage := make([]uint64, g.NumEdges())
		for i := range usage {
			usage[i] = uint64(rng.Intn(4))
		}
		costFn := func(e int) uint64 { return usage[e] }
		d := NewDijkstra(g)
		src := rng.Intn(n)
		want := bellmanFord(g, src, usage)
		for dst := 0; dst < n; dst++ {
			_, cost, ok := d.ShortestPath(src, dst, costFn, nil)
			if !ok {
				t.Fatalf("trial %d: unreachable %d->%d", trial, src, dst)
			}
			if cost.Primary != want[dst] {
				t.Fatalf("trial %d: %d->%d primary=%d want %d", trial, src, dst, cost.Primary, want[dst])
			}
		}
	}
}

// bellmanFord computes primary-cost shortest distances as a reference.
func bellmanFord(g *Graph, src int, usage []uint64) []uint64 {
	const inf = ^uint64(0)
	dist := make([]uint64, g.NumVertices())
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for iter := 0; iter < g.NumVertices(); iter++ {
		changed := false
		for id, e := range g.Edges() {
			w := usage[id]
			if dist[e.U] != inf && dist[e.U]+w < dist[e.V] {
				dist[e.V] = dist[e.U] + w
				changed = true
			}
			if dist[e.V] != inf && dist[e.V]+w < dist[e.U] {
				dist[e.U] = dist[e.V] + w
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraPathBufAppend(t *testing.T) {
	g := line(3)
	d := NewDijkstra(g)
	buf := []int{42}
	path, _, ok := d.ShortestPath(0, 2, unitCost, buf)
	if !ok || len(path) != 3 || path[0] != 42 {
		t.Errorf("append semantics broken: %v", path)
	}
}

func TestCostLessAndAdd(t *testing.T) {
	a := Cost{Primary: 1, Hops: 9}
	b := Cost{Primary: 2, Hops: 0}
	if !a.Less(b) || b.Less(a) {
		t.Error("primary must dominate hops")
	}
	c := Cost{Primary: 1, Hops: 3}
	if !c.Less(a) {
		t.Error("hops tie-break failed")
	}
	if got := c.Add(5); got.Primary != 6 || got.Hops != 4 {
		t.Errorf("Add = %+v", got)
	}
	if InfCost.Less(a) {
		t.Error("InfCost must not be less than finite cost")
	}
}

func BenchmarkDijkstraGrid(b *testing.B) {
	g := grid(20, 20)
	d := NewDijkstra(g)
	usage := make([]uint64, g.NumEdges())
	costFn := func(e int) uint64 { return usage[e] }
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _, _ = d.ShortestPath(0, g.NumVertices()-1, costFn, buf)
	}
}
