package graph

// Bridges returns the identifiers of all bridge edges: edges whose removal
// disconnects their component. On a multi-FPGA board a bridge is a
// single point of failure and an unavoidable congestion funnel — every net
// crossing the cut must multiplex onto that one connection — so board
// statistics report them.
//
// The implementation is Tarjan's low-link algorithm, iteratively (no
// recursion, boards can be large), honoring parallel edges: two parallel
// edges between the same vertices are never bridges.
func Bridges(g *Graph) []int {
	n := g.NumVertices()
	disc := make([]int32, n) // discovery time, 0 = unvisited
	low := make([]int32, n)
	parentEdge := make([]int32, n)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	var bridges []int
	var timer int32 = 1

	type frame struct {
		v   int
		idx int // next adjacency index to visit
	}
	stack := make([]frame, 0, n)

	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		disc[start], low[start] = timer, timer
		timer++
		stack = append(stack, frame{v: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.Adj(f.v)
			if f.idx < len(adj) {
				arc := adj[f.idx]
				f.idx++
				if int32(arc.Edge) == parentEdge[f.v] {
					continue // don't go back through the tree edge itself
				}
				if disc[arc.To] != 0 {
					if disc[arc.To] < low[f.v] {
						low[f.v] = disc[arc.To]
					}
					continue
				}
				disc[arc.To], low[arc.To] = timer, timer
				timer++
				parentEdge[arc.To] = int32(arc.Edge)
				stack = append(stack, frame{v: arc.To})
				continue
			}
			// Post-order: propagate low-link to the parent and decide.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := stack[len(stack)-1].v
			if low[f.v] < low[p] {
				low[p] = low[f.v]
			}
			if low[f.v] > disc[p] {
				bridges = append(bridges, int(parentEdge[f.v]))
			}
		}
	}
	return bridges
}
