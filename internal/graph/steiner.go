package graph

// SteinerCleaner turns an arbitrary connected edge set (the union of the
// shortest paths substituted for MST edges in the KMB construction,
// Sec. III-A) into a Steiner tree over a terminal set: it extracts a
// spanning tree of the edge-induced subgraph and then repeatedly trims
// non-terminal leaves.
//
// It keeps epoch-stamped scratch arrays sized to the host graph so that a
// router cleaning millions of nets performs no per-net allocation beyond the
// result slice.
type SteinerCleaner struct {
	g *Graph

	epoch     uint32
	vstamp    []uint32 // vertex seen in current epoch
	estamp    []uint32 // edge included in current epoch
	tstamp    []uint32 // vertex is a terminal in current epoch
	parentV   []int32  // BFS tree parent vertex
	parentE   []int32  // BFS tree parent edge
	childCnt  []int32  // BFS tree child count
	treeStamp []uint32 // edge kept in BFS tree in current epoch
	queue     []int
}

// Clone returns an independent cleaner bound to the same graph, for
// spawning one cleaner per worker goroutine.
func (sc *SteinerCleaner) Clone() *SteinerCleaner { return NewSteinerCleaner(sc.g) }

// NewSteinerCleaner returns a cleaner bound to g.
func NewSteinerCleaner(g *Graph) *SteinerCleaner {
	n, m := g.NumVertices(), g.NumEdges()
	return &SteinerCleaner{
		g:         g,
		vstamp:    make([]uint32, n),
		estamp:    make([]uint32, m),
		tstamp:    make([]uint32, n),
		parentV:   make([]int32, n),
		parentE:   make([]int32, n),
		childCnt:  make([]int32, n),
		treeStamp: make([]uint32, m),
	}
}

// Clean returns the edges of a Steiner tree over terminals using only edges
// from the given set. Duplicate edge ids in edges are tolerated. The edge
// set must connect all terminals; Clean reports ok=false otherwise.
//
// The result slice is freshly allocated and owned by the caller.
func (sc *SteinerCleaner) Clean(edges []int, terminals []int) (tree []int, ok bool) {
	tree, ok = sc.CleanAppend(make([]int, 0, len(terminals)*2), edges, terminals)
	if !ok || len(tree) == 0 {
		return nil, ok
	}
	return tree, ok
}

// CleanAppend is Clean appending the tree edges to dst instead of allocating
// the result, for callers carving tree storage out of an arena. The tree
// never has more edges than the (deduplicated) input edge set, so a dst with
// len(edges) spare capacity is never reallocated.
func (sc *SteinerCleaner) CleanAppend(dst []int, edges []int, terminals []int) (tree []int, ok bool) {
	if len(terminals) <= 1 {
		return dst, true
	}
	sc.epoch++
	if sc.epoch == 0 { // stamp wrap-around: invalidate all stale stamps
		for i := range sc.vstamp {
			sc.vstamp[i], sc.tstamp[i] = 0, 0
		}
		for i := range sc.estamp {
			sc.estamp[i], sc.treeStamp[i] = 0, 0
		}
		sc.epoch = 1
	}
	ep := sc.epoch

	for _, e := range edges {
		sc.estamp[e] = ep
	}
	for _, t := range terminals {
		sc.tstamp[t] = ep
	}

	// BFS from the first terminal over the included edges, building a
	// spanning tree of the reachable component.
	root := terminals[0]
	sc.vstamp[root] = ep
	sc.parentV[root] = -1
	sc.parentE[root] = -1
	sc.childCnt[root] = 0
	sc.queue = sc.queue[:0]
	sc.queue = append(sc.queue, root)
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		for _, arc := range sc.g.Adj(u) {
			if sc.estamp[arc.Edge] != ep || sc.vstamp[arc.To] == ep {
				continue
			}
			v := arc.To
			sc.vstamp[v] = ep
			sc.parentV[v] = int32(u)
			sc.parentE[v] = int32(arc.Edge)
			sc.childCnt[v] = 0
			sc.treeStamp[arc.Edge] = ep
			sc.queue = append(sc.queue, v)
		}
	}

	for _, t := range terminals {
		if sc.vstamp[t] != ep {
			return dst, false
		}
	}

	// Count children per tree vertex, then trim non-terminal leaves until
	// only the Steiner tree remains.
	for _, v := range sc.queue {
		if p := sc.parentV[v]; p >= 0 {
			sc.childCnt[p]++
		}
	}
	// Process vertices in reverse BFS order: leaves first.
	for i := len(sc.queue) - 1; i >= 0; i-- {
		v := sc.queue[i]
		if sc.childCnt[v] != 0 || sc.tstamp[v] == ep {
			continue
		}
		// Non-terminal leaf: drop its parent edge.
		e := sc.parentE[v]
		if e < 0 {
			continue // isolated root cannot happen with >=2 terminals
		}
		sc.treeStamp[e] = 0
		sc.childCnt[sc.parentV[v]]--
	}

	for _, v := range sc.queue {
		if e := sc.parentE[v]; e >= 0 && sc.treeStamp[e] == ep {
			dst = append(dst, int(e))
		}
	}
	return dst, true
}
