// Package graph implements the FPGA-graph substrate from Sec. II-A/III of the
// paper: an undirected graph over FPGAs with identified edges (physical
// inter-FPGA connections), plus the algorithmic building blocks used by the
// router — disjoint-set union, Kruskal minimum spanning trees, BFS all-pairs
// shortest-path tables, Dijkstra search under lexicographic congestion costs,
// and Steiner-tree cleanup utilities.
//
// Vertices are dense integers [0, NumVertices). Edges are dense integers
// [0, NumEdges) so that per-edge state (usage counts, TDM patterns) can live
// in plain slices owned by the callers.
package graph

import "fmt"

// Edge is an undirected connection between two vertices. U <= V is not
// required; the pair is stored as given.
type Edge struct {
	U, V int
}

// Other returns the endpoint of e opposite to vertex w.
// It panics if w is not an endpoint of e.
func (e Edge) Other(w int) int {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", w, e))
}

// Arc is an adjacency entry: the neighbouring vertex and the identifier of
// the edge that reaches it.
type Arc struct {
	To   int
	Edge int
}

// Graph is an undirected graph with identified edges. Parallel edges and
// self-loops are permitted by the representation (the ICCAD 2019 benchmark
// format does not produce them, but the validator tolerates parallel edges).
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Arc
}

// New returns an empty graph with n vertices and capacity for sizeHint edges.
// It panics if n < 0.
func New(n, sizeHint int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:     n,
		edges: make([]Edge, 0, sizeHint),
		adj:   make([][]Arc, n),
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts the undirected edge (u, v) and returns its identifier.
// It panics if either endpoint is out of range.
func (g *Graph) AddEdge(u, v int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v})
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: id})
	if v != u {
		g.adj[v] = append(g.adj[v], Arc{To: u, Edge: id})
	}
	return id
}

// Edge returns the endpoints of edge id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns the internal edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Adj returns the adjacency list of vertex u. Callers must not modify it.
func (g *Graph) Adj(u int) []Arc { return g.adj[u] }

// Degree returns the number of incident edge endpoints at u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Connected reports whether every vertex is reachable from vertex 0.
// The empty graph and the single-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := make([]int, 0, g.n)
	stack = append(stack, 0)
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.adj[u] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == g.n
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n, len(g.edges))
	for _, e := range g.edges {
		c.AddEdge(e.U, e.V)
	}
	return c
}
