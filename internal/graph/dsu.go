package graph

// DSU is a disjoint-set union (union-find) structure with path halving and
// union by size, used by Kruskal's algorithm (Sec. III-A) and by the routing
// validator to check tree connectivity.
type DSU struct {
	parent []int
	size   []int
	sets   int
}

// NewDSU returns a DSU over n singleton sets {0}, {1}, ..., {n-1}.
func NewDSU(n int) *DSU {
	d := &DSU{
		parent: make([]int, n),
		size:   make([]int, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = i
		d.size[i] = 1
	}
	return d
}

// Reset reinitializes the structure to n singleton sets, reusing the backing
// arrays when they are large enough. It lets hot loops (the per-net Kruskal
// of the KMB construction) run union-find without a per-call allocation.
func (d *DSU) Reset(n int) {
	if cap(d.parent) < n {
		d.parent = make([]int, n)
		d.size = make([]int, n)
	}
	d.parent = d.parent[:n]
	d.size = d.size[:n]
	d.sets = n
	for i := 0; i < n; i++ {
		d.parent[i] = i
		d.size[i] = 1
	}
}

// Find returns the representative of the set containing x.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.size[rx] < d.size[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	d.size[rx] += d.size[ry]
	d.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// SetSize returns the size of the set containing x.
func (d *DSU) SetSize(x int) int { return d.size[d.Find(x)] }
