package graph

import (
	"math/rand"
	"testing"
)

func TestMehlhornTwoTerminalsIsShortestPath(t *testing.T) {
	g := grid(5, 5)
	m := NewMehlhornSolver(g)
	d := NewDijkstra(g)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		u, v := rng.Intn(25), rng.Intn(25)
		if u == v {
			continue
		}
		tree, ok := m.SteinerTree([]int{u, v}, unitCost)
		if !ok {
			t.Fatal("grid should connect")
		}
		_, cost, _ := d.ShortestPath(u, v, unitCost, nil)
		if len(tree) != int(cost.Hops) {
			t.Fatalf("trial %d: Mehlhorn 2-terminal tree has %d edges, shortest path %d", trial, len(tree), cost.Hops)
		}
		checkSteinerTree(t, g, tree, []int{u, v})
	}
}

func TestMehlhornStarGraph(t *testing.T) {
	// Center 0 with spokes to 1..4; terminals {1,2,3} need exactly their
	// spokes.
	g := New(5, 4)
	for i := 1; i <= 4; i++ {
		g.AddEdge(0, i)
	}
	m := NewMehlhornSolver(g)
	tree, ok := m.SteinerTree([]int{1, 2, 3}, unitCost)
	if !ok || len(tree) != 3 {
		t.Fatalf("tree=%v ok=%v", tree, ok)
	}
	checkSteinerTree(t, g, tree, []int{1, 2, 3})
}

func TestMehlhornDisconnected(t *testing.T) {
	g := New(4, 1)
	g.AddEdge(0, 1)
	m := NewMehlhornSolver(g)
	if _, ok := m.SteinerTree([]int{0, 3}, unitCost); ok {
		t.Error("disconnected terminals accepted")
	}
}

func TestMehlhornSingleTerminal(t *testing.T) {
	g := line(3)
	m := NewMehlhornSolver(g)
	tree, ok := m.SteinerTree([]int{1}, unitCost)
	if !ok || len(tree) != 0 {
		t.Errorf("tree=%v ok=%v", tree, ok)
	}
}

func TestMehlhornAvoidsCongestion(t *testing.T) {
	// Ring of 4: terminals {0,2}; one side is congested.
	g := New(4, 4)
	e01 := g.AddEdge(0, 1)
	e12 := g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	usage := map[int]uint64{e01: 5, e12: 5}
	m := NewMehlhornSolver(g)
	tree, ok := m.SteinerTree([]int{0, 2}, func(e int) uint64 { return usage[e] })
	if !ok {
		t.Fatal("not ok")
	}
	for _, e := range tree {
		if e == e01 || e == e12 {
			t.Errorf("used congested edge %d", e)
		}
	}
}

func TestMehlhornWithinTwiceKMBRandom(t *testing.T) {
	// Both are 2-approximations; on random graphs their unit-cost tree
	// sizes should be close. Assert Mehlhorn <= 2x KMB-style baseline
	// (pairwise shortest path union) and valid.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		g := randomConnected(4+rng.Intn(30), rng.Intn(40), rng)
		n := g.NumVertices()
		k := 2 + rng.Intn(minInt(6, n-1))
		terms := rng.Perm(n)[:k]
		m := NewMehlhornSolver(g)
		tree, ok := m.SteinerTree(terms, unitCost)
		if !ok {
			t.Fatalf("trial %d: not ok on connected graph", trial)
		}
		checkSteinerTree(t, g, tree, terms)

		// Baseline: star of shortest paths from terms[0].
		d := NewDijkstra(g)
		sc := NewSteinerCleaner(g)
		var union []int
		for _, v := range terms[1:] {
			union, _, _ = d.ShortestPath(terms[0], v, unitCost, union)
		}
		star, ok := sc.Clean(union, terms)
		if !ok {
			t.Fatal("star clean failed")
		}
		if len(tree) > 2*len(star) {
			t.Errorf("trial %d: Mehlhorn %d edges vs star %d", trial, len(tree), len(star))
		}
	}
}

func TestMehlhornReusableAcrossCalls(t *testing.T) {
	g := grid(6, 6)
	m := NewMehlhornSolver(g)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(5)
		terms := rng.Perm(36)[:k]
		tree, ok := m.SteinerTree(terms, unitCost)
		if !ok {
			t.Fatal("grid must connect")
		}
		checkSteinerTree(t, g, tree, terms)
	}
}

func TestFoldCost(t *testing.T) {
	a := foldCost(Cost{Primary: 1, Hops: 0})
	b := foldCost(Cost{Primary: 0, Hops: 1000})
	if a <= b {
		t.Error("primary must dominate hops")
	}
	c := foldCost(Cost{Primary: 1, Hops: 2})
	d := foldCost(Cost{Primary: 1, Hops: 3})
	if c >= d {
		t.Error("hops must break ties")
	}
	if foldCost(Cost{Primary: 1 << 50, Hops: 0}) != 1<<62-1 {
		t.Error("saturation failed")
	}
}

func BenchmarkMehlhornVsKMBStyle(b *testing.B) {
	g := grid(20, 20)
	rng := rand.New(rand.NewSource(2))
	terms := rng.Perm(400)[:12]
	b.Run("Mehlhorn", func(b *testing.B) {
		m := NewMehlhornSolver(g)
		for i := 0; i < b.N; i++ {
			if _, ok := m.SteinerTree(terms, unitCost); !ok {
				b.Fatal("failed")
			}
		}
	})
	b.Run("PairwiseDijkstra", func(b *testing.B) {
		d := NewDijkstra(g)
		sc := NewSteinerCleaner(g)
		var union []int
		for i := 0; i < b.N; i++ {
			union = union[:0]
			for _, v := range terms[1:] {
				union, _, _ = d.ShortestPath(terms[0], v, unitCost, union)
			}
			if _, ok := sc.Clean(union, terms); !ok {
				b.Fatal("failed")
			}
		}
	})
}
