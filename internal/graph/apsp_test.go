package graph

import (
	"math/rand"
	"testing"
)

func TestAPSPLine(t *testing.T) {
	g := line(5)
	a := NewAPSP(g)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			want := int32(v - u)
			if want < 0 {
				want = -want
			}
			if got := a.Dist(u, v); got != want {
				t.Errorf("Dist(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
	if a.NumVertices() != 5 {
		t.Errorf("NumVertices = %d", a.NumVertices())
	}
}

func TestAPSPDisconnected(t *testing.T) {
	g := New(3, 1)
	g.AddEdge(0, 1)
	a := NewAPSP(g)
	if a.Dist(0, 2) != Unreachable || a.Dist(2, 1) != Unreachable {
		t.Error("unreachable pair should report Unreachable")
	}
	if a.Dist(2, 2) != 0 {
		t.Error("self distance must be 0")
	}
}

func TestAPSPGridSymmetricAndTriangle(t *testing.T) {
	g := grid(4, 5)
	a := NewAPSP(g)
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if a.Dist(u, v) != a.Dist(v, u) {
				t.Fatalf("asymmetric dist at (%d,%d)", u, v)
			}
			for w := 0; w < n; w++ {
				if a.Dist(u, v) > a.Dist(u, w)+a.Dist(w, v) {
					t.Fatalf("triangle inequality violated (%d,%d,%d)", u, v, w)
				}
			}
		}
	}
	// Manhattan distance on a grid.
	if got := a.Dist(0, 3*5+4); got != 3+4 {
		t.Errorf("corner distance = %d, want 7", got)
	}
}

func TestAPSPMatchesBFSDistancesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(2+rng.Intn(40), rng.Intn(30), rng)
		a := NewAPSP(g)
		dist := make([]int32, g.NumVertices())
		for s := 0; s < g.NumVertices(); s++ {
			BFSDistances(g, s, dist)
			for v := 0; v < g.NumVertices(); v++ {
				if a.Dist(s, v) != dist[v] {
					t.Fatalf("trial %d: APSP(%d,%d)=%d BFS=%d", trial, s, v, a.Dist(s, v), dist[v])
				}
			}
		}
	}
}

func BenchmarkAPSPBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(300, 1500, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewAPSP(g)
	}
}
