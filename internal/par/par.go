// Package par provides the deterministic chunked fork-join helpers shared
// by the TDM assignment and routing stages. Work over [0, n) is split into
// one contiguous chunk per worker; chunk boundaries depend only on n, the
// worker count, and the minimum chunk size, and callers combine per-chunk
// partial results in chunk order, so results are deterministic for a fixed
// worker count.
//
// All helpers contain worker panics: a panic inside a chunk is recovered on
// the worker goroutine, the first panicking chunk by chunk index wins (a
// deterministic choice independent of goroutine scheduling), and the panic
// resurfaces on the calling goroutine as a typed *PanicError carrying the
// original value and the captured stack. ForCtx/ForMinCtx additionally stop
// launching work once a context is cancelled; Capture converts contained
// panics into ordinary errors at stage boundaries.
package par

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// MinChunk is the default minimum chunk size used by For and NumChunks: it
// avoids spawning goroutines for trivially small loops whose per-item work
// is cheap (the LR inner loops). Loops with expensive items (net routing)
// should use ForMin with a smaller threshold.
const MinChunk = 256

// PanicError is a contained worker panic. When a chunk of For/ForMin
// panics, the panic is recovered on the worker goroutine and re-raised on
// the calling goroutine as a *PanicError; when several chunks panic in the
// same call, the one with the smallest chunk index wins, so the surfaced
// error is deterministic for a fixed worker count. Capture converts the
// re-raised panic into a returned error.
type PanicError struct {
	// Chunk is the index of the panicking chunk, or -1 when the panic was
	// captured outside a parallel chunk (Capture on sequential code).
	Chunk int
	// Value is the original value passed to panic.
	Value any
	// Stack is the stack of the panicking goroutine at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Chunk < 0 {
		return fmt.Sprintf("par: contained panic: %v", e.Value)
	}
	return fmt.Sprintf("par: contained panic in chunk %d: %v", e.Chunk, e.Value)
}

// Capture invokes fn and converts a panic on fn's goroutine into a returned
// error: a *PanicError re-raised by For/ForMin passes through unchanged
// (preserving the innermost chunk attribution), any other panic value is
// wrapped into a new *PanicError with Chunk = -1. It is the stage-boundary
// guard of the anytime pipeline: a solver stage wrapped in Capture can fail
// with a typed error instead of tearing the process down.
func Capture(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Chunk: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// chunkHook, when set, is called at the entry of every chunk with the chunk
// index — the fault-injection point of the chaos harness (internal/chaos).
// It is loaded atomically once per chunk, so the cost when unset is one
// atomic pointer load per chunk (chunks are at most the worker count).
var chunkHook atomic.Pointer[func(chunk int)]

// SetChunkHook installs fn as the per-chunk entry hook, or removes the hook
// when fn is nil. It exists for deterministic fault injection in tests; the
// solver never installs one. The hook runs on the worker goroutine and may
// panic — the panic is contained like any other chunk panic.
func SetChunkHook(fn func(chunk int)) {
	if fn == nil {
		chunkHook.Store(nil)
		return
	}
	chunkHook.Store(&fn)
}

// runChunk invokes fn for one chunk, containing panics. An already-typed
// *PanicError (from a nested For/ForMin) passes through so the innermost
// chunk attribution survives nesting.
func runChunk(c, s, e int, fn func(chunk, start, end int)) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			if p, ok := r.(*PanicError); ok {
				pe = p
				return
			}
			pe = &PanicError{Chunk: c, Value: r, Stack: debug.Stack()}
		}
	}()
	if h := chunkHook.Load(); h != nil {
		(*h)(c)
	}
	fn(c, s, e)
	return nil
}

// For splits [0, n) into one contiguous chunk per worker and runs
// fn(chunk, start, end) concurrently, inlining the whole range when the
// average chunk would fall below MinChunk. workers <= 1 runs inline. A
// panic inside fn re-raises on the caller as a *PanicError.
func For(n, workers int, fn func(chunk, start, end int)) {
	ForMin(n, workers, MinChunk, fn)
}

// ForMin is For with an explicit minimum chunk size. minChunk = 1
// parallelizes any n >= 2, which is appropriate when each item carries
// substantial work (for example one shortest-path search per item).
func ForMin(n, workers, minChunk int, fn func(chunk, start, end int)) {
	pe, _ := forCore(nil, n, workers, minChunk, fn)
	if pe != nil {
		panic(pe)
	}
}

// ForCtx is For with early exit on context cancellation: when ctx is
// already done no chunk runs, and chunks whose goroutine observes the
// cancellation before starting are skipped. It returns ctx.Err() when any
// chunk was skipped, in which case the loop's outputs are incomplete and
// must be discarded — use it only for all-or-nothing stages. A panic inside
// fn is returned as a *PanicError instead of re-raised.
func ForCtx(ctx context.Context, n, workers int, fn func(chunk, start, end int)) error {
	return ForMinCtx(ctx, n, workers, MinChunk, fn)
}

// ForMinCtx is ForCtx with an explicit minimum chunk size.
func ForMinCtx(ctx context.Context, n, workers, minChunk int, fn func(chunk, start, end int)) error {
	pe, cancelled := forCore(ctx, n, workers, minChunk, fn)
	if pe != nil {
		return pe
	}
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// forCore is the shared fork-join body. ctx may be nil (never cancelled).
// It reports the winning panic (smallest chunk index) and whether any chunk
// was skipped because ctx was done.
func forCore(ctx context.Context, n, workers, minChunk int, fn func(chunk, start, end int)) (*PanicError, bool) {
	if minChunk < 1 {
		minChunk = 1
	}
	if workers > n {
		workers = n
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, true
	}
	if workers <= 1 || n < workers*minChunk {
		return runChunk(0, 0, n, fn), false
	}
	chunkSize := (n + workers - 1) / workers
	numChunks := (n + chunkSize - 1) / chunkSize
	pes := make([]*PanicError, numChunks)
	skipped := make([]bool, numChunks)
	var wg sync.WaitGroup
	chunk := 0
	for start := 0; start < n; start += chunkSize {
		end := start + chunkSize
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(c, s, e int) {
			defer wg.Done()
			if ctx != nil && ctx.Err() != nil {
				skipped[c] = true
				return
			}
			pes[c] = runChunk(c, s, e, fn)
		}(chunk, start, end)
		chunk++
	}
	wg.Wait()
	for _, pe := range pes {
		if pe != nil {
			return pe, false
		}
	}
	for _, s := range skipped {
		if s {
			return nil, true
		}
	}
	return nil, false
}

// NumChunks returns how many chunks For will use, for sizing partial-result
// buffers.
func NumChunks(n, workers int) int {
	return NumChunksMin(n, workers, MinChunk)
}

// NumChunksMin returns how many chunks ForMin will use for the same
// arguments.
func NumChunksMin(n, workers, minChunk int) int {
	if minChunk < 1 {
		minChunk = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < workers*minChunk {
		return 1
	}
	chunkSize := (n + workers - 1) / workers
	return (n + chunkSize - 1) / chunkSize
}
