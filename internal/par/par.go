// Package par provides the deterministic chunked fork-join helpers shared
// by the TDM assignment and routing stages. Work over [0, n) is split into
// one contiguous chunk per worker; chunk boundaries depend only on n, the
// worker count, and the minimum chunk size, and callers combine per-chunk
// partial results in chunk order, so results are deterministic for a fixed
// worker count.
package par

import "sync"

// MinChunk is the default minimum chunk size used by For and NumChunks: it
// avoids spawning goroutines for trivially small loops whose per-item work
// is cheap (the LR inner loops). Loops with expensive items (net routing)
// should use ForMin with a smaller threshold.
const MinChunk = 256

// For splits [0, n) into one contiguous chunk per worker and runs
// fn(chunk, start, end) concurrently, inlining the whole range when the
// average chunk would fall below MinChunk. workers <= 1 runs inline.
func For(n, workers int, fn func(chunk, start, end int)) {
	ForMin(n, workers, MinChunk, fn)
}

// ForMin is For with an explicit minimum chunk size. minChunk = 1
// parallelizes any n >= 2, which is appropriate when each item carries
// substantial work (for example one shortest-path search per item).
func ForMin(n, workers, minChunk int, fn func(chunk, start, end int)) {
	if minChunk < 1 {
		minChunk = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < workers*minChunk {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunkSize := (n + workers - 1) / workers
	chunk := 0
	for start := 0; start < n; start += chunkSize {
		end := start + chunkSize
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(c, s, e int) {
			defer wg.Done()
			fn(c, s, e)
		}(chunk, start, end)
		chunk++
	}
	wg.Wait()
}

// NumChunks returns how many chunks For will use, for sizing partial-result
// buffers.
func NumChunks(n, workers int) int {
	return NumChunksMin(n, workers, MinChunk)
}

// NumChunksMin returns how many chunks ForMin will use for the same
// arguments.
func NumChunksMin(n, workers, minChunk int) int {
	if minChunk < 1 {
		minChunk = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < workers*minChunk {
		return 1
	}
	chunkSize := (n + workers - 1) / workers
	return (n + chunkSize - 1) / chunkSize
}
