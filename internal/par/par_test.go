package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 7} {
		for _, n := range []int{0, 1, 255, 256, 1000, 4096} {
			var count int64
			seen := make([]int32, n)
			For(n, workers, func(_, start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt32(&seen[i], 1)
					atomic.AddInt64(&count, 1)
				}
			})
			if count != int64(n) {
				t.Fatalf("workers=%d n=%d: visited %d", workers, n, count)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForMinCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 7, 16} {
		for _, minChunk := range []int{0, 1, 2, 64} {
			for _, n := range []int{0, 1, 2, 3, 7, 100} {
				var count int64
				seen := make([]int32, n)
				ForMin(n, workers, minChunk, func(_, start, end int) {
					for i := start; i < end; i++ {
						atomic.AddInt32(&seen[i], 1)
						atomic.AddInt64(&count, 1)
					}
				})
				if count != int64(n) {
					t.Fatalf("workers=%d min=%d n=%d: visited %d", workers, minChunk, n, count)
				}
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("workers=%d min=%d n=%d: index %d visited %d times", workers, minChunk, n, i, c)
					}
				}
			}
		}
	}
}

func TestNumChunksMatchesFor(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, minChunk := range []int{1, 2, 256} {
			for _, n := range []int{0, 1, 3, 255, 256, 257, 5000} {
				var maxChunk int64 = -1
				ForMin(n, workers, minChunk, func(chunk, _, _ int) {
					for {
						old := atomic.LoadInt64(&maxChunk)
						if int64(chunk) <= old || atomic.CompareAndSwapInt64(&maxChunk, old, int64(chunk)) {
							break
						}
					}
				})
				want := NumChunksMin(n, workers, minChunk)
				if n == 0 {
					// ForMin still invokes fn(0,0,0) once in serial mode.
					continue
				}
				if int(maxChunk)+1 != want {
					t.Fatalf("workers=%d min=%d n=%d: %d chunks used, NumChunksMin says %d",
						workers, minChunk, n, maxChunk+1, want)
				}
			}
		}
	}
}

func TestChunkBoundsNeverExceedWorkers(t *testing.T) {
	// Every chunk index must stay below the worker count so callers can
	// index per-worker scratch with it.
	for _, workers := range []int{2, 3, 8} {
		for _, n := range []int{2, 5, 17, 1000} {
			ForMin(n, workers, 1, func(chunk, _, _ int) {
				if chunk >= workers {
					t.Errorf("workers=%d n=%d: chunk %d out of range", workers, n, chunk)
				}
			})
		}
	}
}
