package par

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// recoverPanicError runs fn and returns the *PanicError it panics with, or
// nil if it returns normally.
func recoverPanicError(t *testing.T, fn func()) (pe *PanicError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var ok bool
		pe, ok = r.(*PanicError)
		if !ok {
			t.Fatalf("panic value is %T, want *PanicError", r)
		}
	}()
	fn()
	return nil
}

func TestForMinPanicFirstChunk(t *testing.T) {
	pe := recoverPanicError(t, func() {
		ForMin(8, 4, 1, func(chunk, start, end int) {
			if chunk == 0 {
				panic("boom-0")
			}
		})
	})
	if pe == nil {
		t.Fatal("expected contained panic")
	}
	if pe.Chunk != 0 || pe.Value != "boom-0" {
		t.Fatalf("got chunk %d value %v", pe.Chunk, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("stack not captured")
	}
	if !strings.Contains(pe.Error(), "chunk 0") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestForMinPanicLastChunk(t *testing.T) {
	pe := recoverPanicError(t, func() {
		ForMin(8, 4, 1, func(chunk, start, end int) {
			if chunk == 3 {
				panic("boom-3")
			}
		})
	})
	if pe == nil || pe.Chunk != 3 || pe.Value != "boom-3" {
		t.Fatalf("got %+v", pe)
	}
}

func TestForMinPanicLowestChunkWins(t *testing.T) {
	// Every chunk panics: the surfaced error must deterministically be the
	// lowest chunk index regardless of goroutine scheduling.
	for trial := 0; trial < 20; trial++ {
		pe := recoverPanicError(t, func() {
			ForMin(16, 4, 1, func(chunk, start, end int) {
				panic(chunk)
			})
		})
		if pe == nil || pe.Chunk != 0 || pe.Value != 0 {
			t.Fatalf("trial %d: got %+v", trial, pe)
		}
	}
}

func TestForMinPanicInline(t *testing.T) {
	// workers=1 runs inline; the panic must still surface as *PanicError so
	// behavior is uniform across worker counts.
	pe := recoverPanicError(t, func() {
		ForMin(8, 1, 1, func(chunk, start, end int) { panic("seq") })
	})
	if pe == nil || pe.Chunk != 0 || pe.Value != "seq" {
		t.Fatalf("got %+v", pe)
	}
}

func TestNestedForMinKeepsInnermostAttribution(t *testing.T) {
	pe := recoverPanicError(t, func() {
		ForMin(4, 2, 1, func(chunk, start, end int) {
			ForMin(4, 2, 1, func(inner, s, e int) {
				if inner == 1 {
					panic("nested")
				}
			})
		})
	})
	if pe == nil {
		t.Fatal("expected contained panic")
	}
	// The inner ForMin wraps the panic with inner chunk 1; the outer chunk
	// must pass it through rather than re-wrap it.
	if pe.Chunk != 1 || pe.Value != "nested" {
		t.Fatalf("got chunk %d value %v, want innermost chunk 1", pe.Chunk, pe.Value)
	}
}

func TestCapture(t *testing.T) {
	if err := Capture(func() error { return nil }); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	sentinel := errors.New("plain")
	if err := Capture(func() error { return sentinel }); err != sentinel {
		t.Fatalf("error passthrough: %v", err)
	}
	err := Capture(func() error {
		ForMin(8, 4, 1, func(chunk, start, end int) {
			if chunk == 2 {
				panic("pe")
			}
		})
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Chunk != 2 {
		t.Fatalf("expected chunk-2 PanicError, got %v", err)
	}
	err = Capture(func() error { panic("raw") })
	if !errors.As(err, &pe) || pe.Chunk != -1 || pe.Value != "raw" {
		t.Fatalf("expected Chunk=-1 PanicError, got %v", err)
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForCtx(ctx, 1000, 4, func(chunk, start, end int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("chunk ran despite cancelled context")
	}
}

func TestForCtxCompletesWithoutCancel(t *testing.T) {
	var count int64
	err := ForMinCtx(context.Background(), 1000, 4, 1, func(chunk, start, end int) {
		atomic.AddInt64(&count, int64(end-start))
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Fatalf("covered %d of 1000", count)
	}
}

func TestForCtxMidCancelSkipsAndReports(t *testing.T) {
	// Cancel from inside the first chunk that runs: some later chunk may be
	// skipped; if any is, the call must report the cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int64
	err := ForMinCtx(ctx, 4096, 4, 1, func(chunk, start, end int) {
		cancel()
		atomic.AddInt64(&ran, 1)
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if err == nil && atomic.LoadInt64(&ran) != 4 {
		t.Fatalf("nil error but only %d chunks ran", ran)
	}
}

func TestForCtxPanicReturnedAsError(t *testing.T) {
	err := ForMinCtx(context.Background(), 8, 4, 1, func(chunk, start, end int) {
		if chunk == 1 {
			panic("ctx-pe")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Chunk != 1 {
		t.Fatalf("got %v", err)
	}
}

func TestChunkHookInjection(t *testing.T) {
	var calls int64
	SetChunkHook(func(chunk int) {
		if atomic.AddInt64(&calls, 1) == 2 {
			panic("injected")
		}
	})
	defer SetChunkHook(nil)
	pe := recoverPanicError(t, func() {
		ForMin(8, 4, 1, func(chunk, start, end int) {})
	})
	if pe == nil || pe.Value != "injected" {
		t.Fatalf("got %+v", pe)
	}
	// With the hook cleared the same loop runs clean.
	SetChunkHook(nil)
	ForMin(8, 4, 1, func(chunk, start, end int) {})
}
