// Session: incremental reuse of the LR state across feedback rounds. The
// iterated co-optimization loop reroutes one group between TDM assignments,
// so consecutive rounds share almost their entire (net, edge) incidence;
// rebuilding both CSR views from scratch every round is the dominant avoidable
// cost on large instances. A Session keeps the views alive and, given the
// set of rerouted nets, splices only their cells out of and back into the
// flat arrays, reusing every multiplier, window, and pattern buffer.
//
// The patched arrays are exactly equal — element for element — to what a
// cold newLRState build on the new routing produces, because the cold build
// is deterministic (cells of an edge appear in ascending net order, cells of
// a net in route order) and the splice preserves both orders. With the
// multipliers and windows re-initialized by resetRun, a session round is
// therefore bit-identical to a cold RunLR call on the same routing.
package tdm

import (
	"context"
	"fmt"
	"slices"

	"tdmroute/internal/par"
	"tdmroute/internal/problem"
)

// Session owns one instance's LR working set across an iterated solve. It
// is not safe for concurrent use.
//
// The contract for RunLR/Assign after the first call: every net whose route
// differs from the previous call must be listed in changed (extra entries
// with unchanged routes are harmless). The iterated solver satisfies this
// structurally — a rejected round is undone before the next reroute, so the
// session always holds the previously accepted topology and the current
// round's rerouted group is exactly the changed set.
type Session struct {
	in     *problem.Instance
	s      *lrState
	routes problem.Routing // header copy of the attached topology

	// Spare CSR buffers: patch splices into these, then swaps them with the
	// live views, so the previous round's arrays become the next spares.
	edgeStart2 []int32
	netStart2  []int32
	cellNet2   []int32
	cellPos2   []int32
	netCell2   []int32

	// Epoch-stamped patch scratch (allocated once, never cleared in bulk).
	netStamp   []uint32
	edgeStamp  []uint32
	edgeDelta  []int32 // per affected edge: new minus old changed-net cells
	newCnt     []int32 // per affected edge: changed-net cells in the new routing
	bucketPos  []int32 // per affected edge: write cursor into newCell*
	epoch      uint32
	chg        []int32 // changed nets, deduped, ascending
	aff        []int32 // affected edges, ascending
	newCellNet []int32 // new cells bucketed per affected edge
	newCellPos []int32

	best []float64 // reusable best-pattern buffer for runLRCore
}

// NewSession creates an empty session for in; the LR state is built by the
// first RunLR or Assign call.
func NewSession(in *problem.Instance) *Session {
	return &Session{in: in}
}

// RunLR executes Algorithm 1 on the given topology, with the same results
// and anytime semantics as the package-level RunLR. The first call builds
// the CSR state; subsequent calls patch it in place using changed (see the
// Session contract) and reuse every buffer.
func (t *Session) RunLR(ctx context.Context, routes problem.Routing, changed []int, opt Options) (ratios [][]float64, z, lb float64, iters int, converged bool, stopped error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(routes) != len(t.in.Nets) {
		return nil, 0, 0, 0, false, fmt.Errorf("tdm: routing has %d nets, instance has %d", len(routes), len(t.in.Nets))
	}
	for _, n := range changed {
		if n < 0 || n >= len(routes) {
			return nil, 0, 0, 0, false, fmt.Errorf("tdm: changed net index %d out of range [0, %d)", n, len(routes))
		}
	}
	opt = opt.withDefaults()
	if err := par.Capture(func() error {
		if t.s == nil {
			t.s = newLRState(t.in, routes, opt)
		} else {
			t.grow(len(routes))
			t.patch(routes, changed)
			t.s.resetRun(opt)
		}
		return nil
	}); err != nil {
		return nil, 0, 0, 0, false, err
	}
	t.routes = append(t.routes[:0], routes...)
	if t.best != nil && len(t.best) != len(t.s.cellRatio) {
		if cap(t.best) >= len(t.s.cellRatio) {
			t.best = t.best[:len(t.s.cellRatio)]
		} else {
			t.best = make([]float64, len(t.s.cellRatio))
		}
	}
	var bestOut []float64
	ratios, z, lb, iters, converged, stopped, bestOut = runLRCore(ctx, t.s, routes, opt, t.best)
	t.best = bestOut
	return ratios, z, lb, iters, converged, stopped
}

// Assign is the session counterpart of the package-level Assign: LR through
// the session's incremental state, then the shared legalization and
// refinement. Results and anytime semantics are identical to Assign on the
// same routing.
func (t *Session) Assign(ctx context.Context, routes problem.Routing, changed []int, opt Options) (problem.Assignment, Report, error) {
	opt = opt.withDefaults()
	relaxed, z, lb, iters, converged, stopped := t.RunLR(ctx, routes, changed, opt)
	if relaxed == nil {
		return problem.Assignment{}, Report{}, stopped
	}
	assign, rep, err := Finish(ctx, t.in, routes, relaxed, opt)
	if err != nil {
		return problem.Assignment{}, Report{}, err
	}
	rep.Iterations = iters
	rep.Converged = converged
	rep.LowerBound = lb
	rep.RelaxedZ = z
	if stopped != nil {
		rep.Interrupted = stopped // the LR stop is the earlier cause
	}
	return assign, rep, nil
}

// bumpEpoch opens a fresh stamp scope, clearing the stamp arrays only on
// the (practically unreachable) uint32 wrap-around.
func (t *Session) bumpEpoch() {
	t.epoch++
	if t.epoch == 0 {
		for i := range t.netStamp {
			t.netStamp[i] = 0
		}
		for i := range t.edgeStamp {
			t.edgeStamp[i] = 0
		}
		t.epoch = 1
	}
}

// stampEdge marks e affected, resetting its per-patch counters on first
// touch.
func (t *Session) stampEdge(e int) {
	if t.edgeStamp[e] != t.epoch {
		t.edgeStamp[e] = t.epoch
		t.edgeDelta[e] = 0
		t.newCnt[e] = 0
		t.aff = append(t.aff, int32(e))
	}
}

// grow extends the per-net state for nets appended to the instance since the
// session's LR state was built (ECO net additions). The appended nets carry
// no cells yet: netStart gains slots repeating the previous total — exactly
// what a cold build on the old routing extended with empty routes produces —
// so the subsequent patch call, whose changed set must include every
// appended net (the delta solver guarantees it), splices their real cells
// in. Group-indexed state (multipliers, windows) is untouched: deltas edit
// membership of existing groups only, so the group count is invariant.
func (t *Session) grow(numNets int) {
	old := len(t.routes)
	if numNets <= old {
		return
	}
	s := t.s
	ns := make([]int32, numNets+1)
	copy(ns, s.netStart)
	tail := s.netStart[old]
	for n := old + 1; n <= numNets; n++ {
		ns[n] = tail
	}
	s.netStart = ns
	s.pi = growF64(s.pi, numNets)
	s.sqrtPi = growF64(s.sqrtPi, numNets)
	s.sqrtPiX = growF64(s.sqrtPiX, numNets)
	s.netTDM = growF64(s.netTDM, numNets)
	if t.netStamp != nil {
		stamp := make([]uint32, numNets)
		copy(stamp, t.netStamp)
		t.netStamp = stamp // appended nets start unstamped (epoch 0 != any live epoch)
	}
	for len(t.routes) < numNets {
		t.routes = append(t.routes, nil)
	}
}

// growF64 returns b zero-extended to length n.
func growF64(b []float64, n int) []float64 {
	if len(b) >= n {
		return b
	}
	nb := make([]float64, n)
	copy(nb, b)
	return nb
}

// resizeI32 returns b with length n, reusing its capacity when possible.
func resizeI32(b []int32, n int) []int32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int32, n)
}

// patch splices the changed nets' cells out of and into the CSR views so
// the arrays equal a cold build on routes. Everything strictly before the
// first affected edge (cell arrays) and the first changed net (netStart,
// and the netCell slots whose values point into the untouched cell prefix)
// is kept by bulk copies; the suffix is rewritten by per-edge block copies
// and ordered merges. The patch allocates nothing once the spare buffers
// have grown to the working size — a steady-state round with unchanged
// routes is alloc-free — but it is prefix-preserving rather than strictly
// O(changed): cost scales with the array suffix after the first affected
// edge, not with the whole instance rebuild.
func (t *Session) patch(routes problem.Routing, changed []int) {
	s := t.s
	numEdges := t.in.G.NumEdges()
	numNets := len(t.in.Nets)
	if t.netStamp == nil {
		t.netStamp = make([]uint32, numNets)
		t.edgeStamp = make([]uint32, numEdges)
		t.edgeDelta = make([]int32, numEdges)
		t.newCnt = make([]int32, numEdges)
		t.bucketPos = make([]int32, numEdges)
	}
	t.bumpEpoch()
	t.chg = t.chg[:0]
	t.aff = t.aff[:0]
	for _, n := range changed {
		if t.netStamp[n] != t.epoch {
			t.netStamp[n] = t.epoch
			t.chg = append(t.chg, int32(n))
		}
	}
	if len(t.chg) == 0 {
		return
	}
	slices.Sort(t.chg)
	for _, n32 := range t.chg {
		n := int(n32)
		for _, e := range t.routes[n] {
			t.stampEdge(e)
			t.edgeDelta[e]--
		}
		for _, e := range routes[n] {
			t.stampEdge(e)
			t.edgeDelta[e]++
			t.newCnt[e]++
		}
	}
	if len(t.aff) == 0 {
		return // changed nets were and remain unrouted: nothing to splice
	}
	slices.Sort(t.aff)
	eMin := int(t.aff[0])
	nMin := int(t.chg[0])

	// New edgeStart: unchanged prefix, then the old offsets shifted by the
	// running cell-count delta of the affected edges passed so far.
	es2 := resizeI32(t.edgeStart2, numEdges+1)
	copy(es2[:eMin+1], s.edgeStart[:eMin+1])
	var shift int32
	for e := eMin; e < numEdges; e++ {
		if t.edgeStamp[e] == t.epoch {
			shift += t.edgeDelta[e]
		}
		es2[e+1] = s.edgeStart[e+1] + shift
	}
	// New netStart: unchanged prefix, then per-net lengths (new length for
	// changed nets, old length otherwise).
	ns2 := resizeI32(t.netStart2, numNets+1)
	copy(ns2[:nMin+1], s.netStart[:nMin+1])
	for n := nMin; n < numNets; n++ {
		if t.netStamp[n] == t.epoch {
			ns2[n+1] = ns2[n] + int32(len(routes[n]))
		} else {
			ns2[n+1] = ns2[n] + (s.netStart[n+1] - s.netStart[n])
		}
	}
	total2 := int(es2[numEdges])
	if int(ns2[numNets]) != total2 {
		panic(fmt.Sprintf("tdm: patched CSR views disagree: %d edge cells vs %d net cells", total2, ns2[numNets]))
	}

	cn2 := resizeI32(t.cellNet2, total2)
	cp2 := resizeI32(t.cellPos2, total2)
	nc2 := resizeI32(t.netCell2, total2)
	prefixCells := s.edgeStart[eMin]
	copy(cn2[:prefixCells], s.cellNet[:prefixCells])
	copy(cp2[:prefixCells], s.cellPos[:prefixCells])
	copy(nc2[:s.netStart[nMin]], s.netCell[:s.netStart[nMin]])
	// Unchanged nets at or above nMin: their netCell slots move with ns2,
	// but the values of cells living in the untouched prefix (flat index
	// below prefixCells, i.e. edge below eMin) are preserved — copy those
	// per net; the suffix walk rewrites every slot whose cell moved.
	for n := nMin; n < numNets; n++ {
		if t.netStamp[n] == t.epoch {
			continue
		}
		oldBase, newBase := s.netStart[n], ns2[n]
		cnt := s.netStart[n+1] - oldBase
		for k := int32(0); k < cnt; k++ {
			if v := s.netCell[oldBase+k]; v < prefixCells {
				nc2[newBase+k] = v
			}
		}
	}

	// Bucket the changed nets' new cells per affected edge. Iterating chg
	// in ascending net order makes every bucket net-ascending, the same
	// within-edge order the cold build produces.
	var bucketTotal int32
	for _, e32 := range t.aff {
		t.bucketPos[e32] = bucketTotal
		bucketTotal += t.newCnt[e32]
	}
	ncn := resizeI32(t.newCellNet, int(bucketTotal))
	ncp := resizeI32(t.newCellPos, int(bucketTotal))
	for _, n32 := range t.chg {
		for k, e := range routes[n32] {
			i := t.bucketPos[e]
			t.bucketPos[e] = i + 1
			ncn[i] = n32
			ncp[i] = int32(k)
		}
	}

	// Suffix walk: block-copy unaffected edges (their cells shift as a
	// unit), merge affected edges from the surviving old cells and the new
	// bucket in ascending net order. Every cell writes its netCell slot —
	// both its flat index and, for nets >= nMin, its slot may have moved.
	w := prefixCells
	for e := eMin; e < numEdges; e++ {
		lo, hi := s.edgeStart[e], s.edgeStart[e+1]
		if t.edgeStamp[e] != t.epoch {
			copy(cn2[w:w+hi-lo], s.cellNet[lo:hi])
			copy(cp2[w:w+hi-lo], s.cellPos[lo:hi])
			for i := w; i < w+hi-lo; i++ {
				nc2[ns2[cn2[i]]+cp2[i]] = i
			}
			w += hi - lo
			continue
		}
		bEnd := t.bucketPos[e]
		b := bEnd - t.newCnt[e]
		o := lo
		for {
			for o < hi && t.netStamp[s.cellNet[o]] == t.epoch {
				o++ // old incarnation of a changed net: dropped
			}
			if o >= hi && b >= bEnd {
				break
			}
			var net, pos int32
			if b >= bEnd || (o < hi && s.cellNet[o] < ncn[b]) {
				net, pos = s.cellNet[o], s.cellPos[o]
				o++
			} else {
				net, pos = ncn[b], ncp[b]
				b++
			}
			cn2[w] = net
			cp2[w] = pos
			nc2[ns2[net]+pos] = w
			w++
		}
	}
	if int(w) != total2 {
		panic(fmt.Sprintf("tdm: patch wrote %d cells, expected %d", w, total2))
	}

	// Swap the patched views in; the previous arrays become the spares.
	s.edgeStart, t.edgeStart2 = es2, s.edgeStart
	s.netStart, t.netStart2 = ns2, s.netStart
	s.cellNet, t.cellNet2 = cn2, s.cellNet
	s.cellPos, t.cellPos2 = cp2, s.cellPos
	s.netCell, t.netCell2 = nc2, s.netCell
	t.newCellNet, t.newCellPos = ncn, ncp
	if cap(s.cellRatio) >= total2 {
		s.cellRatio = s.cellRatio[:total2]
	} else {
		s.cellRatio = make([]float64, total2)
	}
}
