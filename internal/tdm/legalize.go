package tdm

import "math"

// Legalize rounds a relaxed assignment to legal TDM ratios (Sec. IV-E):
// each ratio is raised to the next even integer, never below 2. Raising a
// ratio lowers its reciprocal, so if the relaxed per-edge reciprocal sums
// were at most 1 the legalized ones are too.
func Legalize(relaxed [][]float64) [][]int64 {
	out := make([][]int64, len(relaxed))
	for n, ts := range relaxed {
		row := make([]int64, len(ts))
		for k, t := range ts {
			row[k] = legalizeRatio(t)
		}
		out[n] = row
	}
	return out
}

// legalizeRatio returns the smallest even integer >= max(t, 2).
func legalizeRatio(t float64) int64 {
	if !(t > 2) { // also catches NaN
		return 2
	}
	c := int64(math.Ceil(t))
	if c%2 != 0 {
		c++
	}
	return c
}

// LegalizePow2 rounds a relaxed assignment up to powers of two (>= 2).
// This reproduces the ratio restriction of the paper's refs [2][3] (Pui et
// al.), which real TDM hardware favours because the per-edge slot frame
// stays as short as the largest ratio. Compared to Legalize it trades
// objective quality for schedulability; the ablation benchmarks quantify
// the cost.
func LegalizePow2(relaxed [][]float64) [][]int64 {
	out := make([][]int64, len(relaxed))
	for n, ts := range relaxed {
		row := make([]int64, len(ts))
		for k, t := range ts {
			row[k] = legalizeRatioPow2(t)
		}
		out[n] = row
	}
	return out
}

// legalizeRatioPow2 returns the smallest power of two >= max(t, 2).
func legalizeRatioPow2(t float64) int64 {
	if !(t > 2) {
		return 2
	}
	p := int64(2)
	for float64(p) < t && p < 1<<62 {
		p <<= 1
	}
	return p
}
