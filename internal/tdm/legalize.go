package tdm

import "tdmroute/internal/problem"

// Legalize rounds a relaxed assignment to legal TDM ratios (Sec. IV-E):
// each ratio is raised to the next even integer, never below 2. Raising a
// ratio lowers its reciprocal, so if the relaxed per-edge reciprocal sums
// were at most 1 the legalized ones are too.
func Legalize(relaxed [][]float64) [][]int64 {
	out := make([][]int64, len(relaxed))
	for n, ts := range relaxed {
		row := make([]int64, len(ts))
		for k, t := range ts {
			row[k] = legalizeRatio(t)
		}
		out[n] = row
	}
	return out
}

// Saturation bounds, aliased from the shared helpers in internal/problem
// (see problem.EvenCeilRatio for the overflow rationale).
const (
	maxEvenRatio = problem.MaxEvenRatio
	maxPow2Ratio = problem.MaxPow2Ratio
)

// legalizeRatio returns the smallest even integer >= max(t, 2), saturating
// at the largest even int64 for +Inf or values beyond the int64 range. It
// delegates to the shared saturating helper so the TDM and baseline stages
// legalize identically.
func legalizeRatio(t float64) int64 { return problem.EvenCeilRatio(t) }

// LegalizePow2 rounds a relaxed assignment up to powers of two (>= 2).
// This reproduces the ratio restriction of the paper's refs [2][3] (Pui et
// al.), which real TDM hardware favours because the per-edge slot frame
// stays as short as the largest ratio. Compared to Legalize it trades
// objective quality for schedulability; the ablation benchmarks quantify
// the cost.
func LegalizePow2(relaxed [][]float64) [][]int64 {
	out := make([][]int64, len(relaxed))
	for n, ts := range relaxed {
		row := make([]int64, len(ts))
		for k, t := range ts {
			row[k] = legalizeRatioPow2(t)
		}
		out[n] = row
	}
	return out
}

// legalizeRatioPow2 returns the smallest power of two >= max(t, 2),
// saturating at 2^62 for +Inf or values beyond that.
func legalizeRatioPow2(t float64) int64 { return problem.Pow2CeilRatio(t) }
