package tdm

import "math"

// Legalize rounds a relaxed assignment to legal TDM ratios (Sec. IV-E):
// each ratio is raised to the next even integer, never below 2. Raising a
// ratio lowers its reciprocal, so if the relaxed per-edge reciprocal sums
// were at most 1 the legalized ones are too.
func Legalize(relaxed [][]float64) [][]int64 {
	out := make([][]int64, len(relaxed))
	for n, ts := range relaxed {
		row := make([]int64, len(ts))
		for k, t := range ts {
			row[k] = legalizeRatio(t)
		}
		out[n] = row
	}
	return out
}

// Saturation bounds for the legalizers. Converting a float64 at or above
// 2^63 to int64 is platform-defined in Go (on amd64 it produces
// math.MinInt64), so relaxed ratios that large — the LR assigns them to
// ungrouped nets whose multipliers are floored near zero — must saturate
// instead of overflowing into a negative "legal" ratio.
const (
	// maxEvenRatio is the largest even int64.
	maxEvenRatio = int64(math.MaxInt64) - 1
	// maxPow2Ratio is the largest power-of-two int64.
	maxPow2Ratio = int64(1) << 62
	// ratioOverflow is 2^63 exactly: any float64 >= it cannot be
	// converted to int64.
	ratioOverflow = float64(math.MaxInt64)
)

// legalizeRatio returns the smallest even integer >= max(t, 2), saturating
// at the largest even int64 for +Inf or values beyond the int64 range.
func legalizeRatio(t float64) int64 {
	if !(t > 2) { // also catches NaN
		return 2
	}
	if t >= ratioOverflow {
		return maxEvenRatio
	}
	c := int64(math.Ceil(t))
	if c%2 != 0 {
		c++
	}
	return c
}

// LegalizePow2 rounds a relaxed assignment up to powers of two (>= 2).
// This reproduces the ratio restriction of the paper's refs [2][3] (Pui et
// al.), which real TDM hardware favours because the per-edge slot frame
// stays as short as the largest ratio. Compared to Legalize it trades
// objective quality for schedulability; the ablation benchmarks quantify
// the cost.
func LegalizePow2(relaxed [][]float64) [][]int64 {
	out := make([][]int64, len(relaxed))
	for n, ts := range relaxed {
		row := make([]int64, len(ts))
		for k, t := range ts {
			row[k] = legalizeRatioPow2(t)
		}
		out[n] = row
	}
	return out
}

// legalizeRatioPow2 returns the smallest power of two >= max(t, 2),
// saturating at 2^62 for +Inf or values beyond that.
func legalizeRatioPow2(t float64) int64 {
	if !(t > 2) { // also catches NaN
		return 2
	}
	if t >= float64(maxPow2Ratio) {
		return maxPow2Ratio
	}
	p := int64(2)
	for float64(p) < t {
		p <<= 1
	}
	return p
}
