package tdm

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tdmroute/internal/eval"
	"tdmroute/internal/problem"
)

func TestLegalizeRatio(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 2}, {1, 2}, {1.9, 2}, {2, 2}, {2.0000001, 4},
		{3, 4}, {3.5, 4}, {4, 4}, {4.2, 6}, {7.9, 8}, {8.1, 10},
		{1e9 + 0.5, 1_000_000_002},
		{math.NaN(), 2},
	}
	for _, c := range cases {
		if got := legalizeRatio(c.in); got != c.want {
			t.Errorf("legalizeRatio(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLegalizeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * math.Pow(10, float64(rng.Intn(8)))
		r := legalizeRatio(x)
		if r < 2 || r%2 != 0 {
			t.Fatalf("legalizeRatio(%g) = %d not legal", x, r)
		}
		if float64(r) < x {
			t.Fatalf("legalizeRatio(%g) = %d decreased the ratio", x, r)
		}
		if float64(r) > x+2 {
			t.Fatalf("legalizeRatio(%g) = %d overshoots by more than 2", x, r)
		}
	}
}

func TestLegalizePreservesShape(t *testing.T) {
	relaxed := [][]float64{{1.5, 3.2}, {}, {7}}
	out := Legalize(relaxed)
	if len(out) != 3 || len(out[0]) != 2 || len(out[1]) != 0 || len(out[2]) != 1 {
		t.Fatalf("shape = %v", out)
	}
	if out[0][0] != 2 || out[0][1] != 4 || out[2][0] != 8 {
		t.Errorf("values = %v", out)
	}
}

func TestRefineEdgeConsumesMarginWithoutViolating(t *testing.T) {
	// Single edge, 3 candidate nets at ratios 10, 10, 4; margin from
	// 1 - (1/10+1/10+1/4) = 0.55.
	cand := []candidate{{0, 0, 10}, {1, 0, 10}, {2, 0, 4}}
	xi := 1.0 - (1.0/10 + 1.0/10 + 1.0/4)
	refineEdge(cand, xi)
	var recip float64
	for _, c := range cand {
		if c.t < 2 || c.t%2 != 0 {
			t.Fatalf("illegal refined ratio %d", c.t)
		}
		if c.t > 10 {
			t.Fatalf("refinement increased a ratio: %d", c.t)
		}
		recip += 1 / float64(c.t)
	}
	if recip > 1+1e-9 {
		t.Fatalf("refined reciprocals sum to %g", recip)
	}
	// Margin must be mostly consumed: no candidate can still drop by 2.
	for _, c := range cand {
		if c.t > 2 {
			extra := 1/float64(c.t-2) - 1/float64(c.t)
			if recip+extra <= 1+1e-12 {
				t.Fatalf("left margin on the table: net %d at %d could still drop", c.net, c.t)
			}
		}
	}
}

func TestRefineEdgeAllEqual(t *testing.T) {
	// All candidates equal; the margin 0.75 allows dropping both all the
	// way to the saturated pattern (2,2): Eq. 21 yields d = 6 in one step.
	cand := []candidate{{0, 0, 8}, {1, 0, 8}}
	xi := 1.0 - (1.0/8 + 1.0/8) // 0.75
	refineEdge(cand, xi)
	if cand[0].t != 2 || cand[1].t != 2 {
		t.Errorf("refined = %d,%d want 2,2", cand[0].t, cand[1].t)
	}
}

func TestRefineEdgeNoMargin(t *testing.T) {
	cand := []candidate{{0, 0, 2}, {1, 0, 2}}
	refineEdge(cand, 0)
	if cand[0].t != 2 || cand[1].t != 2 {
		t.Errorf("refinement changed saturated edge: %+v", cand)
	}
}

func TestRefineEdgeRespectsMinimumTwo(t *testing.T) {
	cand := []candidate{{0, 0, 4}}
	refineEdge(cand, 100) // absurd margin
	if cand[0].t != 2 {
		t.Errorf("refined = %d, want 2", cand[0].t)
	}
}

func TestDecrementEquation21(t *testing.T) {
	// Exact solve check: for the returned float d (before truncation),
	// xi == m*(1/(tmax-d) - 1/tmax).
	xi, tmax, m := 0.3, int64(20), 2
	d := decrement(xi, tmax, m)
	// d is truncated toward zero; verify the untruncated root.
	tm := float64(tmax)
	root := xi * tm * tm / (xi*tm + float64(m))
	consumed := float64(m) * (1/(tm-root) - 1/tm)
	if math.Abs(consumed-xi) > 1e-12 {
		t.Errorf("Eq.21 root check: consumed %g want %g", consumed, xi)
	}
	if float64(d) > root {
		t.Errorf("decrement %d exceeds exact root %g", d, root)
	}
	if decrement(-1, 10, 1) != 0 {
		t.Error("negative margin should yield 0")
	}
	if d := decrement(1e18, 10, 1); d < 8 || d > 10 {
		t.Errorf("huge margin should allow decrementing to the legal minimum, got %d", d)
	}
	// The consumed margin must never exceed xi, even for saturated ratios
	// where the direct Eq. (21) form rounds up to tmax (callers' cap to
	// tmax-2 would then overspend).
	for _, c := range []struct {
		xi   float64
		tmax int64
		m    int
	}{
		{0.3, 20, 2}, {0.5, 1 << 62, 2}, {1e-9, 1000, 5}, {0.9, 1 << 40, 1},
	} {
		d := decrement(c.xi, c.tmax, c.m)
		if d <= 0 {
			continue
		}
		consumed := float64(c.m) * (1/float64(c.tmax-d) - 1/float64(c.tmax))
		if consumed > c.xi*(1+1e-12) {
			t.Errorf("decrement(%g, %d, %d) = %d overspends: consumed %g",
				c.xi, c.tmax, c.m, d, consumed)
		}
	}
}

// buildRefineFixture: path graph with 3 edges, nets and groups arranged so
// edge margins exist after legalization.
func buildRefineFixture() (*problem.Instance, problem.Routing, [][]int64) {
	nets := []problem.Net{
		{Terminals: []int{0, 2}}, // edges 0,1
		{Terminals: []int{1, 3}}, // edges 1,2
		{Terminals: []int{0, 1}}, // edge 0
	}
	groups := []problem.Group{
		{Nets: []int{0, 1}}, // heavy group
		{Nets: []int{2}},
	}
	in := pathInstance(4, nets, groups)
	routes := problem.Routing{{0, 1}, {1, 2}, {0}}
	ratios := [][]int64{{10, 10}, {10, 10}, {10}}
	return in, routes, ratios
}

func TestRefineLowersGTRAndStaysLegal(t *testing.T) {
	in, routes, ratios := buildRefineFixture()
	before := maxGroupTDMInt(in, ratios)
	Refine(context.Background(), in, routes, ratios, DefaultTol)
	after := maxGroupTDMInt(in, ratios)
	if after > before {
		t.Fatalf("refinement worsened GTR: %d -> %d", before, after)
	}
	if after == before {
		t.Fatalf("refinement made no progress on loose fixture (GTR %d)", before)
	}
	sol := &problem.Solution{Routes: routes, Assign: problem.Assignment{Ratios: ratios}}
	if err := problem.ValidateSolution(in, sol); err != nil {
		t.Fatalf("refined solution invalid: %v", err)
	}
}

func TestRefineTargetsMaxGroup(t *testing.T) {
	in, routes, ratios := buildRefineFixture()
	Refine(context.Background(), in, routes, ratios, DefaultTol)
	// Net 2 (the only member of the light group) shares edge 0 with net 0
	// of the heavy group. The margin on edge 0 must have gone to net 0,
	// not net 2.
	if ratios[2][0] != 10 {
		t.Errorf("light-group net was refined: %d", ratios[2][0])
	}
	if ratios[0][0] >= 10 {
		t.Errorf("heavy-group net not refined on shared edge: %d", ratios[0][0])
	}
}

func TestRefineSkipsUngroupedOnlyEdges(t *testing.T) {
	nets := []problem.Net{{Terminals: []int{0, 1}}}
	in := pathInstance(2, nets, nil)
	routes := problem.Routing{{0}}
	ratios := [][]int64{{8}}
	Refine(context.Background(), in, routes, ratios, DefaultTol)
	if ratios[0][0] != 8 {
		t.Errorf("ungrouped net refined: %d", ratios[0][0])
	}
}

func TestAssignEndToEndRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		in, routes := randomAssignInstance(rng)
		assign, rep, err := Assign(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 2000})
		if err != nil {
			t.Fatal(err)
		}
		sol := &problem.Solution{Routes: routes, Assign: assign}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		gtr, _ := eval.MaxGroupTDM(in, sol)
		if gtr != rep.GTRMax {
			t.Errorf("trial %d: report GTRMax %d != evaluated %d", trial, rep.GTRMax, gtr)
		}
		if rep.GTRMax > rep.GTRNoRef {
			t.Errorf("trial %d: refinement worsened: %d > %d", trial, rep.GTRMax, rep.GTRNoRef)
		}
		if float64(rep.GTRMax) < rep.LowerBound-1e-6*rep.LowerBound {
			t.Errorf("trial %d: legal GTR %d below LB %g", trial, rep.GTRMax, rep.LowerBound)
		}
		if rep.RelaxedZ < rep.LowerBound-1e-6*rep.LowerBound {
			t.Errorf("trial %d: relaxed z %g below LB %g", trial, rep.RelaxedZ, rep.LowerBound)
		}
	}
}

func TestAssignRejectsMismatchedRouting(t *testing.T) {
	in, routes := singleEdgeInstance(2)
	if _, _, err := Assign(context.Background(), in, routes[:1], Options{}); err == nil {
		t.Error("expected error for mismatched routing")
	}
}

func TestAssignNoRefineOption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in, routes := randomAssignInstance(rng)
	_, rep, err := Assign(context.Background(), in, routes, Options{RefinePasses: -1, Epsilon: 1e-4, MaxIter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GTRMax != rep.GTRNoRef {
		t.Errorf("RefinePasses<0 still refined: %d != %d", rep.GTRMax, rep.GTRNoRef)
	}
}

func TestAssignMultiPassNotWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in, routes := randomAssignInstance(rng)
	_, one, err := Assign(context.Background(), in, routes, Options{RefinePasses: 1, Epsilon: 1e-4, MaxIter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_, three, err := Assign(context.Background(), in, routes, Options{RefinePasses: 3, Epsilon: 1e-4, MaxIter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if three.GTRMax > one.GTRMax {
		t.Errorf("3-pass refinement worse than 1-pass: %d > %d", three.GTRMax, one.GTRMax)
	}
}
