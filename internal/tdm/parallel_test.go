package tdm

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// ringGraph builds an n-cycle whose edge k connects vertices k and (k+1)%n.
func ringGraph(n int) *graph.Graph {
	g := graph.New(n, n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestParallelLRMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 5; trial++ {
		in, routes := randomAssignInstance(rng)
		serial, zs, lbs, is, cs, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 800})
		par, zp, lbp, ip, cp, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 800, Workers: 4})
		// These tiny instances stay below the parallel chunking threshold,
		// so the arithmetic is bit-identical.
		if zs != zp || lbs != lbp || is != ip || cs != cp {
			t.Fatalf("trial %d: serial (z=%g lb=%g it=%d) vs parallel (z=%g lb=%g it=%d)",
				trial, zs, lbs, is, zp, lbp, ip)
		}
		for n := range serial {
			for k := range serial[n] {
				if serial[n][k] != par[n][k] {
					t.Fatalf("trial %d: ratio mismatch at net %d pos %d", trial, n, k)
				}
			}
		}
	}
}

func TestParallelLRLargeInstanceClose(t *testing.T) {
	// Above the chunking threshold float sums may differ in the last
	// ulps; z, LB and the legalized GTR must agree to high precision.
	in, routes := bigSyntheticTopology(4000, 300, 2500)
	serial, zs, lbs, _, _, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 200})
	par, zp, lbp, _, _, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 200, Workers: 8})
	if math.Abs(zs-zp) > 1e-6*zs || math.Abs(lbs-lbp) > 1e-6*lbs {
		t.Fatalf("serial z=%g lb=%g vs parallel z=%g lb=%g", zs, lbs, zp, lbp)
	}
	a := maxGroupTDMInt(in, Legalize(serial))
	b := maxGroupTDMInt(in, Legalize(par))
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Fatalf("legalized GTR: serial %d vs parallel %d", a, b)
	}
}

func TestParallelLRDeterministicAcrossRuns(t *testing.T) {
	in, routes := bigSyntheticTopology(3000, 200, 1500)
	_, z1, lb1, it1, _, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 150, Workers: 6})
	_, z2, lb2, it2, _, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 150, Workers: 6})
	if z1 != z2 || lb1 != lb2 || it1 != it2 {
		t.Fatalf("same worker count differs across runs: z %g/%g lb %g/%g it %d/%d",
			z1, z2, lb1, lb2, it1, it2)
	}
}

// bigSyntheticTopology builds a wide instance (many nets over a ring) that
// exceeds the parallel chunking threshold.
func bigSyntheticTopology(nets, vertices, groups int) (*problem.Instance, problem.Routing) {
	rng := rand.New(rand.NewSource(123))
	netList := make([]problem.Net, nets)
	routes := make(problem.Routing, nets)
	for i := 0; i < nets; i++ {
		u := rng.Intn(vertices)
		span := 1 + rng.Intn(4)
		netList[i].Terminals = []int{u, (u + span) % vertices}
		edges := make([]int, span)
		for k := 0; k < span; k++ {
			edges[k] = (u + k) % vertices // ring edge ids
		}
		routes[i] = edges
	}
	groupList := make([]problem.Group, groups)
	for gi := 0; gi < groups; gi++ {
		m := 1 + rng.Intn(4)
		seen := map[int]bool{}
		for j := 0; j < m; j++ {
			n := rng.Intn(nets)
			if !seen[n] {
				seen[n] = true
				groupList[gi].Nets = append(groupList[gi].Nets, n)
			}
		}
		sortInts(groupList[gi].Nets)
	}
	in := &problem.Instance{Name: "big", Nets: netList, Groups: groupList}
	in.G = ringGraph(vertices)
	in.RebuildNetGroups()
	return in, routes
}

func BenchmarkLRParallel(b *testing.B) {
	in, routes := bigSyntheticTopology(40000, 300, 25000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunLR(context.Background(), in, routes, Options{Epsilon: 1e-12, MaxIter: 30, Workers: workers})
			}
		})
	}
}

func benchName(workers int) string {
	return "workers-" + string(rune('0'+workers))
}
