package tdm

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tdmroute/internal/problem"
)

// Property tests of the TDM-assignment invariants under testing/quick.

func TestQuickLegalizeRatio(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || x > 1e15 {
			x = 1e6
		}
		r := legalizeRatio(x)
		if r < 2 || r%2 != 0 {
			return false
		}
		if x > 0 && float64(r) < x {
			return false
		}
		return x <= 2 || float64(r) <= x+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCauchySchwarzPatternIsOptimal(t *testing.T) {
	// For any positive weight vector π, the closed-form pattern minimizes
	// Σ π_n t_n subject to Σ 1/t_n = 1 against random feasible patterns.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		pi := make([]float64, k)
		var s float64
		for i := range pi {
			pi[i] = math.Abs(rng.NormFloat64()) + 1e-3
			s += math.Sqrt(pi[i])
		}
		opt := s * s // Σ π (S/√π) = S Σ √π = S².
		for trial := 0; trial < 10; trial++ {
			w := make([]float64, k)
			var recip float64
			for i := range w {
				w[i] = math.Abs(rng.NormFloat64()) + 1e-3
				recip += 1 / w[i]
			}
			var obj float64
			for i := range w {
				obj += pi[i] * w[i] * recip // scaled so Σ 1/(w*recip) = 1
			}
			if obj < opt-1e-9*opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickAssignAlwaysLegal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, routes := randomAssignInstance(rng)
		assign, rep, err := Assign(context.Background(), in, routes, Options{Epsilon: 1e-3, MaxIter: 300})
		if err != nil {
			return false
		}
		sol := &problem.Solution{Routes: routes, Assign: assign}
		if problem.ValidateSolution(in, sol) != nil {
			return false
		}
		if rep.GTRMax > rep.GTRNoRef {
			return false
		}
		return float64(rep.GTRMax) >= rep.LowerBound-1e-6*math.Max(1, rep.LowerBound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickRefinementNeverBreaksEdgeBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random candidate multiset with a consistent margin.
		k := 1 + rng.Intn(10)
		cand := make([]candidate, k)
		var recip float64
		for i := range cand {
			r := int64(2 + 2*rng.Intn(12))
			cand[i] = candidate{net: i, pos: 0, t: r}
			recip += 1 / float64(r)
		}
		if recip > 1 {
			return true // infeasible start: not a refinement input
		}
		xi := 1 - DefaultTol - recip
		refineEdge(cand, xi)
		var after float64
		for _, c := range cand {
			if c.t < 2 || c.t%2 != 0 {
				return false
			}
			after += 1 / float64(c.t)
		}
		return after <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickGroupWindowsFiniteStats(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gw := newGroupWindows(3, 1+rng.Intn(6))
		for i := 0; i < 200; i++ {
			g := rng.Intn(3)
			x := rng.Float64()
			z := gw.zscore(g, x)
			if math.IsNaN(z) || math.IsInf(z, 0) {
				return false
			}
			gw.push(g, x)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
