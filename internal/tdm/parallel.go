package tdm

import "sync"

// parallelFor splits [0, n) into one contiguous chunk per worker and runs
// fn(chunk, start, end) concurrently. Chunk boundaries depend only on n and
// workers, and callers combine per-chunk partial results in chunk order, so
// results are deterministic for a fixed worker count. workers <= 1 runs
// inline.
func parallelFor(n, workers int, fn func(chunk, start, end int)) {
	if workers <= 1 || n < workers*parallelMinChunk {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunkSize := (n + workers - 1) / workers
	chunk := 0
	for start := 0; start < n; start += chunkSize {
		end := start + chunkSize
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(c, s, e int) {
			defer wg.Done()
			fn(c, s, e)
		}(chunk, start, end)
		chunk++
	}
	wg.Wait()
}

// parallelMinChunk avoids spawning goroutines for trivially small loops.
const parallelMinChunk = 256

// numChunks returns how many chunks parallelFor will use, for sizing
// partial-result buffers.
func numChunks(n, workers int) int {
	if workers <= 1 || n < workers*parallelMinChunk {
		return 1
	}
	chunkSize := (n + workers - 1) / workers
	return (n + chunkSize - 1) / chunkSize
}
