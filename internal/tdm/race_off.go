//go:build !race

package tdm

// raceEnabled reports whether the race detector is active; allocation-count
// guards are skipped under it (instrumentation allocates).
const raceEnabled = false
