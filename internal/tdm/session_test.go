package tdm

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// mutateRoutes rewrites a random subset of 2-terminal routes using freshly
// randomized edge costs, returning the new routing (the input is not
// modified) and the changed-net list. Some listed nets may receive the same
// path they already had — the Session contract allows that.
func mutateRoutes(rng *rand.Rand, in *problem.Instance, routes problem.Routing) (problem.Routing, []int) {
	next := append(problem.Routing(nil), routes...)
	costs := make([]uint64, in.G.NumEdges())
	for e := range costs {
		costs[e] = 1 + uint64(rng.Intn(5))
	}
	d := graph.NewDijkstra(in.G)
	var changed []int
	for n := range next {
		if rng.Intn(3) != 0 {
			continue
		}
		term := in.Nets[n].Terminals
		path, _, ok := d.ShortestPath(term[0], term[1], func(e int) uint64 { return costs[e] }, nil)
		if !ok {
			continue
		}
		next[n] = path
		changed = append(changed, n)
	}
	// Exercise the contract's slack: a listed net with an unchanged route.
	if len(routes) > 0 {
		changed = append(changed, rng.Intn(len(routes)))
	}
	return next, changed
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSessionPatchMatchesColdBuild drives random reroute sequences through
// patch and checks all five CSR arrays stay element-for-element equal to a
// cold newLRState build on the same routing. This is the exactness proof of
// the splice: equal arrays plus equal multiplier init make every downstream
// float operation bit-identical.
func TestSessionPatchMatchesColdBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	opt := Options{}.withDefaults()
	for trial := 0; trial < 30; trial++ {
		in, routes := randomAssignInstance(rng)
		ses := &Session{
			in:     in,
			s:      newLRState(in, routes, opt),
			routes: append(problem.Routing(nil), routes...),
		}
		for step := 0; step < 6; step++ {
			next, changed := mutateRoutes(rng, in, ses.routes)
			ses.patch(next, changed)
			ses.routes = append(ses.routes[:0], next...)
			cold := newLRState(in, next, opt)
			if !equalI32(ses.s.edgeStart, cold.edgeStart) {
				t.Fatalf("trial %d step %d: edgeStart diverged", trial, step)
			}
			if !equalI32(ses.s.cellNet, cold.cellNet) {
				t.Fatalf("trial %d step %d: cellNet diverged", trial, step)
			}
			if !equalI32(ses.s.cellPos, cold.cellPos) {
				t.Fatalf("trial %d step %d: cellPos diverged", trial, step)
			}
			if !equalI32(ses.s.netStart, cold.netStart) {
				t.Fatalf("trial %d step %d: netStart diverged", trial, step)
			}
			if !equalI32(ses.s.netCell, cold.netCell) {
				t.Fatalf("trial %d step %d: netCell diverged", trial, step)
			}
			if len(ses.s.cellRatio) != len(cold.cellRatio) {
				t.Fatalf("trial %d step %d: cellRatio len %d want %d",
					trial, step, len(ses.s.cellRatio), len(cold.cellRatio))
			}
		}
	}
}

// sameFloat compares bit patterns: the session path must reproduce the cold
// path exactly, not merely within a tolerance.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestSessionRunLRMatchesCold runs a reroute sequence through one Session
// and, at every step, through a cold package RunLR, requiring bit-identical
// ratios, objectives, and iteration counts at worker counts 1 and 4.
func TestSessionRunLRMatchesCold(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rng := rand.New(rand.NewSource(101))
		for trial := 0; trial < 8; trial++ {
			in, routes := randomAssignInstance(rng)
			opt := Options{Workers: workers, MaxIter: 40}
			ses := NewSession(in)
			cur := routes
			var changed []int
			for step := 0; step < 4; step++ {
				wr, wz, wlb, wit, wconv, wstop := ses.RunLR(context.Background(), cur, changed, opt)
				cr, cz, clb, cit, cconv, cstop := RunLR(context.Background(), in, cur, opt)
				if (wstop == nil) != (cstop == nil) {
					t.Fatalf("workers=%d trial %d step %d: stopped %v vs %v", workers, trial, step, wstop, cstop)
				}
				if !sameFloat(wz, cz) || !sameFloat(wlb, clb) || wit != cit || wconv != cconv {
					t.Fatalf("workers=%d trial %d step %d: (z=%v lb=%v it=%d conv=%v) vs cold (z=%v lb=%v it=%d conv=%v)",
						workers, trial, step, wz, wlb, wit, wconv, cz, clb, cit, cconv)
				}
				if len(wr) != len(cr) {
					t.Fatalf("workers=%d trial %d step %d: ratios len %d vs %d", workers, trial, step, len(wr), len(cr))
				}
				for n := range wr {
					if len(wr[n]) != len(cr[n]) {
						t.Fatalf("workers=%d trial %d step %d: net %d ratio len", workers, trial, step, n)
					}
					for k := range wr[n] {
						if !sameFloat(wr[n][k], cr[n][k]) {
							t.Fatalf("workers=%d trial %d step %d: ratio[%d][%d] = %v vs %v",
								workers, trial, step, n, k, wr[n][k], cr[n][k])
						}
					}
				}
				cur, changed = mutateRoutes(rng, in, cur)
			}
		}
	}
}

// TestSessionAssignMatchesCold extends the equivalence through legalization
// and refinement: the full session Assign must reproduce the package Assign
// integer ratios and report on every topology of a reroute sequence.
func TestSessionAssignMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 10; trial++ {
		in, routes := randomAssignInstance(rng)
		opt := Options{MaxIter: 30}
		ses := NewSession(in)
		cur := routes
		var changed []int
		for step := 0; step < 3; step++ {
			wa, wrep, werr := ses.Assign(context.Background(), cur, changed, opt)
			ca, crep, cerr := Assign(context.Background(), in, cur, opt)
			if (werr == nil) != (cerr == nil) {
				t.Fatalf("trial %d step %d: err %v vs %v", trial, step, werr, cerr)
			}
			if wrep.GTRMax != crep.GTRMax || wrep.GTRNoRef != crep.GTRNoRef ||
				wrep.Iterations != crep.Iterations || wrep.Converged != crep.Converged {
				t.Fatalf("trial %d step %d: report %+v vs %+v", trial, step, wrep, crep)
			}
			if len(wa.Ratios) != len(ca.Ratios) {
				t.Fatalf("trial %d step %d: ratios len", trial, step)
			}
			for n := range wa.Ratios {
				for k := range wa.Ratios[n] {
					if wa.Ratios[n][k] != ca.Ratios[n][k] {
						t.Fatalf("trial %d step %d: ratio[%d][%d] = %d vs %d",
							trial, step, n, k, wa.Ratios[n][k], ca.Ratios[n][k])
					}
				}
			}
			cur, changed = mutateRoutes(rng, in, cur)
		}
	}
}

// TestSessionSurvivesCancelledRound checks a cancelled round leaves the
// session consistent: the CSR state was already patched to the round's
// topology, so continuing the sequence must still match cold builds.
func TestSessionSurvivesCancelledRound(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	in, routes := randomAssignInstance(rng)
	opt := Options{MaxIter: 40}
	ses := NewSession(in)
	if _, _, _, _, _, stop := ses.RunLR(context.Background(), routes, nil, opt); stop != nil {
		t.Fatal(stop)
	}
	next, changed := mutateRoutes(rng, in, routes)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ratios, _, _, _, _, stop := ses.RunLR(ctx, next, changed, opt)
	if stop == nil {
		t.Fatal("cancelled round must report the stop cause")
	}
	if ratios == nil {
		t.Fatal("cancelled round must still return the fallback incumbent")
	}
	// The next (uncancelled) round continues from the patched state.
	next2, changed2 := mutateRoutes(rng, in, next)
	wr, wz, _, _, _, stop := ses.RunLR(context.Background(), next2, changed2, opt)
	if stop != nil {
		t.Fatal(stop)
	}
	cr, cz, _, _, _, _ := RunLR(context.Background(), in, next2, opt)
	if !sameFloat(wz, cz) {
		t.Fatalf("post-cancel round diverged: z=%v vs %v", wz, cz)
	}
	for n := range wr {
		for k := range wr[n] {
			if !sameFloat(wr[n][k], cr[n][k]) {
				t.Fatalf("post-cancel ratio[%d][%d] = %v vs %v", n, k, wr[n][k], cr[n][k])
			}
		}
	}
}

// TestSessionPatchZeroAlloc pins the steady-state claim: once the spare
// buffers have grown to the working size, patching an unchanged round and
// resetting the run state allocates nothing.
func TestSessionPatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	rng := rand.New(rand.NewSource(404))
	in, routes := randomAssignInstance(rng)
	opt := Options{}.withDefaults()
	ses := &Session{
		in:     in,
		s:      newLRState(in, routes, opt),
		routes: append(problem.Routing(nil), routes...),
	}
	changed := make([]int, len(routes))
	for n := range changed {
		changed[n] = n
	}
	// Warm the scratch and spare buffers.
	for i := 0; i < 3; i++ {
		ses.patch(routes, changed)
		ses.s.resetRun(opt)
	}
	allocs := testing.AllocsPerRun(100, func() {
		ses.patch(routes, changed)
		ses.s.resetRun(opt)
	})
	if allocs != 0 {
		t.Fatalf("patched-LR setup allocates %v times per round, want 0", allocs)
	}
}
