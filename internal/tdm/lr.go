package tdm

import (
	"context"
	"math"

	"tdmroute/internal/par"
	"tdmroute/internal/problem"
	"tdmroute/internal/stats"
)

// lrState carries the per-iteration work arrays of Algorithm 1. The
// (net, edge) incidence is stored twice in CSR form — edge-major for the
// per-edge pattern generation and net-major for the per-net TDM sums — so
// the inner loops stream through flat arrays.
type lrState struct {
	in  *problem.Instance
	opt Options

	// Edge-major cells: cells of edge e are cellNet[edgeStart[e]:edgeStart[e+1]].
	edgeStart []int32
	cellNet   []int32
	cellPos   []int32 // route position of the cell within its net
	// Net-major view: the flat cell indices of net n are
	// netCell[netStart[n]:netStart[n+1]], ordered by route position.
	netStart []int32
	netCell  []int32

	// Flat membership CSRs mirroring in.Nets[n].Groups and
	// in.Groups[gi].Nets in declaration order, so the two hottest loops of
	// every iteration (computePi, groupTDMs) stream int32 arrays instead of
	// chasing per-net/per-group slice headers. Iteration order is identical
	// to the nested slices, so every float accumulation is bit-identical.
	// Rebuilt by resetRun: group membership can change across ECO patches.
	netGrpStart []int32
	netGrp      []int32
	grpNetStart []int32
	grpNet      []int32

	partialBuf []float64 // reusable per-chunk partial-result buffer

	lambda    []float64 // λ_g, kept projected to sum 1
	pi        []float64 // π_n = Σ_{g ∋ n} λ_g
	sqrtPi    []float64 // sqrt(max(π_n, PiFloor)) — pattern weights
	sqrtPiX   []float64 // sqrt(π_n) exact — lower-bound weights
	cellRatio []float64 // t_en per edge-major cell
	netTDM    []float64
	grpTDM    []float64

	windows *groupWindows // SMA history of normalized group TDMs
}

// newLRState allocates state for the given topology.
func newLRState(in *problem.Instance, routes problem.Routing, opt Options) *lrState {
	numEdges := in.G.NumEdges()
	s := &lrState{
		in:      in,
		opt:     opt,
		lambda:  make([]float64, len(in.Groups)),
		pi:      make([]float64, len(in.Nets)),
		sqrtPi:  make([]float64, len(in.Nets)),
		sqrtPiX: make([]float64, len(in.Nets)),
		netTDM:  make([]float64, len(in.Nets)),
		grpTDM:  make([]float64, len(in.Groups)),
		windows: newGroupWindows(len(in.Groups), opt.Window),
	}
	// Build both CSR views in two counting passes.
	s.edgeStart = make([]int32, numEdges+1)
	for _, edges := range routes {
		for _, e := range edges {
			s.edgeStart[e+1]++
		}
	}
	for e := 0; e < numEdges; e++ {
		s.edgeStart[e+1] += s.edgeStart[e]
	}
	totalCells := int(s.edgeStart[numEdges])
	s.cellNet = make([]int32, totalCells)
	s.cellPos = make([]int32, totalCells)
	s.cellRatio = make([]float64, totalCells)
	s.netStart = make([]int32, len(routes)+1)
	for n, edges := range routes {
		s.netStart[n+1] = s.netStart[n] + int32(len(edges))
	}
	s.netCell = make([]int32, totalCells)
	fill := append([]int32(nil), s.edgeStart[:numEdges]...)
	for n, edges := range routes {
		for k, e := range edges {
			idx := fill[e]
			fill[e]++
			s.cellNet[idx] = int32(n)
			s.cellPos[idx] = int32(k)
			s.netCell[s.netStart[n]+int32(k)] = idx
		}
	}
	s.buildMembership()
	s.initLambda(opt)
	return s
}

// buildMembership (re)builds the flat membership CSRs from the instance.
func (s *lrState) buildMembership() {
	nets, groups := s.in.Nets, s.in.Groups
	s.netGrpStart = append(s.netGrpStart[:0], 0)
	s.netGrp = s.netGrp[:0]
	for n := range nets {
		for _, gi := range nets[n].Groups {
			s.netGrp = append(s.netGrp, int32(gi))
		}
		s.netGrpStart = append(s.netGrpStart, int32(len(s.netGrp)))
	}
	s.grpNetStart = append(s.grpNetStart[:0], 0)
	s.grpNet = s.grpNet[:0]
	for gi := range groups {
		for _, n := range groups[gi].Nets {
			s.grpNet = append(s.grpNet, int32(n))
		}
		s.grpNetStart = append(s.grpNetStart, int32(len(s.grpNet)))
	}
}

// scratch returns the reusable n-slot partial-result buffer. Every chunk of
// the following par.For writes its slot before any is read, so reuse across
// stages never observes stale values.
func (s *lrState) scratch(n int) []float64 {
	if cap(s.partialBuf) < n {
		s.partialBuf = make([]float64, n)
	}
	return s.partialBuf[:n]
}

// initLambda performs line 2 of Algorithm 1: uniform initial multipliers, or
// a warm start projected back onto the simplex.
func (s *lrState) initLambda(opt Options) {
	if g := len(s.in.Groups); g > 0 {
		if len(opt.WarmLambda) == g {
			// Floor the warm start at a small fraction of uniform: a long
			// converged run concentrates λ on its critical groups and lets
			// the rest decay toward minLambda, and the multiplicative update
			// regrows a vanished multiplier only at the normalization drift
			// rate — hundreds of iterations when an ECO shifts criticality
			// to a decayed group. The floor bounds that recovery while the
			// captured concentration still seeds the restart.
			floor := warmLambdaFloor / float64(g)
			var total float64
			for i, v := range opt.WarmLambda {
				if v < floor {
					v = floor
				}
				s.lambda[i] = v
				total += v
			}
			inv := 1 / total
			for i := range s.lambda {
				s.lambda[i] *= inv
			}
		} else {
			for i := range s.lambda {
				s.lambda[i] = 1 / float64(g)
			}
		}
	}
}

// resetRun returns a (possibly patched) state to the exact condition
// newLRState leaves a fresh one in: options installed, multipliers
// re-initialized per line 2 of Algorithm 1, SMA windows emptied. opt must
// already have defaults applied. The cell arrays are untouched — cellRatio
// is fully regenerated by the first solveLRS sweep before anything reads it,
// so stale pattern values never leak into a new run.
func (s *lrState) resetRun(opt Options) {
	s.opt = opt
	s.buildMembership()
	s.initLambda(opt)
	if s.windows.w != opt.Window {
		s.windows = newGroupWindows(len(s.in.Groups), opt.Window)
	} else {
		s.windows.reset()
	}
}

// computePi evaluates π_n = Σ_{g ∋ n} λ_g and the derived square roots.
func (s *lrState) computePi() {
	par.For(len(s.pi), s.opt.Workers, func(_, start, end int) {
		for n := start; n < end; n++ {
			var p float64
			for _, gi := range s.netGrp[s.netGrpStart[n]:s.netGrpStart[n+1]] {
				p += s.lambda[gi]
			}
			s.pi[n] = p
			s.sqrtPiX[n] = math.Sqrt(p)
			if p < s.opt.PiFloor {
				p = s.opt.PiFloor
			}
			s.sqrtPi[n] = math.Sqrt(p)
		}
	})
}

// solveLRS generates the optimal pattern of every edge via Eq. (13):
// t_en = (Σ_{n̂ ∈ N_e} √π_n̂) / √π_n, and returns the Lagrangian dual value
// L_λ = Σ_e (Σ_{n ∈ N_e} √π_n)² (Eq. 11), which lower-bounds the primal
// optimum because the multipliers are kept on the simplex Σλ = 1.
func (s *lrState) solveLRS() (lowerBound float64) {
	// Every cell belongs to exactly one edge, so per-edge pattern writes
	// from different chunks never alias.
	numEdges := len(s.edgeStart) - 1
	partial := s.scratch(par.NumChunks(numEdges, s.opt.Workers))
	par.For(numEdges, s.opt.Workers, func(chunk, start, end int) {
		var lb float64
		for e := start; e < end; e++ {
			lo, hi := s.edgeStart[e], s.edgeStart[e+1]
			if lo == hi {
				continue
			}
			var sum, sumExact float64
			for i := lo; i < hi; i++ {
				n := s.cellNet[i]
				sum += s.sqrtPi[n]
				sumExact += s.sqrtPiX[n]
			}
			for i := lo; i < hi; i++ {
				s.cellRatio[i] = sum / s.sqrtPi[s.cellNet[i]]
			}
			lb += sumExact * sumExact
		}
		partial[chunk] = lb
	})
	for _, p := range partial {
		lowerBound += p
	}
	return lowerBound
}

// groupTDMs evaluates every group's fractional TDM ratio under the current
// patterns and returns z = max_g GTR_g (0 when there are no groups).
func (s *lrState) groupTDMs() (z float64) {
	par.For(len(s.netTDM), s.opt.Workers, func(_, start, end int) {
		for n := start; n < end; n++ {
			var sum float64
			for _, idx := range s.netCell[s.netStart[n]:s.netStart[n+1]] {
				sum += s.cellRatio[idx]
			}
			s.netTDM[n] = sum
		}
	})
	partial := s.scratch(par.NumChunks(len(s.grpTDM), s.opt.Workers))
	par.For(len(s.grpTDM), s.opt.Workers, func(chunk, start, end int) {
		var zc float64
		for gi := start; gi < end; gi++ {
			var sum float64
			for _, n := range s.grpNet[s.grpNetStart[gi]:s.grpNetStart[gi+1]] {
				sum += s.netTDM[n]
			}
			s.grpTDM[gi] = sum
			if sum > zc {
				zc = sum
			}
		}
		partial[chunk] = zc
	})
	for _, p := range partial {
		if p > z {
			z = p
		}
	}
	return z
}

// updateMultipliers applies Eq. (15) with the acceleration factor of
// Eq. (16), then projects λ back onto the simplex to restore the KKT
// condition Σλ = 1.
func (s *lrState) updateMultipliers(z float64) {
	if z <= 0 {
		return
	}
	alpha, beta := s.opt.Alpha, s.opt.Beta
	// k at a zero z-score, precomputed: zscore returns exactly 0 for every
	// group of the first two iterations and for every degenerate window, so
	// caching one Sigmoid(±0) (both signed zeros give exactly 1/2) removes
	// the transcendental from those lanes without changing a bit.
	k0 := (alpha-1)*stats.Sigmoid(0) + 1
	// A multiplier already at the floor with norm <= 1 and alpha >= 0 stays
	// at the floor: k > 0 then, so Pow(norm, k) <= 1, the rounded product
	// cannot exceed minLambda (rounding is monotone), and the clamp puts it
	// back. The window still records the sample — only the Pow/Sigmoid work
	// is skipped, not the history.
	floorFast := alpha >= 0
	partial := s.scratch(par.NumChunks(len(s.lambda), s.opt.Workers))
	par.For(len(s.lambda), s.opt.Workers, func(chunk, start, end int) {
		var sum float64
		for gi := start; gi < end; gi++ {
			norm := s.grpTDM[gi] / z // normalized group TDM ∈ (0, 1]
			lg := s.lambda[gi]
			//lint:ignore floateq the floor is an exact-assignment sentinel (the clamp stores the minLambda constant verbatim), so == is a tag test, not a numeric comparison
			if floorFast && lg == minLambda && norm <= 1 {
				s.windows.push(gi, norm)
				sum += minLambda
				continue
			}
			x := s.windows.zscore(gi, norm)
			k := k0
			if x != 0 {
				k = (alpha-1)*stats.Sigmoid(beta*x) + 1
			}
			s.windows.push(gi, norm)
			lg *= math.Pow(norm, k)
			if lg < minLambda {
				lg = minLambda // keep multiplicative updates alive
			}
			s.lambda[gi] = lg
			sum += lg
		}
		partial[chunk] = sum
	})
	var total float64
	for _, p := range partial {
		total += p
	}
	if total > 0 {
		inv := 1 / total
		par.For(len(s.lambda), s.opt.Workers, func(_, start, end int) {
			for gi := start; gi < end; gi++ {
				s.lambda[gi] *= inv
			}
		})
	}
}

// minLambda prevents multipliers of persistently non-critical groups from
// underflowing to exactly zero, which would freeze them forever under the
// multiplicative update.
const minLambda = 1e-300

// warmLambdaFloor is the warm-start floor as a fraction of the uniform
// multiplier 1/g; see initLambda.
const warmLambdaFloor = 1e-3

// updateSubgradient applies the classic projected subgradient ascent with a
// Polyak step, kept for the ablation study of the Sec. IV-C update rule:
//
//	λ_g ← max(λ_g + step·(GTR_g − z), floor),  step = s·(ẑ − LB)/‖grad‖²
//
// where ẑ is the best primal value seen (an upper estimate of the dual
// optimum), followed by simplex projection.
func (s *lrState) updateSubgradient(z, lb, bestZ float64) {
	if z <= 0 {
		return
	}
	var norm2 float64
	for gi := range s.lambda {
		g := s.grpTDM[gi] - z
		norm2 += g * g
	}
	if norm2 == 0 {
		return // all groups tied at the max: λ is optimal for this t
	}
	gap := bestZ - lb
	if gap <= 0 {
		return
	}
	step := s.opt.SubgradientStep * gap / norm2
	var total float64
	const floor = 1e-12
	for gi := range s.lambda {
		lg := s.lambda[gi] + step*(s.grpTDM[gi]-z)
		if lg < floor {
			lg = floor
		}
		s.lambda[gi] = lg
		total += lg
	}
	if total > 0 {
		inv := 1 / total
		for gi := range s.lambda {
			s.lambda[gi] *= inv
		}
	}
}

// RunLR executes Algorithm 1 on the topology and returns the best relaxed
// assignment found, its fractional objective z, the best lower bound, the
// iteration count, and whether the ε criterion was reached.
//
// The convergence test compares the running z against the best (largest)
// dual value seen so far; every dual value is a valid lower bound, so using
// the best one only tightens the test.
//
// RunLR is the anytime core of the pipeline: the best-so-far pattern set is
// snapshotted at every improving iteration boundary, the context is checked
// once per iteration (never inside the parallel inner loops, so a fixed
// cancellation point yields a bit-identical result), and worker panics are
// contained. When the loop stops early — ctx cancelled or a chunk panicked
// — stopped carries the cause (ctx.Err() or a *par.PanicError) and the
// returned ratios are the incumbent: the best completed sweep, or a single
// fallback pattern pass when no sweep completed. ratios is nil only when
// even the fallback pass failed; stopped then holds the terminal error.
func RunLR(ctx context.Context, in *problem.Instance, routes problem.Routing, opt Options) (ratios [][]float64, z, lb float64, iters int, converged bool, stopped error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	var s *lrState
	if err := par.Capture(func() error {
		s = newLRState(in, routes, opt)
		return nil
	}); err != nil {
		return nil, 0, 0, 0, false, err
	}
	ratios, z, lb, iters, converged, stopped, _ = runLRCore(ctx, s, routes, opt, nil)
	return ratios, z, lb, iters, converged, stopped
}

// runLRCore is the iteration loop of Algorithm 1 over a prebuilt state. It
// is shared by the cold RunLR above and the Session warm path: the state's
// multipliers and windows must already be initialized for a fresh run (the
// cold constructor and Session.reset are equivalent by construction).
//
// bestBuf, when non-nil, must have len(s.cellRatio); it is reused as the
// best-pattern snapshot so a session's steady state allocates nothing per
// round beyond the returned per-net views. The possibly (re)allocated
// buffer is handed back as bestOut for the caller to keep.
func runLRCore(ctx context.Context, s *lrState, routes problem.Routing, opt Options, bestBuf []float64) (ratios [][]float64, z, lb float64, iters int, converged bool, stopped error, bestOut []float64) {
	bestZ := math.Inf(1)
	bestLB := 0.0
	best := bestBuf
	haveBest := false

	stopped = par.Capture(func() error {
		for iters = 0; iters < opt.maxIter(); iters++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			s.computePi()
			curLB := s.solveLRS()
			curZ := s.groupTDMs()

			if curLB > bestLB {
				bestLB = curLB
			}
			if curZ < bestZ {
				bestZ = curZ
				if best == nil {
					best = make([]float64, len(s.cellRatio))
				}
				copy(best, s.cellRatio)
				haveBest = true
			}
			if opt.Trace != nil {
				opt.Trace(iters, curZ, curLB)
			}
			if bestLB > 0 && (bestZ-bestLB)/bestLB <= opt.Epsilon {
				iters++
				converged = true
				break
			}
			switch opt.Update {
			case UpdateSubgradient:
				s.updateSubgradient(curZ, curLB, bestZ)
			default:
				s.updateMultipliers(curZ)
			}
		}
		return nil
	})

	if !haveBest {
		// MaxIter == 0, no groups, or stopped before the first sweep
		// completed: fall back to a single pattern pass with the current
		// multipliers so the caller always receives a legalizable
		// incumbent. The pass is bounded work, so it runs even after a
		// deadline — anytime means "returns something legal", not "stops
		// instantly with nothing".
		if err := par.Capture(func() error {
			s.computePi()
			lbOnce := s.solveLRS()
			zOnce := s.groupTDMs()
			best = append(best[:0], s.cellRatio...)
			if lbOnce > bestLB {
				bestLB = lbOnce
			}
			bestZ = zOnce
			return nil
		}); err != nil {
			if stopped == nil {
				stopped = err
			}
			return nil, bestZ, bestLB, iters, false, stopped, best
		}
	}
	if opt.CaptureLambda != nil {
		opt.CaptureLambda(append([]float64(nil), s.lambda...))
	}
	return s.unflatten(best, routes), bestZ, bestLB, iters, converged, stopped, best
}

// unflatten converts an edge-major flat cell-ratio vector back to the
// per-net layout parallel to the routing.
// The rows share one backing slab (slices of it are disjoint), replacing one
// allocation per net with two per call at million-net scale.
func (s *lrState) unflatten(flat []float64, routes problem.Routing) [][]float64 {
	out := make([][]float64, len(routes))
	backing := make([]float64, s.netStart[len(routes)])
	for n := range routes {
		base, end := s.netStart[n], s.netStart[n+1]
		row := backing[base:end:end]
		for k := range row {
			row[k] = flat[s.netCell[base+int32(k)]]
		}
		out[n] = row
	}
	return out
}

// groupWindows stores, for every group, a ring buffer of the last w
// normalized TDM samples with streaming sum and sum of squares — a flat
// memory layout equivalent of stats.Window, avoiding one allocation per
// NetGroup on million-group instances.
type groupWindows struct {
	w     int
	buf   []float64 // g*w + slot
	count []int32
	head  []int32
	sum   []float64
	sumSq []float64
}

func newGroupWindows(groups, w int) *groupWindows {
	return &groupWindows{
		w:     w,
		buf:   make([]float64, groups*w),
		count: make([]int32, groups),
		head:  make([]int32, groups),
		sum:   make([]float64, groups),
		sumSq: make([]float64, groups),
	}
}

// zscore returns x_g of Eq. (16): the deviation of sample x from the window
// mean in units of the window standard deviation. With fewer than two
// samples, or a degenerate deviation, it returns 0 (neutral acceleration).
func (gw *groupWindows) zscore(g int, x float64) float64 {
	n := float64(gw.count[g])
	if n < 2 {
		return 0
	}
	mean := gw.sum[g] / n
	variance := gw.sumSq[g]/n - mean*mean
	if variance <= 0 {
		return 0
	}
	return (x - mean) / math.Sqrt(variance)
}

// reset empties every window without touching buf: push writes a slot
// before count reaches w and eviction reads only slots written since the
// reset, so stale samples from a previous run are never observed.
func (gw *groupWindows) reset() {
	for i := range gw.count {
		gw.count[i] = 0
		gw.head[i] = 0
		gw.sum[i] = 0
		gw.sumSq[i] = 0
	}
}

// push appends a sample to group g's window, evicting the oldest when full.
func (gw *groupWindows) push(g int, x float64) {
	base := g * gw.w
	if int(gw.count[g]) == gw.w {
		h := int(gw.head[g])
		old := gw.buf[base+h]
		gw.sum[g] -= old
		gw.sumSq[g] -= old * old
		gw.buf[base+h] = x
		h++
		if h == gw.w { // conditional wrap: the % div stall dominates this hot lane
			h = 0
		}
		gw.head[g] = int32(h)
	} else {
		// head stays 0 until the window first fills, so the next free slot
		// is simply count.
		gw.buf[base+int(gw.count[g])] = x
		gw.count[g]++
	}
	gw.sum[g] += x
	gw.sumSq[g] += x * x
}
