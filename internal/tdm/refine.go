package tdm

import (
	"context"
	"math"
	"sort"

	"tdmroute/internal/problem"
)

// refineCheckEvery is the edge-block granularity of the context check in
// the refinement sweeps: a check per edge would be measurable overhead on
// million-edge-load instances, a check per sweep would make cancellation
// latency a full sweep. Stopping between any two edges keeps the
// assignment legal — refinement only ever spends margin an edge provably
// has.
const refineCheckEvery = 4096

// Refine performs the Sec. IV-E refinement (Algorithm 2) in place on a
// legalized assignment: on every edge it selects the candidate nets Ñ_e —
// those whose maximum containing-group TDM ratio Γ(n) (Eq. 18) is largest —
// and spends the edge's residual margin ξ_e = 1 − tol − Σ 1/t_en decreasing
// their ratios, largest first, in even decrements d computed by Eq. (21).
//
// One call is one full sweep over the edges; Γ is computed once per sweep
// from the assignment at sweep start, as in the paper. The sweep stops
// early between edge blocks once ctx is cancelled; a partial sweep leaves
// the assignment legal, merely less refined.
func Refine(ctx context.Context, in *problem.Instance, routes problem.Routing, ratios [][]int64, tol float64) {
	loads := problem.EdgeLoads(in.G.NumEdges(), routes)
	gamma := computeGamma(in, routes, ratios)

	var cand []candidate
	for ei, ls := range loads {
		if ei%refineCheckEvery == 0 && ctx != nil && ctx.Err() != nil {
			return
		}
		if len(ls) == 0 {
			continue
		}
		// Candidate selection: nets on this edge with maximum Γ.
		maxG := int64(-1)
		for _, l := range ls {
			if g := gamma[l.Net]; g > maxG {
				maxG = g
			}
		}
		if maxG < 0 {
			continue // only ungrouped nets: refining them is wasted margin
		}
		cand = cand[:0]
		var recip float64
		for _, l := range ls {
			t := ratios[l.Net][l.Pos]
			recip += 1 / float64(t)
			if gamma[l.Net] == maxG {
				cand = append(cand, candidate{net: l.Net, pos: l.Pos, t: t})
			}
		}
		xi := 1 - tol - recip
		if xi <= 0 || len(cand) == 0 {
			continue
		}
		refineEdge(cand, xi)
		for _, c := range cand {
			ratios[c.net][c.pos] = c.t
		}
	}
}

type candidate struct {
	net, pos int
	t        int64
}

// refineEdge is the loop of Algorithm 2 over one edge's candidates: sort
// non-increasing once, then repeatedly decrease all maximum-valued ratios by
// a common even decrement d, chosen so the margin is consumed without
// breaking the ordering (d capped by the gap b to the next distinct value).
//
// When the remaining margin cannot afford an even decrement of the whole
// maximum block, a final suffix step decreases as many of the block's last
// elements by 2 as the margin affords (the suffix keeps the non-increasing
// order); Algorithm 2 as printed leaves that tail margin unused.
func refineEdge(cand []candidate, xi float64) {
	sort.Slice(cand, func(i, j int) bool { return cand[i].t > cand[j].t })
	for xi > 0 {
		tmax := cand[0].t
		if tmax <= 2 {
			return
		}
		// CALCMD: m covers every ratio equal to tmax; b is the largest
		// decrement that keeps the sorted order (gap to the next
		// distinct value), or down to the legal minimum 2 when every
		// candidate already equals tmax.
		m := 1
		for m < len(cand) && cand[m].t == tmax {
			m++
		}
		var b int64
		if m < len(cand) {
			b = tmax - cand[m].t
		} else {
			b = tmax - 2
		}
		d := decrement(xi, tmax, m)
		if d > b {
			d = b
		}
		if d > tmax-2 {
			d = tmax - 2
		}
		d -= d % 2 // greatest even integer <= d
		if d >= 2 {
			for j := 0; j < m; j++ {
				cand[j].t -= d
			}
			// Eq. (19): margin consumed by m ratios dropping to tmax-d.
			xi -= float64(m) * (1/float64(tmax-d) - 1/float64(tmax))
			continue
		}
		// Suffix fallback: decrement by 2 the largest affordable count of
		// the block's trailing elements. Clamp the quotient before the int
		// conversion: for huge tmax, perElem underflows toward 0 and the
		// quotient can exceed the int range (the conversion would be
		// platform-defined, negative on amd64).
		perElem := 1/float64(tmax-2) - 1/float64(tmax)
		j := m
		if q := xi / perElem; q < float64(m) {
			//lint:ignore floatcast q < m bounds the conversion; a NaN quotient fails the comparison and keeps j = m
			j = int(q)
		}
		if j <= 0 {
			return
		}
		for i := m - j; i < m; i++ {
			cand[i].t -= 2
		}
		xi -= float64(j) * perElem
	}
}

// decrement evaluates Eq. (21): the d that would consume the whole margin
// if m ratios of value tmax drop to tmax-d, i.e. ξ = m(1/(tmax-d) - 1/tmax)
// solved for d. A non-positive margin yields 0.
//
// The equation is solved for the new denominator u = tmax - d, as
// u = m/(ξ + m/tmax), rather than for d directly: the two forms are
// algebraically identical, but the direct d = ξ·tm²/(ξ·tm + m) rounds up to
// tm when tmax is huge (saturated legalized ratios), and the callers' cap to
// tmax-2 would then overspend the margin by a constant. u is small exactly
// when the decrement is large, so rounding it up keeps the consumed margin
// at most ξ to within an ulp.
func decrement(xi float64, tmax int64, m int) int64 {
	if xi <= 0 {
		return 0
	}
	tm := float64(tmax)
	u := math.Ceil(float64(m) / (xi + float64(m)/tm))
	if u >= tm {
		return 0
	}
	if u < 1 {
		u = 1 // margin large enough for any d; callers cap at tmax-2
	}
	//lint:ignore floatcast u is clamped to [1, tm) by the two checks above
	return tmax - int64(u)
}

// computeGamma evaluates Γ(n) of Eq. (18) for every net: the maximum TDM
// ratio among the groups containing n, or -1 for ungrouped nets.
func computeGamma(in *problem.Instance, routes problem.Routing, ratios [][]int64) []int64 {
	netTDM := make([]int64, len(in.Nets))
	for n := range routes {
		var sum int64
		for _, t := range ratios[n] {
			sum += t
		}
		netTDM[n] = sum
	}
	grpTDM := make([]int64, len(in.Groups))
	for gi := range in.Groups {
		var sum int64
		for _, n := range in.Groups[gi].Nets {
			sum += netTDM[n]
		}
		grpTDM[gi] = sum
	}
	gamma := make([]int64, len(in.Nets))
	for n := range gamma {
		gamma[n] = -1
		for _, gi := range in.Nets[n].Groups {
			if grpTDM[gi] > gamma[n] {
				gamma[n] = grpTDM[gi]
			}
		}
	}
	return gamma
}
