package tdm

import (
	"context"
	"math/rand"
	"testing"

	"tdmroute/internal/problem"
)

func TestRefineNaiveLegalAndEffective(t *testing.T) {
	in, routes, ratios := buildRefineFixture()
	before := maxGroupTDMInt(in, ratios)
	RefineNaive(in, routes, ratios, DefaultTol)
	after := maxGroupTDMInt(in, ratios)
	if after >= before {
		t.Fatalf("naive refinement made no progress: %d -> %d", before, after)
	}
	sol := &problem.Solution{Routes: routes, Assign: problem.Assignment{Ratios: ratios}}
	if err := problem.ValidateSolution(in, sol); err != nil {
		t.Fatalf("invalid after naive refinement: %v", err)
	}
}

func TestRefineNaiveMatchesAlgorithm2(t *testing.T) {
	// Both refinements must exhaust the margin on the same candidate set;
	// the resulting GTR_max must agree (the block decrement of Algorithm 2
	// and the per-2 heap decrements reach the same balanced fixed point on
	// each edge up to element permutation).
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		in, routes := randomAssignInstance(rng)
		relaxed, _, _, _, _, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 500})
		a := Legalize(relaxed)
		b := make([][]int64, len(a))
		for n := range a {
			b[n] = append([]int64(nil), a[n]...)
		}
		Refine(context.Background(), in, routes, a, DefaultTol)
		RefineNaive(in, routes, b, DefaultTol)
		ga, gb := maxGroupTDMInt(in, a), maxGroupTDMInt(in, b)
		// Allow a small slack: the two schedules may split the last
		// decrement across different nets.
		diff := ga - gb
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(ga)+4 {
			t.Errorf("trial %d: Algorithm 2 GTR %d vs naive %d", trial, ga, gb)
		}
		for n := range b {
			for k, v := range b[n] {
				if v < 2 || v%2 != 0 {
					t.Fatalf("trial %d: naive produced illegal ratio %d", trial, v)
				}
				_ = k
			}
		}
	}
}

func TestRefineEdgeNaiveStopsAtMinimum(t *testing.T) {
	cand := []candidate{{0, 0, 4}, {1, 0, 4}}
	refineEdgeNaive(cand, 100)
	for _, c := range cand {
		if c.t != 2 {
			t.Errorf("ratio %d, want 2", c.t)
		}
	}
}

func TestRefineEdgeNaiveRespectsMargin(t *testing.T) {
	// Margin affords exactly one 8->6 step (1/6-1/8 = 1/24).
	cand := []candidate{{0, 0, 8}, {1, 0, 8}}
	refineEdgeNaive(cand, 1.0/24+1e-12)
	total := cand[0].t + cand[1].t
	if total != 14 { // one net refined to 6
		t.Errorf("ratios = %d,%d", cand[0].t, cand[1].t)
	}
}

func BenchmarkRefineVsNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in, routes := randomAssignInstance(rng)
	relaxed, _, _, _, _, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 500})
	base := Legalize(relaxed)
	clone := func() [][]int64 {
		c := make([][]int64, len(base))
		for n := range base {
			c[n] = append([]int64(nil), base[n]...)
		}
		return c
	}
	b.Run("Algorithm2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Refine(context.Background(), in, routes, clone(), DefaultTol)
		}
	})
	b.Run("NaiveHeap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RefineNaive(in, routes, clone(), DefaultTol)
		}
	})
}

// BenchmarkRefineEdgeLargeRatios isolates the per-edge refinement loops in
// the paper's regime (ratios in the thousands): Algorithm 2 amortizes a
// whole block decrement into one step where the naive heap pays one
// operation per 2 units of decrement.
func BenchmarkRefineEdgeLargeRatios(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	mk := func() ([]candidate, float64) {
		cand := make([]candidate, 64)
		var recip float64
		for i := range cand {
			r := int64(10000 + 2*rng.Intn(2000))
			cand[i] = candidate{net: i, pos: 0, t: r}
			recip += 1 / float64(r)
		}
		return cand, 1 - DefaultTol - recip
	}
	b.Run("Algorithm2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cand, xi := mk()
			b.StartTimer()
			refineEdge(cand, xi)
		}
	})
	b.Run("NaiveHeap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cand, xi := mk()
			b.StartTimer()
			refineEdgeNaive(cand, xi)
		}
	})
}
