package tdm

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
	"tdmroute/internal/stats"
)

// pathInstance builds an instance over a path graph with nv vertices where
// nets and groups are supplied by the caller; routes are provided directly
// so TDM tests are independent of the router.
func pathInstance(nv int, nets []problem.Net, groups []problem.Group) *problem.Instance {
	g := graph.New(nv, nv-1)
	for i := 0; i+1 < nv; i++ {
		g.AddEdge(i, i+1)
	}
	in := &problem.Instance{Name: "path", G: g, Nets: nets, Groups: groups}
	in.RebuildNetGroups()
	return in
}

// singleEdgeInstance: k nets all routed over the single edge of a 2-vertex
// graph, each net in its own group.
func singleEdgeInstance(k int) (*problem.Instance, problem.Routing) {
	nets := make([]problem.Net, k)
	groups := make([]problem.Group, k)
	routes := make(problem.Routing, k)
	for i := 0; i < k; i++ {
		nets[i].Terminals = []int{0, 1}
		groups[i].Nets = []int{i}
		routes[i] = []int{0}
	}
	in := pathInstance(2, nets, groups)
	return in, routes
}

func TestLRSingleEdgeSymmetric(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 16} {
		in, routes := singleEdgeInstance(k)
		ratios, z, lb, iters, converged, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-9})
		want := float64(k) // optimal: all nets at ratio k
		if math.Abs(z-want) > 1e-6*want {
			t.Errorf("k=%d: z = %g, want %g", k, z, want)
		}
		if math.Abs(lb-want) > 1e-6*want {
			t.Errorf("k=%d: lb = %g, want %g", k, lb, want)
		}
		if !converged {
			t.Errorf("k=%d: did not converge in %d iterations", k, iters)
		}
		for n := 0; n < k; n++ {
			if math.Abs(ratios[n][0]-want) > 1e-6*want {
				t.Errorf("k=%d net %d: ratio %g, want %g", k, n, ratios[n][0], want)
			}
		}
	}
}

func TestLRSingleEdgeNestedGroups(t *testing.T) {
	// Two nets, groups {n0} and {n0,n1}: optimum minimizes t0+t1 subject
	// to 1/t0+1/t1 <= 1, i.e. t0 = t1 = 2, z = 4.
	nets := []problem.Net{{Terminals: []int{0, 1}}, {Terminals: []int{0, 1}}}
	groups := []problem.Group{{Nets: []int{0}}, {Nets: []int{0, 1}}}
	in := pathInstance(2, nets, groups)
	routes := problem.Routing{{0}, {0}}
	_, z, lb, _, converged, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-7, MaxIter: 2000})
	if !converged {
		t.Fatalf("did not converge: z=%g lb=%g", z, lb)
	}
	if math.Abs(z-4) > 1e-3 {
		t.Errorf("z = %g, want 4", z)
	}
	if lb > z+1e-9 {
		t.Errorf("lb %g exceeds z %g", lb, z)
	}
}

func TestLRWeightedTwoGroups(t *testing.T) {
	// One edge, two nets. Group A = {n0, n0'} where n0' also rides a
	// private edge... simpler: group A = {0} with net 0 on TWO edges
	// (terminals 0..2 on a path), group B = {1} with net 1 on one edge
	// shared with net 0.
	//
	// Path 0-1-2: edges e0=(0,1), e1=(1,2). Net 0 routes {e0,e1},
	// net 1 routes {e1}. Groups {0} and {1}.
	//
	// Optimal relaxed: on e1 pattern (t0,t1) with 1/t0+1/t1 = 1, on e0
	// net 0 alone gets t = 1 (relaxed). z = max(1 + t0, t1). Minimize:
	// 1 + t0 = t1, 1/t0 + 1/t1 = 1 -> t0 = (1+sqrt(5))/2 = φ, t1 = 1+φ.
	nets := []problem.Net{{Terminals: []int{0, 2}}, {Terminals: []int{1, 2}}}
	groups := []problem.Group{{Nets: []int{0}}, {Nets: []int{1}}}
	in := pathInstance(3, nets, groups)
	routes := problem.Routing{{0, 1}, {1}}
	_, z, lb, _, converged, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-7, MaxIter: 5000})
	phi := (1 + math.Sqrt(5)) / 2
	want := 1 + phi
	if !converged {
		t.Fatalf("did not converge: z=%g lb=%g", z, lb)
	}
	if math.Abs(z-want) > 1e-3 {
		t.Errorf("z = %g, want %g", z, want)
	}
	if lb > z+1e-9 || math.Abs(lb-want) > 1e-2 {
		t.Errorf("lb = %g, want ~%g (<= z=%g)", lb, want, z)
	}
}

func TestLRPatternMatchesCauchySchwarz(t *testing.T) {
	// Verify Eq. (13) directly: fixed multipliers (MaxIter=1 performs one
	// pattern generation with the uniform λ).
	in, routes := singleEdgeInstance(3)
	// Make group sizes unequal by adding one net to group 0.
	in.Groups[0].Nets = []int{0, 1}
	in.RebuildNetGroups()
	ratios, _, _, _, _, _ := RunLR(context.Background(), in, routes, Options{MaxIter: 1, Epsilon: 1e-30})
	// λ = 1/3 each; net 1 is in groups 0 and 1, so π = (1/3, 2/3, 1/3).
	pis := []float64{1.0 / 3, 2.0 / 3, 1.0 / 3}
	var s float64
	for _, p := range pis {
		s += math.Sqrt(p)
	}
	for n, p := range pis {
		want := s / math.Sqrt(p)
		if math.Abs(ratios[n][0]-want) > 1e-9 {
			t.Errorf("net %d: ratio %g, want %g", n, ratios[n][0], want)
		}
	}
	// The generated pattern saturates the edge: Σ 1/t == 1.
	var recip float64
	for n := range pis {
		recip += 1 / ratios[n][0]
	}
	if math.Abs(recip-1) > 1e-9 {
		t.Errorf("pattern reciprocal sum = %g, want 1", recip)
	}
}

func TestLRPatternOptimalAmongPerturbations(t *testing.T) {
	// The Cauchy-Schwarz pattern must beat random feasible patterns for
	// the weighted substructure objective Σ π_n t_n with Σ 1/t = 1.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(6)
		pi := make([]float64, k)
		var s float64
		for i := range pi {
			pi[i] = rng.Float64() + 0.01
			s += math.Sqrt(pi[i])
		}
		var opt float64
		for i := range pi {
			opt += pi[i] * (s / math.Sqrt(pi[i]))
		}
		// Random feasible pattern: positive weights scaled so reciprocals
		// sum to exactly 1.
		for p := 0; p < 20; p++ {
			w := make([]float64, k)
			var recip float64
			for i := range w {
				w[i] = rng.Float64() + 0.01
				recip += 1 / w[i]
			}
			var obj float64
			for i := range w {
				obj += pi[i] * (w[i] * recip)
			}
			if obj < opt-1e-9*opt {
				t.Fatalf("trial %d: random pattern %g beats Cauchy-Schwarz %g", trial, obj, opt)
			}
		}
	}
}

func TestLRLowerBoundBelowAnyLegalAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		in, routes := randomAssignInstance(rng)
		_, z, lb, _, _, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-6, MaxIter: 800})
		if lb > z+1e-6*math.Max(1, z) {
			t.Fatalf("trial %d: lb %g exceeds relaxed z %g", trial, lb, z)
		}
		// Uniform legal assignment: every net on edge e gets ratio
		// 2*ceil(|N_e|/2)... use legalizeRatio(|N_e|).
		loads := problem.EdgeLoads(in.G.NumEdges(), routes)
		ratios := make([][]int64, len(routes))
		for n := range routes {
			ratios[n] = make([]int64, len(routes[n]))
		}
		for _, ls := range loads {
			for _, l := range ls {
				ratios[l.Net][l.Pos] = legalizeRatio(float64(len(ls)))
			}
		}
		sol := &problem.Solution{Routes: routes, Assign: problem.Assignment{Ratios: ratios}}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Fatalf("trial %d: uniform assignment invalid: %v", trial, err)
		}
		gtr := maxGroupTDMInt(in, ratios)
		if float64(gtr) < lb-1e-6*lb {
			t.Fatalf("trial %d: legal GTR %d below claimed lower bound %g", trial, gtr, lb)
		}
	}
}

// randomAssignInstance builds a random connected instance with routes
// produced by a trivial router (shortest path by BFS tree walk), adequate
// for TDM-stage tests.
func randomAssignInstance(rng *rand.Rand) (*problem.Instance, problem.Routing) {
	nv := 4 + rng.Intn(8)
	g := graph.New(nv, 2*nv)
	perm := rng.Perm(nv)
	for i := 1; i < nv; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for j := 0; j < nv/2; j++ {
		u, v := rng.Intn(nv), rng.Intn(nv)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	nn := 5 + rng.Intn(30)
	nets := make([]problem.Net, nn)
	routes := make(problem.Routing, nn)
	d := graph.NewDijkstra(g)
	for i := 0; i < nn; i++ {
		u, v := rng.Intn(nv), rng.Intn(nv)
		for v == u {
			v = rng.Intn(nv)
		}
		nets[i].Terminals = []int{u, v}
		path, _, ok := d.ShortestPath(u, v, func(int) uint64 { return 1 }, nil)
		if !ok {
			panic("unreachable in connected graph")
		}
		routes[i] = path
	}
	ng := 3 + rng.Intn(10)
	groups := make([]problem.Group, ng)
	for gi := 0; gi < ng; gi++ {
		m := 1 + rng.Intn(4)
		seen := map[int]bool{}
		for j := 0; j < m; j++ {
			n := rng.Intn(nn)
			if !seen[n] {
				seen[n] = true
				groups[gi].Nets = append(groups[gi].Nets, n)
			}
		}
		sortInts(groups[gi].Nets)
	}
	in := &problem.Instance{Name: "rand", G: g, Nets: nets, Groups: groups}
	in.RebuildNetGroups()
	return in, routes
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func maxGroupTDMInt(in *problem.Instance, ratios [][]int64) int64 {
	netTDM := make([]int64, len(in.Nets))
	for n := range ratios {
		for _, t := range ratios[n] {
			netTDM[n] += t
		}
	}
	var best int64
	for gi := range in.Groups {
		var sum int64
		for _, n := range in.Groups[gi].Nets {
			sum += netTDM[n]
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

func TestLRTraceCalled(t *testing.T) {
	in, routes := singleEdgeInstance(4)
	var traced []float64
	RunLR(context.Background(), in, routes, Options{Epsilon: 1e-9, Trace: func(iter int, z, lb float64) {
		if iter != len(traced) {
			t.Errorf("trace iteration %d out of order", iter)
		}
		traced = append(traced, z)
	}})
	if len(traced) == 0 {
		t.Fatal("trace never called")
	}
}

func TestLRNoGroups(t *testing.T) {
	nets := []problem.Net{{Terminals: []int{0, 1}}}
	in := pathInstance(2, nets, nil)
	routes := problem.Routing{{0}}
	ratios, z, lb, _, _, _ := RunLR(context.Background(), in, routes, Options{})
	if z != 0 || lb != 0 {
		t.Errorf("no groups: z=%g lb=%g", z, lb)
	}
	if len(ratios) != 1 || len(ratios[0]) != 1 || ratios[0][0] < 1 {
		t.Errorf("no-group net got no pattern: %v", ratios)
	}
}

func TestLRMaxIterZeroStillProducesPattern(t *testing.T) {
	in, routes := singleEdgeInstance(3)
	ratios, z, _, iters, converged, _ := RunLR(context.Background(), in, routes, Options{MaxIter: -1})
	if iters != 0 || converged {
		t.Errorf("iters=%d converged=%v", iters, converged)
	}
	if math.Abs(ratios[0][0]-3) > 1e-9 || math.Abs(z-3) > 1e-9 {
		t.Errorf("uniform pattern expected: ratios=%v z=%g", ratios[0], z)
	}
}

func TestLRConvergesMonotonicallyEnough(t *testing.T) {
	// The dual value must never exceed the primal z at the same iterate,
	// and the final gap must meet epsilon.
	rng := rand.New(rand.NewSource(12))
	in, routes := randomAssignInstance(rng)
	var lastZ, lastLB float64
	_, z, lb, _, converged, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-4, MaxIter: 3000,
		Trace: func(iter int, zi, lbi float64) {
			if lbi > zi+1e-9*math.Max(1, zi) {
				t.Fatalf("iter %d: dual %g above primal %g", iter, lbi, zi)
			}
			lastZ, lastLB = zi, lbi
		}})
	_ = lastZ
	_ = lastLB
	if !converged {
		t.Fatalf("did not converge: z=%g lb=%g", z, lb)
	}
	if (z-lb)/lb > 1e-4+1e-12 {
		t.Errorf("final gap %g exceeds epsilon", (z-lb)/lb)
	}
}

func TestGroupWindowsMatchStatsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const groups, w = 5, 4
	gw := newGroupWindows(groups, w)
	ref := make([]*stats.Window, groups)
	for g := range ref {
		ref[g] = stats.NewWindow(w)
	}
	for step := 0; step < 500; step++ {
		g := rng.Intn(groups)
		x := rng.Float64()
		// zscore must agree with the reference computed from stats.Window
		// BEFORE pushing (Eq. 16 windows the previous samples).
		var want float64
		if ref[g].Len() >= 2 && ref[g].StdDev() > 0 {
			want = (x - ref[g].Mean()) / ref[g].StdDev()
		}
		got := gw.zscore(g, x)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("step %d: zscore %g, want %g", step, got, want)
		}
		gw.push(g, x)
		ref[g].Push(x)
	}
}

func TestUnflattenMatchesRouting(t *testing.T) {
	// The CSR views must map edge-major cell ratios back to the exact
	// (net, position) layout.
	nets := []problem.Net{{Terminals: []int{0, 2}}, {Terminals: []int{1, 2}}}
	in := pathInstance(3, nets, nil)
	routes := problem.Routing{{0, 1}, {1}}
	s := newLRState(in, routes, Options{}.withDefaults())
	flat := make([]float64, len(s.cellRatio))
	for i := range flat {
		flat[i] = float64(10 + i)
	}
	out := s.unflatten(flat, routes)
	if len(out) != 2 || len(out[0]) != 2 || len(out[1]) != 1 {
		t.Fatalf("shape = %v", out)
	}
	// Round trip: cell (net n, pos k) must read back the value written to
	// its flat slot.
	for n := range routes {
		for k := range routes[n] {
			idx := s.netCell[s.netStart[n]+int32(k)]
			if out[n][k] != flat[idx] {
				t.Fatalf("net %d pos %d: got %g want %g", n, k, out[n][k], flat[idx])
			}
			if int(s.cellNet[idx]) != n || int(s.cellPos[idx]) != k {
				t.Fatalf("CSR back-pointers wrong at net %d pos %d", n, k)
			}
		}
	}
}

func TestSubgradientRuleSound(t *testing.T) {
	// The subgradient baseline is slow (the paper's motivation for the
	// Sigmoid+SMA rule) but must stay sound: dual never above primal, and
	// the gap must shrink over a budget of iterations.
	rng := rand.New(rand.NewSource(14))
	in, routes := randomAssignInstance(rng)
	var firstGap float64
	_, z, lb, _, _, _ := RunLR(context.Background(), in, routes, Options{
		Epsilon: 1e-12, MaxIter: 2000, Update: UpdateSubgradient,
		Trace: func(iter int, zi, lbi float64) {
			if lbi > zi+1e-9*math.Max(1, zi) {
				t.Fatalf("iter %d: dual %g above primal %g", iter, lbi, zi)
			}
			if iter == 0 {
				firstGap = zi - lbi
			}
		},
	})
	// RunLR reports the best primal and best dual seen; those must
	// bracket and must have improved on the first iterate even though
	// individual subgradient iterates oscillate.
	if lb > z+1e-9*math.Max(1, z) {
		t.Errorf("dual above primal: %g > %g", lb, z)
	}
	if z-lb >= firstGap {
		t.Errorf("subgradient made no best-so-far progress: gap %g -> %g", firstGap, z-lb)
	}
}

func TestSigmoidSMABeatsSubgradientAtFixedBudget(t *testing.T) {
	// Ablation of the Sec. IV-C update rule: at the same iteration budget
	// the Sigmoid+SMA strategy must reach a smaller duality gap than the
	// classic subgradient (totals over several instances absorb noise).
	const budget = 300
	var gapSMA, gapSub float64
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		in, routes := randomAssignInstance(rng)
		_, z1, lb1, _, _, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-12, MaxIter: budget})
		_, z2, lb2, _, _, _ := RunLR(context.Background(), in, routes, Options{Epsilon: 1e-12, MaxIter: budget, Update: UpdateSubgradient})
		gapSMA += (z1 - lb1) / math.Max(1, lb1)
		gapSub += (z2 - lb2) / math.Max(1, lb2)
	}
	if gapSMA > gapSub {
		t.Errorf("Sigmoid+SMA gap %g worse than subgradient %g at %d iterations", gapSMA, gapSub, budget)
	}
	t.Logf("relative gaps after %d iters: sigmoid+SMA=%g subgradient=%g", budget, gapSMA, gapSub)
}

func TestLambdaStaysOnSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	in, routes := randomAssignInstance(rng)
	var final []float64
	RunLR(context.Background(), in, routes, Options{Epsilon: 1e-6, MaxIter: 500,
		CaptureLambda: func(l []float64) { final = l }})
	if final == nil {
		t.Fatal("CaptureLambda not called")
	}
	var sum float64
	for _, v := range final {
		if v <= 0 {
			t.Fatalf("multiplier %g not positive", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("multipliers sum to %g, want 1 (KKT projection)", sum)
	}
}
