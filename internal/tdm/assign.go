package tdm

import (
	"context"
	"fmt"

	"tdmroute/internal/eval"
	"tdmroute/internal/par"
	"tdmroute/internal/problem"
)

// Assign runs the complete TDM ratio assignment stage of the paper on a
// fixed routing topology: Lagrangian relaxation (Algorithm 1), legalization,
// and refinement (Algorithm 2). It returns a legal assignment (every ratio
// even and >= 2, per-edge reciprocal sums <= 1) and a Report with the
// Table II metrics.
//
// Assign is anytime: when ctx is cancelled (or a worker panic is contained)
// the best-so-far relaxed assignment is legalized and returned with
// Report.Interrupted holding the cause — the assignment is still legal, only
// less optimized. A non-nil error is returned only when no legal assignment
// could be produced at all.
func Assign(ctx context.Context, in *problem.Instance, routes problem.Routing, opt Options) (problem.Assignment, Report, error) {
	if len(routes) != len(in.Nets) {
		return problem.Assignment{}, Report{}, fmt.Errorf("tdm: routing has %d nets, instance has %d", len(routes), len(in.Nets))
	}
	opt = opt.withDefaults()

	relaxed, z, lb, iters, converged, stopped := RunLR(ctx, in, routes, opt)
	if relaxed == nil {
		return problem.Assignment{}, Report{}, stopped
	}
	assign, rep, err := Finish(ctx, in, routes, relaxed, opt)
	if err != nil {
		return problem.Assignment{}, Report{}, err
	}
	rep.Iterations = iters
	rep.Converged = converged
	rep.LowerBound = lb
	rep.RelaxedZ = z
	if stopped != nil {
		rep.Interrupted = stopped // the LR stop is the earlier cause
	}
	return assign, rep, nil
}

// Finish legalizes a relaxed assignment and applies the refinement passes,
// filling the GTRNoRef and GTRMax fields of the report. It is split from
// Assign so callers can time the LR and legalization+refinement stages
// separately (the Fig. 3(a) breakdown).
//
// Legalization always runs to completion (it is cheap and required for
// legality); the refinement passes check ctx between passes and inside each
// sweep, and a contained panic or cancellation mid-refinement keeps the
// ratios refined so far — every prefix of a refinement sweep is legal. An
// early stop is reported in Report.Interrupted, not as an error.
func Finish(ctx context.Context, in *problem.Instance, routes problem.Routing, relaxed [][]float64, opt Options) (problem.Assignment, Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(relaxed) != len(routes) {
		return problem.Assignment{}, Report{}, fmt.Errorf("tdm: relaxed assignment has %d nets, routing has %d", len(relaxed), len(routes))
	}
	opt = opt.withDefaults()
	var ratios [][]int64
	if err := par.Capture(func() error {
		if opt.Legal == LegalPow2 {
			ratios = LegalizePow2(relaxed)
		} else {
			ratios = Legalize(relaxed)
		}
		return nil
	}); err != nil {
		return problem.Assignment{}, Report{}, err
	}

	var rep Report
	sol := &problem.Solution{Routes: routes, Assign: problem.Assignment{Ratios: ratios}}
	rep.GTRNoRef, _ = eval.MaxGroupTDM(in, sol)

	rep.Interrupted = par.Capture(func() error {
		for pass := 0; pass < opt.refinePasses(); pass++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if opt.Legal == LegalPow2 {
				RefinePow2(ctx, in, routes, ratios, opt.Tol)
			} else {
				Refine(ctx, in, routes, ratios, opt.Tol)
			}
		}
		compactUngrouped(in, routes, ratios, opt.Tol, opt.Legal == LegalPow2)
		return nil
	})
	rep.GTRMax, _ = eval.MaxGroupTDM(in, sol)

	return problem.Assignment{Ratios: ratios}, rep, nil
}

// compactUngrouped rewrites the ratios of nets that belong to no NetGroup.
// The LR patterns give such nets enormous ratios (their π is floored near
// zero), which is legal but makes the per-edge TDM slot frame
// unrealizable. Since their ratios never enter the objective, each edge's
// residual budget is instead split evenly among its ungrouped cells,
// yielding the smallest legal (even or power-of-two) common ratio.
func compactUngrouped(in *problem.Instance, routes problem.Routing, ratios [][]int64, tol float64, pow2 bool) {
	loads := problem.EdgeLoads(in.G.NumEdges(), routes)
	for _, ls := range loads {
		if len(ls) == 0 {
			continue
		}
		var grouped float64
		u := 0
		for _, l := range ls {
			if len(in.Nets[l.Net].Groups) > 0 {
				grouped += 1 / float64(ratios[l.Net][l.Pos])
			} else {
				u++
			}
		}
		if u == 0 {
			continue
		}
		budget := 1 - tol - grouped
		if budget <= 0 {
			continue // keep the existing (legal) huge ratios
		}
		// Feed the fractional ratio straight to the legalizer: it rounds
		// up itself and saturates near-zero budgets instead of letting an
		// int64(math.Ceil(...)) conversion overflow negative.
		f := float64(u) / budget
		var r int64
		if pow2 {
			r = legalizeRatioPow2(f)
		} else {
			r = legalizeRatio(f)
		}
		for _, l := range ls {
			if len(in.Nets[l.Net].Groups) == 0 {
				ratios[l.Net][l.Pos] = r
			}
		}
	}
}
