package tdm

import (
	"math"
	"testing"

	"tdmroute/internal/problem"
)

// TestLegalizeRatioSaturates is the regression test for the int64 overflow:
// relaxed ratios beyond the int64 range (the LR assigns such values to
// ungrouped nets whose π is floored near zero) must saturate at the largest
// even int64 instead of converting to a negative number.
func TestLegalizeRatioSaturates(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{math.NaN(), 2},
		{math.Inf(-1), 2},
		{-5, 2},
		{0, 2},
		{2, 2},
		{2.1, 4},
		{7, 8},
		{8, 8},
		{1e15, 1000000000000000},
		{1e15 + 1, 1000000000000002},
		{1e18, 1000000000000000000},
		{9.2e18, 9200000000000000000},
		{float64(math.MaxInt64), maxEvenRatio},
		{1e19, maxEvenRatio},
		{1e300, maxEvenRatio},
		{math.Inf(1), maxEvenRatio},
	}
	for _, c := range cases {
		if got := legalizeRatio(c.in); got != c.want {
			t.Errorf("legalizeRatio(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLegalizeRatioPow2Saturates(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{math.NaN(), 2},
		{math.Inf(-1), 2},
		{2, 2},
		{3, 4},
		{17, 32},
		{1 << 40, 1 << 40},
		{float64(maxPow2Ratio), maxPow2Ratio},
		{1e300, maxPow2Ratio},
		{math.Inf(1), maxPow2Ratio},
	}
	for _, c := range cases {
		if got := legalizeRatioPow2(c.in); got != c.want {
			t.Errorf("legalizeRatioPow2(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestLegalizeNeverIllegal sweeps adversarial relaxed values through both
// legalizers and asserts that no odd, negative, or sub-2 ratio can escape.
func TestLegalizeNeverIllegal(t *testing.T) {
	adversarial := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		-1e300, -2, 0, 1, 2, 2.0000001, 3,
		1e9, 1e18, 9.22e18, 9.3e18, 1e19, 1e300,
		float64(math.MaxInt64), float64(math.MaxInt64) * 2,
	}
	for _, v := range adversarial {
		for name, r := range map[string]int64{
			"legalizeRatio":     legalizeRatio(v),
			"legalizeRatioPow2": legalizeRatioPow2(v),
		} {
			if r < 2 {
				t.Errorf("%s(%g) = %d < 2", name, v, r)
			}
			if r%2 != 0 {
				t.Errorf("%s(%g) = %d is odd", name, v, r)
			}
		}
		if p := legalizeRatioPow2(v); p&(p-1) != 0 {
			t.Errorf("legalizeRatioPow2(%g) = %d is not a power of two", v, p)
		}
	}
}

// overflowInstance is one net routed over the single edge of a 2-FPGA
// system, the minimal carrier for a relaxed ratio.
func overflowInstance() (*problem.Instance, problem.Routing) {
	in := &problem.Instance{
		Name:   "overflow",
		Nets:   []problem.Net{{Terminals: []int{0, 1}}},
		Groups: []problem.Group{{Nets: []int{0}}},
	}
	in.G = ringGraph(2)
	in.RebuildNetGroups()
	// Route the net over edge 0 only.
	return in, problem.Routing{{0}}
}

// TestLegalizeOverflowSolutionValid runs the full legalization on relaxed
// assignments containing 1e300, +Inf, and NaN and asserts the resulting
// solutions pass ValidateSolution (every ratio a positive even integer,
// per-edge reciprocal sums <= 1).
func TestLegalizeOverflowSolutionValid(t *testing.T) {
	for _, v := range []float64{1e300, math.Inf(1), math.NaN()} {
		in, routes := overflowInstance()
		relaxed := [][]float64{{v}}
		for name, ratios := range map[string][][]int64{
			"Legalize":     Legalize(relaxed),
			"LegalizePow2": LegalizePow2(relaxed),
		} {
			sol := &problem.Solution{Routes: routes, Assign: problem.Assignment{Ratios: ratios}}
			if err := problem.ValidateSolution(in, sol); err != nil {
				t.Errorf("%s(%g): invalid solution: %v", name, v, err)
			}
		}
	}
}

// TestCompactUngroupedNearZeroBudget drives compactUngrouped into the regime
// where the residual budget is denormal-small and the common ratio formerly
// overflowed int64: the rewritten ratios must stay legal.
func TestCompactUngroupedNearZeroBudget(t *testing.T) {
	for _, pow2 := range []bool{false, true} {
		in, routes := overflowInstance()
		in.Groups = nil
		in.RebuildNetGroups() // net 0 is now ungrouped
		ratios := [][]int64{{2}}
		// tol chosen so budget = 1 - tol = 1e-300 and u/budget = 1e300.
		compactUngrouped(in, routes, ratios, 1-1e-300, pow2)
		r := ratios[0][0]
		if r < 2 || r%2 != 0 {
			t.Errorf("pow2=%v: compacted ratio %d is illegal", pow2, r)
		}
		sol := &problem.Solution{Routes: routes, Assign: problem.Assignment{Ratios: ratios}}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Errorf("pow2=%v: %v", pow2, err)
		}
	}
}

// TestRefineEdgeHugeRatios drives refineEdge into the suffix fallback with a
// block of enormous equal ratios: per-element margin underflows toward zero,
// the quotient exceeds the int range, and the former int conversion turned
// the affordable count negative (skipping the refinement entirely).
func TestRefineEdgeHugeRatios(t *testing.T) {
	const huge = int64(1) << 62
	cand := []candidate{
		{net: 0, pos: 0, t: huge},
		{net: 1, pos: 0, t: huge},
	}
	refineEdge(cand, 0.5)
	for i, c := range cand {
		if c.t >= huge {
			t.Errorf("candidate %d not refined: %d", i, c.t)
		}
		if c.t < 2 || c.t%2 != 0 {
			t.Errorf("candidate %d: illegal ratio %d", i, c.t)
		}
	}
}
