// Package tdm implements the TDM ratio assignment stage of Sec. IV of the
// paper: the Lagrangian-relaxation formulation whose subproblem is solved in
// closed form per edge by the Cauchy–Schwarz inequality (Eq. 13), the
// Sigmoid + simple-moving-average multiplier update strategy (Eqs. 15–16),
// and the legalization and refinement pass of Sec. IV-E (Algorithm 2).
package tdm

// Options tunes Algorithm 1 and the refinement. The zero value selects the
// paper's published parameters.
type Options struct {
	// Epsilon is the LR convergence criterion: iteration stops when
	// (z - LB)/LB <= Epsilon. The paper uses 0.0027 for the small
	// benchmarks and 0.0005 for the large ones. Zero selects
	// DefaultEpsilon.
	Epsilon float64
	// MaxIter caps LR iterations (the paper's "lim"). Zero selects
	// DefaultMaxIter; negative means "no LR iterations" (useful to
	// benchmark legalization alone).
	MaxIter int
	// Window is the SMA window width w (paper: 10).
	Window int
	// Alpha is the Sigmoid magnitude α (paper: 3).
	Alpha float64
	// Beta is the Sigmoid steepness β (paper: 10).
	Beta float64
	// PiFloor is the lower clamp applied to π_n when generating edge
	// patterns, keeping Eq. (13) well-defined for nets whose every group
	// has a vanishing multiplier (including nets in no group at all).
	PiFloor float64
	// Tol is the preset tolerance subtracted from the refinement margin
	// ξ_e to absorb floating-point imprecision (Sec. IV-E step 2).
	Tol float64
	// RefinePasses is the number of full refinement sweeps over the
	// edges. The paper performs one; more passes recompute Γ(n) with the
	// ratios already refined. Zero selects 1; negative disables
	// refinement (reported results then equal GTR_noref).
	RefinePasses int
	// Update selects the multiplier update rule. The default is the
	// paper's Sigmoid+SMA strategy; UpdateSubgradient is the classic
	// projected-subgradient baseline kept for the ablation study.
	Update UpdateRule
	// SubgradientStep scales the Polyak step of the subgradient rule.
	// Zero selects 1.
	SubgradientStep float64
	// Legal selects the legalization rule: LegalEven (the contest's and
	// the paper's "positive even integer" domain, the default) or
	// LegalPow2 (the power-of-two restriction of the paper's refs [2][3],
	// which keeps TDM slot frames short at some objective cost).
	Legal Legalizer
	// Workers is the number of goroutines used by the LR inner loops
	// (following the multi-threaded LR of the paper's ref [14]); <= 1
	// runs serially. Results are deterministic for a fixed Workers value;
	// different worker counts may differ in the last floating-point ulps
	// because partial sums associate differently.
	Workers int
	// Trace, when non-nil, receives (iteration, z, LB) after every LR
	// iteration — the series plotted in Fig. 3(b).
	Trace func(iter int, z, lb float64)
	// WarmLambda, when non-nil, initializes the multipliers from a
	// previous run instead of uniformly (line 2 of Algorithm 1). It must
	// have one entry per NetGroup; entries are clamped positive and
	// re-projected onto the simplex. Useful when re-assigning after a
	// small topology change (the iterated co-optimization extension).
	WarmLambda []float64
	// CaptureLambda, when non-nil, receives a copy of the final
	// multipliers when LR stops — feed it back via WarmLambda on the
	// next round.
	CaptureLambda func([]float64)
}

// Legalizer selects the integral domain ratios are rounded into.
type Legalizer int

const (
	// LegalEven rounds up to even integers >= 2 (Sec. II-A domain).
	LegalEven Legalizer = iota
	// LegalPow2 rounds up to powers of two >= 2 (refs [2][3] domain).
	LegalPow2
)

// UpdateRule selects how the Lagrangian multipliers are updated between
// iterations.
type UpdateRule int

const (
	// UpdateSigmoidSMA is the paper's strategy (Eqs. 15-16):
	// λ_g ← λ_g · (GTR_g/z)^K with K driven by a Sigmoid over the
	// SMA-windowed z-score of the normalized group TDM.
	UpdateSigmoidSMA UpdateRule = iota
	// UpdateSubgradient is the classic projected subgradient:
	// λ_g ← max(λ_g + step·(GTR_g - z)/z, 0), then simplex projection.
	UpdateSubgradient
)

// Paper defaults.
const (
	DefaultEpsilon = 0.0027
	DefaultMaxIter = 500
	DefaultWindow  = 10
	DefaultAlpha   = 3
	DefaultBeta    = 10
	DefaultPiFloor = 1e-12
	DefaultTol     = 1e-9
)

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Beta == 0 {
		o.Beta = DefaultBeta
	}
	if o.PiFloor <= 0 {
		o.PiFloor = DefaultPiFloor
	}
	if o.Tol <= 0 {
		o.Tol = DefaultTol
	}
	if o.SubgradientStep == 0 {
		o.SubgradientStep = 1
	}
	return o
}

// maxIter resolves the MaxIter sentinel without mutating the option: the
// zero/negative collapse cannot live in withDefaults because withDefaults is
// applied both by the entry points and by Finish, and a mutating collapse
// would turn "negative: disabled" into the default on the second pass.
func (o Options) maxIter() int {
	switch {
	case o.MaxIter == 0:
		return DefaultMaxIter
	case o.MaxIter < 0:
		return 0
	}
	return o.MaxIter
}

// refinePasses resolves the RefinePasses sentinel; see maxIter for why this
// is an accessor rather than a withDefaults rewrite.
func (o Options) refinePasses() int {
	switch {
	case o.RefinePasses == 0:
		return 1
	case o.RefinePasses < 0:
		return 0
	}
	return o.RefinePasses
}

// Report summarizes one assignment run with the Table II columns.
type Report struct {
	// Iterations is the number of LR iterations executed ("Iter").
	Iterations int
	// Converged reports whether the ε criterion was met before MaxIter.
	Converged bool
	// LowerBound is the best Lagrangian dual value seen ("LB"): no TDM
	// assignment on this topology, even with relaxed integrality, can
	// achieve a smaller maximum group TDM ratio.
	LowerBound float64
	// RelaxedZ is the best fractional maximum group TDM ratio achieved
	// by LR before legalization.
	RelaxedZ float64
	// GTRNoRef is the maximum group TDM ratio after legalization but
	// before refinement ("GTR_noref").
	GTRNoRef int64
	// GTRMax is the final maximum group TDM ratio ("GTR_max").
	GTRMax int64
	// Interrupted is non-nil when the run stopped early — context
	// cancellation (context.Canceled / context.DeadlineExceeded) or a
	// contained worker panic (*par.PanicError). The reported assignment is
	// still legal; it is the best incumbent at the stop boundary rather
	// than a fully converged result.
	Interrupted error
}
