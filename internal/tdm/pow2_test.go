package tdm

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tdmroute/internal/problem"
)

func TestLegalizeRatioPow2(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 2}, {1.5, 2}, {2, 2}, {2.1, 4}, {4, 4}, {4.0001, 8},
		{7, 8}, {8, 8}, {9, 16}, {1000, 1024},
		{math.NaN(), 2},
	}
	for _, c := range cases {
		if got := legalizeRatioPow2(c.in); got != c.want {
			t.Errorf("legalizeRatioPow2(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQuickLegalizePow2Properties(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || x > 1e15 {
			x = 12345
		}
		r := legalizeRatioPow2(x)
		if r < 2 || r&(r-1) != 0 {
			return false // must be a power of two >= 2
		}
		if x > 0 && float64(r) < x {
			return false // never round down
		}
		return x <= 2 || float64(r) < 2*x // never overshoot 2x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestAssignPow2LegalAndSchedulable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		in, routes := randomAssignInstance(rng)
		assign, rep, err := Assign(context.Background(), in, routes, Options{Legal: LegalPow2, Epsilon: 1e-3, MaxIter: 500})
		if err != nil {
			t.Fatal(err)
		}
		sol := &problem.Solution{Routes: routes, Assign: assign}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for n := range assign.Ratios {
			for _, r := range assign.Ratios[n] {
				if r&(r-1) != 0 {
					t.Fatalf("trial %d: non-power-of-two ratio %d", trial, r)
				}
			}
		}
		if rep.GTRMax > rep.GTRNoRef {
			t.Errorf("trial %d: pow2 refinement worsened: %d > %d", trial, rep.GTRMax, rep.GTRNoRef)
		}
	}
}

func TestPow2CostsQualityVsEven(t *testing.T) {
	// The restricted domain can only be as good or worse than the even
	// domain (every power of two is even), summed over seeds.
	var even, pow2 int64
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		in, routes := randomAssignInstance(rng)
		_, repE, err := Assign(context.Background(), in, routes, Options{Epsilon: 1e-3, MaxIter: 500})
		if err != nil {
			t.Fatal(err)
		}
		_, repP, err := Assign(context.Background(), in, routes, Options{Legal: LegalPow2, Epsilon: 1e-3, MaxIter: 500})
		if err != nil {
			t.Fatal(err)
		}
		even += repE.GTRMax
		pow2 += repP.GTRMax
	}
	if pow2 < even {
		t.Errorf("power-of-two domain beat the even domain overall: %d < %d", pow2, even)
	}
	t.Logf("GTR totals: even=%d pow2=%d (restriction cost %.1f%%)", even, pow2, 100*float64(pow2-even)/float64(even))
}

func TestRefineEdgePow2Halves(t *testing.T) {
	cand := []candidate{{0, 0, 16}, {1, 0, 8}}
	// margin: plenty — both should halve repeatedly down to 2.
	refineEdgePow2(cand, 10)
	for _, c := range cand {
		if c.t != 2 {
			t.Errorf("candidate at %d, want 2", c.t)
		}
	}
}

func TestRefineEdgePow2RespectsMargin(t *testing.T) {
	// Margin affords exactly one 16->8 halving (cost 1/16).
	cand := []candidate{{0, 0, 16}, {1, 0, 16}}
	refineEdgePow2(cand, 1.0/16+1e-12)
	total := cand[0].t + cand[1].t
	if total != 24 {
		t.Errorf("ratios = %d,%d, want one halved", cand[0].t, cand[1].t)
	}
	for _, c := range cand {
		if c.t&(c.t-1) != 0 {
			t.Errorf("non-power-of-two after refine: %d", c.t)
		}
	}
}
