package tdm

import (
	"context"
	"sort"

	"tdmroute/internal/problem"
)

// RefinePow2 is the refinement pass for power-of-two legalized ratios: the
// only quality move that preserves the restriction is halving a ratio,
// which consumes exactly 1/t of the edge margin (1/(t/2) - 1/t = 1/t). Per
// edge it selects the same Γ-maximal candidates as Algorithm 2 and halves
// them, largest ratio first, while the margin allows. Like Refine, the
// sweep stops early between edge blocks once ctx is cancelled; every prefix
// of a sweep leaves the assignment legal.
func RefinePow2(ctx context.Context, in *problem.Instance, routes problem.Routing, ratios [][]int64, tol float64) {
	loads := problem.EdgeLoads(in.G.NumEdges(), routes)
	gamma := computeGamma(in, routes, ratios)

	var cand []candidate
	for ei, ls := range loads {
		if ei%refineCheckEvery == 0 && ctx != nil && ctx.Err() != nil {
			return
		}
		if len(ls) == 0 {
			continue
		}
		maxG := int64(-1)
		for _, l := range ls {
			if g := gamma[l.Net]; g > maxG {
				maxG = g
			}
		}
		if maxG < 0 {
			continue
		}
		cand = cand[:0]
		var recip float64
		for _, l := range ls {
			t := ratios[l.Net][l.Pos]
			recip += 1 / float64(t)
			if gamma[l.Net] == maxG {
				cand = append(cand, candidate{net: l.Net, pos: l.Pos, t: t})
			}
		}
		xi := 1 - tol - recip
		if xi <= 0 || len(cand) == 0 {
			continue
		}
		refineEdgePow2(cand, xi)
		for _, c := range cand {
			ratios[c.net][c.pos] = c.t
		}
	}
}

// refineEdgePow2 repeatedly halves the largest candidate that fits in the
// margin. Halving t consumes margin 1/t.
func refineEdgePow2(cand []candidate, xi float64) {
	sort.Slice(cand, func(i, j int) bool { return cand[i].t > cand[j].t })
	for xi > 0 {
		moved := false
		for i := range cand {
			t := cand[i].t
			if t <= 2 {
				continue
			}
			cost := 1 / float64(t)
			if cost > xi {
				continue // smaller ratios cost more: but later candidates have smaller t -> higher cost; stop scanning
			}
			cand[i].t = t / 2
			xi -= cost
			moved = true
			// Restore non-increasing order locally.
			for j := i; j+1 < len(cand) && cand[j].t < cand[j+1].t; j++ {
				cand[j], cand[j+1] = cand[j+1], cand[j]
			}
			break
		}
		if !moved {
			return
		}
	}
}
