package tdm

import (
	"container/heap"
	"sort"

	"tdmroute/internal/problem"
)

// RefineNaive is the baseline refinement the paper describes and rejects in
// Sec. IV-E: heapify the candidate TDM ratios of each edge and decrease the
// maximum by 2 per iteration until the margin is exhausted, re-heapifying
// after every decrement. It reaches the same fixed point as Refine (both
// spend the whole margin on the maximum-valued candidates) but performs one
// heap operation per 2-unit decrement, where Algorithm 2 amortizes a whole
// block decrement into one step — the difference measured by
// BenchmarkRefineVsNaive.
func RefineNaive(in *problem.Instance, routes problem.Routing, ratios [][]int64, tol float64) {
	loads := problem.EdgeLoads(in.G.NumEdges(), routes)
	gamma := computeGamma(in, routes, ratios)

	for _, ls := range loads {
		if len(ls) == 0 {
			continue
		}
		maxG := int64(-1)
		for _, l := range ls {
			if g := gamma[l.Net]; g > maxG {
				maxG = g
			}
		}
		if maxG < 0 {
			continue
		}
		var cand []candidate
		var recip float64
		for _, l := range ls {
			t := ratios[l.Net][l.Pos]
			recip += 1 / float64(t)
			if gamma[l.Net] == maxG {
				cand = append(cand, candidate{net: l.Net, pos: l.Pos, t: t})
			}
		}
		xi := 1 - tol - recip
		if xi <= 0 || len(cand) == 0 {
			continue
		}
		refineEdgeNaive(cand, xi)
		for _, c := range cand {
			ratios[c.net][c.pos] = c.t
		}
	}
}

// candidateHeap is a max-heap on candidate ratios.
type candidateHeap []candidate

func (h candidateHeap) Len() int            { return len(h) }
func (h candidateHeap) Less(i, j int) bool  { return h[i].t > h[j].t }
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// refineEdgeNaive decreases the maximum candidate by 2 per heap operation
// until no decrement fits in the margin.
func refineEdgeNaive(cand []candidate, xi float64) {
	h := candidateHeap(append([]candidate(nil), cand...))
	heap.Init(&h)
	for {
		top := h[0]
		if top.t <= 2 {
			break
		}
		cost := 1/float64(top.t-2) - 1/float64(top.t)
		if cost > xi {
			break
		}
		xi -= cost
		h[0].t -= 2
		heap.Fix(&h, 0)
	}
	// Copy refined values back by (net, pos) identity.
	sort.Slice(h, func(i, j int) bool {
		if h[i].net != h[j].net {
			return h[i].net < h[j].net
		}
		return h[i].pos < h[j].pos
	})
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].net != cand[j].net {
			return cand[i].net < cand[j].net
		}
		return cand[i].pos < cand[j].pos
	})
	for i := range cand {
		cand[i].t = h[i].t
	}
}
