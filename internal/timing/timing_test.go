package timing

import (
	"math"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

func lineInstance() (*problem.Instance, *problem.Solution) {
	g := graph.New(4, 3)
	g.AddEdge(0, 1) // e0
	g.AddEdge(1, 2) // e1
	g.AddEdge(2, 3) // e2
	in := &problem.Instance{
		G: g,
		Nets: []problem.Net{
			{Terminals: []int{0, 3}},    // long 2-pin
			{Terminals: []int{1, 0, 2}}, // multi-pin driven at 1
			{Terminals: []int{2}},       // intra-FPGA
		},
		Groups: []problem.Group{
			{Nets: []int{0}},
			{Nets: []int{0, 1}},
		},
	}
	in.RebuildNetGroups()
	sol := &problem.Solution{
		Routes: problem.Routing{{0, 1, 2}, {0, 1}, {}},
		Assign: problem.Assignment{Ratios: [][]int64{{2, 4, 8}, {4, 2}, {}}},
	}
	return in, sol
}

func TestHopDelay(t *testing.T) {
	m := Model{BaseNS: 10, PerRatioNS: 2}
	if got := m.HopDelay(4); got != 10+2*2 {
		t.Errorf("HopDelay(4) = %g", got)
	}
}

func TestAnalyzeLine(t *testing.T) {
	in, sol := lineInstance()
	m := Model{BaseNS: 10, PerRatioNS: 2, RequiredNS: 100}
	rep, err := Analyze(in, sol, m)
	if err != nil {
		t.Fatal(err)
	}
	// Net 0: hops with ratios 2,4,8 -> delays 12,14,18 -> 44 total.
	want0 := (10 + 2.0) + (10 + 4.0) + (10 + 8.0)
	if math.Abs(rep.Nets[0].DelayNS-want0) > 1e-12 {
		t.Errorf("net 0 delay = %g, want %g", rep.Nets[0].DelayNS, want0)
	}
	if rep.Nets[0].WorstSink != 3 || rep.Nets[0].Hops != 3 {
		t.Errorf("net 0 = %+v", rep.Nets[0])
	}
	// Net 1 driven at 1: sink 0 via e0 (ratio 4 -> 14), sink 2 via e1
	// (ratio 2 -> 12). Worst = 14 at sink 0.
	if math.Abs(rep.Nets[1].DelayNS-14) > 1e-12 || rep.Nets[1].WorstSink != 0 {
		t.Errorf("net 1 = %+v", rep.Nets[1])
	}
	// Intra-FPGA net: zero delay.
	if rep.Nets[2].DelayNS != 0 || rep.Nets[2].WorstSink != -1 {
		t.Errorf("net 2 = %+v", rep.Nets[2])
	}
	if rep.WorstNet != 0 {
		t.Errorf("worst net = %d", rep.WorstNet)
	}
	// Groups: g0 = {0} -> 44; g1 = {0,1} -> 44. Slack vs 100.
	if math.Abs(rep.Groups[0].SlackNS-(100-want0)) > 1e-12 {
		t.Errorf("group 0 slack = %g", rep.Groups[0].SlackNS)
	}
	if rep.Violations != 0 {
		t.Errorf("violations = %d", rep.Violations)
	}
}

func TestAnalyzeViolations(t *testing.T) {
	in, sol := lineInstance()
	rep, err := Analyze(in, sol, Model{BaseNS: 10, PerRatioNS: 2, RequiredNS: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 2 {
		t.Errorf("violations = %d, want both groups late", rep.Violations)
	}
}

func TestAnalyzeNoBudget(t *testing.T) {
	in, sol := lineInstance()
	rep, err := Analyze(in, sol, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(rep.Groups[0].SlackNS) {
		t.Error("slack should be NaN without a budget")
	}
	if rep.Violations != 0 {
		t.Error("violations counted without a budget")
	}
}

func TestAnalyzeDelayMonotoneInRatios(t *testing.T) {
	in, sol := lineInstance()
	m := Model{}
	before, err := Analyze(in, sol, m)
	if err != nil {
		t.Fatal(err)
	}
	sol.Assign.Ratios[0][1] *= 4
	after, err := Analyze(in, sol, m)
	if err != nil {
		t.Fatal(err)
	}
	if after.Nets[0].DelayNS <= before.Nets[0].DelayNS {
		t.Errorf("raising a ratio did not raise the delay: %g -> %g",
			before.Nets[0].DelayNS, after.Nets[0].DelayNS)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	in, sol := lineInstance()
	sol.Routes[0] = nil
	if _, err := Analyze(in, sol, Model{}); err == nil {
		t.Error("unrouted net accepted")
	}
	in, sol = lineInstance()
	sol.Routes[0] = []int{0} // tree no longer reaches sink 3
	sol.Assign.Ratios[0] = []int64{2}
	if _, err := Analyze(in, sol, Model{}); err == nil {
		t.Error("unreachable sink accepted")
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := Model{}.withDefaults()
	if m.BaseNS <= 0 || m.PerRatioNS <= 0 {
		t.Errorf("defaults = %+v", m)
	}
}

func TestMinPeriod(t *testing.T) {
	in, sol := lineInstance()
	m := Model{BaseNS: 10, PerRatioNS: 2}
	p, err := MinPeriod(in, sol, m)
	if err != nil {
		t.Fatal(err)
	}
	want := (10 + 2.0) + (10 + 4.0) + (10 + 8.0) // group 0's net 0
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("MinPeriod = %g, want %g", p, want)
	}
	in.Groups = nil
	in.RebuildNetGroups()
	p, err = MinPeriod(in, sol, m)
	if err != nil || p != 0 {
		t.Errorf("no groups: p=%g err=%v", p, err)
	}
}
