// Package timing evaluates the delay impact of TDM multiplexing on a
// solved system — the degradation that motivates the paper's objective
// (Sec. I: "the delay of transmitting signals with TDM is much larger than
// that without and thus deteriorates the timing of certain nets").
//
// The model is the standard prototyping estimate: crossing one inter-FPGA
// connection costs a fixed wire/SerDes latency plus a multiplexing wait
// proportional to the signal's TDM ratio on that edge (a ratio-r signal
// waits on average r/2 TDM slots for its turn). A net's delay is the worst
// driver→sink path delay through its routed Steiner tree; a NetGroup's
// slack is the required time minus its slowest member.
package timing

import (
	"fmt"
	"math"

	"tdmroute/internal/problem"
)

// Model holds the delay parameters, in nanoseconds.
type Model struct {
	// BaseNS is the fixed per-hop latency (wire + I/O buffering).
	// Zero selects 8ns, a typical FPGA-to-FPGA LVDS hop.
	BaseNS float64
	// PerRatioNS is the added wait per unit of TDM ratio on a hop
	// (slot period × ½). Zero selects 1.25ns (800 MHz TDM clock).
	PerRatioNS float64
	// RequiredNS is the timing budget for slack reporting. Zero selects
	// no budget (slacks reported against +Inf are omitted).
	RequiredNS float64
}

func (m Model) withDefaults() Model {
	if m.BaseNS == 0 {
		m.BaseNS = 8
	}
	if m.PerRatioNS == 0 {
		m.PerRatioNS = 1.25
	}
	return m
}

// HopDelay returns the modeled delay of one edge crossing at TDM ratio r.
func (m Model) HopDelay(r int64) float64 {
	return m.BaseNS + m.PerRatioNS*float64(r)/2
}

// NetTiming is the analysis result for one net.
type NetTiming struct {
	// DelayNS is the worst driver-to-sink path delay.
	DelayNS float64
	// WorstSink is the terminal achieving it (-1 for intra-FPGA nets).
	WorstSink int
	// Hops is the edge count of the worst path.
	Hops int
}

// GroupTiming is the analysis result for one NetGroup.
type GroupTiming struct {
	// DelayNS is the slowest member net's delay.
	DelayNS float64
	// WorstNet is the member achieving it.
	WorstNet int
	// SlackNS is RequiredNS - DelayNS (NaN when no budget is set).
	SlackNS float64
}

// Report is the full timing analysis of a solution.
type Report struct {
	Nets   []NetTiming
	Groups []GroupTiming
	// WorstNet / WorstGroup index the slowest entries (-1 if none).
	WorstNet   int
	WorstGroup int
	// Violations counts groups with negative slack (0 without a budget).
	Violations int
}

// Analyze computes the report. The solution must be structurally valid for
// the instance (see problem.ValidateSolution); malformed routes yield an
// error.
func Analyze(in *problem.Instance, sol *problem.Solution, model Model) (*Report, error) {
	model = model.withDefaults()
	rep := &Report{
		Nets:       make([]NetTiming, len(in.Nets)),
		Groups:     make([]GroupTiming, len(in.Groups)),
		WorstNet:   -1,
		WorstGroup: -1,
	}
	for n := range in.Nets {
		nt, err := analyzeNet(in, sol, model, n)
		if err != nil {
			return nil, err
		}
		rep.Nets[n] = nt
		if rep.WorstNet == -1 || nt.DelayNS > rep.Nets[rep.WorstNet].DelayNS {
			rep.WorstNet = n
		}
	}
	for gi := range in.Groups {
		gt := GroupTiming{WorstNet: -1, SlackNS: math.NaN()}
		for _, n := range in.Groups[gi].Nets {
			if gt.WorstNet == -1 || rep.Nets[n].DelayNS > gt.DelayNS {
				gt.DelayNS = rep.Nets[n].DelayNS
				gt.WorstNet = n
			}
		}
		if model.RequiredNS > 0 {
			gt.SlackNS = model.RequiredNS - gt.DelayNS
			if gt.SlackNS < 0 {
				rep.Violations++
			}
		}
		rep.Groups[gi] = gt
		if rep.WorstGroup == -1 || gt.DelayNS > rep.Groups[rep.WorstGroup].DelayNS {
			rep.WorstGroup = gi
		}
	}
	return rep, nil
}

// MinPeriod returns the smallest system clock period (ns) at which no
// group violates timing: the delay of the slowest group, i.e. the quantity
// that the prior works [2][3] of the paper minimize directly. It returns 0
// for systems with no groups.
func MinPeriod(in *problem.Instance, sol *problem.Solution, model Model) (float64, error) {
	rep, err := Analyze(in, sol, model)
	if err != nil {
		return 0, err
	}
	if rep.WorstGroup < 0 {
		return 0, nil
	}
	return rep.Groups[rep.WorstGroup].DelayNS, nil
}

// analyzeNet walks the net's routed tree from the driver and returns the
// worst sink delay.
func analyzeNet(in *problem.Instance, sol *problem.Solution, model Model, n int) (NetTiming, error) {
	terms := in.Nets[n].Terminals
	if len(terms) <= 1 {
		return NetTiming{WorstSink: -1}, nil
	}
	edges := sol.Routes[n]
	if len(edges) == 0 {
		return NetTiming{}, fmt.Errorf("timing: net %d unrouted", n)
	}
	// Local adjacency over the tree edges.
	type arc struct {
		to    int
		delay float64
	}
	adj := make(map[int][]arc, len(edges)+1)
	for k, e := range edges {
		ed := in.G.Edge(e)
		d := model.HopDelay(sol.Assign.Ratios[n][k])
		adj[ed.U] = append(adj[ed.U], arc{to: ed.V, delay: d})
		adj[ed.V] = append(adj[ed.V], arc{to: ed.U, delay: d})
	}
	driver := terms[0]
	dist := map[int]float64{driver: 0}
	queue := []int{driver}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range adj[u] {
			if _, ok := dist[a.to]; !ok {
				dist[a.to] = dist[u] + a.delay
				queue = append(queue, a.to)
			}
		}
	}
	nt := NetTiming{WorstSink: -1}
	for _, sink := range terms[1:] {
		d, ok := dist[sink]
		if !ok {
			return NetTiming{}, fmt.Errorf("timing: net %d: sink %d unreachable through route", n, sink)
		}
		if d > nt.DelayNS || nt.WorstSink == -1 {
			nt.DelayNS = d
			nt.WorstSink = sink
		}
	}
	// Hop count along the worst path (re-walk with hop metric).
	hops := map[int]int{driver: 0}
	queue = queue[:0]
	queue = append(queue, driver)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range adj[u] {
			if _, ok := hops[a.to]; !ok {
				hops[a.to] = hops[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	nt.Hops = hops[nt.WorstSink]
	return nt, nil
}
