package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"tdmroute"
	"tdmroute/internal/problem"
)

// DeltaPerfRow is one benchmark's ECO cost measurement: the same small edit
// is solved twice — once through the warm ModeDelta path against a retained
// base solve, once by the full cold pipeline on the patched instance — and
// the row reports both wall clocks. The edit is bias-free (nets only), so
// the patched instance captures it completely and the cold run solves the
// exact same problem the delta path does.
type DeltaPerfRow struct {
	Bench string  `json:"bench"`
	Scale float64 `json:"scale"`
	// TotalNets counts the patched instance's nets; EditedNets counts the
	// nets the delta itself adds or removes (the re-solve additionally
	// reroutes neighbors sharing edges with them).
	TotalNets  int `json:"total_nets"`
	EditedNets int `json:"edited_nets"`
	// Wall times in milliseconds, best of reps. BaseWallMS is the retained
	// base solve the delta amortizes against; ColdWallMS is the from-scratch
	// pipeline on the patched instance; DeltaWallMS is the warm re-solve.
	BaseWallMS  float64 `json:"base_wall_ms"`
	ColdWallMS  float64 `json:"cold_wall_ms"`
	DeltaWallMS float64 `json:"delta_wall_ms"`
	// Speedup is ColdWallMS / DeltaWallMS — the factor an ECO saves over
	// re-running the cold pipeline.
	Speedup float64 `json:"speedup"`
	// Final objective of each path. The two may differ slightly: the warm
	// path starts the relaxation from the captured multipliers, the cold
	// path from zero.
	DeltaGTR int64 `json:"delta_gtr"`
	ColdGTR  int64 `json:"cold_gtr"`
}

// DeltaPerf measures the ECO delta re-solve against the cold pipeline on the
// configured suite. Each benchmark is measured reps times (fastest run kept;
// the base solve is repeated per rep because a delta consumes its warm
// state). Cancellation via cfg.Ctx returns the rows completed so far with
// ErrInterrupted.
func DeltaPerf(cfg Config, reps int) ([]DeltaPerfRow, error) {
	cfg = cfg.withDefaults()
	if reps <= 0 {
		reps = 3
	}
	ins, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	var rows []DeltaPerfRow
	for _, in := range ins {
		if cfg.ctx().Err() != nil {
			return rows, cfg.interrupted(nil)
		}
		row, err := deltaBench(cfg, in, reps)
		if err != nil {
			return rows, fmt.Errorf("%s: %w", in.Name, err)
		}
		rows = append(rows, row)
		cfg.progress("%s done: delta %.1fms vs cold %.1fms (%.1fx)",
			in.Name, row.DeltaWallMS, row.ColdWallMS, row.Speedup)
	}
	return rows, nil
}

// ecoEdit builds the deterministic measurement edit for an instance: remove
// its first multi-terminal net and add a fresh 2-pin net between that net's
// first two terminals. No EdgeBias — capacity pressure has no instance-level
// representation, and a biased delta would leave the cold reference solving
// a different problem.
func ecoEdit(in *problem.Instance) (*tdmroute.Delta, error) {
	for n := range in.Nets {
		t := in.Nets[n].Terminals
		if len(t) >= 2 {
			return &tdmroute.Delta{
				RemoveNets: []int{n},
				AddNets:    []tdmroute.Net{{Terminals: []int{t[0], t[1]}}},
			}, nil
		}
	}
	return nil, fmt.Errorf("no multi-terminal net to edit")
}

func deltaBench(cfg Config, in *problem.Instance, reps int) (DeltaPerfRow, error) {
	opt := cfg.solveOptions(in.Name)
	d, err := ecoEdit(in)
	if err != nil {
		return DeltaPerfRow{}, err
	}
	row := DeltaPerfRow{Bench: in.Name, Scale: cfg.Scale, EditedNets: len(d.RemoveNets) + len(d.AddNets)}

	// Warm path: base solve with retention, then the delta re-solve. The
	// delta consumes the warm state, so every rep rebuilds its own base.
	var deltaRes *tdmroute.Response
	var patched *problem.Instance
	for i := 0; i < reps; i++ {
		work := in.Clone()
		t0 := time.Now()
		base, err := tdmroute.Run(cfg.ctx(), tdmroute.Request{Instance: work, Options: opt, Retain: true})
		baseWall := time.Since(t0)
		if err != nil {
			return row, err
		}
		if base.Degraded != nil {
			return row, cfg.interrupted(base.Degraded.Cause)
		}
		t0 = time.Now()
		res, err := tdmroute.Run(cfg.ctx(), tdmroute.Request{Mode: tdmroute.ModeDelta, Base: base.Warm, Delta: d, Options: opt})
		deltaWall := time.Since(t0)
		if err != nil {
			return row, err
		}
		if res.Degraded != nil {
			return row, cfg.interrupted(res.Degraded.Cause)
		}
		if i == 0 || ms(baseWall) < row.BaseWallMS {
			row.BaseWallMS = ms(baseWall)
		}
		if deltaRes == nil || ms(deltaWall) < row.DeltaWallMS {
			row.DeltaWallMS = ms(deltaWall)
			deltaRes = res
			patched = base.Warm.Instance()
		}
	}
	if err := problem.ValidateSolution(patched, deltaRes.Solution); err != nil {
		return row, fmt.Errorf("delta solution invalid: %w", err)
	}
	row.TotalNets = len(patched.Nets)
	row.DeltaGTR = deltaRes.Report.GTRMax

	// Cold reference: the full pipeline on the patched instance.
	for i := 0; i < reps; i++ {
		cold := in.Clone()
		if err := d.Apply(cold); err != nil {
			return row, fmt.Errorf("patching cold instance: %w", err)
		}
		t0 := time.Now()
		res, err := tdmroute.Run(cfg.ctx(), tdmroute.Request{Instance: cold, Options: opt})
		coldWall := time.Since(t0)
		if err != nil {
			return row, err
		}
		if res.Degraded != nil {
			return row, cfg.interrupted(res.Degraded.Cause)
		}
		if i == 0 || ms(coldWall) < row.ColdWallMS {
			row.ColdWallMS = ms(coldWall)
			row.ColdGTR = res.Report.GTRMax
		}
	}
	if row.DeltaWallMS > 0 {
		row.Speedup = row.ColdWallMS / row.DeltaWallMS
	}
	return row, nil
}

// WriteDeltaPerf renders the ECO measurement as a text table with a geomean
// speedup summary line.
func WriteDeltaPerf(w io.Writer, rows []DeltaPerfRow) {
	fmt.Fprintln(w, "ECO delta re-solve vs cold pipeline on the patched instance")
	fmt.Fprintf(w, "%-12s %7s %6s %10s %10s %10s %9s %9s %8s\n",
		"bench", "nets", "edits", "base(ms)", "cold(ms)", "delta(ms)", "coldGTR", "deltaGTR", "speedup")
	logSum, n := 0.0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7d %6d %10.1f %10.1f %10.1f %9d %9d %7.1fx\n",
			r.Bench, r.TotalNets, r.EditedNets, r.BaseWallMS, r.ColdWallMS, r.DeltaWallMS,
			r.ColdGTR, r.DeltaGTR, r.Speedup)
		if r.Speedup > 0 {
			logSum += math.Log(r.Speedup)
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(w, "geomean speedup: %.1fx over %d benchmarks\n", math.Exp(logSum/float64(n)), n)
	}
}
