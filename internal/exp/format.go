package exp

import (
	"fmt"
	"io"
	"strings"

	"tdmroute/internal/baseline"
	"tdmroute/internal/problem"
)

// DefaultWinners adapts the three emulated contest entries of
// internal/baseline to the harness interface.
func DefaultWinners() []WinnerFlow {
	ws := baseline.Winners()
	out := make([]WinnerFlow, len(ws))
	for i, w := range ws {
		out[i] = WinnerFlow{Name: w.Name, Route: w.Route, Assign: w.Assign}
	}
	return out
}

// WriteTableI renders the Table I statistics.
func WriteTableI(w io.Writer, rows []problem.Stats) {
	fmt.Fprintf(w, "Table I: benchmark statistics (synthetic suite)\n")
	fmt.Fprintf(w, "%-12s %8s %8s %10s %12s\n", "Benchmark", "#FPGAs", "#Edges", "#Nets", "#NetGroups")
	for _, s := range rows {
		fmt.Fprintf(w, "%-12s %8d %8d %10d %12d\n", s.Name, s.FPGAs, s.Edges, s.Nets, s.NetGroups)
	}
}

// WriteTableII renders the winner comparison in the layout of Table II.
func WriteTableII(w io.Writer, results []BenchResult) {
	if len(results) == 0 {
		return
	}
	names := make([]string, len(results))
	for i, r := range results {
		names[i] = r.Name
	}
	fmt.Fprintf(w, "Table II: comparison with emulated contest winners ('+TA' = our TDM ratio assignment on their topology)\n")
	fmt.Fprintf(w, "%-14s", "")
	for _, n := range names {
		fmt.Fprintf(w, " %14s", n)
	}
	fmt.Fprintln(w)

	k := len(results[0].Winners)
	ratios, ratiosTA := GeoMeanRatios(results)
	for i := 0; i < k; i++ {
		label := fmt.Sprintf("%d%s", i+1, ordinal(i+1))
		row(w, label+" GTRmax", results, func(r BenchResult) string { return fmt.Sprintf("%d", r.Winners[i].GTRMax) })
		row(w, label+" Time_all", results, func(r BenchResult) string { return fmt.Sprintf("%.3fs", r.Winners[i].TimeAll.Seconds()) })
		row(w, label+"+TA GTRmax", results, func(r BenchResult) string { return fmt.Sprintf("%d", r.WinnersTA[i].GTRMax) })
		row(w, label+"+TA LB", results, func(r BenchResult) string { return fmt.Sprintf("%.0f", r.WinnersTA[i].LB) })
		row(w, label+"+TA Iter", results, func(r BenchResult) string { return fmt.Sprintf("%d", r.WinnersTA[i].Iter) })
		row(w, label+"+TA Time_TA", results, func(r BenchResult) string { return fmt.Sprintf("%.3fs", r.WinnersTA[i].TimeTA.Seconds()) })
		fmt.Fprintf(w, "%-14s ratio vs ours: %.4f (own), %.4f (+TA)\n", "", ratios[i], ratiosTA[i])
	}
	row(w, "Ours GTRnoref", results, func(r BenchResult) string { return fmt.Sprintf("%d", r.OursNoRef) })
	row(w, "Ours GTRmax", results, func(r BenchResult) string { return fmt.Sprintf("%d", r.Ours.GTRMax) })
	row(w, "Ours Time_all", results, func(r BenchResult) string { return fmt.Sprintf("%.3fs", r.OursTimeAll.Seconds()) })
	row(w, "Ours LB", results, func(r BenchResult) string { return fmt.Sprintf("%.0f", r.Ours.LB) })
	row(w, "Ours Iter", results, func(r BenchResult) string { return fmt.Sprintf("%d", r.Ours.Iter) })
	row(w, "Ours Time_TA", results, func(r BenchResult) string { return fmt.Sprintf("%.3fs", r.Ours.TimeTA.Seconds()) })
}

func row(w io.Writer, label string, results []BenchResult, cell func(BenchResult) string) {
	fmt.Fprintf(w, "%-14s", label)
	for _, r := range results {
		fmt.Fprintf(w, " %14s", cell(r))
	}
	fmt.Fprintln(w)
}

func ordinal(n int) string {
	switch n {
	case 1:
		return "st"
	case 2:
		return "nd"
	case 3:
		return "rd"
	}
	return "th"
}

// WriteFig3a renders the runtime breakdown with the Fig. 3(a) labels.
func WriteFig3a(w io.Writer, b Breakdown) {
	lr, route, parse, output, legal := b.Percent()
	fmt.Fprintf(w, "Fig. 3(a): average runtime share per stage (total %.3fs)\n", b.Total().Seconds())
	fmt.Fprintf(w, "  Lagrangian Relaxation:     %6.2f%%\n", lr)
	fmt.Fprintf(w, "  Inter-FPGA Routing:        %6.2f%%\n", route)
	fmt.Fprintf(w, "  Input File Parsing:        %6.2f%%\n", parse)
	fmt.Fprintf(w, "  Output File Writing:       %6.2f%%\n", output)
	fmt.Fprintf(w, "  Legalization & Refinement: %6.2f%%\n", legal)
}

// WriteFig3b renders the convergence series as CSV (iteration, z, LB) —
// the two curves of Fig. 3(b).
func WriteFig3b(w io.Writer, series []ConvergencePoint) {
	fmt.Fprintln(w, "iter,z,lb")
	for _, p := range series {
		fmt.Fprintf(w, "%d,%.6f,%.6f\n", p.Iter, p.Z, p.LB)
	}
}

// WriteAblation renders the update-rule comparison.
func WriteAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation: multiplier update rule, relative duality gap at fixed iteration budget")
	fmt.Fprintf(w, "%-12s %8s %16s %16s %10s\n", "Benchmark", "Budget", "Sigmoid+SMA gap", "Subgradient gap", "SMA iters")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %16.3e %16.3e %10d\n", r.Name, r.Budget, r.GapSigmoidSMA, r.GapSubgradient, r.IterSigmoidSMA)
	}
}

// WritePow2Ablation renders the ratio-domain comparison.
func WritePow2Ablation(w io.Writer, rows []Pow2Row) {
	fmt.Fprintln(w, "Ablation: even-integer ratios (paper) vs power-of-two restriction (refs [2][3])")
	fmt.Fprintf(w, "%-12s %12s %12s %10s %20s\n", "Benchmark", "GTR even", "GTR pow2", "cost", "pow2 frames checked")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12d %12d %9.1f%% %14d (+%d skipped)\n",
			r.Name, r.GTREven, r.GTRPow2, r.CostPct, r.Verified, r.Skipped)
	}
}

// WriteRouterAblation renders the Sec. III ingredient comparison.
func WriteRouterAblation(w io.Writer, rows []RouterAblationRow) {
	fmt.Fprintln(w, "Ablation: router ingredients (GTR_max after full TDM assignment)")
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n", "Benchmark", "full", "no rip-up", "no theta", "baseline")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12d %12d %12d %12d\n", r.Name, r.GTRFull, r.GTRNoRipUp, r.GTRNoTheta, r.GTRBaseline)
	}
}

// WriteScaling renders the size sweep.
func WriteScaling(w io.Writer, bench string, rows []ScalingRow) {
	fmt.Fprintf(w, "Scaling on %s: runtime and quality vs instance size\n", bench)
	fmt.Fprintf(w, "%-8s %10s %10s %12s %12s %8s %10s\n", "scale", "#nets", "#groups", "GTR_max", "LB", "iters", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8g %10d %10d %12d %12.0f %8d %9.3fs\n",
			r.Scale, r.Nets, r.Groups, r.GTR, r.LB, r.Iter, r.Time.Seconds())
	}
}

// WriteTableIICSV emits the Table II results as one machine-readable CSV
// row per (benchmark, flow) pair for downstream plotting.
func WriteTableIICSV(w io.Writer, results []BenchResult) {
	fmt.Fprintln(w, "benchmark,flow,gtr_max,lb,iter,time_s")
	for _, r := range results {
		for i := range r.Winners {
			label := fmt.Sprintf("%d%s", i+1, ordinal(i+1))
			fmt.Fprintf(w, "%s,%s,%d,,,%.6f\n", r.Name, label, r.Winners[i].GTRMax, r.Winners[i].TimeAll.Seconds())
			fmt.Fprintf(w, "%s,%s+TA,%d,%.1f,%d,%.6f\n", r.Name, label,
				r.WinnersTA[i].GTRMax, r.WinnersTA[i].LB, r.WinnersTA[i].Iter, r.WinnersTA[i].TimeTA.Seconds())
		}
		fmt.Fprintf(w, "%s,ours_noref,%d,,,\n", r.Name, r.OursNoRef)
		fmt.Fprintf(w, "%s,ours,%d,%.1f,%d,%.6f\n", r.Name,
			r.Ours.GTRMax, r.Ours.LB, r.Ours.Iter, r.OursTimeAll.Seconds())
	}
}

// Summary one-line sanity description used by cmd/bench logging.
func Summary(results []BenchResult) string {
	var sb strings.Builder
	ratios, ratiosTA := GeoMeanRatios(results)
	for i := range ratios {
		fmt.Fprintf(&sb, "%d%s: %.4f own / %.4f +TA; ", i+1, ordinal(i+1), ratios[i], ratiosTA[i])
	}
	return sb.String()
}
