package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestDeltaPerfShape runs the ECO measurement on a tiny benchmark and checks
// the row is fully populated and renders.
func TestDeltaPerfShape(t *testing.T) {
	cfg := Config{Scale: 0.002, Benchmarks: []string{"synopsys01"}}
	rows, err := DeltaPerf(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Bench != "synopsys01" || r.TotalNets <= 0 {
		t.Errorf("row identity: %+v", r)
	}
	if r.EditedNets != 2 {
		t.Errorf("edited nets = %d, want 2 (one removed, one added)", r.EditedNets)
	}
	if r.BaseWallMS <= 0 || r.ColdWallMS <= 0 || r.DeltaWallMS <= 0 {
		t.Errorf("missing wall times: %+v", r)
	}
	if r.Speedup <= 0 {
		t.Errorf("speedup = %v, want > 0", r.Speedup)
	}
	if r.DeltaGTR <= 0 || r.ColdGTR <= 0 {
		t.Errorf("non-positive GTR: delta=%d cold=%d", r.DeltaGTR, r.ColdGTR)
	}

	var buf bytes.Buffer
	WriteDeltaPerf(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "synopsys01") || !strings.Contains(out, "geomean speedup") {
		t.Errorf("rendered table missing content:\n%s", out)
	}
}
