package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tdmroute"
	"tdmroute/internal/problem"
)

// PerfRow is one benchmark's measurement in the performance trajectory: the
// iterated co-optimization flow timed per stage, with the work counters and
// a solution digest so regressions in speed or in byte-identity both show up
// in the committed baselines (BENCH_<n>.json).
type PerfRow struct {
	Bench   string  `json:"bench"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`
	// Queue is the resolved wire name of the routing queue engine the row
	// was measured with; Partitions is the partitioned-routing region
	// count. Rows from schema generations before these knobs existed lack
	// the fields; ReadPerfJSON backfills them.
	Queue      string `json:"queue,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
	// RoundsRequested is the -iterate budget; RoundsRun/RoundsKept report
	// how many feedback rounds actually executed and survived.
	RoundsRequested int `json:"rounds_requested"`
	RoundsRun       int `json:"rounds_run"`
	RoundsKept      int `json:"rounds_kept"`
	// Wall times in milliseconds; WallMS is the best of Reps end-to-end
	// solves, and the stage times are from that same best run.
	WallMS        float64 `json:"wall_ms"`
	RouteMS       float64 `json:"route_ms"`
	LRMS          float64 `json:"lr_ms"`
	LegalRefineMS float64 `json:"legal_refine_ms"`
	// Solution quality and solver work counters.
	GTRMax         int64 `json:"gtr_max"`
	InitialGTR     int64 `json:"initial_gtr"`
	LRIterations   int   `json:"lr_iterations"`
	RippedNets     int   `json:"ripped_nets"`
	RevertedRounds int   `json:"reverted_rounds"`
	// SolutionSHA256 digests the contest-format solution bytes: two builds
	// claiming byte-identical output must agree on this hash.
	SolutionSHA256 string `json:"solution_sha256"`
}

// PerfReport is the machine-readable output of a -benchjson run.
type PerfReport struct {
	Scale   float64   `json:"scale"`
	Workers int       `json:"workers"`
	Rounds  int       `json:"rounds"`
	Reps    int       `json:"reps"`
	Rows    []PerfRow `json:"rows"`
}

// Perf measures the iterated solve on the configured suite: each benchmark
// is solved reps times with the given feedback-round budget and the
// fastest run's timings are kept (solutions are deterministic, so every rep
// produces identical bytes — the digest guards that too). Cancellation via
// cfg.Ctx returns the rows completed so far with ErrInterrupted.
func Perf(cfg Config, rounds, reps int) (*PerfReport, error) {
	cfg = cfg.withDefaults()
	if rounds <= 0 {
		rounds = 6
	}
	if reps <= 0 {
		reps = 3
	}
	ins, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	rep := &PerfReport{Scale: cfg.Scale, Workers: cfg.Workers, Rounds: rounds, Reps: reps}
	for _, in := range ins {
		if cfg.ctx().Err() != nil {
			return rep, cfg.interrupted(nil)
		}
		row, err := perfBench(cfg, in, rounds, reps)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", in.Name, err)
		}
		rep.Rows = append(rep.Rows, row)
		cfg.progress("%s done: GTR %d in %.1fms (%d/%d rounds kept)",
			in.Name, row.GTRMax, row.WallMS, row.RoundsKept, row.RoundsRun)
	}
	return rep, nil
}

func perfBench(cfg Config, in *problem.Instance, rounds, reps int) (PerfRow, error) {
	req := tdmroute.Request{
		Instance: in,
		Mode:     tdmroute.ModeIterative,
		Rounds:   rounds,
		Options:  cfg.solveOptions(in.Name),
	}
	var best time.Duration
	var res *tdmroute.Response
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		r, err := tdmroute.Run(cfg.ctx(), req)
		elapsed := time.Since(t0)
		if err != nil {
			return PerfRow{}, err
		}
		if r.Degraded != nil {
			return PerfRow{}, cfg.interrupted(r.Degraded.Cause)
		}
		if res == nil || elapsed < best {
			best, res = elapsed, r
		}
	}
	row, err := RowFromResponse(in.Name, res, best)
	if err != nil {
		return PerfRow{}, err
	}
	row.Scale = cfg.Scale
	row.Workers = cfg.Workers
	row.Queue = cfg.queueName()
	row.Partitions = cfg.Partitions
	row.RoundsRequested = rounds
	return row, nil
}

// RowFromResponse converts one finished solve into the PerfRow telemetry
// shape: the serve package reuses it to report per-job stage walls, work
// counters, and the solution digest with the exact fields the committed
// BENCH_<n>.json baselines use. Wall is the end-to-end wall clock observed
// by the caller; fields without a source in the response (Scale,
// RoundsRequested) are left zero for the caller to fill.
func RowFromResponse(name string, res *tdmroute.Response, wall time.Duration) (PerfRow, error) {
	var buf bytes.Buffer
	if err := problem.WriteSolution(&buf, res.Solution); err != nil {
		return PerfRow{}, err
	}
	return PerfRow{
		Bench:          name,
		RoundsRun:      res.RoundsRun,
		RoundsKept:     res.RoundsKept,
		WallMS:         ms(wall),
		RouteMS:        ms(res.Times.Route),
		LRMS:           ms(res.Times.LR),
		LegalRefineMS:  ms(res.Times.LegalRefine),
		GTRMax:         res.Report.GTRMax,
		InitialGTR:     res.InitialGTR,
		LRIterations:   res.Report.Iterations,
		RippedNets:     res.RouteStats.RippedNets,
		RevertedRounds: res.RouteStats.RevertedRound,
		SolutionSHA256: fmt.Sprintf("%x", sha256.Sum256(buf.Bytes())),
	}, nil
}

// ms converts a duration to fractional milliseconds for the JSON rows.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// WritePerfJSON renders the report as indented JSON ending in a newline.
func WritePerfJSON(w io.Writer, rep *PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadPerfJSON parses a PerfReport written by WritePerfJSON, tolerating rows
// from older baselines: rows without a "scale" field inherit the report-level
// scale, and rows without a "queue" field are backfilled with "heap" — the
// only engine that existed before the knob did — so comparisons across
// baseline generations stay column-complete.
func ReadPerfJSON(r io.Reader) (*PerfReport, error) {
	var rep PerfReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("exp: reading perf report: %w", err)
	}
	for i := range rep.Rows {
		row := &rep.Rows[i]
		if row.Scale == 0 {
			row.Scale = rep.Scale
		}
		if row.Queue == "" {
			row.Queue = "heap"
		}
	}
	return &rep, nil
}
