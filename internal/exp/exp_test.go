package exp

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg keeps harness tests fast: two benchmarks at a tiny scale.
func smallCfg() Config {
	return Config{Scale: 0.002, Benchmarks: []string{"synopsys01", "synopsys02"}}
}

func TestTableI(t *testing.T) {
	rows, err := TableI(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].FPGAs != 43 || rows[0].Edges != 214 {
		t.Errorf("synopsys01 board: %+v", rows[0])
	}
	if rows[0].Nets != 137 { // 68500 * 0.002
		t.Errorf("scaled nets = %d, want 137", rows[0].Nets)
	}
	var buf bytes.Buffer
	WriteTableI(&buf, rows)
	if !strings.Contains(buf.String(), "synopsys02") {
		t.Error("rendered table missing benchmark name")
	}
}

func TestTableIIShape(t *testing.T) {
	results, err := TableII(smallCfg(), DefaultWinners())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if len(r.Winners) != 3 || len(r.WinnersTA) != 3 {
			t.Fatalf("%s: %d winners, %d +TA", r.Name, len(r.Winners), len(r.WinnersTA))
		}
		for i := range r.Winners {
			// +TA must improve (or at least not worsen) every winner.
			if r.WinnersTA[i].GTRMax > r.Winners[i].GTRMax {
				t.Errorf("%s winner %d: +TA worsened %d -> %d", r.Name, i, r.Winners[i].GTRMax, r.WinnersTA[i].GTRMax)
			}
			// LB must not exceed the +TA result.
			if float64(r.WinnersTA[i].GTRMax) < r.WinnersTA[i].LB-1e-6*r.WinnersTA[i].LB {
				t.Errorf("%s winner %d: GTR %d below LB %g", r.Name, i, r.WinnersTA[i].GTRMax, r.WinnersTA[i].LB)
			}
		}
		// Refinement claim: GTRmax <= GTRnoref.
		if r.Ours.GTRMax > r.OursNoRef {
			t.Errorf("%s: refinement worsened: %d > %d", r.Name, r.Ours.GTRMax, r.OursNoRef)
		}
		// Headline claim: ours no worse than every winner's own flow.
		for i := range r.Winners {
			if r.Ours.GTRMax > r.Winners[i].GTRMax {
				t.Errorf("%s: ours %d worse than winner %d's %d", r.Name, r.Ours.GTRMax, i+1, r.Winners[i].GTRMax)
			}
		}
	}
	ratios, ratiosTA := GeoMeanRatios(results)
	for i := range ratios {
		if ratios[i] < 1-1e-9 {
			t.Errorf("winner %d ratio %.4f < 1: ours should win on average", i+1, ratios[i])
		}
		if ratiosTA[i] > ratios[i]+1e-9 {
			t.Errorf("winner %d: +TA ratio %.4f worse than own %.4f", i+1, ratiosTA[i], ratios[i])
		}
	}
	var buf bytes.Buffer
	WriteTableII(&buf, results)
	out := buf.String()
	for _, label := range []string{"1st GTRmax", "2nd+TA GTRmax", "Ours GTRnoref", "Ours LB"} {
		if !strings.Contains(out, label) {
			t.Errorf("rendered Table II missing %q", label)
		}
	}
	if Summary(results) == "" {
		t.Error("empty summary")
	}
}

func TestFig3a(t *testing.T) {
	b, err := Fig3a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() <= 0 {
		t.Fatal("no time measured")
	}
	lr, route, parse, output, legal := b.Percent()
	sum := lr + route + parse + output + legal
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("percentages sum to %.2f", sum)
	}
	// Shape of Fig. 3(a): LR dominates, legalization+refinement is tiny.
	if lr < route {
		t.Logf("note: LR (%.1f%%) below routing (%.1f%%) at this scale", lr, route)
	}
	if legal > lr {
		t.Errorf("legalization (%.1f%%) exceeds LR (%.1f%%)", legal, lr)
	}
	var buf bytes.Buffer
	WriteFig3a(&buf, b)
	if !strings.Contains(buf.String(), "Lagrangian Relaxation") {
		t.Error("rendered Fig 3a missing label")
	}
}

func TestFig3b(t *testing.T) {
	series, err := Fig3b(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 2 {
		t.Fatalf("series too short: %d", len(series))
	}
	for i, p := range series {
		if p.Iter != i {
			t.Fatalf("iteration %d labeled %d", i, p.Iter)
		}
		if p.LB > p.Z+1e-6*p.Z {
			t.Fatalf("iter %d: LB %g above z %g", i, p.LB, p.Z)
		}
	}
	// Convergence: final gap below initial gap.
	first := series[0].Z - series[0].LB
	last := series[len(series)-1].Z - series[len(series)-1].LB
	if last > first {
		t.Errorf("gap grew: %g -> %g", first, last)
	}
	var buf bytes.Buffer
	WriteFig3b(&buf, series)
	if !strings.HasPrefix(buf.String(), "iter,z,lb\n") {
		t.Error("CSV header missing")
	}
}

func TestAblation(t *testing.T) {
	rows, err := Ablation(smallCfg(), 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var smaTotal, subTotal float64
	for _, r := range rows {
		smaTotal += r.GapSigmoidSMA
		subTotal += r.GapSubgradient
	}
	if smaTotal > subTotal {
		t.Errorf("Sigmoid+SMA total gap %g worse than subgradient %g", smaTotal, subTotal)
	}
	var buf bytes.Buffer
	WriteAblation(&buf, rows)
	if !strings.Contains(buf.String(), "Sigmoid+SMA") {
		t.Error("rendered ablation missing header")
	}
}

func TestEpsilonMapping(t *testing.T) {
	if epsilonFor("synopsys03") != 0.0027 {
		t.Error("small benchmark epsilon wrong")
	}
	if epsilonFor("synopsys06") != 0.0005 || epsilonFor("hidden03") != 0.0005 {
		t.Error("large benchmark epsilon wrong")
	}
}

func TestConfigUnknownBenchmark(t *testing.T) {
	_, err := TableI(Config{Scale: 0.01, Benchmarks: []string{"bogus"}})
	if err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPow2Ablation(t *testing.T) {
	rows, err := Pow2Ablation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GTRPow2 < r.GTREven {
			t.Errorf("%s: restricted domain beat the even domain: %d < %d", r.Name, r.GTRPow2, r.GTREven)
		}
		if r.Verified == 0 {
			t.Errorf("%s: no pow2 frames verified", r.Name)
		}
	}
	var buf bytes.Buffer
	WritePow2Ablation(&buf, rows)
	if !strings.Contains(buf.String(), "pow2") {
		t.Error("rendered pow2 ablation missing header")
	}
}

func TestRouterAblation(t *testing.T) {
	rows, err := RouterAblation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, v := range []int64{r.GTRFull, r.GTRNoRipUp, r.GTRNoTheta, r.GTRBaseline} {
			if v <= 0 {
				t.Errorf("%s: nonpositive GTR %d", r.Name, v)
			}
		}
	}
	var buf bytes.Buffer
	WriteRouterAblation(&buf, rows)
	if !strings.Contains(buf.String(), "no rip-up") {
		t.Error("rendered router ablation missing column")
	}
}

func TestScaling(t *testing.T) {
	rows, err := Scaling("synopsys01", []float64{0.001, 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Nets <= rows[0].Nets {
		t.Errorf("net counts not growing: %d -> %d", rows[0].Nets, rows[1].Nets)
	}
	for _, r := range rows {
		if r.GTR <= 0 || r.Time <= 0 {
			t.Errorf("row = %+v", r)
		}
	}
	var buf bytes.Buffer
	WriteScaling(&buf, "synopsys01", rows)
	if !strings.Contains(buf.String(), "GTR_max") {
		t.Error("rendered scaling missing header")
	}
	if _, err := Scaling("bogus", []float64{0.01}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestWriteTableIICSV(t *testing.T) {
	results, err := TableII(Config{Scale: 0.002, Benchmarks: []string{"synopsys01"}}, DefaultWinners())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteTableIICSV(&buf, results)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 3 winners x 2 rows + noref + ours = 1 + 8.
	if len(lines) != 9 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "benchmark,flow,gtr_max,lb,iter,time_s" {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "synopsys01,") {
			t.Errorf("row missing benchmark: %q", l)
		}
	}
}

func TestProgressHook(t *testing.T) {
	var lines []string
	cfg := Config{Scale: 0.002, Benchmarks: []string{"synopsys01"},
		Progress: func(l string) { lines = append(lines, l) }}
	if _, err := TableII(cfg, DefaultWinners()); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "synopsys01 done") {
		t.Errorf("progress lines = %v", lines)
	}
}
