package exp

import (
	"bytes"
	"context"
	"io"
	"math"
	"time"

	"tdmroute"
	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
	"tdmroute/internal/route"
	"tdmroute/internal/tdm"
)

// Breakdown is the Fig. 3(a) runtime share per pipeline stage, averaged
// over the configured benchmarks.
type Breakdown struct {
	Parse       time.Duration
	Route       time.Duration
	LR          time.Duration
	LegalRefine time.Duration
	Output      time.Duration
}

// Total returns the sum of all stages.
func (b Breakdown) Total() time.Duration {
	return b.Parse + b.Route + b.LR + b.LegalRefine + b.Output
}

// Percent returns each stage's share of the total, in Fig. 3(a) label
// order: LR, routing, parsing, output, legalization+refinement.
func (b Breakdown) Percent() (lr, route, parse, output, legal float64) {
	total := b.Total()
	if total == 0 {
		return
	}
	f := 100 / float64(total)
	return float64(b.LR) * f, float64(b.Route) * f, float64(b.Parse) * f,
		float64(b.Output) * f, float64(b.LegalRefine) * f
}

// Fig3a measures the per-stage runtime over the configured suite, including
// real text parsing and output writing so the I/O slices of the pie chart
// are populated: every instance is serialized to its text form and parsed
// back, and every solution is written out.
func Fig3a(cfg Config) (Breakdown, error) {
	cfg = cfg.withDefaults()
	ins, err := cfg.instances()
	if err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	for _, in := range ins {
		if cfg.ctx().Err() != nil {
			return b, cfg.interrupted(nil)
		}
		var buf bytes.Buffer
		if err := problem.WriteInstance(&buf, in); err != nil {
			return b, err
		}

		t0 := time.Now()
		parsed, err := problem.ParseInstance(in.Name, &buf)
		if err != nil {
			return b, err
		}
		b.Parse += time.Since(t0)

		opt := cfg.solveOptions(in.Name)
		t1 := time.Now()
		routes, _, err := route.Route(cfg.ctx(), parsed, opt.Route)
		if err != nil {
			return b, err
		}
		b.Route += time.Since(t1)

		t2 := time.Now()
		relaxed, _, _, _, _, stopped := tdm.RunLR(cfg.ctx(), parsed, routes, opt.TDM)
		b.LR += time.Since(t2)
		if relaxed == nil {
			return b, stopped
		}

		t3 := time.Now()
		assign, _, err := tdm.Finish(cfg.ctx(), parsed, routes, relaxed, opt.TDM)
		if err != nil {
			return b, err
		}
		b.LegalRefine += time.Since(t3)

		t4 := time.Now()
		sol := &problem.Solution{Routes: routes, Assign: assign}
		if err := problem.WriteSolution(io.Discard, sol); err != nil {
			return b, err
		}
		b.Output += time.Since(t4)
	}
	return b, nil
}

// ConvergencePoint is one Fig. 3(b) sample: the fractional maximum group
// TDM ratio z and the Lagrangian lower bound LB at an LR iteration.
type ConvergencePoint struct {
	Iter int
	Z    float64
	LB   float64
}

// Fig3b runs LR on the first configured benchmark (synopsys01 in the paper)
// and returns the per-iteration convergence series.
func Fig3b(cfg Config) ([]ConvergencePoint, error) {
	cfg = cfg.withDefaults()
	cfg.Benchmarks = cfg.Benchmarks[:1]
	ins, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	in := ins[0]
	routes, _, err := route.Route(cfg.ctx(), in, tdmroute.RouteOptions{RipUpRounds: cfg.RipUpRounds})
	if err != nil {
		return nil, err
	}
	var series []ConvergencePoint
	opt := cfg.tdmOptions(in.Name)
	opt.Trace = func(iter int, z, lb float64) {
		series = append(series, ConvergencePoint{Iter: iter, Z: z, LB: lb})
	}
	// A cancelled run truncates the series; the collected prefix is still a
	// valid convergence plot.
	tdm.RunLR(cfg.ctx(), in, routes, opt)
	return series, nil
}

// AblationRow compares the two multiplier update rules on one benchmark at
// a fixed iteration budget.
type AblationRow struct {
	Name   string
	Budget int
	// GapSigmoidSMA and GapSubgradient are the relative duality gaps
	// (z-LB)/LB after Budget iterations.
	GapSigmoidSMA  float64
	GapSubgradient float64
	// IterSigmoidSMA is the iteration count at which the Sigmoid+SMA rule
	// reached the benchmark's ε (MaxIter if it never did within budget).
	IterSigmoidSMA int
}

// Ablation runs the update-rule comparison across the configured suite.
func Ablation(cfg Config, budget int) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	if budget <= 0 {
		budget = 300
	}
	ins, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, len(ins))
	for _, in := range ins {
		if cfg.ctx().Err() != nil {
			return rows, cfg.interrupted(nil)
		}
		routes, _, err := route.Route(cfg.ctx(), in, tdmroute.RouteOptions{RipUpRounds: cfg.RipUpRounds})
		if err != nil {
			return rows, err
		}
		row := AblationRow{Name: in.Name, Budget: budget}

		opt := cfg.tdmOptions(in.Name)
		opt.MaxIter = budget
		_, z1, lb1, it1, _, _ := tdm.RunLR(cfg.ctx(), in, routes, opt)
		row.GapSigmoidSMA = gap(z1, lb1)
		row.IterSigmoidSMA = it1

		opt.Update = tdm.UpdateSubgradient
		_, z2, lb2, _, _, _ := tdm.RunLR(cfg.ctx(), in, routes, opt)
		row.GapSubgradient = gap(z2, lb2)

		rows = append(rows, row)
	}
	return rows, nil
}

// ScalingRow is one point of the size sweep backing the paper's "runtimes
// are acceptable for practical use of large-scale multi-FPGA systems"
// claim.
type ScalingRow struct {
	Scale  float64
	Nets   int
	Groups int
	GTR    int64
	LB     float64
	Iter   int
	Time   time.Duration
}

// Scaling solves one suite benchmark at increasing scales and reports how
// runtime and quality grow.
func Scaling(bench string, scales []float64) ([]ScalingRow, error) {
	rows := make([]ScalingRow, 0, len(scales))
	for _, scale := range scales {
		cfg, err := gen.SuiteConfig(bench, scale)
		if err != nil {
			return nil, err
		}
		in, err := gen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		in.Name = bench
		t0 := time.Now()
		res, err := tdmroute.Run(context.Background(), tdmroute.Request{
			Instance: in,
			Options:  tdmroute.Options{TDM: tdmroute.TDMOptions{Epsilon: epsilonFor(bench)}},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Scale: scale, Nets: len(in.Nets), Groups: len(in.Groups),
			GTR: res.Report.GTRMax, LB: res.Report.LowerBound,
			Iter: res.Report.Iterations, Time: time.Since(t0),
		})
	}
	return rows, nil
}

// RouterAblationRow measures how much each Sec. III ingredient contributes
// to the final objective: the θ(n) ordering (Eq. 1) and the φ(g)-driven
// rip-up (Sec. III-B), each toggled independently, with the full TDM
// assignment run on every resulting topology.
type RouterAblationRow struct {
	Name        string
	GTRFull     int64 // θ ordering + rip-up (the paper's router)
	GTRNoRipUp  int64 // θ ordering only
	GTRNoTheta  int64 // netlist order + rip-up
	GTRBaseline int64 // netlist order, no rip-up
}

// RouterAblation runs the four router variants across the configured suite.
func RouterAblation(cfg Config) ([]RouterAblationRow, error) {
	cfg = cfg.withDefaults()
	ins, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	variant := func(in *problem.Instance, order route.NetOrder, rip int) (int64, error) {
		routes, _, err := route.Route(cfg.ctx(), in, route.Options{Order: order, RipUpRounds: rip})
		if err != nil {
			return 0, err
		}
		_, rep, err := tdm.Assign(cfg.ctx(), in, routes, cfg.tdmOptions(in.Name))
		if err != nil {
			return 0, err
		}
		return rep.GTRMax, nil
	}
	rows := make([]RouterAblationRow, 0, len(ins))
	for _, in := range ins {
		if cfg.ctx().Err() != nil {
			return rows, cfg.interrupted(nil)
		}
		row := RouterAblationRow{Name: in.Name}
		if row.GTRFull, err = variant(in, route.OrderThetaAsc, 0); err != nil {
			return nil, err
		}
		if row.GTRNoRipUp, err = variant(in, route.OrderThetaAsc, -1); err != nil {
			return nil, err
		}
		if row.GTRNoTheta, err = variant(in, route.OrderNetID, 0); err != nil {
			return nil, err
		}
		if row.GTRBaseline, err = variant(in, route.OrderNetID, -1); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Pow2Row compares the paper's even-integer ratio domain against the
// power-of-two restriction of its refs [2][3] on one benchmark.
type Pow2Row struct {
	Name     string
	GTREven  int64
	GTRPow2  int64
	CostPct  float64 // (pow2-even)/even * 100
	Verified int     // edges whose pow2 schedule was materialized and checked
	Skipped  int
}

// Pow2Ablation quantifies what the ratio restriction of refs [2][3] costs:
// the paper argues its unrestricted even domain wins; this experiment
// measures by how much, and confirms the restricted ratios always yield
// materializable TDM slot frames.
func Pow2Ablation(cfg Config) ([]Pow2Row, error) {
	cfg = cfg.withDefaults()
	ins, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	rows := make([]Pow2Row, 0, len(ins))
	for _, in := range ins {
		if cfg.ctx().Err() != nil {
			return rows, cfg.interrupted(nil)
		}
		routes, _, err := route.Route(cfg.ctx(), in, tdmroute.RouteOptions{RipUpRounds: cfg.RipUpRounds})
		if err != nil {
			return rows, err
		}
		optE := cfg.tdmOptions(in.Name)
		_, repE, err := tdm.Assign(cfg.ctx(), in, routes, optE)
		if err != nil {
			return rows, err
		}
		optP := optE
		optP.Legal = tdm.LegalPow2
		assignP, repP, err := tdm.Assign(cfg.ctx(), in, routes, optP)
		if err != nil {
			return rows, err
		}
		sol := &problem.Solution{Routes: routes, Assign: assignP}
		verified, skipped, err := tdmroute.VerifySchedules(in, sol)
		if err != nil {
			return nil, err
		}
		row := Pow2Row{
			Name: in.Name, GTREven: repE.GTRMax, GTRPow2: repP.GTRMax,
			Verified: verified, Skipped: skipped,
		}
		if repE.GTRMax > 0 {
			row.CostPct = 100 * float64(repP.GTRMax-repE.GTRMax) / float64(repE.GTRMax)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func gap(z, lb float64) float64 {
	if lb <= 0 {
		return 0
	}
	return (z - lb) / lb
}

func logRatio(a, ours float64) float64 {
	if a <= 0 || ours <= 0 {
		return 0
	}
	return math.Log(a / ours)
}

func expf(x float64) float64 { return math.Exp(x) }
