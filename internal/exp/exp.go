// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Sec. V) on the synthetic benchmark
// suite — Table I (benchmark statistics), Table II (comparison with the
// emulated contest winners, with and without our TDM ratio assignment),
// Fig. 3(a) (runtime breakdown) and Fig. 3(b) (LR convergence) — plus the
// update-rule ablation called out in DESIGN.md.
package exp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tdmroute"
	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
)

// ErrInterrupted marks an experiment run stopped early by Config.Ctx.
// Functions returning it alongside partial rows completed every row they
// return; the error only says the sweep did not finish.
var ErrInterrupted = errors.New("exp: run interrupted")

// Config selects the workload for an experiment run.
type Config struct {
	// Ctx, when non-nil, bounds the run: experiments stop at the next
	// benchmark boundary once it is cancelled and return the rows
	// completed so far together with ErrInterrupted.
	Ctx context.Context
	// Scale is the suite scale factor (1 = published Table I sizes).
	// Zero selects 0.01, which runs the full Table II in minutes on a
	// laptop.
	Scale float64
	// Benchmarks restricts the run to a subset of gen.SuiteNames().
	// Empty means all nine.
	Benchmarks []string
	// MaxIter caps LR iterations (0 = paper default).
	MaxIter int
	// RipUpRounds forwards to the router (0 = default).
	RipUpRounds int
	// Workers forwards to both pipeline stages (0 = sequential).
	Workers int
	// Queue selects the routing Dijkstra engine by wire name ("" = auto);
	// it forwards to Options.Queue, so both engines produce identical
	// solutions and the knob only moves wall time.
	Queue string
	// Partitions forwards to Options.Partitions (0 = auto, 1 = off).
	Partitions int
	// Progress, when non-nil, receives one line per completed benchmark
	// — long full-scale runs otherwise produce no output until the final
	// table renders.
	Progress func(line string)
}

// ctx returns the configured context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// interrupted wraps a stop cause under ErrInterrupted so callers can test
// with errors.Is(err, ErrInterrupted). A nil cause defaults to the
// context's own error.
func (c Config) interrupted(cause error) error {
	if cause == nil {
		cause = c.ctx().Err()
	}
	return fmt.Errorf("%w: %v", ErrInterrupted, cause)
}

func (c Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = gen.SuiteNames()
	}
	return c
}

// epsilonFor mirrors the paper's setting: 0.27% for synopsys01..05, 0.05%
// for the larger benchmarks whose lower bounds are much larger.
func epsilonFor(name string) float64 {
	switch name {
	case "synopsys01", "synopsys02", "synopsys03", "synopsys04", "synopsys05":
		return 0.0027
	default:
		return 0.0005
	}
}

// instances generates the configured benchmarks.
func (c Config) instances() ([]*problem.Instance, error) {
	out := make([]*problem.Instance, 0, len(c.Benchmarks))
	for _, name := range c.Benchmarks {
		cfg, err := gen.SuiteConfig(name, c.Scale)
		if err != nil {
			return nil, err
		}
		in, err := gen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		// Keep the bare benchmark name for ε selection and display.
		in.Name = name
		out = append(out, in)
	}
	return out, nil
}

func (c Config) tdmOptions(bench string) tdmroute.TDMOptions {
	return tdmroute.TDMOptions{Epsilon: epsilonFor(bench), MaxIter: c.MaxIter, Workers: c.Workers}
}

func (c Config) solveOptions(bench string) tdmroute.Options {
	return tdmroute.Options{
		Route:      tdmroute.RouteOptions{RipUpRounds: c.RipUpRounds},
		TDM:        c.tdmOptions(bench),
		Workers:    c.Workers,
		Queue:      c.Queue,
		Partitions: c.Partitions,
	}
}

// queueName is the resolved wire name of the configured queue engine, for
// the telemetry rows ("" resolves to "auto").
func (c Config) queueName() string {
	if c.Queue == "" {
		return "auto"
	}
	return c.Queue
}

// TableI returns the benchmark statistics rows.
func TableI(cfg Config) ([]problem.Stats, error) {
	cfg = cfg.withDefaults()
	ins, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	rows := make([]problem.Stats, len(ins))
	for i, in := range ins {
		rows[i] = problem.ComputeStats(in)
	}
	return rows, nil
}

// FlowResult is one winner row of Table II: the entry's own solution.
type FlowResult struct {
	GTRMax  int64
	TimeAll time.Duration
}

// TAResult is one "+TA" row: our TDM ratio assignment applied to a fixed
// topology.
type TAResult struct {
	GTRMax int64
	LB     float64
	Iter   int
	TimeTA time.Duration
}

// BenchResult aggregates all Table II rows of one benchmark.
type BenchResult struct {
	Name      string
	Winners   []FlowResult // by Winners() order: 1st, 2nd, 3rd
	WinnersTA []TAResult
	// Ours.
	OursNoRef   int64
	Ours        TAResult
	OursTimeAll time.Duration
}

// WinnerFlow abstracts the three emulated entries so exp does not import
// baseline directly in its public surface; cmd wiring supplies them.
type WinnerFlow struct {
	Name   string
	Route  func(in *problem.Instance) (problem.Routing, error)
	Assign func(in *problem.Instance, routes problem.Routing) problem.Assignment
}

// TableII runs the full comparison on the configured suite.
func TableII(cfg Config, winners []WinnerFlow) ([]BenchResult, error) {
	cfg = cfg.withDefaults()
	ins, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	results := make([]BenchResult, 0, len(ins))
	for _, in := range ins {
		if cfg.ctx().Err() != nil {
			return results, cfg.interrupted(nil)
		}
		res, err := runBench(cfg, in, winners)
		if err != nil {
			return results, fmt.Errorf("%s: %w", in.Name, err)
		}
		results = append(results, res)
		cfg.progress("%s done: ours GTR %d (LB %.0f) in %.1fs",
			in.Name, res.Ours.GTRMax, res.Ours.LB, res.OursTimeAll.Seconds())
	}
	return results, nil
}

func runBench(cfg Config, in *problem.Instance, winners []WinnerFlow) (BenchResult, error) {
	res := BenchResult{Name: in.Name}
	topts := cfg.tdmOptions(in.Name)

	for _, w := range winners {
		t0 := time.Now()
		routes, err := w.Route(in)
		if err != nil {
			return res, fmt.Errorf("%s route: %w", w.Name, err)
		}
		assign := w.Assign(in, routes)
		elapsed := time.Since(t0)
		sol := &problem.Solution{Routes: routes, Assign: assign}
		gtr, _ := tdmroute.Evaluate(in, sol)
		res.Winners = append(res.Winners, FlowResult{GTRMax: gtr, TimeAll: elapsed})

		// "+TA": our assignment on the winner's topology.
		t1 := time.Now()
		ta, err := tdmroute.Run(cfg.ctx(), tdmroute.Request{
			Instance: in,
			Mode:     tdmroute.ModeAssignOnly,
			Options:  tdmroute.Options{TDM: topts},
			Routing:  routes,
		})
		if err != nil {
			return res, fmt.Errorf("%s+TA: %w", w.Name, err)
		}
		rep := ta.Report
		if rep.Interrupted != nil {
			// A curtailed assignment would publish a misleading Table II
			// row; report the partial sweep instead.
			return res, cfg.interrupted(rep.Interrupted)
		}
		res.WinnersTA = append(res.WinnersTA, TAResult{
			GTRMax: rep.GTRMax,
			LB:     rep.LowerBound,
			Iter:   rep.Iterations,
			TimeTA: time.Since(t1),
		})
	}

	// Ours: the full framework.
	t0 := time.Now()
	solved, err := tdmroute.Run(cfg.ctx(), tdmroute.Request{Instance: in, Options: cfg.solveOptions(in.Name)})
	if err != nil {
		return res, fmt.Errorf("ours: %w", err)
	}
	if solved.Degraded != nil {
		return res, cfg.interrupted(solved.Degraded.Cause)
	}
	res.OursTimeAll = time.Since(t0)
	res.OursNoRef = solved.Report.GTRNoRef
	res.Ours = TAResult{
		GTRMax: solved.Report.GTRMax,
		LB:     solved.Report.LowerBound,
		Iter:   solved.Report.Iterations,
		TimeTA: solved.Times.LR + solved.Times.LegalRefine,
	}
	return res, nil
}

// GeoMeanRatios returns, for each winner (and winner+TA), the geometric
// mean over benchmarks of GTR_max relative to ours — the "Ratio" column of
// Table II.
func GeoMeanRatios(results []BenchResult) (winners, winnersTA []float64) {
	if len(results) == 0 {
		return nil, nil
	}
	k := len(results[0].Winners)
	winners = make([]float64, k)
	winnersTA = make([]float64, k)
	for i := 0; i < k; i++ {
		var logSum, logSumTA float64
		for _, r := range results {
			ours := float64(r.Ours.GTRMax)
			if ours <= 0 {
				continue
			}
			logSum += logRatio(float64(r.Winners[i].GTRMax), ours)
			logSumTA += logRatio(float64(r.WinnersTA[i].GTRMax), ours)
		}
		n := float64(len(results))
		winners[i] = expf(logSum / n)
		winnersTA[i] = expf(logSumTA / n)
	}
	return winners, winnersTA
}
