package exp

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestPerfShape runs the perf measurement on a tiny suite and checks the
// rows are populated, deterministic across reps (the digest of rep 1 must
// match rep 2's — Perf keeps one, so two calls must agree), and render as
// valid JSON.
func TestPerfShape(t *testing.T) {
	cfg := smallCfg()
	rep, err := Perf(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.GTRMax <= 0 || r.InitialGTR <= 0 {
			t.Errorf("%s: non-positive GTR (max=%d initial=%d)", r.Bench, r.GTRMax, r.InitialGTR)
		}
		if r.GTRMax > r.InitialGTR {
			t.Errorf("%s: feedback worsened GTR %d -> %d", r.Bench, r.InitialGTR, r.GTRMax)
		}
		if r.WallMS <= 0 || r.LRMS <= 0 {
			t.Errorf("%s: missing stage times: %+v", r.Bench, r)
		}
		if len(r.SolutionSHA256) != 64 {
			t.Errorf("%s: bad digest %q", r.Bench, r.SolutionSHA256)
		}
		if r.RoundsRequested != 2 || r.RoundsRun > 2 {
			t.Errorf("%s: rounds requested=%d run=%d", r.Bench, r.RoundsRequested, r.RoundsRun)
		}
	}

	// Determinism: a second measurement must reproduce the exact solutions.
	rep2, err := Perf(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Rows {
		if rep.Rows[i].SolutionSHA256 != rep2.Rows[i].SolutionSHA256 {
			t.Errorf("%s: digest differs across runs", rep.Rows[i].Bench)
		}
		if rep.Rows[i].GTRMax != rep2.Rows[i].GTRMax {
			t.Errorf("%s: GTR differs across runs", rep.Rows[i].Bench)
		}
	}

	var buf bytes.Buffer
	if err := WritePerfJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded PerfReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(decoded.Rows) != len(rep.Rows) {
		t.Fatalf("round-trip lost rows: %d vs %d", len(decoded.Rows), len(rep.Rows))
	}
}
