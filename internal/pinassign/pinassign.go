// Package pinassign implements the pin-assignment stage that follows TDM
// ratio assignment in the multi-FPGA compilation flow of Fig. 2(a) (the
// stage of the paper's ref [11], Kuo et al., ISPD'18): the signals routed
// over one FPGA-to-FPGA connection must be distributed onto that
// connection's physical pin pairs (wires), each wire carrying a slot frame
// of its own — so the reciprocals of the ratios packed onto one wire must
// sum to at most 1.
//
// Minimizing the wires used per edge is bin packing with item sizes 1/r.
// The packer uses first-fit-decreasing over exact rational arithmetic and
// reports both the packing and the trivial lower bound ⌈Σ 1/r⌉, which is
// within the classic FFD guarantee of the optimum.
package pinassign

import (
	"fmt"
	"sort"

	"tdmroute/internal/problem"
)

// Packing is the wire assignment of one edge.
type Packing struct {
	// Wire[i] is the wire index of the edge's i-th signal (in the order
	// given to PackEdge).
	Wire []int
	// Wires is the number of wires used.
	Wires int
	// LowerBound is ⌈Σ 1/ratio⌉: no packing can use fewer wires.
	LowerBound int
}

// PackEdge distributes signals with the given TDM ratios onto the minimum
// number of wires first-fit-decreasing can achieve. Ratios must be positive
// even integers.
func PackEdge(ratios []int64) (*Packing, error) {
	for i, r := range ratios {
		if r < 2 || r%2 != 0 {
			return nil, fmt.Errorf("pinassign: signal %d: illegal ratio %d", i, r)
		}
	}
	p := &Packing{Wire: make([]int, len(ratios))}
	if len(ratios) == 0 {
		return p, nil
	}

	// Sort indices by decreasing item size 1/r, i.e. increasing r.
	order := make([]int, len(ratios))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ratios[order[a]] < ratios[order[b]] })

	// Wire loads as exact fractions num/den <= 1.
	type load struct{ num, den int64 }
	var wires []load
	fits := func(w load, r int64) (load, bool) {
		// w + 1/r <= 1 ?
		num := w.num*r + w.den
		den := w.den * r
		if den <= 0 || num < 0 {
			return load{}, false // overflow: treat as not fitting
		}
		g := gcd(num, den)
		num, den = num/g, den/g
		if num > den {
			return load{}, false
		}
		return load{num, den}, true
	}
	for _, i := range order {
		placed := false
		for wi := range wires {
			if nw, ok := fits(wires[wi], ratios[i]); ok {
				wires[wi] = nw
				p.Wire[i] = wi
				placed = true
				break
			}
		}
		if !placed {
			wires = append(wires, load{num: 0, den: 1})
			wi := len(wires) - 1
			nw, ok := fits(wires[wi], ratios[i])
			if !ok {
				return nil, fmt.Errorf("pinassign: signal %d does not fit an empty wire", i)
			}
			wires[wi] = nw
			p.Wire[i] = wi
		}
	}
	p.Wires = len(wires)

	// Lower bound: ceil of the exact reciprocal sum.
	var num, den int64 = 0, 1
	for _, r := range ratios {
		num = num*r + den
		den = den * r
		g := gcd(num, den)
		num, den = num/g, den/g
		if den <= 0 || num < 0 {
			num, den = 1, 1 // overflow: degrade to a weak bound
			break
		}
	}
	p.LowerBound = int(ceilDiv(num, den))
	if p.LowerBound < 1 {
		p.LowerBound = 1
	}
	return p, nil
}

// Result summarizes pin assignment over a whole solution.
type Result struct {
	// PerEdge maps edge id to its packing (nil for unused edges). The
	// packing's signal order matches problem.EdgeLoads order (ascending
	// net id).
	PerEdge []*Packing
	// TotalWires is the summed wire count.
	TotalWires int
	// TotalLowerBound sums the per-edge lower bounds.
	TotalLowerBound int
	// MaxWires is the largest per-edge wire count — the pin budget a
	// board design would need on its widest connection.
	MaxWires int
}

// Assign packs every edge of a legal solution.
func Assign(in *problem.Instance, sol *problem.Solution) (*Result, error) {
	loads := problem.EdgeLoads(in.G.NumEdges(), sol.Routes)
	res := &Result{PerEdge: make([]*Packing, in.G.NumEdges())}
	for e, ls := range loads {
		if len(ls) == 0 {
			continue
		}
		ratios := make([]int64, len(ls))
		for i, l := range ls {
			ratios[i] = sol.Assign.Ratios[l.Net][l.Pos]
		}
		p, err := PackEdge(ratios)
		if err != nil {
			return nil, fmt.Errorf("edge %d: %w", e, err)
		}
		res.PerEdge[e] = p
		res.TotalWires += p.Wires
		res.TotalLowerBound += p.LowerBound
		if p.Wires > res.MaxWires {
			res.MaxWires = p.Wires
		}
	}
	return res, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 1
	}
	return (a + b - 1) / b
}
