package pinassign

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
	tr "tdmroute/internal/route"
	"tdmroute/internal/tdm"
)

func TestPackEdgeSingleWireWhenFits(t *testing.T) {
	// 1/2 + 1/4 + 1/4 = 1: exactly one wire.
	p, err := PackEdge([]int64{2, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Wires != 1 || p.LowerBound != 1 {
		t.Errorf("packing = %+v", p)
	}
	for _, w := range p.Wire {
		if w != 0 {
			t.Errorf("signal on wire %d", w)
		}
	}
}

func TestPackEdgeNeedsTwoWires(t *testing.T) {
	// Three ratio-2 signals: 1.5 total, lower bound 2.
	p, err := PackEdge([]int64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.LowerBound != 2 {
		t.Errorf("lower bound = %d, want 2", p.LowerBound)
	}
	if p.Wires != 2 {
		t.Errorf("wires = %d, want 2", p.Wires)
	}
}

func TestPackEdgeEmpty(t *testing.T) {
	p, err := PackEdge(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Wires != 0 {
		t.Errorf("wires = %d", p.Wires)
	}
}

func TestPackEdgeRejectsIllegal(t *testing.T) {
	for _, ratios := range [][]int64{{0}, {3}, {-4}} {
		if _, err := PackEdge(ratios); err == nil {
			t.Errorf("PackEdge(%v) accepted", ratios)
		}
	}
}

func TestPackEdgeWithinFFDGuarantee(t *testing.T) {
	// FFD uses at most 11/9 OPT + 1 bins; against the weaker volume
	// lower bound we still assert wires <= 2*LB + 1 and wires >= LB.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(30)
		ratios := make([]int64, k)
		for i := range ratios {
			ratios[i] = int64(2 + 2*rng.Intn(16))
		}
		p, err := PackEdge(ratios)
		if err != nil {
			return false
		}
		if p.Wires < p.LowerBound {
			return false
		}
		return p.Wires <= 2*p.LowerBound+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPackEdgeWiresNeverOverflow(t *testing.T) {
	// Verify per-wire loads stay within 1 by recomputing them.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(20)
		ratios := make([]int64, k)
		for i := range ratios {
			ratios[i] = int64(2 + 2*rng.Intn(10))
		}
		p, err := PackEdge(ratios)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]float64, p.Wires)
		for i, w := range p.Wire {
			sums[w] += 1 / float64(ratios[i])
		}
		for w, s := range sums {
			if s > 1+1e-9 {
				t.Fatalf("trial %d: wire %d load %g", trial, w, s)
			}
			if s == 0 {
				t.Fatalf("trial %d: empty wire %d", trial, w)
			}
		}
	}
}

func TestAssignFullSolution(t *testing.T) {
	cfg, err := gen.SuiteConfig("synopsys01", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	routes, _, err := tr.Route(context.Background(), in, tr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assign, _, err := tdm.Assign(context.Background(), in, routes, tdm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol := &problem.Solution{Routes: routes, Assign: assign}
	res, err := Assign(in, sol)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWires < res.TotalLowerBound {
		t.Errorf("wires %d below lower bound %d", res.TotalWires, res.TotalLowerBound)
	}
	if res.MaxWires < 1 {
		t.Error("no wires used")
	}
	// Every routed edge has a packing whose per-edge reciprocal budget
	// holds by construction; the solution satisfies the single-wire edge
	// constraint, so every edge must pack into exactly 1 wire.
	loads := problem.EdgeLoads(in.G.NumEdges(), routes)
	for e, ls := range loads {
		if len(ls) == 0 {
			continue
		}
		if res.PerEdge[e] == nil {
			t.Fatalf("edge %d missing packing", e)
		}
		if res.PerEdge[e].Wires != 1 {
			t.Errorf("edge %d: %d wires for a single-wire-feasible ratio set", e, res.PerEdge[e].Wires)
		}
	}
	t.Logf("wires: total=%d lb=%d max=%d", res.TotalWires, res.TotalLowerBound, res.MaxWires)
}

func BenchmarkPackEdge(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ratios := make([]int64, 200)
	for i := range ratios {
		ratios[i] = int64(2 + 2*rng.Intn(64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PackEdge(ratios); err != nil {
			b.Fatal(err)
		}
	}
}
