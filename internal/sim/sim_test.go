package sim

import (
	"context"
	"testing"

	"tdmroute/internal/gen"
	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
	tr "tdmroute/internal/route"
	"tdmroute/internal/tdm"
	"tdmroute/internal/timing"
)

// singleHop: one edge, one net at ratio 4 plus a filler net, so the frame
// is non-trivial.
func singleHop() (*problem.Instance, *problem.Solution) {
	g := graph.New(2, 1)
	g.AddEdge(0, 1)
	in := &problem.Instance{
		G: g,
		Nets: []problem.Net{
			{Terminals: []int{0, 1}},
			{Terminals: []int{0, 1}},
		},
		Groups: []problem.Group{{Nets: []int{0}}, {Nets: []int{1}}},
	}
	in.RebuildNetGroups()
	sol := &problem.Solution{
		Routes: problem.Routing{{0}, {0}},
		Assign: problem.Assignment{Ratios: [][]int64{{4}, {2}}},
	}
	return in, sol
}

func TestRunSingleHopDeliversAll(t *testing.T) {
	in, sol := singleHop()
	res, err := Run(in, sol, Options{WordsPerNet: 5})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		st := res.Nets[n]
		if !st.Simulated || st.Delivered != 5 {
			t.Fatalf("net %d: %+v", n, st)
		}
		if st.Hops != 1 {
			t.Errorf("net %d hops = %d", n, st.Hops)
		}
		// One hop: worst latency bounded by twice the ratio (WRR gap).
		r := sol.Assign.Ratios[n][0]
		if st.MaxLatency > 2*r {
			t.Errorf("net %d: max latency %d exceeds 2x ratio %d", n, st.MaxLatency, r)
		}
		if st.FirstLatency < 1 {
			t.Errorf("net %d: first latency %d < 1", n, st.FirstLatency)
		}
	}
}

func TestRunThroughputMatchesRatio(t *testing.T) {
	// With injection at the source period, the last word of a ratio-r
	// single-hop net arrives around (words-1)*r + O(r).
	in, sol := singleHop()
	const words = 20
	res, err := Run(in, sol, Options{WordsPerNet: words})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		r := sol.Assign.Ratios[n][0]
		want := int64(words-1) * r
		if res.Nets[n].Span < want || res.Nets[n].Span > want+2*r {
			t.Errorf("net %d: span %d, want ~%d", n, res.Nets[n].Span, want)
		}
	}
}

func TestRunMultiHopLatency(t *testing.T) {
	// Path 0-1-2: net 0 crosses both edges at ratios 2 and 4.
	g := graph.New(3, 2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	in := &problem.Instance{
		G:      g,
		Nets:   []problem.Net{{Terminals: []int{0, 2}}},
		Groups: []problem.Group{{Nets: []int{0}}},
	}
	in.RebuildNetGroups()
	sol := &problem.Solution{
		Routes: problem.Routing{{0, 1}},
		Assign: problem.Assignment{Ratios: [][]int64{{2, 4}}},
	}
	res, err := Run(in, sol, Options{WordsPerNet: 6})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Nets[0]
	if st.Delivered != 6 || st.Hops != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Latency bounds: at least one tick per hop; at most Σ 2r.
	if st.MaxLatency < 2 || st.MaxLatency > 2*(2+4) {
		t.Errorf("max latency = %d", st.MaxLatency)
	}
}

func TestRunSkipsIntraFPGANets(t *testing.T) {
	g := graph.New(2, 1)
	g.AddEdge(0, 1)
	in := &problem.Instance{
		G:    g,
		Nets: []problem.Net{{Terminals: []int{0}}},
	}
	in.RebuildNetGroups()
	sol := &problem.Solution{Routes: problem.Routing{{}}, Assign: problem.Assignment{Ratios: [][]int64{{}}}}
	res, err := Run(in, sol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nets[0].Simulated {
		t.Error("intra-FPGA net simulated")
	}
}

func TestRunAgreesWithAnalyticModel(t *testing.T) {
	// End-to-end: solve a benchmark in pow2 mode, simulate, and compare
	// the measured per-net first-word latencies against the analytic
	// timing estimate expressed in ticks: the measured latency must lie
	// within [hops, Σ 2r] and correlate with the model.
	cfg, err := gen.SuiteConfig("synopsys01", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	routes, _, err := tr.Route(context.Background(), in, tr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assign, _, err := tdm.Assign(context.Background(), in, routes, tdm.Options{Legal: tdm.LegalPow2})
	if err != nil {
		t.Fatal(err)
	}
	sol := &problem.Solution{Routes: routes, Assign: assign}
	res, err := Run(in, sol, Options{WordsPerNet: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic model in tick units: Base=1 tick (transmission), wait
	// r/2 per hop on average; upper bound 2r per hop.
	rep, err := timing.Analyze(in, sol, timing.Model{BaseNS: 1, PerRatioNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for n := range in.Nets {
		st := res.Nets[n]
		if !st.Simulated {
			continue
		}
		checked++
		if st.Delivered != 3 {
			t.Fatalf("net %d delivered %d", n, st.Delivered)
		}
		if st.MaxLatency < int64(st.Hops) {
			t.Fatalf("net %d: latency %d below hop count %d", n, st.MaxLatency, st.Hops)
		}
		// Upper bound: sum of 2r over the worst path >= measured. The
		// analytic estimate uses r/2 per hop, so 4x the analytic wait
		// plus hops is a safe cap.
		cap64 := int64(4*rep.Nets[n].DelayNS) + int64(st.Hops) + 4
		if st.MaxLatency > cap64 {
			t.Errorf("net %d: measured %d exceeds model-derived cap %d", n, st.MaxLatency, cap64)
		}
	}
	if checked == 0 {
		t.Fatal("no nets simulated")
	}
	t.Logf("simulated %d nets over %d ticks", checked, res.Ticks)
}

func TestRunRejectsUnroutedNet(t *testing.T) {
	g := graph.New(2, 1)
	g.AddEdge(0, 1)
	in := &problem.Instance{G: g, Nets: []problem.Net{{Terminals: []int{0, 1}}}}
	in.RebuildNetGroups()
	sol := &problem.Solution{Routes: problem.Routing{{}}, Assign: problem.Assignment{Ratios: [][]int64{{}}}}
	if _, err := Run(in, sol, Options{}); err == nil {
		t.Error("unrouted net accepted")
	}
}

func BenchmarkRunSmall(b *testing.B) {
	cfg, err := gen.SuiteConfig("synopsys01", 0.002)
	if err != nil {
		b.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	routes, _, err := tr.Route(context.Background(), in, tr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	assign, _, err := tdm.Assign(context.Background(), in, routes, tdm.Options{Legal: tdm.LegalPow2})
	if err != nil {
		b.Fatal(err)
	}
	sol := &problem.Solution{Routes: routes, Assign: assign}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(in, sol, Options{WordsPerNet: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
