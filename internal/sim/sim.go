// Package sim is a discrete-event simulator for a solved multi-FPGA
// system: it materializes every edge's TDM slot schedule (internal/mux),
// streams words from each net's driver toward its worst sink through the
// per-hop slot timing, and measures the end-to-end latencies and
// throughput that the analytic model of internal/timing only estimates.
//
// The simulation works in TDM-clock ticks. Each edge owns a frame; at tick
// t the edge transmits one word of the signal owning slot t mod L (if that
// signal has a word queued at the edge's upstream side). A word injected at
// the driver must traverse its path's edges in order, waiting at every hop
// for the net's next slot.
package sim

import (
	"fmt"

	"tdmroute/internal/mux"
	"tdmroute/internal/problem"
)

// Options tunes a run.
type Options struct {
	// WordsPerNet is the number of words each simulated net injects.
	// Zero selects 8.
	WordsPerNet int
	// MaxTicks aborts pathological runs. Zero selects 1 << 22.
	MaxTicks int64
}

func (o Options) withDefaults() Options {
	if o.WordsPerNet == 0 {
		o.WordsPerNet = 8
	}
	if o.MaxTicks == 0 {
		o.MaxTicks = 1 << 22
	}
	return o
}

// NetStats is the measured behaviour of one simulated net.
type NetStats struct {
	// Simulated reports whether the net took part (multi-FPGA nets only).
	Simulated bool
	// Hops is the path length to the worst sink.
	Hops int
	// Delivered is the number of words that reached the sink.
	Delivered int
	// FirstLatency and MaxLatency are end-to-end latencies in TDM ticks
	// (injection to sink arrival) of the first word and the worst word.
	FirstLatency int64
	MaxLatency   int64
	// Span is the tick at which the last word arrived.
	Span int64
}

// Result is the outcome of Run.
type Result struct {
	Nets  []NetStats
	Ticks int64 // ticks simulated until all words arrived
}

// Run simulates the solution. Every net's words travel along the tree path
// from the driver (first terminal) to the sink maximizing hop count; words
// are injected one per source period (the largest ratio on the path), so
// queues stay bounded. Edges whose ratio sets exceed mux.MaxFrameLen make
// Run fail; use the LegalPow2 domain for simulable solutions.
func Run(in *problem.Instance, sol *problem.Solution, opt Options) (*Result, error) {
	opt = opt.withDefaults()

	// Build one schedule per used edge. The signal index within the
	// schedule corresponds to problem.EdgeLoads order.
	loads := problem.EdgeLoads(in.G.NumEdges(), sol.Routes)
	schedules := make([]*mux.Schedule, in.G.NumEdges())
	slotIndex := make([]map[int]int, in.G.NumEdges()) // edge -> net -> signal idx
	for e, ls := range loads {
		if len(ls) == 0 {
			continue
		}
		ratios := make([]int64, len(ls))
		idx := make(map[int]int, len(ls))
		for i, l := range ls {
			ratios[i] = sol.Assign.Ratios[l.Net][l.Pos]
			idx[l.Net] = i
		}
		s, err := mux.Build(ratios)
		if err != nil {
			return nil, fmt.Errorf("sim: edge %d: %w", e, err)
		}
		schedules[e] = s
		slotIndex[e] = idx
	}

	res := &Result{Nets: make([]NetStats, len(in.Nets))}
	paths := make([][]int, len(in.Nets))
	period := make([]int64, len(in.Nets))
	for n := range in.Nets {
		p, err := worstSinkPath(in, sol, n)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue
		}
		paths[n] = p
		res.Nets[n].Simulated = true
		res.Nets[n].Hops = len(p)
		var maxR int64 = 1
		for k, e := range p {
			_ = k
			r := ratioOn(sol, loads, slotIndex, n, e)
			if r > maxR {
				maxR = r
			}
		}
		period[n] = maxR
	}

	// Per-word state: for each net, the words' current hop index (0 =
	// waiting at driver for path[0]) and injection/arrival ticks.
	type wordState struct {
		hop      int // next edge index to traverse; == len(path) when done
		injected int64
		arrived  int64
		moved    int64 // tick of the last hop (a word moves once per tick)
	}
	words := make([][]wordState, len(in.Nets))
	remaining := 0
	for n := range in.Nets {
		if !res.Nets[n].Simulated {
			continue
		}
		ws := make([]wordState, opt.WordsPerNet)
		for w := range ws {
			ws[w] = wordState{hop: 0, injected: int64(w) * period[n], arrived: -1, moved: -1}
		}
		words[n] = ws
		remaining += opt.WordsPerNet
	}
	if remaining == 0 {
		return res, nil
	}

	for tick := int64(0); remaining > 0; tick++ {
		if tick > opt.MaxTicks {
			return nil, fmt.Errorf("sim: exceeded %d ticks with %d words in flight", opt.MaxTicks, remaining)
		}
		for e, s := range schedules {
			if s == nil {
				continue
			}
			owner := s.Slots[tick%s.FrameLen]
			if owner == mux.Idle {
				continue
			}
			n := loads[e][owner].Net
			if !res.Nets[n].Simulated {
				continue
			}
			// Deliver the earliest word of net n waiting for edge e.
			path := paths[n]
			for w := range words[n] {
				ws := &words[n][w]
				if ws.hop >= len(path) || path[ws.hop] != e {
					continue
				}
				if ws.injected > tick {
					break // later words are injected even later
				}
				if ws.moved == tick {
					continue // one hop per tick per word
				}
				ws.moved = tick
				ws.hop++
				if ws.hop == len(path) {
					ws.arrived = tick + 1 // arrives at the end of the slot
					remaining--
					st := &res.Nets[n]
					lat := ws.arrived - ws.injected
					if st.Delivered == 0 {
						st.FirstLatency = lat
					}
					if lat > st.MaxLatency {
						st.MaxLatency = lat
					}
					st.Delivered++
					if ws.arrived > st.Span {
						st.Span = ws.arrived
					}
				}
				break // one word per slot
			}
		}
		res.Ticks = tick + 1
	}
	return res, nil
}

// worstSinkPath returns the edge sequence from the driver to the sink with
// the largest hop count through net n's routed tree, or nil for
// single-terminal nets.
func worstSinkPath(in *problem.Instance, sol *problem.Solution, n int) ([]int, error) {
	terms := in.Nets[n].Terminals
	if len(terms) <= 1 {
		return nil, nil
	}
	edges := sol.Routes[n]
	if len(edges) == 0 {
		return nil, fmt.Errorf("sim: net %d unrouted", n)
	}
	type arc struct{ to, edge int }
	adj := map[int][]arc{}
	for _, e := range edges {
		ed := in.G.Edge(e)
		adj[ed.U] = append(adj[ed.U], arc{ed.V, e})
		adj[ed.V] = append(adj[ed.V], arc{ed.U, e})
	}
	driver := terms[0]
	prev := map[int]arc{driver: {-1, -1}}
	queue := []int{driver}
	depth := map[int]int{driver: 0}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range adj[u] {
			if _, ok := prev[a.to]; !ok {
				prev[a.to] = arc{u, a.edge}
				depth[a.to] = depth[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	worst, wd := -1, -1
	for _, sink := range terms[1:] {
		d, ok := depth[sink]
		if !ok {
			return nil, fmt.Errorf("sim: net %d: sink %d unreachable", n, sink)
		}
		if d > wd {
			worst, wd = sink, d
		}
	}
	// Reconstruct edge sequence driver -> worst.
	var rev []int
	for v := worst; v != driver; v = prev[v].to {
		rev = append(rev, prev[v].edge)
	}
	path := make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path, nil
}

func ratioOn(sol *problem.Solution, loads [][]problem.EdgeLoad, slotIndex []map[int]int, n, e int) int64 {
	i := slotIndex[e][n]
	l := loads[e][i]
	return sol.Assign.Ratios[l.Net][l.Pos]
}
