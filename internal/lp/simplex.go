// Package lp implements a dense two-phase primal simplex solver for small
// linear programs. It exists to realize the column-generation counterpart of
// the paper's LR formulation (Sec. IV-D): the restricted linear master
// problem (RLMP) is a small LP whose optimal duals drive pattern pricing.
//
// The solver handles minimization problems with <=, >= and = constraints
// over non-negative variables, uses Bland's rule (no cycling), and returns
// both the primal solution and the dual values obtained by solving
// Bᵀy = c_B on the final basis.
package lp

import (
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Σ a_j x_j <= b
	GE            // Σ a_j x_j >= b
	EQ            // Σ a_j x_j == b
)

// Constraint is one row: Coeffs · x REL RHS. Coeffs must have length
// Problem.NumVars.
type Constraint struct {
	Coeffs []float64
	Rel    Rel
	RHS    float64
}

// Problem is: minimize C·x subject to Constraints, x >= 0.
type Problem struct {
	NumVars     int
	C           []float64
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	X      []float64 // primal values, length NumVars (Optimal only)
	Obj    float64   // C·X
	// Duals has one entry per constraint: y_i such that Bᵀy = c_B on the
	// final basis. For a minimization problem, y_i <= 0 on binding <=
	// rows, y_i >= 0 on binding >= rows, free on = rows.
	Duals []float64
}

const tol = 1e-9

// Solve runs two-phase simplex on p.
func Solve(p *Problem) (*Solution, error) {
	if err := check(p); err != nil {
		return nil, err
	}
	t := newTableau(p)

	// Phase 1: minimize the sum of artificials.
	if t.numArt > 0 {
		t.setPhase1Objective()
		if err := t.iterate(); err != nil {
			return nil, err
		}
		if t.objectiveValue() > tol {
			return &Solution{Status: Infeasible}, nil
		}
		if err := t.driveOutArtificials(); err != nil {
			return nil, err
		}
	}

	// Phase 2: original objective.
	t.setPhase2Objective()
	if err := t.iterate(); err != nil {
		if err == errUnbounded {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	return t.extract(), nil
}

// tableau is a dense simplex tableau over the variable layout
// [structural | slack/surplus | artificial], with rows normalized to b >= 0.
type tableau struct {
	p       *Problem
	m, n    int // constraints, structural vars
	numSlk  int
	numArt  int
	cols    int         // n + numSlk + numArt
	a       [][]float64 // m rows of length cols
	b       []float64   // length m, kept >= 0
	basis   []int       // basic variable per row
	cost    []float64   // current objective row costs, length cols
	artCols []int       // artificial column index per row, or -1
	slkCols []int       // slack column index per row, or -1 (sign folded in)
}

func check(p *Problem) error {
	if p.NumVars < 0 {
		return fmt.Errorf("lp: negative variable count")
	}
	if len(p.C) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients for %d variables", len(p.C), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return fmt.Errorf("lp: constraint %d has %d coefficients for %d variables", i, len(c.Coeffs), p.NumVars)
		}
		if c.Rel != LE && c.Rel != GE && c.Rel != EQ {
			return fmt.Errorf("lp: constraint %d has invalid relation %d", i, c.Rel)
		}
		for j, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: constraint %d coefficient %d is %g", i, j, v)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d RHS is %g", i, c.RHS)
		}
	}
	return nil
}

func newTableau(p *Problem) *tableau {
	m, n := len(p.Constraints), p.NumVars
	t := &tableau{p: p, m: m, n: n}

	// Normalize rows so RHS >= 0, flipping relations as needed, then
	// count slack and artificial columns.
	rows := make([]Constraint, m)
	for i, c := range p.Constraints {
		coeffs := append([]float64(nil), c.Coeffs...)
		rel, rhs := c.Rel, c.RHS
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = Constraint{Coeffs: coeffs, Rel: rel, RHS: rhs}
		if rel != EQ {
			t.numSlk++
		}
		if rel != LE {
			t.numArt++
		}
	}
	t.cols = n + t.numSlk + t.numArt
	t.a = make([][]float64, m)
	t.b = make([]float64, m)
	t.basis = make([]int, m)
	t.cost = make([]float64, t.cols)
	t.artCols = make([]int, m)
	t.slkCols = make([]int, m)

	slk, art := n, n+t.numSlk
	for i, c := range rows {
		row := make([]float64, t.cols)
		copy(row, c.Coeffs)
		t.b[i] = c.RHS
		t.artCols[i] = -1
		t.slkCols[i] = -1
		switch c.Rel {
		case LE:
			row[slk] = 1
			t.slkCols[i] = slk
			t.basis[i] = slk
			slk++
		case GE:
			row[slk] = -1
			t.slkCols[i] = slk
			slk++
			row[art] = 1
			t.artCols[i] = art
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.artCols[i] = art
			t.basis[i] = art
			art++
		}
		t.a[i] = row
	}
	return t
}

func (t *tableau) setPhase1Objective() {
	for j := range t.cost {
		t.cost[j] = 0
	}
	for j := t.n + t.numSlk; j < t.cols; j++ {
		t.cost[j] = 1
	}
}

func (t *tableau) setPhase2Objective() {
	for j := range t.cost {
		t.cost[j] = 0
	}
	copy(t.cost, t.p.C)
	// Artificials must never re-enter; give them a prohibitive cost and
	// rely on them being nonbasic (or basic at zero) after phase 1.
	for j := t.n + t.numSlk; j < t.cols; j++ {
		t.cost[j] = math.Inf(1)
	}
}

// reducedCost returns c_j - c_B B^{-1} a_j for column j under the current
// tableau (rows are already B^{-1}A).
func (t *tableau) reducedCost(j int) float64 {
	r := t.cost[j]
	for i := 0; i < t.m; i++ {
		cb := t.cost[t.basis[i]]
		if cb == 0 || t.a[i][j] == 0 {
			continue
		}
		if math.IsInf(cb, 1) {
			// Basic artificial at zero value: contributes nothing.
			continue
		}
		r -= cb * t.a[i][j]
	}
	return r
}

func (t *tableau) objectiveValue() float64 {
	var v float64
	for i := 0; i < t.m; i++ {
		cb := t.cost[t.basis[i]]
		if math.IsInf(cb, 1) {
			continue
		}
		v += cb * t.b[i]
	}
	return v
}

var errUnbounded = fmt.Errorf("lp: unbounded")

// iterate runs primal simplex with Bland's rule until optimal or unbounded.
func (t *tableau) iterate() error {
	maxIters := 2000 * (t.cols + t.m + 10)
	for iter := 0; iter < maxIters; iter++ {
		// Bland: entering column = smallest index with negative reduced
		// cost.
		enter := -1
		for j := 0; j < t.cols; j++ {
			if math.IsInf(t.cost[j], 1) {
				continue // artificial in phase 2
			}
			if t.reducedCost(j) < -tol {
				enter = j
				break
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test; Bland tie-break on smallest basis variable index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > tol {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < best-tol || (ratio < best+tol && (leave == -1 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return errUnbounded
		}
		t.pivot(leave, enter)
	}
	return fmt.Errorf("lp: simplex iteration limit exceeded")
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	row := t.a[leave]
	for j := range row {
		row[j] *= inv
	}
	t.b[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * row[j]
		}
		t.b[i] -= f * t.b[leave]
	}
	t.basis[leave] = enter
}

// driveOutArtificials pivots basic artificials (at value 0 after a feasible
// phase 1) out of the basis where possible; rows with no eligible pivot are
// redundant and harmless.
func (t *tableau) driveOutArtificials() error {
	artStart := t.n + t.numSlk
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if math.Abs(t.a[i][j]) > tol {
				t.pivot(i, j)
				break
			}
		}
	}
	return nil
}

// extract reads the primal solution and computes duals by solving Bᵀy = c_B
// from the original column data.
func (t *tableau) extract() *Solution {
	sol := &Solution{Status: Optimal, X: make([]float64, t.n), Duals: make([]float64, t.m)}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n {
			sol.X[t.basis[i]] = t.b[i]
		}
	}
	for j := 0; j < t.n; j++ {
		sol.Obj += t.p.C[j] * sol.X[j]
	}
	t.computeDuals(sol)
	return sol
}

// computeDuals solves Bᵀ y = c_B where B is the final basis matrix in the
// ORIGINAL (un-pivoted) column space and c_B the original phase-2 costs of
// the basic variables (0 for slack and artificial columns).
func (t *tableau) computeDuals(sol *Solution) {
	m := t.m
	// Rebuild original columns for the basis.
	bt := make([][]float64, m) // Bᵀ: row k = original column of basis[k]
	cb := make([]float64, m)
	for k := 0; k < m; k++ {
		col := t.basis[k]
		v := make([]float64, m)
		switch {
		case col < t.n:
			for i := 0; i < m; i++ {
				coeffs := t.p.Constraints[i].Coeffs[col]
				if t.p.Constraints[i].RHS < 0 {
					coeffs = -coeffs
				}
				v[i] = coeffs
			}
			cb[k] = t.p.C[col]
		default:
			// Slack, surplus, or artificial: single original entry.
			for i := 0; i < m; i++ {
				if t.slkCols[i] == col {
					if relAfterNormalize(t.p.Constraints[i]) == LE {
						v[i] = 1
					} else {
						v[i] = -1
					}
				}
				if t.artCols[i] == col {
					v[i] = 1
				}
			}
			cb[k] = 0
		}
		bt[k] = v
	}
	// Solve Bᵀ y = c_B by Gaussian elimination with partial pivoting.
	y := solveLinear(bt, cb)
	// Duals are expressed for the normalized rows (b >= 0); rows that were
	// flipped need their dual sign flipped back.
	for i := 0; i < m; i++ {
		if t.p.Constraints[i].RHS < 0 {
			y[i] = -y[i]
		}
	}
	copy(sol.Duals, y)
}

// relAfterNormalize reports the relation of a row after the b >= 0
// normalization applied by newTableau.
func relAfterNormalize(c Constraint) Rel {
	if c.RHS >= 0 {
		return c.Rel
	}
	switch c.Rel {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// solveLinear solves A y = b in place for a small dense system; rows of A
// are consumed. Singular pivots (redundant rows) yield 0 components.
func solveLinear(a [][]float64, b []float64) []float64 {
	m := len(a)
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		best, bv := -1, tol
		for r := col; r < m; r++ {
			if v := math.Abs(a[r][col]); v > bv {
				best, bv = r, v
			}
		}
		if best == -1 {
			continue // singular direction; leave zero
		}
		a[col], a[best] = a[best], a[col]
		b[col], b[best] = b[best], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < m; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	y := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		if math.Abs(a[i][i]) <= tol {
			y[i] = 0
			continue
		}
		v := b[i]
		for j := i + 1; j < m; j++ {
			v -= a[i][j] * y[j]
		}
		y[i] = v / a[i][i]
	}
	return y
}
