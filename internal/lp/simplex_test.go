package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func TestSolveBasicLE(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, y <= 3, x,y >= 0. Optimum (1,3), -7.
	p := &Problem{
		NumVars: 2,
		C:       []float64{-1, -2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Obj, -7, 1e-9) || !approx(s.X[0], 1, 1e-9) || !approx(s.X[1], 3, 1e-9) {
		t.Errorf("X=%v obj=%g", s.X, s.Obj)
	}
}

func TestSolveEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x - y = 1. Solution x=2, y=1, obj 3.
	p := &Problem{
		NumVars: 2,
		C:       []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{1, -1}, Rel: EQ, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[0], 2, 1e-9) || !approx(s.X[1], 1, 1e-9) {
		t.Errorf("status=%v X=%v", s.Status, s.X)
	}
}

func TestSolveGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 5, x >= 1. Optimum (5,0), obj 10.
	p := &Problem{
		NumVars: 2,
		C:       []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 5},
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Obj, 10, 1e-9) {
		t.Errorf("status=%v X=%v obj=%g", s.Status, s.X, s.Obj)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		C:       []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want Infeasible", s.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		C:       []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: 0},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want Unbounded", s.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3). Optimum 3.
	p := &Problem{
		NumVars:     1,
		C:           []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{-1}, Rel: LE, RHS: -3}},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[0], 3, 1e-9) {
		t.Errorf("status=%v X=%v", s.Status, s.X)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex: redundant constraints meeting at the optimum.
	p := &Problem{
		NumVars: 2,
		C:       []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 1},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 2},
			{Coeffs: []float64{2, 2}, Rel: LE, RHS: 4},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Obj, -2, 1e-9) {
		t.Errorf("status=%v obj=%g", s.Status, s.Obj)
	}
}

func TestSolveDualsKnown(t *testing.T) {
	// min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Classic: optimum (2,6), obj -36, duals (0, -3/2, -1).
	p := &Problem{
		NumVars: 2,
		C:       []float64{-3, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Obj, -36, 1e-9) {
		t.Fatalf("status=%v obj=%g X=%v", s.Status, s.Obj, s.X)
	}
	want := []float64{0, -1.5, -1}
	for i := range want {
		if !approx(s.Duals[i], want[i], 1e-9) {
			t.Errorf("dual %d = %g, want %g", i, s.Duals[i], want[i])
		}
	}
}

// checkCertificate verifies the optimality certificate: primal feasibility,
// strong duality obj == yᵀb, and dual feasibility c_j - yᵀa_j >= 0 for every
// column (minimization over x >= 0).
func checkCertificate(t *testing.T, p *Problem, s *Solution) {
	t.Helper()
	const eps = 1e-6
	for i, c := range p.Constraints {
		var lhs float64
		for j, v := range c.Coeffs {
			lhs += v * s.X[j]
		}
		switch c.Rel {
		case LE:
			if lhs > c.RHS+eps {
				t.Fatalf("constraint %d violated: %g > %g", i, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-eps {
				t.Fatalf("constraint %d violated: %g < %g", i, lhs, c.RHS)
			}
		case EQ:
			if !approx(lhs, c.RHS, eps) {
				t.Fatalf("constraint %d violated: %g != %g", i, lhs, c.RHS)
			}
		}
	}
	for j := range s.X {
		if s.X[j] < -eps {
			t.Fatalf("x[%d] = %g negative", j, s.X[j])
		}
	}
	var ytb float64
	for i, c := range p.Constraints {
		ytb += s.Duals[i] * c.RHS
	}
	if !approx(ytb, s.Obj, eps) {
		t.Fatalf("strong duality: yᵀb=%g obj=%g (duals=%v)", ytb, s.Obj, s.Duals)
	}
	for j := 0; j < p.NumVars; j++ {
		red := p.C[j]
		for i, c := range p.Constraints {
			red -= s.Duals[i] * c.Coeffs[j]
		}
		if red < -eps {
			t.Fatalf("dual infeasible at column %d: reduced cost %g", j, red)
		}
	}
	// Dual sign conventions.
	for i, c := range p.Constraints {
		switch c.Rel {
		case LE:
			if s.Duals[i] > eps {
				t.Fatalf("dual %d = %g > 0 on <= row", i, s.Duals[i])
			}
		case GE:
			if s.Duals[i] < -eps {
				t.Fatalf("dual %d = %g < 0 on >= row", i, s.Duals[i])
			}
		}
	}
}

func TestSolveRandomCertificates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	solved := 0
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := &Problem{NumVars: n, C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = float64(rng.Intn(11) - 5)
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: Rel(rng.Intn(3)), RHS: float64(rng.Intn(15) - 3)}
			for j := range c.Coeffs {
				c.Coeffs[j] = float64(rng.Intn(9) - 4)
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status == Optimal {
			solved++
			checkCertificate(t, p, s)
		}
	}
	if solved < 30 {
		t.Fatalf("only %d/200 random LPs were optimal; generator too degenerate", solved)
	}
}

func TestSolveInputValidation(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 2, C: []float64{1}}); err == nil {
		t.Error("bad C length accepted")
	}
	p := &Problem{NumVars: 1, C: []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}}}
	if _, err := Solve(p); err == nil {
		t.Error("bad coeff length accepted")
	}
	p = &Problem{NumVars: 1, C: []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{math.NaN()}, Rel: LE, RHS: 1}}}
	if _, err := Solve(p); err == nil {
		t.Error("NaN coefficient accepted")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status string empty")
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, m = 30, 20
	p := &Problem{NumVars: n, C: make([]float64, n)}
	for j := range p.C {
		p.C[j] = rng.Float64() - 0.3
	}
	for i := 0; i < m; i++ {
		c := Constraint{Coeffs: make([]float64, n), Rel: LE, RHS: 10 + rng.Float64()*10}
		for j := range c.Coeffs {
			c.Coeffs[j] = rng.Float64()
		}
		p.Constraints = append(p.Constraints, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
