package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tdmroute/internal/serve"
)

// sweepVector is one serve-tier fault shape the sweep can inject.
type sweepVector int

const (
	sweepNone sweepVector = iota
	sweepKillVictim
	sweepKillAll
	sweepCorruptVictim
	sweepCorruptAll
	sweepPartitionVictim
	sweepVectors // count
)

func (v sweepVector) String() string {
	switch v {
	case sweepNone:
		return "none"
	case sweepKillVictim:
		return "kill-victim"
	case sweepKillAll:
		return "kill-all"
	case sweepCorruptVictim:
		return "corrupt-victim"
	case sweepCorruptAll:
		return "corrupt-all"
	case sweepPartitionVictim:
		return "partition-victim"
	default:
		return fmt.Sprintf("vector(%d)", int(v))
	}
}

// typedCoordErr reports whether a coordinator job's terminal error unwraps
// to one of the tier's typed errors (or a context sentinel) — the only
// failures the chaos contract permits.
func typedCoordErr(err error) bool {
	return errors.Is(err, ErrNoBackends) ||
		errors.Is(err, ErrAttemptsExhausted) ||
		errors.Is(err, ErrCorruptResponse) ||
		errors.Is(err, ErrSessionLost) ||
		errors.Is(err, errStalled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// TestCoordinatorChaosSweep is the serve-tier counterpart of the solver
// chaos harness: seeded faults — backend death mid-stream, fleet-wide
// death, corrupted responses, partitions — injected under real jobs on a
// real fleet. The invariant never weakens: every job ends either in a typed
// coordinator error or as a completed job whose solution bytes and event
// log are identical to an uninterrupted run. Each seed reproduces its
// injection from the (seed, vector) pair alone.
func TestCoordinatorChaosSweep(t *testing.T) {
	in := testInstance(t)
	bcfg := serve.Config{Workers: 2}
	sub := serve.SubmitRequest{Instance: in}
	_, refText, refEvents := reference(t, bcfg, sub)
	lrTotal := 0
	for _, e := range refEvents {
		if e.Type == "lr" {
			lrTotal++
		}
	}

	const seeds = 6
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			vector := sweepVector(rng.Intn(int(sweepVectors)))
			budget := rng.Intn(3)
			if lrTotal > 0 && budget >= lrTotal {
				budget = lrTotal - 1
			}
			t.Logf("vector %s, kill budget %d", vector, budget)

			f := startFleet(t, 3, bcfg)
			co, c := startCoord(t, f, func(cfg *Config) {
				cfg.RequestTimeout = 2 * time.Second
				cfg.StallTimeout = 2 * time.Second
			})
			v := f.victim(t, co, sub)
			switch vector {
			case sweepKillVictim:
				f.gates[v].KillAfterLR(budget)
			case sweepKillAll:
				for _, g := range f.gates {
					g.KillAfterLR(budget)
				}
			case sweepCorruptVictim:
				f.gates[v].CorruptSolutions(seed + 1)
			case sweepCorruptAll:
				for i, g := range f.gates {
					g.CorruptSolutions(seed + int64(i) + 1)
				}
			case sweepPartitionVictim:
				f.gates[v].Partition(true)
				defer f.gates[v].Partition(false)
			}

			ctx := context.Background()
			st, err := c.Submit(ctx, sub)
			if err != nil {
				t.Fatalf("submit rejected: %v", err)
			}
			events := collectEvents(t, c, st.ID)
			final, err := c.Status(ctx, st.ID)
			if err != nil {
				t.Fatal(err)
			}

			switch final.State {
			case serve.StateDone:
				if final.Response == nil || final.Response.Degraded != nil {
					t.Fatalf("done job degraded or empty under %s: nothing in the sweep cancels", vector)
				}
				text, err := c.SolutionBytes(ctx, st.ID, serve.FormatText)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(text, refText) {
					t.Fatalf("vector %s: completed job's solution differs from an uninterrupted run", vector)
				}
				if fmt.Sprintf("%v", events) != fmt.Sprintf("%v", refEvents) {
					t.Fatalf("vector %s: completed job's event log differs from an uninterrupted run:\ngot  %v\nwant %v",
						vector, events, refEvents)
				}
			case serve.StateFailed:
				j := co.lookup(st.ID)
				if j == nil {
					t.Fatal("failed job vanished from the coordinator")
				}
				if !typedCoordErr(j.err) {
					t.Fatalf("vector %s: failed job's error is not typed: %v", vector, j.err)
				}
				if final.Error == "" {
					t.Fatalf("vector %s: failed job reports no error over the wire", vector)
				}
			default:
				t.Fatalf("vector %s: terminal state %s is neither done nor failed", vector, final.State)
			}
		})
	}
}
