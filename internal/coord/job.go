package coord

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"tdmroute"
	"tdmroute/internal/problem"
	"tdmroute/internal/serve"
)

// Typed terminal errors. The chaos sweep's invariant is that every
// coordinator job ends either byte-identical to an uninterrupted run or with
// an error that unwraps to one of these (or to a context error) — never an
// arbitrary failure string.
var (
	// ErrNoBackends: no backend is eligible (every breaker is open).
	ErrNoBackends = errors.New("coord: no live backends")
	// ErrAttemptsExhausted: the dispatch budget ran out before any backend
	// carried the job to completion.
	ErrAttemptsExhausted = errors.New("coord: dispatch attempts exhausted")
	// ErrCorruptResponse: a backend's solution bytes did not match its own
	// content digest (PerfRow.SolutionSHA256); the response was discarded.
	ErrCorruptResponse = errors.New("coord: backend returned corrupt solution bytes")
	// ErrSessionLost: a delta job's backend (and with it the pinned warm
	// session) became unreachable; deltas cannot be re-dispatched.
	ErrSessionLost = errors.New("coord: warm session lost with its backend")
	// errStalled marks a partitioned backend: the event stream delivered
	// nothing for the stall budget while the job should have been running.
	errStalled = errors.New("coord: backend event stream stalled")
)

// cjob is one coordinator job: the submission it proxies, the backend
// placement, the coordinator-side event log (re-sequenced across
// re-dispatches), and the verified terminal result.
type cjob struct {
	id      string
	sub     serve.SubmitRequest
	key     string
	created time.Time
	// isDelta pins the job to its base's backend: no cache, no re-dispatch
	// (the warm session exists nowhere else). The handler forwards the delta
	// synchronously, so a delta cjob is born already placed.
	isDelta bool
	// baseID is the coordinator id of the base job (deltas only).
	baseID string

	mu      sync.Mutex
	state   serve.State
	backend string // current backend name; "cache" for cache hits
	// remoteID is the job's id on the current backend.
	remoteID string
	events   []serve.Event
	// notify is closed and replaced whenever an event is appended;
	// SSE subscribers re-fetch and re-arm.
	notify chan struct{}
	// final is the verified terminal status (coordinator ids, Backend set).
	final     *serve.JobStatus
	sol       *tdmroute.Solution
	solText   []byte
	err       error
	cancelled bool
	attempts  int
}

func newCJob(sub serve.SubmitRequest) *cjob {
	return &cjob{
		sub:     sub,
		created: time.Now(),
		state:   serve.StateQueued,
		//lint:ignore rawgo job event broadcast channel, not solver parallelism: closed to wake SSE subscribers
		notify: make(chan struct{}),
	}
}

// appendEvent re-sequences an event into the coordinator's log and wakes
// subscribers. Events arriving from a re-dispatched backend have already
// been prefix-skipped by the caller, so the log is exactly-once.
func (j *cjob) appendEvent(e serve.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(e)
}

func (j *cjob) appendEventLocked(e serve.Event) {
	e.Seq = len(j.events)
	j.events = append(j.events, e)
	if e.Type == "state" && e.State != "" {
		j.state = e.State
	}
	close(j.notify)
	//lint:ignore rawgo job event broadcast channel, not solver parallelism: re-armed after each broadcast
	j.notify = make(chan struct{})
}

// eventCount returns the number of events already broadcast — the replay
// prefix a re-dispatched backend's stream must skip.
func (j *cjob) eventCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// eventsSince mirrors serve's job.eventsSince: a snapshot from the clamped
// cursor, the wake channel, and stream completion.
func (j *cjob) eventsSince(seq int) ([]serve.Event, int, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq > len(j.events) {
		seq = len(j.events)
	}
	evs := append([]serve.Event(nil), j.events[seq:]...)
	return evs, seq, j.notify, j.state.Terminal() && seq+len(evs) == len(j.events)
}

// setPlacement records the job's current backend and remote id.
func (j *cjob) setPlacement(backend, remoteID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.backend = backend
	j.remoteID = remoteID
	j.attempts++
}

// placement returns the current backend name and remote id.
func (j *cjob) placement() (string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.backend, j.remoteID
}

func (j *cjob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// requestCancel marks the job cancelled and returns its state plus the
// placement the caller must forward the cancellation to. The coordinator
// does not transition the state here: a running remote job ends with its
// best-so-far incumbent, which the dispatch loop collects like any result.
func (j *cjob) requestCancel() (serve.State, string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelled = true
	return j.state, j.backend, j.remoteID
}

func (j *cjob) isCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// finish records the verified terminal result exactly once and appends the
// coordinator's own done event (backend done events are filtered out of the
// proxy stream, so re-dispatch can never leak a premature one).
func (j *cjob) finish(state serve.State, final *serve.JobStatus, sol *tdmroute.Solution, text []byte, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.final = final
	j.sol = sol
	j.solText = text
	j.err = err
	e := serve.Event{Type: "done", State: state}
	if err != nil {
		e.Error = err.Error()
	}
	j.appendEventLocked(e)
	return true
}

// status snapshots the job in wire form. For terminal jobs it is the
// verified backend status re-identified under the coordinator's ids; before
// that it is built from the coordinator's own bookkeeping.
func (j *cjob) status() *serve.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.final != nil {
		st := *j.final
		st.ID = j.id
		st.BaseID = j.baseID
		st.Backend = j.backend
		st.Events = len(j.events)
		if j.err != nil {
			st.Error = j.err.Error()
		}
		return &st
	}
	st := &serve.JobStatus{
		ID:      j.id,
		State:   j.state,
		Mode:    j.sub.Mode.String(),
		BaseID:  j.baseID,
		Created: j.created,
		Events:  len(j.events),
		Backend: j.backend,
	}
	if j.isDelta {
		st.Mode = tdmroute.ModeDelta.String()
	}
	if j.sub.Instance != nil {
		st.Bench = j.sub.Instance.Name
		st.NumEdges = j.sub.Instance.G.NumEdges()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// solution returns the verified terminal solution, or nils.
func (j *cjob) solution() (*tdmroute.Solution, []byte, *serve.JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sol, j.solText, j.final
}

// dispatch is a job's coordinator-side life: place it, submit it, proxy its
// event stream, and collect the verified result — re-dispatching to the next
// live backend each time one is lost mid-job, up to the attempt budget.
// Determinism makes the re-dispatch replay-safe: the rerun's event stream
// and solution bytes are identical to the lost run's, so the proxy skips the
// already-broadcast prefix and the client sees one uninterrupted job.
func (co *Coordinator) dispatch(j *cjob) {
	defer co.wg.Done()
	failed := map[string]bool{}
	var lastErr error
	for attempt := 0; attempt < co.cfg.MaxAttempts; attempt++ {
		if j.isCancelled() && j.eventCount() == 0 {
			// Cancelled before any backend made progress: terminal here.
			co.finishJob(j, serve.StateCanceled, nil, nil, nil, context.Canceled)
			return
		}
		b := co.place(j.key, failed)
		if b == nil {
			co.finishJob(j, serve.StateFailed, nil, nil, nil,
				fmt.Errorf("%w (job %s, attempt %d)", ErrNoBackends, j.id, attempt+1))
			return
		}
		if attempt > 0 {
			co.metrics.retries.Add(1)
			co.logf("job %s: re-dispatching to %s (attempt %d): %v", j.id, b.name, attempt+1, lastErr)
		}
		remoteID, err := co.submitTo(b, j)
		if err != nil {
			co.observeError(b, err)
			failed[b.name] = true
			lastErr = err
			continue
		}
		b.markOK()
		j.setPlacement(b.name, remoteID)
		if j.isCancelled() {
			// The cancel raced the submit; forward it so the backend ends
			// the run with its incumbent rather than solving to completion.
			cctx, cancel := co.unaryCtx(context.Background())
			b.client.Cancel(cctx, remoteID)
			cancel()
		}
		err = co.follow(j, b, remoteID)
		if err == nil {
			return // collected: finishJob already ran
		}
		co.observeError(b, err)
		failed[b.name] = true
		lastErr = err
	}
	co.finishJob(j, serve.StateFailed, nil, nil, nil,
		fmt.Errorf("%w (%d attempts, last: %v)", ErrAttemptsExhausted, co.cfg.MaxAttempts, lastErr))
}

// submitTo submits the job to one backend and returns the remote job id.
func (co *Coordinator) submitTo(b *backend, j *cjob) (string, error) {
	ctx, cancel := co.unaryCtx(context.Background())
	defer cancel()
	st, err := b.client.Submit(ctx, j.sub)
	if err != nil {
		return "", err
	}
	return st.ID, nil
}

// runDelta is the dispatch loop's delta counterpart: the handler already
// placed and submitted the job, so all that remains is following the stream
// and collecting. There is no re-dispatch — the warm session exists only on
// this backend, so losing it is the typed ErrSessionLost, never a silent
// cold re-solve on another node.
func (co *Coordinator) runDelta(j *cjob, b *backend) {
	defer co.wg.Done()
	_, remoteID := j.placement()
	if err := co.follow(j, b, remoteID); err != nil {
		co.observeError(b, err)
		co.finishJob(j, serve.StateFailed, nil, nil, nil,
			fmt.Errorf("%w: backend %s: %v", ErrSessionLost, b.name, err))
	}
}

// follow proxies one backend run: it streams events (filtering backend done
// events and skipping the prefix a previous backend already delivered),
// watches for stalls, and on stream completion collects and verifies the
// result. A nil return means the job reached a verified terminal state; an
// error means the backend was lost and the caller decides about re-dispatch.
func (co *Coordinator) follow(j *cjob, b *backend, remoteID string) error {
	skip := j.eventCount()
	seen := 0
	sctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	//lint:ignore rawgo stream activity channel, not solver parallelism: feeds the partition watchdog
	activity := make(chan struct{}, 1)
	//lint:ignore rawgo stream completion channel, not solver parallelism: hands the stream error to the watchdog loop
	errc := make(chan error, 1)
	//lint:ignore rawgo event stream follower, not solver parallelism: the watchdog must be able to abandon a partitioned (hanging) connection
	go func() {
		errc <- b.client.Stream(sctx, remoteID, func(e serve.Event) error {
			select {
			case activity <- struct{}{}:
			default:
			}
			if e.Type == "done" {
				return nil // the coordinator emits its own on verified finish
			}
			if seen++; seen <= skip {
				return nil // replayed prefix of a re-dispatched run
			}
			j.appendEvent(e)
			return nil
		})
	}()
	watchdog := time.NewTimer(co.cfg.StallTimeout)
	defer watchdog.Stop()
	for {
		select {
		case err := <-errc:
			if err != nil {
				return err // connection lost and reconnects exhausted
			}
			return co.collect(j, b, remoteID)
		case <-activity:
			if !watchdog.Stop() {
				<-watchdog.C
			}
			watchdog.Reset(co.cfg.StallTimeout)
		case <-watchdog.C:
			cancel()
			<-errc
			return fmt.Errorf("%w: backend %s silent for %v on job %s",
				errStalled, b.name, co.cfg.StallTimeout, remoteID)
		}
	}
}

// collect fetches and verifies the terminal result of a remote job. Solution
// bytes are checked against the backend's own content digest before they are
// accepted; a mismatch is a corrupt response — counted, and returned as an
// error so the dispatch loop retries elsewhere.
func (co *Coordinator) collect(j *cjob, b *backend, remoteID string) error {
	ctx, cancel := co.unaryCtx(context.Background())
	defer cancel()
	st, err := b.client.Status(ctx, remoteID)
	if err != nil {
		return err
	}
	if st.Response == nil {
		// Failed/canceled without an incumbent: terminal, nothing to verify.
		// (A decoded Response never carries the solution itself — its
		// presence is the signal; the bytes come from the solution endpoint.)
		co.finishJob(j, st.State, st, nil, nil, remoteErr(st))
		return nil
	}
	text, err := b.client.SolutionBytes(ctx, remoteID, serve.FormatText)
	if err != nil {
		return err
	}
	digest := sha256.Sum256(text)
	want := ""
	if st.Telemetry != nil {
		want = st.Telemetry.SolutionSHA256
	}
	if got := hex.EncodeToString(digest[:]); got != want {
		co.metrics.corrupt.Add(1)
		return fmt.Errorf("%w: backend %s job %s: got %s, telemetry says %s",
			ErrCorruptResponse, b.name, remoteID, got, want)
	}
	sol, err := problem.ParseSolution(bytes.NewReader(text), st.NumEdges)
	if err != nil {
		co.metrics.corrupt.Add(1)
		return fmt.Errorf("%w: backend %s job %s: digest matched but bytes do not parse: %v",
			ErrCorruptResponse, b.name, remoteID, err)
	}
	co.finishJob(j, st.State, st, sol, text, remoteErr(st))
	if st.State == serve.StateDone && st.Response.Degraded == nil && !j.isDelta && j.key != "" {
		co.cache.put(&cacheEntry{key: j.key, status: *st, sol: sol, text: text})
	}
	return nil
}

// remoteErr reconstructs the terminal error a backend reported, preserving
// the typed context sentinels so coordinator clients can errors.Is them.
func remoteErr(st *serve.JobStatus) error {
	if st.Error == "" {
		return nil
	}
	switch st.Error {
	case context.Canceled.Error():
		return context.Canceled
	case context.DeadlineExceeded.Error():
		return context.DeadlineExceeded
	}
	return errors.New(st.Error)
}

// finishJob records the outcome in the job and the metrics.
func (co *Coordinator) finishJob(j *cjob, state serve.State, final *serve.JobStatus, sol *tdmroute.Solution, text []byte, err error) {
	if !j.finish(state, final, sol, text, err) {
		return
	}
	co.metrics.observeOutcome(state, final)
	backend, _ := j.placement()
	if err != nil {
		co.logf("job %s: %s on %s: %v", j.id, state, backend, err)
	} else {
		co.logf("job %s: %s on %s", j.id, state, backend)
	}
}
