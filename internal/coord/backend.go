package coord

import (
	"errors"
	"fmt"
	"net/url"
	"sync"
	"sync/atomic"

	"tdmroute/internal/serve"
)

// breakerState is a backend's circuit-breaker position.
type breakerState int32

const (
	// breakerClosed: healthy, fully eligible for placement.
	breakerClosed breakerState = iota
	// breakerHalfOpen: a probe succeeded after the breaker opened; the
	// backend is eligible again, and the next real request decides — success
	// closes the breaker, failure re-opens it.
	breakerHalfOpen
	// breakerOpen: consecutive failures exceeded the threshold; the backend
	// is excluded from placement until a probe succeeds.
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	}
	return fmt.Sprintf("breaker(%d)", int32(s))
}

// backend is one tdmroutd node fronted by the coordinator: its client, its
// circuit breaker, and its failure accounting.
type backend struct {
	name   string // host:port, the metrics label and placement identity
	url    string
	client *serve.Client

	mu    sync.Mutex
	state breakerState
	// fails counts consecutive failures (requests and probes); any success
	// resets it.
	fails int
	// failures and opens are lifetime counters for /metrics.
	failures atomic.Int64
	opens    atomic.Int64
	lastErr  error
}

func newBackend(raw string, cfg Config) (*backend, error) {
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("coord: bad backend URL %q", raw)
	}
	return &backend{
		name:   u.Host,
		url:    raw,
		client: &serve.Client{BaseURL: raw, HTTPClient: cfg.HTTPClient},
	}, nil
}

// eligible reports whether the placement may use this backend.
func (b *backend) eligible() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerOpen
}

func (b *backend) breakerState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *backend) consecutiveFails() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}

// markOK records a successful real request: any breaker state collapses back
// to closed and the consecutive-failure budget refills.
func (b *backend) markOK() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.lastErr = nil
}

// markFail records a failed real request against threshold; it returns true
// when this failure opened the breaker. A half-open backend re-opens on its
// first failure — the trial request lost.
func (b *backend) markFail(err error, threshold int) (opened bool) {
	b.failures.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.lastErr = err
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= threshold) {
		if b.state != breakerOpen {
			opened = true
			b.opens.Add(1)
		}
		b.state = breakerOpen
	}
	return opened
}

// probeSuccess records a successful health check. An open breaker moves to
// half-open (the next request is the trial); a half-open one closes — two
// consecutive good probes are enough for an idle coordinator to recover a
// backend without waiting for traffic. It returns true on the open→half-open
// transition.
func (b *backend) probeSuccess() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	switch b.state {
	case breakerOpen:
		b.state = breakerHalfOpen
		return true
	case breakerHalfOpen:
		b.state = breakerClosed
	}
	return false
}

// probeFailure records a failed health check. The accounting matches
// markFail: a half-open backend re-opens on one miss (the recovery was
// premature), a closed one opens after threshold consecutive failures.
func (b *backend) probeFailure(threshold int) bool {
	b.failures.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= threshold) {
		b.state = breakerOpen
		b.opens.Add(1)
		return true
	}
	return false
}

// observeError classifies a backend call error: an APIError means the
// backend answered (it is alive — the request was just refused), anything
// else is a transport-level failure counted against the breaker.
func (co *Coordinator) observeError(b *backend, err error) {
	var apiErr *serve.APIError
	if errors.As(err, &apiErr) {
		b.markOK()
		return
	}
	if b.markFail(err, co.cfg.BreakerThreshold) {
		co.logf("backend %s: breaker open: %v", b.name, err)
	}
}
