package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tdmroute/internal/serve"
)

func (co *Coordinator) routes() {
	co.mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	co.mux.HandleFunc("POST /v1/jobs/{id}/delta", co.handleDelta)
	co.mux.HandleFunc("GET /v1/jobs/{id}", co.handleStatus)
	co.mux.HandleFunc("GET /v1/jobs/{id}/events", co.handleEvents)
	co.mux.HandleFunc("GET /v1/jobs/{id}/solution", co.handleSolution)
	co.mux.HandleFunc("DELETE /v1/jobs/{id}", co.handleCancel)
	co.mux.HandleFunc("GET /v1/backends", co.handleBackends)
	co.mux.HandleFunc("GET /metrics", co.handleMetrics)
	co.mux.HandleFunc("GET /healthz", co.handleHealthz)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (co *Coordinator) unavailable(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(int(co.cfg.RetryAfter.Round(time.Second)/time.Second)))
	httpError(w, http.StatusServiceUnavailable, "%s", reason)
}

func accepted(w http.ResponseWriter, st *serve.JobStatus) {
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(st)
}

// handleSubmit accepts the same submissions as a single tdmroutd node,
// resolves them against the result cache, and dispatches misses to a
// backend chosen by rendezvous placement. A cache hit creates a job that is
// born terminal — no backend, no solver, the result replayed from content
// address — which the acceptance metrics (cache_hits_total vs backend
// accepted counters) make observable.
func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if co.draining.Load() {
		co.metrics.submitRejected.Add(1)
		co.unavailable(w, "coordinator is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, co.cfg.MaxBodyBytes)
	sub, err := serve.ParseSubmit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := newCJob(sub)
	j.key = cacheKey(sub)
	co.metrics.accepted.Add(1)

	// Retained submissions need a live warm session, so they always run;
	// everything else may be answered from the content-addressed cache.
	if !sub.Retain {
		if e := co.cache.get(j.key); e != nil {
			co.metrics.cacheHits.Add(1)
			co.register(j)
			j.mu.Lock()
			j.backend = "cache"
			j.mu.Unlock()
			st := e.status
			co.finishJob(j, serve.StateDone, &st, e.sol, e.text, nil)
			co.logf("job %s: cache hit (%s)", j.id, j.key[:12])
			accepted(w, j.status())
			return
		}
		co.metrics.cacheMisses.Add(1)
	}
	co.register(j)
	co.wg.Add(1)
	//lint:ignore rawgo per-job dispatch goroutine, not solver parallelism: proxies one job's lifetime across backends
	go co.dispatch(j)
	accepted(w, j.status())
}

// handleDelta forwards an ECO re-solve to the backend holding the base
// job's warm session. The forwarding is synchronous so the backend's
// conflict answers (409 busy, 410 gone) surface as this request's response;
// only the progress proxying runs on after 202. A base whose backend has
// since died — or that was answered from the cache and never ran anywhere —
// is a deterministic 410: the warm session does not exist.
func (co *Coordinator) handleDelta(w http.ResponseWriter, r *http.Request) {
	if co.draining.Load() {
		co.metrics.submitRejected.Add(1)
		co.unavailable(w, "coordinator is draining")
		return
	}
	base := co.lookup(r.PathValue("id"))
	if base == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !base.terminal() {
		httpError(w, http.StatusConflict, "base job %s is not finished; deltas target finished jobs", base.id)
		return
	}
	backendName, remoteID := base.placement()
	if backendName == "" || backendName == "cache" || remoteID == "" {
		httpError(w, http.StatusGone,
			"job %s has no warm session on any backend (cache hits and failed jobs retain nothing)", base.id)
		return
	}
	b := co.backendByName(backendName)
	if b == nil || !b.eligible() {
		httpError(w, http.StatusGone, "job %s's warm session is on backend %s, which is down", base.id, backendName)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, co.cfg.MaxBodyBytes)
	var doc serve.DeltaDoc
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		httpError(w, http.StatusBadRequest, "bad delta body: %v", err)
		return
	}
	var deadline time.Duration
	if v := r.URL.Query().Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, "bad deadline %q", v)
			return
		}
		deadline = d
	}

	ctx, cancel := co.unaryCtx(r.Context())
	st, err := b.client.SubmitDelta(ctx, remoteID, doc, deadline)
	cancel()
	if err != nil {
		var apiErr *serve.APIError
		if errors.As(err, &apiErr) {
			b.markOK()
			if apiErr.Status == http.StatusNotFound {
				// The backend restarted and forgot the base job; the warm
				// session died with the old process. Same contract as an
				// evicted session: gone, not a server error.
				httpError(w, http.StatusGone, "job %s's warm session was lost (backend %s restarted)", base.id, b.name)
				return
			}
			httpError(w, apiErr.Status, "%s", apiErr.Message)
			return
		}
		co.observeError(b, err)
		co.unavailable(w, fmt.Sprintf("backend %s unreachable: %v", b.name, err))
		return
	}

	j := newCJob(serve.SubmitRequest{})
	j.isDelta = true
	j.baseID = base.id
	co.metrics.accepted.Add(1)
	co.register(j)
	j.setPlacement(b.name, st.ID)
	co.wg.Add(1)
	//lint:ignore rawgo per-job proxy goroutine, not solver parallelism: follows one delta job on its pinned backend
	go co.runDelta(j, b)
	accepted(w, j.status())
}

func (co *Coordinator) jobFor(w http.ResponseWriter, r *http.Request) *cjob {
	j := co.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := co.jobFor(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

func (co *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := co.jobFor(w, r)
	if j == nil {
		return
	}
	state := co.cancelJob(r.Context(), j)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"id": j.id, "state": state})
}

// handleEvents streams the coordinator's re-sequenced event log as SSE,
// identically to a single node: replay from the Last-Event-ID cursor, then
// live events until the job is terminal. Clients resume across coordinator
// reconnects exactly as they would against tdmroutd; backend loss and
// re-dispatch are invisible here because the log is already deduplicated.
func (co *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := co.jobFor(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	next := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		id, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad Last-Event-ID %q", v)
			return
		}
		next = id + 1
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		evs, from, notify, terminal := j.eventsSince(next)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
		}
		next = from + len(evs)
		if len(evs) > 0 {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleSolution serves the verified solution. The text format returns the
// exact bytes the digest was checked against — the unit of the replay
// byte-identity guarantee; json and binary are rendered from the parsed
// solution through the same writers a single node uses.
func (co *Coordinator) handleSolution(w http.ResponseWriter, r *http.Request) {
	j := co.jobFor(w, r)
	if j == nil {
		return
	}
	if !j.terminal() {
		httpError(w, http.StatusConflict, "job %s is not finished; no solution yet", j.id)
		return
	}
	sol, text, final := j.solution()
	if sol == nil {
		httpError(w, http.StatusConflict, "job %s produced no solution", j.id)
		return
	}
	if final != nil && final.Response != nil && final.Response.Degraded != nil {
		w.Header().Set("X-Tdmroute-Degraded", string(final.Response.Degraded.Stage))
	}
	serve.WriteSolutionResponse(w, r.URL.Query().Get("format"), sol, text)
}

// handleBackends reports each backend's breaker state — the coordinator's
// own view of the fleet, for operators and the smoke harness.
func (co *Coordinator) handleBackends(w http.ResponseWriter, r *http.Request) {
	type row struct {
		Name     string `json:"name"`
		URL      string `json:"url"`
		Breaker  string `json:"breaker"`
		Failures int64  `json:"failures_total"`
		Opens    int64  `json:"breaker_opens_total"`
	}
	var rows []row
	for _, b := range co.backends {
		rows = append(rows, row{
			Name:     b.name,
			URL:      b.url,
			Breaker:  b.breakerState().String(),
			Failures: b.failures.Load(),
			Opens:    b.opens.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	co.writeMetrics(w)
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if co.draining.Load() {
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
