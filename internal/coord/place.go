package coord

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"tdmroute/internal/problem"
	"tdmroute/internal/serve"
)

// cacheKey is the content address of a submission: SHA-256 over the
// canonical contest-text serialization of the instance, the mode, and the
// normalized solver-option tuple (and the fixed routing, for assign mode).
//
// What the key deliberately excludes defines what "identical" means:
//
//   - name: a label, never part of the solved problem. The text
//     serialization leads with a "# instance <name>" comment, so that header
//     line is stripped before hashing — otherwise the same instance uploaded
//     under two names (or renamed by the server's default) would never hit.
//   - deadline: an upper bound on wall time. A deadline only changes the
//     result by degrading it, and degraded results are never cached, so two
//     submissions differing only in deadline share a (complete) result.
//   - retain: session placement, not problem content. Retained submissions
//     skip the cache lookup (they need a live warm session), but their
//     results still populate it for later identical plain submissions.
//
// Workers is normalized (negatives collapse to the sequential 1): the solver
// is deterministic across worker counts by the package's equivalence suites,
// but the option is kept in the key so a future divergence turns into cache
// misses, not silently wrong hits.
func cacheKey(sub serve.SubmitRequest) string {
	h := sha256.New()
	// The instance in canonical text form, minus the name header. The
	// serialization cannot fail on a validated instance and a hash.Hash
	// never errors on Write.
	var buf bytes.Buffer
	problem.WriteInstance(&buf, sub.Instance)
	body := buf.Bytes()
	if bytes.HasPrefix(body, []byte("# instance ")) {
		if nl := bytes.IndexByte(body, '\n'); nl >= 0 {
			body = body[nl+1:]
		}
	}
	h.Write(body)
	workers := sub.Workers
	if workers < 0 {
		workers = 1
	}
	// Queue is normalized like Workers ("" and "auto" both select the auto
	// engine): the engines are byte-identical by the equivalence suites,
	// but the knob stays in the key so a divergence would miss, not
	// corrupt. Partitions genuinely changes the routing, so distinct
	// values must never share a cache line.
	queue := sub.Queue
	if queue == "" {
		queue = "auto"
	}
	fmt.Fprintf(h, "|mode=%s|rounds=%d|epsilon=%g|maxiter=%d|ripup=%d|workers=%d|pow2=%t|queue=%s|partitions=%d",
		sub.Mode, sub.Rounds, sub.Epsilon, sub.MaxIter, sub.RipUp, workers, sub.Pow2, queue, sub.Partitions)
	if sub.Routing != nil {
		h.Write([]byte("|routing|"))
		problem.WriteRouting(h, sub.Routing)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// place ranks the eligible backends by rendezvous (highest-random-weight)
// hashing over the job's content key and returns the best one not yet in
// failed. Consistency matters twice: identical submissions land on the node
// most likely to already hold related state (the result, a warm session),
// and a backend joining or leaving remaps only the keys it wins — there is
// no ring to rebalance. When every eligible backend has already failed this
// job, the best eligible one is returned anyway (the failure may have been
// transient); nil means no backend is eligible at all.
func (co *Coordinator) place(key string, failed map[string]bool) *backend {
	var best, bestFresh *backend
	var bestScore, bestFreshScore uint64
	for _, b := range co.backends {
		if !b.eligible() {
			continue
		}
		score := rendezvousScore(key, b.name)
		if best == nil || score > bestScore {
			best, bestScore = b, score
		}
		if !failed[b.name] && (bestFresh == nil || score > bestFreshScore) {
			bestFresh, bestFreshScore = b, score
		}
	}
	if bestFresh != nil {
		return bestFresh
	}
	return best
}

// rendezvousScore is the weight of one (key, node) pair.
func rendezvousScore(key, node string) uint64 {
	h := sha256.Sum256([]byte(key + "\x00" + node))
	return binary.BigEndian.Uint64(h[:8])
}
