package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"tdmroute"
	"tdmroute/internal/chaos"
	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
	"tdmroute/internal/serve"
)

func testInstance(t *testing.T) *tdmroute.Instance {
	t.Helper()
	cfg, err := gen.SuiteConfig("synopsys01", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Name = "synopsys01"
	return in
}

// fleet is n real tdmroutd servers, each behind a chaos gate, plus the
// plumbing the tests need to find the one a given submission lands on.
type fleet struct {
	servers []*serve.Server
	gates   []*chaos.Gate
	urls    []string
	names   []string // URL hosts: the backend names the coordinator uses
	clients []*serve.Client
}

func startFleet(t *testing.T, n int, cfg serve.Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		s := serve.New(cfg)
		g := chaos.NewGate(s.Handler())
		ts := httptest.NewServer(g)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("backend shutdown: %v", err)
			}
			ts.Close()
		})
		f.servers = append(f.servers, s)
		f.gates = append(f.gates, g)
		f.urls = append(f.urls, ts.URL)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
		f.clients = append(f.clients, &serve.Client{BaseURL: ts.URL})
	}
	return f
}

// startCoord runs a coordinator over the fleet. Probes are effectively off
// (one per hour) so breaker transitions in tests come only from request
// traffic and are deterministic.
func startCoord(t *testing.T, f *fleet, mut func(*Config)) (*Coordinator, *serve.Client) {
	t.Helper()
	cfg := Config{
		Backends:       f.urls,
		ProbeInterval:  time.Hour,
		RequestTimeout: 5 * time.Second,
		Logf:           t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := co.Shutdown(ctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
		ts.Close()
	})
	return co, &serve.Client{BaseURL: ts.URL}
}

// victim returns the fleet index rendezvous placement picks for sub — the
// backend a chaos test must arm to hit the job's first dispatch.
func (f *fleet) victim(t *testing.T, co *Coordinator, sub serve.SubmitRequest) int {
	t.Helper()
	b := co.place(cacheKey(sub), nil)
	if b == nil {
		t.Fatal("placement returned no backend")
	}
	for i, name := range f.names {
		if name == b.name {
			return i
		}
	}
	t.Fatalf("placement chose unknown backend %s", b.name)
	return -1
}

// reference solves sub on a private ungated server and returns the terminal
// status, the canonical solution text, and the full event log — the ground
// truth the coordinator's answers must be byte-identical to.
func reference(t *testing.T, cfg serve.Config, sub serve.SubmitRequest) (*serve.JobStatus, []byte, []serve.Event) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("reference shutdown: %v", err)
		}
		ts.Close()
	}()
	c := &serve.Client{BaseURL: ts.URL}
	ctx := context.Background()
	st, err := c.Submit(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	var events []serve.Event
	if err := c.Stream(ctx, st.ID, func(e serve.Event) error {
		events = append(events, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("reference run: state %s, error %q", final.State, final.Error)
	}
	text, err := c.SolutionBytes(ctx, st.ID, serve.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	return final, text, events
}

// collectEvents streams one coordinator job's full event log.
func collectEvents(t *testing.T, c *serve.Client, id string) []serve.Event {
	t.Helper()
	var events []serve.Event
	if err := c.Stream(context.Background(), id, func(e serve.Event) error {
		events = append(events, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return events
}

// metricValue extracts one sample from a text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// acceptedTotal sums tdmroutd_jobs_accepted_total over the fleet — the
// number of solves any backend has ever been asked for.
func (f *fleet) acceptedTotal(t *testing.T) float64 {
	t.Helper()
	var sum float64
	for i, c := range f.clients {
		if f.gates[i].Dead() {
			continue
		}
		text, err := c.Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sum += metricValue(t, text, "tdmroutd_jobs_accepted_total")
	}
	return sum
}

// TestCoordinatorEndToEnd drives the happy path over the full stack: three
// distinct submissions across three backends, every answer byte-identical
// to a direct single-node run; then an identical resubmission answered from
// the content-addressed cache without any backend being asked to solve.
func TestCoordinatorEndToEnd(t *testing.T) {
	in := testInstance(t)
	bcfg := serve.Config{Workers: 2}
	f := startFleet(t, 3, bcfg)
	co, c := startCoord(t, f, nil)
	ctx := context.Background()

	subs := []serve.SubmitRequest{
		{Instance: in},
		{Instance: in, Mode: tdmroute.ModeIterative, Rounds: 2},
		{Instance: in, RipUp: 1},
	}
	type run struct {
		id   string
		text []byte
	}
	runs := make([]run, len(subs))
	for i, sub := range subs {
		st, err := c.Submit(ctx, sub)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(st.ID, "c") {
			t.Fatalf("coordinator job id %q does not carry the coordinator prefix", st.ID)
		}
		runs[i].id = st.ID
	}
	for i, sub := range subs {
		final, err := c.Wait(ctx, runs[i].id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != serve.StateDone {
			t.Fatalf("job %s: state %s, error %q", runs[i].id, final.State, final.Error)
		}
		found := false
		for _, name := range f.names {
			if final.Backend == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("job %s: Backend %q is not a fleet member", runs[i].id, final.Backend)
		}
		text, err := c.SolutionBytes(ctx, runs[i].id, serve.FormatText)
		if err != nil {
			t.Fatal(err)
		}
		runs[i].text = text
		_, want, _ := reference(t, bcfg, sub)
		if !bytes.Equal(text, want) {
			t.Fatalf("job %s: coordinator solution differs from a direct run", runs[i].id)
		}
	}

	// Identical resubmission: answered from the cache, no backend solves.
	before := f.acceptedTotal(t)
	st, err := c.Submit(ctx, subs[0])
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone || final.Backend != "cache" {
		t.Fatalf("cache hit: state %s backend %q, want done from \"cache\"", final.State, final.Backend)
	}
	text, err := c.SolutionBytes(ctx, st.ID, serve.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text, runs[0].text) {
		t.Fatal("cache hit solution differs from the original run")
	}
	if after := f.acceptedTotal(t); after != before {
		t.Fatalf("cache hit invoked a backend: fleet accepted %v -> %v", before, after)
	}

	// The aggregated exposition: coordinator counters plus every backend's
	// own series under an injected backend label.
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	text2 := body.String()
	if got := metricValue(t, text2, "tdmcoord_cache_hits_total"); got != 1 {
		t.Fatalf("tdmcoord_cache_hits_total = %v, want 1", got)
	}
	if got := metricValue(t, text2, "tdmcoord_backends_live"); got != 3 {
		t.Fatalf("tdmcoord_backends_live = %v, want 3", got)
	}
	if got := metricValue(t, text2, fmt.Sprintf("tdmcoord_jobs_total{outcome=%q}", "done")); got != 4 {
		t.Fatalf("done outcomes = %v, want 4", got)
	}
	for _, name := range f.names {
		series := fmt.Sprintf("tdmroutd_jobs_accepted_total{backend=%q}", name)
		metricValue(t, text2, series) // fatal if absent
	}
	_ = co
}

// TestCoordinatorKillBackendReplay is the tentpole guarantee: the backend
// running a job is killed mid-LR, the coordinator re-dispatches, and the
// client-visible event stream and solution bytes are identical to an
// uninterrupted run — one job, no seam.
func TestCoordinatorKillBackendReplay(t *testing.T) {
	in := testInstance(t)
	bcfg := serve.Config{Workers: 2}
	sub := serve.SubmitRequest{Instance: in}
	refFinal, refText, refEvents := reference(t, bcfg, sub)
	lrTotal := 0
	for _, e := range refEvents {
		if e.Type == "lr" {
			lrTotal++
		}
	}
	if lrTotal < 2 {
		t.Fatalf("reference run emitted %d LR events; the kill needs at least 2", lrTotal)
	}

	f := startFleet(t, 2, bcfg)
	co, c := startCoord(t, f, nil)
	v := f.victim(t, co, sub)
	f.gates[v].KillAfterLR(lrTotal / 2)

	ctx := context.Background()
	st, err := c.Submit(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	events := collectEvents(t, c, st.ID)
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("job after kill: state %s, error %q", final.State, final.Error)
	}
	if !f.gates[v].Dead() {
		t.Fatal("kill gate never fired; the test exercised nothing")
	}
	if final.Backend != f.names[1-v] {
		t.Fatalf("job finished on %q, want the surviving backend %q", final.Backend, f.names[1-v])
	}
	text, err := c.SolutionBytes(ctx, st.ID, serve.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text, refText) {
		t.Fatal("solution after mid-job kill differs from an uninterrupted run")
	}
	if fmt.Sprintf("%v", events) != fmt.Sprintf("%v", refEvents) {
		t.Fatalf("event log after mid-job kill differs from an uninterrupted run:\ngot  %v\nwant %v", events, refEvents)
	}
	if refFinal.Telemetry != nil && final.Telemetry != nil &&
		refFinal.Telemetry.SolutionSHA256 != final.Telemetry.SolutionSHA256 {
		t.Fatal("solution digests differ across the re-dispatch")
	}

	// The coordinator counted the retry and the victim's breaker opened.
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if got := metricValue(t, body.String(), "tdmcoord_retries_total"); got < 1 {
		t.Fatalf("tdmcoord_retries_total = %v, want >= 1", got)
	}
}

// TestCoordinatorCorruptResponse pins the verification gate: a backend
// whose solution bytes fail their own digest is treated as lost (counted,
// retried elsewhere), and when every backend corrupts, the job ends in the
// typed exhaustion error rather than serving bad bytes.
func TestCoordinatorCorruptResponse(t *testing.T) {
	in := testInstance(t)
	bcfg := serve.Config{Workers: 2}
	sub := serve.SubmitRequest{Instance: in}
	_, refText, _ := reference(t, bcfg, sub)

	f := startFleet(t, 2, bcfg)
	co, c := startCoord(t, f, nil)
	v := f.victim(t, co, sub)
	f.gates[v].CorruptSolutions(7)

	ctx := context.Background()
	st, err := c.Submit(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("job with one corrupting backend: state %s, error %q", final.State, final.Error)
	}
	text, err := c.SolutionBytes(ctx, st.ID, serve.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text, refText) {
		t.Fatal("solution served after corruption retry differs from an uninterrupted run")
	}
	if co.metrics.corrupt.Load() < 1 {
		t.Fatal("corrupt response was not counted")
	}

	// Both backends corrupting: the typed error, never corrupt bytes.
	f.gates[1-v].CorruptSolutions(11)
	st2, err := c.Submit(ctx, serve.SubmitRequest{Instance: in, RipUp: 2})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != serve.StateFailed {
		t.Fatalf("job with all backends corrupting: state %s, want failed", final2.State)
	}
	j := co.lookup(st2.ID)
	if j == nil || !errors.Is(j.err, ErrAttemptsExhausted) {
		t.Fatalf("terminal error %v does not unwrap to ErrAttemptsExhausted", j.err)
	}
	if !strings.Contains(final2.Error, "corrupt") {
		t.Fatalf("terminal error %q does not name the corruption", final2.Error)
	}
}

// TestCoordinatorPartitionFailover pins submit-time partition handling: a
// blackholed backend (connection accepted, no bytes ever move) times out
// the dispatch's unary budget and the job fails over, byte-identical.
func TestCoordinatorPartitionFailover(t *testing.T) {
	in := testInstance(t)
	bcfg := serve.Config{Workers: 2}
	sub := serve.SubmitRequest{Instance: in}
	_, refText, _ := reference(t, bcfg, sub)

	f := startFleet(t, 2, bcfg)
	co, c := startCoord(t, f, func(cfg *Config) {
		cfg.StallTimeout = 1500 * time.Millisecond
		cfg.RequestTimeout = 3 * time.Second
	})
	v := f.victim(t, co, sub)
	f.gates[v].Partition(true)

	ctx := context.Background()
	st, err := c.Submit(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("job across a partition: state %s, error %q", final.State, final.Error)
	}
	if final.Backend != f.names[1-v] {
		t.Fatalf("job finished on %q, want the reachable backend %q", final.Backend, f.names[1-v])
	}
	text, err := c.SolutionBytes(ctx, st.ID, serve.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text, refText) {
		t.Fatal("solution across a partition differs from an uninterrupted run")
	}
	f.gates[v].Partition(false)
}

// TestCoordinatorStallWatchdog pins the mid-stream watchdog: a backend that
// is partitioned while its job is mid-LR goes silent without dropping the
// connection, the coordinator declares it stalled after StallTimeout and
// re-dispatches, and the client's event stream continues seamlessly — then
// a cancel lands on the new backend and the job ends with a legal degraded
// incumbent.
func TestCoordinatorStallWatchdog(t *testing.T) {
	in := testInstance(t)
	bcfg := serve.Config{Workers: 2}
	// Effectively endless LR: the job is guaranteed to still be running
	// when the partition lands and after the re-dispatch.
	sub := serve.SubmitRequest{Instance: in, Epsilon: 1e-12, MaxIter: 2_000_000}

	f := startFleet(t, 2, bcfg)
	co, c := startCoord(t, f, func(cfg *Config) {
		cfg.StallTimeout = 1500 * time.Millisecond
		cfg.RequestTimeout = 3 * time.Second
	})
	v := f.victim(t, co, sub)

	ctx := context.Background()
	st, err := c.Submit(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	// Stream from the coordinator; partition the victim at the first LR
	// event, then hold on until events resume (the re-dispatched backend
	// replaying past the prefix), and cancel.
	var seen []serve.Event
	partitioned, cancelled := false, false
	err = c.Stream(ctx, st.ID, func(e serve.Event) error {
		seen = append(seen, e)
		if e.Type == "lr" && !partitioned {
			partitioned = true
			f.gates[v].Partition(true)
		}
		// Progress after the retry was counted means the replacement
		// backend is live past the stall: release the job.
		if e.Type == "lr" && !cancelled && co.metrics.retries.Load() >= 1 {
			cancelled = true
			if err := c.Cancel(ctx, st.ID); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("state %s, error %q; want done with a degraded incumbent", final.State, final.Error)
	}
	if final.Response == nil || final.Response.Degraded == nil {
		t.Fatal("cancelled mid-LR job carries no Degraded marker")
	}
	if co.metrics.retries.Load() < 1 {
		t.Fatal("watchdog never re-dispatched")
	}
	for i, e := range seen {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d: stream not exactly-once across the stall", i, e.Seq)
		}
	}
	text, err := c.SolutionBytes(ctx, st.ID, serve.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := problem.ParseSolution(bytes.NewReader(text), final.NumEdges)
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateSolution(in, sol); err != nil {
		t.Fatalf("degraded incumbent across a stall is not a legal solution: %v", err)
	}
	f.gates[v].Partition(false)
}

// TestCoordinatorDeltaPinning pins ECO routing: deltas run on the backend
// holding the base's warm session, a cache-answered base has no session to
// target (410), and an unknown base is a plain 404.
func TestCoordinatorDeltaPinning(t *testing.T) {
	in := testInstance(t)
	f := startFleet(t, 2, serve.Config{Workers: 2})
	_, c := startCoord(t, f, nil)
	ctx := context.Background()

	st, err := c.Submit(ctx, serve.SubmitRequest{Instance: in, Retain: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if base.State != serve.StateDone {
		t.Fatalf("retained base: state %s, error %q", base.State, base.Error)
	}

	dst, err := c.SubmitDelta(ctx, base.ID, serve.DeltaDoc{EdgeBias: []serve.EdgeBiasDoc{{Edge: 0, Delta: 2}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dfinal, err := c.Wait(ctx, dst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if dfinal.State != serve.StateDone {
		t.Fatalf("delta: state %s, error %q", dfinal.State, dfinal.Error)
	}
	if dfinal.Backend != base.Backend {
		t.Fatalf("delta ran on %q, want pinned to the base's backend %q", dfinal.Backend, base.Backend)
	}
	if dfinal.BaseID != base.ID {
		t.Fatalf("delta BaseID %q, want %q", dfinal.BaseID, base.ID)
	}
	if _, err := c.SolutionBytes(ctx, dst.ID, serve.FormatText); err != nil {
		t.Fatal(err)
	}

	// A second identical retained submission repopulated nothing new; a
	// plain resubmission of the same content is a cache hit, and a delta
	// against that hit has no session anywhere.
	st2, err := c.Submit(ctx, serve.SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := c.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Backend != "cache" {
		t.Fatalf("resubmission backend %q, want \"cache\"", hit.Backend)
	}
	_, err = c.SubmitDelta(ctx, hit.ID, serve.DeltaDoc{}, 0)
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGone {
		t.Fatalf("delta on a cache hit: %v, want 410", err)
	}
	_, err = c.SubmitDelta(ctx, "c9999999", serve.DeltaDoc{}, 0)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("delta on unknown base: %v, want 404", err)
	}
}

// TestCoordinatorDrain pins the shutdown contract: after Shutdown begins,
// submissions bounce with 503 + Retry-After, health reports draining, and
// finished jobs stay readable.
func TestCoordinatorDrain(t *testing.T) {
	in := testInstance(t)
	f := startFleet(t, 1, serve.Config{Workers: 1})
	co, c := startCoord(t, f, nil)
	ctx := context.Background()

	st, err := c.Submit(ctx, serve.SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := co.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, serve.SubmitRequest{Instance: in, RipUp: 3})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %v, want 503", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatal("503 while draining carries no Retry-After hint")
	}
	ok, err := c.Healthy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("healthz reports ok while draining")
	}
	if _, err := c.Status(ctx, st.ID); err != nil {
		t.Fatalf("finished job unreadable while draining: %v", err)
	}
}

// TestCoordinatorEventsResume pins SSE resume at the coordinator: a client
// reconnecting with Last-Event-ID sees exactly the tail, and a cursor past
// the end of a finished job closes immediately with nothing.
func TestCoordinatorEventsResume(t *testing.T) {
	in := testInstance(t)
	f := startFleet(t, 1, serve.Config{Workers: 1})
	_, c := startCoord(t, f, nil)
	ctx := context.Background()

	st, err := c.Submit(ctx, serve.SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	events := collectEvents(t, c, st.ID)
	if len(events) < 3 {
		t.Fatalf("job emitted only %d events; resume needs a tail to cut", len(events))
	}
	cut := len(events) / 2
	req, err := http.NewRequest("GET", c.BaseURL+"/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.Itoa(cut-1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	ids := []string{}
	for _, line := range strings.Split(body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "id: "); ok {
			ids = append(ids, rest)
		}
	}
	if len(ids) != len(events)-cut {
		t.Fatalf("resume from %d replayed %d events, want %d", cut-1, len(ids), len(events)-cut)
	}
	if ids[0] != strconv.Itoa(cut) {
		t.Fatalf("resume replay starts at id %s, want %d", ids[0], cut)
	}
}

// TestBreakerTransitions walks the circuit breaker through its whole state
// machine and checks placement honors it.
func TestBreakerTransitions(t *testing.T) {
	b, err := newBackend("http://127.0.0.1:1", Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	const threshold = 3
	for i := 0; i < threshold-1; i++ {
		if opened := b.markFail(boom, threshold); opened {
			t.Fatalf("breaker opened after %d failures, threshold %d", i+1, threshold)
		}
		if !b.eligible() {
			t.Fatal("breaker ineligible before opening")
		}
	}
	if opened := b.markFail(boom, threshold); !opened {
		t.Fatal("breaker did not open at threshold")
	}
	if b.eligible() {
		t.Fatal("open breaker still eligible")
	}
	if b.opens.Load() != 1 {
		t.Fatalf("opens = %d, want 1", b.opens.Load())
	}
	if !b.probeSuccess() {
		t.Fatal("first successful probe did not half-open the breaker")
	}
	if b.breakerState() != breakerHalfOpen || !b.eligible() {
		t.Fatal("half-open breaker should be eligible for traffic")
	}
	if opened := b.markFail(boom, threshold); !opened {
		t.Fatal("half-open breaker did not reopen on one failure")
	}
	b.probeSuccess()
	b.probeSuccess()
	if b.breakerState() != breakerClosed {
		t.Fatalf("breaker %s after two probe successes, want closed", b.breakerState())
	}
	b.markOK()
	if b.consecutiveFails() != 0 {
		t.Fatal("markOK did not reset the failure count")
	}
}

// TestCoordinatorNoBackends pins the all-dead outcome: with every breaker
// open, a submission terminates with the typed ErrNoBackends, visibly
// failed, not hung.
func TestCoordinatorNoBackends(t *testing.T) {
	in := testInstance(t)
	f := startFleet(t, 2, serve.Config{Workers: 1})
	co, c := startCoord(t, f, nil)
	for _, b := range co.backends {
		for i := 0; i < co.cfg.BreakerThreshold; i++ {
			b.markFail(errors.New("induced"), co.cfg.BreakerThreshold)
		}
	}
	ctx := context.Background()
	st, err := c.Submit(ctx, serve.SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateFailed {
		t.Fatalf("state %s, want failed", final.State)
	}
	j := co.lookup(st.ID)
	if j == nil || !errors.Is(j.err, ErrNoBackends) {
		t.Fatalf("terminal error %v does not unwrap to ErrNoBackends", j.err)
	}
}

// TestRendezvousPlacement pins the placement function itself: it is
// deterministic, it spreads distinct keys, and removing one backend remaps
// only the keys that backend owned.
func TestRendezvousPlacement(t *testing.T) {
	cfg := Config{
		Backends:      []string{"http://a:1", "http://b:1", "http://c:1"},
		ProbeInterval: time.Hour,
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown(context.Background())

	owner := map[string]string{}
	spread := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		b := co.place(key, nil)
		if b == nil {
			t.Fatal("no placement")
		}
		if again := co.place(key, nil); again != b {
			t.Fatalf("key %s: placement not deterministic", key)
		}
		owner[key] = b.name
		spread[b.name]++
	}
	for _, name := range []string{"a:1", "b:1", "c:1"} {
		if spread[name] == 0 {
			t.Fatalf("backend %s got no keys out of 300", name)
		}
	}
	// Open c's breaker: only c's keys move, everyone else stays put.
	var victim *backend
	for _, b := range co.backends {
		if b.name == "c:1" {
			victim = b
		}
	}
	for i := 0; i < 3; i++ {
		victim.markFail(errors.New("down"), 3)
	}
	for key, prev := range owner {
		b := co.place(key, nil)
		if prev != "c:1" && b.name != prev {
			t.Fatalf("key %s moved from %s to %s when an unrelated backend left", key, prev, b.name)
		}
		if prev == "c:1" && b.name == "c:1" {
			t.Fatalf("key %s still placed on the open backend", key)
		}
	}
}
