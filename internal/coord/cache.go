package coord

import (
	"container/list"
	"sync"

	"tdmroute"
	"tdmroute/internal/serve"
)

// cacheEntry is one content-addressed completed result: the terminal status
// (response + telemetry), the parsed solution, and the verified canonical
// text bytes the digest was checked against. Only non-degraded done results
// are cached — a degraded incumbent depends on where the run was
// interrupted, so it has no stable content address.
type cacheEntry struct {
	key    string
	status serve.JobStatus // terminal; ID/Backend are rewritten per hit
	sol    *tdmroute.Solution
	text   []byte
}

// resultCache is a bounded LRU over content keys. Everything under the mutex
// is in-memory bookkeeping (mutexhold: no IO, no channel ops).
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	evicted int64
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), entries: map[string]*list.Element{}}
}

// get returns the entry for key, refreshing its recency, or nil.
func (c *resultCache) get(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.entries[key]
	if el == nil {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// put inserts or refreshes an entry, evicting from the LRU tail past the
// bound. A non-positive cap disables caching entirely.
func (c *resultCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 {
		return
	}
	if el := c.entries[e.key]; el != nil {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// stats returns the live size and lifetime eviction count.
func (c *resultCache) stats() (size int, evicted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.evicted
}
