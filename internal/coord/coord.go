// Package coord is the fault-tolerant coordinator tier behind cmd/tdmcoord:
// a stdlib-only front for a fleet of tdmroutd backends, speaking the same
// HTTP+SSE protocol as a single node so clients cannot tell the difference.
//
// The coordinator never solves anything itself. A submission is validated
// locally (serve.ParseSubmit — malformed instances are rejected identically
// to a single node), keyed by a content address over the canonical instance
// bytes and the normalized solver options, and placed on a backend by
// rendezvous hashing, so identical work lands on the same node and a node
// joining or leaving reshuffles only its own share. Identical submissions
// short-circuit entirely: the solver pipeline is deterministic, so a
// completed (non-degraded) result is content-addressed and replayed from the
// coordinator's LRU result cache without touching any backend.
//
// Fault tolerance leans on the same determinism. When a backend dies
// mid-job, the coordinator re-dispatches the identical submission to the
// next live node; the rerun emits a byte-identical event stream and
// solution, so the coordinator resumes proxying events exactly where the
// dead backend stopped (skipping the replayed prefix by count) and the
// client observes one uninterrupted job — the replay-equivalence guarantee
// the chaos suite enforces. Every completed solution is verified against the
// backend's own content digest (PerfRow.SolutionSHA256) before it is served
// or cached, so a corrupted response becomes a retry and, past the attempt
// budget, a typed error — never silently wrong bytes.
//
// Backends are health-checked by per-node probers with jittered exponential
// backoff and a three-state circuit breaker (closed → open after
// consecutive failures → half-open after a successful probe); open backends
// are excluded from placement. Delta (ECO) jobs are pinned: the warm session
// lives only on the node that solved the base job, so deltas follow it and a
// lost backend surfaces as a typed gone-error rather than a silent cold
// re-solve.
//
// The raw concurrency in this package (dispatch goroutines, probers, event
// broadcast channels) is coordination plumbing, not solver parallelism;
// every primitive carries a lint:ignore rawgo justification.
package coord

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tdmroute/internal/serve"
)

// Config tunes the coordinator.
type Config struct {
	// Backends are the tdmroutd base URLs fronted by this coordinator.
	// At least one is required.
	Backends []string
	// HTTPClient is used for every backend call; defaults to
	// http.DefaultClient. Streams are long-lived, so a client with a global
	// Timeout would sever them — use transport-level timeouts instead.
	HTTPClient *http.Client
	// CacheEntries bounds the content-addressed result cache. Zero selects
	// 256; negative disables caching.
	CacheEntries int
	// MaxBodyBytes caps submission bodies. Zero selects 64 MiB.
	MaxBodyBytes int64
	// RetryAfter is the Retry-After hint on 503 rejections. Zero selects 1s.
	RetryAfter time.Duration
	// MaxAttempts bounds dispatches per job (first dispatch + re-dispatches
	// after backend loss). Zero selects 3.
	MaxAttempts int
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit breaker. Zero selects 3.
	BreakerThreshold int
	// ProbeInterval is the base health-check interval; an open breaker's
	// prober backs off exponentially (jittered) from it up to ProbeBackoffCap.
	// Zeros select 2s and 30s.
	ProbeInterval   time.Duration
	ProbeBackoffCap time.Duration
	// RequestTimeout bounds each unary backend call (submit, status,
	// solution, cancel). Zero selects 30s. Streams are bounded by
	// StallTimeout instead.
	RequestTimeout time.Duration
	// StallTimeout declares a backend partitioned when its event stream
	// delivers nothing for this long while the job is supposed to be
	// running; the job is then re-dispatched. Zero selects 2m.
	StallTimeout time.Duration
	// Logf, when non-nil, receives one line per coordinator transition.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeBackoffCap <= 0 {
		c.ProbeBackoffCap = 30 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 2 * time.Minute
	}
	return c
}

// Coordinator is the coordinator node. Create it with New, expose Handler
// over HTTP, and stop it with Shutdown.
type Coordinator struct {
	cfg      Config
	mux      *http.ServeMux
	backends []*backend
	cache    *resultCache
	metrics  metrics

	// stopc closes when Shutdown begins: probers stop, dispatches wind down.
	stopc chan struct{}
	//lint:ignore rawgo dispatch/prober lifecycle accounting, not solver parallelism: Shutdown waits for in-flight proxy work
	wg       sync.WaitGroup
	draining atomic.Bool
	stopOnce sync.Once

	mu     sync.Mutex
	jobs   map[string]*cjob
	nextID int
}

// New starts a coordinator: its per-backend health probers run until
// Shutdown. It fails fast on an empty backend list.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("coord: no backends configured")
	}
	co := &Coordinator{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		cache: newResultCache(cfg.CacheEntries),
		jobs:  map[string]*cjob{},
		//lint:ignore rawgo shutdown signal channel, not solver parallelism: closing it stops probers and new dispatches
		stopc: make(chan struct{}),
	}
	co.metrics.init()
	for _, u := range cfg.Backends {
		b, err := newBackend(u, cfg)
		if err != nil {
			return nil, err
		}
		co.backends = append(co.backends, b)
	}
	co.routes()
	for _, b := range co.backends {
		co.wg.Add(1)
		//lint:ignore rawgo per-backend health prober, not solver parallelism: drives the circuit breaker's open→half-open transitions
		go co.probe(b)
	}
	return co, nil
}

// Handler returns the HTTP handler serving the coordinator API.
func (co *Coordinator) Handler() http.Handler { return co.mux }

// Draining reports whether Shutdown has begun.
func (co *Coordinator) Draining() bool { return co.draining.Load() }

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// register tracks a new coordinator job under a fresh id.
func (co *Coordinator) register(j *cjob) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.nextID++
	j.id = coordJobID(co.nextID)
	co.jobs[j.id] = j
}

func coordJobID(n int) string {
	// The "c" prefix keeps coordinator ids disjoint from backend "j" ids, so
	// a log line or a mixed-up client is never ambiguous about the tier.
	return fmt.Sprintf("c%07d", n)
}

// lookup finds a coordinator job by id.
func (co *Coordinator) lookup(id string) *cjob {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.jobs[id]
}

// live returns the backends currently eligible for placement (breaker not
// open), in configuration order.
func (co *Coordinator) live() []*backend {
	var out []*backend
	for _, b := range co.backends {
		if b.eligible() {
			out = append(out, b)
		}
	}
	return out
}

// probe is one backend's health loop: a periodic check while the breaker is
// closed, jittered exponential backoff while it is open, and the
// open→half-open transition on the first success.
func (co *Coordinator) probe(b *backend) {
	defer co.wg.Done()
	delay := co.cfg.ProbeInterval
	for {
		t := time.NewTimer(jitter(delay))
		select {
		case <-co.stopc:
			t.Stop()
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), co.cfg.RequestTimeout)
		ok, err := b.client.Healthy(ctx)
		cancel()
		if ok {
			if b.probeSuccess() {
				co.logf("backend %s: probe ok, breaker half-open", b.name)
			}
			delay = co.cfg.ProbeInterval
			continue
		}
		if opened := b.probeFailure(co.cfg.BreakerThreshold); opened {
			co.logf("backend %s: breaker open (probe: %v)", b.name, err)
		}
		if b.breakerState() == breakerOpen {
			delay = backoffStep(co.cfg.ProbeInterval, co.cfg.ProbeBackoffCap, b.consecutiveFails())
		}
	}
}

// Shutdown drains the coordinator: submissions are rejected with Retry-After
// from this point on, in-flight jobs are cancelled on their backends (which
// finish them with best-so-far incumbents the dispatch loops then collect),
// and probers stop. It returns once every dispatch goroutine has finished,
// or with ctx's error if that takes longer than the caller allows.
func (co *Coordinator) Shutdown(ctx context.Context) error {
	co.draining.Store(true)
	co.stopOnce.Do(func() { close(co.stopc) })
	co.mu.Lock()
	ids := make([]string, 0, len(co.jobs))
	for id := range co.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	jobs := make([]*cjob, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, co.jobs[id])
	}
	co.mu.Unlock()
	for _, j := range jobs {
		if !j.terminal() {
			co.cancelJob(context.Background(), j)
		}
	}
	//lint:ignore rawgo shutdown completion signal, not solver parallelism: bridges WaitGroup completion to the caller's context
	done := make(chan struct{})
	//lint:ignore rawgo shutdown waiter, not solver parallelism: single goroutine closing the completion channel
	go func() {
		co.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	co.logf("coordinator drained: %s", co.metrics.summary())
	return nil
}

// jitter spreads d uniformly over [d/2, 3d/2) so probers and re-dispatches
// across a fleet of coordinators do not synchronize.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// backoffStep is base·2^n capped at max.
func backoffStep(base, max time.Duration, n int) time.Duration {
	d := base
	for i := 0; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// sleepCtx sleeps for d or until the coordinator stops.
func (co *Coordinator) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-co.stopc:
		return false
	}
}

// unaryCtx derives the bounded context for one unary backend call.
func (co *Coordinator) unaryCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, co.cfg.RequestTimeout)
}

// cancelJob marks the job cancelled and forwards the cancellation to its
// current backend (best-effort: a dead backend's job dies with it).
func (co *Coordinator) cancelJob(ctx context.Context, j *cjob) serve.State {
	state, backendName, remoteID := j.requestCancel()
	if backendName != "" && remoteID != "" {
		if b := co.backendByName(backendName); b != nil {
			cctx, cancel := co.unaryCtx(ctx)
			if err := b.client.Cancel(cctx, remoteID); err != nil {
				co.logf("job %s: cancel on %s failed: %v", j.id, backendName, err)
			}
			cancel()
		}
	}
	return state
}

func (co *Coordinator) backendByName(name string) *backend {
	for _, b := range co.backends {
		if b.name == name {
			return b
		}
	}
	return nil
}
