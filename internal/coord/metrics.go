package coord

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"tdmroute/internal/serve"
)

// metrics aggregates the coordinator's own counters. Everything here is an
// atomic or guarded by the outcome mutex; rendering happens into an
// in-memory buffer (mutexhold: the socket write never holds a lock).
type metrics struct {
	accepted       atomic.Int64
	submitRejected atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	retries        atomic.Int64
	corrupt        atomic.Int64

	mu       sync.Mutex
	outcomes map[serve.State]int64
}

func (m *metrics) init() {
	m.outcomes = map[serve.State]int64{}
}

func (m *metrics) observeOutcome(state serve.State, final *serve.JobStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := state
	if state == serve.StateDone && final != nil && final.Response != nil && final.Response.Degraded != nil {
		key = "degraded"
	}
	m.outcomes[key]++
}

func (m *metrics) summary() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("accepted %d, cache hits %d, retries %d, outcomes %v",
		m.accepted.Load(), m.cacheHits.Load(), m.retries.Load(), m.outcomes)
}

// outcomeOrder fixes the exposition order of the outcome counters.
var outcomeOrder = []serve.State{
	serve.StateDone, "degraded", serve.StateCanceled, serve.StateFailed, serve.StateRejected,
}

// writeMetrics renders the coordinator exposition: its own counters, the
// per-backend breaker gauges, and — for every backend that answers within
// the unary budget — that backend's full /metrics text with a
// backend="host:port" label injected into every sample, so one scrape of the
// coordinator sees the whole fleet.
func (co *Coordinator) writeMetrics(w io.Writer) {
	// Fetch the backend expositions before rendering: network IO happens
	// with no coordinator lock held.
	type bm struct {
		name string
		text string
	}
	fetched := make([]bm, len(co.backends))
	//lint:ignore rawgo concurrent metrics scrape fan-in, not solver parallelism: joins the per-backend fetch goroutines below
	var wg sync.WaitGroup
	for i, b := range co.backends {
		if !b.eligible() {
			continue
		}
		wg.Add(1)
		//lint:ignore rawgo concurrent metrics scrape, not solver parallelism: one slow backend must not serialize the whole exposition
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := co.unaryCtx(context.Background())
			defer cancel()
			text, err := b.client.Metrics(ctx)
			if err != nil {
				co.observeError(b, err)
				return
			}
			b.markOK()
			fetched[i] = bm{name: b.name, text: text}
		}(i, b)
	}
	wg.Wait()

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# tdmcoord metrics\n")
	fmt.Fprintf(&buf, "tdmcoord_up 1\n")
	fmt.Fprintf(&buf, "tdmcoord_draining %d\n", boolInt(co.draining.Load()))
	fmt.Fprintf(&buf, "tdmcoord_backends %d\n", len(co.backends))
	fmt.Fprintf(&buf, "tdmcoord_backends_live %d\n", len(co.live()))
	fmt.Fprintf(&buf, "tdmcoord_jobs_accepted_total %d\n", co.metrics.accepted.Load())
	fmt.Fprintf(&buf, "tdmcoord_submit_rejected_total %d\n", co.metrics.submitRejected.Load())
	fmt.Fprintf(&buf, "tdmcoord_cache_hits_total %d\n", co.metrics.cacheHits.Load())
	fmt.Fprintf(&buf, "tdmcoord_cache_misses_total %d\n", co.metrics.cacheMisses.Load())
	size, evicted := co.cache.stats()
	fmt.Fprintf(&buf, "tdmcoord_cache_entries %d\n", size)
	fmt.Fprintf(&buf, "tdmcoord_cache_evictions_total %d\n", evicted)
	fmt.Fprintf(&buf, "tdmcoord_retries_total %d\n", co.metrics.retries.Load())
	fmt.Fprintf(&buf, "tdmcoord_corrupt_responses_total %d\n", co.metrics.corrupt.Load())
	for _, b := range co.backends {
		st := b.breakerState()
		fmt.Fprintf(&buf, "tdmcoord_backend_breaker{backend=%q,state=%q} 1\n", b.name, st.String())
		fmt.Fprintf(&buf, "tdmcoord_backend_up{backend=%q} %d\n", b.name, boolInt(st != breakerOpen))
		fmt.Fprintf(&buf, "tdmcoord_backend_failures_total{backend=%q} %d\n", b.name, b.failures.Load())
		fmt.Fprintf(&buf, "tdmcoord_backend_breaker_opens_total{backend=%q} %d\n", b.name, b.opens.Load())
	}
	co.metrics.mu.Lock()
	for _, o := range outcomeOrder {
		fmt.Fprintf(&buf, "tdmcoord_jobs_total{outcome=%q} %d\n", string(o), co.metrics.outcomes[o])
	}
	co.metrics.mu.Unlock()
	for _, f := range fetched {
		if f.text == "" {
			continue
		}
		injectBackendLabel(&buf, f.text, f.name)
	}
	w.Write(buf.Bytes())
}

// injectBackendLabel re-emits one backend's text exposition with a
// backend="name" label spliced into every sample line, so the aggregated
// series stay distinguishable per node. Comment lines are dropped (each
// backend repeats them) and malformed lines pass through untouched.
func injectBackendLabel(buf *bytes.Buffer, text, name string) {
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			fmt.Fprintln(buf, line)
			continue
		}
		metric, value := line[:sp], line[sp+1:]
		if br := strings.IndexByte(metric, '{'); br >= 0 {
			fmt.Fprintf(buf, "%s{backend=%q,%s %s\n", metric[:br], name, metric[br+1:], value)
		} else {
			fmt.Fprintf(buf, "%s{backend=%q} %s\n", metric, name, value)
		}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
