package colgen

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
	"tdmroute/internal/tdm"
)

func pathInstance(nv int, nets []problem.Net, groups []problem.Group) *problem.Instance {
	g := graph.New(nv, nv-1)
	for i := 0; i+1 < nv; i++ {
		g.AddEdge(i, i+1)
	}
	in := &problem.Instance{Name: "path", G: g, Nets: nets, Groups: groups}
	in.RebuildNetGroups()
	return in
}

func TestColgenSingleEdgeSymmetric(t *testing.T) {
	// k nets on one edge, each its own group: optimum z = k.
	for _, k := range []int{1, 2, 4} {
		nets := make([]problem.Net, k)
		groups := make([]problem.Group, k)
		routes := make(problem.Routing, k)
		for i := 0; i < k; i++ {
			nets[i].Terminals = []int{0, 1}
			groups[i].Nets = []int{i}
			routes[i] = []int{0}
		}
		in := pathInstance(2, nets, groups)
		res, err := Solve(in, routes, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("k=%d: did not converge", k)
		}
		if math.Abs(res.Z-float64(k)) > 1e-6*float64(k) {
			t.Errorf("k=%d: z = %g, want %d", k, res.Z, k)
		}
	}
}

func TestColgenGoldenRatioInstance(t *testing.T) {
	// Same instance as the LR test: net 0 on edges {0,1}, net 1 on {1};
	// separate groups. Optimum z = 1 + φ + 1... z = max(1+t0, t1) with
	// 1/t0+1/t1=1 minimized at t0=φ, giving z = 1+φ = 2.618...
	nets := []problem.Net{{Terminals: []int{0, 2}}, {Terminals: []int{1, 2}}}
	groups := []problem.Group{{Nets: []int{0}}, {Nets: []int{1}}}
	in := pathInstance(3, nets, groups)
	routes := problem.Routing{{0, 1}, {1}}
	res, err := Solve(in, routes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + (1+math.Sqrt(5))/2
	if !res.Converged || math.Abs(res.Z-want) > 1e-5 {
		t.Errorf("z = %g (converged=%v), want %g", res.Z, res.Converged, want)
	}
}

func TestColgenMatchesLRBoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		in, routes := smallRandom(rng)
		res, err := Solve(in, routes, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: CG did not converge", trial)
		}
		_, zLR, lbLR, _, _, _ := tdm.RunLR(context.Background(), in, routes, tdm.Options{Epsilon: 1e-7, MaxIter: 20000})
		// Both solve the same linear relaxation: CG's z is its optimum.
		rel := math.Abs(res.Z-lbLR) / math.Max(1, res.Z)
		if rel > 5e-3 {
			t.Errorf("trial %d: CG z=%g, LR bound=%g (rel diff %g)", trial, res.Z, lbLR, rel)
		}
		if zLR < res.Z-1e-6*res.Z {
			t.Errorf("trial %d: LR primal %g below CG optimum %g", trial, zLR, res.Z)
		}
	}
}

// smallRandom builds a tiny instance with shortest-path routes.
func smallRandom(rng *rand.Rand) (*problem.Instance, problem.Routing) {
	nv := 4 + rng.Intn(3)
	g := graph.New(nv, nv+2)
	for i := 0; i+1 < nv; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(0, nv-1)
	nn := 3 + rng.Intn(5)
	nets := make([]problem.Net, nn)
	routes := make(problem.Routing, nn)
	d := graph.NewDijkstra(g)
	for i := 0; i < nn; i++ {
		u := rng.Intn(nv)
		v := rng.Intn(nv)
		for v == u {
			v = rng.Intn(nv)
		}
		nets[i].Terminals = []int{u, v}
		path, _, _ := d.ShortestPath(u, v, func(int) uint64 { return 1 }, nil)
		routes[i] = path
	}
	ng := 2 + rng.Intn(4)
	groups := make([]problem.Group, ng)
	for gi := range groups {
		size := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for j := 0; j < size; j++ {
			n := rng.Intn(nn)
			if !seen[n] {
				seen[n] = true
				groups[gi].Nets = append(groups[gi].Nets, n)
			}
		}
		sortInts(groups[gi].Nets)
	}
	in := &problem.Instance{Name: "small", G: g, Nets: nets, Groups: groups}
	in.RebuildNetGroups()
	return in, routes
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestColgenNoGroups(t *testing.T) {
	nets := []problem.Net{{Terminals: []int{0, 1}}}
	in := pathInstance(2, nets, nil)
	res, err := Solve(in, problem.Routing{{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Z != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestColgenEmptyRouting(t *testing.T) {
	nets := []problem.Net{{Terminals: []int{0}}}
	groups := []problem.Group{{Nets: []int{0}}}
	in := pathInstance(2, nets, groups)
	res, err := Solve(in, problem.Routing{{}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("res = %+v", res)
	}
}

func TestColgenMismatchedRouting(t *testing.T) {
	nets := []problem.Net{{Terminals: []int{0, 1}}}
	in := pathInstance(2, nets, nil)
	if _, err := Solve(in, problem.Routing{}, Options{}); err == nil {
		t.Error("mismatched routing accepted")
	}
}

func TestColgenPatternsGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in, routes := smallRandom(rng)
	res, err := Solve(in, routes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 || res.Patterns < 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestAssignCGProducesLegalSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		in, routes := smallRandom(rng)
		assign, rep, res, err := AssignCG(in, routes, Options{}, tdm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol := &problem.Solution{Routes: routes, Assign: assign}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Converged {
			t.Errorf("trial %d: CG did not converge", trial)
		}
		if float64(rep.GTRMax) < rep.LowerBound-1e-6*math.Max(1, rep.LowerBound) {
			t.Errorf("trial %d: GTR %d below CG bound %g", trial, rep.GTRMax, rep.LowerBound)
		}
	}
}

func TestAssignCGMatchesLRQuality(t *testing.T) {
	// CG and LR solve the same relaxation; after identical legalization
	// and refinement their GTRs should be close on small instances.
	rng := rand.New(rand.NewSource(72))
	var cg, lr int64
	for trial := 0; trial < 6; trial++ {
		in, routes := smallRandom(rng)
		_, repCG, _, err := AssignCG(in, routes, Options{}, tdm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, repLR, err := tdm.Assign(context.Background(), in, routes, tdm.Options{Epsilon: 1e-6, MaxIter: 20000})
		if err != nil {
			t.Fatal(err)
		}
		cg += repCG.GTRMax
		lr += repLR.GTRMax
	}
	diff := cg - lr
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.15*float64(lr)+4 {
		t.Errorf("CG total %d vs LR total %d diverge", cg, lr)
	}
	t.Logf("GTR totals: CG=%d LR=%d", cg, lr)
}

func TestAssignCGNoGroups(t *testing.T) {
	nets := []problem.Net{{Terminals: []int{0, 1}}}
	in := pathInstance(2, nets, nil)
	assign, _, _, err := AssignCG(in, problem.Routing{{0}}, Options{}, tdm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if assign.Ratios[0][0] < 2 {
		t.Errorf("ratio = %d", assign.Ratios[0][0])
	}
}
