// Package colgen implements the column-generation counterpart of the
// paper's LR formulation (Sec. IV-D): the restricted linear master problem
// (RLMP) selects a convex combination of TDM-ratio patterns per edge, its
// optimal duals feed the pricing problem, and pricing — the same
// Cauchy–Schwarz substructure as the LR subproblem (Eq. 10/17) — generates
// improving patterns until none exists.
//
// The paper approaches the assignment with LR because CG pays for the
// simplex solves and suffers from the tailing effect; this package exists to
// cross-validate the LR lower bound: at convergence, the RLMP optimum equals
// the LR dual optimum on the same topology (both solve the same linear
// relaxation). Intended for small instances only.
package colgen

import (
	"context"
	"fmt"
	"math"

	"tdmroute/internal/lp"
	"tdmroute/internal/problem"
	"tdmroute/internal/tdm"
)

// Options tunes the CG loop.
type Options struct {
	// MaxRounds caps master-solve/pricing rounds. Zero selects 200.
	MaxRounds int
	// Tol is the relative master-vs-Lagrangian-bound gap at which the
	// loop declares convergence. Zero selects 1e-6.
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxRounds == 0 {
		o.MaxRounds = 200
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	return o
}

// Result reports the CG outcome.
type Result struct {
	// Z is the optimal objective of the final restricted master: the
	// minimum achievable maximum group TDM ratio under relaxed
	// integrality, equal to the LR bound at optimality.
	Z float64
	// LowerBound is the best Lagrangian bound Σ_e pricingObj_e(σ) seen;
	// at convergence it matches Z.
	LowerBound float64
	// Rounds is the number of master solves performed.
	Rounds int
	// Patterns is the total number of columns generated (including the
	// initial uniform pattern per edge).
	Patterns int
	// Converged reports that the bound gap closed below Tol.
	Converged bool
}

// pattern is one column: the TDM ratios of the nets on one edge, in the
// edge's load order.
type pattern []float64

// Solve runs column generation for the TDM ratio assignment LP on a fixed
// topology.
func Solve(in *problem.Instance, routes problem.Routing, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(routes) != len(in.Nets) {
		return nil, fmt.Errorf("colgen: routing has %d nets, instance has %d", len(routes), len(in.Nets))
	}
	if len(in.Groups) == 0 {
		return &Result{Converged: true}, nil
	}

	loads := problem.EdgeLoads(in.G.NumEdges(), routes)
	// Active edges: those carrying at least one net.
	var edges []int
	for e, ls := range loads {
		if len(ls) > 0 {
			edges = append(edges, e)
		}
	}
	if len(edges) == 0 {
		return &Result{Converged: true}, nil
	}

	res, _, err := cgLoop(in, loads, edges, opt)
	return res, err
}

// cgLoop runs the stabilized column-generation loop and returns the result
// together with the final column set per active edge.
//
// Wentges-smoothed group duals stabilize pricing: master duals at
// degenerate optima alternate between extreme vertices, which would
// generate one-sided columns forever; the smoothed center converges.
func cgLoop(in *problem.Instance, loads [][]problem.EdgeLoad, edges []int, opt Options) (*Result, [][]pattern, error) {
	// Initial columns: the uniform pattern t = |N_e| on every edge.
	cols := make([][]pattern, len(edges))
	total := 0
	for k, e := range edges {
		ls := loads[e]
		p := make(pattern, len(ls))
		for i := range p {
			p[i] = float64(len(ls))
		}
		cols[k] = []pattern{p}
		total++
	}

	res := &Result{}
	var smoothed []float64
	const kappa = 0.5
	for round := 0; round < opt.MaxRounds; round++ {
		sol, err := solveMaster(in, loads, edges, cols)
		if err != nil {
			return nil, nil, err
		}
		res.Z = sol.Obj
		res.Rounds = round + 1

		_, sigma := splitDuals(sol.Duals, len(edges))
		if smoothed == nil {
			smoothed = append([]float64(nil), sigma...)
		} else {
			for gi := range smoothed {
				smoothed[gi] = kappa*smoothed[gi] + (1-kappa)*sigma[gi]
			}
		}

		// Price every edge under the smoothed duals. The sum of pricing
		// optima is a valid Lagrangian bound on the full LP for any
		// dual-feasible σ (the master's σ sums to -1, and so does any
		// convex combination).
		var bound float64
		added := 0
		for k, e := range edges {
			p, objective := price(in, loads[e], smoothed)
			bound += objective
			if !duplicatePattern(cols[k], p) {
				cols[k] = append(cols[k], p)
				added++
				total++
			}
		}
		if bound > res.LowerBound {
			res.LowerBound = bound
		}
		if res.Z-res.LowerBound <= opt.Tol*math.Max(1, res.Z) {
			res.Converged = true
			break
		}
		if added == 0 {
			// Mispricing under smoothed duals: restart smoothing from
			// the raw master duals so progress resumes.
			copy(smoothed, sigma)
		}
	}
	res.Patterns = total
	return res, cols, nil
}

// AssignCG is the column-generation counterpart of tdm.Assign: it solves
// the relaxation by CG, extracts a fractional assignment as the per-edge
// convex combination of the selected patterns (feasible because 1/x is
// convex: Σ_n 1/(Σ_j x_j·t_nj) ≤ Σ_j x_j Σ_n 1/t_nj ≤ 1), and hands it to
// the same legalization + refinement as the LR pipeline. Intended for
// small instances; the LR path is the production one.
func AssignCG(in *problem.Instance, routes problem.Routing, opt Options, topt tdm.Options) (problem.Assignment, tdm.Report, *Result, error) {
	opt = opt.withDefaults()
	if len(routes) != len(in.Nets) {
		return problem.Assignment{}, tdm.Report{}, nil, fmt.Errorf("colgen: routing has %d nets, instance has %d", len(routes), len(in.Nets))
	}

	loads := problem.EdgeLoads(in.G.NumEdges(), routes)
	var edges []int
	for e, ls := range loads {
		if len(ls) > 0 {
			edges = append(edges, e)
		}
	}

	relaxed := make([][]float64, len(routes))
	for n := range routes {
		relaxed[n] = make([]float64, len(routes[n]))
	}

	res := &Result{Converged: true}
	if len(in.Groups) > 0 && len(edges) > 0 {
		r, cols, err := cgLoop(in, loads, edges, opt)
		if err != nil {
			return problem.Assignment{}, tdm.Report{}, nil, err
		}
		res = r

		// Convex combination of patterns per edge. The loop's last master
		// solve may predate the final pricing round's columns, so resolve
		// the master once over the final column set and read x from it.
		final, err := solveMaster(in, loads, edges, cols)
		if err != nil {
			return problem.Assignment{}, tdm.Report{}, nil, err
		}
		res.Z = final.Obj
		offset := 0
		for k, e := range edges {
			ls := loads[e]
			for j := range cols[k] {
				x := final.X[offset+j]
				if x <= 0 {
					continue
				}
				for i, l := range ls {
					relaxed[l.Net][l.Pos] += x * cols[k][j][i]
				}
			}
			offset += len(cols[k])
		}
	} else {
		// No groups or no routed edges: uniform patterns.
		for _, ls := range loads {
			for _, l := range ls {
				relaxed[l.Net][l.Pos] = float64(len(ls))
			}
		}
	}

	// CG is a small-instance research path; it runs to completion, so the
	// legalize+refine tail is not cancellable here.
	assign, rep, err := tdm.Finish(context.Background(), in, routes, relaxed, topt)
	if err != nil {
		return problem.Assignment{}, tdm.Report{}, nil, err
	}
	rep.LowerBound = res.LowerBound
	rep.RelaxedZ = res.Z
	rep.Iterations = res.Rounds
	rep.Converged = res.Converged
	return assign, rep, res, nil
}

// duplicatePattern reports whether p matches an existing column within a
// relative tolerance.
func duplicatePattern(cols []pattern, p pattern) bool {
outer:
	for _, c := range cols {
		for i := range c {
			if math.Abs(c[i]-p[i]) > 1e-9*(1+math.Abs(c[i])) {
				continue outer
			}
		}
		return true
	}
	return false
}

// solveMaster builds and solves the RLMP:
//
//	min z
//	s.t. Σ_j x_ej = 1                      per active edge e
//	     Σ_e Σ_j coef(g,e,j) x_ej - z <= 0 per group g
//	     x >= 0, z >= 0
func solveMaster(in *problem.Instance, loads [][]problem.EdgeLoad, edges []int, cols [][]pattern) (*lp.Solution, error) {
	numX := 0
	for _, cs := range cols {
		numX += len(cs)
	}
	numVars := numX + 1 // + z
	zCol := numX

	// Column offsets per edge.
	offset := make([]int, len(edges))
	{
		o := 0
		for k := range cols {
			offset[k] = o
			o += len(cols[k])
		}
	}

	p := &lp.Problem{NumVars: numVars, C: make([]float64, numVars)}
	p.C[zCol] = 1

	// Convexity rows.
	for k := range edges {
		coeffs := make([]float64, numVars)
		for j := range cols[k] {
			coeffs[offset[k]+j] = 1
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: coeffs, Rel: lp.EQ, RHS: 1})
	}
	// Group rows.
	for gi := range in.Groups {
		coeffs := make([]float64, numVars)
		coeffs[zCol] = -1
		for k, e := range edges {
			ls := loads[e]
			for j, pat := range cols[k] {
				var coef float64
				for i, l := range ls {
					if netInGroup(in, l.Net, gi) {
						coef += pat[i]
					}
				}
				if coef != 0 {
					coeffs[offset[k]+j] = coef
				}
			}
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: coeffs, Rel: lp.LE, RHS: 0})
	}

	sol, err := lp.Solve(p)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("colgen: master LP %v", sol.Status)
	}
	return sol, nil
}

// splitDuals separates the master duals into the convexity duals μ (one per
// active edge) and the group duals σ (one per group, <= 0).
func splitDuals(duals []float64, numEdges int) (mu, sigma []float64) {
	return duals[:numEdges], duals[numEdges:]
}

// price solves the pricing problem of one edge (Eq. 17): minimize
// Σ_n π_n t_n with Σ 1/t_n = 1, where π_n = Σ_{g ∋ n} |σ_g|. The optimum is
// the Cauchy–Schwarz pattern t_n = (Σ √π) / √π_n. Nets with π_n = 0 take a
// harmless large ratio. It returns the pattern and its objective value
// Σ_n π_n t_n.
func price(in *problem.Instance, ls []problem.EdgeLoad, sigma []float64) (pattern, float64) {
	const floor = 1e-12
	pi := make([]float64, len(ls))      // floored, for the pattern
	piExact := make([]float64, len(ls)) // exact, for the objective
	var s float64
	for i, l := range ls {
		var p float64
		for _, gi := range in.Nets[l.Net].Groups {
			p += math.Abs(sigma[gi])
		}
		piExact[i] = p
		if p < floor {
			p = floor
		}
		pi[i] = p
		s += math.Sqrt(p)
	}
	p := make(pattern, len(ls))
	var obj float64
	for i := range ls {
		p[i] = s / math.Sqrt(pi[i])
		obj += piExact[i] * p[i]
	}
	return p, obj
}

func netInGroup(in *problem.Instance, n, gi int) bool {
	for _, g := range in.Nets[n].Groups {
		if g == gi {
			return true
		}
	}
	return false
}
