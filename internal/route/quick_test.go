package route

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"tdmroute/internal/problem"
)

// Property tests: any generated connected instance must route to a valid
// topology under every option combination, and the router must never
// leave inconsistent edge usage behind a revert.

func TestQuickRouteAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(4+rng.Intn(10), rng.Intn(12), 5+rng.Intn(40), rng.Intn(20), seed)
		opt := Options{
			RipUpRounds:    []int{-1, 0, 2}[rng.Intn(3)],
			Order:          NetOrder(rng.Intn(3)),
			InitialSteiner: SteinerAlg(rng.Intn(2)),
			RerouteSteiner: SteinerAlg(rng.Intn(2)),
			KeepWorse:      rng.Intn(2) == 0,
		}
		routes, _, err := Route(context.Background(), in, opt)
		if err != nil {
			return false
		}
		return problem.ValidateRouting(in, routes) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickRipUpUsageConsistent(t *testing.T) {
	// After routing with rip-up (including reverts), recomputing edge
	// usage from the routes must match what an incremental count yields:
	// i.e. ψ/φ computed post-hoc equals maxPhi's recomputation. We check
	// the weaker but sufficient invariant that every edge's usage derived
	// from final routes is consistent with the route sets (no negative or
	// phantom usage is observable through a second full routing pass).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(5+rng.Intn(8), rng.Intn(10), 10+rng.Intn(40), 2+rng.Intn(15), seed)
		r := newRouter(in, Options{})
		if err := r.initialRoute(context.Background()); err != nil {
			return false
		}
		for round := 0; round < 3; round++ {
			if _, err := r.ripUpWorstGroup(context.Background(), rng.Intn(2) == 0); err != nil {
				return false
			}
			// usage must equal the recount at every point.
			recount := make([]uint32, in.G.NumEdges())
			for _, edges := range r.routes {
				for _, e := range edges {
					recount[e]++
				}
			}
			for e := range recount {
				if recount[e] != r.usage[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickRerouteNetsPreservesOthers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(5+rng.Intn(8), rng.Intn(10), 10+rng.Intn(30), 2+rng.Intn(10), seed)
		routes, _, err := Route(context.Background(), in, Options{})
		if err != nil {
			return false
		}
		before := routes.Clone()
		nets := []int{0, len(in.Nets) / 2}
		if err := RerouteNets(context.Background(), in, routes, nets, Options{}); err != nil {
			return false
		}
		// Untouched nets keep their routes verbatim.
		touched := map[int]bool{}
		for _, n := range nets {
			touched[n] = true
		}
		for n := range routes {
			if touched[n] {
				continue
			}
			if len(routes[n]) != len(before[n]) {
				return false
			}
			for k := range routes[n] {
				if routes[n][k] != before[n][k] {
					return false
				}
			}
		}
		return problem.ValidateRouting(in, routes) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
