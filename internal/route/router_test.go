package route

import (
	"context"
	"math/rand"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// ring returns an n-cycle FPGA graph.
func ring(n int) *graph.Graph {
	g := graph.New(n, n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func randomInstance(nv, extraEdges, nn, ng int, seed int64) *problem.Instance {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(nv, nv-1+extraEdges)
	perm := rng.Perm(nv)
	for i := 1; i < nv; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for k := 0; k < extraEdges; k++ {
		u, v := rng.Intn(nv), rng.Intn(nv)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	in := &problem.Instance{Name: "rand", G: g, Nets: make([]problem.Net, nn), Groups: make([]problem.Group, ng)}
	for i := 0; i < nn; i++ {
		k := 2
		if rng.Intn(4) == 0 {
			k = 2 + rng.Intn(4)
		}
		if k > nv {
			k = nv
		}
		in.Nets[i].Terminals = rng.Perm(nv)[:k]
	}
	for gi := 0; gi < ng; gi++ {
		m := 1 + rng.Intn(5)
		seen := map[int]bool{}
		for j := 0; j < m; j++ {
			n := rng.Intn(nn)
			if !seen[n] {
				seen[n] = true
				in.Groups[gi].Nets = append(in.Groups[gi].Nets, n)
			}
		}
		sortInts(in.Groups[gi].Nets)
	}
	in.RebuildNetGroups()
	return in
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestRouteTwoPinShortestPath(t *testing.T) {
	// Line graph: the only route from 0 to 3 is edges 0,1,2.
	g := graph.New(4, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	in := &problem.Instance{
		G:      g,
		Nets:   []problem.Net{{Terminals: []int{0, 3}}},
		Groups: []problem.Group{{Nets: []int{0}}},
	}
	in.RebuildNetGroups()
	routes, stats, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateRouting(in, routes); err != nil {
		t.Fatal(err)
	}
	if len(routes[0]) != 3 {
		t.Errorf("route = %v, want 3 edges", routes[0])
	}
	if stats.RoutedNets != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRouteIntraFPGANetEmpty(t *testing.T) {
	g := ring(4)
	in := &problem.Instance{
		G:    g,
		Nets: []problem.Net{{Terminals: []int{2}}},
	}
	in.RebuildNetGroups()
	routes, _, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes[0]) != 0 {
		t.Errorf("intra-FPGA net routed: %v", routes[0])
	}
}

func TestRouteCongestionSpreadsOnRing(t *testing.T) {
	// 4-cycle, many identical 2-pin nets between opposite corners 0 and 2.
	// Both routes (via 1 or via 3) have 2 hops; congestion-aware routing
	// must split the nets across the two sides rather than stack them all
	// on one.
	in := &problem.Instance{
		G:    ring(4),
		Nets: make([]problem.Net, 8),
	}
	for i := range in.Nets {
		in.Nets[i].Terminals = []int{0, 2}
	}
	in.RebuildNetGroups()
	routes, _, err := Route(context.Background(), in, Options{RipUpRounds: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateRouting(in, routes); err != nil {
		t.Fatal(err)
	}
	usage := make([]int, in.G.NumEdges())
	for _, edges := range routes {
		for _, e := range edges {
			usage[e]++
		}
	}
	// Edges 0:(0,1) 1:(1,2) pair up on one side; 2:(2,3) 3:(3,0) the other.
	side1, side2 := usage[0], usage[3]
	if side1 != 4 || side2 != 4 {
		t.Errorf("unbalanced split: usage=%v", usage)
	}
}

func TestRouteMultiPinSteiner(t *testing.T) {
	// Star-friendly graph: center 0 connected to 1,2,3. A net on {1,2,3}
	// must form a 3-edge Steiner tree through 0.
	g := graph.New(4, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	in := &problem.Instance{
		G:    g,
		Nets: []problem.Net{{Terminals: []int{1, 2, 3}}},
	}
	in.RebuildNetGroups()
	routes, _, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes[0]) != 3 {
		t.Errorf("Steiner tree = %v, want all 3 spokes", routes[0])
	}
	if err := problem.ValidateRouting(in, routes); err != nil {
		t.Fatal(err)
	}
}

func TestRouteDisconnectedTerminalsError(t *testing.T) {
	g := graph.New(4, 1)
	g.AddEdge(0, 1)
	in := &problem.Instance{
		G:    g,
		Nets: []problem.Net{{Terminals: []int{0, 3}}},
	}
	in.RebuildNetGroups()
	if _, _, err := Route(context.Background(), in, Options{}); err == nil {
		t.Error("expected error for disconnected terminals")
	}
}

func TestRouteRandomAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := randomInstance(12, 10, 60, 25, seed)
		routes, _, err := Route(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := problem.ValidateRouting(in, routes); err != nil {
			t.Fatalf("seed %d: invalid routing: %v", seed, err)
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	in := randomInstance(10, 8, 40, 15, 3)
	a, _, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := range a {
		if len(a[n]) != len(b[n]) {
			t.Fatalf("net %d differs between runs", n)
		}
		for k := range a[n] {
			if a[n][k] != b[n][k] {
				t.Fatalf("net %d edge %d differs between runs", n, k)
			}
		}
	}
}

func TestRipUpNeverWorsensEstimate(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := randomInstance(10, 6, 50, 20, seed+100)
		noRip, _, err := Route(context.Background(), in, Options{RipUpRounds: -1})
		if err != nil {
			t.Fatal(err)
		}
		withRip, _, err := Route(context.Background(), in, Options{RipUpRounds: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := maxPhi(in, withRip), maxPhi(in, noRip); got > want {
			t.Errorf("seed %d: rip-up worsened max φ: %d > %d", seed, got, want)
		}
	}
}

func TestRipUpRoundsStats(t *testing.T) {
	in := randomInstance(10, 6, 50, 20, 7)
	_, stats, err := Route(context.Background(), in, Options{RipUpRounds: 3, KeepWorse: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RipUpRounds != 3 {
		t.Errorf("rounds = %d, want 3", stats.RipUpRounds)
	}
	if stats.RippedNets == 0 {
		t.Error("no nets ripped in 3 forced rounds")
	}
}

// maxPhi recomputes the Eq. (2) estimate for a finished routing.
func maxPhi(in *problem.Instance, routes problem.Routing) int64 {
	usage := make([]int64, in.G.NumEdges())
	for _, edges := range routes {
		for _, e := range edges {
			usage[e]++
		}
	}
	psi := make([]int64, len(in.Nets))
	for n, edges := range routes {
		for _, e := range edges {
			psi[n] += usage[e]
		}
	}
	var best int64
	for gi := range in.Groups {
		var sum int64
		for _, n := range in.Groups[gi].Nets {
			sum += psi[n]
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

func TestThetaOrderingRoutesCriticalLast(t *testing.T) {
	// Two 2-pin nets 0->2 on a 4-ring. Net 1 is in a heavy group (large
	// θ), net 0 in a light group. Net 0 must be routed first, so when net
	// 1 routes it sees net 0's usage and takes the other side.
	in := &problem.Instance{
		G: ring(4),
		Nets: []problem.Net{
			{Terminals: []int{0, 2}},
			{Terminals: []int{0, 2}},
		},
		Groups: []problem.Group{
			{Nets: []int{0}},
			{Nets: []int{0, 1}}, // heavier: contains both nets
		},
	}
	in.RebuildNetGroups()
	routes, _, err := Route(context.Background(), in, Options{RipUpRounds: -1})
	if err != nil {
		t.Fatal(err)
	}
	shared := map[int]bool{}
	for _, e := range routes[0] {
		shared[e] = true
	}
	for _, e := range routes[1] {
		if shared[e] {
			t.Errorf("nets share edge %d despite free alternative", e)
		}
	}
}

func BenchmarkRouteMedium(b *testing.B) {
	in := randomInstance(40, 60, 2000, 800, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Route(context.Background(), in, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
