// Session: the reusable incremental core of the router. The FPGA graph is
// static across the whole co-optimization flow, so everything derived from
// it alone — the APSP distance LUT, the per-net terminal MSTs, the
// per-worker solver scratch — is computed once per session and shared by
// the initial routing, every rip-up round, and every feedback-loop reroute.
// The cold entry points (Route, RerouteNets) are thin wrappers that spin up
// a throwaway session, and the session-reused results are byte-identical to
// them by construction: the same code runs against the same state, only its
// lifetime differs.
package route

import (
	"context"
	"fmt"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// Session owns the routing state of one instance across an iterated solve:
// the APSP LUT (built exactly once), the memoized terminal MSTs, the
// per-worker search engines with their epoch-reset buffers, and the current
// routing with its per-edge usage. A Session is not safe for concurrent
// use.
type Session struct {
	r      *router
	routed bool

	// Undo state of the last successful Reroute.
	undoNets  []int
	undoSaved [][]int

	// bias is the phantom congestion added per edge by AddEdgeBias (ECO
	// edge-capacity edits), folded into the router's usage. Tracked so the
	// non-negativity invariant can be enforced: usage must never drop below
	// the load of the real nets, or rip-up decrements would underflow.
	bias []int64
}

// NewSession creates a session for in. The APSP LUT is built here — once —
// and reused by every subsequent call on the session.
func NewSession(in *problem.Instance, opt Options) *Session {
	return &Session{r: newRouter(in, opt)}
}

// NewSessionFromRouting creates a session seeded with an existing topology
// (for example one produced by a previous solve) instead of routing from
// scratch. The routing is copied into the session; the caller's slice is
// not retained.
func NewSessionFromRouting(in *problem.Instance, routes problem.Routing, opt Options) (*Session, error) {
	if len(routes) != len(in.Nets) {
		return nil, fmt.Errorf("route: routing has %d nets, instance has %d", len(routes), len(in.Nets))
	}
	s := &Session{r: newRouter(in, opt), routed: true}
	for n, edges := range routes {
		s.r.routes[n] = edges
		for _, e := range edges {
			s.r.usage[e]++
		}
	}
	return s, nil
}

// Route computes the initial topology and runs the rip-up refinement. It
// may be called at most once per session; sessions seeded from an existing
// routing are already routed.
//
// Cancellation semantics: the context is checked at deterministic
// boundaries only — per net in the sequential embed loop, per wave in the
// parallel path, and per rip-up round (including per member net inside a
// round, which then reverts the partial round). If ctx is cancelled before
// the initial routing completes there is no legal topology and Route
// returns the cancellation error; once the initial routing exists, a
// cancellation merely curtails the rip-up refinement and the current legal
// topology is returned with a nil error (the caller observes ctx.Err() to
// know the refinement was cut short).
func (s *Session) Route(ctx context.Context) (problem.Routing, Stats, error) {
	if s.routed {
		return nil, Stats{}, fmt.Errorf("route: session already routed")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.routed = true
	r := s.r
	if err := r.initialRoute(ctx); err != nil {
		return nil, Stats{}, err
	}
	rounds := r.opt.ripUpRounds()
	for round := 0; round < rounds; round++ {
		if ctx.Err() != nil {
			break // degrade: keep the current legal topology
		}
		improved, err := r.ripUpWorstGroup(ctx, r.opt.KeepWorse)
		if err != nil {
			return nil, Stats{}, err
		}
		r.stats.RipUpRounds++
		if !improved && !r.opt.KeepWorse {
			break // converged: the worst group cannot be improved
		}
	}
	// Feedback-loop reroutes don't rip by φ(g), so drop the incidence
	// index rather than maintain it.
	r.cong = nil
	return r.routes, r.stats, nil
}

// Reroute rips the given nets out of the session's topology and reroutes
// them sequentially against the remaining global congestion (edge cost =
// nets currently routed on the edge), exactly as the cold RerouteNets does.
// Duplicate entries in nets are ignored after the first occurrence. On any
// error — including cancellation, checked before each net — the session's
// topology is rolled back to its pre-call state.
//
// A successful Reroute records undo state: UndoReroute restores the
// previous routes, which is how a rejected feedback round is discarded
// without cloning the full routing.
func (s *Session) Reroute(ctx context.Context, nets []int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	r := s.r
	// Dedupe while preserving first-occurrence order: ripping the same net
	// twice would decrement (and underflow) the usage of its edges twice.
	seen := make(map[int]bool, len(nets))
	dedup := make([]int, 0, len(nets))
	for _, n := range nets {
		if n < 0 || n >= len(r.routes) {
			return fmt.Errorf("route: net index %d out of range [0, %d)", n, len(r.routes))
		}
		if !seen[n] {
			seen[n] = true
			dedup = append(dedup, n)
		}
	}

	saved := make([][]int, len(dedup))
	for i, n := range dedup {
		saved[i] = r.routes[n]
	}
	for _, n := range dedup {
		for _, e := range r.routes[n] {
			r.usage[e]--
		}
		r.routes[n] = nil
	}
	for _, n := range dedup {
		if err := ctx.Err(); err != nil {
			r.revertGroup(dedup, saved)
			return fmt.Errorf("route: reroute interrupted: %w", err)
		}
		var mst []graph.WeightedEdge
		if r.opt.RerouteSteiner != SteinerMehlhorn {
			var err error
			mst, err = r.terminalMST(n)
			if err != nil {
				r.revertGroup(dedup, saved)
				return err
			}
		}
		if err := r.embed(n, r.opt.RerouteSteiner, mst, r.usage); err != nil {
			r.revertGroup(dedup, saved)
			return err
		}
	}
	s.undoNets, s.undoSaved = dedup, saved
	return nil
}

// Grow extends the session's per-net state to cover nets appended to the
// instance's netlist since the session was created (ECO net additions). The
// appended nets start unrouted; route them with Reroute. Per-edge state is
// untouched: the FPGA graph is immutable for the life of a session, so the
// APSP LUT and usage array stay valid. Growing also invalidates nothing —
// the memoized MSTs of existing nets are pure functions of their (unchanged)
// terminal lists.
func (s *Session) Grow() {
	r := s.r
	n := len(r.in.Nets)
	for len(r.routes) < n {
		r.routes = append(r.routes, nil)
		r.mstCost = append(r.mstCost, 0)
		r.mst = append(r.mst, nil)
		r.mstDone = append(r.mstDone, false)
	}
}

// Remove permanently rips the given nets out of the session's topology (ECO
// net removals): their usage contributions are released and their routes
// cleared. Unlike Reroute there is no undo — the caller is deleting the
// nets, and the instance entries are expected to be tombstoned alongside.
// Duplicate entries are ignored after the first occurrence; ripping an
// already-unrouted net is a no-op.
func (s *Session) Remove(nets []int) error {
	r := s.r
	seen := make(map[int]bool, len(nets))
	for _, n := range nets {
		if n < 0 || n >= len(r.routes) {
			return fmt.Errorf("route: net index %d out of range [0, %d)", n, len(r.routes))
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, e := range r.routes[n] {
			r.usage[e]--
		}
		r.routes[n] = nil
	}
	return nil
}

// MaxEdgeBias bounds the cumulative phantom load AddEdgeBias may pile onto
// one edge. Usage is a uint32 shared with real net loads; the cap keeps the
// sum comfortably inside the counter on any realistic instance.
const MaxEdgeBias = 1 << 20

// AddEdgeBias adds delta phantom nets of congestion to an edge — the ECO
// model of an edge capacity change. Positive bias makes the edge look
// busier, steering subsequent reroutes away from it; a negative delta
// withdraws bias added earlier. The cumulative bias of an edge can never go
// negative (usage must keep covering the real nets) nor exceed MaxEdgeBias;
// a violating delta is rejected without changing anything.
func (s *Session) AddEdgeBias(edge, delta int) error {
	r := s.r
	if edge < 0 || edge >= len(r.usage) {
		return fmt.Errorf("route: edge index %d out of range [0, %d)", edge, len(r.usage))
	}
	if s.bias == nil {
		s.bias = make([]int64, len(r.usage))
	}
	nb := s.bias[edge] + int64(delta)
	if nb < 0 {
		return fmt.Errorf("route: edge %d cumulative bias would become negative (%d)", edge, nb)
	}
	if nb > MaxEdgeBias {
		return fmt.Errorf("route: edge %d cumulative bias %d exceeds the maximum %d", edge, nb, MaxEdgeBias)
	}
	s.bias[edge] = nb
	r.usage[edge] = uint32(problem.SatAdd64(int64(r.usage[edge]), int64(delta)))
	return nil
}

// EdgeBias returns the cumulative phantom load applied to an edge so far.
func (s *Session) EdgeBias(edge int) int64 {
	if s.bias == nil || edge < 0 || edge >= len(s.bias) {
		return 0
	}
	return s.bias[edge]
}

// UndoReroute restores the routes replaced by the last successful Reroute.
// It is a no-op if there is nothing to undo.
func (s *Session) UndoReroute() {
	if s.undoNets == nil {
		return
	}
	s.r.revertGroup(s.undoNets, s.undoSaved)
	s.undoNets, s.undoSaved = nil, nil
}

// Routes returns a snapshot of the session's current topology. The header
// array is copied, so later Reroute calls do not disturb it; the per-net
// edge slices are shared but immutable once created (every reroute installs
// a freshly built tree).
func (s *Session) Routes() problem.Routing {
	return append(problem.Routing(nil), s.r.routes...)
}

// RoutesAlias returns the session's live routing without copying. The
// caller must not modify it and must not hold it across a Reroute; it
// exists for validation passes that would otherwise copy per round.
func (s *Session) RoutesAlias() problem.Routing { return s.r.routes }

// Stats returns the router statistics accumulated so far.
func (s *Session) Stats() Stats { return s.r.stats }

// Route computes a routing topology for in. The returned routing satisfies
// problem.ValidateRouting for every connected instance. It is the cold
// entry point, equivalent to NewSession(in, opt).Route(ctx); see
// Session.Route for the cancellation semantics.
func Route(ctx context.Context, in *problem.Instance, opt Options) (problem.Routing, Stats, error) {
	return NewSession(in, opt).Route(ctx)
}

// RerouteNets rips the given nets out of an existing topology and reroutes
// them sequentially against the remaining global congestion. routes is
// modified in place. It is the cold building block of the iterated
// co-optimization extension, where the group realizing GTR_max — known only
// after TDM assignment — is rerouted; the iterated solver itself reuses one
// Session instead. Duplicate entries in nets are ignored after the first
// occurrence.
//
// The context is checked before each net's reroute; on cancellation,
// RerouteNets returns the cancellation error and routes is left unmodified.
func RerouteNets(ctx context.Context, in *problem.Instance, routes problem.Routing, nets []int, opt Options) error {
	s, err := NewSessionFromRouting(in, routes, opt)
	if err != nil {
		return err
	}
	if err := s.Reroute(ctx, nets); err != nil {
		return err
	}
	for _, n := range s.undoNets {
		routes[n] = s.r.routes[n]
	}
	return nil
}
