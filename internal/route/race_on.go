//go:build race

package route

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
