// Wave-parallel routing: the θ-ordered net sequence is split into fixed
// waves; every net of a wave is embedded concurrently against a frozen
// usage snapshot by per-worker solvers, then the wave's trees are merged
// into the shared usage in wave order. This is the speculative batch
// routing of the parallel-router literature (ParaLarH, and the batched
// net-parallelism of the open-source FPGA routers): nets within one wave do
// not see each other's congestion, which trades a bounded amount of
// congestion feedback for near-linear scaling, while the deterministic wave
// partition and merge order keep the result reproducible for a fixed
// worker count.
package route

import (
	"context"
	"fmt"

	"tdmroute/internal/graph"
	"tdmroute/internal/par"
)

// waveFactor sizes routing waves at waveFactor nets per worker: larger
// waves amortize the per-wave fork-join barrier, smaller waves tighten the
// congestion feedback between nets.
const waveFactor = 4

// buildMSTs fills the r.mst memo table and r.mstCost for every net. Each
// net's terminal MST depends only on the immutable APSP LUT, so nets fan out
// across workers; per-index writes keep the result identical to the
// sequential pass for every worker count. On error, the first error of the
// lowest chunk is returned (the same net-order-first error as the sequential
// pass when Workers <= 1). The stage is all-or-nothing under cancellation: a
// cancelled context aborts it and the partial MST table is discarded with
// the returned error.
func (r *router) buildMSTs(ctx context.Context) error {
	n := len(r.in.Nets)
	workers := r.opt.workers()
	errs := make([]error, par.NumChunks(n, workers))
	if err := par.ForCtx(ctx, n, workers, func(chunk, start, end int) {
		var sc mstScratch // private: the shared r.msc would race across chunks
		for i := start; i < end; i++ {
			mst, err := r.terminalMSTScratch(i, &sc)
			if err != nil {
				errs[chunk] = err
				return
			}
			r.mstCost[i] = graph.MSTCost(mst)
		}
	}); err != nil {
		return fmt.Errorf("route: terminal MSTs interrupted: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// routeWaves embeds the ordered nets in waves of workers*waveFactor.
// During a wave no shared state is mutated: workers read the usage array as
// a frozen snapshot and write only their private scratch and their own
// tree/error slots. The merge then commits the wave's trees in wave order.
// The context is checked only between waves — a deterministic boundary —
// so a fixed cancellation point yields the same partial progress for a
// fixed worker count; a cancellation mid-initial-routing is an error (no
// legal topology exists yet).
func (r *router) routeWaves(ctx context.Context, order []int) error {
	workers := r.opt.workers()
	if r.ws == nil {
		r.ws = make([]*netWorker, workers)
		r.ws[0] = r.w0
		//lint:ignore ctxflow one-time O(workers) scratch cloning, not solver iteration; the wave loop below checks ctx.Err() every wave
		for i := 1; i < workers; i++ {
			r.ws[i] = r.w0.clone()
		}
	}
	ws, msts := r.ws, r.mst

	waveSize := workers * waveFactor
	trees := make([][]int, waveSize)
	errs := make([]error, workers)
	for start := 0; start < len(order); start += waveSize {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("route: initial routing interrupted: %w", err)
		}
		end := start + waveSize
		if end > len(order) {
			end = len(order)
		}
		wave := order[start:end]
		par.ForMin(len(wave), workers, 1, func(chunk, s, e int) {
			w := ws[chunk]
			for i := s; i < e; i++ {
				n := wave[i]
				tree, err := r.computeTree(w, n, r.opt.InitialSteiner, msts[n], r.usage)
				if err != nil {
					errs[chunk] = err
					return
				}
				trees[i] = tree
			}
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		for i, n := range wave {
			r.commit(n, trees[i])
			r.stats.RoutedNets++
			trees[i] = nil
		}
	}
	return nil
}
