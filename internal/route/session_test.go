package route

import (
	"context"
	"math/rand"
	"testing"

	"tdmroute/internal/problem"
)

// equalRouting compares two routings edge-for-edge.
func equalRouting(a, b problem.Routing) bool {
	if len(a) != len(b) {
		return false
	}
	for n := range a {
		if len(a[n]) != len(b[n]) {
			return false
		}
		for i := range a[n] {
			if a[n][i] != b[n][i] {
				return false
			}
		}
	}
	return true
}

// TestCongIndexMatchesRescan drives rip-up rounds on random instances while
// cross-checking the incremental φ against a full phiAll rescan after every
// round — covering both the accept (flush) and revert (unflush) paths.
func TestCongIndexMatchesRescan(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := randomInstance(12, 10, 80, 30, seed+500)
		r := newRouter(in, Options{})
		if err := r.initialRoute(context.Background()); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 8; round++ {
			improved, err := r.ripUpWorstGroup(context.Background(), false)
			if err != nil {
				t.Fatal(err)
			}
			want := r.phiAll()
			got := r.cong.phi
			if len(got) != len(want) {
				t.Fatalf("seed %d round %d: phi len %d want %d", seed, round, len(got), len(want))
			}
			for gi := range want {
				if got[gi] != want[gi] {
					t.Fatalf("seed %d round %d: phi[%d]=%d, rescan=%d (improved=%v)",
						seed, round, gi, got[gi], want[gi], improved)
				}
			}
			// ψ must match a direct rescan too.
			for n := range in.Nets {
				if r.cong.psi[n] != r.psi(n) {
					t.Fatalf("seed %d round %d: psi[%d]=%d, rescan=%d", seed, round, n, r.cong.psi[n], r.psi(n))
				}
			}
			if !improved {
				break
			}
		}
	}
}

// TestSessionRouteMatchesColdRoute pins the wrapper equivalence: the
// package-level Route and a fresh Session produce identical topologies.
func TestSessionRouteMatchesColdRoute(t *testing.T) {
	for _, workers := range []int{1, 4} {
		in := randomInstance(12, 10, 80, 30, 42)
		cold, coldStats, err := Route(context.Background(), in, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s := NewSession(in, Options{Workers: workers})
		warm, warmStats, err := s.Route(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !equalRouting(cold, warm) {
			t.Fatalf("workers=%d: session routing differs from cold Route", workers)
		}
		if coldStats != warmStats {
			t.Fatalf("workers=%d: stats %+v vs %+v", workers, warmStats, coldStats)
		}
		if _, _, err := s.Route(context.Background()); err == nil {
			t.Fatal("second Route on a session must fail")
		}
	}
}

// TestSessionRerouteMatchesColdRerouteNets reroutes the same net sets
// through the cold RerouteNets wrapper and through one reused Session,
// checking the topologies stay identical after every step. This is the
// session-reuse half of the byte-identity invariant: memoized MSTs and
// reused search engines must not change a single edge choice.
func TestSessionRerouteMatchesColdRerouteNets(t *testing.T) {
	in := randomInstance(12, 10, 80, 30, 77)
	base, _, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}

	coldRoutes := append(problem.Routing(nil), base...)
	s, err := NewSessionFromRouting(in, base, Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 10; step++ {
		gi := rng.Intn(len(in.Groups))
		nets := in.Groups[gi].Nets
		if err := RerouteNets(context.Background(), in, coldRoutes, nets, Options{}); err != nil {
			t.Fatal(err)
		}
		if err := s.Reroute(context.Background(), nets); err != nil {
			t.Fatal(err)
		}
		if !equalRouting(coldRoutes, s.Routes()) {
			t.Fatalf("step %d: session reroute diverged from cold RerouteNets", step)
		}
	}
}

// TestSessionUndoReroute checks that UndoReroute restores both the routes
// and the usage-derived behavior exactly: rerouting after an undo behaves
// as if the undone reroute never happened.
func TestSessionUndoReroute(t *testing.T) {
	in := randomInstance(10, 8, 60, 20, 5)
	base, _, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSessionFromRouting(in, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Routes()
	usageBefore := append([]uint32(nil), s.r.usage...)

	nets := in.Groups[0].Nets
	if err := s.Reroute(context.Background(), nets); err != nil {
		t.Fatal(err)
	}
	s.UndoReroute()

	if !equalRouting(before, s.Routes()) {
		t.Fatal("UndoReroute did not restore the topology")
	}
	for e, u := range s.r.usage {
		if u != usageBefore[e] {
			t.Fatalf("UndoReroute left usage[%d]=%d, want %d", e, u, usageBefore[e])
		}
	}
	// A second undo must be a no-op.
	s.UndoReroute()
	if !equalRouting(before, s.Routes()) {
		t.Fatal("double UndoReroute corrupted the topology")
	}
}

// TestSessionRerouteRollbackOnCancel checks the in-place Reroute leaves the
// session consistent when cancelled mid-call.
func TestSessionRerouteRollbackOnCancel(t *testing.T) {
	in := randomInstance(10, 8, 60, 20, 6)
	base, _, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSessionFromRouting(in, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Routes()
	usageBefore := append([]uint32(nil), s.r.usage...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nets := in.Groups[0].Nets
	if err := s.Reroute(ctx, nets); err == nil {
		t.Fatal("cancelled Reroute must return an error")
	}
	if !equalRouting(before, s.Routes()) {
		t.Fatal("cancelled Reroute did not roll back the topology")
	}
	for e, u := range s.r.usage {
		if u != usageBefore[e] {
			t.Fatalf("cancelled Reroute left usage[%d]=%d, want %d", e, u, usageBefore[e])
		}
	}
	// The session must remain usable.
	if err := s.Reroute(context.Background(), nets); err != nil {
		t.Fatalf("session unusable after rollback: %v", err)
	}
}
