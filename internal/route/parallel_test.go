package route

import (
	"context"
	"fmt"
	"testing"

	"tdmroute/internal/problem"
)

// routesEqual reports whether two routings are byte-identical.
func routesEqual(a, b problem.Routing) bool {
	if len(a) != len(b) {
		return false
	}
	for n := range a {
		if len(a[n]) != len(b[n]) {
			return false
		}
		for k := range a[n] {
			if a[n][k] != b[n][k] {
				return false
			}
		}
	}
	return true
}

// TestRouteWorkers1IdenticalToSequential asserts the Workers=1 configuration
// is byte-identical to the historical sequential router (Workers unset).
func TestRouteWorkers1IdenticalToSequential(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := randomInstance(14, 12, 300, 60, 500+seed)
		seq, seqStats, err := Route(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		one, oneStats, err := Route(context.Background(), in, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !routesEqual(seq, one) {
			t.Fatalf("seed %d: Workers=1 differs from sequential", seed)
		}
		if seqStats != oneStats {
			t.Fatalf("seed %d: stats differ: %+v vs %+v", seed, seqStats, oneStats)
		}
	}
}

// TestRouteParallelValidAndDeterministic exercises the wave-parallel router
// across worker counts and Steiner constructions: every result must be a
// valid routing, and repeated runs with the same worker count must be
// byte-identical (the wave-determinism contract).
func TestRouteParallelValidAndDeterministic(t *testing.T) {
	for _, alg := range []SteinerAlg{SteinerKMB, SteinerMehlhorn} {
		for _, workers := range []int{2, 3, 8} {
			t.Run(fmt.Sprintf("alg=%d/workers=%d", alg, workers), func(t *testing.T) {
				for seed := int64(0); seed < 3; seed++ {
					in := randomInstance(14, 12, 400, 80, 600+seed)
					opt := Options{Workers: workers, InitialSteiner: alg}
					a, _, err := Route(context.Background(), in, opt)
					if err != nil {
						t.Fatal(err)
					}
					if err := problem.ValidateRouting(in, a); err != nil {
						t.Fatalf("seed %d: invalid: %v", seed, err)
					}
					b, _, err := Route(context.Background(), in, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !routesEqual(a, b) {
						t.Fatalf("seed %d: same worker count differs across runs", seed)
					}
				}
			})
		}
	}
}

// TestRouteParallelRace is the race-detector workload of the CI `-race`
// job: a large wave-parallel run with rip-up rounds on top.
func TestRouteParallelRace(t *testing.T) {
	in := randomInstance(20, 25, 1500, 300, 77)
	routes, _, err := Route(context.Background(), in, Options{Workers: 8, RipUpRounds: 3, KeepWorse: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateRouting(in, routes); err != nil {
		t.Fatal(err)
	}
}

// TestRouteParallelQualityClose asserts the speculative wave routing does
// not collapse quality: the parallel max-φ estimate must stay within 2x of
// the sequential one summed over seeds (both are congestion-aware; the
// waves only lose intra-wave feedback).
func TestRouteParallelQualityClose(t *testing.T) {
	var seqTotal, parTotal int64
	for seed := int64(0); seed < 4; seed++ {
		in := randomInstance(14, 12, 400, 80, 700+seed)
		seq, _, err := Route(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pr, _, err := Route(context.Background(), in, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		seqTotal += maxPhi(in, seq)
		parTotal += maxPhi(in, pr)
	}
	if parTotal > 2*seqTotal {
		t.Errorf("parallel quality collapsed: max-φ %d vs sequential %d", parTotal, seqTotal)
	}
	t.Logf("max-φ totals: sequential=%d workers=4 %d", seqTotal, parTotal)
}

// TestRerouteNetsDuplicatesIgnored is the regression test for the usage
// underflow: passing the same net index twice must behave exactly like
// passing it once (formerly the double rip decremented — and wrapped — the
// uint32 usage of the net's edges, poisoning the congestion costs).
func TestRerouteNetsDuplicatesIgnored(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		in := randomInstance(12, 10, 60, 25, 800+seed)
		base, _, err := Route(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		withDup := base.Clone()
		if err := RerouteNets(context.Background(), in, withDup, []int{1, 5, 1, 9, 5, 1}, Options{}); err != nil {
			t.Fatal(err)
		}
		deduped := base.Clone()
		if err := RerouteNets(context.Background(), in, deduped, []int{1, 5, 9}, Options{}); err != nil {
			t.Fatal(err)
		}
		if !routesEqual(withDup, deduped) {
			t.Fatalf("seed %d: duplicate net list changed the result", seed)
		}
		if err := problem.ValidateRouting(in, withDup); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRerouteNetsOutOfRange asserts index validation happens before any
// state is touched.
func TestRerouteNetsOutOfRange(t *testing.T) {
	in := randomInstance(8, 5, 10, 4, 1)
	routes, _, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RerouteNets(context.Background(), in, routes, []int{0, 10}, Options{}); err == nil {
		t.Error("out-of-range net index accepted")
	}
	if err := RerouteNets(context.Background(), in, routes, []int{-1}, Options{}); err == nil {
		t.Error("negative net index accepted")
	}
}

func BenchmarkRouteParallel(b *testing.B) {
	in := randomInstance(40, 60, 4000, 1200, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Route(context.Background(), in, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
