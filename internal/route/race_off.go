//go:build !race

package route

// raceEnabled reports whether the race detector is compiled in. Allocation
// guards skip under it: the detector's instrumentation changes
// AllocsPerRun's exact counts.
const raceEnabled = false
