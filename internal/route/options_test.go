package route

import (
	"context"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

func TestMehlhornInitialRoutingValid(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := randomInstance(12, 10, 60, 25, seed)
		routes, _, err := Route(context.Background(), in, Options{InitialSteiner: SteinerMehlhorn})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := problem.ValidateRouting(in, routes); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestMehlhornRerouteValid(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := randomInstance(12, 10, 60, 25, seed)
		routes, stats, err := Route(context.Background(), in, Options{RerouteSteiner: SteinerMehlhorn, RipUpRounds: 4, KeepWorse: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := problem.ValidateRouting(in, routes); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stats.RippedNets == 0 {
			t.Errorf("seed %d: no rip-up happened", seed)
		}
	}
}

func TestMehlhornDisconnectedError(t *testing.T) {
	// 4-ring plus an isolated vertex 4: a net touching the island must
	// fail under either construction.
	g := graph.New(5, 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	in := &problem.Instance{
		G:    g,
		Nets: []problem.Net{{Terminals: []int{0, 4}}},
	}
	in.RebuildNetGroups()
	if _, _, err := Route(context.Background(), in, Options{InitialSteiner: SteinerMehlhorn}); err == nil {
		t.Error("Mehlhorn routing of disconnected terminals succeeded")
	}
}

func TestOrderAblationThetaNotWorse(t *testing.T) {
	// θ-ascending ordering should produce a max-φ estimate no worse, on
	// average, than netlist order (the Sec. III-A claim). Summed over
	// seeds to absorb noise.
	var thetaTotal, idTotal int64
	for seed := int64(0); seed < 6; seed++ {
		in := randomInstance(10, 8, 80, 30, 200+seed)
		rt, _, err := Route(context.Background(), in, Options{RipUpRounds: -1, Order: OrderThetaAsc})
		if err != nil {
			t.Fatal(err)
		}
		rid, _, err := Route(context.Background(), in, Options{RipUpRounds: -1, Order: OrderNetID})
		if err != nil {
			t.Fatal(err)
		}
		thetaTotal += maxPhi(in, rt)
		idTotal += maxPhi(in, rid)
	}
	if thetaTotal > idTotal+idTotal/10 {
		t.Errorf("θ ordering clearly worse than netlist order: %d vs %d", thetaTotal, idTotal)
	}
	t.Logf("max-φ totals: θ-asc=%d netlist=%d", thetaTotal, idTotal)
}

func TestOrderVariantsAllValid(t *testing.T) {
	in := randomInstance(10, 8, 50, 20, 3)
	for _, ord := range []NetOrder{OrderThetaAsc, OrderNetID, OrderThetaDesc} {
		routes, _, err := Route(context.Background(), in, Options{Order: ord})
		if err != nil {
			t.Fatalf("order %d: %v", ord, err)
		}
		if err := problem.ValidateRouting(in, routes); err != nil {
			t.Fatalf("order %d: %v", ord, err)
		}
	}
}

func TestMehlhornAndKMBSimilarQuality(t *testing.T) {
	// Both are 2-approximations; their congestion estimates should be in
	// the same ballpark (within 2x of each other summed over seeds).
	var kmb, mehl int64
	for seed := int64(0); seed < 5; seed++ {
		in := randomInstance(12, 12, 80, 30, 300+seed)
		a, _, err := Route(context.Background(), in, Options{RipUpRounds: -1})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := Route(context.Background(), in, Options{RipUpRounds: -1, InitialSteiner: SteinerMehlhorn})
		if err != nil {
			t.Fatal(err)
		}
		kmb += maxPhi(in, a)
		mehl += maxPhi(in, b)
	}
	if mehl > 2*kmb || kmb > 2*mehl {
		t.Errorf("quality diverged: KMB φ=%d, Mehlhorn φ=%d", kmb, mehl)
	}
	t.Logf("max-φ totals: KMB=%d Mehlhorn=%d", kmb, mehl)
}

func BenchmarkRouteKMBvsMehlhorn(b *testing.B) {
	in := randomInstance(40, 60, 2000, 800, 1)
	b.Run("KMB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Route(context.Background(), in, Options{RipUpRounds: -1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Mehlhorn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Route(context.Background(), in, Options{RipUpRounds: -1, InitialSteiner: SteinerMehlhorn}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestRerouteNetsKeepsValidity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := randomInstance(12, 10, 60, 25, 400+seed)
		routes, _, err := Route(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Rip a handful of nets and reroute them against the rest.
		nets := []int{0, 5, 10, 15}
		if err := RerouteNets(context.Background(), in, routes, nets, Options{}); err != nil {
			t.Fatal(err)
		}
		if err := problem.ValidateRouting(in, routes); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRerouteNetsMismatched(t *testing.T) {
	in := randomInstance(8, 5, 10, 4, 1)
	if err := RerouteNets(context.Background(), in, make(problem.Routing, 3), []int{0}, Options{}); err == nil {
		t.Error("mismatched routing accepted")
	}
}

func TestRerouteNetsMehlhorn(t *testing.T) {
	in := randomInstance(12, 10, 40, 15, 2)
	routes, _, err := Route(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RerouteNets(context.Background(), in, routes, []int{1, 3}, Options{RerouteSteiner: SteinerMehlhorn}); err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateRouting(in, routes); err != nil {
		t.Fatal(err)
	}
}
