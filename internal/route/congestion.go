// Incremental ψ/φ(g) congestion accounting for the rip-up loop of
// Sec. III-B. The cold implementation rescans every net's route twice per
// round (phiAll before and after the reroute); the index instead maintains
// ψ(n) and φ(g) under the round's delta — only the ripped group's old and
// new tree edges are touched. All quantities are integers, so the
// incremental values are exactly equal to a full rescan, and the rip-up
// decisions (arg-max group, accept/revert) are byte-identical to the cold
// path at every worker count.
package route

import (
	"tdmroute/internal/par"
	"tdmroute/internal/problem"
)

// congCell records one (net, route-position) incidence on an edge:
// r.routes[net][pos] is the edge the cell lives on.
type congCell struct {
	net, pos int32
}

// congIndex maintains, for the router it is bound to:
//
//	cells[e]   — the nets currently routed over edge e (ψ incidence),
//	cellIdx[n] — back-pointers: cellIdx[n][pos] locates net n's cell for
//	             its pos-th route edge inside cells[routes[n][pos]],
//	psi[n]     — ψ(n) of Eq. (2),
//	phi[g]     — φ(g) of Eq. (2).
//
// The back-pointers make ripping a net out of the incidence O(route length)
// with O(1) swap-removals. flush folds one rip-up round's changes in;
// unflush restores the pre-round values after a revert using the undo log
// recorded by flush.
type congIndex struct {
	r       *router
	cells   [][]congCell
	cellIdx [][]int32
	psi     []int64
	phi     []int64

	// Per-flush scratch, epoch-stamped so no per-round clearing of the
	// dense arrays is needed.
	delta       []int32 // per edge: member cells added minus removed
	deltaStamp  []uint32
	deltaList   []int
	memberStamp []uint32
	groupStamp  []uint32
	epoch       uint32

	// Undo log of the last flush, consumed by unflush.
	undoPsi []netVal
	undoPhi []grpVal
}

type netVal struct {
	net int
	val int64
}

type grpVal struct {
	grp int
	val int64
}

// newCongIndex builds the index from the router's current routing. ψ and φ
// are computed with the same integer reductions as phiAll, so the initial
// values match a cold rescan exactly.
func newCongIndex(r *router) *congIndex {
	numEdges := r.in.G.NumEdges()
	c := &congIndex{
		r:           r,
		cells:       make([][]congCell, numEdges),
		cellIdx:     make([][]int32, len(r.in.Nets)),
		delta:       make([]int32, numEdges),
		deltaStamp:  make([]uint32, numEdges),
		memberStamp: make([]uint32, len(r.in.Nets)),
		groupStamp:  make([]uint32, len(r.in.Groups)),
	}
	// The same disjoint-index integer sweeps as phiAll, with ψ retained.
	workers := r.opt.workers()
	c.psi = make([]int64, len(r.in.Nets))
	par.For(len(c.psi), workers, func(_, start, end int) {
		for n := start; n < end; n++ {
			c.psi[n] = r.psi(n)
		}
	})
	c.phi = make([]int64, len(r.in.Groups))
	par.For(len(c.phi), workers, func(_, start, end int) {
		for gi := start; gi < end; gi++ {
			var sum int64
			for _, n := range r.in.Groups[gi].Nets {
				sum = problem.SatAdd64(sum, c.psi[n])
			}
			c.phi[gi] = sum
		}
	})
	for n := range r.in.Nets {
		c.insertNet(n)
	}
	return c
}

// insertNet adds net n's current route to the incidence.
func (c *congIndex) insertNet(n int) {
	route := c.r.routes[n]
	idx := c.cellIdx[n]
	if cap(idx) < len(route) {
		idx = make([]int32, len(route))
	} else {
		idx = idx[:len(route)]
	}
	for pos, e := range route {
		idx[pos] = int32(len(c.cells[e]))
		c.cells[e] = append(c.cells[e], congCell{net: int32(n), pos: int32(pos)})
	}
	c.cellIdx[n] = idx
}

// removeNet removes the incidence cells of the given route of net n (the
// route is passed explicitly because r.routes[n] may already point at the
// replacement). Each removal swaps the last cell of the edge into the hole
// and fixes that cell's back-pointer.
func (c *congIndex) removeNet(n int, route []int) {
	idx := c.cellIdx[n]
	for pos, e := range route {
		cs := c.cells[e]
		i := idx[pos]
		last := len(cs) - 1
		moved := cs[last]
		cs[i] = moved
		c.cells[e] = cs[:last]
		if int(moved.net) != n || int(moved.pos) != pos {
			c.cellIdx[moved.net][moved.pos] = i
		}
	}
}

// bumpEpoch starts a fresh stamp scope, handling wrap-around.
func (c *congIndex) bumpEpoch() {
	c.epoch++
	if c.epoch == 0 {
		for i := range c.deltaStamp {
			c.deltaStamp[i] = 0
		}
		for i := range c.memberStamp {
			c.memberStamp[i] = 0
		}
		for i := range c.groupStamp {
			c.groupStamp[i] = 0
		}
		c.epoch = 1
	}
}

// addDelta accumulates a member-count change on edge e.
func (c *congIndex) addDelta(e int, d int32) {
	if c.deltaStamp[e] != c.epoch {
		c.deltaStamp[e] = c.epoch
		c.delta[e] = 0
		c.deltaList = append(c.deltaList, e)
	}
	c.delta[e] += d
}

// flush folds one completed rip-up round into the index: the members'
// routes changed from saved[i] to r.routes[members[i]], and r.usage is
// final. ψ of each member is recomputed directly from its new route; ψ of
// every other net changes exactly by Σ over its cells on dirty edges of the
// edge's usage delta (its own route is unchanged, and only dirty edges
// changed usage). φ follows from the per-net deltas through each net's
// group list. An undo log of every overwritten ψ/φ value is recorded for
// unflush.
func (c *congIndex) flush(members []int, saved [][]int) {
	r := c.r
	c.bumpEpoch()
	c.deltaList = c.deltaList[:0]
	c.undoPsi = c.undoPsi[:0]
	c.undoPhi = c.undoPhi[:0]

	// Swap the members' incidence cells and accumulate per-edge usage
	// deltas (usage[e] changed by exactly the member-count change on e).
	for i, n := range members {
		c.memberStamp[n] = c.epoch
		c.removeNet(n, saved[i])
		for _, e := range saved[i] {
			c.addDelta(e, -1)
		}
	}
	for _, n := range members {
		c.insertNet(n)
		for _, e := range r.routes[n] {
			c.addDelta(e, +1)
		}
	}

	// Non-member ψ deltas via the dirty edges' current cells.
	for _, e := range c.deltaList {
		d := int64(c.delta[e])
		if d == 0 {
			continue
		}
		for _, cell := range c.cells[e] {
			n := int(cell.net)
			if c.memberStamp[n] == c.epoch {
				continue
			}
			c.applyPsiDelta(n, d)
		}
	}

	// Member ψ recomputed directly against the final usage.
	for _, n := range members {
		c.applyPsiDelta(n, r.psi(n)-c.psi[n])
	}
}

// applyPsiDelta shifts ψ(n) by d and propagates the change to every group
// containing n, recording undo entries the first time a value is touched
// this flush.
func (c *congIndex) applyPsiDelta(n int, d int64) {
	if d == 0 {
		return
	}
	c.undoPsi = append(c.undoPsi, netVal{net: n, val: c.psi[n]})
	c.psi[n] = problem.SatAdd64(c.psi[n], d)
	for _, gi := range c.r.in.Nets[n].Groups {
		if c.groupStamp[gi] != c.epoch {
			c.groupStamp[gi] = c.epoch
			c.undoPhi = append(c.undoPhi, grpVal{grp: gi, val: c.phi[gi]})
		}
		c.phi[gi] = problem.SatAdd64(c.phi[gi], d)
	}
}

// unflush reverts the last flush after the round was rejected: the members'
// routes are already restored to their saved trees (newRoutes are the
// rejected trees still present in the incidence), and the ψ/φ undo log is
// replayed in reverse so nets touched more than once end at their
// pre-round values.
func (c *congIndex) unflush(members []int, newRoutes [][]int) {
	for i, n := range members {
		c.removeNet(n, newRoutes[i])
	}
	for _, n := range members {
		c.insertNet(n)
	}
	for i := len(c.undoPsi) - 1; i >= 0; i-- {
		c.psi[c.undoPsi[i].net] = c.undoPsi[i].val
	}
	for i := len(c.undoPhi) - 1; i >= 0; i-- {
		c.phi[c.undoPhi[i].grp] = c.undoPhi[i].val
	}
	c.undoPsi = c.undoPsi[:0]
	c.undoPhi = c.undoPhi[:0]
}
