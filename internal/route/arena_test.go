package route

import (
	"context"
	"testing"
)

// TestComputeTreeSteadyStateAllocs guards the arena layout of the KMB path:
// once the worker scratch and the tree arena are warm, computing a net's
// tree allocates nothing per call — the tree lands in the arena chunk and
// every KMB intermediate lives in reused worker buffers. The bound is a
// small fraction rather than zero to tolerate the rare arena-chunk refill,
// which amortizes to well under one allocation per call.
func TestComputeTreeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	in := randomInstance(24, 12, 40, 8, 7)
	s := NewSession(in, Options{})
	if _, _, err := s.Route(context.Background()); err != nil {
		t.Fatal(err)
	}
	r := s.r
	// A multi-terminal net exercises the full KMB union/clean path.
	n := 0
	for i := range in.Nets {
		if len(in.Nets[i].Terminals) > len(in.Nets[n].Terminals) {
			n = i
		}
	}
	run := func() {
		tree, err := r.computeTree(r.w0, n, r.opt.InitialSteiner, r.mst[n], r.usage)
		if err != nil {
			t.Fatal(err)
		}
		if len(tree) == 0 {
			t.Fatal("empty tree for a multi-terminal net")
		}
	}
	for i := 0; i < 8; i++ {
		run() // warm the worker scratch and the first arena chunk
	}
	if allocs := testing.AllocsPerRun(200, run); allocs > 0.05 {
		t.Errorf("computeTree allocates %.2f objects per call in steady state, want ~0", allocs)
	}
}

// TestRerouteSteadyStateAllocs pins the session-level consequence: a warm
// Reroute of a fixed net costs only the constant per-call bookkeeping (the
// dedup map and the undo snapshot), independent of tree size — the per-edge
// allocations of the pre-arena tree builder are gone.
func TestRerouteSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	in := randomInstance(24, 12, 40, 8, 8)
	s := NewSession(in, Options{})
	ctx := context.Background()
	if _, _, err := s.Route(ctx); err != nil {
		t.Fatal(err)
	}
	nets := []int{1}
	run := func() {
		if err := s.Reroute(ctx, nets); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(200, run); allocs > 10 {
		t.Errorf("Reroute allocates %.1f objects per call in steady state, want constant bookkeeping only", allocs)
	}
}
