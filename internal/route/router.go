// Package route implements the NetGroup-aware inter-FPGA routing stage of
// Sec. III of the paper: KMB-style initial Steiner routing with the θ(n) net
// ordering of Eq. (1), congestion-aware shortest paths, and the φ(g)-driven
// rip-up-and-reroute refinement of Sec. III-B.
package route

import (
	"context"
	"fmt"
	"sort"

	"tdmroute/internal/graph"
	"tdmroute/internal/par"
	"tdmroute/internal/problem"
)

// SteinerAlg selects the Steiner-tree construction algorithm.
type SteinerAlg int

const (
	// SteinerKMB is the Kou-Markowsky-Berman construction the paper uses
	// for initial routing (ref [22]): MST of the terminal complete graph
	// under LUT distances, each tree edge embedded as a shortest path.
	SteinerKMB SteinerAlg = iota
	// SteinerMehlhorn is Mehlhorn's Voronoi-region algorithm (the
	// paper's ref [26], cited for rerouting): one multi-source search
	// instead of k single-source ones.
	SteinerMehlhorn
)

// NetOrder selects the order in which nets are routed initially.
type NetOrder int

const (
	// OrderThetaAsc routes nets by increasing criticality θ(n) (Eq. 1) —
	// the paper's ordering: critical nets route last and see the most
	// congestion information.
	OrderThetaAsc NetOrder = iota
	// OrderNetID routes in netlist order (ablation baseline).
	OrderNetID
	// OrderThetaDesc routes critical nets first (ablation baseline).
	OrderThetaDesc
)

// QueueKind selects the priority-queue engine behind the congestion-aware
// shortest-path searches. Every engine produces byte-identical routings —
// equal-cost path ties resolve canonically in the relaxation step, not by
// queue pop order (see graph.QueueKind) — so the choice is purely a
// performance trade.
type QueueKind int

const (
	// QueueAuto selects the fastest engine, currently the bucket queue.
	QueueAuto QueueKind = iota
	// QueueHeap forces the binary heap.
	QueueHeap
	// QueueBucket forces the monotone radix (bucket) queue specialized for
	// the router's integer congestion costs.
	QueueBucket
)

// Options tunes the router. The zero value selects the paper's defaults.
type Options struct {
	// RipUpRounds is the number of rip-up-and-reroute rounds. Each round
	// rips the NetGroup with the largest congestion estimate φ(g) and
	// reroutes its nets. Negative disables rip-up; zero selects the
	// default.
	RipUpRounds int
	// KeepWorse keeps a rip-up round's result even if it increased the
	// ripped group's φ estimate. The default reverts such rounds.
	KeepWorse bool
	// InitialSteiner selects the initial-routing construction (paper:
	// KMB).
	InitialSteiner SteinerAlg
	// RerouteSteiner selects the rip-up reroute construction (paper
	// cites Mehlhorn's algorithm there; SteinerKMB is accepted too).
	RerouteSteiner SteinerAlg
	// Order selects the initial net ordering (paper: OrderThetaAsc).
	Order NetOrder
	// Workers is the number of goroutines used by the routing hot loops:
	// terminal-MST construction, wave-parallel net embedding, and the
	// ψ/φ(g) congestion sweeps. <= 1 routes sequentially and reproduces
	// the historical single-threaded results exactly. >= 2 routes the
	// θ-ordered net sequence in waves of Workers*waveFactor nets: every
	// net of a wave is embedded concurrently against a frozen usage
	// snapshot, then the wave's trees are merged into the shared usage in
	// wave order (ParaLarH-style speculative routing). Results are
	// deterministic for a fixed Workers value; different worker counts
	// partition the waves differently and may route individual nets
	// differently.
	Workers int
	// Queue selects the shortest-path priority-queue engine. All engines
	// produce byte-identical routings; QueueAuto picks the fastest.
	Queue QueueKind
	// Partitions > 1 routes the initial net ordering through that many
	// spatially partitioned regions instead of waves: region-local nets
	// (all terminals inside one region) are routed per region against
	// region-private congestion, regions run concurrently, and boundary
	// nets plus any local net whose tree escaped its home region are
	// rerouted sequentially against the merged congestion. The result is a
	// pure function of (instance, Options minus Workers): unlike waves,
	// worker counts only change the schedule, never the routing. 0 and 1
	// disable partitioning (partitioned routing is opt-in because it routes
	// differently from the historical sequential order).
	Partitions int
}

// DefaultRipUpRounds is used when Options.RipUpRounds == 0.
const DefaultRipUpRounds = 5

func (o Options) ripUpRounds() int {
	switch {
	case o.RipUpRounds < 0:
		return 0
	case o.RipUpRounds == 0:
		return DefaultRipUpRounds
	default:
		return o.RipUpRounds
	}
}

// workers normalizes Options.Workers to at least 1.
func (o Options) workers() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

// partitions normalizes Options.Partitions to at least 1.
func (o Options) partitions() int {
	if o.Partitions <= 1 {
		return 1
	}
	return o.Partitions
}

// graphQueue maps the router-level queue selection onto the graph engine.
func (o Options) graphQueue() graph.QueueKind {
	if o.Queue == QueueHeap {
		return graph.QueueHeap
	}
	return graph.QueueRadix
}

// Stats reports what the router did, for logging and the Fig. 3(a) runtime
// breakdown.
type Stats struct {
	RoutedNets    int
	RipUpRounds   int // rounds executed
	RevertedRound int // rounds whose result was reverted
	RippedNets    int // total nets ripped and rerouted
}

// treeArenaChunk sizes the arena slabs backing route trees. Trees are a few
// edges each on FPGA-sized graphs, so one slab serves thousands of nets.
const treeArenaChunk = 1 << 14

// treeArena slab-allocates the per-net route-tree edge lists. Trees are
// immutable once created (the Session.Routes contract), so they can share
// backing storage: instead of one garbage-collected allocation per net, the
// arena carves trees out of large chunks. Chunks are never recycled — routes
// referencing them keep them alive — so the arena only amortizes allocation
// count, which is exactly what matters at millions of nets.
type treeArena struct {
	chunk []int
	used  int
}

// alloc returns a zero-length slice with at least n spare capacity carved
// from the current chunk, starting a fresh chunk when needed.
func (a *treeArena) alloc(n int) []int {
	if len(a.chunk)-a.used < n {
		size := treeArenaChunk
		if n > size {
			size = n
		}
		a.chunk = make([]int, size)
		a.used = 0
	}
	return a.chunk[a.used:a.used]
}

// commit marks the appended-to slice s as permanently owned and returns it
// with its capacity clamped, so appends through a stale reference can never
// overwrite a neighbouring tree.
func (a *treeArena) commit(s []int) []int {
	a.used += len(s)
	return s[:len(s):len(s)]
}

// netWorker bundles the per-goroutine search state of one routing worker:
// the path and Steiner solvers plus the own-edge stamps that make a net's
// already-chosen edges free during its own embedding. None of it is shared,
// so distinct workers may embed distinct nets concurrently as long as the
// base usage array is not mutated meanwhile.
type netWorker struct {
	dij     *graph.Dijkstra
	mehl    *graph.MehlhornSolver
	cleaner *graph.SteinerCleaner

	// base is the frozen per-edge congestion the worker routes against;
	// cost is the reusable closure over it handed to the solvers.
	base []uint32
	cost graph.EdgeCostFunc

	// ownStamp marks edges already used by the net being routed so that
	// reusing them costs no congestion.
	ownStamp []uint32
	ownEpoch uint32
	// unionBuf is the reusable path-union scratch of computeTree.
	unionBuf []int
	// arena backs the route trees this worker produces.
	arena treeArena
}

func newNetWorker(g *graph.Graph, mehlhorn bool, queue graph.QueueKind) *netWorker {
	w := &netWorker{
		dij:      graph.NewDijkstraQueue(g, queue),
		cleaner:  graph.NewSteinerCleaner(g),
		ownStamp: make([]uint32, g.NumEdges()),
	}
	if mehlhorn {
		w.mehl = graph.NewMehlhornSolver(g)
	}
	w.cost = func(e int) uint64 {
		if w.ownStamp[e] == w.ownEpoch {
			return 0
		}
		return uint64(w.base[e])
	}
	return w
}

// clone returns an independent worker over the same graph.
func (w *netWorker) clone() *netWorker {
	c := &netWorker{
		dij:      w.dij.Clone(),
		cleaner:  w.cleaner.Clone(),
		ownStamp: make([]uint32, len(w.ownStamp)),
	}
	if w.mehl != nil {
		c.mehl = w.mehl.Clone()
	}
	c.cost = func(e int) uint64 {
		if c.ownStamp[e] == c.ownEpoch {
			return 0
		}
		return uint64(c.base[e])
	}
	return c
}

// bumpEpoch starts a fresh own-edge scope, handling stamp wrap-around.
func (w *netWorker) bumpEpoch() {
	w.ownEpoch++
	if w.ownEpoch == 0 {
		for i := range w.ownStamp {
			w.ownStamp[i] = 0
		}
		w.ownEpoch = 1
	}
}

type router struct {
	in   *problem.Instance
	opt  Options
	apsp *graph.APSP
	w0   *netWorker   // worker used by the sequential paths
	ws   []*netWorker // wave-parallel worker pool (ws[0] == w0), built on demand

	routes  problem.Routing
	usage   []uint32 // nets currently routed on each edge (|N_e|)
	mstCost []int64  // per net: cost of its terminal MST on the distance LUT

	// mst memoizes each net's terminal MST. The tree is a pure function of
	// the immutable APSP LUT and the net's terminal list, so it is computed
	// once per session and reused by every rip-up and feedback round.
	// Cached trees are read-only.
	mst     [][]graph.WeightedEdge
	mstDone []bool
	// mstSlab backs the memoized trees: net n's k-1 edges live in the slot
	// [mstOff[n], mstOff[n+1]). Slots are disjoint, so concurrent MST
	// construction of distinct nets writes without contention or per-net
	// allocation. Nets appended by Grow fall outside the slab and allocate
	// individually.
	mstSlab []graph.WeightedEdge
	mstOff  []int
	// msc is the Kruskal/pair scratch of the sequential MST callers; the
	// parallel buildMSTs pass uses one private scratch per chunk instead.
	msc mstScratch

	// cong is the incremental ψ/φ congestion index driving rip-up rounds.
	// It is built lazily on the first round and dropped when routing
	// finishes, so post-routing reroutes don't pay incidence maintenance.
	cong *congIndex

	stats Stats
}

func newRouter(in *problem.Instance, opt Options) *router {
	mehlhorn := opt.InitialSteiner == SteinerMehlhorn || opt.RerouteSteiner == SteinerMehlhorn
	mstOff := make([]int, len(in.Nets)+1)
	for n := range in.Nets {
		slot := len(in.Nets[n].Terminals) - 1
		if slot < 0 {
			slot = 0
		}
		//lint:ignore satarith prefix sum of (terminals-1) per net, bounded by the instance's total terminal count, which a parser-accepted instance keeps far below MaxInt
		mstOff[n+1] = mstOff[n] + slot
	}
	return &router{
		in:      in,
		opt:     opt,
		apsp:    graph.NewAPSP(in.G),
		w0:      newNetWorker(in.G, mehlhorn, opt.graphQueue()),
		routes:  make(problem.Routing, len(in.Nets)),
		usage:   make([]uint32, in.G.NumEdges()),
		mstCost: make([]int64, len(in.Nets)),
		mst:     make([][]graph.WeightedEdge, len(in.Nets)),
		mstDone: make([]bool, len(in.Nets)),
		mstSlab: make([]graph.WeightedEdge, mstOff[len(in.Nets)]),
		mstOff:  mstOff,
	}
}

// mstScratch is the reusable per-caller state of computeTerminalMST: the
// candidate pair edges of the terminal complete graph and the Kruskal
// buffers.
type mstScratch struct {
	pairs []graph.WeightedEdge
	kr    graph.KruskalScratch
}

// mstSlot returns the zero-length slab slot reserved for net n's MST, or nil
// for nets outside the slab (appended by Grow), which then allocate
// individually. The slot capacity is clamped so an overlong append could
// never spill into a neighbouring net's slot.
func (r *router) mstSlot(n int) []graph.WeightedEdge {
	if n+1 >= len(r.mstOff) {
		return nil
	}
	off, end := r.mstOff[n], r.mstOff[n+1]
	return r.mstSlab[off:off:end]
}

// terminalMST returns the memoized KMB first step for net n, computing it on
// first use with the sequential scratch. Concurrent callers must go through
// terminalMSTScratch with private scratch instead.
func (r *router) terminalMST(n int) ([]graph.WeightedEdge, error) {
	return r.terminalMSTScratch(n, &r.msc)
}

// terminalMSTScratch is terminalMST with caller-supplied scratch. Distinct
// nets may be processed concurrently: the cache slots and slab slots are
// written per index and the underlying computation reads only the APSP LUT
// and the instance.
func (r *router) terminalMSTScratch(n int, sc *mstScratch) ([]graph.WeightedEdge, error) {
	if r.mstDone[n] {
		return r.mst[n], nil
	}
	mst, err := r.computeTerminalMST(n, sc)
	if err != nil {
		return nil, err
	}
	r.mst[n] = mst
	r.mstDone[n] = true
	return mst, nil
}

// computeTerminalMST computes the MST of the complete graph over net n's
// terminals under LUT distances. It returns the tree as terminal-index pairs
// into the net's terminal slice, stored in the net's slab slot.
func (r *router) computeTerminalMST(n int, sc *mstScratch) ([]graph.WeightedEdge, error) {
	terms := r.in.Nets[n].Terminals
	k := len(terms)
	if k <= 1 {
		return nil, nil
	}
	slot := r.mstSlot(n)
	if k == 2 {
		// Fast path for the dominant 2-pin case: the MST is the pair.
		d := r.apsp.Dist(terms[0], terms[1])
		if d == graph.Unreachable {
			return nil, fmt.Errorf("route: net %d: terminals %d and %d are disconnected", n, terms[0], terms[1])
		}
		return append(slot, graph.WeightedEdge{U: 0, V: 1, Weight: int64(d)}), nil
	}
	pairs := sc.pairs[:0]
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			d := r.apsp.Dist(terms[i], terms[j])
			if d == graph.Unreachable {
				return nil, fmt.Errorf("route: net %d: terminals %d and %d are disconnected", n, terms[i], terms[j])
			}
			pairs = append(pairs, graph.WeightedEdge{U: i, V: j, Weight: int64(d)})
		}
	}
	sc.pairs = pairs
	return sc.kr.MSTAppend(slot, k, pairs), nil
}

// initialRoute performs Sec. III-A: compute every net's terminal MST, order
// nets by increasing θ(n), and embed each MST edge as a congestion-aware
// shortest path. Cancellation before the last net is embedded returns the
// context error: a partial initial routing is not a legal topology.
func (r *router) initialRoute(ctx context.Context) error {
	nets := r.in.Nets
	if err := r.buildMSTs(ctx); err != nil {
		return err
	}
	msts := r.mst

	// θ(n) = max over groups containing n of the group's summed MST cost.
	groupCost := make([]int64, len(r.in.Groups))
	for gi := range r.in.Groups {
		var sum int64
		for _, n := range r.in.Groups[gi].Nets {
			sum = problem.SatAdd64(sum, r.mstCost[n])
		}
		groupCost[gi] = sum
	}
	theta := make([]int64, len(nets))
	for n := range nets {
		for _, gi := range nets[n].Groups {
			if groupCost[gi] > theta[n] {
				theta[n] = groupCost[gi]
			}
		}
	}

	order := make([]int, len(nets))
	for i := range order {
		order[i] = i
	}
	switch r.opt.Order {
	case OrderThetaAsc:
		sort.SliceStable(order, func(a, b int) bool { return theta[order[a]] < theta[order[b]] })
	case OrderThetaDesc:
		sort.SliceStable(order, func(a, b int) bool { return theta[order[a]] > theta[order[b]] })
	case OrderNetID:
		// netlist order as initialized
	}

	if r.opt.partitions() > 1 {
		return r.routePartitioned(ctx, order)
	}
	if r.opt.workers() > 1 {
		return r.routeWaves(ctx, order)
	}
	for _, n := range order {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("route: initial routing interrupted: %w", err)
		}
		if err := r.embed(n, r.opt.InitialSteiner, msts[n], r.usage); err != nil {
			return err
		}
		r.stats.RoutedNets++
	}
	return nil
}

// embed computes net n's tree with the sequential worker against base and
// commits it to the shared routing state.
func (r *router) embed(n int, alg SteinerAlg, mst []graph.WeightedEdge, base []uint32) error {
	tree, err := r.computeTree(r.w0, n, alg, mst, base)
	if err != nil {
		return err
	}
	r.commit(n, tree)
	return nil
}

// commit stores net n's tree and adds it to the shared edge usage.
func (r *router) commit(n int, tree []int) {
	r.routes[n] = tree
	for _, e := range tree {
		r.usage[e]++
	}
}

// computeTree computes net n's Steiner tree under the base edge congestion
// using w's private scratch. It does not touch shared router state, so
// distinct workers may compute trees concurrently as long as base is not
// mutated meanwhile. mst may be nil for SteinerMehlhorn.
func (r *router) computeTree(w *netWorker, n int, alg SteinerAlg, mst []graph.WeightedEdge, base []uint32) ([]int, error) {
	terms := r.in.Nets[n].Terminals
	if len(terms) <= 1 {
		return nil, nil
	}
	w.base = base
	w.bumpEpoch()
	if alg == SteinerMehlhorn {
		tree, ok := w.mehl.SteinerTree(terms, w.cost)
		if !ok {
			return nil, fmt.Errorf("route: net %d: terminals disconnected", n)
		}
		return tree, nil
	}
	// KMB: replace each MST edge by a shortest path under the congestion
	// cost (the net's own edges free to encourage Steiner sharing), then
	// clean the union into a tree.
	union := w.unionBuf[:0]
	for _, me := range mst {
		start := len(union)
		var ok bool
		union, _, ok = w.dij.ShortestPath(terms[me.U], terms[me.V], w.cost, union)
		if !ok {
			return nil, fmt.Errorf("route: net %d: no path between terminals %d and %d", n, terms[me.U], terms[me.V])
		}
		for _, e := range union[start:] {
			w.ownStamp[e] = w.ownEpoch
		}
	}
	w.unionBuf = union
	// The cleaned tree has at most len(union) edges, so an arena slot of
	// that capacity is never reallocated by CleanAppend.
	tree, ok := w.cleaner.CleanAppend(w.arena.alloc(len(union)), union, terms)
	if !ok {
		return nil, fmt.Errorf("route: net %d: path union does not connect terminals", n)
	}
	return w.arena.commit(tree), nil
}

// psi computes ψ(n) of Eq. (2): the sum over the net's routed edges of the
// number of nets on each edge.
func (r *router) psi(n int) int64 {
	var sum int64
	for _, e := range r.routes[n] {
		sum = problem.SatAdd64(sum, int64(r.usage[e]))
	}
	return sum
}

// phiAll computes φ(g) of Eq. (2) for every group. Both sweeps are integer
// reductions over disjoint indices, so the parallel result is identical to
// the sequential one for every worker count.
func (r *router) phiAll() []int64 {
	workers := r.opt.workers()
	psi := make([]int64, len(r.in.Nets))
	par.For(len(psi), workers, func(_, start, end int) {
		for n := start; n < end; n++ {
			psi[n] = r.psi(n)
		}
	})
	phi := make([]int64, len(r.in.Groups))
	par.For(len(phi), workers, func(_, start, end int) {
		for gi := start; gi < end; gi++ {
			var sum int64
			for _, n := range r.in.Groups[gi].Nets {
				sum = problem.SatAdd64(sum, psi[n])
			}
			phi[gi] = sum
		}
	})
	return phi
}

// ripUpWorstGroup performs one Sec. III-B round: rip every net of the group
// with the largest φ(g) and reroute them with edge costs counting only the
// ripped group's own nets. Unless keepWorse is set, the round is reverted
// when it fails to reduce max φ, and improved=false is returned. A context
// cancellation observed mid-round reverts the partial round the same way
// and reports improved=false with a nil error: the router's topology stays
// legal and the caller's round loop stops on its own ctx check.
func (r *router) ripUpWorstGroup(ctx context.Context, keepWorse bool) (improved bool, err error) {
	if len(r.in.Groups) == 0 {
		return false, nil
	}
	if r.cong == nil {
		r.cong = newCongIndex(r)
	}
	phi := r.cong.phi
	gmax, best := 0, phi[0]
	for gi, v := range phi {
		if v > best {
			gmax, best = gi, v
		}
	}
	members := r.in.Groups[gmax].Nets

	// Snapshot the members' routes for possible revert.
	saved := make([][]int, len(members))
	for i, n := range members {
		saved[i] = r.routes[n]
	}

	// Rip up.
	groupUsage := make([]uint32, r.in.G.NumEdges())
	for _, n := range members {
		for _, e := range r.routes[n] {
			r.usage[e]--
		}
		r.routes[n] = nil
	}

	for _, n := range members {
		if ctx.Err() != nil {
			r.revertGroup(members, saved)
			return false, nil
		}
		var mst []graph.WeightedEdge
		if r.opt.RerouteSteiner != SteinerMehlhorn {
			mst, err = r.terminalMST(n)
			if err != nil {
				return false, err
			}
		}
		if err := r.embed(n, r.opt.RerouteSteiner, mst, groupUsage); err != nil {
			return false, err
		}
		for _, e := range r.routes[n] {
			groupUsage[e]++
		}
		r.stats.RippedNets++
	}

	// Fold the round's route changes into the incremental index: the delta
	// touches only edges on the members' old and new trees, instead of the
	// two full ψ/φ(g) rescans of the cold implementation.
	r.cong.flush(members, saved)
	if keepWorse {
		return true, nil
	}
	newPhi := r.cong.phi
	newMax := newPhi[0]
	for _, v := range newPhi {
		if v > newMax {
			newMax = v
		}
	}
	if newMax >= best {
		newRoutes := make([][]int, len(members))
		for i, n := range members {
			newRoutes[i] = r.routes[n]
		}
		r.revertGroup(members, saved)
		r.cong.unflush(members, newRoutes)
		r.stats.RevertedRound++
		return false, nil
	}
	return true, nil
}

// revertGroup restores the members' saved routes and the shared usage after
// an abandoned rip-up round. Members not yet rerouted (nil routes) are
// handled: removing a nil route from the usage is a no-op.
func (r *router) revertGroup(members []int, saved [][]int) {
	for i, n := range members {
		for _, e := range r.routes[n] {
			r.usage[e]--
		}
		r.routes[n] = saved[i]
		for _, e := range saved[i] {
			r.usage[e]++
		}
	}
}
