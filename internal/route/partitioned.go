// Spatially partitioned initial routing: the FPGA graph is split into
// regions by recursive FM bisection (internal/partition), nets whose
// terminals all fall inside one region are routed region-locally against
// region-private congestion with the regions fanned out across workers, and
// the remaining nets — region-crossing nets plus any local net whose tree
// escaped its home region — are rerouted sequentially against the merged
// congestion. This is the geometric-partitioning parallelism of the
// large-scale FPGA routers (ParaLarH's partition phase): unlike waves, the
// schedule never feeds back into the result, so the routing is a pure
// function of (instance, Options minus Workers).
package route

import (
	"context"
	"fmt"

	"tdmroute/internal/par"
	"tdmroute/internal/partition"
)

// regionSeed is the fixed FM seed of the region former. The regions — and
// with them the partitioned routing — are a pure function of the graph and
// Options.Partitions; exposing the seed would make the routing depend on a
// knob no other stage sees.
const regionSeed = 1

// routePartitioned embeds the θ-ordered nets in Options.Partitions spatial
// regions. Cancellation is checked per region-local net and per merge-phase
// net; as in the other initial-routing paths a cancellation is an error
// because no legal topology exists yet.
func (r *router) routePartitioned(ctx context.Context, order []int) error {
	p := r.opt.partitions()
	parts, err := partition.Regions(r.in.G, p, regionSeed)
	if err != nil {
		return err
	}

	// Classify each net: home region when every terminal lies in one
	// region, -1 for region-crossing nets. Terminal-less nets are trivially
	// local (their tree is empty).
	home := make([]int, len(r.in.Nets))
	for n := range r.in.Nets {
		terms := r.in.Nets[n].Terminals
		if len(terms) == 0 {
			home[n] = 0
			continue
		}
		reg := parts[terms[0]]
		for _, t := range terms[1:] {
			if parts[t] != reg {
				reg = -1
				break
			}
		}
		home[n] = reg
	}

	// Per-region θ-ordered work lists, in one stable pass over order.
	local := make([][]int, p)
	for _, n := range order {
		if reg := home[n]; reg >= 0 {
			local[reg] = append(local[reg], n)
		}
	}

	// Phase A: route each region's local nets sequentially against a
	// region-private congestion array, regions fanned out across workers.
	// A region's result depends only on its own net sequence (worker
	// scratch is reset per search), so the chunk-to-region schedule — the
	// only thing Workers changes — cannot affect the routing.
	workers := r.opt.workers()
	nchunks := par.NumChunksMin(p, workers, 1)
	pws := make([]*netWorker, nchunks)
	pws[0] = r.w0
	//lint:ignore ctxflow one-time O(workers) scratch cloning, not solver iteration; the region loop below checks ctx per net
	for i := 1; i < nchunks; i++ {
		pws[i] = r.w0.clone()
	}
	trees := make([][]int, len(r.in.Nets))
	errs := make([]error, nchunks)
	if err := par.ForMinCtx(ctx, p, workers, 1, func(chunk, s, e int) {
		w := pws[chunk]
		regUsage := make([]uint32, r.in.G.NumEdges())
		for reg := s; reg < e; reg++ {
			for i := range regUsage {
				regUsage[i] = 0
			}
			for _, n := range local[reg] {
				if err := ctx.Err(); err != nil {
					errs[chunk] = err
					return
				}
				tree, err := r.computeTree(w, n, r.opt.InitialSteiner, r.mst[n], regUsage)
				if err != nil {
					errs[chunk] = err
					return
				}
				trees[n] = tree
				for _, e := range tree {
					regUsage[e]++
				}
			}
		}
	}); err != nil {
		return fmt.Errorf("route: initial routing interrupted: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("route: initial routing interrupted: %w", ctx.Err())
			}
			return err
		}
	}

	// Deterministic merge: commit the regional trees in global θ-order.
	// Summed usage is order-independent, but the order still fixes every
	// observable intermediate state.
	for _, n := range order {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("route: initial routing interrupted: %w", err)
		}
		if home[n] >= 0 {
			r.commit(n, trees[n])
			r.stats.RoutedNets++
		}
	}

	// Boundary-conflict resolution: a local net whose tree left its home
	// region (congestion pushed a path through another region's territory)
	// was routed blind to that region's load, exactly like a crossing net.
	// Rip those escapees and reroute them with the crossing nets, in global
	// θ-order, against the merged congestion.
	merge := make([]int, 0, len(order)/4) // θ-ordered phase-B nets
	for _, n := range order {
		if home[n] < 0 {
			merge = append(merge, n)
			continue
		}
		escaped := false
		for _, e := range r.routes[n] {
			ends := r.in.G.Edge(e)
			if parts[ends.U] != home[n] || parts[ends.V] != home[n] {
				escaped = true
				break
			}
		}
		if escaped {
			for _, e := range r.routes[n] {
				r.usage[e]--
			}
			r.routes[n] = nil
			merge = append(merge, n)
			r.stats.RoutedNets--
		}
	}
	for _, n := range merge {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("route: initial routing interrupted: %w", err)
		}
		if err := r.embed(n, r.opt.InitialSteiner, r.mst[n], r.usage); err != nil {
			return err
		}
		r.stats.RoutedNets++
	}
	return nil
}
