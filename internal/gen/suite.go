package gen

import (
	"fmt"
	"math"

	"tdmroute/internal/problem"
)

// suiteShape holds the published Table I statistics of one ICCAD 2019
// benchmark: FPGA count, edge count, net count, group count.
type suiteShape struct {
	name          string
	fpgas, edges  int
	nets, groups  int
	multiPinFrac  float64
	meanGroupSize float64
}

// tableI reproduces Table I of the paper. Net and group counts are the
// published values (the paper reports them to three significant digits).
var tableI = []suiteShape{
	{"synopsys01", 43, 214, 68_500, 40_600, 0.20, 2.0},
	{"synopsys02", 56, 157, 35_000, 56_000, 0.15, 1.5},
	{"synopsys03", 114, 350, 303_000, 335_000, 0.20, 1.8},
	{"synopsys04", 229, 1087, 552_000, 465_000, 0.25, 2.2},
	{"synopsys05", 301, 2153, 881_000, 879_000, 0.20, 2.0},
	{"synopsys06", 410, 1852, 786_000, 911_000, 0.20, 1.8},
	{"hidden01", 73, 289, 54_300, 50_400, 0.20, 2.0},
	{"hidden02", 157, 803, 611_000, 502_000, 0.20, 2.0},
	{"hidden03", 487, 2720, 721_000, 887_000, 0.20, 1.9},
}

// SuiteNames returns the nine benchmark names in Table I order.
func SuiteNames() []string {
	names := make([]string, len(tableI))
	for i, s := range tableI {
		names[i] = s.name
	}
	return names
}

// SuiteConfig returns the Config of the named benchmark with net and group
// counts scaled by scale (the FPGA board itself is not scaled: the graph
// dimensions are the published ones). scale=1 reproduces the Table I
// magnitudes; tests and CI use small scales.
func SuiteConfig(name string, scale float64) (Config, error) {
	if scale <= 0 {
		return Config{}, fmt.Errorf("gen: scale must be positive, got %g", scale)
	}
	for i, s := range tableI {
		if s.name != name {
			continue
		}
		nets := scaleCount(s.nets, scale)
		groups := scaleCount(s.groups, scale)
		return Config{
			Name:          fmt.Sprintf("%s@%g", s.name, scale),
			Seed:          int64(1000 + i),
			FPGAs:         s.fpgas,
			Edges:         s.edges,
			Nets:          nets,
			Groups:        groups,
			MultiPinFrac:  s.multiPinFrac,
			MeanGroupSize: s.meanGroupSize,
		}, nil
	}
	return Config{}, fmt.Errorf("gen: unknown benchmark %q", name)
}

// Suite generates the full nine-benchmark suite at the given scale.
func Suite(scale float64) ([]*problem.Instance, error) {
	out := make([]*problem.Instance, 0, len(tableI))
	for _, s := range tableI {
		cfg, err := SuiteConfig(s.name, scale)
		if err != nil {
			return nil, err
		}
		in, err := Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("gen: %s: %w", s.name, err)
		}
		out = append(out, in)
	}
	return out, nil
}

func scaleCount(n int, scale float64) int {
	// Saturate before converting: a huge (or +Inf) scale would make the
	// float→int conversion platform-defined. 2^31 nets is far beyond any
	// suite the generator can materialize anyway.
	const maxCount = 1 << 31
	f := math.Round(float64(n) * scale)
	if !(f < maxCount) { // also catches NaN
		return maxCount
	}
	v := int(f)
	if v < 1 {
		v = 1
	}
	return v
}
