package gen

import (
	"testing"

	"tdmroute/internal/problem"
)

func TestGenerateValidInstance(t *testing.T) {
	cfg := Config{Name: "t", Seed: 1, FPGAs: 30, Edges: 60, Nets: 200, Groups: 150}
	in, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateInstance(in); err != nil {
		t.Fatalf("generated instance invalid: %v", err)
	}
	s := problem.ComputeStats(in)
	if s.FPGAs != 30 || s.Edges != 60 || s.Nets != 200 || s.NetGroups != 150 {
		t.Errorf("stats = %+v", s)
	}
	if !in.G.Connected() {
		t.Error("graph not connected")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", Seed: 42, FPGAs: 20, Edges: 40, Nets: 100, Groups: 80}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i, e := range a.G.Edges() {
		if b.G.Edges()[i] != e {
			t.Fatalf("edge %d differs", i)
		}
	}
	for i := range a.Nets {
		at, bt := a.Nets[i].Terminals, b.Nets[i].Terminals
		if len(at) != len(bt) {
			t.Fatalf("net %d terminal counts differ", i)
		}
		for j := range at {
			if at[j] != bt[j] {
				t.Fatalf("net %d terminal %d differs", i, j)
			}
		}
	}
	for gi := range a.Groups {
		am, bm := a.Groups[gi].Nets, b.Groups[gi].Nets
		if len(am) != len(bm) {
			t.Fatalf("group %d sizes differ", gi)
		}
		for j := range am {
			if am[j] != bm[j] {
				t.Fatalf("group %d member %d differs", gi, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	mk := func(seed int64) *problem.Instance {
		in, err := Generate(Config{Name: "t", Seed: seed, FPGAs: 20, Edges: 40, Nets: 100, Groups: 50})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(1), mk(2)
	same := true
	for i := range a.Nets {
		if len(a.Nets[i].Terminals) != len(b.Nets[i].Terminals) {
			same = false
			break
		}
		for j := range a.Nets[i].Terminals {
			if a.Nets[i].Terminals[j] != b.Nets[i].Terminals[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical netlists")
	}
}

func TestGenerateMultiPinFraction(t *testing.T) {
	in, err := Generate(Config{Name: "t", Seed: 3, FPGAs: 50, Edges: 120, Nets: 5000, Groups: 10, MultiPinFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for i := range in.Nets {
		if k := len(in.Nets[i].Terminals); k > 2 {
			multi++
		} else if k < 2 {
			t.Fatalf("net %d has %d terminals", i, k)
		}
	}
	frac := float64(multi) / 5000
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("multi-pin fraction = %.3f, want ~0.30", frac)
	}
}

func TestGenerateGroupSizes(t *testing.T) {
	in, err := Generate(Config{Name: "t", Seed: 4, FPGAs: 20, Edges: 40, Nets: 1000, Groups: 2000, MeanGroupSize: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	var sum int
	for gi := range in.Groups {
		m := len(in.Groups[gi].Nets)
		if m < 1 {
			t.Fatalf("group %d empty", gi)
		}
		sum += m
	}
	mean := float64(sum) / 2000
	if mean < 1.6 || mean > 2.4 {
		t.Errorf("mean group size = %.3f, want ~2.0", mean)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{FPGAs: 1, Edges: 0, Nets: 1, Groups: 0}); err == nil {
		t.Error("1 FPGA accepted")
	}
	if _, err := Generate(Config{FPGAs: 5, Edges: 2, Nets: 1, Groups: 0}); err == nil {
		t.Error("too few edges accepted")
	}
	if _, err := Generate(Config{FPGAs: 5, Edges: 6, Nets: 0, Groups: 0}); err == nil {
		t.Error("0 nets accepted")
	}
}

func TestGenerateEdgeTargetClamped(t *testing.T) {
	// 4 vertices have at most 6 edges; asking for 100 must clamp.
	in, err := Generate(Config{Name: "t", Seed: 5, FPGAs: 4, Edges: 100, Nets: 5, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	if in.G.NumEdges() != 6 {
		t.Errorf("edges = %d, want clamped 6", in.G.NumEdges())
	}
}

func TestGenerateNoParallelEdges(t *testing.T) {
	in, err := Generate(Config{Name: "t", Seed: 6, FPGAs: 25, Edges: 80, Nets: 5, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for _, e := range in.G.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if u == v {
			t.Fatalf("self loop at %d", u)
		}
		key := [2]int{u, v}
		if seen[key] {
			t.Fatalf("parallel edge (%d,%d)", u, v)
		}
		seen[key] = true
	}
}

func TestSuiteConfigMatchesTableI(t *testing.T) {
	cfg, err := SuiteConfig("synopsys01", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FPGAs != 43 || cfg.Edges != 214 || cfg.Nets != 68_500 || cfg.Groups != 40_600 {
		t.Errorf("synopsys01 config = %+v", cfg)
	}
	cfg, err = SuiteConfig("hidden03", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FPGAs != 487 || cfg.Edges != 2720 {
		t.Errorf("hidden03 board not preserved: %+v", cfg)
	}
	if cfg.Nets != 7210 || cfg.Groups != 8870 {
		t.Errorf("hidden03 scaled counts = %d nets %d groups", cfg.Nets, cfg.Groups)
	}
	if _, err := SuiteConfig("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := SuiteConfig("synopsys01", 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestSuiteNamesOrder(t *testing.T) {
	names := SuiteNames()
	if len(names) != 9 || names[0] != "synopsys01" || names[8] != "hidden03" {
		t.Errorf("names = %v", names)
	}
}

func TestSuiteSmallScaleAllValid(t *testing.T) {
	suite, err := Suite(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 9 {
		t.Fatalf("suite size = %d", len(suite))
	}
	for _, in := range suite {
		if err := problem.ValidateInstance(in); err != nil {
			t.Errorf("%s invalid: %v", in.Name, err)
		}
		if !in.G.Connected() {
			t.Errorf("%s graph not connected", in.Name)
		}
	}
}

func BenchmarkGenerateMedium(b *testing.B) {
	cfg, err := SuiteConfig("synopsys01", 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
