package gen

import (
	"reflect"
	"testing"
)

// TestGenerateSameSeedIdentical locks in the generator's reproducibility
// contract: all randomness flows from Config.Seed (no global rand state), so
// two runs of the same Config must produce byte-identical instances.
func TestGenerateSameSeedIdentical(t *testing.T) {
	cfg := Config{Name: "det", Seed: 42, FPGAs: 30, Edges: 70, Nets: 500, Groups: 350}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two Generate runs with the same Config differ")
	}
}

// TestGenerateSeedMatters guards against the seed being silently ignored.
func TestGenerateSeedMatters(t *testing.T) {
	cfg := Config{Name: "det", Seed: 1, FPGAs: 30, Edges: 70, Nets: 500, Groups: 350}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Nets, b.Nets) && reflect.DeepEqual(a.Groups, b.Groups) {
		t.Error("different seeds produced identical instances")
	}
}

// TestSuiteSameScaleIdentical repeats the whole Table I suite at a small
// scale: the suite wraps Generate with fixed per-benchmark seeds, so it must
// be reproducible end to end.
func TestSuiteSameScaleIdentical(t *testing.T) {
	a, err := Suite(0.001)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Suite(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two Suite runs at the same scale differ")
	}
}
