// Package gen produces deterministic synthetic benchmark instances whose
// statistics mirror the ICCAD 2019 CAD Contest suite (Table I of the paper).
// The contest files themselves are not redistributable; the algorithms only
// observe graph topology, terminal sets and group membership, so instances
// reproducing those distributions exercise the same code paths (see
// DESIGN.md §2 for the substitution rationale).
package gen

import (
	"fmt"
	"math/rand"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// Config describes one synthetic benchmark.
type Config struct {
	Name   string
	Seed   int64
	FPGAs  int // |V| of the FPGA graph
	Edges  int // |E| target (>= FPGAs-1; clamped to the complete graph)
	Nets   int
	Groups int

	// MultiPinFrac is the fraction of nets with more than two terminals.
	// Zero selects DefaultMultiPinFrac.
	MultiPinFrac float64
	// MaxPins caps net terminal counts. Zero selects DefaultMaxPins.
	MaxPins int
	// Locality in [0,1) biases terminals of a net (and extra graph edges)
	// toward nearby FPGAs on the board grid. Zero selects
	// DefaultLocality.
	Locality float64
	// MeanGroupSize is the mean of the (geometric) group size
	// distribution. Zero selects DefaultMeanGroupSize.
	MeanGroupSize float64
}

// Defaults for the distribution knobs, chosen to resemble prototyping
// workloads: mostly 2-pin nets, small multi-fanout tail, strong placement
// locality, small overlapping NetGroups.
const (
	DefaultMultiPinFrac  = 0.2
	DefaultMaxPins       = 8
	DefaultLocality      = 0.7
	DefaultMeanGroupSize = 2.0
)

func (c Config) withDefaults() Config {
	if c.MultiPinFrac == 0 {
		c.MultiPinFrac = DefaultMultiPinFrac
	}
	if c.MaxPins == 0 {
		c.MaxPins = DefaultMaxPins
	}
	if c.Locality == 0 {
		c.Locality = DefaultLocality
	}
	if c.MeanGroupSize == 0 {
		c.MeanGroupSize = DefaultMeanGroupSize
	}
	return c
}

// Generate builds the instance described by cfg. The same Config always
// yields the same instance. The result passes problem.ValidateInstance.
func Generate(cfg Config) (*problem.Instance, error) {
	cfg = cfg.withDefaults()
	if cfg.FPGAs < 2 {
		return nil, fmt.Errorf("gen: need at least 2 FPGAs, got %d", cfg.FPGAs)
	}
	if cfg.Nets < 1 {
		return nil, fmt.Errorf("gen: need at least 1 net, got %d", cfg.Nets)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	b := newBoard(cfg.FPGAs)
	g, err := b.buildGraph(cfg, rng)
	if err != nil {
		return nil, err
	}

	nets := make([]problem.Net, cfg.Nets)
	for i := range nets {
		nets[i].Terminals = b.sampleTerminals(cfg, rng)
	}

	groups := make([]problem.Group, cfg.Groups)
	for gi := range groups {
		groups[gi].Nets = sampleGroup(cfg, rng)
	}

	in := &problem.Instance{Name: cfg.Name, G: g, Nets: nets, Groups: groups}
	in.RebuildNetGroups()
	return in, nil
}

// board places the FPGAs on an approximately square grid; Manhattan
// distance on the grid stands in for physical board distance.
type board struct {
	n, cols, rows int
}

func newBoard(n int) *board {
	// Integer ceil-sqrt: stays exact (and overflow-free) for any board size.
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	return &board{n: n, cols: cols, rows: rows}
}

func (b *board) pos(v int) (r, c int) { return v / b.cols, v % b.cols }

func (b *board) manhattan(u, v int) int {
	ur, uc := b.pos(u)
	vr, vc := b.pos(v)
	return abs(ur-vr) + abs(uc-vc)
}

// buildGraph constructs a connected FPGA graph: the grid spanning tree plus
// extra chords sampled with locality bias. No parallel edges or self loops.
func (b *board) buildGraph(cfg Config, rng *rand.Rand) (*graph.Graph, error) {
	n := b.n
	maxEdges := n * (n - 1) / 2
	want := cfg.Edges
	if want < n-1 {
		return nil, fmt.Errorf("gen: %d edges cannot connect %d FPGAs", want, n)
	}
	if want > maxEdges {
		want = maxEdges
	}
	g := graph.New(n, want)
	used := make(map[[2]int]bool, want)
	add := func(u, v int) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if used[key] {
			return false
		}
		used[key] = true
		g.AddEdge(u, v)
		return true
	}

	// Grid spanning tree: connect each vertex to its left or up neighbour.
	for v := 1; v < n; v++ {
		r, c := b.pos(v)
		switch {
		case c > 0 && r > 0:
			if rng.Intn(2) == 0 {
				add(v, v-1)
			} else {
				add(v, v-b.cols)
			}
		case c > 0:
			add(v, v-1)
		default:
			add(v, v-b.cols)
		}
	}

	// Extra chords with locality bias: sample an anchor and a partner at
	// a geometric Manhattan radius.
	for attempts := 0; g.NumEdges() < want && attempts < 100*want+1000; attempts++ {
		u := rng.Intn(n)
		var v int
		if rng.Float64() < cfg.Locality {
			v = b.nearbyVertex(u, rng)
		} else {
			v = rng.Intn(n)
		}
		add(u, v)
	}
	// Dense targets may exhaust rejection sampling; finish deterministically.
	if g.NumEdges() < want {
		for u := 0; u < n && g.NumEdges() < want; u++ {
			for v := u + 1; v < n && g.NumEdges() < want; v++ {
				add(u, v)
			}
		}
	}
	return g, nil
}

// nearbyVertex picks a vertex within a small random Manhattan offset of u.
func (b *board) nearbyVertex(u int, rng *rand.Rand) int {
	ur, uc := b.pos(u)
	for {
		dr := geometricStep(rng) * sign(rng)
		dc := geometricStep(rng) * sign(rng)
		r, c := ur+dr, uc+dc
		if r < 0 || c < 0 || r >= b.rows || c >= b.cols {
			continue
		}
		v := r*b.cols + c
		if v < b.n {
			return v
		}
	}
}

// sampleTerminals picks a net's terminal set: a random driver, sinks nearby
// with probability Locality and uniform otherwise.
func (b *board) sampleTerminals(cfg Config, rng *rand.Rand) []int {
	k := 2
	if rng.Float64() < cfg.MultiPinFrac && cfg.MaxPins > 2 {
		k = 3 + rng.Intn(cfg.MaxPins-2)
	}
	if k > b.n {
		k = b.n
	}
	terms := make([]int, 0, k)
	seen := make(map[int]bool, k)
	src := rng.Intn(b.n)
	terms = append(terms, src)
	seen[src] = true
	for len(terms) < k {
		var v int
		if rng.Float64() < cfg.Locality {
			v = b.nearbyVertex(src, rng)
		} else {
			v = rng.Intn(b.n)
		}
		if !seen[v] {
			seen[v] = true
			terms = append(terms, v)
		}
	}
	return terms
}

// sampleGroup draws a group's member set: geometric size, members clustered
// in net-id space so groups overlap the way timing paths share nets.
func sampleGroup(cfg Config, rng *rand.Rand) []int {
	size := 1
	p := 1 / cfg.MeanGroupSize
	for rng.Float64() > p && size < 64 {
		size++
	}
	if size > cfg.Nets {
		size = cfg.Nets
	}
	// Window of net ids around a random anchor.
	window := 8 * size
	anchor := rng.Intn(cfg.Nets)
	members := make([]int, 0, size)
	seen := make(map[int]bool, size)
	for len(members) < size {
		n := anchor + rng.Intn(2*window+1) - window
		n = ((n % cfg.Nets) + cfg.Nets) % cfg.Nets
		if !seen[n] {
			seen[n] = true
			members = append(members, n)
		}
	}
	insertionSort(members)
	return members
}

func insertionSort(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func geometricStep(rng *rand.Rand) int {
	step := 1
	for rng.Float64() < 0.4 && step < 8 {
		step++
	}
	return step
}

func sign(rng *rand.Rand) int {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
