package partition

import (
	"math/rand"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// twoCliques builds two size-k cliques (as 2-pin nets) joined by a single
// bridge net: the optimal bipartition cut is 1.
func twoCliques(k int) *Hypergraph {
	h := &Hypergraph{CellWeight: make([]int64, 2*k)}
	for i := range h.CellWeight {
		h.CellWeight[i] = 1
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			h.Nets = append(h.Nets, []int{a, b})
			h.Nets = append(h.Nets, []int{k + a, k + b})
		}
	}
	h.Nets = append(h.Nets, []int{0, k})
	return h
}

func TestBipartitionTwoCliques(t *testing.T) {
	h := twoCliques(8)
	side, cut, err := Bipartition(h, FMOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("cut = %d, want 1", cut)
	}
	// Each clique must land on one side.
	for c := 1; c < 8; c++ {
		if side[c] != side[0] {
			t.Errorf("clique A split at cell %d", c)
		}
		if side[8+c] != side[8] {
			t.Errorf("clique B split at cell %d", c)
		}
	}
	if side[0] == side[8] {
		t.Error("both cliques on the same side")
	}
}

func TestBipartitionBalanceRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := randomNetlist(t, 60, 120, 3)
	side, _, err := Bipartition(h, FMOptions{Seed: 3, Balance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var w0 int64
	for c, s := range side {
		if s == 0 {
			w0 += h.CellWeight[c]
		}
	}
	total := h.TotalWeight()
	frac := float64(w0) / float64(total)
	// Allow the window plus one max-weight cell of slack (the initial
	// greedy fill can sit at the boundary).
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("side 0 weight fraction = %.3f", frac)
	}
	_ = rng
}

func TestBipartitionImprovesOverRandom(t *testing.T) {
	h := randomNetlist(t, 80, 200, 7)
	// Random assignment cut (expected): measure a few.
	rng := rand.New(rand.NewSource(1))
	randomCut := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		parts := make([]int, h.NumCells())
		for c := range parts {
			parts[c] = rng.Intn(2)
		}
		randomCut += CutSize(h, parts)
	}
	_, fmCut, err := Bipartition(h, FMOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fmCut*trials >= randomCut {
		t.Errorf("FM cut %d not better than random average %d", fmCut, randomCut/trials)
	}
}

func TestBipartitionDeterministic(t *testing.T) {
	h := randomNetlist(t, 50, 100, 11)
	a, cutA, err := Bipartition(h, FMOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, cutB, err := Bipartition(h, FMOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if cutA != cutB {
		t.Fatalf("cuts differ: %d vs %d", cutA, cutB)
	}
	for c := range a {
		if a[c] != b[c] {
			t.Fatalf("assignment differs at cell %d", c)
		}
	}
}

func TestBipartitionRejectsInvalid(t *testing.T) {
	h := &Hypergraph{CellWeight: []int64{1, 0}, Nets: [][]int{{0, 1}}}
	if _, _, err := Bipartition(h, FMOptions{}); err == nil {
		t.Error("zero-weight cell accepted")
	}
	h = &Hypergraph{CellWeight: []int64{1, 1}, Nets: [][]int{{0, 5}}}
	if _, _, err := Bipartition(h, FMOptions{}); err == nil {
		t.Error("out-of-range pin accepted")
	}
	h = &Hypergraph{CellWeight: []int64{1, 1}, Nets: [][]int{{0, 0}}}
	if _, _, err := Bipartition(h, FMOptions{}); err == nil {
		t.Error("duplicate pin accepted")
	}
}

func TestKWayCoversAllParts(t *testing.T) {
	h := randomNetlist(t, 90, 180, 13)
	for _, k := range []int{1, 2, 3, 4, 7} {
		parts, err := KWay(h, k, FMOptions{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		used := map[int]bool{}
		for _, p := range parts {
			if p < 0 || p >= k {
				t.Fatalf("k=%d: part id %d out of range", k, p)
			}
			used[p] = true
		}
		if len(used) != k {
			t.Errorf("k=%d: only %d parts used", k, len(used))
		}
	}
	if _, err := KWay(h, 0, FMOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKWayCutReasonable(t *testing.T) {
	h := randomNetlist(t, 100, 250, 17)
	parts, err := KWay(h, 4, FMOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cut := CutSize(h, parts)
	if cut >= len(h.Nets) {
		t.Errorf("cut %d not below net count %d", cut, len(h.Nets))
	}
}

func TestCutSizeManual(t *testing.T) {
	h := &Hypergraph{
		CellWeight: []int64{1, 1, 1},
		Nets:       [][]int{{0, 1}, {1, 2}, {0, 1, 2}, {2}},
	}
	parts := []int{0, 0, 1}
	if got := CutSize(h, parts); got != 2 {
		t.Errorf("cut = %d, want 2", got)
	}
}

func randomNetlist(t *testing.T, cells, nets int, seed int64) *Hypergraph {
	t.Helper()
	h, err := GenerateNetlist(NetlistConfig{Cells: cells, Nets: nets, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestGenerateNetlistShape(t *testing.T) {
	h := randomNetlist(t, 200, 500, 1)
	if h.NumCells() != 200 || len(h.Nets) != 500 {
		t.Fatalf("shape = %d cells %d nets", h.NumCells(), len(h.Nets))
	}
	for i, net := range h.Nets {
		if len(net) < 2 {
			t.Fatalf("net %d too small", i)
		}
	}
	if _, err := GenerateNetlist(NetlistConfig{Cells: 1, Nets: 1}); err == nil {
		t.Error("1-cell netlist accepted")
	}
}

func TestBuildInstanceFullFlow(t *testing.T) {
	h := randomNetlist(t, 120, 300, 19)
	// 3x3 grid board.
	board := graph.New(9, 12)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			v := r*3 + c
			if c+1 < 3 {
				board.AddEdge(v, v+1)
			}
			if r+1 < 3 {
				board.AddEdge(v, v+3)
			}
		}
	}
	parts, err := KWay(h, 9, FMOptions{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	in, err := BuildInstance("flow", h, parts, board)
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateInstance(in); err != nil {
		t.Fatalf("bridged instance invalid: %v", err)
	}
	if len(in.Nets) == 0 || len(in.Groups) == 0 {
		t.Fatalf("degenerate instance: %d nets, %d groups", len(in.Nets), len(in.Groups))
	}
	// Spanning net count equals the k-way cut.
	if got, want := len(in.Nets), CutSize(h, parts); got != want {
		t.Errorf("instance has %d nets, cut is %d", got, want)
	}
}

func TestBuildInstanceErrors(t *testing.T) {
	h := randomNetlist(t, 10, 20, 3)
	board := graph.New(2, 1)
	board.AddEdge(0, 1)
	if _, err := BuildInstance("x", h, make([]int, 5), board); err == nil {
		t.Error("mismatched parts accepted")
	}
	parts := make([]int, 10)
	parts[0] = 5 // more parts than FPGAs
	if _, err := BuildInstance("x", h, parts, board); err == nil {
		t.Error("too many parts accepted")
	}
	parts[0] = -1
	if _, err := BuildInstance("x", h, parts, board); err == nil {
		t.Error("negative part accepted")
	}
}

func BenchmarkBipartition(b *testing.B) {
	h, err := GenerateNetlist(NetlistConfig{Cells: 400, Nets: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Bipartition(h, FMOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
