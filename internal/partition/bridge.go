package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// NetlistConfig describes a synthetic gate-level netlist for the full
// compilation-flow examples: cells with small fanout-biased nets and
// locality in cell-id space (a stand-in for placement locality).
type NetlistConfig struct {
	Cells  int
	Nets   int
	Seed   int64
	MaxFan int // maximum cells per net; 0 selects 6
}

// GenerateNetlist builds a deterministic synthetic hypergraph.
func GenerateNetlist(cfg NetlistConfig) (*Hypergraph, error) {
	if cfg.Cells < 2 || cfg.Nets < 1 {
		return nil, fmt.Errorf("partition: need >= 2 cells and >= 1 net")
	}
	if cfg.MaxFan == 0 {
		cfg.MaxFan = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := &Hypergraph{CellWeight: make([]int64, cfg.Cells)}
	for c := range h.CellWeight {
		h.CellWeight[c] = int64(1 + rng.Intn(4))
	}
	for i := 0; i < cfg.Nets; i++ {
		fan := 2
		for rng.Float64() < 0.35 && fan < cfg.MaxFan {
			fan++
		}
		anchor := rng.Intn(cfg.Cells)
		window := 16 + 8*fan
		seen := map[int]bool{}
		var net []int
		for len(net) < fan {
			c := anchor + rng.Intn(2*window+1) - window
			c = ((c % cfg.Cells) + cfg.Cells) % cfg.Cells
			if !seen[c] {
				seen[c] = true
				net = append(net, c)
			}
		}
		sort.Ints(net)
		h.Nets = append(h.Nets, net)
	}
	return h, nil
}

// BuildInstance turns a partitioned netlist into an inter-FPGA routing
// instance on the given board: part p maps to FPGA vertex p; every logical
// net spanning more than one part becomes a routable net whose terminals
// are the distinct FPGAs it touches; NetGroups collect the spanning nets
// incident to the same cell (a simple stand-in for shared timing paths).
//
// The number of parts must not exceed the board's FPGA count.
func BuildInstance(name string, h *Hypergraph, parts []int, board *graph.Graph) (*problem.Instance, error) {
	if len(parts) != h.NumCells() {
		return nil, fmt.Errorf("partition: %d part labels for %d cells", len(parts), h.NumCells())
	}
	numParts := 0
	for _, p := range parts {
		if p < 0 {
			return nil, fmt.Errorf("partition: negative part id %d", p)
		}
		if p+1 > numParts {
			numParts = p + 1
		}
	}
	if numParts > board.NumVertices() {
		return nil, fmt.Errorf("partition: %d parts exceed %d FPGAs", numParts, board.NumVertices())
	}

	in := &problem.Instance{Name: name, G: board}
	// Spanning nets become routable nets.
	netID := make([]int, len(h.Nets)) // logical net -> routable net id or -1
	for i, net := range h.Nets {
		netID[i] = -1
		if len(net) < 2 {
			continue
		}
		seen := map[int]bool{}
		var terms []int
		for _, c := range net {
			p := parts[c]
			if !seen[p] {
				seen[p] = true
				terms = append(terms, p)
			}
		}
		if len(terms) < 2 {
			continue // intra-FPGA after partitioning
		}
		netID[i] = len(in.Nets)
		in.Nets = append(in.Nets, problem.Net{Terminals: terms})
	}

	// Groups: for every cell, the spanning nets incident to it (>= 1 net).
	pins := h.pins()
	seenGroups := map[string]bool{}
	for _, incident := range pins {
		var members []int
		for _, ni := range incident {
			if netID[ni] >= 0 {
				members = append(members, netID[ni])
			}
		}
		if len(members) == 0 {
			continue
		}
		sort.Ints(members)
		members = dedupInts(members)
		key := fmt.Sprint(members)
		if seenGroups[key] {
			continue // identical group; keep one
		}
		seenGroups[key] = true
		in.Groups = append(in.Groups, problem.Group{Nets: members})
	}
	in.RebuildNetGroups()
	return in, nil
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
