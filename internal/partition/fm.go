package partition

import (
	"fmt"
	"math"
	"math/rand"
)

// FMOptions tunes the bipartitioner.
type FMOptions struct {
	// Balance is the allowed deviation of either side's weight from half
	// the total, as a fraction (paper-era FM uses ~0.45..0.55 windows;
	// 0 selects 0.1, i.e. each side within [40%, 60%]).
	Balance float64
	// MaxPasses caps FM passes; each pass tentatively moves every cell
	// once and rolls back to the best prefix. Zero selects 10.
	MaxPasses int
	// Seed randomizes the initial assignment; the same seed always
	// yields the same result.
	Seed int64
}

func (o FMOptions) withDefaults() FMOptions {
	if o.Balance == 0 {
		o.Balance = 0.1
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 10
	}
	return o
}

// Bipartition splits the cells into sides 0 and 1 with Fiduccia–Mattheyses
// refinement over a random balanced start. It returns the side per cell and
// the final cut size.
func Bipartition(h *Hypergraph, opt FMOptions) ([]int, int, error) {
	if err := h.Validate(); err != nil {
		return nil, 0, err
	}
	opt = opt.withDefaults()
	n := h.NumCells()
	if n == 0 {
		return nil, 0, nil
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	total := h.TotalWeight()
	lo := satInt64(float64(total) * (0.5 - opt.Balance))
	hi := satInt64(float64(total) * (0.5 + opt.Balance))
	if hi == lo {
		hi = lo + 1
	}

	// Random balanced initial assignment: shuffle, fill side 0 to ~half.
	side := make([]int, n)
	order := rng.Perm(n)
	var w0 int64
	for _, c := range order {
		if w0+h.CellWeight[c] <= total/2 {
			side[c] = 0
			w0 += h.CellWeight[c]
		} else {
			side[c] = 1
		}
	}

	f := newFM(h, side, lo, hi)
	for pass := 0; pass < opt.MaxPasses; pass++ {
		if improved := f.pass(); !improved {
			break
		}
	}
	return f.side, CutSize(h, f.side), nil
}

// satInt64 converts f to int64, saturating at the representable range and
// mapping NaN to 0: balance windows derived from adversarial FMOptions
// (huge or non-finite Balance) must not overflow platform-defined.
func satInt64(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= float64(math.MaxInt64):
		return math.MaxInt64
	case f <= float64(math.MinInt64):
		return math.MinInt64
	}
	return int64(f)
}

// fm holds the pass state: gain buckets with doubly linked free cells.
type fm struct {
	h      *Hypergraph
	pins   [][]int
	side   []int
	weight [2]int64
	lo, hi int64

	gain   []int
	locked []bool

	// per-net side counts, maintained incrementally.
	netCount [][2]int
}

func newFM(h *Hypergraph, side []int, lo, hi int64) *fm {
	f := &fm{
		h:      h,
		pins:   h.pins(),
		side:   side,
		lo:     lo,
		hi:     hi,
		gain:   make([]int, h.NumCells()),
		locked: make([]bool, h.NumCells()),
	}
	for c, s := range side {
		f.weight[s] += h.CellWeight[c]
	}
	f.netCount = make([][2]int, len(h.Nets))
	for i, net := range h.Nets {
		for _, c := range net {
			f.netCount[i][side[c]]++
		}
	}
	return f
}

// cellGain computes the FM gain of moving c to the other side: nets that
// become uncut minus nets that become cut.
func (f *fm) cellGain(c int) int {
	s := f.side[c]
	g := 0
	for _, ni := range f.pins[c] {
		switch {
		case f.netCount[ni][s] == 1: // c is the lone cell on its side
			g++
		case f.netCount[ni][1-s] == 0: // net entirely on c's side
			g--
		}
	}
	return g
}

// pass runs one FM pass: tentatively move every cell once (highest gain,
// balance permitting), then roll back to the best prefix. Reports whether
// the cut strictly improved.
func (f *fm) pass() bool {
	n := f.h.NumCells()
	for c := 0; c < n; c++ {
		f.locked[c] = false
		f.gain[c] = f.cellGain(c)
	}
	startCut := CutSize(f.h, f.side)

	type move struct{ cell int }
	moves := make([]move, 0, n)
	cut := startCut
	bestCut := startCut
	bestPrefix := 0

	for len(moves) < n {
		c := f.selectMove()
		if c < 0 {
			break
		}
		cut -= f.gain[c]
		f.apply(c)
		moves = append(moves, move{cell: c})
		if cut < bestCut {
			bestCut = cut
			bestPrefix = len(moves)
		}
	}
	// Roll back moves after the best prefix.
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		f.apply(moves[i].cell) // moving back restores state
	}
	return bestCut < startCut
}

// selectMove picks the unlocked cell with the highest gain whose move keeps
// balance; ties break on the smallest cell id for determinism.
func (f *fm) selectMove() int {
	best, bestGain := -1, 0
	for c := 0; c < f.h.NumCells(); c++ {
		if f.locked[c] {
			continue
		}
		s := f.side[c]
		w := f.h.CellWeight[c]
		if f.weight[1-s]+w > f.hi || f.weight[s]-w < f.lo {
			continue
		}
		if best == -1 || f.gain[c] > bestGain {
			best, bestGain = c, f.gain[c]
		}
	}
	if best >= 0 {
		f.locked[best] = true
	}
	return best
}

// apply moves cell c to the other side and updates net counts and the gains
// of its unlocked neighbours (standard FM delta rules).
func (f *fm) apply(c int) {
	from := f.side[c]
	to := 1 - from
	w := f.h.CellWeight[c]

	for _, ni := range f.pins[c] {
		net := f.h.Nets[ni]
		// Before-move updates.
		if f.netCount[ni][to] == 0 {
			for _, d := range net {
				if !f.locked[d] {
					f.gain[d]++
				}
			}
		} else if f.netCount[ni][to] == 1 {
			for _, d := range net {
				if !f.locked[d] && f.side[d] == to {
					f.gain[d]--
				}
			}
		}
		f.netCount[ni][from]--
		f.netCount[ni][to]++
		// After-move updates.
		if f.netCount[ni][from] == 0 {
			for _, d := range net {
				if !f.locked[d] {
					f.gain[d]--
				}
			}
		} else if f.netCount[ni][from] == 1 {
			for _, d := range net {
				if !f.locked[d] && f.side[d] == from {
					f.gain[d]++
				}
			}
		}
	}
	f.side[c] = to
	f.weight[from] -= w
	f.weight[to] += w
}

// KWay partitions the cells onto k parts by recursive bisection. Part ids
// are 0..k-1. Every level reuses FM with a proportional balance window.
func KWay(h *Hypergraph, k int, opt FMOptions) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	parts := make([]int, h.NumCells())
	cells := make([]int, h.NumCells())
	for i := range cells {
		cells[i] = i
	}
	if err := bisect(h, cells, 0, k, opt, parts); err != nil {
		return nil, err
	}
	return parts, nil
}

// bisect assigns part ids [base, base+k) to the given cell subset.
func bisect(h *Hypergraph, cells []int, base, k int, opt FMOptions, parts []int) error {
	if k == 1 || len(cells) == 0 {
		for _, c := range cells {
			parts[c] = base
		}
		return nil
	}
	// Build the sub-hypergraph induced by cells.
	idx := make(map[int]int, len(cells))
	for i, c := range cells {
		idx[c] = i
	}
	sub := &Hypergraph{CellWeight: make([]int64, len(cells))}
	for i, c := range cells {
		sub.CellWeight[i] = h.CellWeight[c]
	}
	for _, net := range h.Nets {
		var local []int
		for _, c := range net {
			if li, ok := idx[c]; ok {
				local = append(local, li)
			}
		}
		if len(local) >= 2 {
			sub.Nets = append(sub.Nets, local)
		}
	}
	// Split k into halves; bias the balance window toward the weight
	// share of each half.
	kl := k / 2
	kr := k - kl
	subOpt := opt
	subOpt.Seed = opt.Seed*31 + int64(base)
	side, _, err := bipartitionShare(sub, subOpt, float64(kl)/float64(k))
	if err != nil {
		return err
	}
	var left, right []int
	for i, c := range cells {
		if side[i] == 0 {
			left = append(left, c)
		} else {
			right = append(right, c)
		}
	}
	if err := bisect(h, left, base, kl, opt, parts); err != nil {
		return err
	}
	return bisect(h, right, base+kl, kr, opt, parts)
}

// bipartitionShare is Bipartition with an asymmetric target: side 0 aims
// for the given share of total weight.
func bipartitionShare(h *Hypergraph, opt FMOptions, share float64) ([]int, int, error) {
	opt = opt.withDefaults()
	n := h.NumCells()
	if n == 0 {
		return nil, 0, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	total := h.TotalWeight()
	target := satInt64(float64(total) * share)
	dev := satInt64(float64(total) * opt.Balance / 2)
	lo := target - dev
	hi := target + dev
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		hi = lo + 1
	}

	side := make([]int, n)
	order := rng.Perm(n)
	var w0 int64
	for _, c := range order {
		if w0+h.CellWeight[c] <= target {
			side[c] = 0
			w0 += h.CellWeight[c]
		} else {
			side[c] = 1
		}
	}
	f := newFM(h, side, lo, hi)
	for pass := 0; pass < opt.MaxPasses; pass++ {
		if improved := f.pass(); !improved {
			break
		}
	}
	return f.side, CutSize(h, f.side), nil
}
