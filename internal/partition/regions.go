package partition

import (
	"fmt"

	"tdmroute/internal/graph"
)

// Regions splits the vertices of an FPGA graph into k spatially coherent
// regions by recursive FM bisection of the graph itself (each physical
// inter-FPGA edge becomes a 2-pin net, each FPGA a unit-weight cell). It is
// the region former behind the router's partitioned initial routing: nets
// whose terminals all land in one region can be routed region-locally and in
// parallel with other regions.
//
// The result assigns every vertex a part id in [0, k) and is a pure function
// of (g, k, seed). k is clamped to [1, NumVertices]; k <= 1 returns the
// trivial single-region assignment.
func Regions(g *graph.Graph, k int, seed int64) ([]int, error) {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	parts := make([]int, n)
	if k <= 1 || n == 0 {
		return parts, nil
	}
	h := &Hypergraph{
		CellWeight: make([]int64, n),
		Nets:       make([][]int, 0, g.NumEdges()),
	}
	for i := range h.CellWeight {
		h.CellWeight[i] = 1
	}
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue // self-loops carry no partition information
		}
		h.Nets = append(h.Nets, []int{e.U, e.V})
	}
	parts, err := KWay(h, k, FMOptions{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("partition: forming %d routing regions: %w", k, err)
	}
	return parts, nil
}
