package partition

import (
	"reflect"
	"testing"
)

// TestGenerateNetlistSameSeedIdentical locks in the netlist generator's
// reproducibility: all randomness flows from NetlistConfig.Seed.
func TestGenerateNetlistSameSeedIdentical(t *testing.T) {
	cfg := NetlistConfig{Cells: 200, Nets: 400, Seed: 7}
	a, err := GenerateNetlist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateNetlist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two GenerateNetlist runs with the same config differ")
	}
}

// TestBipartitionSameSeedIdentical checks the FM bipartitioner: the random
// initial assignment comes from FMOptions.Seed and every later tie-break is
// by smallest cell id, so repeated runs must match exactly.
func TestBipartitionSameSeedIdentical(t *testing.T) {
	h, err := GenerateNetlist(NetlistConfig{Cells: 150, Nets: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := FMOptions{Seed: 11}
	sideA, cutA, err := Bipartition(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	sideB, cutB, err := Bipartition(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cutA != cutB || !reflect.DeepEqual(sideA, sideB) {
		t.Errorf("two Bipartition runs with seed %d differ (cut %d vs %d)", opt.Seed, cutA, cutB)
	}
}

// TestKWaySameSeedIdentical checks the recursive bisection driver, whose
// per-level seeds are derived deterministically from the parent seed.
func TestKWaySameSeedIdentical(t *testing.T) {
	h, err := GenerateNetlist(NetlistConfig{Cells: 180, Nets: 350, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opt := FMOptions{Seed: 9}
	a, err := KWay(h, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KWay(h, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two KWay runs with the same seed differ")
	}
}
