// Package partition implements the netlist-partitioning stage that precedes
// inter-FPGA routing in the multi-FPGA compilation flow of Fig. 2(a) of the
// paper (the stage of its ref [1]): a Fiduccia–Mattheyses (FM) move-based
// bipartitioner with gain buckets, recursive k-way partitioning onto the
// FPGAs of a board, and the bridge that turns a partitioned gate-level
// netlist into an inter-FPGA routing instance for the solver.
package partition

import "fmt"

// Hypergraph is a gate-level netlist: cells (gates/IP blocks) connected by
// hyperedges (logical nets).
type Hypergraph struct {
	// CellWeight is the area weight of each cell (>= 1).
	CellWeight []int64
	// Nets lists, for each logical net, the cells it connects. Cells may
	// appear once per net; nets with fewer than 2 cells are ignored by
	// the partitioner.
	Nets [][]int
}

// NumCells returns the number of cells.
func (h *Hypergraph) NumCells() int { return len(h.CellWeight) }

// TotalWeight returns the summed cell weight.
func (h *Hypergraph) TotalWeight() int64 {
	var sum int64
	for _, w := range h.CellWeight {
		sum += w
	}
	return sum
}

// Validate checks structural sanity: positive weights and in-range,
// per-net-unique cell references.
func (h *Hypergraph) Validate() error {
	for c, w := range h.CellWeight {
		if w < 1 {
			return fmt.Errorf("partition: cell %d has weight %d < 1", c, w)
		}
	}
	for i, net := range h.Nets {
		seen := make(map[int]bool, len(net))
		for _, c := range net {
			if c < 0 || c >= len(h.CellWeight) {
				return fmt.Errorf("partition: net %d references cell %d out of range", i, c)
			}
			if seen[c] {
				return fmt.Errorf("partition: net %d references cell %d twice", i, c)
			}
			seen[c] = true
		}
	}
	return nil
}

// pins builds the cell -> incident nets index.
func (h *Hypergraph) pins() [][]int {
	out := make([][]int, len(h.CellWeight))
	for i, net := range h.Nets {
		if len(net) < 2 {
			continue
		}
		for _, c := range net {
			out[c] = append(out[c], i)
		}
	}
	return out
}

// CutSize returns the number of nets spanning more than one part under the
// given assignment (cell -> part id).
func CutSize(h *Hypergraph, parts []int) int {
	cut := 0
	for _, net := range h.Nets {
		if len(net) < 2 {
			continue
		}
		first := parts[net[0]]
		for _, c := range net[1:] {
			if parts[c] != first {
				cut++
				break
			}
		}
	}
	return cut
}
