// Package chaos is a seeded, deterministic fault-injection harness for the
// anytime-solving contract: whatever is injected — context cancellation at
// an arbitrary iteration, a panic inside an arbitrary parallel chunk, or
// byte-level corruption of the serialized input — a solve must end in
// exactly one of two states: a typed error, or a solution that passes
// problem.ValidateSolution (possibly flagged Degraded). Anything else — an
// escaped panic, a silently invalid solution, an untyped failure — is a bug
// the harness reports.
//
// Every injection is derived from an explicit seed, so a failing outcome
// reproduces from its (mode, seed) pair alone.
package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tdmroute"
	"tdmroute/internal/par"
	"tdmroute/internal/problem"
)

// Mode selects the fault vector.
type Mode int

const (
	// ModeCancel cancels the solve's context at a seeded point: before
	// the solve starts, via a deadline, or at a seeded LR iteration.
	ModeCancel Mode = iota
	// ModePanic panics inside a seeded parallel chunk entry.
	ModePanic
	// ModeCorrupt corrupts the serialized instance bytes before parsing.
	ModeCorrupt
	// ModeDelta retains a base solve and injects a seeded cancellation
	// into a seeded ECO re-solve of its warm state. The invariant gains a
	// clause: a failed delta must leave the handle poisoned, a successful
	// one must not.
	ModeDelta
)

func (m Mode) String() string {
	switch m {
	case ModeCancel:
		return "cancel"
	case ModePanic:
		return "panic"
	case ModeCorrupt:
		return "corrupt"
	case ModeDelta:
		return "delta"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Outcome is the result of one injection run.
type Outcome struct {
	Mode Mode
	Seed int64
	// In is the instance the solve actually ran on (the parsed corrupted
	// instance for ModeCorrupt; the input instance otherwise). Nil when
	// corruption made the input unparseable.
	In *problem.Instance
	// Res is the solve result, nil when the run ended in an error.
	Res *tdmroute.Response
	// Err is the terminal error, nil when the run produced a result.
	Err error
}

// hookMu serializes ModePanic runs: the par chunk hook is process-global.
var hookMu sync.Mutex

// Run executes one seeded injection against in and returns the outcome.
// The same (in, mode, seed, opt) always injects the same fault at the same
// point.
func Run(in *problem.Instance, mode Mode, seed int64, opt tdmroute.Options) Outcome {
	o := Outcome{Mode: mode, Seed: seed, In: in}
	rng := rand.New(rand.NewSource(seed))
	switch mode {
	case ModeCancel:
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		switch rng.Intn(3) {
		case 0:
			// Cancelled before the solve even starts.
			cancel()
		case 1:
			// Cancelled at a seeded LR iteration boundary — the
			// deterministic injection the incumbent contract is
			// specified against.
			k := rng.Intn(30)
			prev := opt.TDM.Trace
			opt.TDM.Trace = func(iter int, z, lb float64) {
				if prev != nil {
					prev(iter, z, lb)
				}
				if iter >= k {
					cancel()
				}
			}
		default:
			// An already-expired deadline: every stage must cope with
			// a context that is dead on arrival, with
			// context.DeadlineExceeded rather than Canceled.
			dctx, dcancel := context.WithDeadline(ctx, time.Unix(0, 0))
			defer dcancel()
			ctx = dctx
		}
		o.Res, o.Err = tdmroute.Run(ctx, tdmroute.Request{Instance: in, Options: opt})

	case ModePanic:
		hookMu.Lock()
		defer hookMu.Unlock()
		// Panic on the target-th chunk entry, counted across every
		// parallel loop of the solve. One-shot: the recovery fallbacks
		// re-run stages, and a sticky panic would defeat them by design
		// rather than by injection.
		target := int64(1 + rng.Intn(50))
		var count int64
		par.SetChunkHook(func(chunk int) {
			if atomic.AddInt64(&count, 1) == target {
				panic(fmt.Sprintf("chaos: injected panic (seed %d, chunk %d)", seed, chunk))
			}
		})
		defer par.SetChunkHook(nil)
		o.Res, o.Err = tdmroute.Run(context.Background(), tdmroute.Request{Instance: in, Options: opt})

	case ModeDelta:
		// The delta patches its instance in place, so the base solve runs
		// on a clone — the caller's instance stays pristine across seeds.
		work := in.Clone()
		base, err := tdmroute.Run(context.Background(),
			tdmroute.Request{Instance: work, Options: opt, Retain: true})
		if err != nil {
			o.Err = err
			return o
		}
		h := base.Warm
		d := seededDelta(rng, work, h.Routes())
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		switch rng.Intn(3) {
		case 0:
			cancel()
		case 1:
			k := rng.Intn(30)
			prev := opt.TDM.Trace
			opt.TDM.Trace = func(iter int, z, lb float64) {
				if prev != nil {
					prev(iter, z, lb)
				}
				if iter >= k {
					cancel()
				}
			}
		default:
			dctx, dcancel := context.WithDeadline(ctx, time.Unix(0, 0))
			defer dcancel()
			ctx = dctx
		}
		o.In = h.Instance() // the patched instance the solution must satisfy
		o.Res, o.Err = tdmroute.Run(ctx,
			tdmroute.Request{Mode: tdmroute.ModeDelta, Base: h, Delta: d, Options: opt})
		// Poisoning consistency: exactly the failed deltas poison.
		if (o.Err != nil) != (h.Err() != nil) {
			o.Res = nil
			o.Err = fmt.Errorf("chaos delta seed %d: run error %v but handle error %v", seed, o.Err, h.Err())
		}

	case ModeCorrupt:
		var buf bytes.Buffer
		if err := problem.WriteInstance(&buf, in); err != nil {
			o.Err = err
			return o
		}
		data := Corrupt(seed, buf.Bytes())
		parsed, err := problem.ParseInstance("chaos", bytes.NewReader(data))
		if err != nil {
			o.In = nil
			o.Err = err
			return o
		}
		o.In = parsed
		o.Res, o.Err = tdmroute.Run(context.Background(), tdmroute.Request{Instance: parsed, Options: opt})

	default:
		o.Err = fmt.Errorf("chaos: unknown mode %d", mode)
	}
	return o
}

// seededDelta builds a deterministic, valid-by-construction ECO edit: one
// random alive net removed, one 2-pin net added between distinct vertices,
// and congestion bias on one random routed edge.
func seededDelta(rng *rand.Rand, in *problem.Instance, routes tdmroute.Routing) *tdmroute.Delta {
	d := &tdmroute.Delta{}
	var alive []int
	for n := range in.Nets {
		if len(in.Nets[n].Terminals) > 0 {
			alive = append(alive, n)
		}
	}
	if len(alive) > 0 {
		d.RemoveNets = []int{alive[rng.Intn(len(alive))]}
	}
	if nv := in.G.NumVertices(); nv >= 2 {
		a := rng.Intn(nv)
		b := rng.Intn(nv - 1)
		if b >= a {
			b++
		}
		d.AddNets = []tdmroute.Net{{Terminals: []int{a, b}}}
	}
	// Routed edges in first-seen order, so the pick is deterministic.
	seen := make(map[int]bool)
	var routed []int
	for _, es := range routes {
		for _, e := range es {
			if !seen[e] {
				seen[e] = true
				routed = append(routed, e)
			}
		}
	}
	if len(routed) > 0 {
		d.EdgeBias = []tdmroute.EdgeBiasEdit{{Edge: routed[rng.Intn(len(routed))], Delta: 1 + rng.Intn(3)}}
	}
	return d
}

// Corrupt applies a seeded sequence of byte-level mutations — bit flips,
// digit rewrites, token insertions, span deletions, truncation — and
// returns the corrupted copy. Exported so the parser fuzz corpus can seed
// from the same distribution the harness injects.
func Corrupt(seed int64, data []byte) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), data...)
	n := 1 + rng.Intn(4)
	for i := 0; i < n && len(out) > 0; i++ {
		switch rng.Intn(5) {
		case 0: // flip a bit
			p := rng.Intn(len(out))
			out[p] ^= 1 << uint(rng.Intn(8))
		case 1: // rewrite a byte with a digit, sign, or separator
			p := rng.Intn(len(out))
			const alphabet = "0123456789- \n#x"
			out[p] = alphabet[rng.Intn(len(alphabet))]
		case 2: // insert a short token
			p := rng.Intn(len(out) + 1)
			tok := []byte(fmt.Sprintf(" %d ", rng.Intn(1<<30)-(1<<29)))
			out = append(out[:p], append(tok, out[p:]...)...)
		case 3: // delete a span
			p := rng.Intn(len(out))
			q := p + 1 + rng.Intn(16)
			if q > len(out) {
				q = len(out)
			}
			out = append(out[:p], out[q:]...)
		default: // truncate
			out = out[:rng.Intn(len(out)+1)]
		}
	}
	return out
}

// Check asserts the anytime invariant on an outcome: a run ends in a typed
// error or a valid solution, never anything in between. It returns a
// descriptive error when the invariant is violated.
func Check(o Outcome) error {
	if o.Err != nil {
		if o.Res != nil {
			return fmt.Errorf("chaos %s seed %d: both error (%v) and result returned", o.Mode, o.Seed, o.Err)
		}
		return checkTyped(o)
	}
	if o.Res == nil || o.Res.Solution == nil {
		return fmt.Errorf("chaos %s seed %d: no error and no solution", o.Mode, o.Seed)
	}
	if o.In == nil {
		return fmt.Errorf("chaos %s seed %d: result without an instance", o.Mode, o.Seed)
	}
	if err := problem.ValidateSolution(o.In, o.Res.Solution); err != nil {
		return fmt.Errorf("chaos %s seed %d: invalid solution: %v", o.Mode, o.Seed, err)
	}
	if d := o.Res.Degraded; d != nil {
		if d.Cause == nil {
			return fmt.Errorf("chaos %s seed %d: Degraded without a cause", o.Mode, o.Seed)
		}
		if d.Stage == "" {
			return fmt.Errorf("chaos %s seed %d: Degraded without a stage", o.Mode, o.Seed)
		}
		if d.IncumbentGTR != o.Res.Report.GTRMax {
			return fmt.Errorf("chaos %s seed %d: Degraded.IncumbentGTR %d != Report.GTRMax %d",
				o.Mode, o.Seed, d.IncumbentGTR, o.Res.Report.GTRMax)
		}
	}
	return nil
}

// checkTyped verifies that a terminal error is the typed one its mode
// promises, not an arbitrary failure.
func checkTyped(o Outcome) error {
	switch o.Mode {
	case ModeCancel, ModeDelta:
		if !errors.Is(o.Err, context.Canceled) && !errors.Is(o.Err, context.DeadlineExceeded) {
			return fmt.Errorf("chaos %s seed %d: error does not unwrap to a context error: %v", o.Mode, o.Seed, o.Err)
		}
	case ModePanic:
		var pe *par.PanicError
		if !errors.As(o.Err, &pe) {
			return fmt.Errorf("chaos panic seed %d: error does not unwrap to *par.PanicError: %v", o.Seed, o.Err)
		}
	case ModeCorrupt:
		// A corrupt run may fail at parse time (must be a *ParseError)
		// or downstream on a structurally-valid-but-degenerate instance
		// (any typed error from the solver is acceptable; routing a
		// disconnected net, for instance).
		if o.In == nil {
			var pe *problem.ParseError
			if !errors.As(o.Err, &pe) {
				return fmt.Errorf("chaos corrupt seed %d: parse failure is not a *problem.ParseError: %v", o.Seed, o.Err)
			}
		}
	}
	return nil
}
