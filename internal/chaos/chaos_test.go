package chaos

import (
	"bytes"
	"testing"

	"tdmroute"
	"tdmroute/internal/gen"
	"tdmroute/internal/problem"
)

func testInstance(t *testing.T, seed int64) *problem.Instance {
	t.Helper()
	in, err := gen.Generate(gen.Config{
		Name: "chaos-unit", Seed: seed,
		FPGAs: 10, Edges: 18, Nets: 30, Groups: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func testOptions() tdmroute.Options {
	return tdmroute.Options{
		TDM: tdmroute.TDMOptions{Epsilon: 1e-4, MaxIter: 60},
	}
}

// Corrupt must be a pure function of (seed, data).
func TestCorruptDeterministic(t *testing.T) {
	data := []byte("3 2 2 1\n0 1\n1 2\n2 0 2\n2 1 2\n2 0 1\n")
	for seed := int64(0); seed < 50; seed++ {
		a := Corrupt(seed, data)
		b := Corrupt(seed, data)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: corruption not deterministic", seed)
		}
	}
}

// The same cancel injection must reproduce the same incumbent byte for
// byte: cancellation is observed only at deterministic boundaries.
func TestRunCancelDeterministic(t *testing.T) {
	in := testInstance(t, 7)
	for seed := int64(0); seed < 10; seed++ {
		a := Run(in, ModeCancel, seed, testOptions())
		if err := Check(a); err != nil {
			t.Fatal(err)
		}
		b := Run(in, ModeCancel, seed, testOptions())
		if err := Check(b); err != nil {
			t.Fatal(err)
		}
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("seed %d: outcomes diverge: %v vs %v", seed, a.Err, b.Err)
		}
		if a.Res == nil {
			continue
		}
		var ba, bb bytes.Buffer
		if err := problem.WriteSolution(&ba, a.Res.Solution); err != nil {
			t.Fatal(err)
		}
		if err := problem.WriteSolution(&bb, b.Res.Solution); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Fatalf("seed %d: incumbents differ between identical injections", seed)
		}
	}
}

// A mid-LR cancellation must produce a legal incumbent with a populated
// Degraded report, not an error.
func TestRunCancelMidLRDegrades(t *testing.T) {
	in := testInstance(t, 11)
	sawDegraded := false
	for seed := int64(0); seed < 40 && !sawDegraded; seed++ {
		o := Run(in, ModeCancel, seed, testOptions())
		if err := Check(o); err != nil {
			t.Fatal(err)
		}
		if o.Res != nil && o.Res.Degraded != nil {
			sawDegraded = true
			d := o.Res.Degraded
			if d.Stage != tdmroute.StageLR && d.Stage != tdmroute.StageRefine && d.Stage != tdmroute.StageRoute {
				t.Errorf("seed %d: unexpected degradation stage %q", seed, d.Stage)
			}
		}
	}
	if !sawDegraded {
		t.Error("no cancel seed produced a degraded-but-valid incumbent")
	}
}

// A seeded delta injection must be deterministic end to end — the warm
// re-solve observes cancellation only at the same clean boundaries as a
// cold one — and the poisoning clause must hold on every seed (Run itself
// converts a poisoning mismatch into a reported violation).
func TestRunDeltaDeterministic(t *testing.T) {
	in := testInstance(t, 19)
	sawResult, sawError := false, false
	for seed := int64(0); seed < 20; seed++ {
		a := Run(in, ModeDelta, seed, testOptions())
		if err := Check(a); err != nil {
			t.Fatal(err)
		}
		b := Run(in, ModeDelta, seed, testOptions())
		if err := Check(b); err != nil {
			t.Fatal(err)
		}
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("seed %d: outcomes diverge: %v vs %v", seed, a.Err, b.Err)
		}
		if a.Err != nil {
			sawError = true
			continue
		}
		sawResult = true
		var ba, bb bytes.Buffer
		if err := problem.WriteSolution(&ba, a.Res.Solution); err != nil {
			t.Fatal(err)
		}
		if err := problem.WriteSolution(&bb, b.Res.Solution); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Fatalf("seed %d: delta incumbents differ between identical injections", seed)
		}
	}
	if !sawResult {
		t.Error("no delta seed produced a solved outcome")
	}
	if !sawError {
		t.Error("no delta seed produced a typed failure (the poisoning path went unexercised)")
	}
}

// Injected chunk panics must never escape Run.
func TestRunPanicContained(t *testing.T) {
	in := testInstance(t, 13)
	for seed := int64(0); seed < 20; seed++ {
		o := Run(in, ModePanic, seed, tdmroute.Options{
			TDM:     tdmroute.TDMOptions{Epsilon: 1e-4, MaxIter: 40},
			Workers: 4,
		})
		if err := Check(o); err != nil {
			t.Fatal(err)
		}
	}
}

// Corrupted inputs must be rejected with a typed parse error or solved to a
// valid solution; nothing in between.
func TestRunCorrupt(t *testing.T) {
	in := testInstance(t, 17)
	for seed := int64(0); seed < 30; seed++ {
		o := Run(in, ModeCorrupt, seed, testOptions())
		if err := Check(o); err != nil {
			t.Fatal(err)
		}
	}
}
