package chaos

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
)

// Gate wraps one backend's HTTP handler with the serve-tier fault vectors
// the coordinator chaos suite injects: process death mid-stream (the
// connection is severed after a counted number of LR progress events and
// every later request dies too, like a kill -9), a network partition (the
// connection stays open but no bytes ever move), and response corruption
// (solution bodies are rewritten through the same seeded mutator the parser
// harness uses). Faults are armed and cleared at runtime so a test can
// stage them mid-job.
//
// A Gate is deterministic given its arming sequence: the k-th LR event
// kills, the seed fixes the corruption — a failing chaos outcome reproduces
// from the sweep's seed alone.
type Gate struct {
	inner http.Handler

	mu          sync.Mutex
	dead        bool
	killAfter   int // remaining LR events until the process "dies"; <0 disarmed
	partitioned bool
	corruptSeed int64 // 0 disarmed
}

// NewGate wraps inner with a disarmed gate.
func NewGate(inner http.Handler) *Gate {
	return &Gate{inner: inner, killAfter: -1}
}

// KillAfterLR arms the kill vector: after n more LR progress events have
// been written to event streams, the writing connection is severed and the
// backend plays dead for every request after that.
func (g *Gate) KillAfterLR(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.killAfter = n
}

// Partition sets the blackhole vector: requests (and writes on streams
// already open) hang until the peer gives up. Unlike a kill, the process is
// "alive" — turning the partition off heals it completely.
func (g *Gate) Partition(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.partitioned = on
}

// CorruptSolutions arms the corruption vector: solution response bodies are
// passed through Corrupt(seed, body). Zero disarms.
func (g *Gate) CorruptSolutions(seed int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.corruptSeed = seed
}

// Dead reports whether the kill vector has fired.
func (g *Gate) Dead() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dead
}

// Revive clears a fired kill, as if the process were restarted. Jobs the
// old "process" was running are still gone — the wrapped server never died,
// so this models a restart with state loss only at the HTTP boundary.
func (g *Gate) Revive() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.dead = false
	g.killAfter = -1
}

// kill marks the backend dead. Reported back to the caller so the write
// path can sever its own connection.
func (g *Gate) kill() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.dead = true
	g.killAfter = -1
}

// spendLR consumes n LR events from the kill budget and reports whether the
// budget just ran out (the caller must die).
func (g *Gate) spendLR(n int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.killAfter < 0 || n == 0 {
		return false
	}
	g.killAfter -= n
	return g.killAfter < 0
}

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	dead, partitioned, corrupt := g.dead, g.partitioned, g.corruptSeed
	g.mu.Unlock()
	if dead {
		// A dead process answers nothing: abort the connection so the
		// client sees a transport error, never an HTTP status.
		panic(http.ErrAbortHandler)
	}
	if partitioned {
		// Drain the body first: net/http only watches the connection for a
		// client disconnect once the request body has been consumed, and the
		// blackhole must still unblock (and free its connection) when the
		// peer times out and hangs up.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		panic(http.ErrAbortHandler)
	}
	if corrupt != 0 && strings.HasSuffix(r.URL.Path, "/solution") {
		rec := httptest.NewRecorder()
		g.inner.ServeHTTP(rec, r)
		for k, vs := range rec.Header() {
			if k == "Content-Length" {
				continue
			}
			w.Header()[k] = vs
		}
		body := Corrupt(corrupt, rec.Body.Bytes())
		w.WriteHeader(rec.Code)
		w.Write(body)
		return
	}
	if strings.HasSuffix(r.URL.Path, "/events") {
		// Event streams are wrapped unconditionally so a kill or partition
		// armed mid-job reaches connections that are already open.
		w = &killWriter{ResponseWriter: w, gate: g, req: r}
	}
	g.inner.ServeHTTP(w, r)
}

// killWriter counts LR progress events crossing one event-stream connection
// and severs it — taking the whole gate down with it — when the gate's kill
// budget runs out. The partition vector is also honored per-write, so a
// partition armed mid-stream silences streams that are already open.
type killWriter struct {
	http.ResponseWriter
	gate *Gate
	req  *http.Request
}

var lrFrame = []byte("event: lr\n")

func (kw *killWriter) Write(p []byte) (int, error) {
	kw.gate.mu.Lock()
	partitioned := kw.gate.partitioned
	kw.gate.mu.Unlock()
	if partitioned {
		// The write never completes; the stream stays open and silent
		// until the peer gives up and closes the connection.
		<-kw.req.Context().Done()
		panic(http.ErrAbortHandler)
	}
	if kw.gate.spendLR(bytes.Count(p, lrFrame)) {
		kw.gate.kill()
		panic(http.ErrAbortHandler)
	}
	return kw.ResponseWriter.Write(p)
}

func (kw *killWriter) Flush() {
	if fl, ok := kw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}
