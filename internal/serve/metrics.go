package serve

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"tdmroute"
)

// outcome classifies how a job ended, for the /metrics counters.
type outcome int

const (
	outcomeDone outcome = iota
	outcomeDegraded
	outcomeCanceled
	outcomeFailed
	outcomeRejected
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"done", "degraded", "canceled", "failed", "rejected"}

// stageSecondsBounds are the histogram bucket upper bounds for per-stage
// wall clocks, in seconds.
var stageSecondsBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60}

// gtrBounds are the bucket upper bounds for the GTR_max distribution.
var gtrBounds = []float64{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// histogram is a fixed-bound cumulative histogram.
type histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; the last bucket is +Inf
	sum    float64
	n      int64
}

func newHistogram(bounds []float64) histogram {
	return histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// write renders the histogram in the text exposition format: cumulative
// buckets, sum, and count. labels is the fixed label fragment without the
// le pair ("" or `stage="route",`). It renders into an in-memory buffer —
// never a socket — because callers hold the metrics mutex (mutexhold).
func (h *histogram) write(buf *bytes.Buffer, name, labels string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(buf, "%s_bucket{%sle=%q} %d\n", name, labels, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(buf, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	base := trimComma(labels)
	if base != "" {
		base = "{" + base + "}"
	}
	fmt.Fprintf(buf, "%s_sum%s %s\n", name, base, formatFloat(h.sum))
	fmt.Fprintf(buf, "%s_count%s %d\n", name, base, h.n)
}

func trimComma(labels string) string {
	if n := len(labels); n > 0 && labels[n-1] == ',' {
		return labels[:n-1]
	}
	return labels
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// metrics aggregates the server's counters and distributions. Counters that
// HTTP handlers bump without a finished job (accepted, submitRejected) are
// atomics; everything observed per finished job shares one mutex.
type metrics struct {
	accepted       atomic.Int64
	submitRejected atomic.Int64
	// Warm-session lifecycle: retained on a finished retain=1 job, evicted
	// by the capacity bound, dropped after a poisoning delta failure, and
	// conflicts (409s) from concurrent deltas on one session.
	warmRetained atomic.Int64
	warmEvicted  atomic.Int64
	warmDropped  atomic.Int64
	warmConflict atomic.Int64

	mu       sync.Mutex
	outcomes [numOutcomes]int64
	route    histogram
	lr       histogram
	legal    histogram
	gtr      histogram
}

func (m *metrics) init() {
	m.route = newHistogram(stageSecondsBounds)
	m.lr = newHistogram(stageSecondsBounds)
	m.legal = newHistogram(stageSecondsBounds)
	m.gtr = newHistogram(gtrBounds)
}

// observe records one finished job. resp is nil for jobs that produced no
// response (failed, canceled before an incumbent, rejected).
func (m *metrics) observe(o outcome, resp *tdmroute.Response) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.outcomes[o]++
	if resp == nil {
		return
	}
	m.route.observe(resp.Times.Route.Seconds())
	m.lr.observe(resp.Times.LR.Seconds())
	m.legal.observe(resp.Times.LegalRefine.Seconds())
	m.gtr.observe(float64(resp.Report.GTRMax))
}

// finished returns the number of jobs that reached a terminal state.
func (m *metrics) finished() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, c := range m.outcomes {
		n += c
	}
	return n
}

func (m *metrics) summary() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("accepted %d, done %d, degraded %d, canceled %d, failed %d, rejected %d",
		m.accepted.Load(), m.outcomes[outcomeDone], m.outcomes[outcomeDegraded],
		m.outcomes[outcomeCanceled], m.outcomes[outcomeFailed], m.outcomes[outcomeRejected])
}

// writeMetrics renders the full exposition. The server passes its live
// queue/worker gauges so they reconcile with the counters: at quiescence
// accepted == sum(outcomes) + queued + running.
//
// w is typically an http.ResponseWriter — a socket a slow peer can stall —
// so the exposition is rendered into an in-memory buffer and m.mu is
// released before the single w.Write. Holding the mutex across the socket
// write would let one slow scraper block every worker calling observe
// (the bug class mutexhold exists to catch).
func (m *metrics) write(w io.Writer, queueDepth, queueCap, running, workers, warmSessions int, draining bool) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# tdmroutd metrics\n")
	fmt.Fprintf(&buf, "tdmroutd_up 1\n")
	fmt.Fprintf(&buf, "tdmroutd_draining %d\n", boolInt(draining))
	fmt.Fprintf(&buf, "tdmroutd_workers %d\n", workers)
	fmt.Fprintf(&buf, "tdmroutd_queue_capacity %d\n", queueCap)
	fmt.Fprintf(&buf, "tdmroutd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(&buf, "tdmroutd_jobs_running %d\n", running)
	fmt.Fprintf(&buf, "tdmroutd_jobs_accepted_total %d\n", m.accepted.Load())
	fmt.Fprintf(&buf, "tdmroutd_submit_rejected_total %d\n", m.submitRejected.Load())
	fmt.Fprintf(&buf, "tdmroutd_warm_sessions %d\n", warmSessions)
	fmt.Fprintf(&buf, "tdmroutd_warm_retained_total %d\n", m.warmRetained.Load())
	fmt.Fprintf(&buf, "tdmroutd_warm_evicted_total %d\n", m.warmEvicted.Load())
	fmt.Fprintf(&buf, "tdmroutd_warm_dropped_total %d\n", m.warmDropped.Load())
	fmt.Fprintf(&buf, "tdmroutd_warm_conflict_total %d\n", m.warmConflict.Load())
	m.mu.Lock()
	for o := outcome(0); o < numOutcomes; o++ {
		fmt.Fprintf(&buf, "tdmroutd_jobs_total{outcome=%q} %d\n", outcomeNames[o], m.outcomes[o])
	}
	m.route.write(&buf, "tdmroutd_stage_seconds", `stage="route",`)
	m.lr.write(&buf, "tdmroutd_stage_seconds", `stage="lr",`)
	m.legal.write(&buf, "tdmroutd_stage_seconds", `stage="legal_refine",`)
	m.gtr.write(&buf, "tdmroutd_gtr", "")
	m.mu.Unlock()
	w.Write(buf.Bytes())
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
