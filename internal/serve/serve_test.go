package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tdmroute"
	"tdmroute/internal/gen"
	"tdmroute/internal/par"
	"tdmroute/internal/problem"
)

func testInstance(t *testing.T) *tdmroute.Instance {
	t.Helper()
	cfg, err := gen.SuiteConfig("synopsys01", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Name = "synopsys01"
	return in
}

// startServer runs a server over httptest and returns its typed client.
// Cleanup drains the pool before closing the listener.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, &Client{BaseURL: ts.URL}
}

func solutionText(t *testing.T, sol *tdmroute.Solution) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := problem.WriteSolution(&buf, sol); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// metricValue extracts one sample (metric name including any label set)
// from the text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestServerEndToEnd drives the whole API: a dozen jobs across all three
// wire formats and all three modes run concurrently on an 8-worker pool,
// every solution validates, single-mode solutions are byte-identical to a
// local solve, and the metrics counters reconcile with the submissions.
func TestServerEndToEnd(t *testing.T) {
	in := testInstance(t)
	ref, err := tdmroute.Run(context.Background(), tdmroute.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	refText := solutionText(t, ref.Solution)
	refIter, err := tdmroute.Run(context.Background(),
		tdmroute.Request{Instance: in, Mode: tdmroute.ModeIterative, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	refIterText := solutionText(t, refIter.Solution)

	_, c := startServer(t, Config{Workers: 8, QueueDepth: 32})
	ctx := context.Background()

	subs := []struct {
		label string
		req   SubmitRequest
	}{
		{"single-text", SubmitRequest{Instance: in, Format: FormatText}},
		{"single-json", SubmitRequest{Instance: in, Format: FormatJSON}},
		{"single-binary", SubmitRequest{Instance: in, Format: FormatBinary}},
		{"iterative", SubmitRequest{Instance: in, Mode: tdmroute.ModeIterative, Rounds: 2}},
		{"assign", SubmitRequest{Instance: in, Mode: tdmroute.ModeAssignOnly,
			Routing: ref.Solution.Routes, Format: FormatJSON}},
		{"assign-text", SubmitRequest{Instance: in, Mode: tdmroute.ModeAssignOnly,
			Routing: ref.Solution.Routes, Format: FormatText}},
	}
	const jobs = 12
	ids := make([]string, jobs)
	labels := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		sub := subs[i%len(subs)]
		st, err := c.Submit(ctx, sub.req)
		if err != nil {
			t.Fatalf("submit %s: %v", sub.label, err)
		}
		ids[i], labels[i] = st.ID, sub.label
	}

	formats := []Format{FormatText, FormatJSON, FormatBinary}
	for i, id := range ids {
		st, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s (%s): %v", id, labels[i], err)
		}
		if st.State != StateDone {
			t.Fatalf("%s (%s): state %s, error %q", id, labels[i], st.State, st.Error)
		}
		if st.Response == nil || st.Response.Degraded != nil {
			t.Fatalf("%s (%s): response %+v", id, labels[i], st.Response)
		}
		if st.Telemetry == nil || len(st.Telemetry.SolutionSHA256) != 64 {
			t.Fatalf("%s (%s): missing telemetry: %+v", id, labels[i], st.Telemetry)
		}
		sol, err := c.Solution(ctx, id, formats[i%len(formats)])
		if err != nil {
			t.Fatalf("%s (%s): solution: %v", id, labels[i], err)
		}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Fatalf("%s (%s): invalid solution: %v", id, labels[i], err)
		}
		// Every job reproduces a local reference pipeline on the same
		// instance and options, so the wire round-trip must be
		// byte-identical to the matching local solve.
		want := refText
		if labels[i] == "iterative" {
			want = refIterText
		}
		if got := solutionText(t, sol); !bytes.Equal(got, want) {
			t.Fatalf("%s (%s): solution bytes diverged from local solve", id, labels[i])
		}
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "tdmroutd_jobs_accepted_total"); got != jobs {
		t.Errorf("accepted_total = %v, want %d", got, jobs)
	}
	if got := metricValue(t, metrics, `tdmroutd_jobs_total{outcome="done"}`); got != jobs {
		t.Errorf(`jobs_total{done} = %v, want %d`, got, jobs)
	}
	if got := metricValue(t, metrics, `tdmroutd_stage_seconds_count{stage="lr"}`); got != jobs {
		t.Errorf("lr stage histogram count = %v, want %d", got, jobs)
	}
	if got := metricValue(t, metrics, "tdmroutd_gtr_count"); got != jobs {
		t.Errorf("gtr histogram count = %v, want %d", got, jobs)
	}
	if got := metricValue(t, metrics, "tdmroutd_queue_depth"); got != 0 {
		t.Errorf("queue_depth = %v, want 0", got)
	}
	if ok, err := c.Healthy(ctx); err != nil || !ok {
		t.Errorf("Healthy = %v, %v; want true", ok, err)
	}
}

// errStopStream is the sentinel a test callback uses to leave Stream early.
var errStopStream = errors.New("stop streaming")

// slowSubmit is a submission tuned to spend a long time in LR so tests can
// deterministically interrupt it mid-iteration.
func slowSubmit(in *tdmroute.Instance) SubmitRequest {
	return SubmitRequest{Instance: in, Epsilon: 1e-12, MaxIter: 2_000_000}
}

// awaitLR streams the job until its first LR iteration event, proving the
// solve is mid-LR.
func awaitLR(t *testing.T, c *Client, id string) {
	t.Helper()
	err := c.Stream(context.Background(), id, func(e Event) error {
		if e.Type == "lr" {
			return errStopStream
		}
		if e.Type == "done" {
			return fmt.Errorf("job %s finished before its first LR event (state %s)", id, e.State)
		}
		return nil
	})
	if !errors.Is(err, errStopStream) {
		t.Fatal(err)
	}
}

// TestServerCancelMidLR pins the anytime contract over the wire: DELETE
// while the solver is mid-LR yields a legal best-so-far solution with
// Degraded populated, not a lost job.
func TestServerCancelMidLR(t *testing.T) {
	in := testInstance(t)
	_, c := startServer(t, Config{Workers: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, slowSubmit(in))
	if err != nil {
		t.Fatal(err)
	}
	awaitLR(t, c, st.ID)
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done with a best-so-far incumbent", final.State, final.Error)
	}
	if final.Response == nil || final.Response.Degraded == nil {
		t.Fatal("cancelled job did not report Degraded")
	}
	if c := final.Response.Degraded.Cause; c == nil || !strings.Contains(c.Error(), context.Canceled.Error()) {
		t.Fatalf("Degraded.Cause = %v, want context canceled", c)
	}
	sol, err := c.Solution(ctx, st.ID, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateSolution(in, sol); err != nil {
		t.Fatalf("best-so-far solution invalid: %v", err)
	}
}

// TestServerDeadline checks per-job deadlines: an expiring deadline
// degrades the job to its incumbent with a deadline cause.
func TestServerDeadline(t *testing.T) {
	in := testInstance(t)
	_, c := startServer(t, Config{Workers: 1})
	ctx := context.Background()

	req := slowSubmit(in)
	req.Deadline = 150 * time.Millisecond
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Response == nil || final.Response.Degraded == nil {
		t.Fatalf("deadline job: state %s, response %+v; want done + Degraded", final.State, final.Response)
	}
	if c := final.Response.Degraded.Cause; c == nil || !strings.Contains(c.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("Degraded.Cause = %v, want deadline exceeded", c)
	}
	sol, err := c.Solution(ctx, st.ID, FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateSolution(in, sol); err != nil {
		t.Fatalf("deadline incumbent invalid: %v", err)
	}
}

// TestServerPanicContainment injects a panic into a parallel chunk of a
// running job, chaos-style: whatever the outcome (a typed failure or a
// recovered, valid solution), the worker pool must survive and keep
// serving.
func TestServerPanicContainment(t *testing.T) {
	in := testInstance(t)
	_, c := startServer(t, Config{Workers: 1})
	ctx := context.Background()

	var count int64
	par.SetChunkHook(func(chunk int) {
		if atomic.AddInt64(&count, 1) == 3 {
			panic("serve test: injected panic")
		}
	})
	defer par.SetChunkHook(nil)
	st, err := c.Submit(ctx, SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	par.SetChunkHook(nil)
	switch final.State {
	case StateDone:
		sol, err := c.Solution(ctx, st.ID, FormatText)
		if err != nil {
			t.Fatal(err)
		}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Fatalf("recovered solution invalid: %v", err)
		}
	case StateFailed:
		if !strings.Contains(final.Error, "panic") {
			t.Fatalf("failed job's error does not name the panic: %q", final.Error)
		}
	default:
		t.Fatalf("state = %s, want done or failed", final.State)
	}

	// The worker survived the panic: the next job must complete normally.
	st2, err := c.Submit(ctx, SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != StateDone || final2.Response == nil || final2.Response.Degraded != nil {
		t.Fatalf("post-panic job: state %s, error %q", final2.State, final2.Error)
	}
}

// TestServerQueueFull checks backpressure with no workers consuming: the
// queue bound rejects with 503 + Retry-After, DELETE cancels a queued job
// in place, and a drain rejects the rest — every accepted job still reaches
// a terminal state the metrics account for.
func TestServerQueueFull(t *testing.T) {
	in := testInstance(t)
	s, c := startServer(t, Config{Workers: -1, QueueDepth: 2})
	ctx := context.Background()

	st1, err := c.Submit(ctx, SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Submit(ctx, SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, SubmitRequest{Instance: in})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("third submit: err = %v, want a 503 APIError", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Errorf("503 rejection carries no Retry-After (got %v)", apiErr.RetryAfter)
	}

	if err := c.Cancel(ctx, st1.ID); err != nil {
		t.Fatal(err)
	}
	got1, err := c.Status(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got1.State != StateCanceled {
		t.Fatalf("cancelled queued job state = %s, want canceled", got1.State)
	}

	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		t.Fatal(err)
	}
	got2, err := c.Status(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got2.State != StateRejected {
		t.Fatalf("drained queued job state = %s, want rejected", got2.State)
	}
	if _, err := c.Submit(ctx, SubmitRequest{Instance: in}); !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("submit while draining: err = %v, want a 503 APIError", err)
	}
	if ok, _ := c.Healthy(ctx); ok {
		t.Error("Healthy = true on a draining server")
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "tdmroutd_jobs_accepted_total"); got != 2 {
		t.Errorf("accepted_total = %v, want 2", got)
	}
	if got := metricValue(t, metrics, "tdmroutd_submit_rejected_total"); got != 2 {
		t.Errorf("submit_rejected_total = %v, want 2", got)
	}
	if got := metricValue(t, metrics, `tdmroutd_jobs_total{outcome="canceled"}`); got != 1 {
		t.Errorf(`jobs_total{canceled} = %v, want 1`, got)
	}
	if got := metricValue(t, metrics, `tdmroutd_jobs_total{outcome="rejected"}`); got != 1 {
		t.Errorf(`jobs_total{rejected} = %v, want 1`, got)
	}
	if got := metricValue(t, metrics, "tdmroutd_draining"); got != 1 {
		t.Errorf("draining = %v, want 1", got)
	}
}

// TestServerDrainBestSoFar is the graceful-drain contract: Shutdown lets
// the in-flight job finish with its best-so-far incumbent, rejects the
// queued one, and loses nothing.
func TestServerDrainBestSoFar(t *testing.T) {
	in := testInstance(t)
	s, c := startServer(t, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	running, err := c.Submit(ctx, slowSubmit(in))
	if err != nil {
		t.Fatal(err)
	}
	awaitLR(t, c, running.ID)
	queued, err := c.Submit(ctx, slowSubmit(in))
	if err != nil {
		t.Fatal(err)
	}

	dctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		t.Fatal(err)
	}

	final, err := c.Status(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Response == nil || final.Response.Degraded == nil {
		t.Fatalf("drained in-flight job: state %s, error %q; want done + Degraded", final.State, final.Error)
	}
	sol, err := c.Solution(ctx, running.ID, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if err := problem.ValidateSolution(in, sol); err != nil {
		t.Fatalf("drained incumbent invalid: %v", err)
	}

	finalQ, err := c.Status(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if finalQ.State != StateRejected {
		t.Fatalf("queued job after drain: state %s, want rejected", finalQ.State)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	accepted := metricValue(t, metrics, "tdmroutd_jobs_accepted_total")
	terminal := metricValue(t, metrics, `tdmroutd_jobs_total{outcome="done"}`) +
		metricValue(t, metrics, `tdmroutd_jobs_total{outcome="degraded"}`) +
		metricValue(t, metrics, `tdmroutd_jobs_total{outcome="canceled"}`) +
		metricValue(t, metrics, `tdmroutd_jobs_total{outcome="failed"}`) +
		metricValue(t, metrics, `tdmroutd_jobs_total{outcome="rejected"}`)
	if accepted != terminal {
		t.Errorf("after drain, accepted (%v) != terminal outcomes (%v): a job was lost silently", accepted, terminal)
	}
}

// TestServerSubmitValidation covers malformed submissions.
func TestServerSubmitValidation(t *testing.T) {
	in := testInstance(t)
	_, c := startServer(t, Config{Workers: 1})
	ctx := context.Background()

	var apiErr *APIError
	// Assign mode without a routing part.
	_, err := c.Submit(ctx, SubmitRequest{Instance: in, Mode: tdmroute.ModeAssignOnly})
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("assign without routing: err = %v, want 400", err)
	}
	// Unknown job id.
	if _, err := c.Status(ctx, "j9999999"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("unknown id: err = %v, want 404", err)
	}
	// Garbage instance body.
	resp, err := c.http().Post(c.BaseURL+"/v1/jobs", "text/plain", strings.NewReader("not an instance"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("garbage instance: status %d, want 400", resp.StatusCode)
	}
	// Solution of an unfinished job conflicts rather than blocks.
	st, err := c.Submit(ctx, slowSubmit(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solution(ctx, st.ID, FormatText); !errors.As(err, &apiErr) || apiErr.Status != 409 {
		t.Errorf("solution of running job: err = %v, want 409", err)
	}
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}
