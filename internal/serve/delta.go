package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"tdmroute"
)

// DeltaDoc is the wire form of a tdmroute.Delta, posted as JSON to
// /v1/jobs/{id}/delta. The target id names a finished job submitted with
// retain=1; its warm solver session is node-resident, so delta jobs are
// pinned to the server that solved the base job.
type DeltaDoc struct {
	AddNets     []DeltaNetDoc  `json:"add_nets,omitempty"`
	RemoveNets  []int          `json:"remove_nets,omitempty"`
	GroupAdd    []GroupEditDoc `json:"group_add,omitempty"`
	GroupRemove []GroupEditDoc `json:"group_remove,omitempty"`
	EdgeBias    []EdgeBiasDoc  `json:"edge_bias,omitempty"`
}

// DeltaNetDoc is one net added by a delta.
type DeltaNetDoc struct {
	Terminals []int `json:"terminals"`
	Groups    []int `json:"groups,omitempty"`
}

// GroupEditDoc adds or removes one net from one NetGroup.
type GroupEditDoc struct {
	Group int `json:"group"`
	Net   int `json:"net"`
}

// EdgeBiasDoc adjusts the phantom congestion of one FPGA-graph edge.
type EdgeBiasDoc struct {
	Edge  int `json:"edge"`
	Delta int `json:"delta"`
}

// toDelta converts the wire form to the solver's delta.
func (d *DeltaDoc) toDelta() *tdmroute.Delta {
	out := &tdmroute.Delta{RemoveNets: d.RemoveNets}
	for _, n := range d.AddNets {
		out.AddNets = append(out.AddNets, tdmroute.Net{Terminals: n.Terminals, Groups: n.Groups})
	}
	for _, ge := range d.GroupAdd {
		out.GroupAdd = append(out.GroupAdd, tdmroute.GroupEdit{Group: ge.Group, Net: ge.Net})
	}
	for _, ge := range d.GroupRemove {
		out.GroupRemove = append(out.GroupRemove, tdmroute.GroupEdit{Group: ge.Group, Net: ge.Net})
	}
	for _, eb := range d.EdgeBias {
		out.EdgeBias = append(out.EdgeBias, tdmroute.EdgeBiasEdit{Edge: eb.Edge, Delta: eb.Delta})
	}
	return out
}

// handleDelta implements POST /v1/jobs/{id}/delta: acquire the base job's
// warm session exclusively, queue a ModeDelta job over it, and release (or,
// after a poisoning failure, drop) the session when the job is terminal.
// Status codes spell out why a delta cannot run: 404 for an unknown base
// job, 409 while the base is unfinished or another delta holds the session,
// 410 when the session is gone (not retained, evicted, or dropped).
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.submitRejected.Add(1)
		s.unavailable(w, "server is draining")
		return
	}
	base := s.jobFor(w, r)
	if base == nil {
		return
	}
	if st := base.currentState(); !st.Terminal() {
		httpError(w, http.StatusConflict, "base job %s is %s; deltas target finished jobs", base.id, st)
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var doc DeltaDoc
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		httpError(w, http.StatusBadRequest, "bad delta body: %v", err)
		return
	}
	var deadline time.Duration
	if v := r.URL.Query().Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, "bad deadline %q", v)
			return
		}
		deadline = d
	}

	h, found, busy := s.warm.acquire(base.id)
	if busy {
		s.metrics.warmConflict.Add(1)
		httpError(w, http.StatusConflict, "another delta is running on job %s's warm session", base.id)
		return
	}
	if !found {
		httpError(w, http.StatusGone, "job %s has no warm session (submit with retain=1; sessions can be evicted or dropped)", base.id)
		return
	}

	req := tdmroute.Request{
		Instance: h.Instance(),
		Mode:     tdmroute.ModeDelta,
		Base:     h,
		Delta:    doc.toDelta(),
		Options:  s.cfg.SolveOptions,
	}
	baseID := base.id
	j, ok := s.submit(req, deadline, func(j *job) {
		j.baseID = baseID
		j.onFinish = func() {
			if h.Err() != nil {
				// The failure left the session mid-patch; it has no legal
				// topology to offer, so it is dropped rather than reused.
				s.warm.drop(baseID)
				s.metrics.warmDropped.Add(1)
				s.logf("job %s: warm session of %s dropped: %v", j.id, baseID, h.Err())
			} else {
				s.warm.release(baseID)
			}
		}
	})
	if !ok {
		s.warm.release(baseID)
		if s.draining.Load() {
			s.unavailable(w, "server is draining")
		} else {
			s.unavailable(w, "job queue is full")
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(s.statusOf(j))
}
