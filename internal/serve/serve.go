// Package serve is the solver-as-a-service core behind cmd/tdmroutd: a
// stdlib-only HTTP job server wrapping tdmroute.Run. Jobs enter a bounded
// queue and are solved by a fixed worker pool; each job runs under its own
// context with an optional deadline, so cancellation (DELETE) and deadline
// expiry degrade a run to its best-so-far legal incumbent through the
// package's anytime machinery instead of losing it. Progress (feedback
// rounds and LR iterations) streams over SSE, worker panics are contained
// per job by par.Capture, and a draining Shutdown finishes in-flight jobs
// with their incumbents while rejecting queued and newly submitted ones
// with Retry-After.
//
// Endpoints:
//
//	POST   /v1/jobs             submit an instance (text, JSON, or binary;
//	                            multipart with a fixed routing for assign mode)
//	GET    /v1/jobs/{id}        job status + response + telemetry
//	GET    /v1/jobs/{id}/events progress stream (SSE)
//	GET    /v1/jobs/{id}/solution solution in any solution format
//	DELETE /v1/jobs/{id}        cancel (running jobs keep their incumbent)
//	GET    /metrics             text metrics: queue depth, jobs by outcome,
//	                            per-stage wall histograms, GTR distribution
//	GET    /healthz             liveness (also reports draining)
//
// The raw concurrency in this package (worker goroutines, the queue
// channel, event broadcast channels) is server plumbing, not solver
// parallelism; solver determinism is untouched because every solve still
// runs through tdmroute.Run. Each primitive carries a lint:ignore rawgo
// justification.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tdmroute"
	"tdmroute/internal/exp"
	"tdmroute/internal/par"
)

// Config tunes the server.
type Config struct {
	// Workers is the solve worker pool size: the number of jobs in flight
	// at once. Zero selects 2; negative starts no workers (jobs queue
	// until Shutdown rejects them — useful for drain rehearsals and
	// tests).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker; submissions beyond
	// it are rejected with 503 and Retry-After. Zero selects 16.
	QueueDepth int
	// DefaultDeadline applies to jobs submitted without one (0 = none).
	DefaultDeadline time.Duration
	// MaxDeadline clamps per-job deadlines; jobs without a deadline get
	// it too (0 = unlimited).
	MaxDeadline time.Duration
	// MaxBodyBytes caps the request body of a submission. Zero selects
	// 64 MiB.
	MaxBodyBytes int64
	// RetryAfter is the Retry-After value on 503 rejections. Zero
	// selects 1s.
	RetryAfter time.Duration
	// MaxWarmSessions bounds the warm solver sessions retained for delta
	// re-solves (?retain=1 submissions). Retaining beyond the bound evicts
	// the least recently used idle session. Zero selects 4; negative
	// disables retention.
	MaxWarmSessions int
	// SolveOptions is the base solver configuration; per-job query
	// parameters (epsilon, maxiter, ripup, workers, pow2) override it.
	SolveOptions tdmroute.Options
	// Logf, when non-nil, receives one line per job transition.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxWarmSessions == 0 {
		c.MaxWarmSessions = 4
	}
	return c
}

// Server is the job server. Create it with New, expose Handler over HTTP,
// and stop it with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	queue chan *job
	// stopc closes when Shutdown begins: workers stop picking up jobs.
	stopc chan struct{}
	//lint:ignore rawgo worker-pool lifecycle accounting, not solver parallelism: Shutdown waits for workers to finish their in-flight jobs
	wg       sync.WaitGroup
	draining atomic.Bool
	stopOnce sync.Once

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int

	warm    *warmRegistry
	metrics metrics
}

// New starts a server: the worker pool runs until Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		mux:  http.NewServeMux(),
		jobs: map[string]*job{},
		//lint:ignore rawgo bounded job queue, not solver parallelism: backpressure boundary between HTTP submission and the worker pool
		queue: make(chan *job, cfg.QueueDepth),
		//lint:ignore rawgo shutdown signal channel, not solver parallelism: closing it stops the worker pool
		stopc: make(chan struct{}),
		warm:  newWarmRegistry(cfg.MaxWarmSessions),
	}
	s.metrics.init()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		//lint:ignore rawgo solve worker pool, not solver parallelism: each worker runs whole jobs through tdmroute.Run, whose internal parallelism stays in internal/par
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// register assigns an id and tracks the job; enqueue must already have
// succeeded. Callers hold s.mu.
func (s *Server) registerLocked(j *job) {
	s.jobs[j.id] = j
}

// lookup finds a job by id.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// submit queues a new job. setup, when non-nil, configures the job (delta
// base id, finish hook) before it becomes visible to any worker. It returns
// false when the server is draining or the queue is full.
func (s *Server) submit(req tdmroute.Request, deadline time.Duration, setup func(*job)) (*job, bool) {
	deadline = s.clampDeadline(deadline)
	s.mu.Lock()
	defer s.mu.Unlock()
	// The draining check and the enqueue happen under one lock against
	// Shutdown, so no job can slip into the queue after the drain sweep.
	if s.draining.Load() {
		s.metrics.submitRejected.Add(1)
		return nil, false
	}
	s.nextID++
	j := newJob(jobID(s.nextID), req, deadline)
	if setup != nil {
		setup(j)
	}
	select {
	case s.queue <- j:
	default:
		s.metrics.submitRejected.Add(1)
		return nil, false
	}
	s.registerLocked(j)
	s.metrics.accepted.Add(1)
	s.logf("job %s: queued (mode %s, deadline %v)", j.id, req.Mode, deadline)
	return j, true
}

func (s *Server) clampDeadline(d time.Duration) time.Duration {
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	return d
}

func jobID(n int) string {
	// Zero-padded to seven digits so lexical and submission order agree in
	// listings; ids beyond that simply grow a digit. (A fixed-width buffer
	// here once truncated ids above 9,999,999 to their low seven digits,
	// colliding with earlier jobs.)
	return fmt.Sprintf("j%07d", n)
}

// worker is one pool goroutine: it runs jobs until Shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopc:
			return
		case j := <-s.queue:
			if s.draining.Load() {
				s.reject(j)
				continue
			}
			s.runJob(j)
		}
	}
}

// runJob executes one job under its own context and records the outcome.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	if j.deadline > 0 {
		cancel()
		ctx, cancel = context.WithTimeout(context.Background(), j.deadline)
	}
	defer cancel()
	if !j.begin(cancel) {
		// Cancelled or rejected while queued; already terminal.
		return
	}
	// A drain that started between this worker's dequeue and begin() has
	// already swept the running jobs — this one was still queued then and
	// would run to completion un-cancelled. Observing the drain here closes
	// that window: the job degrades to its best-so-far incumbent like every
	// other in-flight job.
	if s.draining.Load() {
		cancel()
	}
	req := j.req
	req.OnProgress = j.progress
	var resp *tdmroute.Response
	// Contain any panic that escapes the solve: the job fails, the
	// worker survives, and the server keeps serving.
	err := par.Capture(func() error {
		var rerr error
		resp, rerr = tdmroute.Run(ctx, req)
		return rerr
	})
	s.finishJob(j, resp, err)
}

// finishJob classifies a finished solve and records it. An interrupted run
// that still produced a legal incumbent arrives as resp with Degraded set
// and a nil error; an error can still ride along with an incumbent (a
// ModeIterative hard failure after successful rounds), and only runs with no
// possible incumbent lose their response.
func (s *Server) finishJob(j *job, resp *tdmroute.Response, err error) {
	state := StateDone
	outcome := outcomeDone
	switch {
	case err != nil && resp != nil && resp.Solution != nil:
		// A hard error with a legal incumbent: keep the solution (it
		// validated in an earlier round) and report the run as degraded,
		// with the error on the job. Discarding it here used to throw away
		// every kept round of an iterative solve.
		outcome = outcomeDegraded
		if resp.Degraded == nil {
			resp.Degraded = &tdmroute.Degraded{
				Stage:          tdmroute.StageFeedback,
				Cause:          err,
				LRIterations:   resp.Report.Iterations,
				FeedbackRounds: resp.RoundsRun,
				IncumbentGTR:   resp.Report.GTRMax,
			}
		}
	case err != nil:
		resp = nil
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			state, outcome = StateCanceled, outcomeCanceled
		} else {
			state, outcome = StateFailed, outcomeFailed
		}
	case resp.Degraded != nil:
		outcome = outcomeDegraded
	}
	// Strip the warm handle off the response before it is recorded: it
	// never travels over the wire, and retained sessions live in the
	// registry, keyed by the job that built them. Delta jobs return their
	// base job's handle, which stays under the base id (the finish hook
	// releases or drops it).
	if resp != nil && resp.Warm != nil {
		h := resp.Warm
		resp.Warm = nil
		if j.req.Mode != tdmroute.ModeDelta {
			if evicted, retained := s.warm.put(j.id, h); retained {
				s.metrics.warmRetained.Add(1)
				s.metrics.warmEvicted.Add(int64(evicted))
				s.logf("job %s: warm session retained (%d evicted)", j.id, evicted)
			}
		}
	}
	var row *exp.PerfRow
	if resp != nil && resp.Solution != nil && !j.started.IsZero() {
		if r, rerr := exp.RowFromResponse(j.req.Instance.Name, resp, time.Since(j.started)); rerr == nil {
			row = &r
		}
	}
	if !j.finish(state, resp, err, row) {
		return
	}
	s.metrics.observe(outcome, resp)
	if err != nil {
		s.logf("job %s: %s: %v", j.id, state, err)
	} else {
		s.logf("job %s: %s (GTR %d, degraded=%v)", j.id, state, resp.Report.GTRMax, resp.Degraded != nil)
	}
}

// reject evicts a queued job during drain.
func (s *Server) reject(j *job) {
	if j.finish(StateRejected, nil, errDraining, nil) {
		s.metrics.observe(outcomeRejected, nil)
		s.logf("job %s: rejected (draining)", j.id)
	}
}

var errDraining = errors.New("serve: server draining; resubmit elsewhere or retry later")

// cancelJob implements DELETE.
func (s *Server) cancelJob(j *job) State {
	state, wasQueued := j.requestCancel()
	if wasQueued {
		s.metrics.observe(outcomeCanceled, nil)
		s.logf("job %s: canceled while queued", j.id)
	}
	return state
}

// Shutdown drains the server: submissions are rejected from this point on,
// queued jobs are rejected (their submitters see state "rejected" — nothing
// is lost silently), and in-flight jobs are cancelled so they finish with
// their best-so-far incumbents. It returns once every worker has finished,
// or with ctx's error if that takes longer than the caller allows.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopc) })

	// Reject everything still queued. Workers racing on the same channel
	// also reject (never run) jobs they pick up while draining.
	for {
		select {
		case j := <-s.queue:
			s.reject(j)
			continue
		default:
		}
		break
	}
	// Cancel in-flight jobs: they finish with best-so-far incumbents.
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.currentState() == StateRunning {
			j.requestCancel()
		}
	}
	s.mu.Unlock()

	//lint:ignore rawgo shutdown completion signal, not solver parallelism: bridges WaitGroup completion to the caller's context
	done := make(chan struct{})
	//lint:ignore rawgo shutdown waiter, not solver parallelism: single goroutine closing the completion channel
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// A worker may have handed its last job to the queue path between the
	// sweeps; one final pass guarantees no queued job is left untracked.
	for {
		select {
		case j := <-s.queue:
			s.reject(j)
			continue
		default:
		}
		break
	}
	s.logf("drained: %s", s.metrics.summary())
	return nil
}
