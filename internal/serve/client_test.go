package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func respWithRetryAfter(v string) *http.Response {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{Header: h}
}

// TestRetryAfterParsing covers both wire forms of Retry-After — delta
// seconds and HTTP-date — plus the cap that keeps a hostile or skewed hint
// from parking a client for hours.
func TestRetryAfterParsing(t *testing.T) {
	tests := []struct {
		name  string
		value string
		min   time.Duration
		max   time.Duration
	}{
		{"absent", "", 0, 0},
		{"seconds", "2", 2 * time.Second, 2 * time.Second},
		{"zero-seconds", "0", 0, 0},
		{"negative-seconds", "-5", 0, 0},
		{"seconds-capped", "86400", retryAfterCap, retryAfterCap},
		{"garbage", "soon", 0, 0},
		{"http-date-future", time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat),
			3 * time.Second, 5 * time.Second},
		{"http-date-past", time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0, 0},
		{"http-date-capped", time.Now().Add(2 * time.Hour).UTC().Format(http.TimeFormat),
			retryAfterCap - time.Second, retryAfterCap},
		{"http-date-garbage", "Wednesday, whenever", 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := retryAfter(respWithRetryAfter(tt.value))
			if got < tt.min || got > tt.max {
				t.Errorf("retryAfter(%q) = %v, want in [%v, %v]", tt.value, got, tt.min, tt.max)
			}
		})
	}
}

// dropServer serves a fixed SSE event log for one job, deliberately cutting
// the connection after perConn(conn) events unless the log is exhausted.
// With honorResume it replays from the client's Last-Event-ID cursor the way
// tdmroutd does; without it, it replays from the start every time, modeling
// a server with no resume support — the client's Seq dedupe must still give
// callers exactly-once delivery.
type dropServer struct {
	events      []Event
	perConn     func(conn int) int
	honorResume bool

	mu    sync.Mutex
	conns int
}

func (ds *dropServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ds.mu.Lock()
	ds.conns++
	conn := ds.conns
	ds.mu.Unlock()
	next := 0
	if ds.honorResume {
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			if id, err := strconv.Atoi(v); err == nil {
				next = id + 1
			}
		}
	}
	fl := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	sent := 0
	for ; next < len(ds.events); next++ {
		e := ds.events[next]
		data, _ := json.Marshal(e)
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
		fl.Flush()
		sent++
		if sent >= ds.perConn(conn) && next != len(ds.events)-1 {
			panic(http.ErrAbortHandler) // cut the connection mid-stream
		}
	}
}

func streamTestEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{Seq: i, Type: "lr", Iter: i}
	}
	evs[n-1] = Event{Seq: n - 1, Type: "done", State: StateDone}
	return evs
}

// collectStream runs Stream against a handler mounted at the events path and
// returns the sequence numbers delivered to fn.
func collectStream(t *testing.T, h http.Handler) ([]int, error) {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("GET /v1/jobs/x/events", h)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	var seqs []int
	err := c.Stream(context.Background(), "x", func(e Event) error {
		seqs = append(seqs, e.Seq)
		return nil
	})
	return seqs, err
}

// TestStreamReconnectResume drops the connection mid-stream repeatedly; the
// client must reconnect with Last-Event-ID and deliver every event exactly
// once, in order.
func TestStreamReconnectResume(t *testing.T) {
	ds := &dropServer{
		events:      streamTestEvents(7),
		perConn:     func(int) int { return 2 },
		honorResume: true,
	}
	seqs, err := collectStream(t, ds)
	if err != nil {
		t.Fatalf("Stream: %v (saw %v)", err, seqs)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6}
	if fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v", seqs, want)
	}
	if ds.conns < 3 {
		t.Fatalf("server saw %d connections; the drop never exercised a reconnect", ds.conns)
	}
}

// TestStreamDedupeWithoutResume runs the same drop sequence against a server
// that ignores Last-Event-ID and replays from scratch: the client-side Seq
// dedupe must still deliver each event exactly once.
func TestStreamDedupeWithoutResume(t *testing.T) {
	ds := &dropServer{
		events:      streamTestEvents(6),
		perConn:     func(conn int) int { return 2 * conn }, // replays grow, so each conn makes progress
		honorResume: false,
	}
	seqs, err := collectStream(t, ds)
	if err != nil {
		t.Fatalf("Stream: %v (saw %v)", err, seqs)
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v (duplicates or gaps across reconnects)", seqs, want)
	}
}

// TestStreamGivesUp pins the reconnect bound: a server that never delivers
// anything exhausts the attempt budget instead of spinning forever.
func TestStreamGivesUp(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/x/events", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	err := c.Stream(context.Background(), "x", nil)
	if err == nil {
		t.Fatal("Stream returned nil against a server that always drops")
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("error does not name the reconnect budget: %v", err)
	}
}

// TestStreamPropagatesAPIError: a non-2xx response is the server answering,
// not a transient fault — no reconnect, the caller gets the APIError.
func TestStreamPropagatesAPIError(t *testing.T) {
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/x/events", func(w http.ResponseWriter, r *http.Request) {
		calls++
		httpError(w, http.StatusNotFound, "no such job")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	err := c.Stream(context.Background(), "x", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if calls != 1 {
		t.Fatalf("client retried a non-2xx response %d times", calls)
	}
}

// TestWaitPollFallback kills the event stream entirely; Wait must fall back
// to polling with backoff and still return the terminal status.
func TestWaitPollFallback(t *testing.T) {
	var polls atomic32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/x/events", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler) // SSE permanently unavailable
	})
	mux.HandleFunc("GET /v1/jobs/x", func(w http.ResponseWriter, r *http.Request) {
		n := polls.inc()
		st := JobStatus{ID: "x", State: StateRunning}
		if n >= 3 {
			st.State = StateDone
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	st, err := c.Wait(context.Background(), "x")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if got := polls.load(); got < 3 {
		t.Fatalf("status polled %d times, want >= 3", got)
	}
}

// TestWaitCtxCancel: a cancelled context ends Wait promptly with ctx.Err()
// even while it is backing off between polls.
func TestWaitCtxCancel(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/x/events", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	mux.HandleFunc("GET /v1/jobs/x", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(JobStatus{ID: "x", State: StateRunning})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	_, err := c.Wait(ctx, "x")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
}

// atomic32 is a tiny mutex counter (the test hits it from handler
// goroutines).
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) inc() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	return a.n
}

func (a *atomic32) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}
