package serve

import (
	"context"
	"sync"
	"time"

	"tdmroute"
	"tdmroute/internal/exp"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: accepted and waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is solving it.
	StateRunning State = "running"
	// StateDone: finished with a legal solution — possibly a best-so-far
	// incumbent; Response.Degraded distinguishes a full solve from a
	// curtailed one.
	StateDone State = "done"
	// StateFailed: finished with an error and no solution (malformed
	// instance reached the solver, or a contained panic before any
	// incumbent existed).
	StateFailed State = "failed"
	// StateCanceled: cancelled (DELETE or deadline) before any incumbent
	// existed.
	StateCanceled State = "canceled"
	// StateRejected: evicted from the queue by a draining shutdown; the
	// job never ran.
	StateRejected State = "rejected"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateRejected:
		return true
	}
	return false
}

// Event is one entry of a job's progress stream, delivered over SSE in
// order. Seq is the position in the stream; unused fields are omitted.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state", "round", "lr", "done"
	// State is set on "state" and "done" events.
	State State `json:"state,omitempty"`
	// Round is the feedback rounds started so far ("round" and "lr").
	Round int `json:"round,omitempty"`
	// Iter, Z, LB carry the LR convergence series ("lr" events).
	Iter int     `json:"iter,omitempty"`
	Z    float64 `json:"z,omitempty"`
	LB   float64 `json:"lb,omitempty"`
	// Error is set on "done" events of failed jobs.
	Error string `json:"error,omitempty"`
}

// JobStatus is the wire representation of a job served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Mode  string `json:"mode"`
	Bench string `json:"bench,omitempty"`
	// BaseID names the job whose warm session a delta job re-solves.
	BaseID string `json:"base_id,omitempty"`
	// NumEdges is the instance's edge count; solution parsers need it.
	NumEdges int       `json:"num_edges"`
	Created  time.Time `json:"created"`
	// Started/Finished are the zero time until the job reaches those
	// states.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Events is the progress events recorded so far.
	Events int    `json:"events"`
	Error  string `json:"error,omitempty"`
	// Retained reports that the job's warm solver session is currently
	// resident on this node, i.e. a delta against this job can run here.
	// Coordinators use it to discover where ECO re-solves must be routed
	// (and when a session has been lost to eviction or a restart).
	Retained bool `json:"retained,omitempty"`
	// Backend names the node a job ran on. Only the coordinator tier
	// (tdmcoord) sets it — a single tdmroutd leaves it empty, and a job
	// answered from the coordinator's result cache reports "cache".
	Backend string `json:"backend,omitempty"`
	// Response is set once the job finished with a result (State done).
	Response *tdmroute.Response `json:"response,omitempty"`
	// Telemetry is the per-job PerfRow (stage walls, work counters,
	// solution digest), present for jobs that produced a solution.
	Telemetry *exp.PerfRow `json:"telemetry,omitempty"`
}

// job is one submitted solve tracked by the server.
type job struct {
	id       string
	req      tdmroute.Request
	deadline time.Duration
	numEdges int
	created  time.Time
	// baseID is the warm-session owner for delta jobs.
	baseID string
	// onFinish fires exactly once when the job reaches a terminal state, by
	// whatever path (solved, failed, cancelled while queued, rejected by a
	// drain). Delta jobs use it to release or drop their warm session.
	onFinish func()

	mu       sync.Mutex
	state    State
	cancelFn context.CancelFunc // set while running
	resp     *tdmroute.Response
	err      error
	row      *exp.PerfRow
	started  time.Time
	finished time.Time
	events   []Event
	// notify is closed and replaced whenever an event is appended;
	// subscribers re-fetch and re-arm.
	notify chan struct{}
}

func newJob(id string, req tdmroute.Request, deadline time.Duration) *job {
	return &job{
		id:       id,
		req:      req,
		deadline: deadline,
		numEdges: req.Instance.G.NumEdges(),
		created:  time.Now(),
		state:    StateQueued,
		//lint:ignore rawgo job event broadcast channel, not solver parallelism: closed to wake SSE subscribers
		notify: make(chan struct{}),
	}
}

// appendEventLocked records an event and wakes subscribers; j.mu held.
func (j *job) appendEventLocked(e Event) {
	e.Seq = len(j.events)
	j.events = append(j.events, e)
	close(j.notify)
	//lint:ignore rawgo job event broadcast channel, not solver parallelism: re-armed after each broadcast
	j.notify = make(chan struct{})
}

// begin transitions queued→running and installs the cancel function. It
// returns false when the job is no longer queued (cancelled or rejected
// while waiting); the worker must then drop it without running.
func (j *job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancelFn = cancel
	j.started = time.Now()
	j.appendEventLocked(Event{Type: "state", State: StateRunning})
	return true
}

// progress records one solver progress event.
func (j *job) progress(p tdmroute.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch p.Kind {
	case tdmroute.ProgressRound:
		j.appendEventLocked(Event{Type: "round", Round: p.Round + 1})
	default:
		j.appendEventLocked(Event{Type: "lr", Round: p.Round, Iter: p.Iter, Z: p.Z, LB: p.LB})
	}
}

// finish records the terminal state. It is a no-op when the job already
// reached one (a queued job cancelled by DELETE and later swept by drain).
func (j *job) finish(state State, resp *tdmroute.Response, err error, row *exp.PerfRow) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.resp = resp
	j.err = err
	j.row = row
	j.cancelFn = nil
	j.finished = time.Now()
	e := Event{Type: "done", State: state}
	if err != nil {
		e.Error = err.Error()
	}
	j.appendEventLocked(e)
	hook := j.onFinish
	j.onFinish = nil
	j.mu.Unlock()
	if hook != nil {
		hook()
	}
	return true
}

// requestCancel implements DELETE: a queued job transitions to canceled
// immediately (reported via the returned bool so the server can record the
// outcome); a running job has its context cancelled and finishes on the
// worker with its best-so-far incumbent; a terminal job is untouched. The
// returned state is the state after the call.
func (j *job) requestCancel() (State, bool) {
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = time.Now()
		j.appendEventLocked(Event{Type: "done", State: StateCanceled, Error: context.Canceled.Error()})
		hook := j.onFinish
		j.onFinish = nil
		j.mu.Unlock()
		if hook != nil {
			hook()
		}
		return StateCanceled, true
	case j.state == StateRunning:
		if j.cancelFn != nil {
			j.cancelFn()
		}
		j.mu.Unlock()
		return StateRunning, false
	}
	st := j.state
	j.mu.Unlock()
	return st, false
}

// eventsSince returns a copy of the events from seq on, the clamped position
// actually used, the channel that will be closed when more arrive, and
// whether the stream is complete (the job is terminal and every event has
// been handed out). seq is clamped to [0, len(events)]: a resume cursor
// beyond the log (a bogus Last-Event-ID) replays nothing and follows the
// live tail instead of parking the subscriber forever on a completion
// condition it can never satisfy.
func (j *job) eventsSince(seq int) ([]Event, int, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq > len(j.events) {
		seq = len(j.events)
	}
	evs := append([]Event(nil), j.events[seq:]...)
	return evs, seq, j.notify, j.state.Terminal() && seq+len(evs) == len(j.events)
}

// currentState returns the job's state.
func (j *job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// solution returns the job's solution, or nil while it has none.
func (j *job) solution() (*tdmroute.Solution, *tdmroute.Degraded) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resp == nil {
		return nil, nil
	}
	return j.resp.Solution, j.resp.Degraded
}

// status snapshots the job for the status endpoint.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:        j.id,
		State:     j.state,
		Mode:      j.req.Mode.String(),
		Bench:     j.req.Instance.Name,
		BaseID:    j.baseID,
		NumEdges:  j.numEdges,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
		Events:    len(j.events),
		Response:  j.resp,
		Telemetry: j.row,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
