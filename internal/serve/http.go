package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"time"

	"tdmroute"
	"tdmroute/internal/problem"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/jobs/{id}/delta", s.handleDelta)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/solution", s.handleSolution)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// httpError writes a JSON error body alongside the status code.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) unavailable(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Round(time.Second)/time.Second)))
	httpError(w, http.StatusServiceUnavailable, "%s", reason)
}

// handleSubmit accepts an instance — contest text (text/plain, the
// default), JSON (application/json), binary (application/octet-stream), or
// a multipart/form-data body whose "instance" part is any of those and
// whose "routing" part fixes the topology for assign mode — and queues one
// solve configured by the query parameters: mode, rounds, deadline, name,
// epsilon, maxiter, ripup, workers, pow2, queue, partitions.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.submitRejected.Add(1)
		s.unavailable(w, "server is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	sub, err := ParseSubmit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req, deadline := s.resolve(sub)
	j, ok := s.submit(req, deadline, nil)
	if !ok {
		if s.draining.Load() {
			s.unavailable(w, "server is draining")
		} else {
			s.unavailable(w, "job queue is full")
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(s.statusOf(j))
}

// ParseSubmit decodes a POST /v1/jobs submission — the body in any of the
// three instance formats, or multipart/form-data with an optional routing
// part; the solver knobs in the query string — into the wire-level
// SubmitRequest. It is shared between the server (which resolves the knobs
// against its own solver defaults) and the coordinator (which forwards the
// request to a backend verbatim); the instance and routing are validated
// here so both tiers reject malformed submissions identically.
func ParseSubmit(r *http.Request) (SubmitRequest, error) {
	q := r.URL.Query()
	var sub SubmitRequest
	mode, err := tdmroute.ParseMode(q.Get("mode"))
	if err != nil {
		return sub, err
	}
	sub.Mode = mode
	sub.Name = q.Get("name")
	name := sub.Name
	if name == "" {
		name = "job"
	}

	mediatype := "text/plain"
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mediatype, _, err = mime.ParseMediaType(ct)
		if err != nil {
			return sub, fmt.Errorf("bad Content-Type: %v", err)
		}
	}
	var in *tdmroute.Instance
	var routingBytes []byte
	if mediatype == "multipart/form-data" {
		in, routingBytes, err = parseMultipart(r, name)
	} else {
		in, err = parseInstanceBody(mediatype, name, r.Body)
	}
	if err != nil {
		return sub, err
	}
	if err := tdmroute.ValidateInstance(in); err != nil {
		return sub, fmt.Errorf("invalid instance: %v", err)
	}
	sub.Instance = in

	if mode == tdmroute.ModeAssignOnly {
		if routingBytes == nil {
			return sub, fmt.Errorf("mode=assign requires a multipart \"routing\" part")
		}
		routes, err := tdmroute.ParseRouting(bytes.NewReader(routingBytes), in.G.NumEdges())
		if err != nil {
			return sub, fmt.Errorf("bad routing: %v", err)
		}
		if err := tdmroute.ValidateRouting(in, routes); err != nil {
			return sub, fmt.Errorf("invalid routing: %v", err)
		}
		sub.Routing = routes
	}

	if v := q.Get("deadline"); v != "" {
		if sub.Deadline, err = time.ParseDuration(v); err != nil || sub.Deadline < 0 {
			return sub, fmt.Errorf("bad deadline %q", v)
		}
	}
	if v := q.Get("rounds"); v != "" {
		if sub.Rounds, err = strconv.Atoi(v); err != nil {
			return sub, fmt.Errorf("bad rounds %q", v)
		}
	}
	if v := q.Get("epsilon"); v != "" {
		if sub.Epsilon, err = strconv.ParseFloat(v, 64); err != nil {
			return sub, fmt.Errorf("bad epsilon %q", v)
		}
	}
	if v := q.Get("maxiter"); v != "" {
		if sub.MaxIter, err = strconv.Atoi(v); err != nil {
			return sub, fmt.Errorf("bad maxiter %q", v)
		}
	}
	if v := q.Get("ripup"); v != "" {
		if sub.RipUp, err = strconv.Atoi(v); err != nil {
			return sub, fmt.Errorf("bad ripup %q", v)
		}
	}
	if v := q.Get("workers"); v != "" {
		if sub.Workers, err = strconv.Atoi(v); err != nil {
			return sub, fmt.Errorf("bad workers %q", v)
		}
	}
	if v := q.Get("queue"); v != "" {
		if _, err := tdmroute.ParseQueue(v); err != nil {
			return sub, fmt.Errorf("bad queue %q: want auto, heap, or bucket", v)
		}
		sub.Queue = v
	}
	if v := q.Get("partitions"); v != "" {
		if sub.Partitions, err = strconv.Atoi(v); err != nil || sub.Partitions < 0 {
			return sub, fmt.Errorf("bad partitions %q", v)
		}
	}
	if v := q.Get("pow2"); v == "1" || v == "true" {
		sub.Pow2 = true
	}
	if v := q.Get("retain"); v == "1" || v == "true" {
		if mode == tdmroute.ModeAssignOnly {
			return sub, fmt.Errorf("retain is not supported for mode=assign (there is no routing state to retain)")
		}
		sub.Retain = true
	}
	return sub, nil
}

// resolve turns the wire-level submission into the solve request by applying
// the server's solver defaults under the request's overrides.
func (s *Server) resolve(sub SubmitRequest) (tdmroute.Request, time.Duration) {
	req := tdmroute.Request{
		Instance: sub.Instance,
		Mode:     sub.Mode,
		Options:  s.cfg.SolveOptions,
		Rounds:   sub.Rounds,
		Routing:  sub.Routing,
		Retain:   sub.Retain,
	}
	if sub.Epsilon != 0 {
		req.Options.TDM.Epsilon = sub.Epsilon
	}
	if sub.MaxIter != 0 {
		req.Options.TDM.MaxIter = sub.MaxIter
	}
	if sub.RipUp != 0 {
		req.Options.Route.RipUpRounds = sub.RipUp
	}
	if sub.Workers != 0 {
		req.Options.Workers = sub.Workers
	}
	if sub.Queue != "" {
		req.Options.Queue = sub.Queue
	}
	if sub.Partitions != 0 {
		req.Options.Partitions = sub.Partitions
	}
	if sub.Pow2 {
		req.Options.TDM.Legal = tdmroute.LegalPow2
	}
	return req, sub.Deadline
}

// parseInstanceBody decodes one instance in the format named by the media
// type.
func parseInstanceBody(mediatype, name string, body io.Reader) (*tdmroute.Instance, error) {
	switch mediatype {
	case "text/plain", "application/x-www-form-urlencoded", "":
		return tdmroute.ParseInstance(name, body)
	case "application/json":
		return tdmroute.ParseInstanceJSON(body)
	case "application/octet-stream":
		return tdmroute.ParseInstanceBinary(name, body)
	}
	return nil, fmt.Errorf("unsupported Content-Type %q (want text/plain, application/json, application/octet-stream, or multipart/form-data)", mediatype)
}

// parseMultipart reads an "instance" part (decoded by its own Content-Type)
// and an optional "routing" part (contest routing text, buffered until the
// instance's edge count is known).
func parseMultipart(r *http.Request, name string) (*tdmroute.Instance, []byte, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, nil, err
	}
	var in *tdmroute.Instance
	var routing []byte
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		switch part.FormName() {
		case "instance":
			mt := "text/plain"
			if ct := part.Header.Get("Content-Type"); ct != "" {
				if mt, _, err = mime.ParseMediaType(ct); err != nil {
					return nil, nil, fmt.Errorf("instance part: bad Content-Type: %v", err)
				}
			}
			if in, err = parseInstanceBody(mt, name, part); err != nil {
				return nil, nil, err
			}
		case "routing":
			if routing, err = io.ReadAll(part); err != nil {
				return nil, nil, err
			}
		}
	}
	if in == nil {
		return nil, nil, fmt.Errorf("multipart submission is missing an \"instance\" part")
	}
	return in, routing, nil
}

// statusOf snapshots a job and enriches it with node-resident state the job
// itself does not know: whether its warm session is still retained here.
func (s *Server) statusOf(j *job) *JobStatus {
	st := j.status()
	st.Retained = s.warm.has(j.id)
	return st
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statusOf(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	state := s.cancelJob(j)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"id": j.id, "state": state})
}

// handleEvents streams the job's progress as Server-Sent Events: recorded
// events from the resume cursor on are replayed, then live events follow
// until the job is terminal (the final event has type "done") or the client
// goes away. A reconnecting client resumes after the Last-Event-ID it saw;
// a cursor beyond the log is clamped to its end (the stream follows the
// live tail) instead of hanging the subscriber forever.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	next := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		id, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad Last-Event-ID %q", v)
			return
		}
		next = id + 1
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		evs, from, notify, terminal := j.eventsSince(next)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
		}
		next = from + len(evs)
		if len(evs) > 0 {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleSolution serves the finished job's solution in the format named by
// ?format= (text, the default; json; binary). Degraded solutions are legal
// best-so-far incumbents and carry an X-Tdmroute-Degraded header naming the
// interrupted stage.
func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	state := j.currentState()
	if !state.Terminal() {
		httpError(w, http.StatusConflict, "job %s is %s; no solution yet", j.id, state)
		return
	}
	sol, degraded := j.solution()
	if sol == nil {
		httpError(w, http.StatusConflict, "job %s is %s and produced no solution", j.id, state)
		return
	}
	if degraded != nil {
		w.Header().Set("X-Tdmroute-Degraded", string(degraded.Stage))
	}
	WriteSolutionResponse(w, r.URL.Query().Get("format"), sol, nil)
}

// WriteSolutionResponse renders a finished solution in the format named by
// ?format= (text, the default; json; binary). When text is non-nil it holds
// the canonical text serialization already in hand, and the text format
// serves those bytes verbatim — the coordinator uses this to return the
// exact bytes its digest check verified, which is what makes its replay
// guarantee byte-level rather than merely semantic.
func WriteSolutionResponse(w http.ResponseWriter, format string, sol *tdmroute.Solution, text []byte) {
	var buf bytes.Buffer
	var err error
	switch format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if text != nil {
			w.Write(text)
			return
		}
		err = problem.WriteSolution(&buf, sol)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		err = problem.WriteSolutionJSON(&buf, sol)
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		err = problem.WriteSolutionBinary(&buf, sol)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want text, json, or binary)", format)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Write(buf.Bytes())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running := 0
	for _, j := range s.jobs {
		if j.currentState() == StateRunning {
			running++
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, len(s.queue), cap(s.queue), running, s.cfg.Workers, s.warm.size(), s.draining.Load())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
