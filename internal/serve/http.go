package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"time"

	"tdmroute"
	"tdmroute/internal/problem"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/jobs/{id}/delta", s.handleDelta)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/solution", s.handleSolution)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// httpError writes a JSON error body alongside the status code.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) unavailable(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Round(time.Second)/time.Second)))
	httpError(w, http.StatusServiceUnavailable, "%s", reason)
}

// handleSubmit accepts an instance — contest text (text/plain, the
// default), JSON (application/json), binary (application/octet-stream), or
// a multipart/form-data body whose "instance" part is any of those and
// whose "routing" part fixes the topology for assign mode — and queues one
// solve configured by the query parameters: mode, rounds, deadline, name,
// epsilon, maxiter, ripup, workers, pow2.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.submitRejected.Add(1)
		s.unavailable(w, "server is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, deadline, err := s.parseSubmit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, ok := s.submit(req, deadline, nil)
	if !ok {
		if s.draining.Load() {
			s.unavailable(w, "server is draining")
		} else {
			s.unavailable(w, "job queue is full")
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(j.status())
}

// parseSubmit builds the solve request from the HTTP submission.
func (s *Server) parseSubmit(r *http.Request) (tdmroute.Request, time.Duration, error) {
	q := r.URL.Query()
	mode, err := tdmroute.ParseMode(q.Get("mode"))
	if err != nil {
		return tdmroute.Request{}, 0, err
	}
	name := q.Get("name")
	if name == "" {
		name = "job"
	}

	mediatype := "text/plain"
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mediatype, _, err = mime.ParseMediaType(ct)
		if err != nil {
			return tdmroute.Request{}, 0, fmt.Errorf("bad Content-Type: %v", err)
		}
	}
	var in *tdmroute.Instance
	var routingBytes []byte
	if mediatype == "multipart/form-data" {
		in, routingBytes, err = parseMultipart(r, name)
	} else {
		in, err = parseInstanceBody(mediatype, name, r.Body)
	}
	if err != nil {
		return tdmroute.Request{}, 0, err
	}
	if err := tdmroute.ValidateInstance(in); err != nil {
		return tdmroute.Request{}, 0, fmt.Errorf("invalid instance: %v", err)
	}

	req := tdmroute.Request{Instance: in, Mode: mode, Options: s.cfg.SolveOptions}
	if mode == tdmroute.ModeAssignOnly {
		if routingBytes == nil {
			return tdmroute.Request{}, 0, fmt.Errorf("mode=assign requires a multipart \"routing\" part")
		}
		routes, err := tdmroute.ParseRouting(bytes.NewReader(routingBytes), in.G.NumEdges())
		if err != nil {
			return tdmroute.Request{}, 0, fmt.Errorf("bad routing: %v", err)
		}
		if err := tdmroute.ValidateRouting(in, routes); err != nil {
			return tdmroute.Request{}, 0, fmt.Errorf("invalid routing: %v", err)
		}
		req.Routing = routes
	}

	var deadline time.Duration
	if v := q.Get("deadline"); v != "" {
		if deadline, err = time.ParseDuration(v); err != nil || deadline < 0 {
			return tdmroute.Request{}, 0, fmt.Errorf("bad deadline %q", v)
		}
	}
	if v := q.Get("rounds"); v != "" {
		if req.Rounds, err = strconv.Atoi(v); err != nil {
			return tdmroute.Request{}, 0, fmt.Errorf("bad rounds %q", v)
		}
	}
	if v := q.Get("epsilon"); v != "" {
		if req.Options.TDM.Epsilon, err = strconv.ParseFloat(v, 64); err != nil {
			return tdmroute.Request{}, 0, fmt.Errorf("bad epsilon %q", v)
		}
	}
	if v := q.Get("maxiter"); v != "" {
		if req.Options.TDM.MaxIter, err = strconv.Atoi(v); err != nil {
			return tdmroute.Request{}, 0, fmt.Errorf("bad maxiter %q", v)
		}
	}
	if v := q.Get("ripup"); v != "" {
		if req.Options.Route.RipUpRounds, err = strconv.Atoi(v); err != nil {
			return tdmroute.Request{}, 0, fmt.Errorf("bad ripup %q", v)
		}
	}
	if v := q.Get("workers"); v != "" {
		if req.Options.Workers, err = strconv.Atoi(v); err != nil {
			return tdmroute.Request{}, 0, fmt.Errorf("bad workers %q", v)
		}
	}
	if v := q.Get("pow2"); v == "1" || v == "true" {
		req.Options.TDM.Legal = tdmroute.LegalPow2
	}
	if v := q.Get("retain"); v == "1" || v == "true" {
		if mode == tdmroute.ModeAssignOnly {
			return tdmroute.Request{}, 0, fmt.Errorf("retain is not supported for mode=assign (there is no routing state to retain)")
		}
		req.Retain = true
	}
	return req, deadline, nil
}

// parseInstanceBody decodes one instance in the format named by the media
// type.
func parseInstanceBody(mediatype, name string, body io.Reader) (*tdmroute.Instance, error) {
	switch mediatype {
	case "text/plain", "application/x-www-form-urlencoded", "":
		return tdmroute.ParseInstance(name, body)
	case "application/json":
		return tdmroute.ParseInstanceJSON(body)
	case "application/octet-stream":
		return tdmroute.ParseInstanceBinary(name, body)
	}
	return nil, fmt.Errorf("unsupported Content-Type %q (want text/plain, application/json, application/octet-stream, or multipart/form-data)", mediatype)
}

// parseMultipart reads an "instance" part (decoded by its own Content-Type)
// and an optional "routing" part (contest routing text, buffered until the
// instance's edge count is known).
func parseMultipart(r *http.Request, name string) (*tdmroute.Instance, []byte, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, nil, err
	}
	var in *tdmroute.Instance
	var routing []byte
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		switch part.FormName() {
		case "instance":
			mt := "text/plain"
			if ct := part.Header.Get("Content-Type"); ct != "" {
				if mt, _, err = mime.ParseMediaType(ct); err != nil {
					return nil, nil, fmt.Errorf("instance part: bad Content-Type: %v", err)
				}
			}
			if in, err = parseInstanceBody(mt, name, part); err != nil {
				return nil, nil, err
			}
		case "routing":
			if routing, err = io.ReadAll(part); err != nil {
				return nil, nil, err
			}
		}
	}
	if in == nil {
		return nil, nil, fmt.Errorf("multipart submission is missing an \"instance\" part")
	}
	return in, routing, nil
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	state := s.cancelJob(j)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"id": j.id, "state": state})
}

// handleEvents streams the job's progress as Server-Sent Events: recorded
// events from the resume cursor on are replayed, then live events follow
// until the job is terminal (the final event has type "done") or the client
// goes away. A reconnecting client resumes after the Last-Event-ID it saw;
// a cursor beyond the log is clamped to its end (the stream follows the
// live tail) instead of hanging the subscriber forever.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	next := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		id, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad Last-Event-ID %q", v)
			return
		}
		next = id + 1
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		evs, from, notify, terminal := j.eventsSince(next)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
		}
		next = from + len(evs)
		if len(evs) > 0 {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleSolution serves the finished job's solution in the format named by
// ?format= (text, the default; json; binary). Degraded solutions are legal
// best-so-far incumbents and carry an X-Tdmroute-Degraded header naming the
// interrupted stage.
func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	state := j.currentState()
	if !state.Terminal() {
		httpError(w, http.StatusConflict, "job %s is %s; no solution yet", j.id, state)
		return
	}
	sol, degraded := j.solution()
	if sol == nil {
		httpError(w, http.StatusConflict, "job %s is %s and produced no solution", j.id, state)
		return
	}
	if degraded != nil {
		w.Header().Set("X-Tdmroute-Degraded", string(degraded.Stage))
	}
	var buf bytes.Buffer
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = problem.WriteSolution(&buf, sol)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		err = problem.WriteSolutionJSON(&buf, sol)
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		err = problem.WriteSolutionBinary(&buf, sol)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want text, json, or binary)", format)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Write(buf.Bytes())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running := 0
	for _, j := range s.jobs {
		if j.currentState() == StateRunning {
			running++
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, len(s.queue), cap(s.queue), running, s.cfg.Workers, s.warm.size(), s.draining.Load())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
