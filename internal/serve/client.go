package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"net/url"
	"strconv"
	"strings"
	"time"

	"tdmroute"
	"tdmroute/internal/problem"
)

// Format selects the wire encoding of instances and solutions.
type Format int

const (
	// FormatText is the contest text format.
	FormatText Format = iota
	// FormatJSON is the JSON schema.
	FormatJSON
	// FormatBinary is the length-prefixed binary format.
	FormatBinary
)

func (f Format) contentType() string {
	switch f {
	case FormatJSON:
		return "application/json"
	case FormatBinary:
		return "application/octet-stream"
	}
	return "text/plain"
}

func (f Format) query() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatBinary:
		return "binary"
	}
	return "text"
}

// SubmitRequest describes one job submission.
type SubmitRequest struct {
	// Instance is the problem instance (required).
	Instance *tdmroute.Instance
	// Mode selects the pipeline (single, iterative, assign).
	Mode tdmroute.Mode
	// Rounds is the feedback-round budget for ModeIterative.
	Rounds int
	// Routing fixes the topology for ModeAssignOnly.
	Routing tdmroute.Routing
	// Deadline is the per-job wall budget (0 = server default).
	Deadline time.Duration
	// Name labels the job's instance.
	Name string
	// Format selects the upload encoding.
	Format Format
	// Epsilon/MaxIter/RipUp/Workers/Pow2 override the server's solver
	// defaults when non-zero.
	Epsilon float64
	MaxIter int
	RipUp   int
	Workers int
	Pow2    bool
	// Queue overrides the routing Dijkstra engine ("auto", "heap",
	// "bucket"); empty keeps the server default. Both engines produce
	// identical solutions.
	Queue string
	// Partitions overrides the partitioned-routing region count when
	// non-zero (1 = off).
	Partitions int
	// Retain keeps the solved job's warm session on the server so later
	// SubmitDelta calls can re-solve it incrementally. Not supported for
	// ModeAssignOnly.
	Retain bool
}

// Client is the typed client of a tdmroutd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes an error response body.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &APIError{Status: resp.StatusCode, Message: e.Error, RetryAfter: retryAfter(resp)}
	}
	return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body)), RetryAfter: retryAfter(resp)}
}

// retryAfterCap bounds the server-suggested backoff: a bogus, hostile, or
// clock-skewed Retry-After must not park a well-behaved client for hours.
const retryAfterCap = 30 * time.Second

func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(v); err == nil {
		// The HTTP-date form: the hint is the distance from now, never
		// negative (a date in the past means "retry immediately").
		d = time.Until(t)
		if d <= 0 {
			return 0
		}
	} else {
		return 0
	}
	if d > retryAfterCap {
		d = retryAfterCap
	}
	return d
}

// APIError is a non-2xx server response.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint on 503 rejections.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Status, e.Message)
}

// Submit uploads the instance and enqueues a solve.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*JobStatus, error) {
	if req.Instance == nil {
		return nil, fmt.Errorf("serve: Submit: nil Instance")
	}
	q := url.Values{}
	q.Set("mode", req.Mode.String())
	if req.Name != "" {
		q.Set("name", req.Name)
	}
	if req.Rounds > 0 {
		q.Set("rounds", strconv.Itoa(req.Rounds))
	}
	if req.Deadline > 0 {
		q.Set("deadline", req.Deadline.String())
	}
	if req.Epsilon != 0 {
		q.Set("epsilon", strconv.FormatFloat(req.Epsilon, 'g', -1, 64))
	}
	if req.MaxIter != 0 {
		q.Set("maxiter", strconv.Itoa(req.MaxIter))
	}
	if req.RipUp != 0 {
		q.Set("ripup", strconv.Itoa(req.RipUp))
	}
	if req.Workers != 0 {
		q.Set("workers", strconv.Itoa(req.Workers))
	}
	if req.Pow2 {
		q.Set("pow2", "1")
	}
	if req.Queue != "" {
		q.Set("queue", req.Queue)
	}
	if req.Partitions != 0 {
		q.Set("partitions", strconv.Itoa(req.Partitions))
	}
	if req.Retain {
		q.Set("retain", "1")
	}

	var instance bytes.Buffer
	var err error
	switch req.Format {
	case FormatJSON:
		err = problem.WriteInstanceJSON(&instance, req.Instance)
	case FormatBinary:
		err = problem.WriteInstanceBinary(&instance, req.Instance)
	default:
		err = problem.WriteInstance(&instance, req.Instance)
	}
	if err != nil {
		return nil, err
	}

	var body bytes.Buffer
	contentType := req.Format.contentType()
	if req.Routing != nil {
		mw := multipart.NewWriter(&body)
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Disposition", `form-data; name="instance"`)
		hdr.Set("Content-Type", req.Format.contentType())
		part, err := mw.CreatePart(hdr)
		if err != nil {
			return nil, err
		}
		if _, err := part.Write(instance.Bytes()); err != nil {
			return nil, err
		}
		rpart, err := mw.CreateFormField("routing")
		if err != nil {
			return nil, err
		}
		if err := problem.WriteRouting(rpart, req.Routing); err != nil {
			return nil, err
		}
		if err := mw.Close(); err != nil {
			return nil, err
		}
		contentType = mw.FormDataContentType()
	} else {
		body = instance
	}

	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/jobs?"+q.Encode(), &body)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", contentType)
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SubmitDelta queues an incremental re-solve of baseID's warm session (the
// base job must have been submitted with Retain and have finished). The
// returned job behaves like any other: poll or stream it, then fetch its
// solution — which is for the patched instance. Conflicting deltas (the
// session is busy) and missing sessions surface as 409 and 410 APIErrors.
func (c *Client) SubmitDelta(ctx context.Context, baseID string, d DeltaDoc, deadline time.Duration) (*JobStatus, error) {
	q := url.Values{}
	if deadline > 0 {
		q.Set("deadline", deadline.String())
	}
	body, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	u := c.BaseURL + "/v1/jobs/" + baseID + "/delta"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Cancel requests cancellation: queued jobs become canceled, running jobs
// finish with their best-so-far incumbents.
func (c *Client) Cancel(ctx context.Context, id string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Streaming and polling backoff. Reconnect attempts that deliver at least
// one new event reset the consecutive-failure budget: only a peer that
// repeatedly yields nothing is declared gone.
const (
	streamMaxAttempts = 5
	streamBackoffBase = 50 * time.Millisecond
	streamBackoffCap  = time.Second
	waitPollBase      = 50 * time.Millisecond
	waitPollCap       = 2 * time.Second
	waitMaxPollFails  = 5
)

// jitter spreads d uniformly over [d/2, 3d/2) so a fleet of reconnecting
// clients does not thunder back in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// transientError marks a stream failure worth reconnecting from: a dropped
// connection, a scanner error, or a stream that ended before the job did.
// Non-2xx responses and fn errors are returned bare and never retried.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// StreamFrom runs one SSE connection, resuming after event next-1 via
// Last-Event-ID, and invokes fn for every event with Seq >= next (the
// dedupe makes redelivery by a replaying server harmless). It returns the
// next cursor, whether the terminal "done" event was seen, and the error
// that ended the attempt; a dropped connection or a stream that ends before
// the job does comes back as a transient error (Stream reconnects on those),
// while non-2xx responses are *APIError and fn errors are returned bare.
// It is the single-connection primitive beneath Stream, exported for
// callers — the coordinator's re-dispatch loop — that manage their own
// resume cursor across backends.
func (c *Client) StreamFrom(ctx context.Context, id string, next int, fn func(Event) error) (int, bool, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return next, false, err
	}
	if next > 0 {
		hreq.Header.Set("Last-Event-ID", strconv.Itoa(next-1))
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return next, false, &transientError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return next, false, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		if after, ok := strings.CutPrefix(line, "data:"); ok {
			data = append(data, strings.TrimPrefix(after, " ")...)
			continue
		}
		if line != "" || len(data) == 0 {
			continue // id:/event: fields and leading blanks
		}
		var e Event
		if err := json.Unmarshal(data, &e); err != nil {
			return next, false, &transientError{fmt.Errorf("serve: bad event %q: %v", data, err)}
		}
		data = data[:0]
		if e.Seq < next {
			continue // already delivered before a reconnect
		}
		next = e.Seq + 1
		if fn != nil {
			if err := fn(e); err != nil {
				return next, false, err
			}
		}
		if e.Type == "done" {
			return next, true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return next, false, &transientError{err}
	}
	return next, false, &transientError{fmt.Errorf("serve: event stream for %s ended before the job did", id)}
}

// Stream follows the job's SSE progress stream, invoking fn for every event
// exactly once, in order. Transient disconnects are survived transparently:
// the client reconnects with Last-Event-ID (jittered exponential backoff)
// and resumes where it left off, so fn never sees a duplicate or a gap. It
// returns when the job reaches a terminal state (the last delivered event
// has type "done"), when fn returns a non-nil error (which Stream
// propagates), when ctx is cancelled, or when streamMaxAttempts consecutive
// reconnects yield no new event.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	next := 0
	fails := 0
	var lastErr error
	for {
		n, done, err := c.StreamFrom(ctx, id, next, fn)
		if done {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var te *transientError
		if !errors.As(err, &te) {
			return err // fn error or APIError: the caller's business
		}
		if n > next {
			fails = 0 // progress: the stream is alive, keep following it
		}
		next = n
		fails++
		lastErr = te.err
		if fails >= streamMaxAttempts {
			return fmt.Errorf("serve: stream %s: giving up after %d reconnects without progress: %w", id, fails, lastErr)
		}
		if err := sleepCtx(ctx, jitter(backoffStep(streamBackoffBase, streamBackoffCap, fails-1))); err != nil {
			return err
		}
	}
}

// backoffStep is base·2^n capped at max.
func backoffStep(base, max time.Duration, n int) time.Duration {
	d := base
	for i := 0; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// Wait blocks until the job reaches a terminal state and returns its final
// status. It prefers the SSE stream (terminal-state latency is one event)
// and falls back to polling Status with jittered exponential backoff when
// streaming is unavailable — a proxy that buffers SSE, a server that lost
// the stream — so a reachable job is never abandoned just because its
// event stream is.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	streamErr := c.Stream(ctx, id, nil)
	if streamErr == nil {
		return c.Status(ctx, id)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	var apiErr *APIError
	if errors.As(streamErr, &apiErr) {
		return nil, streamErr // the server answered; polling would hear the same
	}
	delay := waitPollBase
	fails := 0
	for {
		st, err := c.Status(ctx, id)
		switch {
		case err == nil && st.State.Terminal():
			return st, nil
		case err == nil:
			fails = 0
		case errors.As(err, &apiErr):
			return nil, err
		default:
			if fails++; fails >= waitMaxPollFails {
				return nil, fmt.Errorf("serve: wait %s: %d consecutive poll failures (stream failed first: %v): %w",
					id, fails, streamErr, err)
			}
		}
		if err := sleepCtx(ctx, jitter(delay)); err != nil {
			return nil, err
		}
		if delay *= 2; delay > waitPollCap {
			delay = waitPollCap
		}
	}
}

// SolutionBytes downloads the finished job's solution verbatim, without
// parsing. The raw bytes are what replay equivalence and content digests
// are defined over, so the coordinator stores and compares these.
func (c *Client) SolutionBytes(ctx context.Context, id string, format Format) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+id+"/solution?format="+format.query(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Solution downloads and parses the finished job's solution.
func (c *Client) Solution(ctx context.Context, id string, format Format) (*tdmroute.Solution, error) {
	st, err := c.Status(ctx, id)
	if err != nil {
		return nil, err
	}
	body, err := c.SolutionBytes(ctx, id, format)
	if err != nil {
		return nil, err
	}
	switch format {
	case FormatJSON:
		return problem.ParseSolutionJSON(bytes.NewReader(body), st.NumEdges)
	case FormatBinary:
		return problem.ParseSolutionBinary(bytes.NewReader(body), st.NumEdges)
	}
	return problem.ParseSolution(bytes.NewReader(body), st.NumEdges)
}

// Metrics fetches the raw text metrics exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// Healthy reports whether the server answers /healthz with "ok".
func (c *Client) Healthy(ctx context.Context) (bool, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return false, err
	}
	return resp.StatusCode == http.StatusOK && strings.TrimSpace(string(b)) == "ok", nil
}
