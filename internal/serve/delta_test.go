package serve

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"tdmroute"
	"tdmroute/internal/problem"
)

// submitRetained submits the instance with retention and waits for it.
func submitRetained(t *testing.T, c *Client, in *tdmroute.Instance) *JobStatus {
	t.Helper()
	ctx := context.Background()
	st, err := c.Submit(ctx, SubmitRequest{Instance: in, Retain: true})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("retained base job: state %s, error %q", final.State, final.Error)
	}
	return final
}

// TestServerDeltaEndToEnd drives the delta endpoint over the wire: a
// retained base job, a first delta (removal + added net + edge bias), and a
// chained second delta, each byte-identical to the same sequence run through
// the library locally, each valid on the correspondingly patched instance.
func TestServerDeltaEndToEnd(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	_, c := startServer(t, Config{Workers: 2})

	base := submitRetained(t, c, in)
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_sessions"); got != 1 {
		t.Fatalf("warm_sessions = %v, want 1", got)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_retained_total"); got != 1 {
		t.Fatalf("warm_retained_total = %v, want 1", got)
	}

	// Build the delta from client-side knowledge only: the instance that was
	// uploaded and the base solution's routes.
	baseSol, err := c.Solution(ctx, base.ID, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	rm := -1
	for n := range in.Nets {
		if len(in.Nets[n].Terminals) >= 2 {
			rm = n
			break
		}
	}
	if rm < 0 {
		t.Fatal("no removable net")
	}
	biased := -1
	for _, es := range baseSol.Routes {
		if len(es) > 0 {
			biased = es[0]
			break
		}
	}
	if biased < 0 {
		t.Fatal("no routed edge")
	}
	terms := in.Nets[rm].Terminals
	doc1 := DeltaDoc{
		RemoveNets: []int{rm},
		AddNets:    []DeltaNetDoc{{Terminals: []int{terms[0], terms[1]}}},
		EdgeBias:   []EdgeBiasDoc{{Edge: biased, Delta: 2}},
	}
	doc2 := DeltaDoc{EdgeBias: []EdgeBiasDoc{{Edge: biased, Delta: -1}}}

	// The local reference: the identical base + delta chain through the
	// library on a clone of the uploaded instance.
	inL := in.Clone()
	refBase, err := tdmroute.Run(ctx, tdmroute.Request{Instance: inL, Retain: true})
	if err != nil {
		t.Fatal(err)
	}
	refD1, err := tdmroute.Run(ctx, tdmroute.Request{
		Mode: tdmroute.ModeDelta, Base: refBase.Warm, Delta: doc1.toDelta()})
	if err != nil {
		t.Fatal(err)
	}
	refD2, err := tdmroute.Run(ctx, tdmroute.Request{
		Mode: tdmroute.ModeDelta, Base: refD1.Warm, Delta: doc2.toDelta()})
	if err != nil {
		t.Fatal(err)
	}

	runDelta := func(doc DeltaDoc, ref *tdmroute.Response, patched *tdmroute.Instance) {
		t.Helper()
		st, err := c.SubmitDelta(ctx, base.ID, doc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.BaseID != base.ID {
			t.Fatalf("delta job base_id = %q, want %q", st.BaseID, base.ID)
		}
		if st.Mode != "delta" {
			t.Fatalf("delta job mode = %q", st.Mode)
		}
		final, err := c.Wait(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone || final.Response == nil || final.Response.Degraded != nil {
			t.Fatalf("delta job: state %s, error %q, response %+v", final.State, final.Error, final.Response)
		}
		sol, err := c.Solution(ctx, st.ID, FormatText)
		if err != nil {
			t.Fatal(err)
		}
		if err := problem.ValidateSolution(patched, sol); err != nil {
			t.Fatalf("delta solution invalid on patched instance: %v", err)
		}
		if !bytes.Equal(solutionText(t, sol), solutionText(t, ref.Solution)) {
			t.Fatal("delta solution diverged from the local reference chain")
		}
		if final.Response.Report.GTRMax != ref.Report.GTRMax {
			t.Fatalf("delta GTR %d, local reference %d", final.Response.Report.GTRMax, ref.Report.GTRMax)
		}
	}
	// inL has been patched in place by the local chain, so it doubles as
	// the patched-instance reference for validation.
	runDelta(doc1, refD1, inL)
	runDelta(doc2, refD2, inL)

	metrics, err = c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_sessions"); got != 1 {
		t.Fatalf("warm_sessions after deltas = %v, want 1 (session released, not dropped)", got)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_dropped_total"); got != 0 {
		t.Fatalf("warm_dropped_total = %v, want 0", got)
	}
}

// TestServerDeltaErrors covers the endpoint's status-code contract: 404 for
// an unknown base job, 409 for an unfinished base or a busy session, 410
// when no warm session exists, and 400 for a malformed body. Delta
// validation failures surface on the delta job itself, which fails without
// poisoning the session.
func TestServerDeltaErrors(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	s, c := startServer(t, Config{Workers: 1})

	var apiErr *APIError
	// Unknown base job.
	if _, err := c.SubmitDelta(ctx, "j9999999", DeltaDoc{}, 0); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown base: err = %v, want 404", err)
	}
	// Base finished without retention.
	plain, err := c.Submit(ctx, SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, plain.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitDelta(ctx, plain.ID, DeltaDoc{}, 0); !errors.As(err, &apiErr) || apiErr.Status != 410 {
		t.Fatalf("no warm session: err = %v, want 410", err)
	}
	// Unfinished base.
	slow, err := c.Submit(ctx, slowSubmit(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitDelta(ctx, slow.ID, DeltaDoc{}, 0); !errors.As(err, &apiErr) || apiErr.Status != 409 {
		t.Fatalf("unfinished base: err = %v, want 409", err)
	}
	if err := c.Cancel(ctx, slow.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, slow.ID); err != nil {
		t.Fatal(err)
	}

	base := submitRetained(t, c, in)
	// Busy session: acquire it out from under the endpoint.
	if _, found, busy := s.warm.acquire(base.ID); !found || busy {
		t.Fatal("could not acquire the warm session directly")
	}
	if _, err := c.SubmitDelta(ctx, base.ID, DeltaDoc{}, 0); !errors.As(err, &apiErr) || apiErr.Status != 409 {
		t.Fatalf("busy session: err = %v, want 409", err)
	}
	s.warm.release(base.ID)
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_conflict_total"); got != 1 {
		t.Fatalf("warm_conflict_total = %v, want 1", got)
	}

	// Malformed body.
	resp, err := c.http().Post(c.BaseURL+"/v1/jobs/"+base.ID+"/delta", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed delta body: status %d, want 400", resp.StatusCode)
	}

	// An invalid delta is accepted as a job and fails there, leaving the
	// session healthy for the next delta.
	bad, err := c.SubmitDelta(ctx, base.ID, DeltaDoc{RemoveNets: []int{-1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, bad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed {
		t.Fatalf("invalid delta job: state %s, want failed", final.State)
	}
	good, err := c.SubmitDelta(ctx, base.ID, DeltaDoc{EdgeBias: []EdgeBiasDoc{{Edge: 0, Delta: 1}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final, err = c.Wait(ctx, good.ID); err != nil || final.State != StateDone {
		t.Fatalf("delta after a rejected one: state %v, err %v", final, err)
	}
}

// TestServerWarmEviction pins the retention bound: with capacity 1, a second
// retained job evicts the first's idle session; deltas on the evicted job
// get 410, deltas on the survivor run.
func TestServerWarmEviction(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	_, c := startServer(t, Config{Workers: 1, MaxWarmSessions: 1})

	first := submitRetained(t, c, in)
	second := submitRetained(t, c, in)

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_sessions"); got != 1 {
		t.Fatalf("warm_sessions = %v, want 1", got)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_evicted_total"); got != 1 {
		t.Fatalf("warm_evicted_total = %v, want 1", got)
	}

	var apiErr *APIError
	if _, err := c.SubmitDelta(ctx, first.ID, DeltaDoc{}, 0); !errors.As(err, &apiErr) || apiErr.Status != 410 {
		t.Fatalf("delta on evicted session: err = %v, want 410", err)
	}
	st, err := c.SubmitDelta(ctx, second.ID, DeltaDoc{EdgeBias: []EdgeBiasDoc{{Edge: 0, Delta: 1}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final, err := c.Wait(ctx, st.ID); err != nil || final.State != StateDone {
		t.Fatalf("delta on surviving session: state %v, err %v", final, err)
	}
}

// TestServerDeltaPoisonDrop pins the poisoning path over the wire: a delta
// whose deadline expires before the reroute mutates state past recovery, so
// the session is dropped (not released) and later deltas get 410.
func TestServerDeltaPoisonDrop(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	_, c := startServer(t, Config{Workers: 1})

	base := submitRetained(t, c, in)
	baseSol, err := c.Solution(ctx, base.ID, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	biased := -1
	for _, es := range baseSol.Routes {
		if len(es) > 0 {
			biased = es[0]
			break
		}
	}
	if biased < 0 {
		t.Fatal("no routed edge")
	}

	// The bias forces a non-empty reroute set; the 1ns deadline is expired
	// before the job starts, so the reroute aborts after the instance and
	// session were already patched — the poisoning case.
	doc := DeltaDoc{EdgeBias: []EdgeBiasDoc{{Edge: biased, Delta: 1}}}
	st, err := c.SubmitDelta(ctx, base.ID, doc, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("expired delta: state %s (error %q), want canceled", final.State, final.Error)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_dropped_total"); got != 1 {
		t.Fatalf("warm_dropped_total = %v, want 1", got)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_sessions"); got != 0 {
		t.Fatalf("warm_sessions = %v, want 0 after the drop", got)
	}
	var apiErr *APIError
	if _, err := c.SubmitDelta(ctx, base.ID, DeltaDoc{}, 0); !errors.As(err, &apiErr) || apiErr.Status != 410 {
		t.Fatalf("delta on dropped session: err = %v, want 410", err)
	}
}
