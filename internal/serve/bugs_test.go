package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tdmroute"
)

// TestJobIDWidensBeyondPadding is the regression test for the fixed-width id
// buffer that truncated ids above 9,999,999 to their low seven digits,
// colliding with earlier jobs.
func TestJobIDWidensBeyondPadding(t *testing.T) {
	if got := jobID(1); got != "j0000001" {
		t.Errorf("jobID(1) = %q, want j0000001", got)
	}
	if got := jobID(9_999_999); got != "j9999999" {
		t.Errorf("jobID(9999999) = %q, want j9999999", got)
	}
	if got := jobID(10_000_000); got != "j10000000" {
		t.Errorf("jobID(10000000) = %q, want j10000000", got)
	}
	// The old truncation mapped these pairs to the same id.
	collisions := [][2]int{{10_000_000, 0}, {10_000_001, 1}, {12_345_678, 2_345_678}}
	for _, c := range collisions {
		if a, b := jobID(c[0]), jobID(c[1]); a == b {
			t.Errorf("jobID(%d) and jobID(%d) collide on %q", c[0], c[1], a)
		}
	}
	// Lexical order still matches submission order in the padded range.
	if jobID(12) >= jobID(345) {
		t.Error("padded ids lost lexical ordering")
	}
}

// TestRunJobObservesDrain forces the shutdown race the drain check in runJob
// closes: a worker dequeues a job, and before it can begin(), a drain
// completes both sweeps (the queue is already empty, and the job is not yet
// running so the cancel sweep skips it). Without the fix the job runs its
// full iteration budget un-cancelled; with it, the solve is cancelled
// immediately and finishes fast.
func TestRunJobObservesDrain(t *testing.T) {
	in := testInstance(t)
	s := New(Config{Workers: -1, QueueDepth: 2})
	req := tdmroute.Request{Instance: in, Options: tdmroute.Options{
		TDM: tdmroute.TDMOptions{Epsilon: 1e-12, MaxIter: 2_000_000},
	}}
	j, ok := s.submit(req, 0, nil)
	if !ok {
		t.Fatal("submit failed")
	}
	// The "worker" dequeues the job...
	jj := <-s.queue
	if jj != j {
		t.Fatal("dequeued a different job")
	}
	// ...and a drain runs to completion before the worker proceeds.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		t.Fatal(err)
	}
	if st := j.currentState(); st != StateQueued {
		t.Fatalf("job state after drain = %s, want still queued (the race window)", st)
	}
	// The worker proceeds. An un-cancelled 2M-iteration solve would hang
	// the test; the drain check degrades it immediately.
	s.runJob(j)
	st := j.currentState()
	if !st.Terminal() {
		t.Fatalf("job state after runJob = %s, want terminal", st)
	}
	if st == StateDone {
		if j.resp == nil || j.resp.Degraded == nil {
			t.Fatal("drained job finished done without Degraded")
		}
	} else if st != StateCanceled {
		t.Fatalf("job state = %s, want done or canceled", st)
	}
}

// TestFinishJobKeepsIncumbent is the regression test for the hard-error path
// that discarded a ModeIterative response carrying a legal best-so-far
// incumbent: the solution must survive, reported as degraded with the error
// on the job.
func TestFinishJobKeepsIncumbent(t *testing.T) {
	in := testInstance(t)
	resp, err := tdmroute.Run(context.Background(),
		tdmroute.Request{Instance: in, Mode: tdmroute.ModeIterative, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: -1})
	j := newJob(jobID(1), tdmroute.Request{Instance: in, Mode: tdmroute.ModeIterative}, 0)
	j.begin(func() {})
	boom := errors.New("injected: round 2 reroute failed")
	s.finishJob(j, resp, boom)

	st := j.status()
	if st.State != StateDone {
		t.Fatalf("state = %s, want done (the incumbent is legal)", st.State)
	}
	if st.Response == nil || st.Response.Solution == nil {
		t.Fatal("incumbent solution was discarded with the error")
	}
	if st.Response.Degraded == nil {
		t.Fatal("kept incumbent does not report Degraded")
	}
	if !errors.Is(st.Response.Degraded.Cause, boom) {
		t.Fatalf("Degraded.Cause = %v, want the injected error", st.Response.Degraded.Cause)
	}
	if !strings.Contains(st.Error, "injected") {
		t.Fatalf("job error %q does not carry the failure", st.Error)
	}
	s.metrics.mu.Lock()
	degraded := s.metrics.outcomes[outcomeDegraded]
	s.metrics.mu.Unlock()
	if degraded != 1 {
		t.Fatalf("degraded outcome count = %d, want 1", degraded)
	}
}

// eventsGet issues a raw SSE request with a Last-Event-ID header and returns
// the full body; ctx bounds the read so a hanging stream fails the test
// instead of wedging it.
func eventsGet(t *testing.T, ctx context.Context, base, id, lastEventID string) (int, string) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading event stream: %v (a cursor beyond the log must not hang the subscriber)", err)
	}
	return resp.StatusCode, string(body)
}

// TestEventsResume covers SSE reconnection: resuming after a seen event
// replays only the rest, and a bogus Last-Event-ID beyond the log — the case
// that used to park the subscriber forever on an unsatisfiable completion
// condition — terminates cleanly with nothing to replay.
func TestEventsResume(t *testing.T) {
	in := testInstance(t)
	_, c := startServer(t, Config{Workers: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, SubmitRequest{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()

	// Full replay: first event is seq 0.
	code, full := eventsGet(t, rctx, c.BaseURL, st.ID, "")
	if code != http.StatusOK || !strings.Contains(full, "id: 0\n") {
		t.Fatalf("full replay: code %d, body %q", code, full)
	}
	// Resume after event 0: replay starts at seq 1.
	_, tail := eventsGet(t, rctx, c.BaseURL, st.ID, "0")
	if strings.Contains(tail, "id: 0\n") || !strings.Contains(tail, "id: 1\n") {
		t.Fatalf("resume after 0 replayed the wrong events: %q", tail)
	}
	// A cursor far beyond the log: the stream must end, replaying nothing.
	_, empty := eventsGet(t, rctx, c.BaseURL, st.ID, "1000000")
	if strings.Contains(empty, "id:") {
		t.Fatalf("bogus cursor replayed events: %q", empty)
	}
	// A malformed cursor is a client error, not a hang.
	code, _ = eventsGet(t, rctx, c.BaseURL, st.ID, "not-a-number")
	if code != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID: code %d, want 400", code)
	}
}

// blockingWriter stalls every Write until released, modeling a slow metrics
// scraper on the far end of an http.ResponseWriter.
type blockingWriter struct {
	entered sync.Once
	in      chan struct{} // closed when the first Write has begun
	release chan struct{} // Writes return once this is closed
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.entered.Do(func() { close(w.in) })
	<-w.release
	return len(p), nil
}

// TestMetricsWriteReleasesLockBeforeSocket is the regression test for the
// exposition writer that held m.mu across fmt.Fprintf calls aimed at the
// HTTP response socket: one slow scraper would stall every worker calling
// observe. The fixed write renders into a buffer under the lock and touches
// the writer only after releasing it, so observe must complete while the
// scraper is still stalled mid-Write.
func TestMetricsWriteReleasesLockBeforeSocket(t *testing.T) {
	var m metrics
	m.init()
	bw := &blockingWriter{in: make(chan struct{}), release: make(chan struct{})}
	done := make(chan struct{})
	go func() {
		m.write(bw, 0, 8, 0, 2, 0, false)
		close(done)
	}()
	<-bw.in
	observed := make(chan struct{})
	go func() {
		m.observe(outcomeDone, nil)
		close(observed)
	}()
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("observe blocked behind a stalled metrics scraper: m.mu is held across the socket write")
	}
	close(bw.release)
	<-done
}
