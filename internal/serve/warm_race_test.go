package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"tdmroute"
)

// TestServerWarmEvictionDeltaRace choreographs the LRU eviction bound against
// concurrent delta traffic and pins the status-code contract at every step:
// a delta on an evicted session is a deterministic 410 (never a resurrection,
// never a 5xx), a delta against a session held by an in-flight delta is a
// deterministic 409, and a busy session is never the eviction victim — the
// retention cap steps around it to the oldest idle entry. At the end the
// registry holds exactly the sessions the choreography left alive: nothing
// leaked, nothing was poisoned.
func TestServerWarmEvictionDeltaRace(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	_, c := startServer(t, Config{Workers: 2, MaxWarmSessions: 2})

	// A and B: fast retained bases filling the cap, A the LRU entry.
	a := submitRetained(t, c, in)
	b := submitRetained(t, c, in)

	// C: a retained base with pathological LR options (the slowSubmit knobs),
	// cancelled mid-LR. The anytime contract still hands back a legal
	// incumbent AND the warm session — whose captured options make every
	// delta on it equally slow, which is what lets the test hold the session
	// busy deterministically below.
	req := slowSubmit(in)
	req.Retain = true
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	awaitLR(t, c, st.ID)
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	cFinal, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cFinal.State != StateDone || cFinal.Response == nil || cFinal.Response.Degraded == nil {
		t.Fatalf("cancelled retained base: state %s, error %q; want done + Degraded", cFinal.State, cFinal.Error)
	}
	if !cFinal.Retained {
		t.Fatal("cancelled retained base did not keep its warm session")
	}
	// Retaining C pushed the registry past the cap; the LRU idle entry is A.
	var apiErr *APIError
	for i := 0; i < 2; i++ {
		if _, err := c.SubmitDelta(ctx, a.ID, DeltaDoc{}, 0); !errors.As(err, &apiErr) || apiErr.Status != 410 {
			t.Fatalf("delta on evicted session (attempt %d): err = %v, want 410 every time", i+1, err)
		}
	}
	if stA, err := c.Status(ctx, a.ID); err != nil || stA.Retained {
		t.Fatalf("evicted base still reports Retained (%v, err %v)", stA, err)
	}

	// Occupy C's session with a genuinely in-flight delta (slow via the
	// session's captured options), then race concurrent deltas against it:
	// every one of them must lose with a 409, none may run, none may poison
	// the session.
	sol, err := c.Solution(ctx, st.ID, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	biased := -1
	for _, es := range sol.Routes {
		if len(es) > 0 {
			biased = es[0]
			break
		}
	}
	if biased < 0 {
		t.Fatal("no routed edge in the incumbent")
	}
	doc := DeltaDoc{EdgeBias: []EdgeBiasDoc{{Edge: biased, Delta: 1}}}
	slow, err := c.SubmitDelta(ctx, st.ID, doc, 0)
	if err != nil {
		t.Fatal(err)
	}
	awaitLR(t, c, slow.ID)

	const racers = 8
	var wg sync.WaitGroup
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.SubmitDelta(ctx, st.ID, doc, 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.As(err, &apiErr) || apiErr.Status != 409 {
			t.Fatalf("racer %d against the busy session: err = %v, want 409", i, err)
		}
	}

	// D: a retained base arriving while C's session is busy. The cap must
	// evict the oldest IDLE session (B), not the busy one.
	d := submitRetained(t, c, in)
	if _, err := c.SubmitDelta(ctx, b.ID, DeltaDoc{}, 0); !errors.As(err, &apiErr) || apiErr.Status != 410 {
		t.Fatalf("delta on session evicted around the busy one: err = %v, want 410", err)
	}

	// Cancel the in-flight delta mid-LR: the anytime contract degrades it to
	// its incumbent, so the session was not poisoned and is released intact.
	if err := c.Cancel(ctx, slow.ID); err != nil {
		t.Fatal(err)
	}
	slowFinal, err := c.Wait(ctx, slow.ID)
	if err != nil {
		t.Fatal(err)
	}
	if slowFinal.State != StateDone || slowFinal.Response == nil || slowFinal.Response.Degraded == nil {
		t.Fatalf("cancelled delta: state %s, error %q; want done + Degraded", slowFinal.State, slowFinal.Error)
	}

	// Final registry state: exactly {C, D} retained, B and A gone, and the
	// counters reconcile — 2 evictions, 8 conflicts, 0 drops.
	for _, tc := range []struct {
		id   string
		want bool
	}{{a.ID, false}, {b.ID, false}, {st.ID, true}, {d.ID, true}} {
		got, err := c.Status(ctx, tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Retained != tc.want {
			t.Errorf("job %s Retained = %v, want %v", tc.id, got.Retained, tc.want)
		}
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_sessions"); got != 2 {
		t.Errorf("warm_sessions = %v, want 2", got)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_evicted_total"); got != 2 {
		t.Errorf("warm_evicted_total = %v, want 2", got)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_conflict_total"); got != racers {
		t.Errorf("warm_conflict_total = %v, want %d", got, racers)
	}
	if got := metricValue(t, metrics, "tdmroutd_warm_dropped_total"); got != 0 {
		t.Errorf("warm_dropped_total = %v (a session was poisoned), want 0", got)
	}
}

// TestWarmRegistryStorm hammers one registry from many goroutines mixing
// put, acquire/release, and drop, then checks the structural invariants the
// server depends on: the registry never exceeds its cap by more than the
// number of concurrently busy sessions, an acquired session is never evicted
// while busy, and the final state is within the cap with nothing left busy.
func TestWarmRegistryStorm(t *testing.T) {
	const cap = 3
	r := newWarmRegistry(cap)

	// A pinned session held busy for the whole storm: eviction must step
	// around it no matter how much churn the other goroutines generate.
	pinnedHandle := &tdmroute.WarmHandle{}
	r.put("pinned", pinnedHandle)
	if h, found, busy := r.acquire("pinned"); !found || busy || h != pinnedHandle {
		t.Fatalf("acquire(pinned) = %v %v %v", h, found, busy)
	}

	const workers = 8
	const opsPerWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				id := fmt.Sprintf("s%d-%d", w, i%5)
				switch i % 4 {
				case 0:
					r.put(id, &tdmroute.WarmHandle{})
				case 1:
					if _, found, busy := r.acquire(id); found && !busy {
						r.release(id)
					}
				case 2:
					r.drop(id)
				default:
					r.has(id)
				}
				if n := r.size(); n > cap+workers+1 {
					t.Errorf("registry size %d blew past cap %d + busy bound", n, cap)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if !r.has("pinned") {
		t.Fatal("busy session was evicted during the storm")
	}
	r.release("pinned")
	if n := r.size(); n > cap {
		t.Fatalf("registry settled at %d sessions, cap is %d", n, cap)
	}
	// The pinned session is idle now, so one more put over cap evicts
	// normally — the storm left no phantom busy flags behind.
	for i := 0; i < cap+1; i++ {
		r.put(fmt.Sprintf("post%d", i), &tdmroute.WarmHandle{})
	}
	if n := r.size(); n != cap {
		t.Fatalf("post-storm fill: size %d, want exactly %d", n, cap)
	}
}
