package serve

import (
	"sync"

	"tdmroute"
)

// warmRegistry pins the warm solver sessions of retained jobs to this node.
// A session is keyed by the job id that produced it; delta submissions
// acquire it exclusively for the duration of the delta job. The registry is
// bounded: retaining a session beyond the cap evicts the least recently used
// idle one (a busy session is never evicted — the delta running on it owns
// the state).
type warmRegistry struct {
	mu      sync.Mutex
	max     int
	seq     int64
	entries map[string]*warmEntry
}

type warmEntry struct {
	handle *tdmroute.WarmHandle
	// busy marks the session as owned by an in-flight delta job; a warm
	// handle is single-threaded, so concurrent deltas conflict (409).
	busy     bool
	lastUsed int64
}

func newWarmRegistry(max int) *warmRegistry {
	return &warmRegistry{max: max, entries: map[string]*warmEntry{}}
}

// put registers a session under id and returns how many idle sessions the
// capacity bound evicted. A non-positive cap disables retention entirely.
func (r *warmRegistry) put(id string, h *tdmroute.WarmHandle) (evicted int, retained bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.max <= 0 {
		return 0, false
	}
	r.seq++
	r.entries[id] = &warmEntry{handle: h, lastUsed: r.seq}
	for len(r.entries) > r.max {
		victim := ""
		var oldest int64
		for vid, e := range r.entries {
			if e.busy || vid == id {
				continue
			}
			if victim == "" || e.lastUsed < oldest {
				victim, oldest = vid, e.lastUsed
			}
		}
		if victim == "" {
			break // everything else is busy; temporarily over cap
		}
		delete(r.entries, victim)
		evicted++
	}
	return evicted, true
}

// acquire hands out the session for exclusive use. found reports whether the
// id has a session at all; busy reports a conflict with an in-flight delta.
func (r *warmRegistry) acquire(id string) (h *tdmroute.WarmHandle, found, busy bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[id]
	if e == nil {
		return nil, false, false
	}
	if e.busy {
		return nil, true, true
	}
	e.busy = true
	r.seq++
	e.lastUsed = r.seq
	return e.handle, true, false
}

// release returns an acquired session to the pool.
func (r *warmRegistry) release(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[id]; e != nil {
		e.busy = false
		r.seq++
		e.lastUsed = r.seq
	}
}

// drop discards a session (poisoned by a failed delta, or no longer wanted).
func (r *warmRegistry) drop(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, id)
}

// has reports whether id currently owns a retained session (busy or idle),
// without acquiring it. It backs the JobStatus.Retained discovery field.
func (r *warmRegistry) has(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[id] != nil
}

// size reports the number of retained sessions, for the metrics gauge.
func (r *warmRegistry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
