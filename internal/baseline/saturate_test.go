package baseline

import (
	"math"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// twoNetInstance is the minimal carrier for adversarial weights: two nets
// routed over the single edge of a 2-FPGA system.
func twoNetInstance() (*problem.Instance, problem.Routing) {
	g := graph.New(2, 1)
	g.AddEdge(0, 1)
	in := &problem.Instance{
		Name:   "saturate",
		G:      g,
		Nets:   []problem.Net{{Terminals: []int{0, 1}}, {Terminals: []int{0, 1}}},
		Groups: []problem.Group{{Nets: []int{0, 1}}},
	}
	in.RebuildNetGroups()
	return in, problem.Routing{{0}, {0}}
}

// TestAssignWeightedSaturates mirrors the tdm legalizer regression test
// (legalize_test.go) on the baseline assigners: the former unguarded
// evenCeil turned an infinite Cauchy–Schwarz pattern value t = Σ√w/√w_n
// into int64(math.Ceil(+Inf)), a platform-defined negative ratio. With the
// shared problem.EvenCeilRatio helper the ratios must saturate and the
// solution must stay legal.
func TestAssignWeightedSaturates(t *testing.T) {
	in, routes := twoNetInstance()
	adversarial := [][]float64{
		{math.Inf(1), 1},          // s = +Inf, finite-weight net gets t = +Inf
		{math.NaN(), 1},           // NaN poisons the edge sum
		{math.MaxFloat64, 1e-300}, // huge spread: t overflows without being Inf
		{0, 0},                    // floored to 1e-6 on both
	}
	for _, weights := range adversarial {
		a := assignWeighted(in, routes, weights)
		for n, row := range a.Ratios {
			for _, r := range row {
				if r < 2 || r%2 != 0 {
					t.Errorf("weights %v: net %d ratio %d is illegal", weights, n, r)
				}
			}
		}
	}
}

// TestAssignersSolutionsStayLegalOnDegenerateGroups runs the exported
// assigners on an instance whose group structure yields zero weights for
// some nets and asserts full solution validity.
func TestAssignersSolutionsStayLegalOnDegenerateGroups(t *testing.T) {
	in, routes := twoNetInstance()
	in.Groups = nil // every net ungrouped: AssignProportional weights all 0
	in.RebuildNetGroups()
	for name, assign := range map[string]func(*problem.Instance, problem.Routing) problem.Assignment{
		"AssignUniform":      AssignUniform,
		"AssignProportional": AssignProportional,
		"AssignGroupCount":   AssignGroupCount,
	} {
		a := assign(in, routes)
		sol := &problem.Solution{Routes: routes, Assign: a}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Errorf("%s: invalid solution: %v", name, err)
		}
	}
}
