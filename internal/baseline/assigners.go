package baseline

import (
	"math"

	"tdmroute/internal/problem"
)

// AssignUniform is the crudest legal TDM assignment: every net on edge e
// receives the ratio legal(|N_e|) — the even ceiling of the edge load. The
// per-edge reciprocal sum is then |N_e| / legal(|N_e|) <= 1.
func AssignUniform(in *problem.Instance, routes problem.Routing) problem.Assignment {
	loads := problem.EdgeLoads(in.G.NumEdges(), routes)
	ratios := emptyRatios(routes)
	for _, ls := range loads {
		if len(ls) == 0 {
			continue
		}
		r := problem.EvenCeilRatio(float64(len(ls)))
		for _, l := range ls {
			ratios[l.Net][l.Pos] = r
		}
	}
	return problem.Assignment{Ratios: ratios}
}

// AssignProportional is a criticality-weighted heuristic of the kind the
// contest winners used: on every edge, net n gets the Cauchy–Schwarz pattern
// value with weight w_n = Σ_{g ∋ n} |g| (nets in more/larger groups are more
// critical and get smaller ratios), legalized to the even ceiling and scaled
// to keep the reciprocal sum within 1.
func AssignProportional(in *problem.Instance, routes problem.Routing) problem.Assignment {
	weights := make([]float64, len(in.Nets))
	for gi := range in.Groups {
		size := float64(len(in.Groups[gi].Nets))
		for _, n := range in.Groups[gi].Nets {
			weights[n] += size
		}
	}
	return assignWeighted(in, routes, weights)
}

// AssignGroupCount is a second winner-style heuristic weighting nets by the
// number of groups containing them (ignoring group sizes).
func AssignGroupCount(in *problem.Instance, routes problem.Routing) problem.Assignment {
	weights := make([]float64, len(in.Nets))
	for n := range in.Nets {
		weights[n] = float64(len(in.Nets[n].Groups))
	}
	return assignWeighted(in, routes, weights)
}

// assignWeighted builds, per edge, the closed-form pattern
// t_n = (Σ √w) / √w_n (whose reciprocals sum to exactly 1) and legalizes it
// with the even ceiling; raising a ratio lowers its reciprocal, so the edge
// constraint stays satisfied. This is effectively a single pattern-generation
// step with static weights — no iteration and no refinement, which is what
// separates the winners' quality from the paper's LR flow.
func assignWeighted(in *problem.Instance, routes problem.Routing, weights []float64) problem.Assignment {
	const floor = 1e-6
	loads := problem.EdgeLoads(in.G.NumEdges(), routes)
	ratios := emptyRatios(routes)
	for _, ls := range loads {
		if len(ls) == 0 {
			continue
		}
		var s float64
		for _, l := range ls {
			s += math.Sqrt(math.Max(weights[l.Net], floor))
		}
		for _, l := range ls {
			t := s / math.Sqrt(math.Max(weights[l.Net], floor))
			// The shared helper saturates non-finite or huge patterns (an
			// unguarded int64(math.Ceil(t)) overflows platform-defined).
			ratios[l.Net][l.Pos] = problem.EvenCeilRatio(t)
		}
	}
	return problem.Assignment{Ratios: ratios}
}

func emptyRatios(routes problem.Routing) [][]int64 {
	ratios := make([][]int64, len(routes))
	for n := range routes {
		ratios[n] = make([]int64, len(routes[n]))
	}
	return ratios
}
