package baseline

import (
	"context"
	"testing"

	"tdmroute/internal/eval"
	"tdmroute/internal/gen"
	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
	"tdmroute/internal/tdm"
)

func testInstance(t *testing.T, seed int64) *problem.Instance {
	t.Helper()
	in, err := gen.Generate(gen.Config{
		Name: "bench", Seed: seed, FPGAs: 25, Edges: 55, Nets: 400, Groups: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestAllWinnersProduceLegalSolutions(t *testing.T) {
	in := testInstance(t, 1)
	for _, w := range Winners() {
		sol, err := w.Solve(in)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Errorf("%s: invalid solution: %v", w.Name, err)
		}
	}
}

func TestWinnersQualityOrdering(t *testing.T) {
	// The emulated entries must reproduce the Table II shape: "1st" worst
	// GTR, "3rd" best of the three (averaged over seeds to avoid noise).
	var totals [3]float64
	for seed := int64(0); seed < 3; seed++ {
		in := testInstance(t, 10+seed)
		for i, w := range Winners() {
			sol, err := w.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			gtr, _ := eval.MaxGroupTDM(in, sol)
			totals[i] += float64(gtr)
		}
	}
	if !(totals[0] > totals[1] && totals[1] > totals[2]) {
		t.Errorf("quality ordering violated: 1st=%.0f 2nd=%.0f 3rd=%.0f", totals[0], totals[1], totals[2])
	}
}

func TestOurTAImprovesEveryWinner(t *testing.T) {
	// The paper's key claim: applying the LR TDM assignment to the
	// winners' own topologies improves every one of them.
	in := testInstance(t, 2)
	for _, w := range Winners() {
		routes, err := w.Route(in)
		if err != nil {
			t.Fatal(err)
		}
		own := w.Assign(in, routes)
		ownGTR, _ := eval.MaxGroupTDM(in, &problem.Solution{Routes: routes, Assign: own})

		improved, rep, err := tdm.Assign(context.Background(), in, routes, tdm.Options{Epsilon: 1e-3, MaxIter: 600})
		if err != nil {
			t.Fatal(err)
		}
		if err := problem.ValidateSolution(in, &problem.Solution{Routes: routes, Assign: improved}); err != nil {
			t.Fatalf("%s+TA: invalid: %v", w.Name, err)
		}
		if rep.GTRMax > ownGTR {
			t.Errorf("%s: TA worsened GTR: %d -> %d", w.Name, ownGTR, rep.GTRMax)
		}
		if float64(rep.GTRMax) < rep.LowerBound-1e-6*rep.LowerBound {
			t.Errorf("%s+TA: GTR %d below LB %g", w.Name, rep.GTRMax, rep.LowerBound)
		}
	}
}

func TestRoutersValidOnSuite(t *testing.T) {
	suite, err := gen.Suite(0.0005)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range suite[:3] { // keep the test fast
		for _, w := range Winners() {
			routes, err := w.Route(in)
			if err != nil {
				t.Fatalf("%s on %s: %v", w.Name, in.Name, err)
			}
			if err := problem.ValidateRouting(in, routes); err != nil {
				t.Errorf("%s on %s: %v", w.Name, in.Name, err)
			}
		}
	}
}

func TestAssignUniformRatioValue(t *testing.T) {
	// Two nets sharing one edge: uniform assignment gives both ratio 2.
	in, routes := twoNetsOneEdge()
	assign := AssignUniform(in, routes)
	if assign.Ratios[0][0] != 2 || assign.Ratios[1][0] != 2 {
		t.Errorf("ratios = %v", assign.Ratios)
	}
	// Three nets on one edge: |N_e| = 3 -> even ceil 4.
	in3, routes3 := kNetsOneEdge(3)
	assign = AssignUniform(in3, routes3)
	for n := 0; n < 3; n++ {
		if assign.Ratios[n][0] != 4 {
			t.Errorf("net %d ratio = %d, want 4", n, assign.Ratios[n][0])
		}
	}
}

func TestAssignProportionalFavorsCritical(t *testing.T) {
	// Net 0 in a big group, net 1 in a singleton group: net 0 must get
	// the smaller ratio on the shared edge.
	in, routes := twoNetsOneEdge()
	in.Groups = []problem.Group{{Nets: []int{0, 1}}, {Nets: []int{0}}, {Nets: []int{1}}}
	in.Groups[0].Nets = []int{0}
	in.Groups[0].Nets = append(in.Groups[0].Nets, 1)
	in.Groups = []problem.Group{
		{Nets: []int{0, 1}}, // both
		{Nets: []int{0}},    // extra weight on net 0
		{Nets: []int{0}},
	}
	in.RebuildNetGroups()
	assign := AssignProportional(in, routes)
	if assign.Ratios[0][0] >= assign.Ratios[1][0] {
		t.Errorf("critical net ratio %d >= non-critical %d", assign.Ratios[0][0], assign.Ratios[1][0])
	}
	sol := &problem.Solution{Routes: routes, Assign: assign}
	if err := problem.ValidateSolution(in, sol); err != nil {
		t.Fatal(err)
	}
}

func TestAssignersHandleUngroupedNets(t *testing.T) {
	in, routes := twoNetsOneEdge()
	in.Groups = nil
	in.RebuildNetGroups()
	for _, assign := range []problem.Assignment{
		AssignUniform(in, routes),
		AssignProportional(in, routes),
		AssignGroupCount(in, routes),
	} {
		sol := &problem.Solution{Routes: routes, Assign: assign}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Errorf("ungrouped nets: %v", err)
		}
	}
}

func TestEvenCeil(t *testing.T) {
	// The baseline assigners share problem.EvenCeilRatio with the TDM
	// legalizer; keep the small-value contract pinned here too.
	cases := []struct {
		in   float64
		want int64
	}{{0, 2}, {2, 2}, {2.1, 4}, {3, 4}, {4, 4}, {5.5, 6}}
	for _, c := range cases {
		if got := problem.EvenCeilRatio(c.in); got != c.want {
			t.Errorf("EvenCeilRatio(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSortByStable(t *testing.T) {
	s := []int{3, 1, 4, 1, 5, 9, 2, 6}
	sortBy(s, func(a, b int) bool { return a < b })
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatalf("not sorted: %v", s)
		}
	}
	// Stability: equal keys keep input order.
	vals := []int{0, 1, 2, 3}
	key := map[int]int{0: 1, 1: 1, 2: 0, 3: 0}
	sortBy(vals, func(a, b int) bool { return key[a] < key[b] })
	if vals[0] != 2 || vals[1] != 3 || vals[2] != 0 || vals[3] != 1 {
		t.Errorf("unstable: %v", vals)
	}
}

func TestPathFinderReducesOveruse(t *testing.T) {
	in := testInstance(t, 5)
	first, err := RouteShortestPath(in)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := RoutePathFinder(in)
	if err != nil {
		t.Fatal(err)
	}
	if maxUsage(in, pf) > maxUsage(in, first)+2 {
		t.Errorf("pathfinder max edge usage %d much worse than naive %d", maxUsage(in, pf), maxUsage(in, first))
	}
}

func maxUsage(in *problem.Instance, routes problem.Routing) int {
	usage := make([]int, in.G.NumEdges())
	best := 0
	for _, edges := range routes {
		for _, e := range edges {
			usage[e]++
			if usage[e] > best {
				best = usage[e]
			}
		}
	}
	return best
}

func twoNetsOneEdge() (*problem.Instance, problem.Routing) {
	return kNetsOneEdge(2)
}

func kNetsOneEdge(k int) (*problem.Instance, problem.Routing) {
	g := graph.New(2, 1)
	g.AddEdge(0, 1)
	in := &problem.Instance{G: g, Nets: make([]problem.Net, k)}
	routes := make(problem.Routing, k)
	for i := 0; i < k; i++ {
		in.Nets[i].Terminals = []int{0, 1}
		routes[i] = []int{0}
	}
	in.Groups = make([]problem.Group, k)
	for i := 0; i < k; i++ {
		in.Groups[i].Nets = []int{i}
	}
	in.RebuildNetGroups()
	return in, routes
}
