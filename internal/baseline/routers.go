// Package baseline provides the comparison flows used by the Table II
// experiment. The paper compares against the binaries of the ICCAD 2019 CAD
// Contest top-3 winners, which are not available; this package substitutes
// three self-contained flows of graded quality (see DESIGN.md §2):
//
//   - "1st"-style: fastest and crudest — shortest-path routing in netlist
//     order (congestion seen only via already-routed nets), uniform |N_e|
//     TDM ratios.
//   - "2nd"-style: congestion-aware routing plus a criticality-proportional
//     TDM heuristic.
//   - "3rd"-style: PathFinder-lite iterative routing (history + present
//     congestion negotiation) plus the proportional TDM heuristic — the best
//     topology of the three, at the highest routing cost.
//
// All three produce legal solutions; none runs the paper's LR/refinement, so
// tdmroute.AssignTDM applied to their topologies reproduces the "+TA" rows.
package baseline

import (
	"fmt"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
)

// kmbRouter embeds each net's terminal MST as shortest paths under a
// caller-chosen edge cost, sharing the machinery between the three baseline
// routers.
type kmbRouter struct {
	in      *problem.Instance
	apsp    *graph.APSP
	dij     *graph.Dijkstra
	cleaner *graph.SteinerCleaner

	usage    []uint32 // nets currently routed per edge
	history  []uint32 // PathFinder history cost
	ownStamp []uint32
	ownEpoch uint32
}

func newKMBRouter(in *problem.Instance) *kmbRouter {
	return &kmbRouter{
		in:       in,
		apsp:     graph.NewAPSP(in.G),
		dij:      graph.NewDijkstra(in.G),
		cleaner:  graph.NewSteinerCleaner(in.G),
		usage:    make([]uint32, in.G.NumEdges()),
		history:  make([]uint32, in.G.NumEdges()),
		ownStamp: make([]uint32, in.G.NumEdges()),
	}
}

// routeNet embeds net n under costFn and returns its Steiner tree without
// touching usage counters.
func (r *kmbRouter) routeNet(n int, costFn graph.EdgeCostFunc) ([]int, error) {
	terms := r.in.Nets[n].Terminals
	if len(terms) <= 1 {
		return nil, nil
	}
	r.ownEpoch++
	if r.ownEpoch == 0 {
		for i := range r.ownStamp {
			r.ownStamp[i] = 0
		}
		r.ownEpoch = 1
	}
	k := len(terms)
	edges := make([]graph.WeightedEdge, 0, k*(k-1)/2)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			d := r.apsp.Dist(terms[i], terms[j])
			if d == graph.Unreachable {
				return nil, fmt.Errorf("baseline: net %d: disconnected terminals", n)
			}
			edges = append(edges, graph.WeightedEdge{U: i, V: j, Weight: int64(d)})
		}
	}
	mst := graph.Kruskal(k, edges)

	var union []int
	for _, me := range mst {
		start := len(union)
		var ok bool
		union, _, ok = r.dij.ShortestPath(terms[me.U], terms[me.V], costFn, union)
		if !ok {
			return nil, fmt.Errorf("baseline: net %d: no path", n)
		}
		for _, e := range union[start:] {
			r.ownStamp[e] = r.ownEpoch
		}
	}
	tree, ok := r.cleaner.Clean(union, terms)
	if !ok {
		return nil, fmt.Errorf("baseline: net %d: disconnected union", n)
	}
	return tree, nil
}

// RouteShortestPath is the "1st"-style router: nets in netlist order, edge
// cost = nets already routed (the crudest congestion signal), no rip-up, no
// NetGroup awareness.
func RouteShortestPath(in *problem.Instance) (problem.Routing, error) {
	r := newKMBRouter(in)
	costFn := func(e int) uint64 {
		if r.ownStamp[e] == r.ownEpoch {
			return 0
		}
		return uint64(r.usage[e])
	}
	routes := make(problem.Routing, len(in.Nets))
	for n := range in.Nets {
		tree, err := r.routeNet(n, costFn)
		if err != nil {
			return nil, err
		}
		routes[n] = tree
		for _, e := range tree {
			r.usage[e]++
		}
	}
	return routes, nil
}

// RouteCongestion is the "2nd"-style router: like RouteShortestPath but
// nets are ordered by decreasing terminal spread (larger nets first, so
// small nets fill the gaps) and the congestion cost is squared, spreading
// load harder.
func RouteCongestion(in *problem.Instance) (problem.Routing, error) {
	r := newKMBRouter(in)
	costFn := func(e int) uint64 {
		if r.ownStamp[e] == r.ownEpoch {
			return 0
		}
		u := uint64(r.usage[e])
		return u * u
	}
	order := netsBySpread(in, r.apsp)
	routes := make(problem.Routing, len(in.Nets))
	for _, n := range order {
		tree, err := r.routeNet(n, costFn)
		if err != nil {
			return nil, err
		}
		routes[n] = tree
		for _, e := range tree {
			r.usage[e]++
		}
	}
	return routes, nil
}

// PathFinderIterations is the negotiation round count of RoutePathFinder.
const PathFinderIterations = 4

// RoutePathFinder is the "3rd"-style router: PathFinder-lite negotiated
// congestion. Every iteration reroutes all nets with edge cost
// (1 + history) · (1 + present), then adds the over-use of each edge to its
// history; later iterations therefore avoid historically contended edges.
func RoutePathFinder(in *problem.Instance) (problem.Routing, error) {
	r := newKMBRouter(in)
	routes := make(problem.Routing, len(in.Nets))
	costFn := func(e int) uint64 {
		if r.ownStamp[e] == r.ownEpoch {
			return 0
		}
		//lint:ignore satarith usage <= |nets| and history <= PathFinderIterations*|nets|, so the biased product stays far below 2^64 for any instance that fits in memory
		return (1 + uint64(r.history[e])) * (1 + uint64(r.usage[e]))
	}
	for iter := 0; iter < PathFinderIterations; iter++ {
		for n := range in.Nets {
			// Rip up the previous route of n (absent in iteration 0).
			for _, e := range routes[n] {
				r.usage[e]--
			}
			tree, err := r.routeNet(n, costFn)
			if err != nil {
				return nil, err
			}
			routes[n] = tree
			for _, e := range tree {
				r.usage[e]++
			}
		}
		// Accumulate history on contended edges.
		for e := range r.history {
			if r.usage[e] > 1 {
				//lint:ignore satarith bounded accumulation: at most PathFinderIterations additions of usage-1 <= |nets|, far below 2^32
				r.history[e] += r.usage[e] - 1
			}
		}
	}
	return routes, nil
}

// netsBySpread orders nets by decreasing total pairwise terminal distance.
func netsBySpread(in *problem.Instance, apsp *graph.APSP) []int {
	spread := make([]int64, len(in.Nets))
	for n := range in.Nets {
		terms := in.Nets[n].Terminals
		for i := 0; i < len(terms); i++ {
			for j := i + 1; j < len(terms); j++ {
				if d := apsp.Dist(terms[i], terms[j]); d != graph.Unreachable {
					spread[n] += int64(d)
				}
			}
		}
	}
	order := make([]int, len(in.Nets))
	for i := range order {
		order[i] = i
	}
	// Insertion-stable sort by decreasing spread.
	sortBy(order, func(a, b int) bool { return spread[a] > spread[b] })
	return order
}

// sortBy is a small stable merge sort to keep the package free of closures
// over sort.SliceStable in hot paths.
func sortBy(s []int, less func(a, b int) bool) {
	if len(s) < 2 {
		return
	}
	mid := len(s) / 2
	left := append([]int(nil), s[:mid]...)
	right := append([]int(nil), s[mid:]...)
	sortBy(left, less)
	sortBy(right, less)
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if less(right[j], left[i]) {
			s[k] = right[j]
			j++
		} else {
			s[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		s[k] = left[i]
		i++
		k++
	}
	for j < len(right) {
		s[k] = right[j]
		j++
		k++
	}
}
