package baseline

import "tdmroute/internal/problem"

// Winner is one emulated contest entry: a router plus its own TDM ratio
// assigner. Applying tdmroute.AssignTDM to Route's output instead of Assign
// reproduces the "+TA" rows of Table II.
type Winner struct {
	// Name is the Table II row label ("1st", "2nd", "3rd").
	Name string
	// Route computes the entry's routing topology.
	Route func(in *problem.Instance) (problem.Routing, error)
	// Assign computes the entry's own (heuristic) TDM ratios.
	Assign func(in *problem.Instance, routes problem.Routing) problem.Assignment
}

// Winners returns the three emulated contest entries in Table II order.
// Quality ordering mirrors the paper's observations: "1st" is the fastest
// and has the worst GTR_max; "3rd" has the best GTR_max among the three at
// the highest routing cost.
func Winners() []Winner {
	return []Winner{
		{Name: "1st", Route: RouteShortestPath, Assign: AssignUniform},
		{Name: "2nd", Route: RouteCongestion, Assign: AssignGroupCount},
		{Name: "3rd", Route: RoutePathFinder, Assign: AssignProportional},
	}
}

// Solve runs the winner's full flow and returns a legal solution.
func (w Winner) Solve(in *problem.Instance) (*problem.Solution, error) {
	routes, err := w.Route(in)
	if err != nil {
		return nil, err
	}
	assign := w.Assign(in, routes)
	return &problem.Solution{Routes: routes, Assign: assign}, nil
}
