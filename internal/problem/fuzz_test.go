package problem

import (
	"bytes"
	"errors"
	"testing"
)

// Native fuzz targets: the parsers must never panic, never hang, and any
// accepted input must satisfy the validator (run with `go test -fuzz` for
// continuous fuzzing; the seeds below run in normal test mode).

func FuzzParseInstance(f *testing.F) {
	f.Add([]byte("2 1 1 1\n0 1\n2 0 1\n1 0\n"))
	f.Add([]byte(tinyText))
	f.Add([]byte(""))
	f.Add([]byte("999999999 0 0 0"))
	f.Add([]byte("3 2 2 1\n0 1\n1 2\n2 0 2\n2 1 2\n2 0 1\n# comment"))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ParseInstance("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		// Connectivity is a semantic property the parser deliberately
		// does not enforce; every structural defect must be caught.
		if verr := ValidateInstance(in); verr != nil && !errors.Is(verr, ErrDisconnected) {
			t.Fatalf("parser accepted invalid instance: %v\ninput: %q", verr, data)
		}
		// Accepted instances must round-trip.
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ParseInstance("fuzz-rt", &buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(back.Nets) != len(in.Nets) || len(back.Groups) != len(in.Groups) {
			t.Fatal("round trip changed shape")
		}
	})
}

func FuzzParseSolution(f *testing.F) {
	f.Add([]byte("1\n1 0 2\n"), 5)
	f.Add([]byte("0\n"), 1)
	f.Add([]byte("2\n0\n2 0 2 1 4\n"), 3)
	f.Fuzz(func(t *testing.T, data []byte, numEdges int) {
		if numEdges < 0 || numEdges > 1000 {
			numEdges = 10
		}
		sol, err := ParseSolution(bytes.NewReader(data), numEdges)
		if err != nil {
			return
		}
		for n := range sol.Routes {
			if len(sol.Routes[n]) != len(sol.Assign.Ratios[n]) {
				t.Fatal("accepted solution with mismatched lengths")
			}
			for _, e := range sol.Routes[n] {
				if e < 0 || e >= numEdges {
					t.Fatalf("accepted out-of-range edge %d", e)
				}
			}
		}
	})
}

func FuzzParseInstanceJSON(f *testing.F) {
	f.Add([]byte(`{"fpgas":2,"edges":[[0,1]],"nets":[[0,1]],"groups":[[0]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"fpgas":-5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ParseInstanceJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := ValidateInstance(in); verr != nil && !errors.Is(verr, ErrDisconnected) {
			t.Fatalf("JSON parser accepted invalid instance: %v\ninput: %q", verr, data)
		}
	})
}
