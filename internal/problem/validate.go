package problem

import (
	"errors"
	"fmt"

	"tdmroute/internal/graph"
)

// ErrDisconnected reports an instance whose FPGA graph cannot carry its
// multi-FPGA nets. It is a semantic (not structural) defect: parsers accept
// such instances, ValidateInstance rejects them, and routers would fail on
// them.
var ErrDisconnected = errors.New("FPGA graph is not connected but multi-FPGA nets exist")

// ValidateInstance checks structural well-formedness of an instance:
// non-empty connected FPGA graph (when any net needs routing), in-range and
// distinct terminals, in-range sorted group members, and consistent
// Net.Groups back-references.
func ValidateInstance(in *Instance) error {
	nv := in.G.NumVertices()
	for i := range in.Nets {
		terms := in.Nets[i].Terminals
		if len(terms) == 0 {
			return fmt.Errorf("net %d has no terminals", i)
		}
		seen := make(map[int]bool, len(terms))
		for _, t := range terms {
			if t < 0 || t >= nv {
				return fmt.Errorf("net %d: terminal %d out of range [0,%d)", i, t, nv)
			}
			if seen[t] {
				return fmt.Errorf("net %d: duplicate terminal %d", i, t)
			}
			seen[t] = true
		}
	}
	for gi := range in.Groups {
		members := in.Groups[gi].Nets
		if len(members) == 0 {
			return fmt.Errorf("group %d is empty", gi)
		}
		for j, n := range members {
			if n < 0 || n >= len(in.Nets) {
				return fmt.Errorf("group %d: net %d out of range", gi, n)
			}
			if j > 0 && members[j] <= members[j-1] {
				return fmt.Errorf("group %d: members not sorted/unique at position %d", gi, j)
			}
		}
	}
	// Back-references must match group membership exactly.
	want := make([][]int, len(in.Nets))
	for gi := range in.Groups {
		for _, n := range in.Groups[gi].Nets {
			want[n] = append(want[n], gi)
		}
	}
	for i := range in.Nets {
		got := in.Nets[i].Groups
		if len(got) != len(want[i]) {
			return fmt.Errorf("net %d: Groups back-reference has %d entries, want %d (call RebuildNetGroups)", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				return fmt.Errorf("net %d: Groups back-reference mismatch at %d", i, j)
			}
		}
	}
	if needsRouting(in) && !in.G.Connected() {
		return ErrDisconnected
	}
	return nil
}

func needsRouting(in *Instance) bool {
	for i := range in.Nets {
		if len(in.Nets[i].Terminals) > 1 {
			return true
		}
	}
	return false
}

// ValidateRouting checks that routes is a legal topology for in: one route
// per net, edge ids in range, each route a cycle-free connected tree whose
// vertex set contains all the net's terminals, with no duplicate edges.
func ValidateRouting(in *Instance, routes Routing) error {
	if len(routes) != len(in.Nets) {
		return fmt.Errorf("routing has %d nets, instance has %d", len(routes), len(in.Nets))
	}
	ne := in.G.NumEdges()
	for n, edges := range routes {
		terms := in.Nets[n].Terminals
		if len(terms) <= 1 {
			if len(edges) != 0 {
				return fmt.Errorf("net %d: single-terminal net has %d edges", n, len(edges))
			}
			continue
		}
		if len(edges) == 0 {
			return fmt.Errorf("net %d: multi-terminal net is unrouted", n)
		}
		dsu := graph.NewDSU(in.G.NumVertices())
		seen := make(map[int]bool, len(edges))
		for _, e := range edges {
			if e < 0 || e >= ne {
				return fmt.Errorf("net %d: edge id %d out of range", n, e)
			}
			if seen[e] {
				return fmt.Errorf("net %d: duplicate edge %d", n, e)
			}
			seen[e] = true
			ed := in.G.Edge(e)
			if !dsu.Union(ed.U, ed.V) {
				return fmt.Errorf("net %d: route contains a cycle at edge %d", n, e)
			}
		}
		for _, t := range terms[1:] {
			if !dsu.Same(terms[0], t) {
				return fmt.Errorf("net %d: terminal %d not connected by route", n, t)
			}
		}
	}
	return nil
}

// ValidateSolution checks routing legality plus the TDM ratio constraints of
// Sec. II-A: every ratio a positive even integer, and on every edge the
// reciprocals of the ratios of the nets routed through it sum to at most 1.
func ValidateSolution(in *Instance, sol *Solution) error {
	if err := ValidateRouting(in, sol.Routes); err != nil {
		return err
	}
	if len(sol.Assign.Ratios) != len(sol.Routes) {
		return fmt.Errorf("assignment has %d nets, routing has %d", len(sol.Assign.Ratios), len(sol.Routes))
	}
	for n, edges := range sol.Routes {
		if len(sol.Assign.Ratios[n]) != len(edges) {
			return fmt.Errorf("net %d: %d ratios for %d edges", n, len(sol.Assign.Ratios[n]), len(edges))
		}
		for k, r := range sol.Assign.Ratios[n] {
			if r < 2 || r%2 != 0 {
				return fmt.Errorf("net %d edge %d: ratio %d is not a positive even integer", n, sol.Routes[n][k], r)
			}
		}
	}
	// Per-edge capacity: sum of reciprocals <= 1. Verified exactly in
	// integers: sum(1/r_i) <= 1  <=>  sum(L/r_i) <= L for L = lcm — too
	// costly; instead verify with float64 and a conservative epsilon, then
	// confirm borderline edges with a big-rational check.
	loads := EdgeLoads(in.G.NumEdges(), sol.Routes)
	for e, ls := range loads {
		var sum float64
		for _, l := range ls {
			sum += 1.0 / float64(sol.Assign.Ratios[l.Net][l.Pos])
		}
		const eps = 1e-9
		if sum > 1+eps {
			return fmt.Errorf("edge %d: reciprocal sum %.12f exceeds 1", e, sum)
		}
		if sum > 1-eps { // borderline: confirm exactly
			if !reciprocalSumAtMostOne(ls, sol.Assign.Ratios) {
				return fmt.Errorf("edge %d: reciprocal sum exceeds 1 (exact check)", e)
			}
		}
	}
	return nil
}

// reciprocalSumAtMostOne checks sum over loads of 1/ratio <= 1 exactly using
// a running fraction num/den in big-int-free form: it maintains the sum as a
// pair (num, den) reduced by GCD at each step. Ratios are bounded (<= 2^40
// in practice) and edges carry at most a few thousand nets, so den fits in
// int64 after reduction in realistic cases; on overflow it falls back to a
// conservative false.
func reciprocalSumAtMostOne(ls []EdgeLoad, ratios [][]int64) bool {
	var num, den int64 = 0, 1
	for _, l := range ls {
		r := ratios[l.Net][l.Pos]
		// sum = num/den + 1/r = (num*r + den) / (den*r)
		nr, ok1 := mulInt64(num, r)
		dr, ok2 := mulInt64(den, r)
		if !ok1 || !ok2 {
			return false
		}
		num = nr + den
		den = dr
		g := gcd64(num, den)
		num /= g
		den /= g
		if num > den {
			return false
		}
	}
	return num <= den
}

func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
