package problem

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"tdmroute/internal/graph"
)

// tinyInstance builds the 6-FPGA, 7-edge example of Fig. 1(a)-like shape:
//
//	0-1, 1-2, 2-3, 3-4, 4-5, 5-0, 1-4
//
// with three nets and two groups.
func tinyInstance() *Instance {
	g := graph.New(6, 7)
	g.AddEdge(0, 1) // e0
	g.AddEdge(1, 2) // e1
	g.AddEdge(2, 3) // e2
	g.AddEdge(3, 4) // e3
	g.AddEdge(4, 5) // e4
	g.AddEdge(5, 0) // e5
	g.AddEdge(1, 4) // e6
	in := &Instance{
		Name: "tiny",
		G:    g,
		Nets: []Net{
			{Terminals: []int{0, 2}},
			{Terminals: []int{1, 3, 5}},
			{Terminals: []int{2, 4}},
		},
		Groups: []Group{
			{Nets: []int{0, 1}},
			{Nets: []int{1, 2}},
		},
	}
	in.RebuildNetGroups()
	return in
}

const tinyText = `# a comment
6 7 3 2
0 1
1 2
2 3
3 4
4 5
5 0
1 4

2 0 2
3 1 3 5
2 2 4
2 0 1   # trailing comment
2 1 2
`

func TestParseInstanceBasic(t *testing.T) {
	in, err := ParseInstance("tiny", strings.NewReader(tinyText))
	if err != nil {
		t.Fatal(err)
	}
	if in.G.NumVertices() != 6 || in.G.NumEdges() != 7 {
		t.Fatalf("graph %dx%d", in.G.NumVertices(), in.G.NumEdges())
	}
	if len(in.Nets) != 3 || len(in.Groups) != 2 {
		t.Fatalf("nets=%d groups=%d", len(in.Nets), len(in.Groups))
	}
	if got := in.Nets[1].Terminals; len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("net 1 terminals = %v", got)
	}
	if got := in.Nets[1].Groups; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("net 1 groups = %v", got)
	}
	if got := in.Nets[0].Groups; len(got) != 1 || got[0] != 0 {
		t.Errorf("net 0 groups = %v", got)
	}
	if err := ValidateInstance(in); err != nil {
		t.Errorf("ValidateInstance: %v", err)
	}
}

func TestParseInstanceRejectsDuplicateTerminals(t *testing.T) {
	text := "2 1 1 1\n0 1\n3 0 1 0\n1 0\n"
	_, err := ParseInstance("dup", strings.NewReader(text))
	if err == nil {
		t.Fatal("duplicate terminal accepted")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *ParseError", err)
	}
	if pe.Line != 3 || pe.Token != "0" {
		t.Errorf("ParseError located at line %d token %q, want line 3 token \"0\"", pe.Line, pe.Token)
	}
}

func TestParseInstanceRejectsDuplicateGroupMembers(t *testing.T) {
	text := "3 2 2 1\n0 1\n1 2\n2 0 1\n2 1 2\n3 1 0 1\n"
	_, err := ParseInstance("dupgroup", strings.NewReader(text))
	if err == nil {
		t.Fatal("duplicate group member accepted")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *ParseError", err)
	}
	if pe.Line != 6 || pe.Token != "1" {
		t.Errorf("ParseError located at line %d token %q, want line 6 token \"1\"", pe.Line, pe.Token)
	}
}

func TestParseErrorsAreTyped(t *testing.T) {
	// Every text-parser failure must surface as a *ParseError with a
	// plausible location, whatever the corruption.
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"badinteger", "2 x 0 0\n"},
		{"truncated", "2 1 1 1\n0 1\n2 0 1\n"},
		{"selfloop", "2 1 0 0\n# comment\n1 1\n"},
	}
	for _, c := range cases {
		_, err := ParseInstance(c.name, strings.NewReader(c.text))
		if err == nil {
			t.Errorf("%s: expected parse error", c.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *ParseError", c.name, err)
			continue
		}
		if pe.Line < 1 {
			t.Errorf("%s: ParseError has no line: %+v", c.name, pe)
		}
	}
}

func TestParseInstanceErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"badheader", "2 x 0 0\n"},
		{"negativecounts", "-1 0 0 0\n"},
		{"edgerange", "2 1 0 0\n0 5\n"},
		{"selfloop", "2 1 0 0\n1 1\n"},
		{"nettermcount", "2 1 1 0\n0 1\n0\n"},
		{"nettermrange", "2 1 1 0\n0 1\n1 9\n"},
		{"groupempty", "2 1 1 1\n0 1\n2 0 1\n0\n"},
		{"groupnetrange", "2 1 1 1\n0 1\n2 0 1\n1 4\n"},
		{"truncated", "2 1 1 1\n0 1\n2 0 1\n"},
	}
	for _, c := range cases {
		if _, err := ParseInstance(c.name, strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	in := tinyInstance()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ParseInstance("tiny", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.G.NumEdges() != in.G.NumEdges() || len(back.Nets) != len(in.Nets) || len(back.Groups) != len(in.Groups) {
		t.Fatal("round-trip size mismatch")
	}
	for i := range in.Nets {
		a, b := in.Nets[i].Terminals, back.Nets[i].Terminals
		if len(a) != len(b) {
			t.Fatalf("net %d terminals differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("net %d terminal %d differs", i, j)
			}
		}
	}
	for gi := range in.Groups {
		a, b := in.Groups[gi].Nets, back.Groups[gi].Nets
		if len(a) != len(b) {
			t.Fatalf("group %d differs", gi)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("group %d member %d differs", gi, j)
			}
		}
	}
}

func TestSolutionRoundTrip(t *testing.T) {
	sol := &Solution{
		Routes: Routing{{0, 1}, {1, 6, 4}, {}},
		Assign: Assignment{Ratios: [][]int64{{2, 4}, {6, 2, 8}, {}}},
	}
	var buf bytes.Buffer
	if err := WriteSolution(&buf, sol); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSolution(&buf, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Routes) != 3 {
		t.Fatalf("nets = %d", len(back.Routes))
	}
	for n := range sol.Routes {
		if len(back.Routes[n]) != len(sol.Routes[n]) {
			t.Fatalf("net %d route len", n)
		}
		for k := range sol.Routes[n] {
			if back.Routes[n][k] != sol.Routes[n][k] || back.Assign.Ratios[n][k] != sol.Assign.Ratios[n][k] {
				t.Fatalf("net %d pos %d mismatch", n, k)
			}
		}
	}
}

func TestParseSolutionEdgeRange(t *testing.T) {
	if _, err := ParseSolution(strings.NewReader("1\n1 9 2\n"), 5); err == nil {
		t.Error("expected out-of-range edge error")
	}
}

func TestParseSolutionRejectsDuplicateEdges(t *testing.T) {
	_, err := ParseSolution(strings.NewReader("1\n2 3 2 3 4\n"), 5)
	if err == nil {
		t.Fatal("duplicate routed edge accepted")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *ParseError", err)
	}
	if pe.Line != 2 || pe.Token != "3" {
		t.Errorf("ParseError located at line %d token %q, want line 2 token \"3\"", pe.Line, pe.Token)
	}
}

func TestParseSolutionRejectsNegativeRatio(t *testing.T) {
	_, err := ParseSolution(strings.NewReader("1\n1 0 -2\n"), 5)
	if err == nil {
		t.Fatal("negative ratio accepted")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *ParseError", err)
	}
	if pe.Token != "-2" {
		t.Errorf("ParseError token %q, want \"-2\"", pe.Token)
	}
	// Ratio zero is the WriteRouting topology placeholder and stays legal.
	if _, err := ParseSolution(strings.NewReader("1\n1 0 0\n"), 5); err != nil {
		t.Errorf("zero ratio rejected: %v", err)
	}
}

func TestRoutingRoundTrip(t *testing.T) {
	routes := Routing{{0, 2}, {}, {3}}
	var buf bytes.Buffer
	if err := WriteRouting(&buf, routes); err != nil {
		t.Fatal(err)
	}
	back, err := ParseRouting(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || len(back[0]) != 2 || back[2][0] != 3 {
		t.Errorf("routing round trip = %v", back)
	}
}

func TestEdgeLoads(t *testing.T) {
	routes := Routing{{0, 1}, {1}, {}}
	loads := EdgeLoads(3, routes)
	if len(loads[0]) != 1 || loads[0][0].Net != 0 || loads[0][0].Pos != 0 {
		t.Errorf("loads[0] = %v", loads[0])
	}
	if len(loads[1]) != 2 || loads[1][0].Net != 0 || loads[1][1].Net != 1 {
		t.Errorf("loads[1] = %v", loads[1])
	}
	if len(loads[2]) != 0 {
		t.Errorf("loads[2] = %v", loads[2])
	}
}

func TestRoutingCloneIndependent(t *testing.T) {
	r := Routing{{1, 2}, {3}}
	c := r.Clone()
	c[0][0] = 99
	if r[0][0] == 99 {
		t.Error("Clone shares storage")
	}
	if r.NumRoutedEdges() != 3 {
		t.Errorf("NumRoutedEdges = %d", r.NumRoutedEdges())
	}
}

func TestValidateRouting(t *testing.T) {
	in := tinyInstance()
	good := Routing{
		{0, 1},       // net 0: 0-1-2
		{1, 2, 3, 4}, // net 1: 1-2-3-4-5 covers {1,3,5}
		{2, 3},       // net 2: 2-3-4
	}
	if err := ValidateRouting(in, good); err != nil {
		t.Fatalf("good routing rejected: %v", err)
	}

	cases := []struct {
		name string
		r    Routing
	}{
		{"wrongcount", Routing{{0}}},
		{"unrouted", Routing{{}, {1, 2, 3, 4}, {2, 3}}},
		{"cycle", Routing{{0, 1, 2, 3, 4, 5, 6}, {1, 2, 3, 4}, {2, 3}}},
		{"disconnectedterm", Routing{{0, 1}, {1, 2}, {2, 3}}}, // net1 misses 5
		{"duplicateedge", Routing{{0, 0}, {1, 2, 3, 4}, {2, 3}}},
		{"edgerange", Routing{{0, 99}, {1, 2, 3, 4}, {2, 3}}},
	}
	for _, c := range cases {
		if err := ValidateRouting(in, c.r); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestValidateSolution(t *testing.T) {
	in := tinyInstance()
	routes := Routing{{0, 1}, {1, 2, 3, 4}, {2, 3}}
	mk := func(vals ...[]int64) Assignment { return Assignment{Ratios: vals} }

	good := &Solution{Routes: routes, Assign: mk([]int64{4, 4}, []int64{4, 4, 4, 4}, []int64{4, 4})}
	if err := ValidateSolution(in, good); err != nil {
		t.Fatalf("good solution rejected: %v", err)
	}

	odd := &Solution{Routes: routes, Assign: mk([]int64{3, 4}, []int64{4, 4, 4, 4}, []int64{4, 4})}
	if err := ValidateSolution(in, odd); err == nil {
		t.Error("odd ratio accepted")
	}
	zero := &Solution{Routes: routes, Assign: mk([]int64{0, 4}, []int64{4, 4, 4, 4}, []int64{4, 4})}
	if err := ValidateSolution(in, zero); err == nil {
		t.Error("zero ratio accepted")
	}
	// Edge 1 carries nets 0 and 1; both at ratio 2 sums to exactly 1: legal.
	exact := &Solution{Routes: routes, Assign: mk([]int64{2, 2}, []int64{2, 2, 2, 2}, []int64{2, 2})}
	if err := ValidateSolution(in, exact); err != nil {
		t.Errorf("reciprocal sum exactly 1 rejected: %v", err)
	}
	// Edge 2 carries nets 1 and 2; 1/2 + 1/2 = 1 fine, but make one of
	// three nets share edge 1... build an overload: route net 2 via edge 1
	// too (1-2 then 2-... no—simpler: three nets on edge 1 at ratio 2).
	over := &Solution{
		Routes: Routing{{0, 1}, {1, 2, 3, 4}, {1, 6}}, // net2: 2-1-4, uses edge1 too
		Assign: mk([]int64{2, 2}, []int64{2, 2, 2, 2}, []int64{2, 2}),
	}
	if err := ValidateSolution(in, over); err == nil {
		t.Error("reciprocal sum 1.5 accepted")
	}
	short := &Solution{Routes: routes, Assign: mk([]int64{4}, []int64{4, 4, 4, 4}, []int64{4, 4})}
	if err := ValidateSolution(in, short); err == nil {
		t.Error("ratio/edge length mismatch accepted")
	}
}

func TestValidateInstanceErrors(t *testing.T) {
	in := tinyInstance()
	in.Nets[0].Terminals = []int{0, 0}
	if err := ValidateInstance(in); err == nil {
		t.Error("duplicate terminals accepted")
	}
	in = tinyInstance()
	in.Groups[0].Nets = []int{1, 0}
	if err := ValidateInstance(in); err == nil {
		t.Error("unsorted group accepted")
	}
	in = tinyInstance()
	in.Nets[2].Groups = nil
	if err := ValidateInstance(in); err == nil {
		t.Error("stale back-references accepted")
	}
	// Disconnected graph with a multi-FPGA net.
	g := graph.New(3, 1)
	g.AddEdge(0, 1)
	bad := &Instance{G: g, Nets: []Net{{Terminals: []int{0, 2}}}}
	if err := ValidateInstance(bad); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestComputeStats(t *testing.T) {
	in := tinyInstance()
	s := ComputeStats(in)
	if s.FPGAs != 6 || s.Edges != 7 || s.Nets != 3 || s.NetGroups != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.TwoPinNets != 2 || s.MaxTerminals != 3 {
		t.Errorf("pin stats = %+v", s)
	}
	if s.MaxGroupSize != 2 || s.AvgGroupSize != 2 {
		t.Errorf("group stats = %+v", s)
	}
	if s.UngroupedNet != 0 {
		t.Errorf("ungrouped = %d", s.UngroupedNet)
	}
	if !strings.Contains(s.String(), "Nets=3") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestReciprocalSumExactCheck(t *testing.T) {
	// 1/2 + 1/4 + 1/4 == 1 exactly.
	ratios := [][]int64{{2}, {4}, {4}}
	ls := []EdgeLoad{{0, 0}, {1, 0}, {2, 0}}
	if !reciprocalSumAtMostOne(ls, ratios) {
		t.Error("sum exactly 1 rejected")
	}
	ratios = [][]int64{{2}, {4}, {4}, {1 << 20}}
	ls = append(ls, EdgeLoad{3, 0})
	if reciprocalSumAtMostOne(ls, ratios) {
		t.Error("sum slightly above 1 accepted")
	}
}
