package problem

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"tdmroute/internal/graph"
)

// The instance text format mirrors the ICCAD 2019 CAD Contest Problem B
// inputs (which are not redistributable) in a line-oriented form:
//
//	# comment lines and blank lines are ignored anywhere
//	<numFPGAs> <numEdges> <numNets> <numGroups>
//	u v                      (numEdges lines, 0-based FPGA ids)
//	k t1 t2 ... tk           (numNets lines, k >= 1 terminals)
//	m n1 n2 ... nm           (numGroups lines, m >= 1 net ids)
//
// Terminal lists must not repeat an FPGA and group member lists must not
// repeat a net: duplicates are rejected (they always indicate a generator
// bug or a corrupted file, and silently dropping them would change the
// declared counts). Group member lists are sorted on read. Both are
// 0-based. Every parse failure is a *ParseError carrying the input line and
// the offending token.

// ParseInstance reads an instance from r. name is attached for reporting.
func ParseInstance(name string, r io.Reader) (*Instance, error) {
	tr := newTokenReader(r)
	nv, err := tr.Int()
	if err != nil {
		return nil, fmt.Errorf("problem: header: %w", err)
	}
	ne, err := tr.Int()
	if err != nil {
		return nil, fmt.Errorf("problem: header: %w", err)
	}
	nn, err := tr.Int()
	if err != nil {
		return nil, fmt.Errorf("problem: header: %w", err)
	}
	ng, err := tr.Int()
	if err != nil {
		return nil, fmt.Errorf("problem: header: %w", err)
	}
	if nv < 0 || ne < 0 || nn < 0 || ng < 0 {
		return nil, fmt.Errorf("problem: header: %w", tr.fail("negative count in header (%d %d %d %d)", nv, ne, nn, ng))
	}
	// Guard allocation against corrupt or hostile headers: the largest
	// published benchmark is ~10^6 entities; refuse declared sizes that
	// would pre-allocate unreasonable memory before any data is read, and
	// grow all containers incrementally so a lying header costs nothing.
	const maxDeclared = 1 << 22
	if nv > maxDeclared || ne > maxDeclared || nn > maxDeclared || ng > maxDeclared {
		return nil, fmt.Errorf("problem: header: %w", tr.fail("declares unreasonable sizes (%d %d %d %d)", nv, ne, nn, ng))
	}

	g := graph.New(nv, capHint(ne))
	for i := 0; i < ne; i++ {
		u, err := tr.Int()
		if err != nil {
			return nil, fmt.Errorf("problem: edge %d: %w", i, err)
		}
		v, err := tr.Int()
		if err != nil {
			return nil, fmt.Errorf("problem: edge %d: %w", i, err)
		}
		if u < 0 || u >= nv || v < 0 || v >= nv {
			return nil, fmt.Errorf("problem: edge %d: %w", i, tr.fail("endpoint out of range: (%d,%d)", u, v))
		}
		if u == v {
			return nil, fmt.Errorf("problem: edge %d: %w", i, tr.fail("self loop at FPGA %d", u))
		}
		g.AddEdge(u, v)
	}

	nets := make([]Net, 0, capHint(nn))
	for i := 0; i < nn; i++ {
		k, err := tr.Int()
		if err != nil {
			return nil, fmt.Errorf("problem: net %d: %w", i, err)
		}
		if k < 1 || k > maxDeclared {
			return nil, fmt.Errorf("problem: net %d: %w", i, tr.fail("bad terminal count %d", k))
		}
		terms := make([]int, 0, capHint(k))
		seen := make(map[int]bool, capHint(k))
		for j := 0; j < k; j++ {
			t, err := tr.Int()
			if err != nil {
				return nil, fmt.Errorf("problem: net %d terminal %d: %w", i, j, err)
			}
			if t < 0 || t >= nv {
				return nil, fmt.Errorf("problem: net %d: %w", i, tr.fail("terminal %d out of range", t))
			}
			if seen[t] {
				return nil, fmt.Errorf("problem: net %d: %w", i, tr.fail("duplicate terminal %d", t))
			}
			seen[t] = true
			terms = append(terms, t)
		}
		nets = append(nets, Net{Terminals: terms})
	}

	groups := make([]Group, 0, capHint(ng))
	for gi := 0; gi < ng; gi++ {
		m, err := tr.Int()
		if err != nil {
			return nil, fmt.Errorf("problem: group %d: %w", gi, err)
		}
		if m < 1 || m > maxDeclared {
			return nil, fmt.Errorf("problem: group %d: %w", gi, tr.fail("bad member count %d", m))
		}
		members := make([]int, 0, capHint(m))
		seen := make(map[int]bool, capHint(m))
		for j := 0; j < m; j++ {
			n, err := tr.Int()
			if err != nil {
				return nil, fmt.Errorf("problem: group %d member %d: %w", gi, j, err)
			}
			if n < 0 || n >= nn {
				return nil, fmt.Errorf("problem: group %d: %w", gi, tr.fail("net %d out of range", n))
			}
			if seen[n] {
				return nil, fmt.Errorf("problem: group %d: %w", gi, tr.fail("duplicate member net %d", n))
			}
			seen[n] = true
			members = append(members, n)
		}
		sort.Ints(members)
		groups = append(groups, Group{Nets: members})
	}

	in := &Instance{Name: name, G: g, Nets: nets, Groups: groups}
	in.RebuildNetGroups()
	return in, nil
}

// LoadInstance reads an instance from a file, naming it after the path.
func LoadInstance(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseInstance(path, f)
}

// RebuildNetGroups recomputes each net's Groups list from the group member
// lists. Generators and parsers call it after constructing Groups.
func (in *Instance) RebuildNetGroups() {
	for i := range in.Nets {
		in.Nets[i].Groups = in.Nets[i].Groups[:0]
	}
	for gi := range in.Groups {
		for _, n := range in.Groups[gi].Nets {
			in.Nets[n].Groups = append(in.Nets[n].Groups, gi)
		}
	}
}

// capHint bounds an initial slice/map capacity taken from untrusted input:
// real data still appends beyond it cheaply, while a lying header cannot
// force a large allocation.
func capHint(n int) int {
	const limit = 1 << 16
	if n > limit {
		return limit
	}
	if n < 0 {
		return 0
	}
	return n
}

// tokenReader scans whitespace-separated integer tokens, skipping '#'
// comments to end of line. It remembers the line and text of the most
// recent token so semantic errors (range, duplicates) can point at it.
type tokenReader struct {
	r       *bufio.Reader
	line    int
	tokLine int    // line on which the last token started
	lastTok string // text of the last token, "" before the first read
}

func newTokenReader(r io.Reader) *tokenReader {
	return &tokenReader{r: bufio.NewReaderSize(r, 1<<20), line: 1, tokLine: 1}
}

// fail builds a ParseError located at the most recently read token.
func (tr *tokenReader) fail(format string, args ...interface{}) *ParseError {
	return &ParseError{Line: tr.tokLine, Token: tr.lastTok, Msg: fmt.Sprintf(format, args...)}
}

// Int returns the next integer token.
func (tr *tokenReader) Int() (int, error) {
	tok, err := tr.token()
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, &ParseError{Line: tr.tokLine, Token: tok, Msg: "bad integer", Err: err}
	}
	return v, nil
}

func (tr *tokenReader) token() (string, error) {
	// Skip whitespace and comments.
	for {
		b, err := tr.r.ReadByte()
		if err != nil {
			return "", &ParseError{Line: tr.line, Msg: "unexpected end of input", Err: err}
		}
		switch {
		case b == '\n':
			tr.line++
		case b == ' ' || b == '\t' || b == '\r':
			// skip
		case b == '#':
			if _, err := tr.r.ReadString('\n'); err != nil {
				if err == io.EOF {
					return "", &ParseError{Line: tr.line, Msg: "unexpected end of input", Err: io.EOF}
				}
				return "", err
			}
			tr.line++
		default:
			// Start of a token.
			tr.tokLine = tr.line
			buf := make([]byte, 1, 16)
			buf[0] = b
			for {
				c, err := tr.r.ReadByte()
				if err == io.EOF {
					tr.lastTok = string(buf)
					return tr.lastTok, nil
				}
				if err != nil {
					return "", err
				}
				if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '#' {
					if err := tr.r.UnreadByte(); err != nil {
						return "", err
					}
					tr.lastTok = string(buf)
					return tr.lastTok, nil
				}
				buf = append(buf, c)
			}
		}
	}
}
