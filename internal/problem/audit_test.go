package problem

import (
	"strings"
	"testing"
)

func TestAuditCleanSolution(t *testing.T) {
	in := tinyInstance()
	sol := &Solution{
		Routes: Routing{{0, 1}, {1, 2, 3, 4}, {2, 3}},
		Assign: Assignment{Ratios: [][]int64{{4, 4}, {4, 4, 4, 4}, {4, 4}}},
	}
	a := AuditSolution(in, sol, 0)
	if !a.OK() {
		t.Fatalf("clean solution audited dirty: %s", a.Summary())
	}
	if a.Summary() != "audit clean" {
		t.Errorf("summary = %q", a.Summary())
	}
}

func TestAuditCollectsAllViolations(t *testing.T) {
	in := tinyInstance()
	sol := &Solution{
		Routes: Routing{
			{},           // unrouted
			{1, 1},       // duplicate edge -> also disconnection suppressed
			{2, 3, 4, 5}, // route for net {2,4}: edges 2-3,3-4,4-5,5-0 -> 5-0 dangles but connects; use cycle instead
		},
		Assign: Assignment{Ratios: [][]int64{{}, {3, 2}, {2, 2, 2, 0}}},
	}
	a := AuditSolution(in, sol, 0)
	if a.OK() {
		t.Fatal("broken solution audited clean")
	}
	if a.ByKind[VUnrouted] != 1 {
		t.Errorf("unrouted = %d", a.ByKind[VUnrouted])
	}
	if a.ByKind[VBadEdge] == 0 {
		t.Error("duplicate edge not flagged")
	}
	if a.ByKind[VBadRatio] == 0 {
		t.Error("odd/zero ratio not flagged")
	}
	if !strings.Contains(a.Summary(), "=") {
		t.Errorf("summary = %q", a.Summary())
	}
}

func TestAuditOverload(t *testing.T) {
	in := tinyInstance()
	sol := &Solution{
		Routes: Routing{{0, 1}, {1, 2, 3, 4}, {1, 6}},
		Assign: Assignment{Ratios: [][]int64{{2, 2}, {2, 2, 2, 2}, {2, 2}}},
	}
	a := AuditSolution(in, sol, 0)
	if a.ByKind[VOverload] == 0 {
		t.Fatalf("edge 1 overload not flagged: %s", a.Summary())
	}
}

func TestAuditCapsPerKind(t *testing.T) {
	// 30 unrouted nets with a cap of 5: counts exact, entries capped.
	in := tinyInstance()
	in.Nets = make([]Net, 30)
	for i := range in.Nets {
		in.Nets[i].Terminals = []int{0, 2}
	}
	in.Groups = nil
	in.RebuildNetGroups()
	sol := &Solution{Routes: make(Routing, 30), Assign: Assignment{Ratios: make([][]int64, 30)}}
	a := AuditSolution(in, sol, 5)
	if a.ByKind[VUnrouted] != 30 {
		t.Errorf("count = %d, want 30", a.ByKind[VUnrouted])
	}
	kept := 0
	for _, v := range a.Violations {
		if v.Kind == VUnrouted {
			kept++
		}
	}
	if kept != 5 {
		t.Errorf("kept = %d, want capped 5", kept)
	}
}

func TestAuditMismatchedRouting(t *testing.T) {
	in := tinyInstance()
	sol := &Solution{Routes: Routing{{}}, Assign: Assignment{Ratios: [][]int64{{}}}}
	a := AuditSolution(in, sol, 0)
	if a.OK() {
		t.Fatal("mismatched routing audited clean")
	}
}

func TestViolationKindStrings(t *testing.T) {
	for k := VUnrouted; k <= VOverload; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "ViolationKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(ViolationKind(99).String(), "ViolationKind(") {
		t.Error("unknown kind string")
	}
}

func TestAuditAgreesWithValidate(t *testing.T) {
	// On any solution, ValidateSolution errors iff the audit is dirty
	// (checked on a few hand-made cases).
	in := tinyInstance()
	good := &Solution{
		Routes: Routing{{0, 1}, {1, 2, 3, 4}, {2, 3}},
		Assign: Assignment{Ratios: [][]int64{{4, 4}, {4, 4, 4, 4}, {4, 4}}},
	}
	if err := ValidateSolution(in, good); (err == nil) != AuditSolution(in, good, 0).OK() {
		t.Error("validate/audit disagree on good solution")
	}
	bad := &Solution{
		Routes: Routing{{0, 1}, {1, 2, 3, 4}, {2, 3}},
		Assign: Assignment{Ratios: [][]int64{{3, 4}, {4, 4, 4, 4}, {4, 4}}},
	}
	if err := ValidateSolution(in, bad); (err == nil) != AuditSolution(in, bad, 0).OK() {
		t.Error("validate/audit disagree on bad solution")
	}
}
