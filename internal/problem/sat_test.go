package problem

import (
	"math"
	"math/big"
	"testing"
)

func TestSatAdd64(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{1, 2, 3},
		{-5, 3, -2},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64},
		{math.MinInt64, -1, math.MinInt64},
		{math.MinInt64, math.MinInt64, math.MinInt64},
		{math.MaxInt64, math.MinInt64, -1},
		{math.MinInt64, math.MaxInt64, -1},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := SatAdd64(c.a, c.b); got != c.want {
			t.Errorf("SatAdd64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatMul64(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{3, 4, 12},
		{-3, 4, -12},
		{0, math.MaxInt64, 0},
		{math.MaxInt64, 2, math.MaxInt64},
		{math.MaxInt64, -2, math.MinInt64},
		{math.MinInt64, -1, math.MaxInt64},
		{math.MinInt64, 1, math.MinInt64},
		{1, math.MinInt64, math.MinInt64},
		{math.MinInt64, 2, math.MinInt64},
		{math.MinInt64, -2, math.MaxInt64},
		{1 << 31, 1 << 31, 1 << 62},
		{1 << 32, 1 << 32, math.MaxInt64},
	}
	for _, c := range cases {
		if got := SatMul64(c.a, c.b); got != c.want {
			t.Errorf("SatMul64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestSatMul64AgainstBig cross-checks the saturation decisions against
// arbitrary-precision arithmetic over a boundary-heavy grid.
func TestSatMul64AgainstBig(t *testing.T) {
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -(1 << 32), -3, -1, 0, 1, 2,
		3037000499, 3037000500, 1 << 31, 1 << 32, math.MaxInt64 - 1, math.MaxInt64}
	lo, hi := big.NewInt(math.MinInt64), big.NewInt(math.MaxInt64)
	for _, a := range vals {
		for _, b := range vals {
			exact := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
			want := exact
			if exact.Cmp(hi) > 0 {
				want = hi
			} else if exact.Cmp(lo) < 0 {
				want = lo
			}
			if got := SatMul64(a, b); got != want.Int64() {
				t.Errorf("SatMul64(%d, %d) = %d, want %s", a, b, got, want)
			}
		}
	}
}

func TestSatShl64(t *testing.T) {
	cases := []struct {
		v    int64
		k    int
		want int64
	}{
		{1, 3, 8},
		{0, 63, 0},
		{1, 62, 1 << 62},
		{1, 63, math.MaxInt64},
		{1, 64, math.MaxInt64},
		{-1, 63, math.MinInt64},
		{3, 62, math.MaxInt64},
		{-3, 62, math.MinInt64},
		{5, 0, 5},
		{5, -1, math.MaxInt64},
		{-5, -1, math.MinInt64},
	}
	for _, c := range cases {
		if got := SatShl64(c.v, c.k); got != c.want {
			t.Errorf("SatShl64(%d, %d) = %d, want %d", c.v, c.k, got, c.want)
		}
	}
}
