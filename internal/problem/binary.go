package problem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"tdmroute/internal/graph"
)

// Binary instance/solution formats: varint-packed equivalents of the text
// formats, for contest-scale files where text parsing dominates I/O (the
// paper reports 5.26% of total runtime spent parsing). Layout:
//
//	magic "TDMRI1" | nv ne nn ng | edges (u v)* | nets (k t*)* | groups (m n*)*
//	magic "TDMRS1" | nn | per net: k (edge ratio)*
//
// All integers are unsigned varints. The parser applies the same structural
// checks and allocation guards as the text parser.

var (
	instanceMagic = [6]byte{'T', 'D', 'M', 'R', 'I', '1'}
	solutionMagic = [6]byte{'T', 'D', 'M', 'R', 'S', '1'}
)

// WriteInstanceBinary emits in in the binary format.
func WriteInstanceBinary(w io.Writer, in *Instance) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	bw.Write(instanceMagic[:])
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	put(uint64(in.G.NumVertices()))
	put(uint64(in.G.NumEdges()))
	put(uint64(len(in.Nets)))
	put(uint64(len(in.Groups)))
	for _, e := range in.G.Edges() {
		put(uint64(e.U))
		put(uint64(e.V))
	}
	for i := range in.Nets {
		terms := in.Nets[i].Terminals
		put(uint64(len(terms)))
		for _, t := range terms {
			put(uint64(t))
		}
	}
	for gi := range in.Groups {
		members := in.Groups[gi].Nets
		put(uint64(len(members)))
		for _, n := range members {
			put(uint64(n))
		}
	}
	return bw.Flush()
}

// ParseInstanceBinary reads an instance in the binary format.
func ParseInstanceBinary(name string, r io.Reader) (*Instance, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("problem: binary magic: %w", err)
	}
	if magic != instanceMagic {
		return nil, fmt.Errorf("problem: not a binary instance (magic %q)", magic[:])
	}
	get := func(what string) (int, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("problem: binary %s: %w", what, err)
		}
		const maxDeclared = 1 << 22
		if v > maxDeclared {
			return 0, fmt.Errorf("problem: binary %s: unreasonable value %d", what, v)
		}
		return int(v), nil
	}
	nv, err := get("vertex count")
	if err != nil {
		return nil, err
	}
	ne, err := get("edge count")
	if err != nil {
		return nil, err
	}
	nn, err := get("net count")
	if err != nil {
		return nil, err
	}
	ng, err := get("group count")
	if err != nil {
		return nil, err
	}

	g := graph.New(nv, capHint(ne))
	for i := 0; i < ne; i++ {
		u, err := get("edge endpoint")
		if err != nil {
			return nil, err
		}
		v, err := get("edge endpoint")
		if err != nil {
			return nil, err
		}
		if u >= nv || v >= nv {
			return nil, fmt.Errorf("problem: binary edge %d out of range", i)
		}
		if u == v {
			return nil, fmt.Errorf("problem: binary edge %d is a self loop", i)
		}
		g.AddEdge(u, v)
	}
	nets := make([]Net, 0, capHint(nn))
	for i := 0; i < nn; i++ {
		k, err := get("terminal count")
		if err != nil {
			return nil, err
		}
		if k < 1 {
			return nil, fmt.Errorf("problem: binary net %d has no terminals", i)
		}
		terms := make([]int, 0, capHint(k))
		seen := make(map[int]bool, capHint(k))
		for j := 0; j < k; j++ {
			t, err := get("terminal")
			if err != nil {
				return nil, err
			}
			if t >= nv {
				return nil, fmt.Errorf("problem: binary net %d terminal out of range", i)
			}
			if seen[t] {
				return nil, fmt.Errorf("problem: binary net %d has duplicate terminal %d", i, t)
			}
			seen[t] = true
			terms = append(terms, t)
		}
		nets = append(nets, Net{Terminals: terms})
	}
	groups := make([]Group, 0, capHint(ng))
	for gi := 0; gi < ng; gi++ {
		m, err := get("member count")
		if err != nil {
			return nil, err
		}
		if m < 1 {
			return nil, fmt.Errorf("problem: binary group %d empty", gi)
		}
		members := make([]int, 0, capHint(m))
		for j := 0; j < m; j++ {
			n, err := get("member")
			if err != nil {
				return nil, err
			}
			if n >= nn {
				return nil, fmt.Errorf("problem: binary group %d member out of range", gi)
			}
			members = append(members, n)
		}
		insertionSortInts(members)
		for j := 1; j < len(members); j++ {
			if members[j] == members[j-1] {
				return nil, fmt.Errorf("problem: binary group %d has duplicate member net %d", gi, members[j])
			}
		}
		groups = append(groups, Group{Nets: members})
	}
	in := &Instance{Name: name, G: g, Nets: nets, Groups: groups}
	in.RebuildNetGroups()
	return in, nil
}

// WriteSolutionBinary emits sol in the binary format.
func WriteSolutionBinary(w io.Writer, sol *Solution) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	bw.Write(solutionMagic[:])
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	put(uint64(len(sol.Routes)))
	for n, edges := range sol.Routes {
		put(uint64(len(edges)))
		for k, e := range edges {
			put(uint64(e))
			put(uint64(sol.Assign.Ratios[n][k]))
		}
	}
	return bw.Flush()
}

// ParseSolutionBinary reads a solution in the binary format.
func ParseSolutionBinary(r io.Reader, numEdges int) (*Solution, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("problem: binary magic: %w", err)
	}
	if magic != solutionMagic {
		return nil, fmt.Errorf("problem: not a binary solution (magic %q)", magic[:])
	}
	nnU, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("problem: binary net count: %w", err)
	}
	const maxDeclared = 1 << 22
	if nnU > maxDeclared {
		return nil, fmt.Errorf("problem: binary net count %d unreasonable", nnU)
	}
	nn := int(nnU)
	sol := &Solution{
		Routes: make(Routing, 0, capHint(nn)),
		Assign: Assignment{Ratios: make([][]int64, 0, capHint(nn))},
	}
	for n := 0; n < nn; n++ {
		kU, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("problem: binary net %d: %w", n, err)
		}
		if kU > uint64(numEdges) {
			return nil, fmt.Errorf("problem: binary net %d: %d edges exceed %d", n, kU, numEdges)
		}
		k := int(kU)
		edges := make([]int, k)
		ratios := make([]int64, k)
		for j := 0; j < k; j++ {
			e, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("problem: binary net %d edge: %w", n, err)
			}
			if e >= uint64(numEdges) {
				return nil, fmt.Errorf("problem: binary net %d: edge %d out of range", n, e)
			}
			rr, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("problem: binary net %d ratio: %w", n, err)
			}
			if rr > 1<<40 {
				return nil, fmt.Errorf("problem: binary net %d: ratio %d unreasonable", n, rr)
			}
			edges[j] = int(e)
			ratios[j] = int64(rr)
		}
		sol.Routes = append(sol.Routes, edges)
		sol.Assign.Ratios = append(sol.Assign.Ratios, ratios)
	}
	return sol, nil
}
