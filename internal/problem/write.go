package problem

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteInstance emits in in the text format accepted by ParseInstance.
func WriteInstance(w io.Writer, in *Instance) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# instance %s\n", in.Name)
	fmt.Fprintf(bw, "%d %d %d %d\n", in.G.NumVertices(), in.G.NumEdges(), len(in.Nets), len(in.Groups))
	for _, e := range in.G.Edges() {
		writeInts(bw, e.U, e.V)
	}
	for i := range in.Nets {
		terms := in.Nets[i].Terminals
		bw.WriteString(strconv.Itoa(len(terms)))
		for _, t := range terms {
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(t))
		}
		bw.WriteByte('\n')
	}
	for gi := range in.Groups {
		members := in.Groups[gi].Nets
		bw.WriteString(strconv.Itoa(len(members)))
		for _, n := range members {
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(n))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// SaveInstance writes in to path.
func SaveInstance(path string, in *Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteInstance(f, in); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// The solution text format lists, for every net, its routed edges with their
// TDM ratios:
//
//	<numNets>
//	k e1 r1 e2 r2 ... ek rk     (numNets lines; k may be 0)
//
// e are 0-based edge ids of the instance graph; r are the (even, positive)
// legalized TDM ratios. It is the machine-checkable equivalent of the
// contest output format and is what cmd/eval verifies.

// WriteSolution emits sol in the text format accepted by ParseSolution.
func WriteSolution(w io.Writer, sol *Solution) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "%d\n", len(sol.Routes))
	for n, edges := range sol.Routes {
		bw.WriteString(strconv.Itoa(len(edges)))
		for k, e := range edges {
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(e))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(sol.Assign.Ratios[n][k], 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// SaveSolution writes sol to path.
func SaveSolution(path string, sol *Solution) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSolution(f, sol); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseSolution reads a solution in the format produced by WriteSolution.
// numEdges bounds the edge ids; pass the instance's edge count. A net may
// not route the same edge twice, and ratios must be non-negative (zero is
// the WriteRouting placeholder for "topology only"; full legality is
// ValidateSolution's job). Every parse failure is a *ParseError carrying
// the input line and the offending token.
func ParseSolution(r io.Reader, numEdges int) (*Solution, error) {
	tr := newTokenReader(r)
	nn, err := tr.Int()
	if err != nil {
		return nil, fmt.Errorf("problem: solution header: %w", err)
	}
	const maxDeclared = 1 << 22
	if nn < 0 || nn > maxDeclared {
		return nil, fmt.Errorf("problem: solution header: %w", tr.fail("bad net count %d", nn))
	}
	sol := &Solution{
		Routes: make(Routing, 0, capHint(nn)),
		Assign: Assignment{Ratios: make([][]int64, 0, capHint(nn))},
	}
	for n := 0; n < nn; n++ {
		k, err := tr.Int()
		if err != nil {
			return nil, fmt.Errorf("problem: solution net %d: %w", n, err)
		}
		if k < 0 || k > numEdges {
			return nil, fmt.Errorf("problem: solution net %d: %w", n, tr.fail("edge count %d outside [0,%d]", k, numEdges))
		}
		edges := make([]int, k)
		ratios := make([]int64, k)
		seen := make(map[int]bool, capHint(k))
		for j := 0; j < k; j++ {
			e, err := tr.Int()
			if err != nil {
				return nil, fmt.Errorf("problem: solution net %d edge %d: %w", n, j, err)
			}
			if e < 0 || e >= numEdges {
				return nil, fmt.Errorf("problem: solution net %d: %w", n, tr.fail("edge id %d out of range", e))
			}
			if seen[e] {
				return nil, fmt.Errorf("problem: solution net %d: %w", n, tr.fail("duplicate edge id %d", e))
			}
			seen[e] = true
			rr, err := tr.Int()
			if err != nil {
				return nil, fmt.Errorf("problem: solution net %d ratio %d: %w", n, j, err)
			}
			if rr < 0 {
				return nil, fmt.Errorf("problem: solution net %d: %w", n, tr.fail("negative ratio %d", rr))
			}
			edges[j] = e
			ratios[j] = int64(rr)
		}
		sol.Routes = append(sol.Routes, edges)
		sol.Assign.Ratios = append(sol.Assign.Ratios, ratios)
	}
	return sol, nil
}

// LoadSolution reads a solution file from path.
func LoadSolution(path string, numEdges int) (*Solution, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSolution(f, numEdges)
}

// WriteRouting emits only the topology (ratios written as 0) so that routing
// stages can exchange topologies with the TDM assigner, mirroring the
// paper's "read in the routing topologies of the top three winners"
// experiment.
func WriteRouting(w io.Writer, routes Routing) error {
	sol := &Solution{Routes: routes, Assign: Assignment{Ratios: make([][]int64, len(routes))}}
	for n := range routes {
		sol.Assign.Ratios[n] = make([]int64, len(routes[n]))
	}
	return WriteSolution(w, sol)
}

// ParseRouting reads a topology written by WriteRouting (ratios ignored).
func ParseRouting(r io.Reader, numEdges int) (Routing, error) {
	sol, err := ParseSolution(r, numEdges)
	if err != nil {
		return nil, err
	}
	return sol.Routes, nil
}

func writeInts(bw *bufio.Writer, a, b int) {
	bw.WriteString(strconv.Itoa(a))
	bw.WriteByte(' ')
	bw.WriteString(strconv.Itoa(b))
	bw.WriteByte('\n')
}
