package problem_test

// An external test package: the corruption seeds come from internal/chaos,
// which imports the root tdmroute package and therefore cannot be imported
// from package problem's own tests without a cycle.

import (
	"bytes"
	"errors"
	"testing"

	"tdmroute/internal/chaos"
	"tdmroute/internal/problem"
)

// wellFormed is a small valid instance whose corruptions seed the fuzzer.
const wellFormed = "6 7 3 2\n0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n1 4\n2 0 2\n3 1 3 5\n2 2 4\n2 0 1\n2 1 2\n"

// FuzzParseInstanceCorrupt seeds FuzzParseInstance's property — reject with
// a typed error or accept a valid instance — with the chaos harness's
// corruption distribution: mutations of well-formed files exercise the
// near-miss region (duplicates, truncations, shifted counts) that uniform
// random bytes almost never reach.
func FuzzParseInstanceCorrupt(f *testing.F) {
	f.Add([]byte(wellFormed))
	for seed := int64(0); seed < 32; seed++ {
		f.Add(chaos.Corrupt(seed, []byte(wellFormed)))
	}
	// Hand-written near-misses the corruption distribution is known to
	// produce: duplicate terminals, duplicate members, duplicate edges.
	f.Add([]byte("2 1 1 1\n0 1\n2 0 0\n1 0\n"))
	f.Add([]byte("3 2 2 1\n0 1\n1 2\n2 0 1\n2 1 2\n3 1 0 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := problem.ParseInstance("corrupt", bytes.NewReader(data))
		if err != nil {
			var pe *problem.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("parse failure is not a *ParseError: %v\ninput: %q", err, data)
			}
			if pe.Line < 1 {
				t.Fatalf("ParseError without a line: %+v\ninput: %q", pe, data)
			}
			return
		}
		if verr := problem.ValidateInstance(in); verr != nil && !errors.Is(verr, problem.ErrDisconnected) {
			t.Fatalf("parser accepted invalid instance: %v\ninput: %q", verr, data)
		}
	})
}
