package problem

import (
	"fmt"

	"tdmroute/internal/graph"
)

// Stats summarizes an instance with the columns of Table I of the paper plus
// a few shape descriptors used by the generator's self-checks.
type Stats struct {
	Name      string
	FPGAs     int
	Edges     int
	Nets      int
	NetGroups int

	TwoPinNets   int     // nets with exactly two terminals
	MaxTerminals int     // largest terminal set
	AvgTerminals float64 // mean terminals per net
	MaxGroupSize int     // largest group
	AvgGroupSize float64 // mean nets per group
	UngroupedNet int     // nets in no group
	Bridges      int     // board edges whose failure splits the system
}

// ComputeStats derives Stats from an instance.
func ComputeStats(in *Instance) Stats {
	s := Stats{
		Name:      in.Name,
		FPGAs:     in.G.NumVertices(),
		Edges:     in.G.NumEdges(),
		Nets:      len(in.Nets),
		NetGroups: len(in.Groups),
	}
	var sumTerms int
	for i := range in.Nets {
		k := len(in.Nets[i].Terminals)
		sumTerms += k
		if k == 2 {
			s.TwoPinNets++
		}
		if k > s.MaxTerminals {
			s.MaxTerminals = k
		}
		if len(in.Nets[i].Groups) == 0 {
			s.UngroupedNet++
		}
	}
	if len(in.Nets) > 0 {
		s.AvgTerminals = float64(sumTerms) / float64(len(in.Nets))
	}
	var sumGroup int
	for gi := range in.Groups {
		m := len(in.Groups[gi].Nets)
		sumGroup += m
		if m > s.MaxGroupSize {
			s.MaxGroupSize = m
		}
	}
	if len(in.Groups) > 0 {
		s.AvgGroupSize = float64(sumGroup) / float64(len(in.Groups))
	}
	s.Bridges = len(graph.Bridges(in.G))
	return s
}

// String formats the Table I columns.
func (s Stats) String() string {
	return fmt.Sprintf("%s: FPGAs=%d Edges=%d Nets=%d NetGroups=%d (2-pin=%d, maxTerm=%d, avgTerm=%.2f, maxGrp=%d, avgGrp=%.2f, ungrouped=%d, bridges=%d)",
		s.Name, s.FPGAs, s.Edges, s.Nets, s.NetGroups,
		s.TwoPinNets, s.MaxTerminals, s.AvgTerminals, s.MaxGroupSize, s.AvgGroupSize, s.UngroupedNet, s.Bridges)
}
