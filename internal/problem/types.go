// Package problem defines the data model of the inter-FPGA routing and TDM
// ratio assignment problem (Sec. II-A of the paper, i.e. ICCAD 2019 CAD
// Contest Problem B), together with text I/O, validation, and benchmark
// statistics.
//
// A problem instance is an undirected FPGA graph, a netlist of two- or
// multi-pin nets (terminal sets of FPGAs), and a set of NetGroups, each a
// subset of the netlist. Groups may overlap: a net can belong to any number
// of groups, and a net may belong to none.
package problem

import "tdmroute/internal/graph"

// Net is a signal to be routed between a set of terminal FPGAs.
type Net struct {
	// Terminals are the FPGA vertices the net must connect. The first
	// terminal is conventionally the driver. Terminals are distinct.
	Terminals []int
	// Groups lists the identifiers of the NetGroups containing this net,
	// in increasing order.
	Groups []int
}

// Group is a NetGroup: a set of nets whose TDM ratios are summed to produce
// the group TDM ratio used by the objective.
type Group struct {
	// Nets lists member net identifiers in increasing order. A net may
	// appear in many groups but at most once per group.
	Nets []int
}

// Instance is a full problem instance.
type Instance struct {
	Name   string
	G      *graph.Graph
	Nets   []Net
	Groups []Group
}

// NumNets returns the netlist size.
func (in *Instance) NumNets() int { return len(in.Nets) }

// Clone returns a deep copy of the instance's netlist and groups. The FPGA
// graph is shared: it is immutable for the life of an instance, and deep
// copies exist to let one side mutate nets and group membership (an ECO
// delta) while the other stays frozen.
func (in *Instance) Clone() *Instance {
	c := &Instance{Name: in.Name, G: in.G}
	c.Nets = make([]Net, len(in.Nets))
	for i, n := range in.Nets {
		c.Nets[i] = Net{
			Terminals: append([]int(nil), n.Terminals...),
			Groups:    append([]int(nil), n.Groups...),
		}
	}
	c.Groups = make([]Group, len(in.Groups))
	for i, g := range in.Groups {
		c.Groups[i] = Group{Nets: append([]int(nil), g.Nets...)}
	}
	return c
}

// NumGroups returns the number of NetGroups.
func (in *Instance) NumGroups() int { return len(in.Groups) }

// Routing is a routing topology: for each net, the identifiers of the FPGA
// graph edges its Steiner tree uses. Intra-FPGA nets (single-terminal after
// deduplication) have empty edge lists.
type Routing [][]int

// Assignment holds the legalized TDM ratios: Ratios[n][k] is the even
// positive ratio assigned to net n on edge Routing[n][k].
type Assignment struct {
	Ratios [][]int64
}

// Solution couples a routing topology with its TDM ratio assignment.
type Solution struct {
	Routes Routing
	Assign Assignment
}

// Clone returns a deep copy of the routing.
func (r Routing) Clone() Routing {
	c := make(Routing, len(r))
	for i, edges := range r {
		c[i] = append([]int(nil), edges...)
	}
	return c
}

// NumRoutedEdges returns the total number of (net, edge) pairs.
func (r Routing) NumRoutedEdges() int {
	total := 0
	for _, edges := range r {
		total += len(edges)
	}
	return total
}

// EdgeLoad is one entry of a per-edge net index: net n traverses the edge,
// and the edge is the k-th edge of n's route.
type EdgeLoad struct {
	Net int
	Pos int
}

// EdgeLoads inverts a routing into a per-edge index: result[e] lists the
// nets using edge e (the set N_e of the paper) with their route positions.
// The index is ordered by net id, making downstream iteration deterministic.
func EdgeLoads(numEdges int, r Routing) [][]EdgeLoad {
	counts := make([]int, numEdges)
	for _, edges := range r {
		for _, e := range edges {
			counts[e]++
		}
	}
	loads := make([][]EdgeLoad, numEdges)
	for e, c := range counts {
		if c > 0 {
			loads[e] = make([]EdgeLoad, 0, c)
		}
	}
	for n, edges := range r {
		for k, e := range edges {
			loads[e] = append(loads[e], EdgeLoad{Net: n, Pos: k})
		}
	}
	return loads
}

// GroupsOf returns the group id list of net n (possibly empty).
func (in *Instance) GroupsOf(n int) []int { return in.Nets[n].Groups }
