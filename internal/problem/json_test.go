package problem

import (
	"bytes"
	"strings"
	"testing"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	in := tinyInstance()
	var buf bytes.Buffer
	if err := WriteInstanceJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ParseInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateInstance(back); err != nil {
		t.Fatal(err)
	}
	a, b := ComputeStats(in), ComputeStats(back)
	a.Name, b.Name = "", ""
	if a != b {
		t.Errorf("stats differ:\n%+v\n%+v", a, b)
	}
	for i := range in.Nets {
		if len(in.Nets[i].Terminals) != len(back.Nets[i].Terminals) {
			t.Fatalf("net %d terminals differ", i)
		}
	}
}

func TestSolutionJSONRoundTrip(t *testing.T) {
	sol := &Solution{
		Routes: Routing{{0, 1}, {}, {2}},
		Assign: Assignment{Ratios: [][]int64{{2, 4}, {}, {8}}},
	}
	var buf bytes.Buffer
	if err := WriteSolutionJSON(&buf, sol); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSolutionJSON(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Routes) != 3 || back.Routes[0][1] != 1 || back.Assign.Ratios[2][0] != 8 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestParseInstanceJSONErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"garbage", "{"},
		{"negfpgas", `{"fpgas":-1}`},
		{"edgerange", `{"fpgas":2,"edges":[[0,5]]}`},
		{"selfloop", `{"fpgas":2,"edges":[[1,1]]}`},
		{"emptynet", `{"fpgas":2,"edges":[[0,1]],"nets":[[]]}`},
		{"termrange", `{"fpgas":2,"edges":[[0,1]],"nets":[[0,7]]}`},
		{"emptygroup", `{"fpgas":2,"edges":[[0,1]],"nets":[[0,1]],"groups":[[]]}`},
		{"groupref", `{"fpgas":2,"edges":[[0,1]],"nets":[[0,1]],"groups":[[5]]}`},
	}
	for _, c := range cases {
		if _, err := ParseInstanceJSON(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseInstanceJSONRejectsDuplicates(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"dupterminal", `{"fpgas":3,"edges":[[0,1],[1,2]],"nets":[[0,1,0],[1,2]],"groups":[[1,0]]}`},
		{"dupmember", `{"fpgas":3,"edges":[[0,1],[1,2]],"nets":[[0,1],[1,2]],"groups":[[1,0,1]]}`},
	}
	for _, c := range cases {
		if _, err := ParseInstanceJSON(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseInstanceJSONSortsGroups(t *testing.T) {
	doc := `{"fpgas":3,"edges":[[0,1],[1,2]],"nets":[[0,1],[1,2]],"groups":[[1,0]]}`
	in, err := ParseInstanceJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	g := in.Groups[0].Nets
	if len(g) != 2 || g[0] != 0 || g[1] != 1 {
		t.Errorf("group not sorted: %v", g)
	}
	if err := ValidateInstance(in); err != nil {
		t.Error(err)
	}
}

func TestParseSolutionJSONErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"garbage", "["},
		{"lenmismatch", `{"nets":[{"edges":[0,1],"ratios":[2]}]}`},
		{"edgerange", `{"nets":[{"edges":[9],"ratios":[2]}]}`},
	}
	for _, c := range cases {
		if _, err := ParseSolutionJSON(strings.NewReader(c.doc), 3); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
