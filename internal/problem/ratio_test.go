package problem

import (
	"math"
	"testing"
)

// TestEvenCeilRatioSaturates mirrors the tdm legalizer regression test on
// the shared helper: relaxed ratios beyond the int64 range must saturate at
// the largest even int64 instead of converting to a negative number.
func TestEvenCeilRatioSaturates(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{math.NaN(), 2},
		{math.Inf(-1), 2},
		{-5, 2},
		{0, 2},
		{2, 2},
		{2.1, 4},
		{7, 8},
		{8, 8},
		{1e15, 1000000000000000},
		{1e15 + 1, 1000000000000002},
		{1e18, 1000000000000000000},
		{9.2e18, 9200000000000000000},
		{float64(math.MaxInt64), MaxEvenRatio},
		{1e19, MaxEvenRatio},
		{1e300, MaxEvenRatio},
		{math.Inf(1), MaxEvenRatio},
	}
	for _, c := range cases {
		if got := EvenCeilRatio(c.in); got != c.want {
			t.Errorf("EvenCeilRatio(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPow2CeilRatioSaturates(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{math.NaN(), 2},
		{math.Inf(-1), 2},
		{2, 2},
		{3, 4},
		{17, 32},
		{1 << 40, 1 << 40},
		{float64(MaxPow2Ratio), MaxPow2Ratio},
		{1e300, MaxPow2Ratio},
		{math.Inf(1), MaxPow2Ratio},
	}
	for _, c := range cases {
		if got := Pow2CeilRatio(c.in); got != c.want {
			t.Errorf("Pow2CeilRatio(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestRatioHelpersNeverIllegal sweeps adversarial values through both
// helpers and asserts that no odd, negative, or sub-2 ratio can escape.
func TestRatioHelpersNeverIllegal(t *testing.T) {
	adversarial := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		-1e300, -2, 0, 1, 2, 2.0000001, 3,
		1e9, 1e18, 9.22e18, 9.3e18, 1e19, 1e300,
		float64(math.MaxInt64), float64(math.MaxInt64) * 2,
	}
	for _, v := range adversarial {
		for name, r := range map[string]int64{
			"EvenCeilRatio": EvenCeilRatio(v),
			"Pow2CeilRatio": Pow2CeilRatio(v),
		} {
			if r < 2 {
				t.Errorf("%s(%g) = %d < 2", name, v, r)
			}
			if r%2 != 0 {
				t.Errorf("%s(%g) = %d is odd", name, v, r)
			}
		}
		if p := Pow2CeilRatio(v); p&(p-1) != 0 {
			t.Errorf("Pow2CeilRatio(%g) = %d is not a power of two", v, p)
		}
	}
}
