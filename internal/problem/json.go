package problem

import (
	"encoding/json"
	"fmt"
	"io"

	"tdmroute/internal/graph"
)

// jsonInstance is the interchange form of an Instance: a self-describing
// JSON document for toolchains that prefer structured data over the
// contest-style text format.
type jsonInstance struct {
	Name   string   `json:"name"`
	FPGAs  int      `json:"fpgas"`
	Edges  [][2]int `json:"edges"`
	Nets   [][]int  `json:"nets"`   // terminal lists
	Groups [][]int  `json:"groups"` // member net id lists
}

// jsonSolution is the interchange form of a Solution.
type jsonSolution struct {
	Nets []jsonNetSolution `json:"nets"`
}

type jsonNetSolution struct {
	Edges  []int   `json:"edges"`
	Ratios []int64 `json:"ratios"`
}

// WriteInstanceJSON encodes in as JSON.
func WriteInstanceJSON(w io.Writer, in *Instance) error {
	doc := jsonInstance{
		Name:   in.Name,
		FPGAs:  in.G.NumVertices(),
		Edges:  make([][2]int, in.G.NumEdges()),
		Nets:   make([][]int, len(in.Nets)),
		Groups: make([][]int, len(in.Groups)),
	}
	for i, e := range in.G.Edges() {
		doc.Edges[i] = [2]int{e.U, e.V}
	}
	for i := range in.Nets {
		doc.Nets[i] = in.Nets[i].Terminals
	}
	for gi := range in.Groups {
		doc.Groups[gi] = in.Groups[gi].Nets
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ParseInstanceJSON decodes an instance from JSON and validates it
// structurally (the same checks the text parser applies).
func ParseInstanceJSON(r io.Reader) (*Instance, error) {
	var doc jsonInstance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("problem: json: %w", err)
	}
	if doc.FPGAs < 0 {
		return nil, fmt.Errorf("problem: json: negative FPGA count")
	}
	g := graph.New(doc.FPGAs, len(doc.Edges))
	for i, e := range doc.Edges {
		if e[0] < 0 || e[0] >= doc.FPGAs || e[1] < 0 || e[1] >= doc.FPGAs {
			return nil, fmt.Errorf("problem: json: edge %d endpoint out of range", i)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("problem: json: edge %d is a self loop", i)
		}
		g.AddEdge(e[0], e[1])
	}
	in := &Instance{Name: doc.Name, G: g, Nets: make([]Net, len(doc.Nets)), Groups: make([]Group, len(doc.Groups))}
	for i, terms := range doc.Nets {
		if len(terms) == 0 {
			return nil, fmt.Errorf("problem: json: net %d has no terminals", i)
		}
		seen := make(map[int]bool, len(terms))
		out := make([]int, 0, len(terms))
		for _, t := range terms {
			if t < 0 || t >= doc.FPGAs {
				return nil, fmt.Errorf("problem: json: net %d terminal %d out of range", i, t)
			}
			if seen[t] {
				return nil, fmt.Errorf("problem: json: net %d has duplicate terminal %d", i, t)
			}
			seen[t] = true
			out = append(out, t)
		}
		in.Nets[i].Terminals = out
	}
	for gi, members := range doc.Groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("problem: json: group %d is empty", gi)
		}
		ms := append([]int(nil), members...)
		insertionSortInts(ms)
		for j, n := range ms {
			if n < 0 || n >= len(in.Nets) {
				return nil, fmt.Errorf("problem: json: group %d references net %d out of range", gi, n)
			}
			if j > 0 && n == ms[j-1] {
				return nil, fmt.Errorf("problem: json: group %d has duplicate member net %d", gi, n)
			}
		}
		in.Groups[gi].Nets = ms
	}
	in.RebuildNetGroups()
	return in, nil
}

// WriteSolutionJSON encodes sol as JSON.
func WriteSolutionJSON(w io.Writer, sol *Solution) error {
	doc := jsonSolution{Nets: make([]jsonNetSolution, len(sol.Routes))}
	for n := range sol.Routes {
		doc.Nets[n] = jsonNetSolution{Edges: sol.Routes[n], Ratios: sol.Assign.Ratios[n]}
	}
	return json.NewEncoder(w).Encode(doc)
}

// ParseSolutionJSON decodes a solution from JSON; numEdges bounds edge ids.
func ParseSolutionJSON(r io.Reader, numEdges int) (*Solution, error) {
	var doc jsonSolution
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("problem: json: %w", err)
	}
	sol := &Solution{
		Routes: make(Routing, len(doc.Nets)),
		Assign: Assignment{Ratios: make([][]int64, len(doc.Nets))},
	}
	for n, ns := range doc.Nets {
		if len(ns.Edges) != len(ns.Ratios) {
			return nil, fmt.Errorf("problem: json: net %d has %d edges but %d ratios", n, len(ns.Edges), len(ns.Ratios))
		}
		seen := make(map[int]bool, len(ns.Edges))
		for _, e := range ns.Edges {
			if e < 0 || e >= numEdges {
				return nil, fmt.Errorf("problem: json: net %d edge %d out of range", n, e)
			}
			if seen[e] {
				return nil, fmt.Errorf("problem: json: net %d has duplicate edge %d", n, e)
			}
			seen[e] = true
		}
		for _, r := range ns.Ratios {
			if r < 0 {
				return nil, fmt.Errorf("problem: json: net %d has negative ratio %d", n, r)
			}
		}
		sol.Routes[n] = ns.Edges
		sol.Assign.Ratios[n] = ns.Ratios
	}
	return sol, nil
}

func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
